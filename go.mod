module shmgpu

go 1.22
