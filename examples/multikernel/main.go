// Multikernel: demonstrate the InputReadOnlyReset API (paper §IV-B,
// Fig. 9) on the functional library. A multi-kernel application reuses one
// device region for fresh host inputs before each kernel. Without the API
// the region permanently loses its read-only status after the first reuse;
// with it, the shared counter advances and every kernel's input keeps the
// cheap read-only protection — while cross-kernel replay stays impossible.
package main

import (
	"errors"
	"fmt"
	"log"

	"shmgpu/internal/memdef"
	"shmgpu/securemem"
)

func main() {
	mem := securemem.MustNew(securemem.Config{Size: 1 << 20, ContextSeed: 99})

	const kernels = 3
	input := make([]byte, memdef.RegionSize)

	for k := 0; k < kernels; k++ {
		// Host prepares this kernel's input.
		for i := range input {
			input[i] = byte(k + 1)
		}
		if k > 0 {
			// Reuse the same device region: reset it to read-only. The
			// shared counter advances past every major counter in range,
			// so stale ciphertext from kernel k-1 can never verify again.
			before := mem.SharedCounter()
			if err := mem.InputReadOnlyReset(0, memdef.RegionSize); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("kernel %d: InputReadOnlyReset advanced shared counter %d -> %d\n",
				k, before, mem.SharedCounter())
		}
		if err := mem.CopyFromHost(0, input); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("kernel %d: input region read-only=%v, shared counter=%d\n",
			k, mem.IsReadOnly(0), mem.SharedCounter())

		// Kernel reads its input (read-only: no integrity-tree walk).
		buf := make([]byte, securemem.BlockSize)
		if err := mem.Read(0, buf); err != nil {
			log.Fatal(err)
		}
		if buf[0] != byte(k+1) {
			log.Fatalf("kernel %d read stale input %d", k, buf[0])
		}
		fmt.Printf("kernel %d: read fresh input value %d\n\n", k, buf[0])
	}

	// The attack the reset API defends against: replay kernel 2's input
	// during kernel 3. Snapshot now, reset+copy, restore, read.
	view := mem.AttackerView()
	macLo := mem.Layout().BlockMACAddr(0)
	old := append([]byte(nil), view[0:securemem.BlockSize]...)
	oldMAC := append([]byte(nil), view[macLo:macLo+8]...)
	cmLo := mem.Layout().ChunkMACAddr(0)
	oldCM := append([]byte(nil), view[cmLo:cmLo+8]...)

	mem.InputReadOnlyReset(0, memdef.RegionSize)
	for i := range input {
		input[i] = 0x44
	}
	mem.CopyFromHost(0, input)

	copy(view[0:], old)
	copy(view[macLo:], oldMAC)
	copy(view[cmLo:], oldCM)
	err := mem.Read(0, make([]byte, securemem.BlockSize))
	fmt.Printf("cross-kernel replay attempt: %v (detected=%v)\n",
		err, errors.Is(err, securemem.ErrIntegrity))
}
