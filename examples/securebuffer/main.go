// Securebuffer: use the functional secure-memory library directly — the
// library face of the paper's design. A buffer is written through the
// protected memory, the attacker's view of off-chip DRAM is inspected
// (ciphertext only), and a bit-flip plus a replay attack are both detected
// on the next read.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"shmgpu/securemem"
)

func main() {
	mem, err := securemem.New(securemem.Config{
		Size:        1 << 20, // 1 MiB protected device memory
		ContextSeed: 2026,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Store a secret through the protected path.
	secret := make([]byte, securemem.BlockSize)
	copy(secret, "the model weights live here")
	if err := mem.Write(0x1000, secret); err != nil {
		log.Fatal(err)
	}

	// Off-chip, the attacker sees only ciphertext.
	offChip := mem.AttackerView()[0x1000 : 0x1000+securemem.BlockSize]
	if bytes.Contains(offChip, []byte("weights")) {
		log.Fatal("plaintext leaked to DRAM!")
	}
	fmt.Printf("off-chip bytes (ciphertext): %x...\n", offChip[:16])

	// The owner reads it back fine.
	buf := make([]byte, securemem.BlockSize)
	if err := mem.Read(0x1000, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decrypted: %q\n", bytes.TrimRight(buf, "\x00"))

	// Attack 1: flip a ciphertext bit.
	mem.AttackerView()[0x1000] ^= 1
	err = mem.Read(0x1000, buf)
	fmt.Printf("after bit flip: %v (detected=%v)\n", err, errors.Is(err, securemem.ErrIntegrity))
	mem.AttackerView()[0x1000] ^= 1 // restore

	// Attack 2: replay — snapshot the current (valid) state, overwrite,
	// then restore the stale snapshot.
	view := mem.AttackerView()
	macAddr := mem.Layout().BlockMACAddr(0x1000)
	cmAddr := mem.Layout().ChunkMACAddr(0x1000)
	oldData := append([]byte(nil), view[0x1000:0x1000+securemem.BlockSize]...)
	oldMAC := append([]byte(nil), view[macAddr:macAddr+8]...)
	oldCM := append([]byte(nil), view[cmAddr:cmAddr+8]...)

	if err := mem.Write(0x1000, make([]byte, securemem.BlockSize)); err != nil {
		log.Fatal(err)
	}
	copy(view[0x1000:], oldData)
	copy(view[macAddr:], oldMAC)
	copy(view[cmAddr:], oldCM)

	err = mem.Read(0x1000, buf)
	fmt.Printf("after replay:   %v (detected=%v)\n", err, errors.Is(err, securemem.ErrIntegrity))

	s := mem.Stats()
	fmt.Printf("\nstats: %d reads, %d writes, %d integrity failures\n",
		s.Reads, s.Writes, s.IntegrityFailures)
}
