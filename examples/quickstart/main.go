// Quickstart: simulate one GPU workload under the paper's SHM design and
// under the insecure baseline, then report the performance overhead and
// the security-metadata bandwidth overhead — the paper's two headline
// metrics — for a single benchmark.
package main

import (
	"fmt"
	"log"

	"shmgpu"
)

func main() {
	cfg := shmgpu.QuickConfig() // scaled-down GPU for a fast first run

	const workload = "fdtd2d" // the paper's streaming showcase benchmark

	base, err := shmgpu.Run(cfg, workload, "Baseline")
	if err != nil {
		log.Fatal(err)
	}
	shm, err := shmgpu.Run(cfg, workload, "SHM")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n", workload)
	fmt.Printf("baseline IPC:        %.3f\n", base.IPC())
	fmt.Printf("SHM IPC:             %.3f\n", shm.IPC())
	fmt.Printf("normalized IPC:      %.3f\n", shm.IPC()/base.IPC())
	fmt.Printf("performance overhead %.2f%%\n", 100*(1-shm.IPC()/base.IPC()))
	fmt.Printf("bandwidth overhead:  %.2f%% of data traffic is security metadata\n",
		100*shm.BandwidthOverhead())
	fmt.Println()
	fmt.Println("available workloads:", shmgpu.Workloads())
	fmt.Println("available schemes:  ", shmgpu.Schemes())
}
