// Streaming: show the dual-granularity MAC machinery adapting to access
// patterns. A custom workload mixes a large streamed buffer with a
// randomly-accessed one; the simulation reports how the streaming detector
// classified chunks, the MAC traffic saved versus a per-block-MAC-only
// design, and the misprediction-recovery traffic the detectors cost.
package main

import (
	"fmt"

	"shmgpu"
	"shmgpu/internal/gpu"
	"shmgpu/internal/memdef"
	"shmgpu/internal/scheme"
	"shmgpu/internal/stats"
	"shmgpu/internal/workload"
)

func main() {
	// A synthetic kernel: 70% of memory instructions stream a 12 MiB
	// read-only buffer, 30% randomly poke a 4 MiB table.
	bench := workload.MustNew(workload.Spec{
		BenchName: "mixed-demo",
		Buffers: []workload.Buffer{
			{Name: "stream-in", Bytes: 12 << 20, Space: memdef.SpaceGlobal,
				Pattern: workload.Stream, ReadOnly: true, Weight: 0.70, HostCopied: true},
			{Name: "rand-table", Bytes: 4 << 20, Space: memdef.SpaceGlobal,
				Pattern: workload.Random, WriteFrac: 0.3, Weight: 0.30},
		},
		ComputePerMem:   10,
		MemInstsPerWarp: 160,
		Seed:            7,
	})

	cfg := shmgpu.QuickConfig()
	run := func(opts scheme.Scheme) shmgpu.Result {
		res := gpu.NewSystem(cfg, opts.Options).Run(bench)
		res.Scheme = opts.Name
		return res
	}

	shm := run(scheme.SHM)               // dual-granularity MACs
	blockOnly := run(scheme.SHMReadOnly) // per-block MACs only
	baseline := run(scheme.Baseline)     // no protection

	fmt.Println("mixed streaming/random workload under SHM:")
	fmt.Printf("  chunks detected streaming: %d\n", shm.Reg.Get("det_stream"))
	fmt.Printf("  chunks detected random:    %d\n", shm.Reg.Get("det_random"))
	fmt.Printf("  mispredict recoveries:     %d (re-fetch block MACs) + %d (re-fetch chunk data)\n",
		shm.Reg.Get("mp_refetch_blk_macs"), shm.Reg.Get("mp_refetch_chunk_data"))
	fmt.Println()
	fmt.Printf("  MAC traffic, dual-granularity: %8d bytes\n", shm.Traffic.Bytes(stats.TrafficMAC))
	fmt.Printf("  MAC traffic, block-MAC only:   %8d bytes\n", blockOnly.Traffic.Bytes(stats.TrafficMAC))
	fmt.Printf("  mispredict traffic:            %8d bytes\n", shm.Traffic.Bytes(stats.TrafficMispredict))
	fmt.Println()
	fmt.Printf("  normalized IPC: SHM %.3f, block-MAC-only %.3f\n",
		shm.IPC()/baseline.IPC(), blockOnly.IPC()/baseline.IPC())
	fmt.Printf("  bandwidth overhead: SHM %.2f%%, block-MAC-only %.2f%%\n",
		100*shm.BandwidthOverhead(), 100*blockOnly.BandwidthOverhead())
}
