// Package shmgpu reproduces "Adaptive Security Support for Heterogeneous
// Memory on GPUs" (Yuan, Awad, Yudha, Solihin, Zhou — HPCA 2022) as a Go
// library.
//
// The paper proposes SHM, adaptive secure-memory support for GPU device
// memory: read-only regions share one on-chip encryption counter (no
// per-block counters, no integrity-tree coverage), and streaming-accessed
// chunks use a coarse per-chunk MAC instead of per-block MACs, with two
// lightweight hardware detectors deciding which mechanism each access uses.
//
// The module has two faces:
//
//   - The functional library (package shmgpu/securemem): a software secure
//     memory that really encrypts, authenticates and freshness-protects
//     data, exposes the attacker's view of off-chip memory, and detects
//     tampering and replay — including the paper's cross-kernel replay —
//     with the adaptive mechanisms implemented faithfully.
//
//   - The timing simulator (this package's Run API over internal/gpu):
//     a cycle-level GPU memory-hierarchy model (SMs, sectored L1/L2 with
//     MSHRs, 12 GDDR partitions) with a Memory Encryption Engine per
//     partition, used to reproduce every figure of the paper's evaluation:
//     normalized IPC, bandwidth overheads, predictor accuracy, energy, and
//     the L2-victim-cache study.
//
// Quick start:
//
//	res, err := shmgpu.Run(shmgpu.QuickConfig(), "fdtd2d", "SHM")
//	base, _ := shmgpu.Run(shmgpu.QuickConfig(), "fdtd2d", "Baseline")
//	fmt.Printf("normalized IPC: %.3f\n", res.IPC()/base.IPC())
//
// The cmd/paperbench binary regenerates all paper tables and figures;
// cmd/shmsim runs single simulations with detailed statistics; and
// cmd/attackdemo drives the functional library under physical attacks.
package shmgpu

import (
	"fmt"

	"shmgpu/internal/experiments"
	"shmgpu/internal/gpu"
	"shmgpu/internal/obs"
	"shmgpu/internal/report"
	"shmgpu/internal/scheme"
	"shmgpu/internal/telemetry"
	"shmgpu/internal/workload"
)

// Config is the simulated GPU configuration (paper Table V by default).
type Config = gpu.Config

// Result is one simulation run's outcome: cycles, instructions, per-class
// DRAM traffic, cache and predictor statistics.
type Result = gpu.Result

// DefaultConfig returns the paper's baseline GPU configuration: 30 SMs,
// 12 memory partitions, 3 MB L2, 336 GB/s GDDR.
func DefaultConfig() Config { return gpu.DefaultConfig() }

// QuickConfig returns a scaled-down configuration for fast experimentation.
func QuickConfig() Config { return experiments.QuickConfig() }

// Workloads lists the benchmark models (paper Table VII).
func Workloads() []string { return workload.Names() }

// MemoryIntensiveWorkloads lists the 15 workloads the paper's averages use.
func MemoryIntensiveWorkloads() []string { return workload.MemoryIntensive() }

// Schemes lists the secure-memory designs (paper Table VIII), plus
// "Baseline" (the insecure GPU results are normalized against).
func Schemes() []string {
	var out []string
	for _, s := range scheme.All() {
		out = append(out, s.Name)
	}
	return out
}

// SchemeDescription returns the one-line description of a design.
func SchemeDescription(name string) (string, error) {
	s, err := scheme.ByName(name)
	if err != nil {
		return "", err
	}
	return s.Description, nil
}

// TelemetryConfig configures an observability Collector (sampling interval,
// event capture).
type TelemetryConfig = telemetry.Config

// Collector aggregates probe events, histograms and the sampled timeline of
// one instrumented run. See package internal/telemetry for the exporters.
type Collector = telemetry.Collector

// RunSummary is the neutral end-of-run summary the telemetry exporters
// consume; build one with Summarize.
type RunSummary = telemetry.RunSummary

// Manifest identifies one run in every telemetry export.
type Manifest = telemetry.Manifest

// RunWithTelemetry simulates one workload under one design with the
// observability layer attached: probe events, latency histograms and an
// interval-sampled timeline accumulate in the returned Collector.
func RunWithTelemetry(cfg Config, workloadName, schemeName string, tcfg TelemetryConfig) (Result, *Collector, error) {
	return RunWithTelemetrySeeded(cfg, workloadName, schemeName, 0, tcfg)
}

// RunWithTelemetrySeeded is RunWithTelemetry with an explicit workload
// seed. Seed 0 keeps the benchmark's built-in seed; any other value
// rebases the warp programs' random streams. Runs with identical
// (config, workload, scheme, seed) are bit-for-bit reproducible.
func RunWithTelemetrySeeded(cfg Config, workloadName, schemeName string, seed int64, tcfg TelemetryConfig) (Result, *Collector, error) {
	sch, err := scheme.ByName(schemeName)
	if err != nil {
		return Result{}, nil, err
	}
	return experiments.RunInstrumentedSeeded(cfg, workloadName, seed, sch, tcfg)
}

// RunObservedSeeded is RunWithTelemetrySeeded with a live-observability
// run handle attached (see internal/obs): the simulator feeds the run's
// heartbeat and phase spans and honours its cancel flag. A nil orun is
// exactly RunWithTelemetrySeeded.
func RunObservedSeeded(cfg Config, workloadName, schemeName string, seed int64, tcfg TelemetryConfig, orun *obs.Run) (Result, *Collector, error) {
	sch, err := scheme.ByName(schemeName)
	if err != nil {
		return Result{}, nil, err
	}
	return experiments.RunObservedSeeded(cfg, workloadName, seed, sch, tcfg, orun)
}

// ForkSpec selects one forked child's execution strategy (shard count and
// fast-forward mode) — the knobs proven byte-neutral by the equivalence
// corpora, and therefore the only ones a forked child may vary.
type ForkSpec = experiments.ForkSpec

// RunForkedSeeded warms one (workload, scheme, seed) run to warmCycle,
// captures the complete simulator state once, and forks one child per
// spec from the snapshot, amortizing the warmup across the specs. Every
// child's Result, statistics, and telemetry are byte-identical to the
// same configuration run from scratch. If the workload completes before
// warmCycle, each spec silently falls back to a from-scratch run.
func RunForkedSeeded(cfg Config, workloadName, schemeName string, seed int64, warmCycle uint64, tcfg TelemetryConfig, specs []ForkSpec) ([]Result, []*Collector, error) {
	sch, err := scheme.ByName(schemeName)
	if err != nil {
		return nil, nil, err
	}
	return experiments.RunForkedSeeded(cfg, workloadName, seed, sch, warmCycle, tcfg, specs)
}

// WriteSnapshot warms a run to warmCycle and writes its state to path
// (checksummed and atomically renamed — a killed writer never leaves a
// loadable file). It reports whether a snapshot was written: a workload
// finishing before warmCycle leaves nothing to capture.
func WriteSnapshot(cfg Config, workloadName, schemeName string, seed int64, warmCycle uint64, tcfg TelemetryConfig, path string) (bool, error) {
	sch, err := scheme.ByName(schemeName)
	if err != nil {
		return false, err
	}
	return experiments.WriteSnapshotSeeded(cfg, workloadName, seed, sch, warmCycle, tcfg, path)
}

// RestoreRun loads a snapshot written by WriteSnapshot and resumes it to
// completion. Workload, scheme, seed, and telemetry configuration must
// match the capturing run; cfg may vary only the execution-strategy knobs
// (shards, fast-forward).
func RestoreRun(cfg Config, workloadName, schemeName string, seed int64, tcfg TelemetryConfig, path string) (Result, *Collector, error) {
	sch, err := scheme.ByName(schemeName)
	if err != nil {
		return Result{}, nil, err
	}
	return experiments.RestoreRunSeeded(cfg, workloadName, seed, sch, tcfg, path)
}

// Summarize converts a Result into the exporter-facing RunSummary.
func Summarize(res Result) RunSummary { return experiments.TelemetrySummary(res) }

// Run simulates one workload under one secure-memory design.
func Run(cfg Config, workloadName, schemeName string) (Result, error) {
	return RunSeeded(cfg, workloadName, schemeName, 0)
}

// RunSeeded is Run with an explicit workload seed (0 keeps the
// benchmark's built-in seed).
func RunSeeded(cfg Config, workloadName, schemeName string, seed int64) (Result, error) {
	bench, err := workload.ByNameSeeded(workloadName, seed)
	if err != nil {
		return Result{}, err
	}
	sch, err := scheme.ByName(schemeName)
	if err != nil {
		return Result{}, err
	}
	res := gpu.NewSystem(cfg, sch.Options).Run(bench)
	res.Scheme = sch.Name
	return res, nil
}

// EffectiveSeed resolves the seed a run with the given workload and seed
// argument will actually use (the benchmark's built-in seed when seed is
// 0), so callers can record it in the run manifest.
func EffectiveSeed(workloadName string, seed int64) (int64, error) {
	bench, err := workload.ByNameSeeded(workloadName, seed)
	if err != nil {
		return 0, err
	}
	return bench.Seed(), nil
}

// Runner caches simulation results across figure generators; it is the
// engine behind cmd/paperbench and the benchmark harness.
type Runner = experiments.Runner

// NewRunner builds a Runner over cfg and the given workload subset
// (nil = the 15 memory-intensive workloads).
func NewRunner(cfg Config, workloads []string) *Runner {
	return experiments.NewRunner(cfg, workloads)
}

// Table is an aligned text table produced by the figure generators.
type Table = report.Table

// Figure regenerates one of the paper's figures/tables by identifier:
// "5", "10", "11", "12", "13", "14", "15", "16", "vii", "ix", "summary",
// "oversub" (the heterogeneous-memory oversubscription sweep).
func Figure(r *Runner, id string) (*Table, error) {
	switch id {
	case "oversub":
		return r.FigOversub(), nil
	case "5":
		return r.Fig5(), nil
	case "10":
		return r.Fig10(), nil
	case "11":
		return r.Fig11(), nil
	case "12":
		return r.Fig12(), nil
	case "13":
		return r.Fig13(), nil
	case "14":
		return r.Fig14(), nil
	case "15":
		return r.Fig15(), nil
	case "16":
		return r.Fig16(), nil
	case "vii":
		return r.TableVII(), nil
	case "ix":
		return experiments.TableIX(), nil
	case "summary":
		return r.Summary(), nil
	}
	return nil, fmt.Errorf("shmgpu: unknown figure %q", id)
}
