package shmgpu_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"shmgpu"
	"shmgpu/internal/telemetry"
)

// runArtifacts captures everything a run exports that must be reproducible:
// the marshaled stats.Registry snapshot and the full JSONL trace stream.
type runArtifacts struct {
	snapshot []byte
	jsonl    []byte
	cycles   uint64
}

func runOnce(t *testing.T, seed int64) runArtifacts {
	t.Helper()
	cfg := shmgpu.QuickConfig()
	tcfg := shmgpu.TelemetryConfig{SampleInterval: 1000, CaptureEvents: true}
	res, col, err := shmgpu.RunWithTelemetrySeeded(cfg, "atax", "SHM", seed, tcfg)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	snap, err := json.Marshal(res.Reg.Snapshot())
	if err != nil {
		t.Fatalf("marshaling snapshot: %v", err)
	}
	// A fixed manifest (no wall-clock fields) so the JSONL comparison tests
	// the simulation stream, not the timestamps around it.
	m := shmgpu.Manifest{
		Tool:          "determinism-test",
		SchemaVersion: telemetry.SchemaVersion,
		Workload:      "atax",
		Scheme:        "SHM",
		SMs:           cfg.SMs,
		Partitions:    cfg.Partitions,
		Seed:          seed,
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, col, shmgpu.Summarize(res), m); err != nil {
		t.Fatalf("writing JSONL: %v", err)
	}
	return runArtifacts{snapshot: snap, jsonl: buf.Bytes(), cycles: res.Cycles}
}

// TestRunsAreByteIdentical is the determinism regression gate: two
// back-to-back runs of the same (workload, scheme, seed) must produce
// byte-identical registry snapshots and byte-identical JSONL export
// streams. Any nondeterminism source that slips past the static checks
// (shmlint's nodeterminism analyzer) lands here.
func TestRunsAreByteIdentical(t *testing.T) {
	first := runOnce(t, 424242)
	second := runOnce(t, 424242)
	if !bytes.Equal(first.snapshot, second.snapshot) {
		t.Errorf("stats.Registry snapshots differ between identical runs:\nfirst:  %s\nsecond: %s",
			first.snapshot, second.snapshot)
	}
	if !bytes.Equal(first.jsonl, second.jsonl) {
		t.Errorf("JSONL export streams differ between identical runs (first %d bytes vs %d bytes)",
			len(first.jsonl), len(second.jsonl))
	}
}

// TestSeedChangesTheRun asserts the seed actually threads through to the
// warp programs: two different seeds must not produce the same simulation.
func TestSeedChangesTheRun(t *testing.T) {
	a := runOnce(t, 7)
	b := runOnce(t, 8)
	if a.cycles == b.cycles && bytes.Equal(a.snapshot, b.snapshot) {
		t.Errorf("seed 7 and seed 8 produced identical runs (%d cycles, same counters); seed is not reaching the workload",
			a.cycles)
	}
}
