package shmgpu

import (
	"os"
	"strings"
	"sync"
	"testing"
)

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section. Each benchmark reports the wall time of producing its
// figure from a shared, cached run set, and logs the generated table so
// `go test -bench . -v` doubles as a report generator.
//
// By default the harness uses the scaled-down quick configuration over all
// memory-intensive workloads so the full suite finishes in minutes; run
// cmd/paperbench (without -quick) for the full-scale reproduction used in
// EXPERIMENTS.md.

var (
	benchOnce   sync.Once
	benchRunner *Runner
)

func harness() *Runner {
	benchOnce.Do(func() {
		// SHMGPU_BENCH_WORKLOADS selects a comma-separated subset for
		// constrained machines; default is the full memory-intensive set.
		var wls []string
		if env := os.Getenv("SHMGPU_BENCH_WORKLOADS"); env != "" {
			for _, w := range strings.Split(env, ",") {
				if w = strings.TrimSpace(w); w != "" {
					wls = append(wls, w)
				}
			}
		}
		benchRunner = NewRunner(QuickConfig(), wls)
	})
	return benchRunner
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	r := harness()
	for i := 0; i < b.N; i++ {
		tb, err := Figure(r, id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb.String())
		}
	}
}

// BenchmarkFig05_AccessCharacterization regenerates Fig. 5: the streaming
// and read-only access ratios per workload.
func BenchmarkFig05_AccessCharacterization(b *testing.B) { benchFigure(b, "5") }

// BenchmarkFig10_ReadOnlyPrediction regenerates Fig. 10: the read-only
// predictor's accuracy breakdown (Correct / MP_Init / MP_Aliasing).
func BenchmarkFig10_ReadOnlyPrediction(b *testing.B) { benchFigure(b, "10") }

// BenchmarkFig11_StreamingPrediction regenerates Fig. 11: the streaming
// predictor's five-way accuracy breakdown.
func BenchmarkFig11_StreamingPrediction(b *testing.B) { benchFigure(b, "11") }

// BenchmarkFig12_OverallPerformance regenerates Fig. 12: normalized IPC of
// Naive, Common_ctr, PSSM, SHM and SHM_upper_bound.
func BenchmarkFig12_OverallPerformance(b *testing.B) { benchFigure(b, "12") }

// BenchmarkFig13_Breakdown regenerates Fig. 13: the effect of each
// optimization added one at a time.
func BenchmarkFig13_Breakdown(b *testing.B) { benchFigure(b, "13") }

// BenchmarkFig14_Bandwidth regenerates Fig. 14: security-metadata bandwidth
// overhead per design.
func BenchmarkFig14_Bandwidth(b *testing.B) { benchFigure(b, "14") }

// BenchmarkFig15_Energy regenerates Fig. 15: normalized energy per
// instruction.
func BenchmarkFig15_Energy(b *testing.B) { benchFigure(b, "15") }

// BenchmarkFig16_VictimCache regenerates Fig. 16: SHM with the L2 as a
// victim cache for security metadata.
func BenchmarkFig16_VictimCache(b *testing.B) { benchFigure(b, "16") }

// BenchmarkTableVII_BandwidthUtilization checks the baseline DRAM bandwidth
// utilization against the paper's per-benchmark bands.
func BenchmarkTableVII_BandwidthUtilization(b *testing.B) { benchFigure(b, "vii") }

// BenchmarkTableIX_HardwareOverhead reports the detector hardware cost
// (pure arithmetic; included for completeness of the per-table index).
func BenchmarkTableIX_HardwareOverhead(b *testing.B) { benchFigure(b, "ix") }

// BenchmarkSummary_Headline reproduces the paper's abstract numbers: the
// average performance overhead of each design.
func BenchmarkSummary_Headline(b *testing.B) { benchFigure(b, "summary") }

// BenchmarkFigOversub regenerates the heterogeneous-memory extension: the
// oversubscription sweep under the host-backed tier.
func BenchmarkFigOversub(b *testing.B) { benchFigure(b, "oversub") }

// BenchmarkSingleRun measures the cost of one full workload simulation
// (the unit everything above is built from).
func BenchmarkSingleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(QuickConfig(), "atax", "SHM"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleRunEveryCycle is BenchmarkSingleRun with event-horizon
// cycle skipping disabled: the A/B pair quantifies how much the fast-forward
// path buys (the equivalence tests in fastforward_test.go prove it changes
// nothing else).
func BenchmarkSingleRunEveryCycle(b *testing.B) {
	b.ReportAllocs()
	cfg := QuickConfig()
	cfg.DisableFastForward = true
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, "atax", "SHM"); err != nil {
			b.Fatal(err)
		}
	}
}
