package shmgpu

import (
	"strings"
	"testing"
)

func TestWorkloadAndSchemeListings(t *testing.T) {
	if len(Workloads()) != 16 {
		t.Fatalf("workloads = %d, want 16", len(Workloads()))
	}
	if len(MemoryIntensiveWorkloads()) != 15 {
		t.Fatalf("memory-intensive = %d, want 15", len(MemoryIntensiveWorkloads()))
	}
	schemes := Schemes()
	if len(schemes) != 10 {
		t.Fatalf("schemes = %d, want 10", len(schemes))
	}
	if schemes[0] != "Baseline" {
		t.Fatalf("first scheme = %q, want Baseline", schemes[0])
	}
}

func TestSchemeDescription(t *testing.T) {
	desc, err := SchemeDescription("SHM")
	if err != nil || !strings.Contains(desc, "dual-granularity") {
		t.Fatalf("desc = %q, err = %v", desc, err)
	}
	if _, err := SchemeDescription("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(QuickConfig(), "nope", "SHM"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run(QuickConfig(), "atax", "nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	res, err := Run(QuickConfig(), "atax", "SHM")
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Scheme != "SHM" || res.Workload != "atax" {
		t.Fatalf("labels wrong: %q %q", res.Scheme, res.Workload)
	}
}

func TestFigureDispatch(t *testing.T) {
	r := NewRunner(QuickConfig(), []string{"atax"})
	if _, err := Figure(r, "ix"); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure(r, "99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFigureGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := NewRunner(QuickConfig(), []string{"atax"})
	for _, id := range []string{"12", "14", "oversub"} {
		tb, err := Figure(r, id)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if !strings.Contains(tb.String(), "atax") {
			t.Fatalf("figure %s missing workload:\n%s", id, tb.String())
		}
	}
}
