package shmgpu_test

import (
	"fmt"
	"testing"

	"shmgpu"
	"shmgpu/internal/testutil"
)

// oversubQuickConfig returns the quick configuration with the UVM host
// tier enabled at the given oversubscription ratio. Pages stay at the
// 64 KiB default; the migration link is widened to 256 B/cycle so
// oversubscribed quick cells (which must demand-migrate the overflow
// fraction of a multi-MB working set, serially) finish inside the
// quick-config cycle budget.
func oversubQuickConfig(ratio float64) shmgpu.Config {
	cfg := shmgpu.QuickConfig()
	cfg.HostTier = true
	cfg.OversubRatio = ratio
	cfg.UVMPCIeBytesPerCycle = 256
	return cfg
}

// counter looks a key up in the run's stats registry; ok reports whether
// the key exists at all (the UVM layer only registers nonzero counters,
// so absence is itself an assertion target).
func counter(res shmgpu.Result, name string) (uint64, bool) {
	for _, c := range res.Reg.Snapshot() {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// TestHostTierFitByteIdentical is the migration-equivalence gate the
// fuzz oracle generalizes: with the host tier enabled at an
// oversubscription ratio ≥ 1.0 the working set fits in device frames,
// no access ever faults, and the run must be byte-identical — Result,
// stats registry, telemetry JSONL — to the same cell with the tier
// disabled.
func TestHostTierFitByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	cells := []struct {
		workload string
		scheme   string
		seed     int64
	}{
		{"atax", "SHM", 1},
		{"bfs", "Baseline", 2},
	}
	for _, c := range cells {
		for _, ratio := range []float64{1.0, 1.5} {
			c, ratio := c, ratio
			t.Run(fmt.Sprintf("%s_%s_ratio%.1f", c.workload, c.scheme, ratio), func(t *testing.T) {
				on := testutil.RunCellCfg(t, oversubQuickConfig(ratio), c.workload, c.scheme, c.seed)
				off := testutil.RunCell(t, c.workload, c.scheme, c.seed, 0, false)
				testutil.AssertEqual(t, "host-tier(fit)", on, "host-tier-off", off)
			})
		}
	}
}

// TestOversubscribedAccounting pins the tier's bookkeeping on a real
// oversubscribed run: every fault eventually completes (the run drains),
// migrated bytes match the page size, eviction happens (the frame budget
// is half the working set), and the faulting path charges replays for
// the cycles the paused access spends retrying.
func TestOversubscribedAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	cfg := oversubQuickConfig(0.5)
	// The quick deadline truncates atax/SHM mid-run; give the cell room
	// to finish so drain invariants (every fault completed) are checkable.
	cfg.MaxCycles = 1_000_000
	res, err := shmgpu.RunSeeded(cfg, "atax", "SHM", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("oversubscribed quick cell did not complete in %d cycles", res.Cycles)
	}
	faults, ok := counter(res, "uvm_faults")
	if !ok || faults == 0 {
		t.Fatalf("uvm_faults = %d (present=%v); oversubscribed run must fault", faults, ok)
	}
	migrations, _ := counter(res, "uvm_migrations_in")
	if migrations != faults {
		t.Errorf("uvm_migrations_in = %d, want %d (every fault must complete by drain)", migrations, faults)
	}
	bytesIn, _ := counter(res, "uvm_bytes_in")
	if want := faults * (64 << 10); bytesIn != want {
		t.Errorf("uvm_bytes_in = %d, want faults×64KiB = %d", bytesIn, want)
	}
	if evictions, _ := counter(res, "uvm_evictions"); evictions == 0 {
		t.Error("uvm_evictions = 0; a 0.5-ratio run must evict")
	}
	if replays, _ := counter(res, "uvm_replays"); replays < faults {
		t.Errorf("uvm_replays = %d < faults = %d; each paused access retries at least once", replays, faults)
	}
}

// TestHostIntegrityModes pins the two metadata-migration modes
// (satellite: RO-predictor across the fault boundary). Under the default
// rebuild mode a fault-in overwrites the page's regions device-side, so
// the RO predictor sees the migration (uvm_ro_transitions registered when
// predicted-read-only regions get rewritten). Under host-side integrity
// the fault-in only re-keys: the detectors must see nothing
// (uvm_ro_transitions absent) and the per-fault metadata charge is the
// cheap re-key cost.
func TestHostIntegrityModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	rebuildCfg := oversubQuickConfig(0.5)
	rebuild, err := shmgpu.RunSeeded(rebuildCfg, "atax", "SHM", 1)
	if err != nil {
		t.Fatal(err)
	}
	hostCfg := oversubQuickConfig(0.5)
	hostCfg.UVMHostIntegrity = "hostside"
	hostside, err := shmgpu.RunSeeded(hostCfg, "atax", "SHM", 1)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range []struct {
		name string
		res  shmgpu.Result
	}{{"rebuild", rebuild}, {"hostside", hostside}} {
		if f, _ := counter(r.res, "uvm_faults"); f == 0 {
			t.Fatalf("%s: no faults; the mode comparison needs migrations", r.name)
		}
	}
	if tr, ok := counter(rebuild, "uvm_ro_transitions"); !ok || tr == 0 {
		t.Errorf("rebuild mode: uvm_ro_transitions = %d (present=%v); fault-ins over atax's read-only matrix must flip predicted-RO regions", tr, ok)
	}
	if tr, ok := counter(hostside, "uvm_ro_transitions"); ok {
		t.Errorf("hostside mode: uvm_ro_transitions = %d registered; host-side integrity must not perturb the detectors", tr)
	}
	rbMeta, _ := counter(rebuild, "uvm_meta_cycles")
	hsMeta, _ := counter(hostside, "uvm_meta_cycles")
	if rbMeta == 0 || hsMeta == 0 || hsMeta >= rbMeta {
		t.Errorf("uvm_meta_cycles rebuild=%d hostside=%d; re-key must be strictly cheaper than rebuild", rbMeta, hsMeta)
	}
}

// TestNoPhantomAccesses pins the pause-and-replay protocol's key
// invariant: a faulted access is held at the head of its SM's miss queue
// and replayed — it is never duplicated, dropped, or issued to the cache
// hierarchy while non-resident. Both runs complete, so the instruction
// count (fixed per program) must match exactly; only timing may differ.
// (That replay stalls also do not split detector epoch windows is pinned
// byte-for-byte by TestFastForwardMatchesEveryCycleOversubscribed: the
// sampled timeline and MAT/epoch counters are identical whether the
// migration wait is fast-forwarded or ticked through.)
func TestNoPhantomAccesses(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	overCfg := oversubQuickConfig(0.5)
	overCfg.MaxCycles = 1_000_000
	over, err := shmgpu.RunSeeded(overCfg, "atax", "SHM", 1)
	if err != nil {
		t.Fatal(err)
	}
	offCfg := shmgpu.QuickConfig()
	offCfg.MaxCycles = 1_000_000
	off, err := shmgpu.RunSeeded(offCfg, "atax", "SHM", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !over.Completed || !off.Completed {
		t.Fatalf("both runs must complete (oversub=%v off=%v)", over.Completed, off.Completed)
	}
	if over.Instructions != off.Instructions {
		t.Errorf("instructions diverge: oversubscribed=%d tier-off=%d; replays must not duplicate or drop accesses", over.Instructions, off.Instructions)
	}
	if over.Cycles <= off.Cycles {
		t.Errorf("oversubscribed run took %d cycles vs %d tier-off; migration stalls must cost time", over.Cycles, off.Cycles)
	}
}

// TestPrefetchFitByteIdentical extends the migration-equivalence gate to
// every migration-ahead configuration: at ratio ≥ 1.0 no access faults,
// so no fault streams ever form, no prefetch is ever issued, and batching
// and large-page granularity have nothing to transfer — every policy and
// knob combination must stay byte-identical to the tier-off run. This is
// the "prefetcher provably idle at fit" anchor the fuzz
// prefetch-equivalence oracle generalizes.
func TestPrefetchFitByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	variants := []struct {
		name string
		mut  func(*shmgpu.Config)
	}{
		{"stride", func(c *shmgpu.Config) { c.UVMPrefetch = "stride" }},
		{"stream", func(c *shmgpu.Config) { c.UVMPrefetch = "stream" }},
		{"stride_batch4", func(c *shmgpu.Config) { c.UVMPrefetch = "stride"; c.UVMBatchPages = 4 }},
		{"stream_largepage", func(c *shmgpu.Config) { c.UVMPrefetch = "stream"; c.UVMLargePages = true }},
	}
	off := testutil.RunCell(t, "atax", "SHM", 1, 0, false)
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := oversubQuickConfig(1.0)
			v.mut(&cfg)
			on := testutil.RunCellCfg(t, cfg, "atax", "SHM", 1)
			testutil.AssertEqual(t, "prefetch(fit)", on, "host-tier-off", off)
		})
	}
}

// TestPrefetchClosesCliff is the efficacy gate for the migration-ahead
// engine: on a streaming workload at ratio 0.5, stream-aware prefetching
// must issue prefetches, coalesce batches, and convert demand faults into
// ahead-of-access arrivals — strictly fewer faults and strictly higher
// IPC than the demand-only tier. Stride prefetching must do the same
// without the classifier.
func TestPrefetchClosesCliff(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	base := oversubQuickConfig(0.5)
	base.MaxCycles = 1_000_000
	demand, err := shmgpu.RunSeeded(base, "atax", "SHM", 1)
	if err != nil {
		t.Fatal(err)
	}
	demandFaults, _ := counter(demand, "uvm_faults")
	if demandFaults == 0 {
		t.Fatal("demand-only reference did not fault; cliff test needs an oversubscribed cell")
	}
	for _, policy := range []string{"stride", "stream"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			cfg := base
			cfg.UVMPrefetch = policy
			res, err := shmgpu.RunSeeded(cfg, "atax", "SHM", 1)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("prefetch run did not complete in %d cycles", res.Cycles)
			}
			prefetches, _ := counter(res, "uvm_prefetches")
			if prefetches == 0 {
				t.Fatal("uvm_prefetches = 0; the streaming workload must trigger the prefetcher")
			}
			batches, _ := counter(res, "uvm_batches")
			if batches == 0 {
				t.Error("uvm_batches = 0; sequential prefetches must coalesce into multi-page transfers")
			}
			useful, _ := counter(res, "uvm_pref_useful")
			if useful == 0 {
				t.Error("uvm_pref_useful = 0; prefetched pages must be touched before eviction")
			}
			faults, _ := counter(res, "uvm_faults")
			if faults >= demandFaults {
				t.Errorf("uvm_faults = %d, want < demand-only %d", faults, demandFaults)
			}
			if res.IPC() <= demand.IPC() {
				t.Errorf("IPC = %.4f, want > demand-only %.4f", res.IPC(), demand.IPC())
			}
		})
	}
}
