package shmgpu_test

import (
	"fmt"
	"testing"

	"shmgpu/internal/testutil"
)

// TestParallelMatchesSequential is the shard-engine equivalence gate: over
// a corpus of (workload, scheme, seed) cells crossed with shard counts and
// both fast-forward modes, a sharded run must be indistinguishable from
// the sequential reference — identical Result fields, an identical
// stats-registry snapshot, and a byte-identical telemetry JSONL stream.
// The corpus includes a scheme with cross-partition metadata
// (Common_ctr), which the locality gate must silently run sequentially —
// equality there pins the fallback path. The CI race job runs this test
// under -race, which is what turns "byte-identical" into "and no data
// races reached the detector either".
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus of full simulations; skipped in -short")
	}
	cells := []struct {
		workload string
		scheme   string
		seed     int64
		shards   []int
	}{
		// Schemes chosen as in TestFastForwardMatchesEveryCycle: no MEE,
		// full SHM machinery, RO-counter transitions, and the non-local
		// metadata mapping that exercises the sequential-fallback gate.
		{"atax", "Baseline", 1, []int{1, 2, 4, 8}},
		{"atax", "SHM", 1, []int{2, 4, 8}},
		{"bfs", "SHM", 2, []int{2}},
		{"fdtd2d", "SHM_readOnly", 3, []int{4}},
		{"mvt", "Common_ctr", 4, []int{4}},
	}
	for _, c := range cells {
		for _, disableFF := range []bool{false, true} {
			// One sequential reference per (cell, fast-forward mode) serves
			// every shard count — the reference is deterministic, so rerunning
			// it per shard count would only burn CI minutes.
			seq := testutil.RunCell(t, c.workload, c.scheme, c.seed, 0, disableFF)
			for _, shards := range c.shards {
				c, shards, disableFF := c, shards, disableFF
				t.Run(fmt.Sprintf("%s_%s_seed%d_shards%d_ff%v", c.workload, c.scheme, c.seed, shards, !disableFF), func(t *testing.T) {
					par := testutil.RunCell(t, c.workload, c.scheme, c.seed, shards, disableFF)
					testutil.AssertEqual(t, "parallel", par, "sequential", seq)
				})
			}
		}
	}
}

// TestParallelMatchesSequentialOversubscribed extends the shard gate to
// the UVM host tier: page faults, replays, migration completions, and
// the metadata teardown/rebuild they trigger all happen in sequential
// tick phases (tier mutations only inside the SM-ordered drains and the
// pre-drain tier tick), so an oversubscribed sharded run must stay
// byte-identical to the sequential reference. The CI uvm-smoke job runs
// this under -race, which also proves the tier is never touched
// concurrently.
func TestParallelMatchesSequentialOversubscribed(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus of full simulations; skipped in -short")
	}
	cells := []struct {
		workload string
		scheme   string
		seed     int64
		ratio    float64
		prefetch string
	}{
		{"atax", "Baseline", 1, 0.5, ""},
		{"atax", "SHM", 1, 0.5, ""},
		{"bfs", "SHM", 2, 0.75, ""},
		// Migration-ahead cells: prefetch decisions, batch coalescing,
		// and eager evictions are made during the sequential tier tick,
		// so sharding must not reorder them.
		{"atax", "SHM", 1, 0.5, "stride"},
		{"atax", "SHM", 1, 0.5, "stream"},
	}
	for _, c := range cells {
		cfg := oversubQuickConfig(c.ratio)
		cfg.UVMPrefetch = c.prefetch
		seq := testutil.RunCellCfg(t, cfg, c.workload, c.scheme, c.seed)
		for _, shards := range []int{1, 4} {
			c, shards := c, shards
			name := fmt.Sprintf("%s_%s_ratio%.2f_shards%d", c.workload, c.scheme, c.ratio, shards)
			if c.prefetch != "" {
				name += "_" + c.prefetch
			}
			t.Run(name, func(t *testing.T) {
				pcfg := oversubQuickConfig(c.ratio)
				pcfg.UVMPrefetch = c.prefetch
				pcfg.ParallelShards = shards
				par := testutil.RunCellCfg(t, pcfg, c.workload, c.scheme, c.seed)
				testutil.AssertEqual(t, "parallel", par, "sequential", seq)
			})
		}
	}
}
