package shmgpu_test

import (
	"bytes"
	"fmt"
	"testing"
)

// runShards executes one (workload, scheme, seed) cell under the sharded
// parallel engine (shards > 0) or the sequential reference (shards = 0),
// with fast-forward on or off, and returns the full artifact set.
func runShards(t *testing.T, workload, scheme string, seed int64, shards int, disableFF bool) ffArtifacts {
	t.Helper()
	return runCell(t, workload, scheme, seed, shards, disableFF)
}

// TestParallelMatchesSequential is the shard-engine equivalence gate: over
// a corpus of (workload, scheme, seed) cells crossed with shard counts and
// both fast-forward modes, a sharded run must be indistinguishable from
// the sequential reference — identical Result fields, an identical
// stats-registry snapshot, and a byte-identical telemetry JSONL stream.
// The corpus includes a scheme with cross-partition metadata
// (Common_ctr), which the locality gate must silently run sequentially —
// equality there pins the fallback path. The CI race job runs this test
// under -race, which is what turns "byte-identical" into "and no data
// races reached the detector either".
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus of full simulations; skipped in -short")
	}
	cells := []struct {
		workload string
		scheme   string
		seed     int64
		shards   []int
	}{
		// Schemes chosen as in TestFastForwardMatchesEveryCycle: no MEE,
		// full SHM machinery, RO-counter transitions, and the non-local
		// metadata mapping that exercises the sequential-fallback gate.
		{"atax", "Baseline", 1, []int{1, 2, 4, 8}},
		{"atax", "SHM", 1, []int{2, 4, 8}},
		{"bfs", "SHM", 2, []int{2}},
		{"fdtd2d", "SHM_readOnly", 3, []int{4}},
		{"mvt", "Common_ctr", 4, []int{4}},
	}
	for _, c := range cells {
		for _, disableFF := range []bool{false, true} {
			// One sequential reference per (cell, fast-forward mode) serves
			// every shard count — the reference is deterministic, so rerunning
			// it per shard count would only burn CI minutes.
			seq := runShards(t, c.workload, c.scheme, c.seed, 0, disableFF)
			for _, shards := range c.shards {
				c, shards, disableFF := c, shards, disableFF
				t.Run(fmt.Sprintf("%s_%s_seed%d_shards%d_ff%v", c.workload, c.scheme, c.seed, shards, !disableFF), func(t *testing.T) {
					par := runShards(t, c.workload, c.scheme, c.seed, shards, disableFF)
					if par.result != seq.result {
						t.Errorf("Result diverges:\nparallel:   %s\nsequential: %s", par.result, seq.result)
					}
					if !bytes.Equal(par.snapshot, seq.snapshot) {
						t.Errorf("stats snapshots diverge:\nparallel:   %s\nsequential: %s", par.snapshot, seq.snapshot)
					}
					if !bytes.Equal(par.jsonl, seq.jsonl) {
						t.Errorf("telemetry JSONL diverges (%d vs %d bytes)", len(par.jsonl), len(seq.jsonl))
					}
				})
			}
		}
	}
}
