// Command shmfuzz drives differential-fuzzing campaigns over the
// simulator: it generates random valid configurations and synthetic
// workloads (internal/fuzz), runs each cell under multiple cycle-skipping
// modes and secure-memory schemes, and checks the oracle battery
// (fast-forward equivalence, determinism, sanitizer transparency,
// detector ablation, cross-scheme metamorphic orderings, conservation
// laws). Failing cells are shrunk to minimal replayable JSON repros and
// written to the corpus directory. With the ops-plane flags a campaign is
// observable live: streaming progress, per-cell spans, a (dump-only) stall
// watchdog, and an embedded HTTP endpoint.
//
// Usage:
//
//	shmfuzz -duration 60s -seed 1 -corpus testdata/fuzz/corpus
//	shmfuzz -cells 50 -seed 7
//	shmfuzz -cells 50 -progress -ops-listen :8080
//	shmfuzz -replay finding.json
//
// Exit codes: 0 when every oracle stayed green, 1 when a campaign found
// violations (findings written if -corpus is set), 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"shmgpu/internal/fuzz"
	"shmgpu/internal/obs"
	"shmgpu/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shmfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		duration = fs.Duration("duration", 0, "campaign wall-clock budget (e.g. 60s, 10m)")
		cells    = fs.Int("cells", 0, "campaign cell-count budget (0 = unbounded; set -duration instead)")
		seed     = fs.Int64("seed", 1, "campaign master seed (cell i derives from seed+i)")
		corpus   = fs.String("corpus", "", "directory for finding-NNN.json repros and manifest.json")
		budget   = fs.Int("shrink-budget", 0, "max oracle evaluations per shrink (0 = default)")
		replay   = fs.String("replay", "", "replay one case/finding JSON file instead of running a campaign")
		quiet    = fs.Bool("q", false, "suppress per-finding progress lines and informational logging")
		verbose  = fs.Bool("v", false, "verbose logging")
	)
	var opsFlags obs.Flags
	opsFlags.Register(fs)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "Usage: shmfuzz [flags]\n\nRuns differential-fuzzing campaigns over the simulator.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log := obs.NewLogger(stderr, "shmfuzz", obs.LevelFromFlags(*quiet, *verbose))
	if fs.NArg() != 0 {
		log.Errorf("unexpected arguments %v", fs.Args())
		fs.Usage()
		return 2
	}

	if *replay != "" {
		return replayCase(*replay, stdout, log)
	}
	if *duration <= 0 && *cells <= 0 {
		log.Errorf("set -duration and/or -cells to bound the campaign")
		fs.Usage()
		return 2
	}
	if opsFlags.WatchdogCancel {
		// A half-run oracle battery reports nonsense diffs, so fuzz cells
		// are never cancelled; the watchdog still dumps diagnostics.
		log.Infof("-watchdog-cancel is ignored for fuzzing campaigns (the watchdog is dump-only)")
		opsFlags.WatchdogCancel = false
	}

	plane, shutdown, err := opsFlags.Start("shmfuzz", *cells, stderr, log)
	if err != nil {
		log.Errorf("%v", err)
		return 2
	}

	opts := fuzz.CampaignOptions{
		Seed:         *seed,
		Duration:     *duration,
		MaxCells:     *cells,
		CorpusDir:    *corpus,
		ShrinkBudget: *budget,
		Ops:          plane,
	}
	if !*quiet {
		opts.Log = stdout
	}
	res, err := fuzz.RunCampaign(opts)
	sdErr := shutdown(telemetry.Manifest{
		Tool:          "shmfuzz",
		SchemaVersion: telemetry.SchemaVersion,
		Seed:          *seed,
	})
	if err != nil {
		log.Errorf("%v", err)
		return 2
	}
	if sdErr != nil {
		log.Errorf("%v", sdErr)
	}
	fmt.Fprintf(stdout, "shmfuzz: seed=%d cells=%d findings=%d invalid=%d elapsed=%s\n",
		res.Seed, res.Cells, len(res.Findings), res.InvalidCells,
		(time.Duration(res.ElapsedMillis) * time.Millisecond).String())
	if res.Clean() {
		fmt.Fprintln(stdout, "shmfuzz: all oracles green")
		return 0
	}
	for _, f := range res.Findings {
		fmt.Fprintf(stdout, "finding: cell %d violates %v\n", f.Index, f.Oracles)
	}
	if *corpus != "" {
		fmt.Fprintf(stdout, "shmfuzz: shrunk repros written to %s\n", *corpus)
	}
	return 1
}

// replayCase re-runs the oracle battery on a saved case. Finding files
// (which wrap the case) are accepted too, preferring the shrunk repro.
func replayCase(path string, stdout io.Writer, log *obs.Logger) int {
	c, err := loadReplay(path)
	if err != nil {
		log.Errorf("%v", err)
		return 2
	}
	vs, err := fuzz.CheckCase(c)
	if err != nil {
		log.Errorf("invalid case: %v", err)
		return 2
	}
	if len(vs) == 0 {
		fmt.Fprintf(stdout, "shmfuzz: %s: all oracles green\n", path)
		return 0
	}
	for _, v := range vs {
		fmt.Fprintf(stdout, "%s\n", v)
	}
	return 1
}

// loadReplay reads either a bare Case file or a campaign Finding file.
func loadReplay(path string) (fuzz.Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return fuzz.Case{}, err
	}
	var f fuzz.Finding
	if err := json.Unmarshal(data, &f); err == nil && len(f.Shrunk.Workload.Buffers) > 0 {
		return f.Shrunk, nil
	}
	var c fuzz.Case
	if err := json.Unmarshal(data, &c); err != nil {
		return fuzz.Case{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return c, nil
}
