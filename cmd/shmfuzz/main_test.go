package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shmgpu/internal/fuzz"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestBadFlag(t *testing.T) {
	code, _, stderr := runCLI(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr)
	}
}

func TestNoBound(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-duration") {
		t.Fatalf("stderr should point at the missing bound flags:\n%s", stderr)
	}
}

func TestPositionalArgsRejected(t *testing.T) {
	if code, _, _ := runCLI(t, "-cells", "1", "stray"); code != 2 {
		t.Fatal("stray positional args must be a usage error")
	}
}

func TestCleanCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short")
	}
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "-cells", "2", "-seed", "902", "-corpus", dir, "-q")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "all oracles green") {
		t.Fatalf("stdout missing green banner:\n%s", stdout)
	}
	if !strings.Contains(stdout, "cells=2") {
		t.Fatalf("stdout missing cell count:\n%s", stdout)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
}

func TestReplayGreenCase(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle battery in -short")
	}
	c := fuzz.CellCase(902, 0)
	data, err := c.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "case.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-replay", path)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "all oracles green") {
		t.Fatalf("stdout = %s", stdout)
	}
}

func TestReplayFindingFile(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle battery in -short")
	}
	// A finding file wraps the case; replay must pick the shrunk repro.
	f := fuzz.Finding{
		Index:  3,
		Shrunk: fuzz.CellCase(902, 1),
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "finding.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-replay", path)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

func TestReplayMissingFile(t *testing.T) {
	if code, _, _ := runCLI(t, "-replay", filepath.Join(t.TempDir(), "nope.json")); code != 2 {
		t.Fatal("missing replay file must be a usage error")
	}
}

func TestReplayGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, "-replay", path); code != 2 {
		t.Fatal("unparseable replay file must be a usage error")
	}
}
