package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"shmgpu/internal/analysis"
	"shmgpu/internal/analysis/load"
)

// runStandalone analyzes package patterns by loading the enclosing module
// from source. Unlike the per-package vet protocol, this mode sees the
// whole tree at once, so analyzers' Finish hooks (cross-package checks)
// run here.
func runStandalone(analyzers []*analysis.Analyzer, patterns []string, opts outputOpts) int {
	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "shmlint: %v\n", err)
		return 2
	}
	modulePath, err := load.ModuleInfo(moduleDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shmlint: reading module path: %v\n", err)
		return 2
	}
	loader := load.New(modulePath, moduleDir)

	paths, err := expandPatterns(loader, modulePath, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shmlint: %v\n", err)
		return 2
	}

	var diags []namedDiag
	results := map[string]map[string]any{}
	generated := map[string]bool{}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shmlint: %v\n", err)
			return 2
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "shmlint: %s: %v\n", path, terr)
		}
		if len(pkg.TypeErrors) > 0 {
			return 2
		}
		for f := range pkg.Generated {
			generated[f] = true
		}
		diags = append(diags, runAnalyzers(analyzers, loader.Fset, pkg.Files, pkg.Types, pkg.Info, results)...)
	}

	for _, a := range analyzers {
		if a.Finish == nil || len(results[a.Name]) == 0 {
			continue
		}
		a.Finish(&analysis.Finishing{
			Results: results[a.Name],
			Fset:    loader.Fset,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, namedDiag{analyzer: a.Name, Diagnostic: d})
			},
		})
	}

	// Diagnostics in generated files are suppressed: the fix belongs in
	// the generator, not the output.
	kept := diags[:0]
	for _, d := range diags {
		if !generated[loader.Fset.Position(d.Pos).Filename] {
			kept = append(kept, d)
		}
	}
	diags = kept

	switch {
	case opts.json:
		emitJSON(loader.Fset, moduleDir, diags)
	case opts.gha:
		emitGHA(loader.Fset, moduleDir, diags)
	default:
		if len(diags) > 0 {
			printDiags(loader.Fset, diags)
		}
	}
	if len(diags) == 0 {
		return 0
	}
	return 1
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// expandPatterns resolves package patterns: "./..." (the whole module),
// "./x/..." (a subtree), "./x" (one directory), or a plain import path.
func expandPatterns(loader *load.Loader, modulePath string, patterns []string) ([]string, error) {
	all, err := loader.Walk()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := importPathFor(modulePath, strings.TrimSuffix(pat, "/..."))
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
				}
			}
		default:
			add(importPathFor(modulePath, pat))
		}
	}
	return out, nil
}

func importPathFor(modulePath, pat string) string {
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimSuffix(pat, "/")
	if pat == "" || pat == "." {
		return modulePath
	}
	if pat == modulePath || strings.HasPrefix(pat, modulePath+"/") {
		return pat
	}
	return modulePath + "/" + pat
}
