package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one clean package and one
// package carrying a hot-path allocation, and chdirs into it for the
// duration of the test (the standalone driver resolves the module from
// the working directory).
func writeModule(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module lintme\n\ngo 1.22\n",
		"clean/clean.go": `package clean

type E struct{ n int }

//shm:tick-root
func (e *E) tick() { e.n++ }

var _ = (*E).tick
`,
		"dirty/dirty.go": `package dirty

type E struct{ xs []int }

//shm:tick-root
func (e *E) tick() {
	e.xs = append(e.xs, 1)
}

var _ = (*E).tick
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
}

// captureStdout runs f with stdout redirected to a pipe and returns what
// it wrote alongside its exit code.
func captureStdout(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), code
}

func TestExitCodes(t *testing.T) {
	writeModule(t)
	if got := run([]string{"./clean"}); got != 0 {
		t.Errorf("clean package: exit %d, want 0", got)
	}
	if got := run([]string{"./..."}); got != 1 {
		t.Errorf("tree with findings: exit %d, want 1", got)
	}
	if got := run(nil); got != 2 {
		t.Errorf("no arguments: exit %d, want 2", got)
	}
	if got := run([]string{"./nosuch"}); got != 2 {
		t.Errorf("unknown package: exit %d, want 2", got)
	}
	if got := run([]string{"-not-a-flag"}); got != 2 {
		t.Errorf("bad flag: exit %d, want 2", got)
	}
}

func TestJSONOutput(t *testing.T) {
	writeModule(t)
	out, code := captureStdout(t, func() int { return run([]string{"-json", "./..."}) })
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("decoding output: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("no findings in JSON output")
	}
	d := diags[0]
	if d.Analyzer != "hotalloc" || d.File != "dirty/dirty.go" || d.Line == 0 {
		t.Errorf("unexpected finding: %+v", d)
	}

	out, code = captureStdout(t, func() int { return run([]string{"-json", "./clean"}) })
	if code != 0 {
		t.Fatalf("clean: exit %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean run should emit an empty array, got %q", out)
	}
}

func TestGHAOutput(t *testing.T) {
	writeModule(t)
	out, code := captureStdout(t, func() int { return run([]string{"-gha", "./..."}) })
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "::error file=dirty/dirty.go,line=") {
		t.Errorf("missing ::error annotation:\n%s", out)
	}
	if !strings.Contains(out, "(hotalloc)") {
		t.Errorf("annotation should name the analyzer:\n%s", out)
	}
}
