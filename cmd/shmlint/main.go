// Command shmlint is the repository's lint gate: it hosts the analyzer
// suite in internal/analysis (nodeterminism, counterhygiene, probeguard,
// unitcheck) behind two drivers.
//
// As a vettool, it speaks cmd/go's unitchecker protocol and is invoked per
// package by the go command, which supplies type-checked inputs via export
// data:
//
//	go build -o /tmp/shmlint ./cmd/shmlint
//	go vet -vettool=/tmp/shmlint ./...
//
// Standalone, it loads the whole module from source and additionally runs
// cross-package checks (counter ownership) that the per-package vet
// protocol cannot express:
//
//	go run ./cmd/shmlint ./...
//
// Exit status is 0 when clean, 1 when any analyzer reported a finding, 2 on
// usage or load errors. Individual analyzers can be disabled with
// -<name>=false.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"shmgpu/internal/analysis"
	"shmgpu/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	analyzers := suite.All()

	// The go command probes its vettool twice before any analysis:
	// `-V=full` for a version/build fingerprint (a cache key input), then
	// `-flags` for the JSON list of flags it may forward.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full") {
		printVersion()
		return 0
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		printFlags(analyzers)
		return 0
	}

	fs := flag.NewFlagSet("shmlint", flag.ContinueOnError)
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	// Output flags apply to standalone mode only; the vet protocol never
	// forwards them (printFlags advertises just the analyzer toggles).
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout (standalone mode)")
	ghaOut := fs.Bool("gha", false, "emit GitHub Actions ::error annotations on stdout (standalone mode)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(active, rest[0])
	}
	if len(rest) == 0 {
		fmt.Fprintln(os.Stderr, "usage: shmlint [flags] <package patterns> | <vet.cfg>")
		return 2
	}
	return runStandalone(active, rest, outputOpts{json: *jsonOut, gha: *ghaOut})
}

// printVersion emits the `-V=full` line in the format cmd/go parses: at
// least three fields, f[1] == "version", and a trailing buildID= field when
// the version is "devel". Hashing our own executable makes the fingerprint
// change whenever the suite is rebuilt, so vet results are never stale.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("shmlint version devel buildID=%s\n", id)
}

// printFlags emits the `-flags` JSON the go command uses to validate flags
// it forwards to the tool.
func printFlags(analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}
