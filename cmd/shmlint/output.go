package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// outputOpts selects the standalone driver's findings format: the default
// human file:line:col lines on stderr, a machine-readable JSON array, or
// GitHub Actions workflow annotations.
type outputOpts struct {
	json bool
	gha  bool
}

// jsonDiag is one finding in -json output. File is module-relative when
// the finding lies inside the module.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// relFile renders a diagnostic filename module-relative so output is
// stable across checkouts.
func relFile(moduleDir, name string) string {
	if name == "" {
		return ""
	}
	if rel, err := filepath.Rel(moduleDir, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

func sortDiags(fset *token.FileSet, diags []namedDiag) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// emitJSON writes every finding as a JSON array on stdout — always an
// array, so consumers can decode without special-casing the clean run.
func emitJSON(fset *token.FileSet, moduleDir string, diags []namedDiag) {
	sortDiags(fset, diags)
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		out = append(out, jsonDiag{
			Analyzer: d.analyzer,
			File:     relFile(moduleDir, p.Filename),
			Line:     p.Line,
			Col:      p.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "shmlint: encoding findings: %v\n", err)
	}
}

// emitGHA writes GitHub Actions workflow command annotations: each
// finding becomes an inline ::error marker on the touched line in the PR
// diff view.
func emitGHA(fset *token.FileSet, moduleDir string, diags []namedDiag) {
	sortDiags(fset, diags)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		fmt.Fprintf(os.Stdout, "::error file=%s,line=%d,col=%d::%s (%s)\n",
			relFile(moduleDir, p.Filename), p.Line, p.Column,
			ghaEscape(d.Message), d.analyzer)
	}
}

// ghaEscape encodes the characters the workflow-command parser treats
// specially in the message position.
func ghaEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
