package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"shmgpu/internal/analysis"
)

// vetConfig mirrors the JSON the go command writes to <objdir>/vet.cfg for
// its vettool (see cmd/go/internal/work's vetConfig). Fields this driver
// does not consume are still declared so decoding stays strict-compatible.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runVet executes one per-package analysis under the go vet protocol:
// parse cfg.GoFiles, type-check against the export data the go command
// built for our dependencies, run the analyzers, and report diagnostics on
// stderr as file:line:col lines. Exit 0 clean, 1 with findings.
func runVet(analyzers []*analysis.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shmlint: reading %s: %v\n", cfgPath, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "shmlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The go command persists per-package analysis facts in "vetx" files.
	// This suite exports none, but the file must exist for the result to be
	// cached, and fact-only invocations (VetxOnly) must do nothing else.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "shmlint: writing vetx: %v\n", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintf(os.Stderr, "shmlint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	// Dependencies resolve through the export data (.a files) listed in
	// cfg.PackageFile, after canonicalizing the as-written import path via
	// cfg.ImportMap — exactly how cmd/vet's unitchecker wires its importer.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tcfg := types.Config{
		Importer:  compilerImporter,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	// Test variants carry a bracketed suffix ("pkg [pkg.test]") that must
	// not leak into the package path the analyzers see.
	pkgPath := cfg.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	pkg, err := tcfg.Check(pkgPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "shmlint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags := runAnalyzers(analyzers, fset, files, pkg, info, nil)
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	printDiags(fset, diags)
	return 1
}

type namedDiag struct {
	analyzer string
	analysis.Diagnostic
}

// runAnalyzers applies each analyzer to one package. When results is
// non-nil, per-package results are stashed there (keyed by package path)
// for a later Finish pass.
func runAnalyzers(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, results map[string]map[string]any) []namedDiag {
	var diags []namedDiag
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, namedDiag{analyzer: a.Name, Diagnostic: d})
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shmlint: analyzer %s: %v\n", a.Name, err)
			continue
		}
		if res != nil && results != nil {
			if results[a.Name] == nil {
				results[a.Name] = map[string]any{}
			}
			results[a.Name][pkg.Path()] = res
		}
	}
	return diags
}

func printDiags(fset *token.FileSet, diags []namedDiag) {
	sortDiags(fset, diags)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", p.Filename, p.Line, p.Column, d.Message, d.analyzer)
	}
}
