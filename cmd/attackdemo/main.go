// Command attackdemo drives the functional secure-memory library through
// the physical attacks of the paper's threat model and shows each being
// detected: memory tampering, MAC tampering, data replay, counter replay
// (defeated by the integrity tree), and the cross-kernel replay against
// read-only regions (defeated by the shared-counter advance of the
// InputReadOnlyReset API).
package main

import (
	"errors"
	"fmt"
	"os"

	"shmgpu/internal/memdef"
	"shmgpu/securemem"
)

func main() {
	mem := securemem.MustNew(securemem.Config{Size: 1 << 20, ContextSeed: 0xFEED})
	failures := 0
	check := func(name string, attack func() error, want error) {
		err := attack()
		switch {
		case want == nil && err == nil:
			fmt.Printf("  ok   %-34s benign operation succeeded\n", name)
		case want != nil && errors.Is(err, want):
			fmt.Printf("  ok   %-34s detected: %v\n", name, err)
		default:
			fmt.Printf("  FAIL %-34s got %v, want %v\n", name, err, want)
			failures++
		}
	}

	fmt.Println("shmgpu attack demonstration (functional secure memory, 1 MiB)")
	fmt.Println()

	data := make([]byte, securemem.BlockSize)
	for i := range data {
		data[i] = byte(i)
	}

	check("write+read round trip", func() error {
		if err := mem.Write(0x4000, data); err != nil {
			return err
		}
		buf := make([]byte, securemem.BlockSize)
		return mem.Read(0x4000, buf)
	}, nil)

	check("ciphertext bit flip", func() error {
		mem.AttackerView()[0x4000] ^= 0x80
		err := mem.Read(0x4000, make([]byte, securemem.BlockSize))
		mem.AttackerView()[0x4000] ^= 0x80 // restore
		return err
	}, securemem.ErrIntegrity)

	check("data+MAC replay", func() error {
		view := mem.AttackerView()
		addr := memdef.Addr(0x4000)
		macAddr := mem.Layout().BlockMACAddr(addr)
		cmAddr := mem.Layout().ChunkMACAddr(addr)
		oldData := append([]byte(nil), view[addr:addr+securemem.BlockSize]...)
		oldMAC := append([]byte(nil), view[macAddr:macAddr+8]...)
		oldCM := append([]byte(nil), view[cmAddr:cmAddr+8]...)
		// Legitimate update, then wholesale restore of the old state.
		if err := mem.Write(addr, make([]byte, securemem.BlockSize)); err != nil {
			return err
		}
		copy(view[addr:], oldData)
		copy(view[macAddr:], oldMAC)
		copy(view[cmAddr:], oldCM)
		return mem.Read(addr, make([]byte, securemem.BlockSize))
	}, securemem.ErrIntegrity)

	check("counter replay (integrity tree)", func() error {
		view := mem.AttackerView()
		addr := memdef.Addr(0x8000)
		if err := mem.Write(addr, data); err != nil {
			return err
		}
		cbIdx, _ := mem.Layout().CounterIndex(addr)
		ctrAddr := mem.Layout().CounterBlockAddr(cbIdx)
		macAddr := mem.Layout().BlockMACAddr(addr)
		cmAddr := mem.Layout().ChunkMACAddr(addr)
		old := map[memdef.Addr][]byte{
			addr:    append([]byte(nil), view[addr:addr+securemem.BlockSize]...),
			ctrAddr: append([]byte(nil), view[ctrAddr:ctrAddr+128]...),
			macAddr: append([]byte(nil), view[macAddr:macAddr+8]...),
			cmAddr:  append([]byte(nil), view[cmAddr:cmAddr+8]...),
		}
		if err := mem.Write(addr, make([]byte, securemem.BlockSize)); err != nil {
			return err
		}
		for a, b := range old {
			copy(view[a:], b)
		}
		return mem.Read(addr, make([]byte, securemem.BlockSize))
	}, securemem.ErrFreshness)

	check("cross-kernel replay (reset API)", func() error {
		view := mem.AttackerView()
		input1 := make([]byte, memdef.RegionSize)
		for i := range input1 {
			input1[i] = 0x11
		}
		if err := mem.CopyFromHost(0, input1); err != nil {
			return err
		}
		macLo := mem.Layout().BlockMACAddr(0)
		cmLo := mem.Layout().ChunkMACAddr(0)
		oldData := append([]byte(nil), view[0:memdef.RegionSize]...)
		oldMACs := append([]byte(nil), view[macLo:macLo+memdef.RegionSize/securemem.BlockSize*8]...)
		oldCMs := append([]byte(nil), view[cmLo:cmLo+memdef.RegionSize/securemem.ChunkSize*8]...)
		// Host reuses the region for the next kernel via the reset API.
		if err := mem.InputReadOnlyReset(0, memdef.RegionSize); err != nil {
			return err
		}
		input2 := make([]byte, memdef.RegionSize)
		for i := range input2 {
			input2[i] = 0x22
		}
		if err := mem.CopyFromHost(0, input2); err != nil {
			return err
		}
		// Attacker replays the previous kernel's read-only input.
		copy(view[0:], oldData)
		copy(view[macLo:], oldMACs)
		copy(view[cmLo:], oldCMs)
		return mem.Read(0, make([]byte, securemem.BlockSize))
	}, securemem.ErrIntegrity)

	s := mem.Stats()
	fmt.Println()
	fmt.Printf("stats: reads=%d writes=%d hostCopies=%d roTransitions=%d integrityFailures=%d freshnessFailures=%d\n",
		s.Reads, s.Writes, s.HostCopies, s.ROTransitions, s.IntegrityFailures, s.FreshnessFailures)
	if failures > 0 {
		fmt.Printf("\n%d attack(s) went undetected\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall attacks detected")
}
