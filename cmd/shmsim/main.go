// Command shmsim runs one workload under one secure-memory design and
// prints detailed statistics: IPC (absolute and normalized), per-class DRAM
// traffic, cache behaviour, detector events, and predictor accuracy. With
// the telemetry flags it also exports machine-readable traces and metrics,
// and with the ops-plane flags the run is observable live (progress records,
// span traces, a stall watchdog, and an embedded HTTP endpoint).
//
// Usage:
//
//	shmsim -workload fdtd2d -scheme SHM
//	shmsim -workload bfs -scheme Naive -quick
//	shmsim -workload fdtd2d -scheme SHM -quick -trace-out t.json -metrics-out m.prom
//	shmsim -workload fdtd2d -scheme SHM -quick -json
//	shmsim -workload fdtd2d -scheme SHM -progress -ops-listen :8080
//	shmsim -workload fdtd2d -scheme SHM -watchdog 30s -watchdog-cancel
//	shmsim -workload fdtd2d -scheme SHM -quick -snapshot-out warm.snap -snapshot-at 50000
//	shmsim -workload fdtd2d -scheme SHM -quick -restore warm.snap
//	shmsim -workload atax -scheme SHM -host-tier -oversub-ratio 0.5
//	shmsim -workload atax -scheme SHM -host-tier -oversub-ratio 0.5 -migration-policy fifo -host-integrity hostside
//	shmsim -workload streamcluster -scheme SHM -host-tier -oversub-ratio 0.5 -prefetch stream -batch-pages 8
//	shmsim -workload atax -scheme SHM -host-tier -oversub-ratio 0.5 -prefetch stride -large-pages
//	shmsim -list
//
// Exit codes: 0 on success, 1 on output/runtime errors, 2 on usage errors
// (bad flags, unknown workload or scheme), 4 when the watchdog declared the
// run stalled and cancelled it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"shmgpu"
	"shmgpu/internal/invariant"
	"shmgpu/internal/obs"
	"shmgpu/internal/report"
	"shmgpu/internal/scheme"
	"shmgpu/internal/stats"
	"shmgpu/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("shmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl             = fs.String("workload", "fdtd2d", "benchmark name (see -list)")
		sch            = fs.String("scheme", "SHM", "secure-memory design (see -list)")
		quick          = fs.Bool("quick", false, "use the scaled-down fast configuration")
		list           = fs.Bool("list", false, "list workloads and schemes, then exit")
		accuracy       = fs.Bool("accuracy", false, "also report predictor accuracy (slower)")
		jsonOut        = fs.Bool("json", false, "print the run summary as JSON instead of text tables")
		traceOut       = fs.String("trace-out", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
		metricsOut     = fs.String("metrics-out", "", "write a Prometheus text-format metrics dump")
		jsonlOut       = fs.String("jsonl-out", "", "write a JSONL event/sample trace")
		sampleInterval = fs.Uint64("sample-interval", 5000, "timeline sampling period in cycles (0 disables the timeline)")
		seed           = fs.Int64("seed", 0, "workload seed for the warp programs' random streams (0 = the benchmark's built-in seed)")
		check          = fs.Bool("check", false, "enable the runtime invariant sanitizer (model self-checks; slower)")
		shards         = fs.Int("shards", 0, "parallel tick shards (0 = sequential; results are byte-identical either way)")
		quiet          = fs.Bool("q", false, "suppress informational logging (errors still print)")
		verbose        = fs.Bool("v", false, "verbose logging")
		snapshotOut    = fs.String("snapshot-out", "", "warm the run to -snapshot-at, write a resumable state snapshot to this path, and exit")
		snapshotAt     = fs.Uint64("snapshot-at", 0, "cycle boundary for -snapshot-out (must be positive)")
		restorePath    = fs.String("restore", "", "resume a snapshot written by -snapshot-out instead of simulating the warmup (workload, scheme, seed and telemetry flags must match the capturing run)")
		hostTier       = fs.Bool("host-tier", false, "enable the host-backed memory tier (UVM demand paging over a modeled PCIe link)")
		oversubRatio   = fs.Float64("oversub-ratio", 0, "device frame capacity as a fraction of the workload footprint (required with -host-tier; >= 1.0 fits entirely)")
		pageBytes      = fs.Uint64("page-bytes", 0, "UVM migration page size in bytes (0 = the 64 KiB default; must be a power of two)")
		migrationPol   = fs.String("migration-policy", "", "UVM eviction victim policy: lru (default) or fifo")
		hostIntegrity  = fs.String("host-integrity", "", "security metadata handling across migrations: rebuild (default; MEE re-encrypts on fault-in) or hostside (host-managed, cheaper)")
		prefetch       = fs.String("prefetch", "", "UVM migration-ahead policy: none (default), stride (per-fault-stream sequential stride detection), or stream (streaming-detector-driven bulk fetch with eager eviction)")
		prefetchDegree = fs.Int("prefetch-degree", 0, "pages fetched ahead per prefetch trigger (0 = the hostmem default)")
		batchPages     = fs.Int("batch-pages", 0, "max adjacent pages coalesced into one batched PCIe transaction (0 = the hostmem default)")
		largePages     = fs.Bool("large-pages", false, "migrate at 2 MiB large-page granularity with 64 KiB sub-page dirty tracking (mutually exclusive with -page-bytes)")
	)
	var opsFlags obs.Flags
	opsFlags.Register(fs)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "Usage: shmsim [flags]\n\nRuns one workload under one secure-memory design.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		// fs already printed the error and usage.
		return 2
	}
	log := obs.NewLogger(stderr, "shmsim", obs.LevelFromFlags(*quiet, *verbose))

	if *list {
		fmt.Fprintln(stdout, "Workloads (paper Table VII):")
		for _, w := range shmgpu.Workloads() {
			fmt.Fprintf(stdout, "  %s\n", w)
		}
		fmt.Fprintln(stdout, "\nSchemes (paper Table VIII):")
		for _, s := range shmgpu.Schemes() {
			desc, _ := shmgpu.SchemeDescription(s)
			fmt.Fprintf(stdout, "  %-16s %s\n", s, desc)
		}
		return 0
	}

	cfg := shmgpu.DefaultConfig()
	if *quick {
		cfg = shmgpu.QuickConfig()
	}
	if *shards < 0 {
		log.Errorf("-shards must be non-negative, got %d", *shards)
		return 2
	}
	cfg.ParallelShards = *shards
	if *hostTier {
		cfg.HostTier = true
		cfg.OversubRatio = *oversubRatio
		cfg.UVMPageBytes = *pageBytes
		cfg.UVMMigrationPolicy = *migrationPol
		cfg.UVMHostIntegrity = *hostIntegrity
		cfg.UVMPrefetch = *prefetch
		cfg.UVMPrefetchDegree = *prefetchDegree
		cfg.UVMBatchPages = *batchPages
		cfg.UVMLargePages = *largePages
	} else if *oversubRatio != 0 || *pageBytes != 0 || *migrationPol != "" || *hostIntegrity != "" ||
		*prefetch != "" || *prefetchDegree != 0 || *batchPages != 0 || *largePages {
		log.Errorf("-oversub-ratio, -page-bytes, -migration-policy, -host-integrity, -prefetch, -prefetch-degree, -batch-pages and -large-pages require -host-tier")
		return 2
	}
	if err := cfg.Validate(); err != nil {
		log.Errorf("%v", err)
		return 2
	}
	if _, err := scheme.ByName(*sch); err != nil {
		log.Errorf("%v (run with -list to see valid names)", err)
		return 2
	}
	if *check {
		invariant.SetEnabled(true)
	}
	effSeed, err := shmgpu.EffectiveSeed(*wl, *seed)
	if err != nil {
		log.Errorf("%v (run with -list to see valid names)", err)
		return 2
	}

	instrument := *traceOut != "" || *metricsOut != "" || *jsonlOut != "" || *jsonOut
	tcfg := telemetry.Config{
		SampleInterval: *sampleInterval,
		CaptureEvents:  *traceOut != "" || *jsonlOut != "",
	}

	// Snapshot capture is its own mode: warm, serialize, exit. The snapshot
	// embeds the collector state, so the restoring invocation must pass the
	// same telemetry flags (the restore path validates this).
	if *snapshotOut != "" {
		switch {
		case *restorePath != "":
			log.Errorf("-snapshot-out and -restore are mutually exclusive")
			return 2
		case *accuracy:
			log.Errorf("-snapshot-out cannot be combined with -accuracy")
			return 2
		case *snapshotAt == 0:
			log.Errorf("-snapshot-out requires -snapshot-at <cycle>")
			return 2
		}
		written, err := shmgpu.WriteSnapshot(cfg, *wl, *sch, *seed, *snapshotAt, tcfg, *snapshotOut)
		if err != nil {
			log.Errorf("%v", err)
			return 1
		}
		if !written {
			log.Errorf("workload %s completed before cycle %d; no snapshot written", *wl, *snapshotAt)
			return 1
		}
		fmt.Fprintf(stdout, "snapshot written to %s (cycle %d, workload=%s scheme=%s seed=%d)\n",
			*snapshotOut, *snapshotAt, *wl, *sch, effSeed)
		return 0
	}
	if *restorePath != "" && *accuracy {
		log.Errorf("-restore cannot be combined with -accuracy")
		return 2
	}

	// Two observable cells: the baseline reference run and the requested
	// run. The shutdown writes the span trace with whatever manifest fields
	// are known by then, so it is deferred against every return path.
	plane, shutdown, err := opsFlags.Start("shmsim", 2, stderr, log)
	if err != nil {
		log.Errorf("%v", err)
		return 1
	}
	traceManifest := &telemetry.Manifest{
		Tool:          "shmsim",
		SchemaVersion: telemetry.SchemaVersion,
		Workload:      *wl,
		Scheme:        *sch,
		Quick:         *quick,
	}
	defer func() {
		if err := shutdown(*traceManifest); err != nil {
			log.Errorf("%v", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	started := time.Now()
	base, _, err := shmgpu.RunObservedSeeded(cfg, *wl, "Baseline", *seed, telemetry.Config{}, plane.BeginRun(*wl+"/Baseline"))
	if err != nil {
		log.Errorf("%v (run with -list to see valid names)", err)
		return 2
	}
	if base.Cancelled {
		log.Errorf("baseline run %s stalled and was cancelled by the watchdog", *wl)
		return 4
	}

	var res shmgpu.Result
	var col *shmgpu.Collector
	switch {
	case *restorePath != "":
		res, col, err = shmgpu.RestoreRun(cfg, *wl, *sch, *seed, tcfg, *restorePath)
	case *accuracy:
		schObj, _ := scheme.ByName(*sch)
		r := shmgpu.NewRunner(cfg, []string{*wl})
		r.SetOps(plane)
		res = r.RunWithAccuracy(*wl, schObj)
	case instrument:
		res, col, err = shmgpu.RunObservedSeeded(cfg, *wl, *sch, *seed, tcfg, plane.BeginRun(*wl+"/"+*sch))
	default:
		res, _, err = shmgpu.RunObservedSeeded(cfg, *wl, *sch, *seed, telemetry.Config{}, plane.BeginRun(*wl+"/"+*sch))
	}
	if err != nil {
		log.Errorf("%v (run with -list to see valid names)", err)
		return 2
	}
	wall := time.Since(started)
	if res.Cancelled {
		log.Errorf("run %s/%s stalled and was cancelled by the watchdog (diagnostics in the -watchdog-dir bundle)", *wl, *sch)
		return 4
	}

	sum := shmgpu.Summarize(res)
	manifest := shmgpu.Manifest{
		Tool:           "shmsim",
		SchemaVersion:  telemetry.SchemaVersion,
		Workload:       *wl,
		Scheme:         *sch,
		Quick:          *quick,
		SMs:            cfg.SMs,
		Partitions:     cfg.Partitions,
		MaxCycles:      cfg.MaxCycles,
		SampleInterval: *sampleInterval,
		Seed:           effSeed,
		GitRev:         telemetry.GitRevision("."),
		Started:        started.UTC().Format(time.RFC3339),
		WallTime:       wall.Round(time.Millisecond).String(),
	}
	*traceManifest = manifest
	if col != nil {
		// The live /metrics endpoint serves the same renderer the
		// -metrics-out dump uses, so a final scrape byte-matches the file.
		plane.SetMetrics(func(w io.Writer) error {
			return telemetry.WritePrometheus(w, col, sum, manifest)
		})
	}

	if c := writeExports(log, col, sum, manifest, *traceOut, *metricsOut, *jsonlOut); c != 0 {
		return c
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		out := struct {
			Manifest shmgpu.Manifest   `json:"manifest"`
			Summary  shmgpu.RunSummary `json:"summary"`
			Baseline struct {
				IPC           float64 `json:"ipc"`
				NormalizedIPC float64 `json:"normalized_ipc"`
			} `json:"baseline"`
		}{Manifest: manifest, Summary: sum}
		out.Baseline.IPC = base.IPC()
		if base.IPC() > 0 {
			out.Baseline.NormalizedIPC = res.IPC() / base.IPC()
		}
		if err := enc.Encode(out); err != nil {
			log.Errorf("%v", err)
			return 1
		}
		return 0
	}

	printText(stdout, res, base, *wl, *sch, *accuracy)
	if col != nil {
		if t := report.TimelineTable(col.Timeline()); t != nil {
			fmt.Fprintln(stdout, t)
		}
	}
	return 0
}

// writeExports writes the requested telemetry outputs; any failure is an IO
// error (exit 1).
func writeExports(log *obs.Logger, col *shmgpu.Collector, sum shmgpu.RunSummary, m shmgpu.Manifest, traceOut, metricsOut, jsonlOut string) int {
	write := func(path string, fn func(io.Writer) error) int {
		if path == "" {
			return 0
		}
		f, err := os.Create(path)
		if err != nil {
			log.Errorf("%v", err)
			return 1
		}
		defer f.Close()
		if err := fn(f); err != nil {
			log.Errorf("writing %s: %v", path, err)
			return 1
		}
		if err := f.Close(); err != nil {
			log.Errorf("closing %s: %v", path, err)
			return 1
		}
		return 0
	}
	if code := write(traceOut, func(w io.Writer) error {
		return telemetry.WriteChromeTrace(w, col, sum, m)
	}); code != 0 {
		return code
	}
	if code := write(metricsOut, func(w io.Writer) error {
		return telemetry.WritePrometheus(w, col, sum, m)
	}); code != 0 {
		return code
	}
	return write(jsonlOut, func(w io.Writer) error {
		return telemetry.WriteJSONL(w, col, sum, m)
	})
}

func printText(stdout io.Writer, res, base shmgpu.Result, wl, sch string, accuracy bool) {
	fmt.Fprintf(stdout, "workload=%s scheme=%s\n\n", wl, sch)
	t := report.NewTable("Performance", "metric", "value")
	t.AddRow("cycles", res.Cycles)
	t.AddRow("instructions", res.Instructions)
	t.AddRow("IPC", res.IPC())
	t.AddRow("baseline IPC", base.IPC())
	if base.IPC() > 0 {
		t.AddRow("normalized IPC", res.IPC()/base.IPC())
		t.AddRow("performance overhead", report.Percent(1-res.IPC()/base.IPC()))
	}
	t.AddRow("DRAM bus utilization", report.Percent(res.BusUtilization))
	t.AddRow("run completed", res.Completed)
	fmt.Fprintln(stdout, t)

	tr := report.NewTable("DRAM traffic", "class", "read bytes", "write bytes")
	for c := stats.TrafficClass(0); c < stats.TrafficClass(stats.NumTrafficClasses); c++ {
		tr.AddRow(c.String(), res.Traffic.ReadBytes[c], res.Traffic.WriteBytes[c])
	}
	tr.AddRow("metadata overhead", report.Percent(res.BandwidthOverhead()), "")
	fmt.Fprintln(stdout, tr)

	cc := report.NewTable("Caches", "cache", "accesses", "miss rate")
	cc.AddRow("L1 (all SMs)", res.L1.Accesses(), report.Percent(res.L1.MissRate()))
	cc.AddRow("L2 (all banks)", res.L2.Accesses(), report.Percent(res.L2.MissRate()))
	cc.AddRow("counter MDC", res.Ctr.Accesses(), report.Percent(res.Ctr.MissRate()))
	cc.AddRow("MAC MDC", res.MAC.Accesses(), report.Percent(res.MAC.MissRate()))
	cc.AddRow("BMT MDC", res.BMT.Accesses(), report.Percent(res.BMT.MissRate()))
	fmt.Fprintln(stdout, cc)

	if names := res.Reg.Names(); len(names) > 0 {
		ev := report.NewTable("MEE events", "event", "count")
		for _, n := range names {
			ev.AddRow(n, res.Reg.Get(n))
		}
		fmt.Fprintln(stdout, ev)
	}

	if accuracy {
		acc := report.NewTable("Predictor accuracy", "predictor", "predictions", "accuracy")
		acc.AddRow("read-only", res.ROAccuracy.Total(), report.Percent(res.ROAccuracy.Accuracy()))
		acc.AddRow("streaming", res.StreamAccuracy.Total(), report.Percent(res.StreamAccuracy.Accuracy()))
		fmt.Fprintln(stdout, acc)
	}
}
