// Command shmsim runs one workload under one secure-memory design and
// prints detailed statistics: IPC (absolute and normalized), per-class DRAM
// traffic, cache behaviour, detector events, and predictor accuracy.
//
// Usage:
//
//	shmsim -workload fdtd2d -scheme SHM
//	shmsim -workload bfs -scheme Naive -quick
//	shmsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"shmgpu"
	"shmgpu/internal/report"
	"shmgpu/internal/scheme"
	"shmgpu/internal/stats"
)

func main() {
	var (
		wl       = flag.String("workload", "fdtd2d", "benchmark name (see -list)")
		sch      = flag.String("scheme", "SHM", "secure-memory design (see -list)")
		quick    = flag.Bool("quick", false, "use the scaled-down fast configuration")
		list     = flag.Bool("list", false, "list workloads and schemes, then exit")
		accuracy = flag.Bool("accuracy", false, "also report predictor accuracy (slower)")
	)
	flag.Parse()

	if *list {
		fmt.Println("Workloads (paper Table VII):")
		for _, w := range shmgpu.Workloads() {
			fmt.Printf("  %s\n", w)
		}
		fmt.Println("\nSchemes (paper Table VIII):")
		for _, s := range shmgpu.Schemes() {
			desc, _ := shmgpu.SchemeDescription(s)
			fmt.Printf("  %-16s %s\n", s, desc)
		}
		return
	}

	cfg := shmgpu.DefaultConfig()
	if *quick {
		cfg = shmgpu.QuickConfig()
	}

	base, err := shmgpu.Run(cfg, *wl, "Baseline")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var res shmgpu.Result
	if *accuracy {
		schObj, err2 := scheme.ByName(*sch)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, err2)
			os.Exit(2)
		}
		res = shmgpu.NewRunner(cfg, []string{*wl}).RunWithAccuracy(*wl, schObj)
	} else {
		res, err = shmgpu.Run(cfg, *wl, *sch)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	fmt.Printf("workload=%s scheme=%s\n\n", *wl, *sch)
	t := report.NewTable("Performance", "metric", "value")
	t.AddRow("cycles", res.Cycles)
	t.AddRow("instructions", res.Instructions)
	t.AddRow("IPC", res.IPC())
	t.AddRow("baseline IPC", base.IPC())
	if base.IPC() > 0 {
		t.AddRow("normalized IPC", res.IPC()/base.IPC())
		t.AddRow("performance overhead", report.Percent(1-res.IPC()/base.IPC()))
	}
	t.AddRow("DRAM bus utilization", report.Percent(res.BusUtilization))
	t.AddRow("run completed", res.Completed)
	fmt.Println(t)

	tr := report.NewTable("DRAM traffic", "class", "read bytes", "write bytes")
	for c := stats.TrafficClass(0); c < stats.TrafficClass(stats.NumTrafficClasses); c++ {
		tr.AddRow(c.String(), res.Traffic.ReadBytes[c], res.Traffic.WriteBytes[c])
	}
	tr.AddRow("metadata overhead", report.Percent(res.BandwidthOverhead()), "")
	fmt.Println(tr)

	cc := report.NewTable("Caches", "cache", "accesses", "miss rate")
	cc.AddRow("L1 (all SMs)", res.L1.Accesses(), report.Percent(res.L1.MissRate()))
	cc.AddRow("L2 (all banks)", res.L2.Accesses(), report.Percent(res.L2.MissRate()))
	cc.AddRow("counter MDC", res.Ctr.Accesses(), report.Percent(res.Ctr.MissRate()))
	cc.AddRow("MAC MDC", res.MAC.Accesses(), report.Percent(res.MAC.MissRate()))
	cc.AddRow("BMT MDC", res.BMT.Accesses(), report.Percent(res.BMT.MissRate()))
	fmt.Println(cc)

	if names := res.Reg.Names(); len(names) > 0 {
		ev := report.NewTable("MEE events", "event", "count")
		for _, n := range names {
			ev.AddRow(n, res.Reg.Get(n))
		}
		fmt.Println(ev)
	}

	if *accuracy {
		acc := report.NewTable("Predictor accuracy", "predictor", "predictions", "accuracy")
		acc.AddRow("read-only", res.ROAccuracy.Total(), report.Percent(res.ROAccuracy.Accuracy()))
		acc.AddRow("streaming", res.StreamAccuracy.Total(), report.Percent(res.StreamAccuracy.Accuracy()))
		fmt.Println(acc)
	}
}
