package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListExitsZero(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "Workloads") || !strings.Contains(out, "SHM") {
		t.Errorf("listing incomplete:\n%s", out)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	code, _, errb := runCLI(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "Usage") {
		t.Errorf("usage not printed on flag error:\n%s", errb)
	}
}

func TestUnknownSchemeExitsTwo(t *testing.T) {
	code, _, errb := runCLI(t, "-scheme", "NoSuchScheme", "-quick")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "-list") {
		t.Errorf("error does not point at -list:\n%s", errb)
	}
}

func TestUnknownWorkloadExitsTwo(t *testing.T) {
	code, _, _ := runCLI(t, "-workload", "no-such-benchmark", "-quick")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestQuickRunWithExports(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation in -short mode")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.json")
	metrics := filepath.Join(dir, "m.prom")
	code, out, errb := runCLI(t,
		"-workload", "fdtd2d", "-scheme", "SHM", "-quick",
		"-trace-out", trace, "-metrics-out", metrics, "-sample-interval", "20000")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb)
	}
	if !strings.Contains(out, "Timeline") {
		t.Errorf("timeline table missing from text output")
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("empty trace")
	}
	prom, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "shmgpu_cycles_total") {
		t.Error("metrics dump missing core series")
	}
}

func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation in -short mode")
	}
	code, out, errb := runCLI(t, "-workload", "fdtd2d", "-scheme", "SHM", "-quick", "-json")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb)
	}
	var parsed struct {
		Manifest struct {
			Tool string `json:"tool"`
		} `json:"manifest"`
		Summary struct {
			Cycles uint64 `json:"cycles"`
		} `json:"summary"`
		Baseline struct {
			NormalizedIPC float64 `json:"normalized_ipc"`
		} `json:"baseline"`
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("-json output not valid JSON: %v\n%s", err, out)
	}
	if parsed.Manifest.Tool != "shmsim" || parsed.Summary.Cycles == 0 {
		t.Errorf("JSON summary incomplete: %+v", parsed)
	}
	if parsed.Baseline.NormalizedIPC <= 0 || parsed.Baseline.NormalizedIPC > 1.5 {
		t.Errorf("normalized IPC = %v", parsed.Baseline.NormalizedIPC)
	}
}

func TestBadOutputPathExitsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation in -short mode")
	}
	code, _, errb := runCLI(t,
		"-workload", "fdtd2d", "-scheme", "SHM", "-quick",
		"-metrics-out", filepath.Join(t.TempDir(), "no", "such", "dir", "m.prom"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errb)
	}
}
