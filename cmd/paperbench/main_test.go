package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestUnknownFigureExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, "-fig", "99")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "99") {
		t.Fatalf("stderr should name the unknown figure:\n%s", stderr)
	}
}

func TestUnknownWorkloadExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, "-workloads", "no-such-benchmark")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no-such-benchmark") {
		t.Fatalf("stderr should name the unknown workload:\n%s", stderr)
	}
}

// TestTableIXGolden: Table IX is computed from the paper's hardware
// constants alone (no simulation), so its text output is a stable golden.
func TestTableIXGolden(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-fig", "ix")
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr)
	}
	for _, want := range []string{"Table IX", "trackers per partition", "5.33 KB", "generated in"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

func TestTableIXJSON(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-fig", "ix", "-json")
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr)
	}
	var table struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(stdout), &table); err != nil {
		t.Fatalf("-json output not valid JSON: %v\n%s", err, stdout)
	}
	if table.Title == "" || len(table.Rows) == 0 {
		t.Fatalf("JSON table incomplete: %+v", table)
	}
}

// TestTinyCellSweep: one figure over one workload on the quick
// configuration — the smallest real simulation the CLI can run — must
// succeed and write the per-figure report file.
func TestTinyCellSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation in -short mode")
	}
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "-fig", "vii", "-quick", "-workloads", "bfs", "-out", dir)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "bfs") {
		t.Fatalf("stdout missing the workload row:\n%s", stdout)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table07_bandwidth_utilization.txt"))
	if err != nil {
		t.Fatalf("per-figure report not written: %v", err)
	}
	if string(data) != stdout[:len(data)] {
		// The report file holds exactly the table text that was printed
		// (stdout additionally carries the timing line).
		t.Fatalf("report file diverges from stdout:\nfile:\n%s\nstdout:\n%s", data, stdout)
	}
}

func TestBadOutDirExitsOne(t *testing.T) {
	// A file where the out directory should be makes MkdirAll fail.
	path := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, "-fig", "ix", "-out", path); code != 1 {
		t.Fatalf("exit with occupied -out dir should be 1")
	}
}
