// Command paperbench regenerates every table and figure of the paper's
// evaluation section and writes the text reports to stdout and (optionally)
// a results directory. With the telemetry flags it additionally dumps
// machine-readable metrics and traces for every simulation run, and with the
// ops-plane flags it exposes the sweep live: streaming progress records,
// hierarchical span traces, a stall watchdog, and an embedded HTTP endpoint.
//
// Usage:
//
//	paperbench                      # all figures, full configuration
//	paperbench -fig 12              # one figure
//	paperbench -quick               # scaled-down fast configuration
//	paperbench -workloads fdtd2d,bfs
//	paperbench -out results/        # also write one file per figure
//	paperbench -json                # tables as JSON instead of text
//	paperbench -metrics-out m/      # per-run Prometheus dumps
//	paperbench -trace-out t/        # per-run Chrome traces
//	paperbench -progress -ops-listen :8080     # live sweep observability
//	paperbench -span-trace sweep.trace.json    # span tree for Perfetto
//	paperbench -watchdog 30s -watchdog-dir diag/ -watchdog-cancel
//	paperbench -quick -bench-out BENCH.json        # measure the sweep
//	paperbench -quick -bench-out BENCH.json -bench-compare BENCH_3.json
//	paperbench -quick -bench-out BENCH.json -bench-shards 2,4
//
// The bench mode runs the Fig. 12 scheme set over the workload list
// serially, records wall time and allocation counts per (workload, scheme)
// cell plus the total sweep wall-clock, and writes a perf.Baseline JSON.
// With -bench-compare it then diffs against a committed baseline:
// allocs/op is compared on every run (it is deterministic), ns/op only
// with -bench-time (wall time is machine-dependent). -bench-shards
// additionally measures every cell under the parallel engine once per
// listed shard count. Bench cells are measured unobserved — the ops plane
// is not attached, so allocation counts stay attributable.
//
// Exit codes: 0 on success, 1 on output errors, 2 on usage errors, 3 on
// benchmark regressions, 4 when the watchdog declared cells stalled (and
// -watchdog-cancel let the sweep complete without them).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"shmgpu/internal/experiments"
	"shmgpu/internal/gpu"
	"shmgpu/internal/obs"
	"shmgpu/internal/perf"
	"shmgpu/internal/report"
	"shmgpu/internal/scheme"
	"shmgpu/internal/telemetry"
	"shmgpu/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig            = fs.String("fig", "all", "figure/table to regenerate: 5, 10, 11, 12, 13, 14, 15, 16, vii, ix, summary, all")
		quick          = fs.Bool("quick", false, "use the scaled-down fast configuration")
		workloads      = fs.String("workloads", "", "comma-separated workload subset (default: the 15 memory-intensive ones)")
		out            = fs.String("out", "", "directory to write per-figure reports to")
		jsonOut        = fs.Bool("json", false, "emit tables as JSON instead of text")
		metricsOut     = fs.String("metrics-out", "", "directory for per-run Prometheus metrics dumps")
		traceOut       = fs.String("trace-out", "", "directory for per-run Chrome trace-event JSON files")
		sampleInterval = fs.Uint64("sample-interval", 5000, "timeline sampling period in cycles for instrumented runs")
		benchOut       = fs.String("bench-out", "", "measure the simulation sweep and write a perf baseline JSON to this file")
		benchCompare   = fs.String("bench-compare", "", "committed perf baseline JSON to diff the fresh measurement against")
		benchTol       = fs.Float64("bench-tolerance", 0.05, "allowed fractional regression before -bench-compare fails")
		benchTime      = fs.Bool("bench-time", false, "also fail -bench-compare on ns/op regressions (same-machine baselines only)")
		benchShards    = fs.String("bench-shards", "", "comma-separated shard counts to measure in bench mode alongside the sequential cells (e.g. 2,4)")
		benchFork      = fs.Bool("bench-fork", false, "in bench mode, additionally measure each (workload, scheme) family as one warmed parent forked across the sequential and sharded variants (fork/<wl>/<scheme> cells)")
		shards         = fs.Int("shards", 0, "parallel tick shards per run (0 = sequential; results are byte-identical). In bench mode, additionally measures run/<wl>/<scheme>/shards=N cells")
		workers        = fs.Int("workers", 0, "prefetch worker-pool size for figure sweeps (0 = NumCPU)")
		quiet          = fs.Bool("q", false, "suppress informational logging (errors still print)")
		verbose        = fs.Bool("v", false, "verbose logging")
	)
	var opsFlags obs.Flags
	opsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log := obs.NewLogger(stderr, "paperbench", obs.LevelFromFlags(*quiet, *verbose))
	if *shards < 0 || *workers < 0 {
		log.Errorf("-shards and -workers must be non-negative")
		return 2
	}

	cfg := gpu.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.ParallelShards = *shards
	var wls []string
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			w = strings.TrimSpace(w)
			if _, err := workload.ByName(w); err != nil {
				log.Errorf("%v", err)
				return 2
			}
			wls = append(wls, w)
		}
	}
	if *benchOut != "" || *benchCompare != "" {
		shardList, err := parseShardList(*benchShards, *shards)
		if err != nil {
			log.Errorf("%v", err)
			return 2
		}
		if opsFlags.Enabled() {
			log.Infof("ops plane is not attached in bench mode (cells are measured unobserved)")
		}
		return runBench(cfg, *quick, wls, shardList, *benchFork, *benchOut, *benchCompare, *benchTol, *benchTime, stdout, log)
	}

	r := experiments.NewRunner(cfg, wls)
	r.SetWorkers(*workers)

	for _, dir := range []string{*out, *metricsOut, *traceOut, opsFlags.WatchdogDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Errorf("%v", err)
				return 1
			}
		}
	}

	type genFn func() *report.Table
	type gen struct {
		id       string
		name     string
		fn       genFn
		prefetch []scheme.Scheme
		accuracy bool
		extra    bool // excluded from -fig all (expensive ablations)
	}
	gens := []gen{
		{"5", "fig05_characterization", r.Fig5, []scheme.Scheme{scheme.SHMUpperBound}, false, false},
		{"10", "fig10_readonly_prediction", r.Fig10, nil, true, false},
		{"11", "fig11_streaming_prediction", r.Fig11, nil, true, false},
		{"12", "fig12_normalized_ipc", r.Fig12, []scheme.Scheme{scheme.Baseline, scheme.Naive, scheme.CommonCtr, scheme.PSSM, scheme.SHM, scheme.SHMUpperBound}, false, false},
		{"13", "fig13_optimization_breakdown", r.Fig13, []scheme.Scheme{scheme.Baseline, scheme.PSSM, scheme.PSSMCtr, scheme.SHMReadOnly, scheme.SHM, scheme.SHMCctr}, false, false},
		{"14", "fig14_bandwidth_overhead", r.Fig14, []scheme.Scheme{scheme.Naive, scheme.PSSM, scheme.SHMReadOnly, scheme.SHM}, false, false},
		{"15", "fig15_energy", r.Fig15, []scheme.Scheme{scheme.Baseline, scheme.Naive, scheme.CommonCtr, scheme.PSSM, scheme.SHM}, false, false},
		{"16", "fig16_victim_cache", r.Fig16, []scheme.Scheme{scheme.Baseline, scheme.SHM, scheme.SHMvL2}, false, false},
		// The oversubscription sweep prefetches its own cells (per-ratio
		// sub-runners plus the tier-off subset) on one pool inside the
		// generator, so it carries no prefetch list here.
		{"oversub", "oversubscription_sweep", r.FigOversub, nil, false, false},
		{"vii", "table07_bandwidth_utilization", r.TableVII, []scheme.Scheme{scheme.Baseline}, false, false},
		{"ix", "table09_hardware_overhead", experiments.TableIX, nil, false, false},
		{"summary", "summary_headline", r.Summary, []scheme.Scheme{scheme.Baseline, scheme.Naive, scheme.CommonCtr, scheme.PSSM, scheme.SHM, scheme.SHMUpperBound}, false, false},
		{"ablation-trackers", "ablation_trackers", r.AblationTrackers, []scheme.Scheme{scheme.Baseline}, false, true},
		{"ablation-lead", "ablation_monitor_lead", r.AblationMonitorLead, []scheme.Scheme{scheme.Baseline}, false, true},
		{"ablation-timeout", "ablation_timeout", r.AblationTimeout, []scheme.Scheme{scheme.Baseline}, false, true},
		{"ablation-mdc", "ablation_mdc_size", r.AblationMDCSize, []scheme.Scheme{scheme.Baseline}, false, true},
	}

	var sel []gen
	for _, g := range gens {
		if *fig == "all" && g.extra {
			continue
		}
		if *fig != "all" && *fig != g.id {
			continue
		}
		sel = append(sel, g)
	}
	if len(sel) == 0 {
		log.Errorf("unknown figure %q", *fig)
		return 2
	}

	// The cell total is a best-effort ETA denominator: the union of the
	// selected figures' prefetch cells times the workload count. Figures
	// share cells through the runner's cache, so actually-run cells can
	// undershoot this; the progress record clamps.
	wlCount := len(wls)
	if wlCount == 0 {
		wlCount = len(workload.MemoryIntensive())
	}
	cellKinds := make(map[string]bool)
	for _, g := range sel {
		for _, sch := range g.prefetch {
			cellKinds[sch.Name] = true
		}
		if g.accuracy {
			cellKinds["SHM/acc"] = true
		}
	}
	plane, shutdown, err := opsFlags.Start("paperbench", len(cellKinds)*wlCount, stderr, log)
	if err != nil {
		log.Errorf("%v", err)
		return 1
	}
	r.SetOps(plane)

	// The telemetry sink also feeds the live /metrics renderer, so the ops
	// endpoint implies an instrumented sweep even without dump directories.
	if *metricsOut != "" || *traceOut != "" || opsFlags.OpsListen != "" {
		installSink(r, plane, cfg, *quick, *sampleInterval, *metricsOut, *traceOut, log)
	}

	code := 0
	for _, g := range sel {
		log.Debugf("generating %s", g.name)
		start := time.Now()
		if len(g.prefetch) > 0 {
			r.Prefetch(g.prefetch, false)
		}
		if g.accuracy {
			r.Prefetch([]scheme.Scheme{scheme.SHM}, true)
		}
		table := g.fn()
		var text string
		if *jsonOut {
			buf, err := json.MarshalIndent(table, "", " ")
			if err != nil {
				log.Errorf("%v", err)
				code = 1
				break
			}
			text = string(buf) + "\n"
			fmt.Fprintln(stdout, text)
		} else {
			text = table.String()
			fmt.Fprintln(stdout, text)
			fmt.Fprintf(stdout, "(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		}
		if *out != "" {
			ext := ".txt"
			if *jsonOut {
				ext = ".json"
			}
			path := filepath.Join(*out, g.name+ext)
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				log.Errorf("%v", err)
				code = 1
				break
			}
		}
	}

	stalled := plane.Stalled()
	m := telemetry.Manifest{
		Tool:          "paperbench",
		SchemaVersion: telemetry.SchemaVersion,
		Quick:         *quick,
		SMs:           cfg.SMs,
		Partitions:    cfg.Partitions,
		MaxCycles:     cfg.MaxCycles,
		GitRev:        telemetry.GitRevision("."),
	}
	if err := shutdown(m); err != nil {
		log.Errorf("%v", err)
		if code == 0 {
			code = 1
		}
	}
	if len(stalled) > 0 {
		log.Errorf("%d cell(s) stalled: %s", len(stalled), strings.Join(stalled, ", "))
		if code == 0 {
			code = 4
		}
	}
	return code
}

// parseShardList resolves the bench-mode shard counts: the -bench-shards
// list when given, else the single -shards value for compatibility.
func parseShardList(list string, single int) ([]int, error) {
	if list == "" {
		if single > 0 {
			return []int{single}, nil
		}
		return nil, nil
	}
	var counts []int
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-bench-shards: %q is not a positive shard count", s)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// installSink wires per-run telemetry dumps into the runner. Each completed
// simulation writes <dir>/<workload>_<scheme>.prom and/or .trace.json; file
// names are unique per (workload, scheme) so the concurrent prefetch workers
// never share a file. The same render path is installed as the ops plane's
// /metrics handler, so a scrape after the last cell byte-matches the
// committed dump. Dump failures are reported but do not fail the run.
func installSink(r *experiments.Runner, plane *obs.Plane, cfg gpu.Config, quick bool, sampleInterval uint64, metricsDir, traceDir string, log *obs.Logger) {
	tcfg := telemetry.Config{SampleInterval: sampleInterval, CaptureEvents: traceDir != ""}
	gitRev := telemetry.GitRevision(".")
	r.SetTelemetrySink(tcfg, func(res gpu.Result, col *telemetry.Collector) {
		sum := experiments.TelemetrySummary(res)
		m := telemetry.Manifest{
			Tool:           "paperbench",
			SchemaVersion:  telemetry.SchemaVersion,
			Workload:       res.Workload,
			Scheme:         res.Scheme,
			Quick:          quick,
			SMs:            cfg.SMs,
			Partitions:     cfg.Partitions,
			MaxCycles:      cfg.MaxCycles,
			SampleInterval: sampleInterval,
			GitRev:         gitRev,
		}
		stem := res.Workload + "_" + res.Scheme
		dump := func(dir, suffix string, fn func(io.Writer) error) {
			if dir == "" {
				return
			}
			path := filepath.Join(dir, stem+suffix)
			f, err := os.Create(path)
			if err != nil {
				log.Errorf("%v", err)
				return
			}
			defer f.Close()
			if err := fn(f); err != nil {
				log.Errorf("writing %s: %v", path, err)
			}
		}
		dump(metricsDir, ".prom", func(w io.Writer) error {
			return telemetry.WritePrometheus(w, col, sum, m)
		})
		dump(traceDir, ".trace.json", func(w io.Writer) error {
			return telemetry.WriteChromeTrace(w, col, sum, m)
		})
		plane.SetMetrics(func(w io.Writer) error {
			return telemetry.WritePrometheus(w, col, sum, m)
		})
	})
}

// benchSchemes is the Fig. 12 scheme set the bench sweep measures: the
// baseline plus every design on the paper's headline comparison.
func benchSchemes() []scheme.Scheme {
	return []scheme.Scheme{
		scheme.Baseline, scheme.Naive, scheme.CommonCtr,
		scheme.PSSM, scheme.SHM, scheme.SHMUpperBound,
	}
}

// runBench measures the simulation sweep cell by cell (serially, so
// allocation counts are attributable) and writes/compares perf baselines.
// Sequential cells keep their historical names; every shard count in
// shardList additionally measures each (workload, scheme) under the
// parallel engine as run/<wl>/<scheme>/shards=N, so the baseline gate
// covers both modes. With fork enabled, each (workload, scheme) family is
// also measured as one warmed parent forked across the same variant set
// (fork/<wl>/<scheme>): the warmup prefix is simulated once instead of
// once per variant, so the fork cell's wall time should beat the summed
// scratch cells by roughly (variants-1) warmup simulations.
func runBench(cfg gpu.Config, quick bool, wls []string, shardList []int, fork bool, outPath, comparePath string, tol float64, checkTime bool, stdout io.Writer, log *obs.Logger) int {
	if len(wls) == 0 {
		wls = workload.MemoryIntensive()
	}
	b := perf.New(quick)
	for _, n := range shardList {
		if n > b.Shards {
			b.Shards = n
		}
	}
	sweepStart := time.Now()
	seqCfg := cfg
	seqCfg.ParallelShards = 0
	for _, wl := range wls {
		for _, sch := range benchSchemes() {
			bench, err := workload.ByName(wl)
			if err != nil {
				log.Errorf("%v", err)
				return 2
			}
			opts := sch.Options
			var seqCycles uint64
			cell := perf.Measure("run/"+wl+"/"+sch.Name, 1, func() {
				res := gpu.NewSystem(seqCfg, opts).Run(bench)
				seqCycles = res.Cycles
				if !res.Completed {
					log.Errorf("warning: %s/%s hit MaxCycles", wl, sch.Name)
				}
			})
			b.Add(cell)
			for _, n := range shardList {
				// A Bench carries per-run frontier-pacing state; each
				// parallel cell needs its own instance.
				bench, err := workload.ByName(wl)
				if err != nil {
					log.Errorf("%v", err)
					return 2
				}
				parCfg := cfg
				parCfg.ParallelShards = n
				cell := perf.Measure(fmt.Sprintf("run/%s/%s/shards=%d", wl, sch.Name, n), 1, func() {
					res := gpu.NewSystem(parCfg, opts).Run(bench)
					if !res.Completed {
						log.Errorf("warning: %s/%s (shards=%d) hit MaxCycles", wl, sch.Name, n)
					}
				})
				b.Add(cell)
			}
			// The fork family: warm once to a quarter of the sequential
			// run, then resume every variant from the snapshot. The
			// variant set mirrors the scratch cells above, so the summed
			// run/ cells are this cell's like-for-like baseline.
			if fork && len(shardList) > 0 && seqCycles/4 > 0 {
				specs := []experiments.ForkSpec{{}}
				for _, n := range shardList {
					specs = append(specs, experiments.ForkSpec{Shards: n})
				}
				cell := perf.Measure("fork/"+wl+"/"+sch.Name, 1, func() {
					if _, _, err := experiments.RunForkedSeeded(seqCfg, wl, 0, sch, seqCycles/4, telemetry.Config{}, specs); err != nil {
						log.Errorf("fork family %s/%s: %v", wl, sch.Name, err)
					}
				})
				b.Add(cell)
			}
		}
	}
	b.TotalWallNs = time.Since(sweepStart).Nanoseconds()

	fmt.Fprint(stdout, b.FormatGoBench())
	fmt.Fprintf(stdout, "sweep total: %v over %d cells\n", time.Duration(b.TotalWallNs).Round(time.Millisecond), len(b.Benchmarks))

	if outPath != "" {
		if err := perf.WriteFile(outPath, b); err != nil {
			log.Errorf("%v", err)
			return 1
		}
	}
	if comparePath != "" {
		base, err := perf.ReadFile(comparePath)
		if err != nil {
			log.Errorf("%v", err)
			return 1
		}
		timeTol := -1.0
		if checkTime {
			timeTol = tol
		}
		regs := perf.Compare(base, b, perf.Tolerance{AllocFrac: tol, TimeFrac: timeTol})
		if len(regs) > 0 {
			log.Errorf("%d benchmark regression(s) vs %s:", len(regs), comparePath)
			for _, r := range regs {
				log.Errorf("  %s", r)
			}
			return 3
		}
		fmt.Fprintf(stdout, "no regressions vs %s (tolerance %.0f%%, time check %v)\n", comparePath, 100*tol, checkTime)
	}
	return 0
}
