// Command paperbench regenerates every table and figure of the paper's
// evaluation section and writes the text reports to stdout and (optionally)
// a results directory.
//
// Usage:
//
//	paperbench                      # all figures, full configuration
//	paperbench -fig 12              # one figure
//	paperbench -quick               # scaled-down fast configuration
//	paperbench -workloads fdtd2d,bfs
//	paperbench -out results/        # also write one file per figure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"shmgpu/internal/experiments"
	"shmgpu/internal/gpu"
	"shmgpu/internal/report"
	"shmgpu/internal/scheme"
	"shmgpu/internal/workload"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure/table to regenerate: 5, 10, 11, 12, 13, 14, 15, 16, vii, ix, summary, all")
		quick     = flag.Bool("quick", false, "use the scaled-down fast configuration")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: the 15 memory-intensive ones)")
		out       = flag.String("out", "", "directory to write per-figure text reports to")
	)
	flag.Parse()

	cfg := gpu.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	var wls []string
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			w = strings.TrimSpace(w)
			if _, err := workload.ByName(w); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			wls = append(wls, w)
		}
	}
	r := experiments.NewRunner(cfg, wls)

	type genFn func() *report.Table
	gens := []struct {
		id       string
		name     string
		fn       genFn
		prefetch []scheme.Scheme
		accuracy bool
		extra    bool // excluded from -fig all (expensive ablations)
	}{
		{"5", "fig05_characterization", r.Fig5, []scheme.Scheme{scheme.SHMUpperBound}, false, false},
		{"10", "fig10_readonly_prediction", r.Fig10, nil, true, false},
		{"11", "fig11_streaming_prediction", r.Fig11, nil, true, false},
		{"12", "fig12_normalized_ipc", r.Fig12, []scheme.Scheme{scheme.Baseline, scheme.Naive, scheme.CommonCtr, scheme.PSSM, scheme.SHM, scheme.SHMUpperBound}, false, false},
		{"13", "fig13_optimization_breakdown", r.Fig13, []scheme.Scheme{scheme.Baseline, scheme.PSSM, scheme.PSSMCtr, scheme.SHMReadOnly, scheme.SHM, scheme.SHMCctr}, false, false},
		{"14", "fig14_bandwidth_overhead", r.Fig14, []scheme.Scheme{scheme.Naive, scheme.PSSM, scheme.SHMReadOnly, scheme.SHM}, false, false},
		{"15", "fig15_energy", r.Fig15, []scheme.Scheme{scheme.Baseline, scheme.Naive, scheme.CommonCtr, scheme.PSSM, scheme.SHM}, false, false},
		{"16", "fig16_victim_cache", r.Fig16, []scheme.Scheme{scheme.Baseline, scheme.SHM, scheme.SHMvL2}, false, false},
		{"vii", "table07_bandwidth_utilization", r.TableVII, []scheme.Scheme{scheme.Baseline}, false, false},
		{"ix", "table09_hardware_overhead", experiments.TableIX, nil, false, false},
		{"summary", "summary_headline", r.Summary, []scheme.Scheme{scheme.Baseline, scheme.Naive, scheme.CommonCtr, scheme.PSSM, scheme.SHM, scheme.SHMUpperBound}, false, false},
		{"ablation-trackers", "ablation_trackers", r.AblationTrackers, []scheme.Scheme{scheme.Baseline}, false, true},
		{"ablation-lead", "ablation_monitor_lead", r.AblationMonitorLead, []scheme.Scheme{scheme.Baseline}, false, true},
		{"ablation-timeout", "ablation_timeout", r.AblationTimeout, []scheme.Scheme{scheme.Baseline}, false, true},
		{"ablation-mdc", "ablation_mdc_size", r.AblationMDCSize, []scheme.Scheme{scheme.Baseline}, false, true},
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, g := range gens {
		if *fig == "all" && g.extra {
			continue
		}
		if *fig != "all" && *fig != g.id {
			continue
		}
		start := time.Now()
		if len(g.prefetch) > 0 {
			r.Prefetch(g.prefetch, false)
		}
		if g.accuracy {
			r.Prefetch([]scheme.Scheme{scheme.SHM}, true)
		}
		table := g.fn()
		text := table.String()
		fmt.Println(text)
		fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *out != "" {
			path := filepath.Join(*out, g.name+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
