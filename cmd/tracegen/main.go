// Command tracegen records the off-chip access trace of one simulated
// workload and replays recorded traces through differently-configured
// streaming detectors — the offline design-space exploration loop for the
// paper's detector parameters.
//
// Record:
//
//	tracegen -workload fdtd2d -out fdtd2d.trace -quick
//
// Replay with a parameter sweep:
//
//	tracegen -replay fdtd2d.trace -trackers 4 -timeout 3000 -lead 2
package main

import (
	"flag"
	"fmt"
	"os"

	"shmgpu"
	"shmgpu/internal/detectors"
	"shmgpu/internal/gpu"
	"shmgpu/internal/report"
	"shmgpu/internal/scheme"
	"shmgpu/internal/trace"
	"shmgpu/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "fdtd2d", "benchmark to trace")
		schName  = flag.String("scheme", "SHM", "design to run while tracing")
		out      = flag.String("out", "", "record: trace output path")
		quick    = flag.Bool("quick", false, "use the scaled-down configuration")
		replay   = flag.String("replay", "", "replay: trace input path")
		trackers = flag.Int("trackers", 8, "replay: memory access trackers per partition")
		timeout  = flag.Uint64("timeout", 6000, "replay: monitoring-phase idle timeout (cycles)")
		lead     = flag.Uint64("lead", 4, "replay: monitor-ahead distance (chunks)")
	)
	flag.Parse()

	switch {
	case *replay != "":
		if err := doReplay(*replay, *trackers, *timeout, *lead); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *out != "":
		if err := record(*wl, *schName, *out, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "specify -out to record or -replay to replay (see -h)")
		os.Exit(2)
	}
}

func record(wl, schName, out string, quick bool) error {
	bench, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	sch, err := scheme.ByName(schName)
	if err != nil {
		return err
	}
	cfg := gpu.DefaultConfig()
	if quick {
		cfg = shmgpu.QuickConfig()
	}
	sys := gpu.NewSystem(cfg, sch.Options)
	rec := trace.NewRecorder()
	for p := 0; p < cfg.Partitions; p++ {
		sys.MEE(p).SetTrace(rec.Observer(p))
	}
	res := sys.Run(bench)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := rec.WriteTo(f); err != nil {
		return err
	}
	fmt.Printf("recorded %d events from %s/%s (%d cycles) to %s\n",
		rec.Len(), wl, schName, res.Cycles, out)
	return nil
}

func doReplay(path string, trackers int, timeout, lead uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	cfg := detectors.DefaultStreamingConfig()
	cfg.Trackers = trackers
	cfg.TimeoutCycles = timeout
	cfg.MonitorLead = lead
	maxPart := 0
	for _, e := range events {
		if int(e.Partition) > maxPart {
			maxPart = int(e.Partition)
		}
	}
	res := trace.Replay(events, cfg, maxPart+1)

	t := report.NewTable(fmt.Sprintf("Replay of %s (trackers=%d timeout=%d lead=%d)", path, trackers, timeout, lead),
		"metric", "value")
	t.AddRow("events", res.Events)
	t.AddRow("detected streaming", res.DetectedStream)
	t.AddRow("detected random", res.DetectedRandom)
	t.AddRow("timeouts", res.Timeouts)
	t.AddRow("prediction accuracy", report.Percent(res.Accuracy.Accuracy()))
	fmt.Println(t)
	return nil
}
