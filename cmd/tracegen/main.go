// Command tracegen records the off-chip access trace of one simulated
// workload and replays recorded traces through differently-configured
// streaming detectors — the offline design-space exploration loop for the
// paper's detector parameters.
//
// Record:
//
//	tracegen -workload fdtd2d -out fdtd2d.trace -quick
//
// Replay with a parameter sweep:
//
//	tracegen -replay fdtd2d.trace -trackers 4 -timeout 3000 -lead 2
//
// Exit codes: 0 on success, 1 on IO/runtime errors, 2 on usage errors
// (bad flags, no mode, unknown workload or scheme).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"shmgpu"
	"shmgpu/internal/detectors"
	"shmgpu/internal/gpu"
	"shmgpu/internal/obs"
	"shmgpu/internal/report"
	"shmgpu/internal/scheme"
	"shmgpu/internal/trace"
	"shmgpu/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl       = fs.String("workload", "fdtd2d", "benchmark to trace")
		schName  = fs.String("scheme", "SHM", "design to run while tracing")
		out      = fs.String("out", "", "record: trace output path")
		quick    = fs.Bool("quick", false, "use the scaled-down configuration")
		replay   = fs.String("replay", "", "replay: trace input path")
		trackers = fs.Int("trackers", 8, "replay: memory access trackers per partition")
		timeout  = fs.Uint64("timeout", 6000, "replay: monitoring-phase idle timeout (cycles)")
		lead     = fs.Uint64("lead", 4, "replay: monitor-ahead distance (chunks)")
		quiet    = fs.Bool("q", false, "suppress informational logging (errors still print)")
		verbose  = fs.Bool("v", false, "verbose logging")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "Usage: tracegen [flags]\n\nRecords off-chip access traces and replays them through streaming detectors.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log := obs.NewLogger(stderr, "tracegen", obs.LevelFromFlags(*quiet, *verbose))
	if fs.NArg() != 0 {
		log.Errorf("unexpected arguments %v", fs.Args())
		fs.Usage()
		return 2
	}

	switch {
	case *replay != "":
		log.Debugf("replaying %s (trackers=%d timeout=%d lead=%d)", *replay, *trackers, *timeout, *lead)
		if err := doReplay(stdout, *replay, *trackers, *timeout, *lead); err != nil {
			log.Errorf("%v", err)
			return 1
		}
	case *out != "":
		bench, err := workload.ByName(*wl)
		if err != nil {
			log.Errorf("%v", err)
			return 2
		}
		sch, err := scheme.ByName(*schName)
		if err != nil {
			log.Errorf("%v", err)
			return 2
		}
		log.Debugf("recording %s/%s to %s", *wl, sch.Name, *out)
		if err := record(stdout, bench, sch, *wl, *out, *quick); err != nil {
			log.Errorf("%v", err)
			return 1
		}
	default:
		log.Errorf("specify -out to record or -replay to replay (see -h)")
		return 2
	}
	return 0
}

func record(stdout io.Writer, bench *workload.Bench, sch scheme.Scheme, wl, out string, quick bool) error {
	cfg := gpu.DefaultConfig()
	if quick {
		cfg = shmgpu.QuickConfig()
	}
	sys := gpu.NewSystem(cfg, sch.Options)
	rec := trace.NewRecorder()
	for p := 0; p < cfg.Partitions; p++ {
		sys.MEE(p).SetTrace(rec.Observer(p))
	}
	res := sys.Run(bench)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := rec.WriteTo(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recorded %d events from %s/%s (%d cycles) to %s\n",
		rec.Len(), wl, sch.Name, res.Cycles, out)
	return nil
}

func doReplay(stdout io.Writer, path string, trackers int, timeout, lead uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	cfg := detectors.DefaultStreamingConfig()
	cfg.Trackers = trackers
	cfg.TimeoutCycles = timeout
	cfg.MonitorLead = lead
	maxPart := 0
	for _, e := range events {
		if int(e.Partition) > maxPart {
			maxPart = int(e.Partition)
		}
	}
	res := trace.Replay(events, cfg, maxPart+1)

	t := report.NewTable(fmt.Sprintf("Replay of %s (trackers=%d timeout=%d lead=%d)", path, trackers, timeout, lead),
		"metric", "value")
	t.AddRow("events", res.Events)
	t.AddRow("detected streaming", res.DetectedStream)
	t.AddRow("detected random", res.DetectedRandom)
	t.AddRow("timeouts", res.Timeouts)
	t.AddRow("prediction accuracy", report.Percent(res.Accuracy.Accuracy()))
	fmt.Fprintln(stdout, t)
	return nil
}
