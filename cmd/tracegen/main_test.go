package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestNoMode(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-out") || !strings.Contains(stderr, "-replay") {
		t.Fatalf("stderr should name the mode flags:\n%s", stderr)
	}
}

func TestUnknownWorkload(t *testing.T) {
	code, _, stderr := runCLI(t, "-workload", "nope", "-out", filepath.Join(t.TempDir(), "t.trace"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "nope") {
		t.Fatalf("stderr should name the unknown workload:\n%s", stderr)
	}
}

func TestUnknownScheme(t *testing.T) {
	code, _, _ := runCLI(t, "-scheme", "nope", "-out", filepath.Join(t.TempDir(), "t.trace"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestPositionalArgsRejected(t *testing.T) {
	if code, _, _ := runCLI(t, "stray"); code != 2 {
		t.Fatal("stray positional args must be a usage error")
	}
}

func TestReplayMissingFile(t *testing.T) {
	if code, _, _ := runCLI(t, "-replay", filepath.Join(t.TempDir(), "missing.trace")); code != 1 {
		t.Fatal("missing trace file must be an IO error (exit 1)")
	}
}

func TestRecordThenReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full record/replay in -short")
	}
	path := filepath.Join(t.TempDir(), "bfs.trace")
	code, stdout, stderr := runCLI(t, "-workload", "bfs", "-scheme", "SHM", "-quick", "-out", path)
	if code != 0 {
		t.Fatalf("record exit = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "recorded") || !strings.Contains(stdout, "bfs/SHM") {
		t.Fatalf("record stdout = %s", stdout)
	}

	code, stdout, stderr = runCLI(t, "-replay", path, "-trackers", "4", "-timeout", "3000", "-lead", "2")
	if code != 0 {
		t.Fatalf("replay exit = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, want := range []string{"Replay of", "trackers=4", "events", "prediction accuracy"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("replay stdout missing %q:\n%s", want, stdout)
		}
	}
}
