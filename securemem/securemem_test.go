package securemem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"shmgpu/internal/memdef"
	"shmgpu/internal/metadata"
)

const testSize = 256 << 10 // 256 KiB

func newMem(t *testing.T) *Memory {
	t.Helper()
	m, err := New(Config{Size: testSize, ContextSeed: 42, Partition: 3})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func block(fill byte) []byte {
	b := make([]byte, BlockSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestNewRejectsBadSize(t *testing.T) {
	if _, err := New(Config{Size: 100}); err == nil {
		t.Fatal("unaligned size accepted")
	}
	if _, err := New(Config{Size: 0}); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := newMem(t)
	data := block(0xAB)
	if err := m.Write(0x4000, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if err := m.Read(0x4000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestInitialMemoryReadsZero(t *testing.T) {
	m := newMem(t)
	got := make([]byte, BlockSize)
	if err := m.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Fatal("fresh memory not zero")
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	m := newMem(t)
	data := block(0x77)
	m.Write(0x2000, data)
	if bytes.Equal(m.AttackerView()[0x2000:0x2000+BlockSize], data) {
		t.Fatal("data stored in plaintext")
	}
}

func TestBoundsChecks(t *testing.T) {
	m := newMem(t)
	buf := make([]byte, BlockSize)
	cases := []struct {
		addr memdef.Addr
		n    int
	}{
		{1, BlockSize},             // misaligned address
		{0, BlockSize - 1},         // misaligned length
		{testSize, BlockSize},      // out of range
		{testSize - 64, BlockSize}, // straddles the end
		{0, 0},                     // empty
	}
	for _, c := range cases {
		if err := m.Read(c.addr, buf[:min(c.n, len(buf))]); !errors.Is(err, ErrBounds) {
			t.Errorf("Read(%#x,%d) = %v, want ErrBounds", uint64(c.addr), c.n, err)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMultiBlockOperations(t *testing.T) {
	m := newMem(t)
	data := make([]byte, 4*BlockSize)
	rand.New(rand.NewSource(5)).Read(data)
	if err := m.Write(0x8000, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Read(0x8000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-block round trip mismatch")
	}
}

func TestTamperDataDetected(t *testing.T) {
	m := newMem(t)
	m.Write(0x1000, block(1))
	m.AttackerView()[0x1000] ^= 0x01
	err := m.Read(0x1000, make([]byte, BlockSize))
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tamper not detected: %v", err)
	}
	if m.Stats().IntegrityFailures == 0 {
		t.Error("failure not counted")
	}
}

func TestTamperMACAloneSurvivesViaChunkMAC(t *testing.T) {
	// The paper's dual-granularity remedy: "if one integrity check fails,
	// the other MAC is checked". Corrupting ONLY the block MAC leaves the
	// data authentic — the chunk-level MAC (recomputed over the
	// ciphertext) vouches for it, so the read succeeds.
	m := newMem(t)
	m.Write(0x1000, block(1))
	macAddr := m.Layout().BlockMACAddr(0x1000)
	m.AttackerView()[macAddr] ^= 0xFF
	got := make([]byte, BlockSize)
	if err := m.Read(0x1000, got); err != nil {
		t.Fatalf("second-chance verification failed: %v", err)
	}
	if !bytes.Equal(got, block(1)) {
		t.Fatal("data corrupted")
	}
	if m.Stats().ChunkMACVerifications == 0 {
		t.Fatal("second chance not exercised")
	}
}

func TestTamperBothMACsDetected(t *testing.T) {
	// With both the block MAC and the chunk MAC corrupted, no valid
	// authentication path remains.
	m := newMem(t)
	m.Write(0x1000, block(1))
	m.AttackerView()[m.Layout().BlockMACAddr(0x1000)] ^= 0xFF
	m.AttackerView()[m.Layout().ChunkMACAddr(0x1000)] ^= 0xFF
	if err := m.Read(0x1000, make([]byte, BlockSize)); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("dual MAC tamper not detected: %v", err)
	}
}

func TestReplayDataDetected(t *testing.T) {
	// Classic replay: snapshot ciphertext+MAC of version 1, restore after
	// version 2 is written. The replayed pair is internally consistent,
	// but the counters (freshness) no longer match.
	m := newMem(t)
	addr := memdef.Addr(0x3000)
	m.Write(addr, block(1))
	view := m.AttackerView()
	oldCT := append([]byte(nil), view[addr:addr+BlockSize]...)
	macAddr := m.Layout().BlockMACAddr(addr)
	oldMAC := append([]byte(nil), view[macAddr:macAddr+8]...)
	chunkMACAddr := m.Layout().ChunkMACAddr(addr)
	oldChunkMAC := append([]byte(nil), view[chunkMACAddr:chunkMACAddr+8]...)

	m.Write(addr, block(2))

	copy(view[addr:], oldCT)
	copy(view[macAddr:], oldMAC)
	copy(view[chunkMACAddr:], oldChunkMAC)
	err := m.Read(addr, make([]byte, BlockSize))
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("replay not detected: %v", err)
	}
}

func TestCounterReplayDetected(t *testing.T) {
	// Replay of the counters alongside data+MAC: only the integrity tree
	// (rooted on chip) catches this.
	m := newMem(t)
	addr := memdef.Addr(0x5000)
	m.Write(addr, block(1))
	view := m.AttackerView()
	cbIdx, _ := m.Layout().CounterIndex(addr)
	ctrAddr := m.Layout().CounterBlockAddr(cbIdx)

	snapshot := func() map[memdef.Addr][]byte {
		s := map[memdef.Addr][]byte{}
		s[addr] = append([]byte(nil), view[addr:addr+BlockSize]...)
		ma := m.Layout().BlockMACAddr(addr)
		s[ma] = append([]byte(nil), view[ma:ma+8]...)
		ca := m.Layout().ChunkMACAddr(addr)
		s[ca] = append([]byte(nil), view[ca:ca+8]...)
		s[ctrAddr] = append([]byte(nil), view[ctrAddr:ctrAddr+metadata.CounterBlockSize]...)
		return s
	}
	old := snapshot()

	m.Write(addr, block(2))
	for a, b := range old {
		copy(view[a:], b)
	}
	err := m.Read(addr, make([]byte, BlockSize))
	if !errors.Is(err, ErrFreshness) {
		t.Fatalf("counter replay not detected as freshness failure: %v", err)
	}
	if m.Stats().FreshnessFailures == 0 {
		t.Error("freshness failure not counted")
	}
}

func TestHostCopyMakesRegionReadOnly(t *testing.T) {
	m := newMem(t)
	input := make([]byte, memdef.RegionSize)
	rand.New(rand.NewSource(7)).Read(input)
	if err := m.CopyFromHost(0, input); err != nil {
		t.Fatal(err)
	}
	if !m.IsReadOnly(0) {
		t.Fatal("copied region not read-only")
	}
	got := make([]byte, memdef.RegionSize)
	if err := m.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, input) {
		t.Fatal("host-copied data mismatch")
	}
}

func TestHostCopyAlignment(t *testing.T) {
	m := newMem(t)
	if err := m.CopyFromHost(128, make([]byte, memdef.RegionSize)); !errors.Is(err, ErrBounds) {
		t.Error("misaligned copy accepted")
	}
	if err := m.CopyFromHost(0, make([]byte, 100)); !errors.Is(err, ErrBounds) {
		t.Error("misaligned length accepted")
	}
}

func TestReadOnlyTamperStillDetected(t *testing.T) {
	// Read-only regions skip freshness but keep integrity (C+I).
	m := newMem(t)
	input := make([]byte, memdef.RegionSize)
	m.CopyFromHost(0, input)
	m.AttackerView()[0x100] ^= 1
	if err := m.Read(0x100&^(BlockSize-1), make([]byte, BlockSize)); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tamper in RO region not detected: %v", err)
	}
}

func TestROTransitionOnWrite(t *testing.T) {
	m := newMem(t)
	input := make([]byte, memdef.RegionSize)
	for i := range input {
		input[i] = byte(i)
	}
	m.CopyFromHost(0, input)

	// Write one block: region transitions to RW.
	if err := m.Write(0x800, block(0x55)); err != nil {
		t.Fatal(err)
	}
	if m.IsReadOnly(0) {
		t.Fatal("region still read-only after write")
	}
	if m.Stats().ROTransitions != 1 {
		t.Fatalf("transitions = %d", m.Stats().ROTransitions)
	}
	// The written block reads back new data; untouched blocks read the
	// original input (seamless counter handoff, Fig. 8).
	got := make([]byte, BlockSize)
	if err := m.Read(0x800, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block(0x55)) {
		t.Fatal("written block wrong after transition")
	}
	if err := m.Read(0x900, got); err != nil {
		t.Fatalf("untouched block after transition: %v", err)
	}
	if !bytes.Equal(got, input[0x900:0x900+BlockSize]) {
		t.Fatal("untouched block corrupted by transition")
	}
}

func TestCrossKernelReplayBlockedByResetAPI(t *testing.T) {
	// The paper's cross-kernel replay: kernel 1's input is copied to the
	// same location as kernel 2's input. Without a shared-counter bump,
	// the attacker could serve kernel 1's ciphertext during kernel 2.
	m := newMem(t)
	input1 := make([]byte, memdef.RegionSize)
	for i := range input1 {
		input1[i] = 0x11
	}
	m.CopyFromHost(0, input1)
	view := m.AttackerView()
	// Attacker snapshots EVERYTHING relevant for region 0 (ciphertext,
	// MACs, chunk MACs).
	snapLen := memdef.RegionSize
	oldData := append([]byte(nil), view[0:snapLen]...)
	macLo := m.Layout().BlockMACAddr(0)
	oldMACs := append([]byte(nil), view[macLo:macLo+memdef.RegionSize/BlockSize*8]...)
	cmLo := m.Layout().ChunkMACAddr(0)
	oldCMs := append([]byte(nil), view[cmLo:cmLo+memdef.RegionSize/ChunkSize*8]...)

	// Host reuses the region for kernel 2 via the reset API.
	if err := m.InputReadOnlyReset(0, memdef.RegionSize); err != nil {
		t.Fatal(err)
	}
	input2 := make([]byte, memdef.RegionSize)
	for i := range input2 {
		input2[i] = 0x22
	}
	m.CopyFromHost(0, input2)

	// Attacker replays kernel 1's state wholesale.
	copy(view[0:], oldData)
	copy(view[macLo:], oldMACs)
	copy(view[cmLo:], oldCMs)

	err := m.Read(0, make([]byte, BlockSize))
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("cross-kernel replay not detected: %v", err)
	}
}

func TestSharedCounterAdvancesPastMajors(t *testing.T) {
	m := newMem(t)
	m.CopyFromHost(0, make([]byte, memdef.RegionSize))
	// Drive some majors up via overflow-free writes... simpler: write a
	// lot to bump minors, then reset; shared must exceed all majors.
	for i := 0; i < 10; i++ {
		m.Write(0, block(byte(i)))
	}
	before := m.SharedCounter()
	if err := m.InputReadOnlyReset(0, memdef.RegionSize); err != nil {
		t.Fatal(err)
	}
	if m.SharedCounter() <= before {
		t.Fatal("shared counter did not advance")
	}
}

func TestMinorOverflowReencryptsSiblings(t *testing.T) {
	m := newMem(t)
	// Fill two sibling blocks with known data.
	m.Write(0, block(0xAA))
	m.Write(BlockSize, block(0xBB))
	// Overflow block 0's minor counter (127 more writes).
	for i := 0; i <= metadata.MinorMax; i++ {
		if err := m.Write(0, block(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().MinorOverflows == 0 {
		t.Fatal("no overflow recorded")
	}
	// The sibling must still decrypt correctly under the new major.
	got := make([]byte, BlockSize)
	if err := m.Read(BlockSize, got); err != nil {
		t.Fatalf("sibling read after overflow: %v", err)
	}
	if !bytes.Equal(got, block(0xBB)) {
		t.Fatal("sibling corrupted by overflow re-encryption")
	}
}

func TestVerifyChunk(t *testing.T) {
	m := newMem(t)
	m.Write(0x1000, block(9))
	if err := m.VerifyChunk(0x1000); err != nil {
		t.Fatal(err)
	}
	// Corrupt data inside the chunk: the coarse MAC (recomputed over the
	// ciphertext) must fail.
	m.AttackerView()[0x1080] ^= 1
	if err := m.VerifyChunk(0x1000); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("chunk MAC did not catch data tamper: %v", err)
	}
	m.AttackerView()[0x1080] ^= 1 // restore
	// Corrupt the stored chunk MAC itself.
	m.AttackerView()[m.Layout().ChunkMACAddr(0x1000)] ^= 1
	if err := m.VerifyChunk(0x1000); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("stored chunk MAC tamper not detected: %v", err)
	}
	if err := m.VerifyChunk(memdef.Addr(testSize)); !errors.Is(err, ErrBounds) {
		t.Fatal("out-of-range chunk accepted")
	}
}

func TestRandomizedWriteReadProperty(t *testing.T) {
	m := newMem(t)
	shadow := make([]byte, testSize)
	rng := rand.New(rand.NewSource(11))
	f := func(op uint32) bool {
		blockIdx := int(op) % (testSize / BlockSize)
		addr := memdef.Addr(blockIdx * BlockSize)
		if op&1 == 0 {
			data := make([]byte, BlockSize)
			rng.Read(data)
			if err := m.Write(addr, data); err != nil {
				return false
			}
			copy(shadow[addr:], data)
			return true
		}
		got := make([]byte, BlockSize)
		if err := m.Read(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, shadow[addr:int(addr)+BlockSize])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := newMem(t)
	m.Write(0, block(1))
	m.Read(0, make([]byte, BlockSize))
	m.CopyFromHost(memdef.RegionSize, make([]byte, memdef.RegionSize))
	s := m.Stats()
	if s.Writes != 1 || s.Reads != 1 || s.HostCopies != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDifferentContextsDifferentCiphertext(t *testing.T) {
	m1 := MustNew(Config{Size: testSize, ContextSeed: 1})
	m2 := MustNew(Config{Size: testSize, ContextSeed: 2})
	data := block(0x42)
	m1.Write(0, data)
	m2.Write(0, data)
	if bytes.Equal(m1.AttackerView()[0:BlockSize], m2.AttackerView()[0:BlockSize]) {
		t.Fatal("identical ciphertext across contexts")
	}
}
