package securemem

import (
	"bytes"
	"errors"
	"testing"

	"shmgpu/internal/memdef"
)

func newDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(Config{Size: 512 << 10, ContextSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMallocAlignmentAndAccounting(t *testing.T) {
	d := newDevice(t)
	a, err := d.Malloc("a", 1000, SpaceGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(a.Addr())%memdef.RegionSize != 0 {
		t.Errorf("allocation not region-aligned: %#x", uint64(a.Addr()))
	}
	b, err := d.Malloc("b", memdef.RegionSize, SpaceConstant)
	if err != nil {
		t.Fatal(err)
	}
	if b.Addr() < a.Addr()+memdef.RegionSize {
		t.Error("allocations overlap")
	}
	if len(d.Buffers()) != 2 {
		t.Errorf("buffers = %d", len(d.Buffers()))
	}
}

func TestMallocErrors(t *testing.T) {
	d := newDevice(t)
	if _, err := d.Malloc("", 100, SpaceGlobal); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := d.Malloc("x", 0, SpaceGlobal); err == nil {
		t.Error("zero size accepted")
	}
	d.Malloc("dup", 100, SpaceGlobal)
	if _, err := d.Malloc("dup", 100, SpaceGlobal); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := d.Malloc("huge", 1<<30, SpaceGlobal); err == nil {
		t.Error("oversized allocation accepted")
	}
	if _, err := d.Malloc("reg", 100, memdef.SpaceLocal); err == nil {
		t.Error("non-allocatable space accepted")
	}
}

func TestMemcpyRoundTrip(t *testing.T) {
	d := newDevice(t)
	b, _ := d.Malloc("data", 4096, SpaceGlobal)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := d.MemcpyHtoD(b, payload, false); err != nil {
		t.Fatal(err)
	}
	back, err := d.MemcpyDtoH(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestConstantBufferIsReadOnly(t *testing.T) {
	d := newDevice(t)
	b, _ := d.Malloc("coef", memdef.RegionSize, SpaceConstant)
	if err := d.MemcpyHtoD(b, make([]byte, 128), false); err != nil {
		t.Fatal(err)
	}
	if !d.Memory().IsReadOnly(b.Addr()) {
		t.Fatal("constant buffer not read-only after copy")
	}
	// Kernel stores to constant memory are rejected.
	if err := b.Store(0, make([]byte, BlockSize)); !errors.Is(err, ErrBounds) {
		t.Fatalf("store to constant buffer: %v", err)
	}
}

func TestReadOnlyHintGlobalBuffer(t *testing.T) {
	d := newDevice(t)
	b, _ := d.Malloc("input", memdef.RegionSize, SpaceGlobal)
	if err := d.MemcpyHtoD(b, make([]byte, 256), true); err != nil {
		t.Fatal(err)
	}
	if !d.Memory().IsReadOnly(b.Addr()) {
		t.Fatal("read-only hint ignored")
	}
	// A kernel store triggers the RO→RW transition instead of failing.
	if err := b.Store(0, make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if d.Memory().IsReadOnly(b.Addr()) {
		t.Fatal("no transition on store")
	}
}

func TestRecopyIntoReadOnlyBufferAdvancesSharedCounter(t *testing.T) {
	d := newDevice(t)
	b, _ := d.Malloc("input", memdef.RegionSize, SpaceConstant)
	d.MemcpyHtoD(b, []byte{1}, false)
	before := d.Memory().SharedCounter()
	if err := d.MemcpyHtoD(b, []byte{2}, false); err != nil {
		t.Fatal(err)
	}
	if d.Memory().SharedCounter() <= before {
		t.Fatal("re-copy did not advance the shared counter (cross-kernel replay risk)")
	}
	got, err := d.MemcpyDtoH(b)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatal("stale data after re-copy")
	}
}

func TestLoadStoreKernelSide(t *testing.T) {
	d := newDevice(t)
	b, _ := d.Malloc("work", 2*BlockSize, SpaceGlobal)
	data := make([]byte, BlockSize)
	for i := range data {
		data[i] = 0x5A
	}
	if err := b.Store(BlockSize, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if err := b.Load(BlockSize, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("load/store mismatch")
	}
	// Out-of-bounds and misaligned accesses rejected.
	if err := b.Load(3, got); !errors.Is(err, ErrBounds) {
		t.Error("misaligned load accepted")
	}
	if err := b.Store(memdef.RegionSize, data); !errors.Is(err, ErrBounds) {
		t.Error("out-of-bounds store accepted")
	}
}

func TestFreeScrubsAndInvalidates(t *testing.T) {
	d := newDevice(t)
	b, _ := d.Malloc("secret", BlockSize, SpaceGlobal)
	d.MemcpyHtoD(b, bytes.Repeat([]byte{0xEE}, BlockSize), false)
	if err := d.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(b); err == nil {
		t.Fatal("double free accepted")
	}
	if _, err := d.MemcpyDtoH(b); !errors.Is(err, ErrBounds) {
		t.Fatal("freed buffer still readable through handle")
	}
	if len(d.Buffers()) != 0 {
		t.Fatal("freed buffer still listed")
	}
}

func TestFreeReadOnlyBuffer(t *testing.T) {
	d := newDevice(t)
	b, _ := d.Malloc("input", memdef.RegionSize, SpaceConstant)
	d.MemcpyHtoD(b, []byte{1, 2, 3}, false)
	if err := d.Free(b); err != nil {
		t.Fatalf("freeing a read-only buffer: %v", err)
	}
}

func TestMemcpyOversize(t *testing.T) {
	d := newDevice(t)
	b, _ := d.Malloc("small", 128, SpaceGlobal)
	if err := d.MemcpyHtoD(b, make([]byte, memdef.RegionSize+1), false); !errors.Is(err, ErrBounds) {
		t.Fatal("oversized copy accepted")
	}
}

func TestTransferChannelRoundTrip(t *testing.T) {
	host, _ := NewTransferChannel(99, "htod")
	dev, _ := NewTransferChannel(99, "htod")
	payload := []byte("input tensor shard 7")
	sealed := host.Seal(0x4000, payload)
	if bytes.Contains(sealed.Ciphertext, []byte("tensor")) {
		t.Fatal("transfer not encrypted")
	}
	got, err := dev.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestTransferTamperDetected(t *testing.T) {
	host, _ := NewTransferChannel(99, "htod")
	dev, _ := NewTransferChannel(99, "htod")
	sealed := host.Seal(0, []byte("payload"))
	sealed.Ciphertext[0] ^= 1
	if _, err := dev.Open(sealed); !errors.Is(err, ErrTransfer) {
		t.Fatalf("tampered transfer accepted: %v", err)
	}
}

func TestTransferReplayAndReorderRejected(t *testing.T) {
	host, _ := NewTransferChannel(99, "htod")
	dev, _ := NewTransferChannel(99, "htod")
	t1 := host.Seal(0, []byte("one"))
	t2 := host.Seal(0, []byte("two"))
	if _, err := dev.Open(t2); !errors.Is(err, ErrTransfer) {
		t.Fatal("reordered transfer accepted")
	}
	if _, err := dev.Open(t1); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Open(t1); !errors.Is(err, ErrTransfer) {
		t.Fatal("replayed transfer accepted")
	}
}

func TestTransferDestinationBound(t *testing.T) {
	// Redirecting a sealed transfer to a different destination must fail
	// authentication (the destination is in the AAD).
	host, _ := NewTransferChannel(99, "htod")
	dev, _ := NewTransferChannel(99, "htod")
	sealed := host.Seal(0x1000, []byte("weights"))
	sealed.Dest = 0x2000
	if _, err := dev.Open(sealed); !errors.Is(err, ErrTransfer) {
		t.Fatal("redirected transfer accepted")
	}
}

func TestTransferDirectionsIsolated(t *testing.T) {
	// htod and dtoh channels must not share keys/nonces.
	htod, _ := NewTransferChannel(99, "htod")
	dtoh, _ := NewTransferChannel(99, "dtoh")
	sealed := htod.Seal(0, []byte("x"))
	if _, err := dtoh.Open(sealed); !errors.Is(err, ErrTransfer) {
		t.Fatal("cross-direction transfer accepted")
	}
	if _, err := NewTransferChannel(99, "sideways"); err == nil {
		t.Fatal("bad direction accepted")
	}
}

func TestSecureMemcpyHtoDEndToEnd(t *testing.T) {
	d := newDevice(t)
	b, _ := d.Malloc("input", memdef.RegionSize, SpaceGlobal)
	host, _ := NewTransferChannel(7, "htod")
	dev, _ := NewTransferChannel(7, "htod")
	payload := bytes.Repeat([]byte{0xC3}, 512)
	sealed, err := d.SecureMemcpyHtoD(host, dev, b, payload, true)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed.Ciphertext, payload[:64]) {
		t.Fatal("bus transfer leaked plaintext")
	}
	back, err := d.MemcpyDtoH(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back[:512], payload) {
		t.Fatal("end-to-end mismatch")
	}
	if !d.Memory().IsReadOnly(b.Addr()) {
		t.Fatal("read-only hint lost through secure transfer")
	}
}
