package securemem

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// PCIe transfer protection. The paper assumes (from Graviton and HIX) that
// data crossing the host↔device interconnect is protected, since the PCIe
// bus is exposed to physical attackers just like device memory. This file
// provides that substrate: an authenticated-encryption channel between the
// host runtime and the GPU command processor. Payloads are sealed with
// AES-GCM under a session key bound to the GPU context, with a strictly
// monotonic sequence number as the nonce so captured transfers cannot be
// replayed or reordered.

// ErrTransfer is returned when a sealed transfer fails authentication,
// arrives out of order, or is replayed.
var ErrTransfer = errors.New("securemem: transfer verification failed")

// SealedTransfer is one protected host↔device payload as it appears on the
// bus: sequence number, destination, and AES-GCM ciphertext (the sequence
// and destination are authenticated as additional data).
type SealedTransfer struct {
	// Seq is the channel sequence number (nonce component).
	Seq uint64
	// Dest is the destination device address the transfer targets.
	Dest uint64
	// Ciphertext is the AES-GCM output (payload ∥ tag).
	Ciphertext []byte
}

// TransferChannel is one direction of the protected PCIe link. Create a
// matching pair (same session key) on the host and device sides; the sender
// Seals, the receiver Opens. Sequence numbers enforce ordering: each side
// of the pair tracks its own counter.
type TransferChannel struct {
	aead    cipher.AEAD
	sendSeq uint64
	recvSeq uint64
}

// NewTransferChannel derives a channel from the GPU context seed and a
// direction label ("htod" or "dtoh"), so the two directions never share
// nonce space.
func NewTransferChannel(contextSeed uint64, direction string) (*TransferChannel, error) {
	if direction != "htod" && direction != "dtoh" {
		return nil, fmt.Errorf("%w: direction must be htod or dtoh", ErrTransfer)
	}
	h := sha256.New()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], contextSeed)
	h.Write(seed[:])
	h.Write([]byte("pcie-" + direction))
	key := h.Sum(nil)[:16]
	blk, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, err
	}
	return &TransferChannel{aead: aead}, nil
}

func (c *TransferChannel) nonce(seq uint64) []byte {
	n := make([]byte, c.aead.NonceSize())
	binary.LittleEndian.PutUint64(n, seq)
	return n
}

func aad(seq, dest uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[0:8], seq)
	binary.LittleEndian.PutUint64(b[8:16], dest)
	return b
}

// Seal protects one payload for the wire.
func (c *TransferChannel) Seal(dest uint64, payload []byte) SealedTransfer {
	seq := c.sendSeq
	c.sendSeq++
	ct := c.aead.Seal(nil, c.nonce(seq), payload, aad(seq, dest))
	return SealedTransfer{Seq: seq, Dest: dest, Ciphertext: ct}
}

// Open verifies and decrypts one payload from the wire. Transfers must
// arrive in order: a replayed or reordered sequence number is rejected
// before decryption is even attempted.
func (c *TransferChannel) Open(t SealedTransfer) ([]byte, error) {
	if t.Seq != c.recvSeq {
		return nil, fmt.Errorf("%w: sequence %d, expected %d (replay or reorder)", ErrTransfer, t.Seq, c.recvSeq)
	}
	pt, err := c.aead.Open(nil, c.nonce(t.Seq), t.Ciphertext, aad(t.Seq, t.Dest))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTransfer, err)
	}
	c.recvSeq++
	return pt, nil
}

// SecureMemcpyHtoD seals data on the host side of the channel, "transfers"
// it (the sealed form is what an attacker on the bus sees), opens it on the
// device side, and lands it in the buffer through the protected-memory
// path. It returns the on-the-wire form so callers (tests, demos) can show
// or attack it.
func (d *Device) SecureMemcpyHtoD(host, dev *TransferChannel, b *Buffer, data []byte, readOnlyHint bool) (SealedTransfer, error) {
	sealed := host.Seal(uint64(b.Addr()), data)
	payload, err := dev.Open(sealed)
	if err != nil {
		return sealed, err
	}
	return sealed, d.MemcpyHtoD(b, payload, readOnlyHint)
}
