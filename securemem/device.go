package securemem

import (
	"fmt"
	"sort"

	"shmgpu/internal/memdef"
)

// Space identifies the GPU memory space a buffer is bound to, mirroring the
// heterogeneous memory model of the paper's Table I. Off-chip spaces get
// the security treatment of their row: global memory needs C+I+F; constant
// and texture memory are read-only by nature and need only C+I.
type Space = memdef.Space

// Re-exported space constants for buffer allocation.
const (
	SpaceGlobal   = memdef.SpaceGlobal
	SpaceConstant = memdef.SpaceConstant
	SpaceTexture  = memdef.SpaceTexture
)

// Buffer is one device allocation.
type Buffer struct {
	name  string
	addr  memdef.Addr
	size  uint64
	space Space
	dev   *Device
	freed bool
}

// Name returns the allocation label.
func (b *Buffer) Name() string { return b.name }

// Addr returns the buffer's device address.
func (b *Buffer) Addr() memdef.Addr { return b.addr }

// Size returns the usable size in bytes.
func (b *Buffer) Size() uint64 { return b.size }

// Space returns the memory space the buffer is bound to.
func (b *Buffer) Space() Space { return b.space }

// Device wraps a protected Memory with an allocator and the host-side
// runtime operations of the GPU programming model: Malloc/Free,
// MemcpyHtoD/MemcpyDtoH, and kernel-side Load/Store — a small CUDA-runtime
// lookalike over the secure memory.
//
// Host→device copies into constant or texture buffers, and copies that the
// application declares read-only (as OpenCL read buffers do), take the
// paper's read-only fast path: shared-counter encryption with no
// integrity-tree coverage. Kernel-side stores to such buffers trigger the
// architectural RO→RW transition (global memory) or are rejected outright
// (constant/texture, which the programming model forbids writing).
type Device struct {
	mem    *Memory
	allocs map[string]*Buffer
	// next is the allocation cursor; buffers are region-aligned so the
	// read-only attribute never straddles allocations.
	next memdef.Addr
}

// NewDevice creates a device with a protected memory of the given size.
func NewDevice(cfg Config) (*Device, error) {
	mem, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Device{mem: mem, allocs: map[string]*Buffer{}}, nil
}

// Memory exposes the underlying protected memory (attack demos, stats).
func (d *Device) Memory() *Memory { return d.mem }

// Malloc allocates a named, region-aligned buffer in the given space.
func (d *Device) Malloc(name string, size uint64, space Space) (*Buffer, error) {
	if name == "" || size == 0 {
		return nil, fmt.Errorf("%w: allocation needs a name and size", ErrBounds)
	}
	if _, dup := d.allocs[name]; dup {
		return nil, fmt.Errorf("%w: allocation %q already exists", ErrBounds, name)
	}
	switch space {
	case SpaceGlobal, SpaceConstant, SpaceTexture:
	default:
		return nil, fmt.Errorf("%w: space %v is not allocatable device memory", ErrBounds, space)
	}
	aligned := (size + memdef.RegionSize - 1) &^ (memdef.RegionSize - 1)
	if uint64(d.next)+aligned > d.mem.Size() {
		return nil, fmt.Errorf("%w: out of device memory (%d of %d used)", ErrBounds, d.next, d.mem.Size())
	}
	b := &Buffer{name: name, addr: d.next, size: size, space: space, dev: d}
	d.next += memdef.Addr(aligned)
	d.allocs[name] = b
	return b, nil
}

// Free releases a buffer. The allocator is a bump allocator (GPU runtimes
// typically suballocate); freeing only forbids further use of the handle
// and scrubs the region by overwriting it through the secure path.
func (d *Device) Free(b *Buffer) error {
	if b.freed {
		return fmt.Errorf("%w: double free of %q", ErrBounds, b.name)
	}
	b.freed = true
	delete(d.allocs, b.name)
	// Scrub: a freed buffer's plaintext must be unrecoverable even by
	// the owning context.
	zero := make([]byte, b.alignedSize())
	if d.mem.IsReadOnly(b.addr) {
		// Writing through the secure path transitions the regions first.
		for off := uint64(0); off < b.alignedSize(); off += memdef.RegionSize {
			d.mem.transitionToRW(b.addr + memdef.Addr(off))
		}
	}
	return d.mem.Write(b.addr, zero)
}

// Buffers lists live allocations sorted by name.
func (d *Device) Buffers() []*Buffer {
	out := make([]*Buffer, 0, len(d.allocs))
	for _, b := range d.allocs {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (b *Buffer) alignedSize() uint64 {
	return (b.size + memdef.RegionSize - 1) &^ (memdef.RegionSize - 1)
}

func (b *Buffer) check(offset uint64, n int) error {
	if b.freed {
		return fmt.Errorf("%w: buffer %q is freed", ErrBounds, b.name)
	}
	if offset%BlockSize != 0 || n%BlockSize != 0 || n <= 0 {
		return fmt.Errorf("%w: buffer %q access at %d len %d must be %d-byte aligned",
			ErrBounds, b.name, offset, n, BlockSize)
	}
	if offset+uint64(n) > b.alignedSize() {
		return fmt.Errorf("%w: buffer %q access [%d,%d) beyond %d", ErrBounds, b.name, offset, offset+uint64(n), b.size)
	}
	return nil
}

// MemcpyHtoD copies host data into the buffer. Constant and texture
// buffers — and global buffers when readOnlyHint is true (the OpenCL
// read-buffer declaration) — take the read-only fast path. data shorter
// than the buffer is zero-padded to the region boundary.
func (d *Device) MemcpyHtoD(b *Buffer, data []byte, readOnlyHint bool) error {
	if b.freed {
		return fmt.Errorf("%w: buffer %q is freed", ErrBounds, b.name)
	}
	if uint64(len(data)) > b.alignedSize() {
		return fmt.Errorf("%w: %d bytes into %d-byte buffer %q", ErrBounds, len(data), b.size, b.name)
	}
	padded := make([]byte, b.alignedSize())
	copy(padded, data)
	if b.space.ReadOnlyByNature() || readOnlyHint {
		if d.mem.IsReadOnly(b.addr) {
			// Re-copy into a still-read-only buffer: use the reset API so
			// the shared counter advances (cross-kernel replay defense).
			if err := d.mem.InputReadOnlyReset(b.addr, b.alignedSize()); err != nil {
				return err
			}
		}
		return d.mem.CopyFromHost(b.addr, padded)
	}
	if d.mem.IsReadOnly(b.addr) {
		for off := uint64(0); off < b.alignedSize(); off += memdef.RegionSize {
			d.mem.transitionToRW(b.addr + memdef.Addr(off))
		}
	}
	return d.mem.Write(b.addr, padded)
}

// MemcpyDtoH copies the buffer's contents back to the host, verifying
// integrity (and freshness for non-read-only buffers) along the way.
func (d *Device) MemcpyDtoH(b *Buffer) ([]byte, error) {
	if b.freed {
		return nil, fmt.Errorf("%w: buffer %q is freed", ErrBounds, b.name)
	}
	out := make([]byte, b.alignedSize())
	if err := d.mem.Read(b.addr, out); err != nil {
		return nil, err
	}
	return out[:b.size], nil
}

// Load is the kernel-side read: block-aligned offset and length.
func (b *Buffer) Load(offset uint64, buf []byte) error {
	if err := b.check(offset, len(buf)); err != nil {
		return err
	}
	return b.dev.mem.Read(b.addr+memdef.Addr(offset), buf)
}

// Store is the kernel-side write. Stores to constant or texture buffers are
// rejected — the programming model forbids them (paper Table I), which is
// exactly why those spaces can drop freshness protection.
func (b *Buffer) Store(offset uint64, data []byte) error {
	if b.space.ReadOnlyByNature() {
		return fmt.Errorf("%w: kernel store to %v buffer %q", ErrBounds, b.space, b.name)
	}
	if err := b.check(offset, len(data)); err != nil {
		return err
	}
	return b.dev.mem.Write(b.addr+memdef.Addr(offset), data)
}
