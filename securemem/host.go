package securemem

import (
	"encoding/binary"
	"fmt"

	"shmgpu/internal/cryptoengine"
	"shmgpu/internal/memdef"
	"shmgpu/internal/metadata"
)

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }

// CopyFromHost models a host→device memory copy (the GPU's copy-then-
// execute input path). The touched 16 KB regions become read-only: blocks
// are encrypted under the on-chip shared counter (zero-padded minor), and
// the stored per-block counters are materialized as (major = shared,
// minors = 0) so a later RO→RW transition is seamless (paper Fig. 8). The
// integrity tree is updated over the materialized counters, but read-only
// reads never traverse it — freshness comes from the on-chip shared
// counter itself.
//
// addr and len(data) must be region-aligned multiples (16 KB) so the
// read-only attribute cleanly covers whole detection regions.
func (m *Memory) CopyFromHost(addr memdef.Addr, data []byte) error {
	if uint64(addr)%memdef.RegionSize != 0 || len(data)%memdef.RegionSize != 0 || len(data) == 0 {
		return fmt.Errorf("%w: host copies are region-aligned (%d B): addr %#x len %d",
			ErrBounds, memdef.RegionSize, uint64(addr), len(data))
	}
	if uint64(addr)+uint64(len(data)) > m.cfg.Size {
		return fmt.Errorf("%w: copy beyond size", ErrBounds)
	}
	m.stats.HostCopies++

	ct := make([]byte, BlockSize)
	for off := 0; off < len(data); off += BlockSize {
		a := addr + memdef.Addr(off)
		seed := cryptoengine.ReadOnlySeed(a, m.cfg.Partition, m.sharedCounter)
		m.eng.EncryptBlock(ct, data[off:off+BlockSize], seed)
		copy(m.backing[a:], ct)
		m.storeBlockMAC(a, m.eng.BlockMAC(ct, seed))
	}
	for off := memdef.Addr(0); off < memdef.Addr(len(data)); off += ChunkSize {
		m.recomputeChunkMAC(addr + off)
	}
	// Materialize counters consistent with the shared-counter encryption
	// and fold them into the tree (the tree is simply not consulted while
	// the region stays read-only).
	var cb metadata.CounterBlock
	cb.Major = m.sharedCounter
	for off := memdef.Addr(0); off < memdef.Addr(len(data)); off += metadata.CounterCoverage {
		cbIdx, _ := m.layout.CounterIndex(addr + off)
		m.storeCounter(cbIdx, &cb)
		m.tree.Update(cbIdx)
	}
	for off := memdef.Addr(0); off < memdef.Addr(len(data)); off += memdef.RegionSize {
		m.readOnly[memdef.RegionID(addr+off)] = true
	}
	return nil
}

// InputReadOnlyReset implements the paper's new API (§IV-B, Fig. 9): the
// command processor scans the per-block major counters in [addr,
// addr+length), advances the shared counter past the maximum (so the reset
// can never enable a cross-kernel replay), and re-marks the range's regions
// as read-only. The caller then repopulates the range with CopyFromHost,
// which encrypts under the NEW shared counter value.
//
// Note the paper's caveat: regions that stayed read-only under the old
// shared counter value cannot be lazily reused after a reset — their
// ciphertext is bound to the old value. This implementation requires the
// subsequent CopyFromHost, matching how the paper's multi-kernel workloads
// use the API.
func (m *Memory) InputReadOnlyReset(addr memdef.Addr, length uint64) error {
	if uint64(addr)%memdef.RegionSize != 0 || length%memdef.RegionSize != 0 || length == 0 {
		return fmt.Errorf("%w: reset ranges are region-aligned", ErrBounds)
	}
	if uint64(addr)+length > m.cfg.Size {
		return fmt.Errorf("%w: reset beyond size", ErrBounds)
	}
	// Scan the counter region (Fig. 9): find the maximum major counter.
	maxMajor := uint64(0)
	for off := memdef.Addr(0); off < memdef.Addr(length); off += metadata.CounterCoverage {
		cb, _, _ := m.counterFor(addr + off)
		if cb.Major > maxMajor {
			maxMajor = cb.Major
		}
	}
	if maxMajor >= m.sharedCounter {
		m.sharedCounter = maxMajor
	}
	// Advance by one beyond the maximum ever used so the (shared, 0)
	// seeds of the upcoming copies are temporally unique.
	m.sharedCounter++
	for off := memdef.Addr(0); off < memdef.Addr(length); off += memdef.RegionSize {
		m.readOnly[memdef.RegionID(addr+off)] = true
	}
	return nil
}
