// Package securemem is the functional secure-memory library: a software
// model of the paper's protected GPU device memory that actually encrypts,
// authenticates, and freshness-protects every block it stores, with the
// adaptive optimizations the paper proposes — the on-chip shared counter
// for read-only regions (no per-block counters, no integrity-tree coverage)
// and dual-granularity MACs (an 8 B MAC per 128 B block plus an 8 B MAC per
// 4 KB chunk).
//
// The library exposes the attacker's view of off-chip memory explicitly:
// AttackerView returns the raw backing store (ciphertext and all security
// metadata). Tampering with it — bit flips, splices, or replays of stale
// values including whole metadata subtrees — is detected on the next read,
// exactly per the paper's threat model. The cryptography is shared with the
// timing simulator's metadata layout, so the two models cannot drift apart.
//
// This is a functional model: it charges no cycles. The performance of the
// same mechanisms is evaluated by the timing simulator (internal/gpu +
// internal/secmem), driven through the shmgpu root package.
package securemem

import (
	"errors"
	"fmt"

	"shmgpu/internal/bmt"
	"shmgpu/internal/cryptoengine"
	"shmgpu/internal/memdef"
	"shmgpu/internal/metadata"
)

// Errors reported by verification. Use errors.Is.
var (
	// ErrIntegrity means a MAC check failed: the ciphertext or its MAC
	// was tampered with.
	ErrIntegrity = errors.New("securemem: integrity verification failed")
	// ErrFreshness means the integrity tree rejected the counter state:
	// a replay of stale data/metadata was detected.
	ErrFreshness = errors.New("securemem: freshness verification failed")
	// ErrBounds means an access fell outside the protected range or was
	// not block-aligned.
	ErrBounds = errors.New("securemem: out-of-bounds or misaligned access")
)

// BlockSize is the protection granularity in bytes (one cache block).
const BlockSize = memdef.BlockSize

// ChunkSize is the coarse-grain MAC granularity in bytes.
const ChunkSize = memdef.ChunkSize

// Config configures a protected memory.
type Config struct {
	// Size is the protected capacity in bytes; it must be a positive
	// multiple of 8 KB (the split-counter coverage).
	Size uint64
	// ContextSeed derives the (K1, K2, K3) key tuple; a real GPU would
	// draw it from a hardware entropy source at context creation.
	ContextSeed uint64
	// Partition is the logical partition identity bound into every seed
	// and hash.
	Partition uint8
}

// Stats counts the memory's activity.
type Stats struct {
	Reads, Writes         uint64
	HostCopies            uint64
	ROTransitions         uint64
	MinorOverflows        uint64
	IntegrityFailures     uint64
	FreshnessFailures     uint64
	ChunkMACVerifications uint64
}

// Memory is one protected device-memory instance.
type Memory struct {
	cfg    Config
	layout *metadata.Layout
	eng    *cryptoengine.Engine
	tree   *bmt.Tree

	// backing is the attacker-visible off-chip store: ciphertext data,
	// counter blocks, both MAC levels, and the BMT nodes.
	backing []byte

	// On-chip (trusted) state: the shared counter for read-only regions
	// and the per-region read-only bits. The functional model keeps exact
	// per-region bits; the hardware's aliased bit vector only affects
	// performance, never correctness.
	sharedCounter uint64
	readOnly      map[uint64]bool

	stats Stats
}

type sliceBacking struct{ b []byte }

func (s sliceBacking) ReadRaw(addr memdef.Addr, buf []byte)  { copy(buf, s.b[addr:]) }
func (s sliceBacking) WriteRaw(addr memdef.Addr, buf []byte) { copy(s.b[addr:], buf) }

// New creates a protected memory. All data blocks start zeroed, encrypted
// under per-block counters at zero, with valid MACs and integrity tree.
func New(cfg Config) (*Memory, error) {
	layout, err := metadata.NewLayout(cfg.Size)
	if err != nil {
		return nil, err
	}
	m := &Memory{
		cfg:      cfg,
		layout:   layout,
		eng:      cryptoengine.New(cryptoengine.DeriveKeys(cfg.ContextSeed)),
		backing:  make([]byte, layout.TotalBytes()),
		readOnly: map[uint64]bool{},
	}
	m.tree = bmt.New(layout, m.eng, cfg.Partition, sliceBacking{m.backing})

	// Initialize every block's ciphertext and MACs under zero counters,
	// then build the tree over the (all-zero) counter region.
	zero := make([]byte, BlockSize)
	ct := make([]byte, BlockSize)
	for addr := memdef.Addr(0); uint64(addr) < cfg.Size; addr += BlockSize {
		seed := m.seedFor(addr, 0, 0)
		m.eng.EncryptBlock(ct, zero, seed)
		copy(m.backing[addr:], ct)
		m.storeBlockMAC(addr, m.eng.BlockMAC(ct, seed))
	}
	for chunk := memdef.Addr(0); uint64(chunk) < cfg.Size; chunk += ChunkSize {
		m.recomputeChunkMAC(chunk)
	}
	m.tree.Rebuild()
	return m, nil
}

// MustNew is New panicking on error.
func MustNew(cfg Config) *Memory {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Size returns the protected capacity.
func (m *Memory) Size() uint64 { return m.cfg.Size }

// Stats returns a copy of the activity counters.
func (m *Memory) Stats() Stats { return m.stats }

// SharedCounter returns the on-chip shared counter for read-only regions.
func (m *Memory) SharedCounter() uint64 { return m.sharedCounter }

// IsReadOnly reports whether the 16 KB region containing addr is currently
// in the read-only state (shared counter, no tree coverage).
func (m *Memory) IsReadOnly(addr memdef.Addr) bool {
	return m.readOnly[memdef.RegionID(addr)]
}

// AttackerView returns the raw off-chip backing store — ciphertext,
// counters, MACs, and tree nodes. It aliases the live store: mutations
// model physical attacks and are detected on subsequent reads.
func (m *Memory) AttackerView() []byte { return m.backing }

// Layout exposes the metadata layout, letting attack demonstrations locate
// counters, MACs and tree nodes precisely.
func (m *Memory) Layout() *metadata.Layout { return m.layout }

func (m *Memory) checkRange(addr memdef.Addr, n int) error {
	if uint64(addr)%BlockSize != 0 || n%BlockSize != 0 || n <= 0 {
		return fmt.Errorf("%w: addr %#x len %d (need %d-byte alignment)", ErrBounds, uint64(addr), n, BlockSize)
	}
	if uint64(addr)+uint64(n) > m.cfg.Size {
		return fmt.Errorf("%w: [%#x, %#x) beyond size %d", ErrBounds, uint64(addr), uint64(addr)+uint64(n), m.cfg.Size)
	}
	return nil
}

// seedFor builds the encryption seed for a block given its counters.
func (m *Memory) seedFor(addr memdef.Addr, major uint64, minor uint16) cryptoengine.Seed {
	return cryptoengine.Seed{
		Local:     memdef.BlockAddr(addr),
		Partition: m.cfg.Partition,
		Major:     major,
		Minor:     minor,
	}
}

// counterFor loads the counter block covering addr from backing.
func (m *Memory) counterFor(addr memdef.Addr) (metadata.CounterBlock, uint64, int) {
	cbIdx, slot := m.layout.CounterIndex(addr)
	var cb metadata.CounterBlock
	bmt.DecodeCounterBlock(m.backing[m.layout.CounterBlockAddr(cbIdx):], &cb)
	return cb, cbIdx, slot
}

func (m *Memory) storeCounter(cbIdx uint64, cb *metadata.CounterBlock) {
	var buf [bmt.CounterBlockBytes]byte
	bmt.EncodeCounterBlock(cb, buf[:])
	copy(m.backing[m.layout.CounterBlockAddr(cbIdx):], buf[:])
}

func (m *Memory) storeBlockMAC(addr memdef.Addr, mac uint64) {
	putU64(m.backing[m.layout.BlockMACAddr(addr):], mac)
}

func (m *Memory) loadBlockMAC(addr memdef.Addr) uint64 {
	return getU64(m.backing[m.layout.BlockMACAddr(addr):])
}

func (m *Memory) storeChunkMAC(addr memdef.Addr, mac uint64) {
	putU64(m.backing[m.layout.ChunkMACAddr(addr):], mac)
}

func (m *Memory) loadChunkMAC(addr memdef.Addr) uint64 {
	return getU64(m.backing[m.layout.ChunkMACAddr(addr):])
}

// recomputeChunkMAC rebuilds the coarse MAC of the chunk containing addr
// from the stored per-block MACs.
func (m *Memory) recomputeChunkMAC(addr memdef.Addr) {
	chunk := memdef.ChunkAddr(addr)
	macs := make([]uint64, memdef.BlocksPerChunk)
	for i := range macs {
		macs[i] = m.loadBlockMAC(chunk + memdef.Addr(i*BlockSize))
	}
	m.storeChunkMAC(chunk, m.eng.ChunkMAC(chunk, m.cfg.Partition, macs))
}

// blockSeed resolves the current seed for a block: the shared counter for
// read-only regions, the stored split counters otherwise.
func (m *Memory) blockSeed(addr memdef.Addr) (cryptoengine.Seed, error) {
	if m.IsReadOnly(addr) {
		return cryptoengine.ReadOnlySeed(addr, m.cfg.Partition, m.sharedCounter), nil
	}
	cb, cbIdx, slot := m.counterFor(addr)
	// Freshness: non-read-only counters are covered by the integrity
	// tree; a replayed counter (or spliced tree path) fails here.
	if err := m.tree.Verify(cbIdx); err != nil {
		m.stats.FreshnessFailures++
		return cryptoengine.Seed{}, fmt.Errorf("%w: %v", ErrFreshness, err)
	}
	major, minor := cb.Seed(slot)
	return m.seedFor(addr, major, minor), nil
}

// Read decrypts and verifies len(buf) bytes at addr (block-aligned). For
// read-only regions this uses the shared counter and skips the tree walk
// (integrity without freshness, per Table II); otherwise counters are
// freshness-checked against the on-chip root before use. Each block's
// stateful MAC is verified; on mismatch the chunk-level MAC is consulted as
// the second chance (the paper's dual-granularity conflict remedy) before
// reporting ErrIntegrity.
func (m *Memory) Read(addr memdef.Addr, buf []byte) error {
	if err := m.checkRange(addr, len(buf)); err != nil {
		return err
	}
	m.stats.Reads++
	ct := make([]byte, BlockSize)
	for off := 0; off < len(buf); off += BlockSize {
		a := addr + memdef.Addr(off)
		seed, err := m.blockSeed(a)
		if err != nil {
			return err
		}
		copy(ct, m.backing[a:])
		if m.loadBlockMAC(a) != m.eng.BlockMAC(ct, seed) {
			// Second chance: a stale block MAC can coexist with a valid
			// chunk MAC after granularity conflicts; accept if the
			// coarse MAC over stored block MACs verifies.
			if !m.verifyChunkOf(a) {
				m.stats.IntegrityFailures++
				return fmt.Errorf("%w: block %#x", ErrIntegrity, uint64(a))
			}
			m.stats.ChunkMACVerifications++
		}
		m.eng.DecryptBlock(buf[off:off+BlockSize], ct, seed)
	}
	return nil
}

// verifyChunkOf checks the chunk MAC of the chunk containing addr the way
// the hardware does for streaming data: every data block in the chunk is
// fetched, its block-level MAC is RECOMPUTED from the ciphertext and the
// current counters, and the coarse MAC is composed from those — so the
// chunk MAC genuinely authenticates the data, not merely the stored MAC
// chain.
func (m *Memory) verifyChunkOf(addr memdef.Addr) bool {
	chunk := memdef.ChunkAddr(addr)
	macs := make([]uint64, memdef.BlocksPerChunk)
	ct := make([]byte, BlockSize)
	for i := range macs {
		a := chunk + memdef.Addr(i*BlockSize)
		seed, err := m.blockSeed(a)
		if err != nil {
			return false
		}
		copy(ct, m.backing[a:])
		macs[i] = m.eng.BlockMAC(ct, seed)
	}
	return m.loadChunkMAC(chunk) == m.eng.ChunkMAC(chunk, m.cfg.Partition, macs)
}

// VerifyChunk explicitly checks the coarse-grain MAC of the chunk
// containing addr, the verification path used for streaming-detected data.
func (m *Memory) VerifyChunk(addr memdef.Addr) error {
	if uint64(addr) >= m.cfg.Size {
		return fmt.Errorf("%w: %#x", ErrBounds, uint64(addr))
	}
	m.stats.ChunkMACVerifications++
	if !m.verifyChunkOf(addr) {
		m.stats.IntegrityFailures++
		return fmt.Errorf("%w: chunk %#x", ErrIntegrity, uint64(memdef.ChunkAddr(addr)))
	}
	return nil
}

// Write encrypts and stores len(data) bytes at addr (block-aligned). A
// write into a read-only region first performs the RO→RW transition: the
// region's counters were materialized with (major=shared, minor=0) at copy
// time, so per-block counters take over seamlessly (paper Fig. 8) and the
// integrity tree re-covers the region.
func (m *Memory) Write(addr memdef.Addr, data []byte) error {
	if err := m.checkRange(addr, len(data)); err != nil {
		return err
	}
	m.stats.Writes++
	for off := 0; off < len(data); off += BlockSize {
		a := addr + memdef.Addr(off)
		if m.IsReadOnly(a) {
			m.transitionToRW(a)
		}
		cb, cbIdx, slot := m.counterFor(a)
		old := cb
		if cb.Increment(slot) {
			// Minor overflow: every sibling block covered by this
			// counter block must be re-encrypted under the new major
			// counter. Recover their plaintext with the OLD counters
			// first, then re-encrypt under the new ones.
			m.stats.MinorOverflows++
			m.storeCounter(cbIdx, &cb)
			m.reencryptCounterSpan(cbIdx, &old, &cb, slot)
		} else {
			m.storeCounter(cbIdx, &cb)
		}
		major, minor := cb.Seed(slot)
		seed := m.seedFor(a, major, minor)
		ct := make([]byte, BlockSize)
		m.eng.EncryptBlock(ct, data[off:off+BlockSize], seed)
		copy(m.backing[a:], ct)
		m.storeBlockMAC(a, m.eng.BlockMAC(ct, seed))
		m.recomputeChunkMAC(a)
		m.tree.Update(cbIdx)
	}
	return nil
}

// transitionToRW clears the read-only state of the region containing addr.
// Counters for read-only regions are stored as (major=shared, minors=0), so
// no propagation pass is needed in the functional model; the effect is the
// same as the paper's Fig. 8 counter-cache propagation.
func (m *Memory) transitionToRW(addr memdef.Addr) {
	delete(m.readOnly, memdef.RegionID(addr))
	m.stats.ROTransitions++
	// The region's counter blocks re-enter tree coverage; their content
	// is unchanged, but the tree must reflect them in case the copy-time
	// state predates the last Rebuild.
	regionBase := memdef.RegionAddr(addr)
	for off := memdef.Addr(0); off < memdef.RegionSize; off += metadata.CounterCoverage {
		cbIdx, _ := m.layout.CounterIndex(regionBase + off)
		m.tree.Update(cbIdx)
	}
}

// reencryptCounterSpan re-encrypts every block covered by a counter block
// after a minor-counter overflow reset (split-counter semantics): all
// sibling blocks move from their old (major, minor) seeds to the new major
// with zeroed minors. The overflowing slot itself is skipped — its caller
// is about to overwrite it with fresh data anyway.
func (m *Memory) reencryptCounterSpan(cbIdx uint64, old, fresh *metadata.CounterBlock, writtenSlot int) {
	base := memdef.Addr(cbIdx * metadata.CounterCoverage)
	pt := make([]byte, BlockSize)
	ct := make([]byte, BlockSize)
	for slot := 0; slot < metadata.MinorsPerCounterBlock; slot++ {
		a := base + memdef.Addr(slot*BlockSize)
		if uint64(a) >= m.cfg.Size {
			break
		}
		if slot == writtenSlot {
			continue
		}
		oldMajor, oldMinor := old.Seed(slot)
		copy(ct, m.backing[a:])
		m.eng.DecryptBlock(pt, ct, m.seedFor(a, oldMajor, oldMinor))
		newMajor, newMinor := fresh.Seed(slot)
		seed := m.seedFor(a, newMajor, newMinor)
		m.eng.EncryptBlock(ct, pt, seed)
		copy(m.backing[a:], ct)
		m.storeBlockMAC(a, m.eng.BlockMAC(ct, seed))
	}
	// Chunk MACs over the affected span must follow the new block MACs.
	for off := memdef.Addr(0); off < metadata.CounterCoverage && uint64(base+off) < m.cfg.Size; off += ChunkSize {
		m.recomputeChunkMAC(base + off)
	}
}
