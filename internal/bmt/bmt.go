// Package bmt implements a functional Bonsai Merkle Tree: the integrity
// tree that provides the freshness guarantee for encryption counters.
// Following Rogers et al., the tree covers ONLY the counter region (data
// freshness then follows from stateful MACs that bind data to counters).
//
// Tree nodes live in the same attacker-visible backing store as data and
// counters; only the root hash is held on chip. Verification walks from a
// counter block's leaf up to the root and therefore detects any replay of
// counter state, even when the attacker consistently replays entire
// subtrees. This package is the functional ground truth used by the
// securemem library and by the attack-demonstration examples; the timing
// simulator models the same walks via metadata.Layout without hashing.
package bmt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"shmgpu/internal/cryptoengine"
	"shmgpu/internal/invariant"
	"shmgpu/internal/memdef"
	"shmgpu/internal/metadata"
)

// ErrVerify is wrapped by all verification failures so callers can test
// with errors.Is.
var ErrVerify = errors.New("bmt: integrity verification failed")

// Backing is the byte store the tree reads and writes its nodes and the
// counter blocks from. It is the attacker-visible "off-chip memory".
type Backing interface {
	// ReadRaw copies len(buf) bytes at addr into buf.
	ReadRaw(addr memdef.Addr, buf []byte)
	// WriteRaw copies buf into the store at addr.
	WriteRaw(addr memdef.Addr, buf []byte)
}

// CounterBlockBytes is the serialized size of a counter block in backing
// storage (the full 128 B block: 8 B major + 64 minors + padding).
const CounterBlockBytes = metadata.CounterBlockSize

// EncodeCounterBlock serializes a counter block into a 128 B buffer.
func EncodeCounterBlock(cb *metadata.CounterBlock, buf []byte) {
	if len(buf) < CounterBlockBytes {
		panic("bmt: short counter block buffer")
	}
	binary.LittleEndian.PutUint64(buf[0:8], cb.Major)
	copy(buf[8:8+metadata.MinorsPerCounterBlock], cb.Minors[:])
	for i := 8 + metadata.MinorsPerCounterBlock; i < CounterBlockBytes; i++ {
		buf[i] = 0
	}
}

// DecodeCounterBlock deserializes a counter block from a 128 B buffer.
func DecodeCounterBlock(buf []byte, cb *metadata.CounterBlock) {
	if len(buf) < CounterBlockBytes {
		panic("bmt: short counter block buffer")
	}
	cb.Major = binary.LittleEndian.Uint64(buf[0:8])
	copy(cb.Minors[:], buf[8:8+metadata.MinorsPerCounterBlock])
}

// Tree is one partition's integrity tree. The zero value is unusable;
// construct with New and call Rebuild before first use.
type Tree struct {
	layout    *metadata.Layout
	eng       *cryptoengine.Engine
	partition uint8
	backing   Backing
	root      uint64
	built     bool
}

// New creates a tree over the given layout and backing store.
func New(layout *metadata.Layout, eng *cryptoengine.Engine, partition uint8, backing Backing) *Tree {
	return &Tree{layout: layout, eng: eng, partition: partition, backing: backing}
}

// Root returns the on-chip root hash.
func (t *Tree) Root() uint64 { return t.root }

// Rebuild recomputes every tree node from the counter blocks currently in
// the backing store, writes the nodes back, and installs the root. Called
// at context initialization and after bulk counter rewrites.
func (t *Tree) Rebuild() {
	levels := t.layout.BMTLevels()
	if levels == 0 {
		// Degenerate tiny layout: root hashes the single counter block.
		var buf [CounterBlockBytes]byte
		addr := t.layout.CounterBlockAddr(0)
		t.backing.ReadRaw(addr, buf[:])
		t.root = t.eng.NodeHash(addr, t.partition, buf[:])
		t.built = true
		return
	}
	// Level 0: hash counter blocks into leaf nodes.
	var child [memdef.BlockSize]byte
	var node [memdef.BlockSize]byte
	n := t.layout.NumCounterBlocks()
	for idx := uint64(0); idx < t.layout.BMTNodesAt(0); idx++ {
		for i := range node {
			node[i] = 0
		}
		for slot := 0; slot < metadata.BMTArity; slot++ {
			cb := idx*metadata.BMTArity + uint64(slot)
			if cb >= n {
				break
			}
			addr := t.layout.CounterBlockAddr(cb)
			t.backing.ReadRaw(addr, child[:])
			h := t.eng.NodeHash(addr, t.partition, child[:])
			binary.LittleEndian.PutUint64(node[slot*metadata.HashSize:], h)
		}
		t.backing.WriteRaw(t.layout.BMTNodeAddr(0, idx), node[:])
	}
	// Upper levels: hash level l-1 nodes into level l nodes.
	for level := 1; level < levels; level++ {
		for idx := uint64(0); idx < t.layout.BMTNodesAt(level); idx++ {
			for i := range node {
				node[i] = 0
			}
			for slot := 0; slot < metadata.BMTArity; slot++ {
				ci := idx*metadata.BMTArity + uint64(slot)
				if ci >= t.layout.BMTNodesAt(level-1) {
					break
				}
				caddr := t.layout.BMTNodeAddr(level-1, ci)
				t.backing.ReadRaw(caddr, child[:])
				h := t.eng.NodeHash(caddr, t.partition, child[:])
				binary.LittleEndian.PutUint64(node[slot*metadata.HashSize:], h)
			}
			t.backing.WriteRaw(t.layout.BMTNodeAddr(level, idx), node[:])
		}
	}
	// Root: hash of the single top node.
	topAddr := t.layout.BMTNodeAddr(levels-1, 0)
	t.backing.ReadRaw(topAddr, child[:])
	t.root = t.eng.NodeHash(topAddr, t.partition, child[:])
	t.built = true
}

// Verify checks counter block cb against the tree and the on-chip root.
// It returns a wrapped ErrVerify describing the first mismatching level if
// the counter state in the backing store has been tampered with or
// replayed.
func (t *Tree) Verify(cb uint64) error {
	if !t.built {
		return fmt.Errorf("%w: tree not built", ErrVerify)
	}
	var buf [memdef.BlockSize]byte
	addr := t.layout.CounterBlockAddr(cb)
	t.backing.ReadRaw(addr, buf[:])
	h := t.eng.NodeHash(addr, t.partition, buf[:])

	path, slots := t.layout.BMTPathForCounter(cb)
	if len(path) == 0 {
		if h != t.root {
			return fmt.Errorf("%w: counter block %d does not match root", ErrVerify, cb)
		}
		return nil
	}
	var node [memdef.BlockSize]byte
	for i, nodeAddr := range path {
		t.backing.ReadRaw(nodeAddr, node[:])
		stored := binary.LittleEndian.Uint64(node[slots[i]*metadata.HashSize:])
		if stored != h {
			return fmt.Errorf("%w: counter block %d mismatch at tree level %d", ErrVerify, cb, i)
		}
		h = t.eng.NodeHash(nodeAddr, t.partition, node[:])
	}
	if h != t.root {
		return fmt.Errorf("%w: counter block %d root mismatch", ErrVerify, cb)
	}
	return nil
}

// Update re-hashes counter block cb from the backing store and propagates
// the change up to the root, writing updated nodes back. Must be called
// after every counter block write (the write-path root update).
func (t *Tree) Update(cb uint64) {
	if !t.built {
		panic("bmt: Update before Rebuild")
	}
	var buf [memdef.BlockSize]byte
	addr := t.layout.CounterBlockAddr(cb)
	t.backing.ReadRaw(addr, buf[:])
	h := t.eng.NodeHash(addr, t.partition, buf[:])

	path, slots := t.layout.BMTPathForCounter(cb)
	if len(path) == 0 {
		t.root = h
		return
	}
	var node [memdef.BlockSize]byte
	for i, nodeAddr := range path {
		t.backing.ReadRaw(nodeAddr, node[:])
		binary.LittleEndian.PutUint64(node[slots[i]*metadata.HashSize:], h)
		t.backing.WriteRaw(nodeAddr, node[:])
		h = t.eng.NodeHash(nodeAddr, t.partition, node[:])
	}
	t.root = h
	// Node-consistency sanitizer: after propagating a counter-block write,
	// the freshly written path must verify against the new root. A failure
	// here means Update and Verify disagree about the tree shape — a
	// silent-corruption bug that would otherwise only surface as a
	// spurious (or missed) integrity violation much later.
	if invariant.Enabled() {
		if err := t.Verify(cb); err != nil {
			invariant.Failf("bmt-consistency", fmt.Sprintf("bmt[p%d]", t.partition), 0,
				"post-update verify of counter block %d failed: %v", cb, err)
		}
	}
}
