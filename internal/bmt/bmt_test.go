package bmt

import (
	"errors"
	"math/rand"
	"testing"

	"shmgpu/internal/cryptoengine"
	"shmgpu/internal/memdef"
	"shmgpu/internal/metadata"
)

// sliceBacking is a flat in-memory backing store.
type sliceBacking []byte

func (s sliceBacking) ReadRaw(addr memdef.Addr, buf []byte)  { copy(buf, s[addr:]) }
func (s sliceBacking) WriteRaw(addr memdef.Addr, buf []byte) { copy(s[addr:], buf) }

func newFixture(t *testing.T, protected uint64) (*Tree, *metadata.Layout, sliceBacking, *cryptoengine.Engine) {
	t.Helper()
	layout, err := metadata.NewLayout(protected)
	if err != nil {
		t.Fatal(err)
	}
	backing := make(sliceBacking, layout.TotalBytes())
	eng := cryptoengine.New(cryptoengine.DeriveKeys(7))
	tree := New(layout, eng, 2, backing)
	return tree, layout, backing, eng
}

func writeCounter(l *metadata.Layout, backing sliceBacking, idx uint64, cb *metadata.CounterBlock) {
	var buf [CounterBlockBytes]byte
	EncodeCounterBlock(cb, buf[:])
	backing.WriteRaw(l.CounterBlockAddr(idx), buf[:])
}

func TestEncodeDecodeCounterBlock(t *testing.T) {
	var cb metadata.CounterBlock
	cb.Major = 0xDEADBEEF
	cb.Minors[0] = 1
	cb.Minors[63] = 127
	var buf [CounterBlockBytes]byte
	EncodeCounterBlock(&cb, buf[:])
	var back metadata.CounterBlock
	DecodeCounterBlock(buf[:], &back)
	if back != cb {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, cb)
	}
}

func TestVerifyAfterRebuild(t *testing.T) {
	tree, layout, backing, _ := newFixture(t, 1<<20)
	rng := rand.New(rand.NewSource(1))
	for i := uint64(0); i < layout.NumCounterBlocks(); i++ {
		var cb metadata.CounterBlock
		cb.Major = rng.Uint64() % 1000
		for j := range cb.Minors {
			cb.Minors[j] = uint8(rng.Intn(128))
		}
		writeCounter(layout, backing, i, &cb)
	}
	tree.Rebuild()
	for i := uint64(0); i < layout.NumCounterBlocks(); i++ {
		if err := tree.Verify(i); err != nil {
			t.Fatalf("counter %d: %v", i, err)
		}
	}
}

func TestUpdateThenVerify(t *testing.T) {
	tree, layout, backing, _ := newFixture(t, 1<<20)
	tree.Rebuild()
	oldRoot := tree.Root()

	var cb metadata.CounterBlock
	cb.Increment(5)
	writeCounter(layout, backing, 17, &cb)
	tree.Update(17)

	if tree.Root() == oldRoot {
		t.Fatal("root unchanged after counter update")
	}
	if err := tree.Verify(17); err != nil {
		t.Fatalf("verify after update: %v", err)
	}
	// Untouched counters still verify.
	if err := tree.Verify(0); err != nil {
		t.Fatalf("sibling verify: %v", err)
	}
}

func TestDetectsCounterTampering(t *testing.T) {
	tree, layout, backing, _ := newFixture(t, 1<<20)
	tree.Rebuild()
	addr := layout.CounterBlockAddr(3)
	backing[addr] ^= 0xFF // flip bits in the major counter
	err := tree.Verify(3)
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("tampering not detected: %v", err)
	}
}

func TestDetectsCounterReplay(t *testing.T) {
	// Replay attack: save a legally-produced old counter state and restore
	// it after an update. The tree must reject the stale value.
	tree, layout, backing, _ := newFixture(t, 1<<20)
	var cb metadata.CounterBlock
	writeCounter(layout, backing, 9, &cb)
	tree.Rebuild()

	// Snapshot the (legal) old counter bytes.
	old := make([]byte, CounterBlockBytes)
	backing.ReadRaw(layout.CounterBlockAddr(9), old)

	// Legitimate update.
	cb.Increment(0)
	writeCounter(layout, backing, 9, &cb)
	tree.Update(9)

	// Attacker replays the stale counter bytes.
	backing.WriteRaw(layout.CounterBlockAddr(9), old)
	if err := tree.Verify(9); !errors.Is(err, ErrVerify) {
		t.Fatalf("replay not detected: %v", err)
	}
}

func TestDetectsSubtreeReplay(t *testing.T) {
	// Stronger replay: the attacker snapshots the counter block AND every
	// tree node on its path, then restores all of them. Only the on-chip
	// root can catch this — and it must.
	tree, layout, backing, _ := newFixture(t, 1<<20)
	var cb metadata.CounterBlock
	writeCounter(layout, backing, 21, &cb)
	tree.Rebuild()

	path, _ := layout.BMTPathForCounter(21)
	type snap struct {
		addr memdef.Addr
		data []byte
	}
	var snaps []snap
	snaps = append(snaps, snap{layout.CounterBlockAddr(21), make([]byte, CounterBlockBytes)})
	for _, a := range path {
		snaps = append(snaps, snap{a, make([]byte, memdef.BlockSize)})
	}
	for i := range snaps {
		backing.ReadRaw(snaps[i].addr, snaps[i].data)
	}

	cb.Increment(1)
	writeCounter(layout, backing, 21, &cb)
	tree.Update(21)

	for i := range snaps {
		backing.WriteRaw(snaps[i].addr, snaps[i].data)
	}
	if err := tree.Verify(21); !errors.Is(err, ErrVerify) {
		t.Fatalf("subtree replay not detected: %v", err)
	}
}

func TestDetectsNodeTampering(t *testing.T) {
	tree, layout, backing, _ := newFixture(t, 1<<20)
	tree.Rebuild()
	// Corrupt an internal node hash slot on counter 40's path.
	path, slots := layout.BMTPathForCounter(40)
	backing[path[0]+memdef.Addr(slots[0]*metadata.HashSize)] ^= 1
	if err := tree.Verify(40); !errors.Is(err, ErrVerify) {
		t.Fatalf("node tampering not detected: %v", err)
	}
}

func TestVerifyBeforeRebuildFails(t *testing.T) {
	tree, _, _, _ := newFixture(t, 1<<20)
	if err := tree.Verify(0); !errors.Is(err, ErrVerify) {
		t.Fatal("verify before build must fail")
	}
}

func TestUpdateBeforeRebuildPanics(t *testing.T) {
	tree, _, _, _ := newFixture(t, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tree.Update(0)
}

func TestManyRandomUpdatesStayConsistent(t *testing.T) {
	tree, layout, backing, _ := newFixture(t, 1<<20)
	tree.Rebuild()
	rng := rand.New(rand.NewSource(99))
	counters := make([]metadata.CounterBlock, layout.NumCounterBlocks())
	for step := 0; step < 500; step++ {
		i := uint64(rng.Intn(int(layout.NumCounterBlocks())))
		counters[i].Increment(rng.Intn(metadata.MinorsPerCounterBlock))
		writeCounter(layout, backing, i, &counters[i])
		tree.Update(i)
		// Spot-check a random counter each step.
		j := uint64(rng.Intn(int(layout.NumCounterBlocks())))
		if err := tree.Verify(j); err != nil {
			t.Fatalf("step %d verify(%d): %v", step, j, err)
		}
	}
}

func TestRootsDifferAcrossPartitions(t *testing.T) {
	layout := metadata.MustLayout(1 << 20)
	eng := cryptoengine.New(cryptoengine.DeriveKeys(7))
	b1 := make(sliceBacking, layout.TotalBytes())
	b2 := make(sliceBacking, layout.TotalBytes())
	t1 := New(layout, eng, 1, b1)
	t2 := New(layout, eng, 2, b2)
	t1.Rebuild()
	t2.Rebuild()
	if t1.Root() == t2.Root() {
		t.Fatal("identical content in different partitions must yield different roots (partition binding)")
	}
}
