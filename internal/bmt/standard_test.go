package bmt

import (
	"errors"
	"math/rand"
	"testing"

	"shmgpu/internal/cryptoengine"
	"shmgpu/internal/memdef"
	"shmgpu/internal/metadata"
)

func newStandard(t *testing.T, size uint64) (*StandardTree, []byte) {
	t.Helper()
	eng := cryptoengine.New(cryptoengine.DeriveKeys(3))
	st, err := NewStandardTree(eng, 1, size)
	if err != nil {
		t.Fatal(err)
	}
	image := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(image)
	st.Rebuild(image)
	return st, image
}

func TestStandardTreeRejectsBadSize(t *testing.T) {
	eng := cryptoengine.New(cryptoengine.DeriveKeys(3))
	if _, err := NewStandardTree(eng, 0, 100); err == nil {
		t.Fatal("unaligned size accepted")
	}
	if _, err := NewStandardTree(eng, 0, 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestStandardTreeVerifyAll(t *testing.T) {
	st, image := newStandard(t, 64<<10)
	for i := uint64(0); i < st.NumLeaves(); i++ {
		if _, err := st.Verify(i, image[i*memdef.BlockSize:(i+1)*memdef.BlockSize]); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
	}
}

func TestStandardTreeDetectsTamper(t *testing.T) {
	st, image := newStandard(t, 64<<10)
	tampered := append([]byte(nil), image[:memdef.BlockSize]...)
	tampered[0] ^= 1
	if _, err := st.Verify(0, tampered); !errors.Is(err, ErrVerify) {
		t.Fatalf("tamper not detected: %v", err)
	}
}

func TestStandardTreeDetectsReplay(t *testing.T) {
	st, image := newStandard(t, 64<<10)
	old := append([]byte(nil), image[:memdef.BlockSize]...)
	// Legitimate update of block 0.
	fresh := append([]byte(nil), old...)
	fresh[5] ^= 0xFF
	st.Update(0, fresh)
	// Replaying the old block must fail.
	if _, err := st.Verify(0, old); !errors.Is(err, ErrVerify) {
		t.Fatalf("replay not detected: %v", err)
	}
	if _, err := st.Verify(0, fresh); err != nil {
		t.Fatalf("fresh block rejected: %v", err)
	}
}

func TestStandardTreeUpdateTouchesAllLevels(t *testing.T) {
	st, image := newStandard(t, 256<<10) // 2048 leaves -> 4 levels (2048,128,8,1)
	hashes := st.Update(7, image[7*memdef.BlockSize:8*memdef.BlockSize])
	if hashes != len(st.levels) {
		t.Fatalf("update hashes = %d, want %d (one per level)", hashes, len(st.levels))
	}
}

func TestStandardTreeSiblingsUnaffected(t *testing.T) {
	st, image := newStandard(t, 64<<10)
	fresh := make([]byte, memdef.BlockSize)
	st.Update(3, fresh)
	// Every other block still verifies.
	for i := uint64(0); i < st.NumLeaves(); i++ {
		if i == 3 {
			continue
		}
		if _, err := st.Verify(i, image[i*memdef.BlockSize:(i+1)*memdef.BlockSize]); err != nil {
			t.Fatalf("sibling %d broken by update: %v", i, err)
		}
	}
}

func TestCompareStorageBonsaiWins(t *testing.T) {
	// The paper's background argument: the Bonsai organization shrinks
	// the tree by roughly the counter coverage factor (64 blocks per
	// counter block).
	standard, bonsai, err := CompareStorage(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if bonsai == 0 || standard == 0 {
		t.Fatalf("degenerate node counts: %d vs %d", standard, bonsai)
	}
	ratio := float64(standard) / float64(bonsai)
	if ratio < 16 {
		t.Fatalf("standard/bonsai node ratio = %.1f, expected large (>16)", ratio)
	}
}

func TestStandardVsBonsaiDetectionEquivalence(t *testing.T) {
	// Property: for counter-replay attacks, the Bonsai tree detects what
	// the standard tree detects — freshness protection is preserved by
	// the smaller organization. (Data replay is caught by stateful MACs
	// in the Bonsai design; here we check the trees' own domains.)
	st, image := newStandard(t, 64<<10)
	// Standard: replay detection shown above; here assert detection holds
	// across many random update/replay rounds.
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 50; round++ {
		i := uint64(rng.Intn(int(st.NumLeaves())))
		old := append([]byte(nil), image[i*memdef.BlockSize:(i+1)*memdef.BlockSize]...)
		fresh := append([]byte(nil), old...)
		fresh[rng.Intn(len(fresh))] ^= byte(1 + rng.Intn(255))
		st.Update(i, fresh)
		copy(image[i*memdef.BlockSize:], fresh)
		if _, err := st.Verify(i, old); !errors.Is(err, ErrVerify) {
			t.Fatalf("round %d: replay of block %d accepted", round, i)
		}
	}
}

func BenchmarkStandardTreeUpdate(b *testing.B) {
	eng := cryptoengine.New(cryptoengine.DeriveKeys(3))
	st, _ := NewStandardTree(eng, 1, 1<<20)
	image := make([]byte, 1<<20)
	st.Rebuild(image)
	blk := make([]byte, memdef.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Update(uint64(i)%st.NumLeaves(), blk)
	}
}

func BenchmarkBonsaiTreeUpdate(b *testing.B) {
	layout, err := metadata.NewLayout(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	backing := make(sliceBacking, layout.TotalBytes())
	eng := cryptoengine.New(cryptoengine.DeriveKeys(3))
	tree := New(layout, eng, 1, backing)
	tree.Rebuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Update(uint64(i) % layout.NumCounterBlocks())
	}
}
