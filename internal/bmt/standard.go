package bmt

import (
	"encoding/binary"
	"fmt"

	"shmgpu/internal/cryptoengine"
	"shmgpu/internal/memdef"
	"shmgpu/internal/metadata"
)

// StandardTree is the early-CPU-TEE integrity tree of the paper's Fig. 2:
// a Merkle tree over the DATA blocks themselves (not just the counters).
// It detects the same replay attacks as the Bonsai organization but covers
// 64× more leaves, which is why state-of-the-art designs moved to BMTs —
// the comparison the paper's background section draws. Implemented here as
// the functional comparator; see TreeComparison in the tests and benches
// for the size/verification-cost contrast with Tree.
//
// Nodes are held in a private store rather than the shared backing layout
// (the standard tree does not exist in the paper's memory map); the root is
// on chip. Leaf i authenticates data block i.
type StandardTree struct {
	eng       *cryptoengine.Engine
	partition uint8
	dataBytes uint64
	// levels[0][i] is the hash of data block i; higher levels hash
	// BMTArity children at a time.
	levels [][]uint64
	root   uint64
	built  bool
}

// NewStandardTree creates a standard Merkle tree over dataBytes of
// protected memory.
func NewStandardTree(eng *cryptoengine.Engine, partition uint8, dataBytes uint64) (*StandardTree, error) {
	if dataBytes == 0 || dataBytes%memdef.BlockSize != 0 {
		return nil, fmt.Errorf("bmt: standard tree needs a positive multiple of the block size, got %d", dataBytes)
	}
	return &StandardTree{eng: eng, partition: partition, dataBytes: dataBytes}, nil
}

// NumLeaves returns the leaf count (one per data block).
func (t *StandardTree) NumLeaves() uint64 { return t.dataBytes / memdef.BlockSize }

// NodeCount returns the total stored node-hash count across levels,
// the storage the Bonsai organization avoids.
func (t *StandardTree) NodeCount() uint64 {
	var n uint64
	for _, lv := range t.levels {
		n += uint64(len(lv))
	}
	return n
}

// Root returns the on-chip root.
func (t *StandardTree) Root() uint64 { return t.root }

func (t *StandardTree) leafHash(blockIdx uint64, ciphertext []byte) uint64 {
	return t.eng.NodeHash(memdef.Addr(blockIdx*memdef.BlockSize), t.partition, ciphertext)
}

func (t *StandardTree) nodeHash(level int, idx uint64) uint64 {
	// Hash the child hashes as a byte string bound to (level, idx).
	buf := make([]byte, 8*metadata.BMTArity)
	base := idx * metadata.BMTArity
	for i := 0; i < metadata.BMTArity; i++ {
		ci := base + uint64(i)
		if ci < uint64(len(t.levels[level-1])) {
			binary.LittleEndian.PutUint64(buf[i*8:], t.levels[level-1][ci])
		}
	}
	// Address-bind with a synthetic coordinate (level, idx).
	coord := memdef.Addr(uint64(level)<<40 | idx)
	return t.eng.NodeHash(coord, t.partition, buf)
}

// Rebuild computes the whole tree from the given memory image (ciphertext
// of the full data region).
func (t *StandardTree) Rebuild(image []byte) {
	if uint64(len(image)) < t.dataBytes {
		panic("bmt: standard tree image too small")
	}
	leaves := make([]uint64, t.NumLeaves())
	for i := range leaves {
		leaves[i] = t.leafHash(uint64(i), image[uint64(i)*memdef.BlockSize:uint64(i+1)*memdef.BlockSize])
	}
	t.levels = [][]uint64{leaves}
	for len(t.levels[len(t.levels)-1]) > 1 {
		prev := t.levels[len(t.levels)-1]
		nodes := make([]uint64, (len(prev)+metadata.BMTArity-1)/metadata.BMTArity)
		t.levels = append(t.levels, nodes)
		for i := range nodes {
			nodes[i] = t.nodeHash(len(t.levels)-1, uint64(i))
		}
	}
	t.root = t.levels[len(t.levels)-1][0]
	t.built = true
}

// Update re-hashes one data block and propagates to the root. Counts the
// hash operations performed, the verification-cost metric the Bonsai
// comparison uses.
func (t *StandardTree) Update(blockIdx uint64, ciphertext []byte) (hashes int) {
	if !t.built {
		panic("bmt: standard tree Update before Rebuild")
	}
	t.levels[0][blockIdx] = t.leafHash(blockIdx, ciphertext)
	hashes = 1
	idx := blockIdx
	for level := 1; level < len(t.levels); level++ {
		idx /= metadata.BMTArity
		t.levels[level][idx] = t.nodeHash(level, idx)
		hashes++
	}
	t.root = t.levels[len(t.levels)-1][0]
	return hashes
}

// Verify checks one data block against the tree. It returns a wrapped
// ErrVerify on mismatch and the number of hashes computed.
func (t *StandardTree) Verify(blockIdx uint64, ciphertext []byte) (hashes int, err error) {
	if !t.built {
		return 0, fmt.Errorf("%w: standard tree not built", ErrVerify)
	}
	h := t.leafHash(blockIdx, ciphertext)
	hashes = 1
	if h != t.levels[0][blockIdx] {
		return hashes, fmt.Errorf("%w: data block %d leaf mismatch", ErrVerify, blockIdx)
	}
	idx := blockIdx
	for level := 1; level < len(t.levels); level++ {
		idx /= metadata.BMTArity
		h = t.nodeHash(level, idx)
		hashes++
		if h != t.levels[level][idx] {
			return hashes, fmt.Errorf("%w: data block %d mismatch at level %d", ErrVerify, blockIdx, level)
		}
	}
	if t.levels[len(t.levels)-1][0] != t.root {
		return hashes, fmt.Errorf("%w: root mismatch", ErrVerify)
	}
	return hashes, nil
}

// CompareStorage contrasts the standard tree's node storage with the
// Bonsai organization's for the same protected size, reproducing the
// background argument of the paper's Fig. 2: a BMT covers only the counter
// region, shrinking the tree by ~the counter-coverage factor.
func CompareStorage(protectedBytes uint64) (standardNodes, bonsaiNodes uint64, err error) {
	layout, err := metadata.NewLayout(protectedBytes)
	if err != nil {
		return 0, 0, err
	}
	eng := cryptoengine.New(cryptoengine.DeriveKeys(0))
	st, err := NewStandardTree(eng, 0, protectedBytes)
	if err != nil {
		return 0, 0, err
	}
	st.Rebuild(make([]byte, protectedBytes))
	standardNodes = st.NodeCount()
	for level := 0; level < layout.BMTLevels(); level++ {
		bonsaiNodes += layout.BMTNodesAt(level) * metadata.BMTArity
	}
	return standardNodes, bonsaiNodes, nil
}
