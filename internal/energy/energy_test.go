package energy

import "testing"

func TestTotalPicojoules(t *testing.T) {
	m := Model{
		PicojoulePerInstruction: 1,
		PicojoulePerDRAMByte:    2,
		PicojoulePerL2Access:    3,
		PicojoulePerL1Access:    4,
		PicojoulePerMDCAccess:   5,
		StaticPicojoulePerCycle: 6,
	}
	a := Activity{Instructions: 1, DRAMBytes: 1, L2Accesses: 1, L1Accesses: 1, MDCAccesses: 1, Cycles: 1}
	if got := m.TotalPicojoules(a); got != 21 {
		t.Fatalf("total = %v, want 21", got)
	}
}

func TestPerInstruction(t *testing.T) {
	m := Default()
	a := Activity{Instructions: 100, Cycles: 10, DRAMBytes: 1000}
	want := m.TotalPicojoules(a) / 100
	if got := m.PerInstruction(a); got != want {
		t.Fatalf("per-instruction = %v, want %v", got, want)
	}
	if got := m.PerInstruction(Activity{}); got != 0 {
		t.Fatalf("empty activity = %v, want 0", got)
	}
}

func TestNormalizedMetadataCostsMore(t *testing.T) {
	// Same instructions, more DRAM bytes (metadata) => normalized > 1,
	// the Fig. 15 relationship.
	m := Default()
	base := Activity{Instructions: 1_000_000, Cycles: 100_000, DRAMBytes: 10_000_000, L2Accesses: 500_000}
	secure := base
	secure.DRAMBytes = 25_000_000 // naive-style metadata blowup
	secure.MDCAccesses = 800_000
	secure.Cycles = 160_000 // slower too
	n := m.Normalized(secure, base)
	if n <= 1.0 {
		t.Fatalf("normalized energy = %v, want > 1", n)
	}
	if n > 3.5 {
		t.Fatalf("normalized energy = %v, implausibly high", n)
	}
}

func TestNormalizedZeroBaseline(t *testing.T) {
	if got := Default().Normalized(Activity{Instructions: 1}, Activity{}); got != 0 {
		t.Fatalf("got %v, want 0", got)
	}
}

func TestDefaultsArePositive(t *testing.T) {
	m := Default()
	for name, v := range map[string]float64{
		"instr": m.PicojoulePerInstruction, "dram": m.PicojoulePerDRAMByte,
		"l2": m.PicojoulePerL2Access, "l1": m.PicojoulePerL1Access,
		"mdc": m.PicojoulePerMDCAccess, "static": m.StaticPicojoulePerCycle,
	} {
		if v <= 0 {
			t.Errorf("%s constant not positive", name)
		}
	}
	// DRAM must dominate SRAM per byte-ish access, the relationship the
	// paper's energy savings rest on.
	if m.PicojoulePerDRAMByte*32 <= m.PicojoulePerMDCAccess {
		t.Error("DRAM sector access must cost more than an MDC access")
	}
}
