// Package energy models per-event energy consumption to reproduce the
// paper's Fig. 15 (normalized energy per instruction). The paper extends
// GPUWattch for the GPU and uses CACTI 6.5 (32 nm) for the metadata
// caches; neither tool exists here, so we use a per-event model with
// constants in their published ranges: DRAM access energy dominates, cache
// and SRAM accesses cost far less, and a fixed per-instruction core energy
// covers pipeline, register file and on-chip network. The paper's Fig. 15
// shape is driven by the ratio of DRAM traffic (data + metadata) and
// metadata-cache activity to instructions executed — exactly what this
// model captures. AES/MAC engine energy is excluded, as in the paper.
package energy

// Model holds the per-event energy constants.
type Model struct {
	// PicojoulePerInstruction is the core energy per warp instruction.
	PicojoulePerInstruction float64
	// PicojoulePerDRAMByte is the DRAM access+IO energy per byte.
	PicojoulePerDRAMByte float64
	// PicojoulePerL2Access is the energy per L2 bank access.
	PicojoulePerL2Access float64
	// PicojoulePerL1Access is the energy per L1 access.
	PicojoulePerL1Access float64
	// PicojoulePerMDCAccess is the energy per metadata-cache access
	// (CACTI: 2 KB SRAM, 32 nm).
	PicojoulePerMDCAccess float64
	// StaticPicojoulePerCycle is chip-wide leakage+clock per cycle.
	StaticPicojoulePerCycle float64
}

// Default returns constants in the GPUWattch/CACTI ballpark for a Turing-
// class GPU at 32 nm-era SRAM modeling: ~20 pJ/B DRAM, ~1 pJ/B L2,
// sub-pJ metadata SRAM reads, and tens of pJ per instruction for the core.
func Default() Model {
	return Model{
		PicojoulePerInstruction: 60,
		PicojoulePerDRAMByte:    20,
		PicojoulePerL2Access:    40,
		PicojoulePerL1Access:    15,
		PicojoulePerMDCAccess:   5,
		StaticPicojoulePerCycle: 2500,
	}
}

// Activity is the event-count input to the model (taken from a gpu.Result).
type Activity struct {
	Instructions uint64
	Cycles       uint64
	DRAMBytes    uint64
	L2Accesses   uint64
	L1Accesses   uint64
	MDCAccesses  uint64
}

// TotalPicojoules returns the run's total energy.
func (m Model) TotalPicojoules(a Activity) float64 {
	return float64(a.Instructions)*m.PicojoulePerInstruction +
		float64(a.DRAMBytes)*m.PicojoulePerDRAMByte +
		float64(a.L2Accesses)*m.PicojoulePerL2Access +
		float64(a.L1Accesses)*m.PicojoulePerL1Access +
		float64(a.MDCAccesses)*m.PicojoulePerMDCAccess +
		float64(a.Cycles)*m.StaticPicojoulePerCycle
}

// PerInstruction returns energy per instruction (the Fig. 15 metric before
// normalization). Zero instructions yields zero.
func (m Model) PerInstruction(a Activity) float64 {
	if a.Instructions == 0 {
		return 0
	}
	return m.TotalPicojoules(a) / float64(a.Instructions)
}

// Normalized returns scheme energy-per-instruction relative to the
// baseline's (the Fig. 15 y-axis).
func (m Model) Normalized(schemeRun, baseline Activity) float64 {
	b := m.PerInstruction(baseline)
	if b == 0 {
		return 0
	}
	return m.PerInstruction(schemeRun) / b
}
