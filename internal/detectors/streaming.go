package detectors

import (
	"fmt"

	"shmgpu/internal/memdef"
	"shmgpu/internal/telemetry"
)

// StreamingConfig configures one partition's streaming detector.
type StreamingConfig struct {
	// Entries is the prediction bit-vector length (paper: 2048).
	Entries int
	// ChunkBytes is the detection granularity (paper: 4 KB).
	ChunkBytes uint64
	// Trackers is the number of memory access trackers (paper: 8).
	Trackers int
	// WindowAccesses is K, the monitoring-phase length (paper: 32).
	WindowAccesses int
	// TimeoutCycles ends a monitoring phase early (paper: 6000).
	TimeoutCycles uint64
	// MonitorLead is how many chunks ahead of an observed access a new
	// monitoring phase is armed. Several chunks burst concurrently under
	// warp interleaving, so the monitor must be armed ahead of the whole
	// active frontier to observe a chunk's burst from its start.
	MonitorLead uint64
}

// DefaultStreamingConfig is the paper's configuration.
func DefaultStreamingConfig() StreamingConfig {
	return StreamingConfig{
		Entries:        2048,
		ChunkBytes:     memdef.ChunkSize,
		Trackers:       8,
		WindowAccesses: 32,
		TimeoutCycles:  6000,
		MonitorLead:    4,
	}
}

// StreamingPredictor is the per-partition streaming-chunk bit vector,
// indexed by chunk ID over local addresses. Bit set means "predicted
// streaming" (use the per-chunk MAC). GPU workloads stream by default, so
// the vector is eagerly initialized to all ones.
type StreamingPredictor struct {
	cfg  StreamingConfig
	bits []bool
	// trainedBy/hasTrain attribute mispredictions (Fig. 11).
	trainedBy []uint64
	hasTrain  []bool
}

// NewStreamingPredictor builds a predictor with all entries set to
// streaming.
func NewStreamingPredictor(cfg StreamingConfig) *StreamingPredictor {
	if cfg.Entries <= 0 || cfg.ChunkBytes == 0 {
		panic(fmt.Sprintf("detectors: bad streaming config %+v", cfg))
	}
	p := &StreamingPredictor{
		cfg:       cfg,
		bits:      make([]bool, cfg.Entries),
		trainedBy: make([]uint64, cfg.Entries),
		hasTrain:  make([]bool, cfg.Entries),
	}
	for i := range p.bits {
		p.bits[i] = true
	}
	return p
}

// Config returns the predictor configuration.
func (p *StreamingPredictor) Config() StreamingConfig { return p.cfg }

func (p *StreamingPredictor) chunkOf(local memdef.Addr) uint64 {
	return uint64(local) / p.cfg.ChunkBytes
}

func (p *StreamingPredictor) index(chunk uint64) int {
	return int(chunk % uint64(len(p.bits)))
}

// Predict reports whether the chunk containing local is predicted
// streaming-accessed.
func (p *StreamingPredictor) Predict(local memdef.Addr) bool {
	return p.bits[p.index(p.chunkOf(local))]
}

// Train installs a detection result for a chunk.
func (p *StreamingPredictor) Train(chunk uint64, streaming bool) {
	i := p.index(chunk)
	p.bits[i] = streaming
	p.trainedBy[i] = chunk
	p.hasTrain[i] = true
}

// Attribute classifies the provenance of the current prediction for local:
// untrained entry (init), trained by an aliasing chunk, or trained by this
// very chunk (runtime).
func (p *StreamingPredictor) Attribute(local memdef.Addr) Attribution {
	chunk := p.chunkOf(local)
	i := p.index(chunk)
	if !p.hasTrain[i] {
		return AttrInit
	}
	if p.trainedBy[i] != chunk {
		return AttrAliasing
	}
	return AttrRuntime
}

// Detection is the outcome of one completed monitoring phase.
type Detection struct {
	// Chunk is the local chunk ID that was monitored.
	Chunk uint64
	// Streaming reports whether every block in the chunk was touched.
	Streaming bool
	// HadWrite reports whether any monitored access was a write-back.
	HadWrite bool
	// Accesses is the number of accesses observed in the phase.
	Accesses int
	// TimedOut reports whether the phase ended by timeout rather than by
	// reaching the K-access window.
	TimedOut bool
}

// tracker is one memory access tracker: 20-bit tag (chunk), 32 1-bit
// counters, a write flag, a 5-bit access counter and a 13-bit timeout
// counter (Table IX).
type tracker struct {
	inUse    bool
	chunk    uint64
	blockBit uint64 // 1 bit per 128 B block in the 4 KB chunk
	hadWrite bool
	accesses int
	// deadline is the idle timeout: it advances on every counted access,
	// so a slowly-but-steadily streamed chunk is not cut off mid-sweep;
	// the timer's purpose is evicting trackers stuck on chunks that stop
	// receiving accesses before K distinct blocks.
	deadline uint64
	// hardDeadline bounds total tracker occupancy regardless of activity.
	hardDeadline uint64
}

// MATFile is the per-partition file of memory access trackers. Observe
// feeds it L2 misses and write-backs; completed monitoring phases emerge as
// Detections, which the caller applies to the StreamingPredictor and to the
// misprediction handling of Tables III/IV.
type MATFile struct {
	cfg      StreamingConfig
	trackers []tracker
	// Monitored counts chunks that got a tracker; Skipped counts accesses
	// belonging to unmonitored chunks while all trackers were busy.
	Monitored, Skipped uint64

	// Probe, when non-nil, observes tracker arms and skipped accesses.
	// Part identifies the owning partition in emitted events.
	Probe telemetry.Probe
	Part  int16
}

// NewMATFile builds the tracker file.
func NewMATFile(cfg StreamingConfig) *MATFile {
	if cfg.Trackers <= 0 || cfg.WindowAccesses <= 0 || cfg.WindowAccesses > 64 {
		panic(fmt.Sprintf("detectors: bad MAT config %+v", cfg))
	}
	return &MATFile{cfg: cfg, trackers: make([]tracker, cfg.Trackers)}
}

// Observe feeds one off-chip access (L2 miss or write-back) at cycle now.
// It returns a completed Detection if this access ended a monitoring phase.
//
// Tracker allocation monitors AHEAD: an access to an untracked chunk C
// attaches a free tracker to chunk C+1. Under warp interleaving, L2 misses
// within a chunk arrive in arbitrary order, so a phase that starts
// mid-burst can never observe full coverage and would misclassify a
// streaming chunk as random; arming the successor chunk starts the phase
// before its burst begins. Streams sweep forward, so the successor's full
// burst lands inside the phase; randomly-accessed chunks still accumulate
// only sparse counters and finalize as random on timeout.
func (f *MATFile) Observe(local memdef.Addr, write bool, now uint64) (Detection, bool) {
	chunk := uint64(local) / f.cfg.ChunkBytes
	blk := memdef.BlockInChunk(local)
	lead := f.cfg.MonitorLead
	if lead == 0 {
		lead = 1
	}
	next := chunk + lead

	var existing, free *tracker
	nextTracked := false
	for i := range f.trackers {
		tr := &f.trackers[i]
		switch {
		case tr.inUse && tr.chunk == chunk:
			existing = tr
		case tr.inUse && tr.chunk == next:
			nextTracked = true
		case !tr.inUse && free == nil:
			free = tr
		}
	}

	var det Detection
	fired := false
	if existing != nil {
		bit := uint64(1) << uint(blk)
		if write {
			existing.hadWrite = true
		}
		// The access counter advances at cache-block granularity:
		// repeated sector accesses to an already-counted block keep the
		// phase open (its 1-bit counter is already set) so a pure
		// sectored stream covers all 32 blocks within one phase.
		if existing.blockBit&bit == 0 {
			existing.blockBit |= bit
			existing.accesses++
			existing.deadline = now + f.cfg.TimeoutCycles
			if existing.accesses >= f.cfg.WindowAccesses {
				det = f.finalize(existing, false)
				fired = true
				if free == nil {
					free = existing // reuse the just-freed tracker
				}
			}
		}
	}

	// Arm a monitoring phase ahead of the active frontier.
	if !nextTracked {
		if free == nil {
			f.Skipped++
			if f.Probe != nil {
				f.Probe.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvMonitorSkip, Part: f.Part, Value: next})
			}
		} else {
			f.Monitored++
			*free = tracker{
				inUse:        true,
				chunk:        next,
				deadline:     now + f.cfg.TimeoutCycles,
				hardDeadline: now + 8*f.cfg.TimeoutCycles,
			}
			if f.Probe != nil {
				f.Probe.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvMonitorArm, Part: f.Part, Value: next})
			}
		}
	}
	return det, fired
}

// Tick expires timed-out monitoring phases at cycle now and returns their
// detections. Call periodically (every cycle or coarser).
func (f *MATFile) Tick(now uint64) []Detection {
	var out []Detection
	for i := range f.trackers {
		tr := &f.trackers[i]
		if tr.inUse && (now >= tr.deadline || now >= tr.hardDeadline) {
			out = append(out, f.finalize(tr, true)) //shm:alloc-ok timeout detections are rare events, not per-access work
		}
	}
	return out
}

// NextDeadline returns the earliest cycle at which an active tracker
// expires (idle or hard deadline), or ^uint64(0) when none is armed. The
// MEE's event horizon uses it to schedule the next expiry Tick.
func (f *MATFile) NextDeadline() uint64 {
	next := ^uint64(0)
	for i := range f.trackers {
		tr := &f.trackers[i]
		if !tr.inUse {
			continue
		}
		d := tr.deadline
		if tr.hardDeadline < d {
			d = tr.hardDeadline
		}
		if d < next {
			next = d
		}
	}
	return next
}

// Flush finalizes every active tracker (kernel boundary).
func (f *MATFile) Flush() []Detection {
	var out []Detection
	for i := range f.trackers {
		if f.trackers[i].inUse {
			out = append(out, f.finalize(&f.trackers[i], true))
		}
	}
	return out
}

func (f *MATFile) finalize(tr *tracker, timedOut bool) Detection {
	allTouched := tr.blockBit == (uint64(1)<<uint(memdef.BlocksPerChunk))-1
	d := Detection{
		Chunk:     tr.chunk,
		Streaming: allTouched,
		HadWrite:  tr.hadWrite,
		Accesses:  tr.accesses,
		TimedOut:  timedOut,
	}
	tr.inUse = false
	return d
}

// InUse returns the number of active trackers (for tests).
func (f *MATFile) InUse() int {
	n := 0
	for i := range f.trackers {
		if f.trackers[i].inUse {
			n++
		}
	}
	return n
}
