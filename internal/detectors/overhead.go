package detectors

import "fmt"

// HardwareOverhead reports the storage cost of the detector hardware,
// reproducing the paper's Table IX arithmetic.
type HardwareOverhead struct {
	// ReadOnlyBitsPerPartition is the read-only predictor bit-vector size.
	ReadOnlyBitsPerPartition int
	// StreamingBitsPerPartition is the streaming predictor bit-vector size.
	StreamingBitsPerPartition int
	// TrackerBits is the size of ONE memory access tracker: tag + write
	// flag + per-block counters + access counter + timeout counter.
	TrackerBits int
	// Trackers is the tracker count per partition.
	Trackers int
	// Partitions is the number of memory partitions.
	Partitions int
}

// PaperHardwareOverhead returns the configuration evaluated in the paper:
// a 1024-entry read-only predictor, a 2048-entry streaming predictor, and
// eight 71-bit trackers per partition (20-bit tag + 1 write flag + 32
// counters + 5-bit access counter + 13-bit timeout counter), across 12
// partitions.
func PaperHardwareOverhead() HardwareOverhead {
	return HardwareOverhead{
		ReadOnlyBitsPerPartition:  1024,
		StreamingBitsPerPartition: 2048,
		TrackerBits:               20 + 1 + 32 + 5 + 13,
		Trackers:                  8,
		Partitions:                12,
	}
}

// PerPartitionBits returns detector storage per memory partition in bits.
func (h HardwareOverhead) PerPartitionBits() int {
	return h.ReadOnlyBitsPerPartition + h.StreamingBitsPerPartition + h.TrackerBits*h.Trackers
}

// TotalBytes returns total detector storage across all partitions in bytes,
// rounding each component up to whole bytes per partition the way the
// paper tallies it (128 B + 256 B + 71 B per partition).
func (h HardwareOverhead) TotalBytes() int {
	roB := (h.ReadOnlyBitsPerPartition + 7) / 8
	stB := (h.StreamingBitsPerPartition + 7) / 8
	trB := (h.TrackerBits*h.Trackers + 7) / 8
	return (roB + stB + trB) * h.Partitions
}

// String renders the overhead summary.
func (h HardwareOverhead) String() string {
	return fmt.Sprintf("detectors: %d bits/partition, %d B total across %d partitions",
		h.PerPartitionBits(), h.TotalBytes(), h.Partitions)
}
