package detectors

import (
	"fmt"
	"testing"

	"shmgpu/internal/memdef"
)

// TestReadOnlySaturation: the predictor is a fixed bit vector, so marking
// more regions than entries saturates it through aliasing — CountMarked
// never exceeds Entries, every region then predicts read-only, and one
// write clears the prediction for every region sharing the entry.
func TestReadOnlySaturation(t *testing.T) {
	cases := []struct {
		entries    int
		regions    int // regions marked, starting at 0
		wantMarked int
	}{
		{entries: 4, regions: 2, wantMarked: 2},
		{entries: 4, regions: 4, wantMarked: 4},
		{entries: 4, regions: 5, wantMarked: 4},    // one wraparound
		{entries: 4, regions: 64, wantMarked: 4},   // deep saturation
		{entries: 1, regions: 16, wantMarked: 1},   // single shared entry
		{entries: 1024, regions: 3, wantMarked: 3}, // paper size, sparse
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("e%d_r%d", tc.entries, tc.regions), func(t *testing.T) {
			p := NewReadOnlyPredictor(ReadOnlyConfig{Entries: tc.entries, RegionBytes: memdef.RegionSize})
			p.MarkInputRange(0, memdef.Addr(tc.regions)*memdef.RegionSize)
			if got := p.CountMarked(); got != tc.wantMarked {
				t.Fatalf("CountMarked = %d, want %d", got, tc.wantMarked)
			}
			for r := 0; r < tc.regions; r++ {
				if !p.Predict(memdef.Addr(r) * memdef.RegionSize) {
					t.Fatalf("region %d not predicted RO after marking", r)
				}
			}
			if tc.regions < tc.entries {
				return
			}
			// Saturated vector: a single write must clear the prediction
			// for every region aliased onto the written entry, and only
			// those.
			if !p.OnWrite(0) {
				t.Fatal("write to saturated entry must report a transition")
			}
			for r := 0; r < tc.regions; r++ {
				addr := memdef.Addr(r) * memdef.RegionSize
				aliased := r%tc.entries == 0
				if got := p.Predict(addr); got == aliased {
					t.Fatalf("region %d: Predict = %v after write to entry 0 (aliased=%v)", r, got, aliased)
				}
			}
		})
	}
}

// TestMATWindowRollover: the monitoring phase (the detector's epoch) ends
// either when the K-distinct-block window fills or when the idle/hard
// deadline passes; the table pins the phase outcome at the K edges —
// including K above the 32-block chunk population, where the count can
// never fill and only the timeout can roll the epoch over.
func TestMATWindowRollover(t *testing.T) {
	cases := []struct {
		name          string
		window        int
		blocksTouched int  // distinct blocks fed to the monitored chunk
		wantFired     bool // phase ends by count, before any Tick
		wantStreaming bool // outcome (after timeout Tick when !wantFired)
	}{
		{name: "k1_single_block", window: 1, blocksTouched: 1, wantFired: true, wantStreaming: false},
		{name: "k16_half_sweep", window: 16, blocksTouched: 16, wantFired: true, wantStreaming: false},
		{name: "k31_edge_below", window: 31, blocksTouched: 31, wantFired: true, wantStreaming: false},
		{name: "k32_full_sweep", window: 32, blocksTouched: 32, wantFired: true, wantStreaming: true},
		{name: "k32_partial_times_out", window: 32, blocksTouched: 31, wantFired: false, wantStreaming: false},
		{name: "k33_count_unreachable", window: 33, blocksTouched: 32, wantFired: false, wantStreaming: true},
		{name: "k64_count_unreachable", window: 64, blocksTouched: 32, wantFired: false, wantStreaming: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultStreamingConfig()
			cfg.WindowAccesses = tc.window
			f := NewMATFile(cfg)
			const chunk = 20
			armChunk(f, cfg, chunk, 0)
			base := memdef.Addr(chunk * cfg.ChunkBytes)

			var det Detection
			fired := false
			for b := 0; b < tc.blocksTouched; b++ {
				if d, done := f.Observe(base+memdef.Addr(b*memdef.BlockSize), false, 1); done && d.Chunk == chunk {
					det, fired = d, true
				}
			}
			if fired != tc.wantFired {
				t.Fatalf("fired = %v, want %v", fired, tc.wantFired)
			}
			if !fired {
				for _, d := range f.Tick(1 + cfg.TimeoutCycles) {
					if d.Chunk == chunk {
						det, fired = d, true
					}
				}
				if !fired {
					t.Fatal("timeout did not roll the epoch over")
				}
				if !det.TimedOut {
					t.Fatal("timeout-finalized phase not flagged TimedOut")
				}
			} else if det.TimedOut {
				t.Fatal("count-finalized phase flagged TimedOut")
			}
			if det.Streaming != tc.wantStreaming {
				t.Fatalf("Streaming = %v, want %v (det %+v)", det.Streaming, tc.wantStreaming, det)
			}
			if det.Accesses != tc.blocksTouched {
				t.Fatalf("Accesses = %d, want %d (block-granular)", det.Accesses, tc.blocksTouched)
			}
		})
	}
}

// TestMATIdleVersusHardDeadline: a counted access advances the idle
// deadline (a slow-but-steady stream keeps its phase open), repeated
// accesses to an already-counted block do not, and the hard deadline
// bounds total occupancy no matter how active the chunk stays.
func TestMATIdleVersusHardDeadline(t *testing.T) {
	cases := []struct {
		name string
		// step(now, i) feeds access i; gap is the cycle spacing.
		sameBlock  bool
		gap        uint64
		wantExpiry uint64 // first Tick cycle that finalizes the phase
	}{
		// Fresh blocks every Timeout-1 cycles: idle deadline keeps
		// advancing, so only the hard deadline (arm + 8×Timeout) fires.
		{name: "steady_stream_hard_deadline", sameBlock: false, gap: 5999, wantExpiry: 8 * 6000},
		// Same block every time: only the first access counts, so the idle
		// deadline freezes at firstAccess + Timeout.
		{name: "hot_block_idle_deadline", sameBlock: true, gap: 100, wantExpiry: 100 + 6000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultStreamingConfig()
			f := NewMATFile(cfg)
			const chunk = 30
			armChunk(f, cfg, chunk, 0) // armed at cycle 0
			base := memdef.Addr(chunk * cfg.ChunkBytes)
			now := uint64(0)
			for i := 0; i < 20; i++ {
				now += tc.gap
				if now >= tc.wantExpiry {
					break
				}
				blk := 0
				if !tc.sameBlock {
					blk = i % memdef.BlocksPerChunk
				}
				f.Observe(base+memdef.Addr(blk*memdef.BlockSize), false, now)
			}
			for _, d := range f.Tick(tc.wantExpiry - 1) {
				if d.Chunk == chunk {
					t.Fatalf("phase expired before cycle %d: %+v", tc.wantExpiry, d)
				}
			}
			found := false
			for _, d := range f.Tick(tc.wantExpiry) {
				if d.Chunk == chunk {
					found = true
				}
			}
			if !found {
				t.Fatalf("phase still open at cycle %d (NextDeadline=%d)", tc.wantExpiry, f.NextDeadline())
			}
		})
	}
}

// TestStreamingMispredictRecovery: the detect→train→redetect loop. A
// chunk trained against its true pattern (the mispredict) must recover:
// the next completed monitoring phase re-trains the predictor back to the
// truth. The table drives both directions of the flip.
func TestStreamingMispredictRecovery(t *testing.T) {
	cases := []struct {
		name         string
		trainFirst   bool // initial (wrong) training value
		streamSecond bool // actual pattern of the recovery phase
	}{
		// Streamed chunk wrongly trained random: a full sweep recovers it.
		{name: "random_to_streaming", trainFirst: false, streamSecond: true},
		// Random chunk wrongly trained streaming: a sparse phase (timeout)
		// recovers it.
		{name: "streaming_to_random", trainFirst: true, streamSecond: false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultStreamingConfig()
			sp := NewStreamingPredictor(cfg)
			f := NewMATFile(cfg)
			const chunk = 40
			base := memdef.Addr(chunk * cfg.ChunkBytes)

			sp.Train(chunk, tc.trainFirst)
			if got := sp.Predict(base); got != tc.trainFirst {
				t.Fatalf("Predict = %v after training %v", got, tc.trainFirst)
			}

			// Run one full monitoring phase with the chunk's true pattern.
			armChunk(f, cfg, chunk, 0)
			trained := false
			apply := func(d Detection, ok bool) {
				if ok && d.Chunk == chunk {
					sp.Train(d.Chunk, d.Streaming)
					trained = true
				}
			}
			if tc.streamSecond {
				for b := 0; b < memdef.BlocksPerChunk; b++ {
					apply(f.Observe(base+memdef.Addr(b*memdef.BlockSize), false, 1))
				}
			} else {
				for i := 0; i < 16; i++ {
					apply(f.Observe(base+memdef.Addr((i%2)*memdef.BlockSize), false, 1))
				}
				for _, d := range f.Tick(1 + cfg.TimeoutCycles) {
					apply(d, true)
				}
			}
			if !trained {
				t.Fatal("monitoring phase never completed")
			}
			if got := sp.Predict(base); got != tc.streamSecond {
				t.Fatalf("Predict = %v after recovery phase, want %v", got, tc.streamSecond)
			}
			if got := sp.Attribute(base); got != AttrRuntime {
				t.Fatalf("recovered entry attribution = %v, want runtime", got)
			}
		})
	}
}

// TestMATTrackerEvictionOrder: trackers finalize in deadline order, not
// allocation order — NextDeadline always names the earliest expiry, each
// Tick evicts exactly the trackers whose deadline passed, and freed slots
// are immediately reusable for new chunks.
func TestMATTrackerEvictionOrder(t *testing.T) {
	cases := []struct {
		name     string
		armAt    []uint64 // arm cycle per chunk, in allocation order
		tickAt   []uint64 // successive Tick times
		wantEvic [][]int  // per Tick: indexes (into armAt) evicted
	}{
		{
			// Reverse staggering: the last-armed tracker expires last.
			name:     "fifo_stagger",
			armAt:    []uint64{0, 10, 20},
			tickAt:   []uint64{6000, 6010, 6020},
			wantEvic: [][]int{{0}, {1}, {2}},
		},
		{
			// One Tick sweeps every expired tracker at once.
			name:     "batch_eviction",
			armAt:    []uint64{0, 10, 20},
			tickAt:   []uint64{6020},
			wantEvic: [][]int{{0, 1, 2}},
		},
		{
			// Nothing expires before the earliest deadline.
			name:     "no_early_eviction",
			armAt:    []uint64{0, 100},
			tickAt:   []uint64{5999, 6099, 6100},
			wantEvic: [][]int{{}, {0}, {1}},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultStreamingConfig()
			cfg.MonitorLead = 1
			f := NewMATFile(cfg)
			chunks := make([]uint64, len(tc.armAt))
			for i, at := range tc.armAt {
				// Feed chunk 100i so tracker i monitors chunk 100i+1.
				trigger := uint64(100 * i)
				f.Observe(memdef.Addr(trigger*cfg.ChunkBytes), false, at)
				chunks[i] = trigger + 1
			}
			if want := tc.armAt[0] + cfg.TimeoutCycles; f.NextDeadline() != want {
				t.Fatalf("NextDeadline = %d, want %d", f.NextDeadline(), want)
			}
			for step, at := range tc.tickAt {
				got := map[uint64]bool{}
				for _, d := range f.Tick(at) {
					got[d.Chunk] = true
				}
				want := map[uint64]bool{}
				for _, idx := range tc.wantEvic[step] {
					want[chunks[idx]] = true
				}
				if len(got) != len(want) {
					t.Fatalf("tick %d (cycle %d): evicted %v, want indexes %v", step, at, got, tc.wantEvic[step])
				}
				for c := range want {
					if !got[c] {
						t.Fatalf("tick %d (cycle %d): chunk %d not evicted (got %v)", step, at, c, got)
					}
				}
			}
			if f.InUse() != 0 {
				t.Fatalf("%d trackers still in use after final tick", f.InUse())
			}
		})
	}
}

// TestMATSlotReuseAfterEviction: a finalized tracker's slot must be
// reusable in the same Observe call (count-finalize) and after a Tick
// (timeout-finalize), so a full file never deadlocks on stale phases.
func TestMATSlotReuseAfterEviction(t *testing.T) {
	cfg := DefaultStreamingConfig()
	cfg.Trackers = 1
	cfg.MonitorLead = 1
	cfg.WindowAccesses = 1
	f := NewMATFile(cfg)

	// Arm chunk 1 via chunk 0; the file is now full.
	f.Observe(0, false, 0)
	if f.InUse() != 1 {
		t.Fatalf("InUse = %d", f.InUse())
	}
	// Accessing chunk 1 finalizes its phase (K=1) and the freed tracker
	// is immediately re-armed for chunk 2 within the same call.
	det, fired := f.Observe(memdef.Addr(cfg.ChunkBytes), false, 5)
	if !fired || det.Chunk != 1 {
		t.Fatalf("fired=%v det=%+v", fired, det)
	}
	if f.InUse() != 1 {
		t.Fatalf("freed slot not re-armed: InUse = %d", f.InUse())
	}
	// Timeout the tracker; the slot frees for a later chunk.
	f.Tick(5 + cfg.TimeoutCycles)
	if f.InUse() != 0 {
		t.Fatalf("InUse = %d after timeout", f.InUse())
	}
	f.Observe(memdef.Addr(50*cfg.ChunkBytes), false, 20000)
	if f.InUse() != 1 {
		t.Fatal("slot not reusable after timeout eviction")
	}
	if f.Skipped != 0 {
		t.Fatalf("Skipped = %d, want 0", f.Skipped)
	}
}
