package detectors

import (
	"sort"

	"shmgpu/internal/memdef"
	"shmgpu/internal/stats"
)

// sortedKeys returns m's keys in ascending order so settlement loops iterate
// deterministically (the tallies are commutative sums, but fixed order keeps
// any future non-commutative scoring — and debugging output — stable).
func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m { //shmlint:allow maprange — keys are sorted before use
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// ReadOnlyAccuracy scores the read-only predictor against offline-profiling
// ground truth (paper Fig. 10 methodology: every prediction for every L2
// miss/write-back is compared with the result of offline profiling, where a
// region's truth is "read-only" iff the kernel never writes it).
//
// Because the truth is only known at the end of the run, predictions are
// buffered per region with their attribution, then settled by Finalize.
type ReadOnlyAccuracy struct {
	pred *ReadOnlyPredictor
	// per region: prediction tallies by (predictedRO, attribution).
	regions map[uint64]*roRegionTally
}

type roRegionTally struct {
	written bool
	// counts[pred][attr]: pred 0=notRO 1=RO; attr indexes Attribution.
	counts [2][3]uint64
}

// NewReadOnlyAccuracy wraps a predictor for scoring.
func NewReadOnlyAccuracy(pred *ReadOnlyPredictor) *ReadOnlyAccuracy {
	return &ReadOnlyAccuracy{pred: pred, regions: make(map[uint64]*roRegionTally)}
}

// Observe records one access's prediction. Call BEFORE applying the access
// to the predictor (i.e. before OnWrite for writes), mirroring hardware
// where the prediction is consumed before the bit updates.
func (a *ReadOnlyAccuracy) Observe(local memdef.Addr, write bool) {
	region := uint64(local) / a.pred.cfg.RegionBytes
	t := a.regions[region]
	if t == nil {
		t = &roRegionTally{}  //shm:alloc-ok one tally per touched region, amortized over the run
		a.regions[region] = t //shm:alloc-ok one tally per touched region, amortized over the run
	}
	predRO := 0
	if a.pred.Predict(local) {
		predRO = 1
	}
	t.counts[predRO][a.pred.Attribute(local)]++
	if write {
		t.written = true
	}
}

// Finalize settles every buffered prediction against ground truth and
// returns the Fig. 10 breakdown.
func (a *ReadOnlyAccuracy) Finalize() stats.PredictorStats {
	var ps stats.PredictorStats
	for _, region := range sortedKeys(a.regions) {
		t := a.regions[region]
		truthRO := 0
		if !t.written {
			truthRO = 1
		}
		for pred := 0; pred < 2; pred++ {
			for attr := 0; attr < 3; attr++ {
				n := t.counts[pred][attr]
				if n == 0 {
					continue
				}
				if pred == truthRO {
					ps.Counts[stats.OutcomeCorrect] += n
					continue
				}
				switch Attribution(attr) {
				case AttrAliasing:
					ps.Counts[stats.OutcomeMPAliasing] += n
				default:
					// Init-state entries and same-region transitions both
					// trace back to initialization for the read-only
					// predictor (its only runtime transition is the
					// one-way RO→not-RO clear by this region's own write,
					// which the offline truth already reflects).
					ps.Counts[stats.OutcomeMPInit] += n
				}
			}
		}
	}
	return ps
}

// StreamingAccuracy scores the streaming predictor against an oracle
// tracker of unlimited capacity (paper Fig. 11 methodology): for each
// access, the prediction is compared with the detection result of the
// oracle window containing that access. Mispredictions are attributed to
// initialization, aliasing, or runtime pattern changes (split by the
// read-only status of the chunk).
type StreamingAccuracy struct {
	pred *StreamingPredictor
	ro   *ReadOnlyPredictor
	// oracle per-chunk window state.
	chunks map[uint64]*streamChunkTally
	out    stats.PredictorStats
}

type streamChunkTally struct {
	blockBit uint64
	accesses int
	// buffered predictions in the current oracle window:
	// counts[predStream][attr][roAtPrediction]
	counts [2][3][2]uint64
}

// NewStreamingAccuracy wraps the two predictors for scoring. The read-only
// predictor is consulted only to split runtime mispredictions into the
// paper's RO / non-RO categories.
func NewStreamingAccuracy(pred *StreamingPredictor, ro *ReadOnlyPredictor) *StreamingAccuracy {
	return &StreamingAccuracy{pred: pred, ro: ro, chunks: make(map[uint64]*streamChunkTally)}
}

// Observe records one access's prediction and advances the oracle window.
// Call BEFORE the MAT/predictor update for the access.
func (s *StreamingAccuracy) Observe(local memdef.Addr, write bool) {
	chunk := uint64(local) / s.pred.cfg.ChunkBytes
	t := s.chunks[chunk]
	if t == nil {
		t = &streamChunkTally{} //shm:alloc-ok one tally per touched chunk, amortized over the run
		s.chunks[chunk] = t     //shm:alloc-ok one tally per touched chunk, amortized over the run
	}
	predStream := 0
	if s.pred.Predict(local) {
		predStream = 1
	}
	roNow := 0
	if s.ro != nil && s.ro.Predict(local) {
		roNow = 1
	}
	t.counts[predStream][s.pred.Attribute(local)][roNow]++

	// Mirror the MAT: the window advances at block granularity.
	bit := uint64(1) << uint(memdef.BlockInChunk(local))
	if t.blockBit&bit == 0 {
		t.blockBit |= bit
		t.accesses++
	}
	if t.accesses >= s.pred.cfg.WindowAccesses {
		s.settle(chunk, t)
	}
	_ = write
}

// settle closes an oracle window for a chunk and scores its predictions.
func (s *StreamingAccuracy) settle(chunk uint64, t *streamChunkTally) {
	truthStream := 0
	if t.blockBit == (uint64(1)<<uint(memdef.BlocksPerChunk))-1 {
		truthStream = 1
	}
	for pred := 0; pred < 2; pred++ {
		for attr := 0; attr < 3; attr++ {
			for ro := 0; ro < 2; ro++ {
				n := t.counts[pred][attr][ro]
				if n == 0 {
					continue
				}
				if pred == truthStream {
					s.out.Counts[stats.OutcomeCorrect] += n
					continue
				}
				switch Attribution(attr) {
				case AttrInit:
					s.out.Counts[stats.OutcomeMPInit] += n
				case AttrAliasing:
					s.out.Counts[stats.OutcomeMPAliasing] += n
				default:
					if ro == 1 {
						s.out.Counts[stats.OutcomeMPRuntimeRO] += n
					} else {
						s.out.Counts[stats.OutcomeMPRuntimeNonRO] += n
					}
				}
			}
		}
	}
	*t = streamChunkTally{}
}

// Finalize settles every open oracle window and returns the Fig. 11
// breakdown. Windows shorter than K settle against the blocks seen so far,
// matching the MAT's timeout behaviour.
func (s *StreamingAccuracy) Finalize() stats.PredictorStats {
	for _, chunk := range sortedKeys(s.chunks) {
		if t := s.chunks[chunk]; t.accesses > 0 {
			s.settle(chunk, t)
		}
	}
	return s.out
}
