// Package detectors implements the paper's two lightweight hardware
// detectors (§IV-B, §IV-C): the read-only region predictor and the
// streaming-chunk predictor with its memory access trackers (MATs), plus
// the accuracy-accounting machinery used to reproduce the prediction
// breakdowns of Figs. 10 and 11 and the Table IX hardware-overhead math.
//
// Both predictors are tagless bit vectors indexed by (local address /
// granularity) mod entries, so aliasing is possible; the design guarantees
// aliasing only costs performance, never security: read-only entries only
// transition RO→not-RO during a kernel, and a mispredicted streaming chunk
// falls back to re-fetches per Tables III/IV.
package detectors

import (
	"fmt"

	"shmgpu/internal/memdef"
)

// ReadOnlyConfig configures one partition's read-only predictor.
type ReadOnlyConfig struct {
	// Entries is the bit-vector length (paper: 1024).
	Entries int
	// RegionBytes is the detection granularity (paper: 16 KB).
	RegionBytes uint64
}

// DefaultReadOnlyConfig is the paper's configuration.
func DefaultReadOnlyConfig() ReadOnlyConfig {
	return ReadOnlyConfig{Entries: 1024, RegionBytes: memdef.RegionSize}
}

// ReadOnlyPredictor is the per-partition read-only region detector: an
// N-entry bit vector indexed by region ID over local addresses. Bit set
// means "predicted read-only" (use the shared counter, skip the BMT).
type ReadOnlyPredictor struct {
	cfg  ReadOnlyConfig
	bits []bool
	// everMarked records whether an entry was ever set by the command
	// processor; clearedBy records which region last cleared an entry.
	// Both exist purely for misprediction attribution (Fig. 10).
	everMarked []bool
	clearedBy  []uint64
	hasClear   []bool
}

// NewReadOnlyPredictor builds a predictor; all entries start 0
// (not-read-only by default, per the paper).
func NewReadOnlyPredictor(cfg ReadOnlyConfig) *ReadOnlyPredictor {
	if cfg.Entries <= 0 || cfg.RegionBytes == 0 {
		panic(fmt.Sprintf("detectors: bad read-only config %+v", cfg))
	}
	return &ReadOnlyPredictor{
		cfg:        cfg,
		bits:       make([]bool, cfg.Entries),
		everMarked: make([]bool, cfg.Entries),
		clearedBy:  make([]uint64, cfg.Entries),
		hasClear:   make([]bool, cfg.Entries),
	}
}

// Config returns the predictor configuration.
func (p *ReadOnlyPredictor) Config() ReadOnlyConfig { return p.cfg }

// regionOf returns the region ID of a local address.
func (p *ReadOnlyPredictor) regionOf(local memdef.Addr) uint64 {
	return uint64(local) / p.cfg.RegionBytes
}

func (p *ReadOnlyPredictor) index(region uint64) int {
	return int(region % uint64(len(p.bits)))
}

// Predict reports whether the region containing local is predicted
// read-only.
func (p *ReadOnlyPredictor) Predict(local memdef.Addr) bool {
	return p.bits[p.index(p.regionOf(local))]
}

// MarkInput marks the region containing local as read-only. The command
// processor calls this for every region populated by a host→device memory
// copy during context initialization.
func (p *ReadOnlyPredictor) MarkInput(local memdef.Addr) {
	i := p.index(p.regionOf(local))
	p.bits[i] = true
	p.everMarked[i] = true
}

// MarkInputRange marks every region overlapping [lo, hi).
func (p *ReadOnlyPredictor) MarkInputRange(lo, hi memdef.Addr) {
	if hi <= lo {
		return
	}
	for r := p.regionOf(lo); r <= p.regionOf(hi-1); r++ {
		i := p.index(r)
		p.bits[i] = true
		p.everMarked[i] = true
	}
}

// OnWrite records a store/write-back to local. If the region was predicted
// read-only the bit is cleared and OnWrite returns true: the caller must
// propagate the shared counter into per-block counters for this region
// (paper Fig. 8). The transition is one-way during kernel execution.
func (p *ReadOnlyPredictor) OnWrite(local memdef.Addr) (transition bool) {
	region := p.regionOf(local)
	i := p.index(region)
	if !p.bits[i] {
		return false
	}
	p.bits[i] = false
	p.clearedBy[i] = region
	p.hasClear[i] = true
	return true
}

// Reset implements the InputReadOnlyReset(addressRange) API (§IV-B): the
// regions in [lo, hi) are re-marked read-only. The accompanying shared
// counter adjustment (scan for max major counter) is the secure-memory
// engine's job; this just restores predictor state.
func (p *ReadOnlyPredictor) Reset(lo, hi memdef.Addr) {
	if hi <= lo {
		return
	}
	for r := p.regionOf(lo); r <= p.regionOf(hi-1); r++ {
		i := p.index(r)
		p.bits[i] = true
		p.everMarked[i] = true
		p.hasClear[i] = false
	}
}

// Attribution explains a misprediction for the Fig. 10/11 breakdowns.
type Attribution uint8

const (
	// AttrInit: the predictor entry was still in (or shaped by) its
	// initialization state.
	AttrInit Attribution = iota
	// AttrAliasing: a different region/chunk sharing the entry trained it.
	AttrAliasing
	// AttrRuntime: the entry was trained by this same region/chunk, so the
	// mismatch reflects a genuine runtime pattern change.
	AttrRuntime
)

// Attribute classifies why a misprediction for local would have happened,
// given current predictor state. Called by the accuracy harness at
// prediction time; the final correct/mispredict decision happens later when
// ground truth is known.
func (p *ReadOnlyPredictor) Attribute(local memdef.Addr) Attribution {
	region := p.regionOf(local)
	i := p.index(region)
	if p.hasClear[i] && p.clearedBy[i] != region {
		return AttrAliasing
	}
	return AttrInit
}

// CountMarked returns how many entries are currently set (for tests).
func (p *ReadOnlyPredictor) CountMarked() int {
	n := 0
	for _, b := range p.bits {
		if b {
			n++
		}
	}
	return n
}
