package detectors

import (
	"math/rand"
	"testing"

	"shmgpu/internal/memdef"
	"shmgpu/internal/stats"
)

func roPred() *ReadOnlyPredictor { return NewReadOnlyPredictor(DefaultReadOnlyConfig()) }

func TestReadOnlyDefaultsNotRO(t *testing.T) {
	p := roPred()
	if p.Predict(0) || p.Predict(1<<20) {
		t.Fatal("entries must initialize to not-read-only")
	}
}

func TestReadOnlyMarkAndClear(t *testing.T) {
	p := roPred()
	p.MarkInput(0x4000)
	if !p.Predict(0x4000) {
		t.Fatal("marked region not predicted RO")
	}
	// Same region, different offset within 16 KB.
	if !p.Predict(0x4000 + 0x3F00) {
		t.Fatal("prediction not region-granular")
	}
	if !p.OnWrite(0x4100) {
		t.Fatal("write to RO region must report a transition")
	}
	if p.Predict(0x4000) {
		t.Fatal("region still RO after write")
	}
	// Second write: no transition (one-way, already cleared).
	if p.OnWrite(0x4100) {
		t.Fatal("second write must not report a transition")
	}
}

func TestReadOnlyMarkInputRange(t *testing.T) {
	p := roPred()
	p.MarkInputRange(0, 3*memdef.RegionSize)
	for _, a := range []memdef.Addr{0, memdef.RegionSize, 2*memdef.RegionSize + 5} {
		if !p.Predict(a) {
			t.Errorf("addr %#x not marked", uint64(a))
		}
	}
	if p.Predict(3 * memdef.RegionSize) {
		t.Error("region beyond range marked")
	}
	if p.CountMarked() != 3 {
		t.Errorf("CountMarked = %d, want 3", p.CountMarked())
	}
	// Empty range is a no-op.
	p2 := roPred()
	p2.MarkInputRange(100, 100)
	if p2.CountMarked() != 0 {
		t.Error("empty range marked something")
	}
}

func TestReadOnlyAliasingOnlyLosesOpportunity(t *testing.T) {
	// Two regions aliasing to the same entry: a write to one clears the
	// other's bit — classifying a truly-RO region as not-RO, which is the
	// safe direction.
	p := roPred()
	stride := memdef.Addr(uint64(p.Config().Entries) * p.Config().RegionBytes)
	a, b := memdef.Addr(0), stride // same index
	p.MarkInput(a)
	p.MarkInput(b)
	p.OnWrite(b)
	if p.Predict(a) {
		t.Fatal("aliased entry should read not-RO for both regions")
	}
	if got := p.Attribute(a); got != AttrAliasing {
		t.Fatalf("Attribute = %v, want aliasing", got)
	}
}

func TestReadOnlyReset(t *testing.T) {
	p := roPred()
	p.MarkInput(0)
	p.OnWrite(0)
	if p.Predict(0) {
		t.Fatal("cleared")
	}
	p.Reset(0, memdef.RegionSize)
	if !p.Predict(0) {
		t.Fatal("InputReadOnlyReset must restore the RO bit")
	}
}

func streamCfg() StreamingConfig { return DefaultStreamingConfig() }

func TestStreamingDefaultsStreaming(t *testing.T) {
	p := NewStreamingPredictor(streamCfg())
	if !p.Predict(0) || !p.Predict(1<<22) {
		t.Fatal("entries must eagerly initialize to streaming")
	}
	if got := p.Attribute(0); got != AttrInit {
		t.Fatalf("untrained attribute = %v, want init", got)
	}
}

func TestStreamingTrainAndAttribute(t *testing.T) {
	p := NewStreamingPredictor(streamCfg())
	p.Train(5, false)
	addr := memdef.Addr(5 * memdef.ChunkSize)
	if p.Predict(addr) {
		t.Fatal("trained-random chunk predicted streaming")
	}
	if got := p.Attribute(addr); got != AttrRuntime {
		t.Fatalf("self-trained attribute = %v, want runtime", got)
	}
	// Aliasing chunk (same index, Entries apart).
	alias := memdef.Addr((5 + uint64(p.Config().Entries)) * memdef.ChunkSize)
	if got := p.Attribute(alias); got != AttrAliasing {
		t.Fatalf("aliased attribute = %v, want aliasing", got)
	}
}

// armChunk makes the MAT monitor the given chunk by feeding one access to
// the chunk MonitorLead before it (the monitor-ahead allocation policy).
func armChunk(f *MATFile, cfg StreamingConfig, chunk uint64, now uint64) {
	trigger := memdef.Addr((chunk - cfg.MonitorLead) * cfg.ChunkBytes)
	f.Observe(trigger, false, now)
}

func TestMATDetectsStreaming(t *testing.T) {
	cfg := streamCfg()
	f := NewMATFile(cfg)
	const chunk = 10
	armChunk(f, cfg, chunk, 0)
	if f.InUse() != 2 { // trigger chunk's own arm + monitored chunk? only one arm happens
		// One access arms exactly one tracker (chunk+lead).
		if f.InUse() != 1 {
			t.Fatalf("InUse = %d after arming", f.InUse())
		}
	}
	base := memdef.Addr(chunk * cfg.ChunkBytes)
	var det Detection
	var fired bool
	// Touch all 32 blocks of the armed chunk exactly once: perfect stream.
	for b := 0; b < memdef.BlocksPerChunk; b++ {
		if d, done := f.Observe(base+memdef.Addr(b*memdef.BlockSize), false, 0); done {
			det, fired = d, true
		}
	}
	if !fired {
		t.Fatal("full coverage must finalize the phase")
	}
	if !det.Streaming || det.Chunk != chunk || det.HadWrite || det.TimedOut {
		t.Fatalf("detection = %+v", det)
	}
}

func TestMATDetectsRandom(t *testing.T) {
	cfg := streamCfg()
	f := NewMATFile(cfg)
	const chunk = 10
	armChunk(f, cfg, chunk, 0)
	base := memdef.Addr(chunk * cfg.ChunkBytes)
	// Repeated write accesses to only two blocks: the block-granular
	// counter never reaches K, so the phase ends by timeout as random.
	for i := 0; i < 32; i++ {
		if _, done := f.Observe(base+memdef.Addr((i%2)*memdef.BlockSize), true, 0); done {
			t.Fatal("partial-coverage window must not finalize early")
		}
	}
	var det Detection
	found := false
	for _, d := range f.Tick(cfg.TimeoutCycles) {
		if d.Chunk == chunk {
			det, found = d, true
		}
	}
	if !found {
		t.Fatal("timeout did not finalize the monitored chunk")
	}
	if det.Streaming {
		t.Fatal("partial-coverage chunk detected as streaming")
	}
	if !det.HadWrite {
		t.Fatal("write flag lost")
	}
	if det.Accesses != 2 {
		t.Fatalf("block-granular accesses = %d, want 2", det.Accesses)
	}
}

func TestMATSectoredStreamDetectsStreaming(t *testing.T) {
	// A sectored stream issues 4 accesses per block; block-granular
	// counting must still recognize the full-coverage stream.
	cfg := streamCfg()
	f := NewMATFile(cfg)
	const chunk = 7
	armChunk(f, cfg, chunk, 0)
	base := memdef.Addr(chunk * cfg.ChunkBytes)
	var det Detection
	var fired bool
	for b := 0; b < memdef.BlocksPerChunk; b++ {
		for s := 0; s < memdef.SectorsPerBlock; s++ {
			if d, done := f.Observe(base+memdef.Addr(b*memdef.BlockSize+s*memdef.SectorSize), false, 0); done && d.Chunk == chunk {
				det, fired = d, true
			}
		}
	}
	if !fired || !det.Streaming {
		t.Fatalf("sectored stream not detected: fired=%v det=%+v", fired, det)
	}
}

func TestMATTimeout(t *testing.T) {
	cfg := streamCfg()
	f := NewMATFile(cfg)
	f.Observe(0, false, 100)
	if got := f.Tick(100 + cfg.TimeoutCycles - 1); len(got) != 0 {
		t.Fatal("timed out early")
	}
	got := f.Tick(100 + cfg.TimeoutCycles)
	if len(got) != 1 || !got[0].TimedOut || got[0].Streaming {
		t.Fatalf("timeout detection = %+v", got)
	}
}

func TestMATCapacity(t *testing.T) {
	cfg := streamCfg() // 8 trackers
	f := NewMATFile(cfg)
	for c := 0; c < 8; c++ {
		f.Observe(memdef.Addr(c*memdef.ChunkSize), false, 0)
	}
	if f.InUse() != 8 {
		t.Fatalf("InUse = %d", f.InUse())
	}
	// Ninth distinct chunk: no tracker available; access skipped.
	f.Observe(memdef.Addr(8*memdef.ChunkSize), false, 0)
	if f.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", f.Skipped)
	}
	// Existing chunks still tracked.
	if _, done := f.Observe(0, false, 0); done {
		t.Fatal("unexpected finalize")
	}
}

func TestMATFlush(t *testing.T) {
	f := NewMATFile(streamCfg())
	f.Observe(0, true, 0)
	f.Observe(memdef.ChunkSize, false, 0)
	dets := f.Flush()
	if len(dets) != 2 {
		t.Fatalf("flush returned %d detections", len(dets))
	}
	if f.InUse() != 0 {
		t.Fatal("trackers still active after flush")
	}
}

func TestReadOnlyAccuracyAllCorrect(t *testing.T) {
	p := roPred()
	p.MarkInputRange(0, 4*memdef.RegionSize)
	acc := NewReadOnlyAccuracy(p)
	// Reads to marked RO regions; never written => truth RO; all correct.
	for i := 0; i < 100; i++ {
		acc.Observe(memdef.Addr(i%4)*memdef.RegionSize, false)
	}
	ps := acc.Finalize()
	if ps.Accuracy() != 1.0 {
		t.Fatalf("accuracy = %v, want 1.0 (%+v)", ps.Accuracy(), ps)
	}
}

func TestReadOnlyAccuracyInitMisses(t *testing.T) {
	p := roPred()
	// Region 0 is truly read-only but never marked (init misprediction).
	acc := NewReadOnlyAccuracy(p)
	for i := 0; i < 10; i++ {
		acc.Observe(0, false)
	}
	ps := acc.Finalize()
	if ps.Counts[stats.OutcomeMPInit] != 10 {
		t.Fatalf("MP_Init = %d, want 10 (%+v)", ps.Counts[stats.OutcomeMPInit], ps)
	}
}

func TestReadOnlyAccuracyWrittenRegionCorrect(t *testing.T) {
	p := roPred()
	acc := NewReadOnlyAccuracy(p)
	// Unmarked region that does get written: predicted not-RO, truth
	// not-RO => all correct, including the write itself.
	for i := 0; i < 5; i++ {
		acc.Observe(0, false)
	}
	acc.Observe(0, true)
	p.OnWrite(0)
	ps := acc.Finalize()
	if ps.Accuracy() != 1.0 {
		t.Fatalf("accuracy = %v (%+v)", ps.Accuracy(), ps)
	}
}

func TestReadOnlyAccuracyMarkedThenWritten(t *testing.T) {
	p := roPred()
	p.MarkInput(0)
	acc := NewReadOnlyAccuracy(p)
	// Predicted RO while marked, but the region is written during the
	// kernel => truth not-RO => those predictions are init mispredictions.
	acc.Observe(0, false)
	acc.Observe(0, true)
	p.OnWrite(0)
	acc.Observe(0, false) // now predicted not-RO: correct
	ps := acc.Finalize()
	if ps.Counts[stats.OutcomeMPInit] != 2 || ps.Counts[stats.OutcomeCorrect] != 1 {
		t.Fatalf("breakdown = %+v", ps)
	}
}

func TestReadOnlyAccuracyAliasing(t *testing.T) {
	p := roPred()
	stride := memdef.Addr(uint64(p.Config().Entries) * p.Config().RegionBytes)
	p.MarkInput(0)
	p.MarkInput(stride)
	acc := NewReadOnlyAccuracy(p)
	// Write region at `stride` (clears shared bit); then reads of region 0
	// predict not-RO though region 0 is truly RO => aliasing MPs.
	acc.Observe(stride, true)
	p.OnWrite(stride)
	for i := 0; i < 7; i++ {
		acc.Observe(0, false)
	}
	ps := acc.Finalize()
	if ps.Counts[stats.OutcomeMPAliasing] != 7 {
		t.Fatalf("MP_Aliasing = %d, want 7 (%+v)", ps.Counts[stats.OutcomeMPAliasing], ps)
	}
}

func TestStreamingAccuracyPerfectStream(t *testing.T) {
	sp := NewStreamingPredictor(streamCfg())
	acc := NewStreamingAccuracy(sp, nil)
	for b := 0; b < memdef.BlocksPerChunk; b++ {
		acc.Observe(memdef.Addr(b*memdef.BlockSize), false)
	}
	ps := acc.Finalize()
	if ps.Accuracy() != 1.0 {
		t.Fatalf("accuracy = %v (%+v)", ps.Accuracy(), ps)
	}
}

func TestStreamingAccuracyRandomChunkInitMPs(t *testing.T) {
	sp := NewStreamingPredictor(streamCfg())
	acc := NewStreamingAccuracy(sp, nil)
	// 32 accesses to 2 blocks: truth random, predicted streaming (init).
	for i := 0; i < 32; i++ {
		acc.Observe(memdef.Addr((i%2)*memdef.BlockSize), false)
	}
	ps := acc.Finalize()
	if ps.Counts[stats.OutcomeMPInit] != 32 {
		t.Fatalf("MP_Init = %d, want 32 (%+v)", ps.Counts[stats.OutcomeMPInit], ps)
	}
}

func TestStreamingAccuracyRuntimeSplitByRO(t *testing.T) {
	sp := NewStreamingPredictor(streamCfg())
	ro := roPred()
	ro.MarkInput(0) // chunk 0 lives in an RO region
	acc := NewStreamingAccuracy(sp, ro)
	// Train chunk 0 as random (self-trained => runtime attribution).
	sp.Train(0, false)
	// Now stream the chunk: predictions say random, truth streaming.
	for b := 0; b < memdef.BlocksPerChunk; b++ {
		acc.Observe(memdef.Addr(b*memdef.BlockSize), false)
	}
	ps := acc.Finalize()
	if ps.Counts[stats.OutcomeMPRuntimeRO] != 32 {
		t.Fatalf("MP_Runtime_Read_Only = %d, want 32 (%+v)", ps.Counts[stats.OutcomeMPRuntimeRO], ps)
	}

	// Same scenario in a non-RO region.
	sp2 := NewStreamingPredictor(streamCfg())
	acc2 := NewStreamingAccuracy(sp2, ro)
	base := memdef.Addr(memdef.ChunkSize * 100) // outside marked region
	sp2.Train(100, false)
	for b := 0; b < memdef.BlocksPerChunk; b++ {
		acc2.Observe(base+memdef.Addr(b*memdef.BlockSize), false)
	}
	ps2 := acc2.Finalize()
	if ps2.Counts[stats.OutcomeMPRuntimeNonRO] != 32 {
		t.Fatalf("MP_Runtime_Non_Read_Only = %d, want 32 (%+v)", ps2.Counts[stats.OutcomeMPRuntimeNonRO], ps2)
	}
}

func TestStreamingAccuracyAliasing(t *testing.T) {
	sp := NewStreamingPredictor(streamCfg())
	acc := NewStreamingAccuracy(sp, nil)
	aliasChunk := uint64(sp.Config().Entries) // aliases with chunk 0
	sp.Train(aliasChunk, false)               // trained by the OTHER chunk
	// Stream chunk 0: predicted random (due to alias), truth streaming.
	for b := 0; b < memdef.BlocksPerChunk; b++ {
		acc.Observe(memdef.Addr(b*memdef.BlockSize), false)
	}
	ps := acc.Finalize()
	if ps.Counts[stats.OutcomeMPAliasing] != 32 {
		t.Fatalf("MP_Aliasing = %d, want 32 (%+v)", ps.Counts[stats.OutcomeMPAliasing], ps)
	}
}

func TestMATThenPredictorLoop(t *testing.T) {
	// End-to-end: random chunk gets detected (via timeout) and trained;
	// subsequent predictions flip to random.
	cfg := streamCfg()
	sp := NewStreamingPredictor(cfg)
	f := NewMATFile(cfg)
	rng := rand.New(rand.NewSource(3))
	// Arm the monitored chunk, then access it sparsely (random pattern).
	const chunk = 10
	armChunk(f, cfg, chunk, 0)
	base := memdef.Addr(chunk * cfg.ChunkBytes)
	for i := 0; i < 32; i++ {
		a := base + memdef.Addr(rng.Intn(4)*memdef.BlockSize)
		if det, done := f.Observe(a, false, uint64(i)); done {
			sp.Train(det.Chunk, det.Streaming)
		}
	}
	for _, det := range f.Tick(2*cfg.TimeoutCycles + 32) {
		if det.Accesses > 0 {
			sp.Train(det.Chunk, det.Streaming)
		}
	}
	if sp.Predict(base) {
		t.Fatal("predictor not retrained to random after detection")
	}
}

func TestHardwareOverheadTableIX(t *testing.T) {
	h := PaperHardwareOverhead()
	if h.TrackerBits != 71 {
		t.Errorf("tracker bits = %d, want 71", h.TrackerBits)
	}
	// Paper: 128 B + 256 B + 71 B per partition, ×12 = 5460 B (5.33 KB).
	if got := h.TotalBytes(); got != 5460 {
		t.Errorf("TotalBytes = %d, want 5460", got)
	}
	if h.String() == "" {
		t.Error("empty String")
	}
}

func TestBadConfigsPanic(t *testing.T) {
	cases := []func(){
		func() { NewReadOnlyPredictor(ReadOnlyConfig{}) },
		func() { NewStreamingPredictor(StreamingConfig{}) },
		func() { NewMATFile(StreamingConfig{Entries: 8, ChunkBytes: 4096, WindowAccesses: 100, Trackers: 1}) },
		func() { NewMATFile(StreamingConfig{Entries: 8, ChunkBytes: 4096, WindowAccesses: 32, Trackers: 0}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
