package detectors

import (
	"fmt"

	"shmgpu/internal/snapshot"
)

// Checkpoint/restore for the detector state machines. Restore targets must
// be constructed with identical configs; table sizes are validated, not
// reconstructed. Accuracy maps are serialized in sorted-key order — the
// settlement loops already sort, so the map iteration order is not
// observable and a canonical order keeps the snapshot bytes deterministic.
// Cold path only.

// SaveState writes the predictor table and attribution state.
func (p *ReadOnlyPredictor) SaveState(e *snapshot.Encoder) {
	e.Int(len(p.bits))
	for i := range p.bits {
		e.Bool(p.bits[i])
		e.Bool(p.everMarked[i])
		e.U64(p.clearedBy[i])
		e.Bool(p.hasClear[i])
	}
}

// LoadState restores state saved by SaveState.
func (p *ReadOnlyPredictor) LoadState(d *snapshot.Decoder) error {
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(p.bits) {
		return fmt.Errorf("detectors: read-only snapshot has %d entries, predictor has %d", n, len(p.bits))
	}
	for i := range p.bits {
		p.bits[i] = d.Bool()
		p.everMarked[i] = d.Bool()
		p.clearedBy[i] = d.U64()
		p.hasClear[i] = d.Bool()
	}
	return d.Err()
}

// SaveState writes the predictor table and training attribution.
func (p *StreamingPredictor) SaveState(e *snapshot.Encoder) {
	e.Int(len(p.bits))
	for i := range p.bits {
		e.Bool(p.bits[i])
		e.U64(p.trainedBy[i])
		e.Bool(p.hasTrain[i])
	}
}

// LoadState restores state saved by SaveState.
func (p *StreamingPredictor) LoadState(d *snapshot.Decoder) error {
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(p.bits) {
		return fmt.Errorf("detectors: streaming snapshot has %d entries, predictor has %d", n, len(p.bits))
	}
	for i := range p.bits {
		p.bits[i] = d.Bool()
		p.trainedBy[i] = d.U64()
		p.hasTrain[i] = d.Bool()
	}
	return d.Err()
}

// SaveState writes the tracker file: every tracker slot verbatim (slot
// index is the allocation order tiebreaker, so layout is observable) plus
// the occupancy counters.
func (f *MATFile) SaveState(e *snapshot.Encoder) {
	e.Int(len(f.trackers))
	for i := range f.trackers {
		tr := &f.trackers[i]
		e.Bool(tr.inUse)
		e.U64(tr.chunk)
		e.U64(tr.blockBit)
		e.Bool(tr.hadWrite)
		e.Int(tr.accesses)
		e.U64(tr.deadline)
		e.U64(tr.hardDeadline)
	}
	e.U64(f.Monitored)
	e.U64(f.Skipped)
}

// LoadState restores state saved by SaveState.
func (f *MATFile) LoadState(d *snapshot.Decoder) error {
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(f.trackers) {
		return fmt.Errorf("detectors: MAT snapshot has %d trackers, file has %d", n, len(f.trackers))
	}
	for i := range f.trackers {
		tr := &f.trackers[i]
		tr.inUse = d.Bool()
		tr.chunk = d.U64()
		tr.blockBit = d.U64()
		tr.hadWrite = d.Bool()
		tr.accesses = d.Int()
		tr.deadline = d.U64()
		tr.hardDeadline = d.U64()
	}
	f.Monitored = d.U64()
	f.Skipped = d.U64()
	return d.Err()
}

// SaveState writes the buffered per-region tallies.
func (a *ReadOnlyAccuracy) SaveState(e *snapshot.Encoder) {
	keys := sortedKeys(a.regions)
	e.Int(len(keys))
	for _, k := range keys {
		t := a.regions[k]
		e.U64(k)
		e.Bool(t.written)
		for p := 0; p < 2; p++ {
			for at := 0; at < 3; at++ {
				e.U64(t.counts[p][at])
			}
		}
	}
}

// LoadState restores tallies saved by SaveState, replacing the current
// map.
func (a *ReadOnlyAccuracy) LoadState(d *snapshot.Decoder) error {
	n := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	a.regions = make(map[uint64]*roRegionTally, n)
	for i := 0; i < n; i++ {
		k := d.U64()
		t := &roRegionTally{written: d.Bool()}
		for p := 0; p < 2; p++ {
			for at := 0; at < 3; at++ {
				t.counts[p][at] = d.U64()
			}
		}
		if err := d.Err(); err != nil {
			return err
		}
		a.regions[k] = t
	}
	return nil
}

// SaveState writes the buffered per-chunk tallies and the settled stats.
func (s *StreamingAccuracy) SaveState(e *snapshot.Encoder) {
	keys := sortedKeys(s.chunks)
	e.Int(len(keys))
	for _, k := range keys {
		t := s.chunks[k]
		e.U64(k)
		e.U64(t.blockBit)
		e.Int(t.accesses)
		for p := 0; p < 2; p++ {
			for at := 0; at < 3; at++ {
				for ro := 0; ro < 2; ro++ {
					e.U64(t.counts[p][at][ro])
				}
			}
		}
	}
	s.out.SaveState(e)
}

// LoadState restores state saved by SaveState, replacing the current map.
func (s *StreamingAccuracy) LoadState(d *snapshot.Decoder) error {
	n := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	s.chunks = make(map[uint64]*streamChunkTally, n)
	for i := 0; i < n; i++ {
		k := d.U64()
		t := &streamChunkTally{blockBit: d.U64(), accesses: d.Int()}
		for p := 0; p < 2; p++ {
			for at := 0; at < 3; at++ {
				for ro := 0; ro < 2; ro++ {
					t.counts[p][at][ro] = d.U64()
				}
			}
		}
		if err := d.Err(); err != nil {
			return err
		}
		s.chunks[k] = t
	}
	s.out.LoadState(d)
	return d.Err()
}
