// Package cache implements the set-associative sectored cache with an MSHR
// file that backs every cache in the simulator: the per-SM L1s, the L2 banks,
// and the three per-partition security-metadata caches (counter, MAC, BMT).
//
// The cache is a state machine only — it tracks tags, sector valid/dirty
// bits, LRU order, and outstanding misses — while all timing (latencies,
// queueing, bandwidth) is orchestrated by the caller. This keeps one
// well-tested implementation shared across very different timing contexts.
//
// Lines are memdef.BlockSize (128 B) with four 32 B sectors. Reads miss per
// sector and allocate MSHR entries; writes are full-sector writes (GPU
// coalescing guarantees this) and never fetch. Fills install sectors,
// allocating the line on first fill and evicting dirty sectors of the
// victim line as write-backs.
package cache

import (
	"fmt"
	"math/bits"

	"shmgpu/internal/flatmap"
	"shmgpu/internal/invariant"
	"shmgpu/internal/memdef"
	"shmgpu/internal/stats"
)

// Config describes one cache instance.
type Config struct {
	// Name identifies the cache in stats and error messages.
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// MSHRs is the number of outstanding-miss registers (distinct blocks).
	MSHRs int
	// MaxMergesPerMSHR bounds requests merged into one MSHR entry
	// (paper: each L2 MSHR entry can merge 16 requests).
	MaxMergesPerMSHR int
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.SizeBytes%memdef.BlockSize != 0 {
		return fmt.Errorf("cache %s: size %d not a positive multiple of block size", c.Name, c.SizeBytes)
	}
	blocks := c.SizeBytes / memdef.BlockSize
	if c.Ways <= 0 || blocks%c.Ways != 0 {
		return fmt.Errorf("cache %s: %d blocks not divisible by %d ways", c.Name, blocks, c.Ways)
	}
	sets := blocks / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cache %s: MSHR count must be positive", c.Name)
	}
	if c.MaxMergesPerMSHR <= 0 {
		return fmt.Errorf("cache %s: MaxMergesPerMSHR must be positive", c.Name)
	}
	return nil
}

// Outcome is the result of a cache lookup.
type Outcome uint8

const (
	// Hit means the sector was present (read) or written in place.
	Hit Outcome = iota
	// MissNew means a new MSHR was allocated; the caller must issue a
	// fetch for the sector to the next level.
	MissNew
	// MissMerged means the sector is already being fetched; the request
	// was merged into the existing MSHR.
	MissMerged
	// Blocked means no MSHR (or merge slot) was available; the caller
	// must retry later. No state was changed.
	Blocked
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case MissNew:
		return "miss-new"
	case MissMerged:
		return "miss-merged"
	default:
		return "blocked"
	}
}

// Writeback is a dirty-sector eviction the caller must forward downstream.
type Writeback struct {
	// BlockAddr is the 128 B-aligned block address.
	BlockAddr memdef.Addr
	// SectorMask has bit i set if sector i is dirty and must be written.
	SectorMask uint8
}

// DirtySectors returns the number of dirty sectors in the writeback.
func (w Writeback) DirtySectors() int { return bits.OnesCount8(w.SectorMask) }

type line struct {
	tag   uint64
	valid uint8 // per-sector valid bits
	dirty uint8 // per-sector dirty bits
	lru   uint64
	used  bool
}

// mshr tracks one block's outstanding sector fetches. Entries live in an
// open-addressed table keyed by block address, so allocating and retiring
// an MSHR never touches the heap.
type mshr struct {
	// pending has bit i set while sector i is being fetched.
	pending uint8
	merges  int
}

// Cache is one sectored cache instance. Create with New; the zero value is
// not usable.
type Cache struct {
	cfg      Config
	lines    []line // numSets × Ways, row-major
	ways     int
	setMask  uint64
	mshrs    flatmap.Map[mshr]
	mshrCap  int
	lruClock uint64
	// wbScratch backs the Writeback slices returned by Write and Fill; see
	// the validity note on those methods.
	wbScratch []Writeback
	// Stats is the access-counter block for this cache.
	Stats stats.CacheStats
	// OnEvict, when set, observes every line eviction with the evicted
	// block address and its valid-sector mask (dirty sectors are
	// additionally returned as Writebacks to the caller). Victim-cache
	// schemes hook this to capture clean evictions.
	OnEvict func(blockAddr memdef.Addr, validMask uint8)
}

// New builds a cache from cfg, panicking on invalid configuration (configs
// are compile-time constants in this codebase, so misconfiguration is a
// programming error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	blocks := cfg.SizeBytes / memdef.BlockSize
	numSets := blocks / cfg.Ways
	return &Cache{
		cfg:     cfg,
		lines:   make([]line, blocks),
		ways:    cfg.Ways,
		setMask: uint64(numSets - 1),
		mshrs:   flatmap.NewMap[mshr](cfg.MSHRs),
		mshrCap: cfg.MSHRs,
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(block memdef.Addr) uint64 {
	return (uint64(block) / memdef.BlockSize) & c.setMask
}

// set returns the ways of the set holding block, a window into the flat
// line array (better locality than per-set slices, and one fewer pointer
// hop on the per-access path).
func (c *Cache) set(si uint64) []line {
	return c.lines[si*uint64(c.ways) : (si+1)*uint64(c.ways)]
}

func (c *Cache) findLine(block memdef.Addr) *line {
	set := c.set(c.setIndex(block))
	tag := uint64(block) / memdef.BlockSize
	for i := range set {
		if set[i].used && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

func sectorBit(addr memdef.Addr) uint8 {
	return 1 << uint(memdef.SectorInBlock(addr))
}

// Probe reports whether the sector containing addr is present, without
// touching LRU state or stats.
func (c *Cache) Probe(addr memdef.Addr) bool {
	ln := c.findLine(memdef.BlockAddr(addr))
	return ln != nil && ln.valid&sectorBit(addr) != 0
}

// Read looks up the sector containing addr. On MissNew the caller must issue
// a downstream fetch for the sector and later call Fill. On MissMerged the
// in-flight fetch will satisfy this request too. On Blocked nothing changed.
func (c *Cache) Read(addr memdef.Addr) Outcome {
	block := memdef.BlockAddr(addr)
	bit := sectorBit(addr)
	if ln := c.findLine(block); ln != nil && ln.valid&bit != 0 {
		c.touch(ln)
		c.Stats.Hits++
		return Hit
	}
	if m := c.mshrs.Get(uint64(block)); m != nil {
		if m.pending&bit != 0 {
			if m.merges >= c.cfg.MaxMergesPerMSHR {
				return Blocked
			}
			m.merges++
			c.Stats.Misses++
			c.Stats.MSHRMerges++
			return MissMerged
		}
		// Same block, different sector: reuse the entry.
		m.pending |= bit
		c.Stats.Misses++
		return MissNew
	}
	if c.mshrs.Len() >= c.mshrCap {
		return Blocked
	}
	c.mshrs.Put(uint64(block)).pending = bit
	if invariant.Enabled() && c.mshrs.Len() > c.mshrCap {
		invariant.Failf("mshr-occupancy", "cache "+c.cfg.Name, 0,
			"%d MSHRs allocated, capacity %d (block %#x)", c.mshrs.Len(), c.mshrCap, uint64(block))
	}
	c.Stats.Misses++
	return MissNew
}

// Write stores a full sector. GPU write-backs arrive as complete 32 B
// sectors, so no fetch-on-write is needed: a write miss allocates the line
// (possibly evicting) and marks the sector valid+dirty. Any dirty sectors of
// the evicted victim are returned for the caller to forward downstream.
// Write never blocks.
//
// The returned Writeback slice aliases a per-cache scratch buffer and is
// valid only until the next Write or Fill on this cache; callers must
// consume it before touching the cache again (all callers forward it
// immediately).
func (c *Cache) Write(addr memdef.Addr) (Outcome, []Writeback) {
	block := memdef.BlockAddr(addr)
	bit := sectorBit(addr)
	if ln := c.findLine(block); ln != nil {
		ln.valid |= bit
		ln.dirty |= bit
		c.touch(ln)
		c.Stats.Hits++
		return Hit, nil
	}
	ln, wb := c.allocate(block)
	ln.valid = bit
	ln.dirty = bit
	c.Stats.Misses++
	return MissNew, wb
}

// Fill installs a fetched sector and returns any eviction caused by line
// allocation plus the number of merged requesters waiting on the sector
// (at least 1: the original MissNew requester). Fill for a sector with no
// outstanding MSHR installs the sector anyway and reports 0 waiters —
// callers use this for prefetch-like installs (e.g. victim-cache pushes).
//
// Like Write, the returned Writeback slice aliases the cache's scratch
// buffer and is valid only until the next Write or Fill on this cache.
func (c *Cache) Fill(addr memdef.Addr) (wb []Writeback, waiters int) {
	block := memdef.BlockAddr(addr)
	bit := sectorBit(addr)
	waiters = 0
	if m := c.mshrs.Get(uint64(block)); m != nil && m.pending&bit != 0 {
		waiters = 1 + m.merges
		m.pending &^= bit
		m.merges = 0
		if m.pending == 0 {
			c.mshrs.Delete(uint64(block))
		}
	}
	ln := c.findLine(block)
	if ln == nil {
		ln, wb = c.allocate(block)
	}
	ln.valid |= bit
	ln.dirty &^= bit
	c.touch(ln)
	c.Stats.SectorFills++
	return wb, waiters
}

// allocate claims a line for block, evicting the LRU way. Victim dirty
// sectors become write-backs.
func (c *Cache) allocate(block memdef.Addr) (*line, []Writeback) {
	set := c.set(c.setIndex(block))
	victim := &set[0]
	for i := range set {
		if !set[i].used {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	var wb []Writeback
	if victim.used {
		c.Stats.Evictions++
		if c.OnEvict != nil && victim.valid != 0 {
			c.OnEvict(memdef.Addr(victim.tag*memdef.BlockSize), victim.valid)
		}
		if victim.dirty != 0 {
			c.Stats.Writebacks++
			c.wbScratch = append(c.wbScratch[:0], Writeback{ //shm:alloc-ok single-entry scratch: capacity 1 after the first dirty eviction
				BlockAddr:  memdef.Addr(victim.tag * memdef.BlockSize),
				SectorMask: victim.dirty,
			})
			wb = c.wbScratch
		}
	}
	victim.tag = uint64(block) / memdef.BlockSize
	victim.valid = 0
	victim.dirty = 0
	victim.used = true
	c.touch(victim)
	return victim, wb
}

func (c *Cache) touch(ln *line) {
	c.lruClock++
	ln.lru = c.lruClock
}

// MSHRsInUse returns the number of allocated MSHR entries.
func (c *Cache) MSHRsInUse() int { return c.mshrs.Len() }

// MSHRFull reports whether a new-block miss would be Blocked right now.
func (c *Cache) MSHRFull() bool { return c.mshrs.Len() >= c.mshrCap }

// CleanInvalidate drops the sector containing addr if present, without
// writing back. Used when a downstream owner revokes a cached copy.
func (c *Cache) CleanInvalidate(addr memdef.Addr) {
	if ln := c.findLine(memdef.BlockAddr(addr)); ln != nil {
		bit := sectorBit(addr)
		ln.valid &^= bit
		ln.dirty &^= bit
		if ln.valid == 0 {
			ln.used = false
		}
	}
}

// FlushAll writes back every dirty sector and invalidates the whole cache.
// Used at kernel boundaries. Outstanding MSHRs must be drained by the caller
// before flushing; flushing under outstanding misses is a cycle-model bug
// (a leaked fetch), reported as an invariant violation with the offending
// block addresses.
// FlushAll allocates a fresh slice (it is a cold, kernel-boundary path and
// its result may be held across later cache operations).
func (c *Cache) FlushAll() []Writeback {
	if c.mshrs.Len() != 0 {
		// Reduce to the order-insensitive minimum for a deterministic
		// representative of the leaked MSHR set.
		first := memdef.Addr(^uint64(0))
		c.mshrs.Range(func(b uint64, _ *mshr) bool {
			if memdef.Addr(b) < first {
				first = memdef.Addr(b)
			}
			return true
		})
		invariant.Failf("mshr-drain", "cache "+c.cfg.Name, 0,
			"FlushAll with %d outstanding MSHRs (first leaked block %#x)",
			c.mshrs.Len(), uint64(first))
	}
	var wbs []Writeback
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.used && ln.dirty != 0 {
			c.Stats.Writebacks++
			wbs = append(wbs, Writeback{
				BlockAddr:  memdef.Addr(ln.tag * memdef.BlockSize),
				SectorMask: ln.dirty,
			})
		}
		*ln = line{}
	}
	return wbs
}

// DirtySectorCount returns the number of dirty sectors currently held,
// mostly for tests and occupancy stats.
func (c *Cache) DirtySectorCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].used {
			n += bits.OnesCount8(c.lines[i].dirty)
		}
	}
	return n
}

// ValidSectorCount returns the number of valid sectors currently held.
func (c *Cache) ValidSectorCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].used {
			n += bits.OnesCount8(c.lines[i].valid)
		}
	}
	return n
}
