package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shmgpu/internal/memdef"
)

func smallConfig() Config {
	return Config{Name: "test", SizeBytes: 2048, Ways: 4, MSHRs: 8, MaxMergesPerMSHR: 4}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "sz", SizeBytes: 100, Ways: 4, MSHRs: 1, MaxMergesPerMSHR: 1},
		{Name: "ways", SizeBytes: 2048, Ways: 0, MSHRs: 1, MaxMergesPerMSHR: 1},
		{Name: "div", SizeBytes: 2048, Ways: 3, MSHRs: 1, MaxMergesPerMSHR: 1},
		{Name: "pow2", SizeBytes: 3 * 2048, Ways: 4, MSHRs: 1, MaxMergesPerMSHR: 1},
		{Name: "mshr", SizeBytes: 2048, Ways: 4, MSHRs: 0, MaxMergesPerMSHR: 1},
		{Name: "merge", SizeBytes: 2048, Ways: 4, MSHRs: 1, MaxMergesPerMSHR: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q should be invalid", cfg.Name)
		}
	}
}

func TestReadMissFillHit(t *testing.T) {
	c := New(smallConfig())
	addr := memdef.Addr(0x1000)
	if got := c.Read(addr); got != MissNew {
		t.Fatalf("first read = %v, want miss-new", got)
	}
	wb, waiters := c.Fill(addr)
	if len(wb) != 0 {
		t.Fatalf("unexpected writebacks on fill: %v", wb)
	}
	if waiters != 1 {
		t.Fatalf("waiters = %d, want 1", waiters)
	}
	if got := c.Read(addr); got != Hit {
		t.Fatalf("read after fill = %v, want hit", got)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestSectorGranularity(t *testing.T) {
	c := New(smallConfig())
	base := memdef.Addr(0x2000)
	if got := c.Read(base); got != MissNew {
		t.Fatal("sector 0 should miss")
	}
	c.Fill(base)
	// Other sectors of the same block are still invalid.
	for s := 1; s < memdef.SectorsPerBlock; s++ {
		a := base + memdef.Addr(s*memdef.SectorSize)
		if got := c.Read(a); got != MissNew {
			t.Errorf("sector %d = %v, want miss-new", s, got)
		}
	}
}

func TestMSHRMergeSameSector(t *testing.T) {
	c := New(smallConfig())
	addr := memdef.Addr(0x3000)
	if got := c.Read(addr); got != MissNew {
		t.Fatal("want miss-new")
	}
	for i := 0; i < 4; i++ {
		if got := c.Read(addr); got != MissMerged {
			t.Fatalf("merge %d = %v, want miss-merged", i, got)
		}
	}
	// Merge capacity (4) exhausted.
	if got := c.Read(addr); got != Blocked {
		t.Fatalf("over-capacity merge = %v, want blocked", got)
	}
	_, waiters := c.Fill(addr)
	if waiters != 5 {
		t.Fatalf("waiters = %d, want 5 (1 original + 4 merged)", waiters)
	}
}

func TestMSHRSameBlockDifferentSector(t *testing.T) {
	c := New(smallConfig())
	base := memdef.Addr(0x4000)
	c.Read(base)
	// Second sector of the same block reuses the MSHR entry (no new entry).
	if got := c.Read(base + memdef.SectorSize); got != MissNew {
		t.Fatalf("got %v, want miss-new", got)
	}
	if c.MSHRsInUse() != 1 {
		t.Fatalf("MSHRsInUse = %d, want 1", c.MSHRsInUse())
	}
}

func TestMSHRExhaustion(t *testing.T) {
	c := New(smallConfig()) // 8 MSHRs
	for i := 0; i < 8; i++ {
		if got := c.Read(memdef.Addr(i * memdef.BlockSize)); got != MissNew {
			t.Fatalf("miss %d = %v", i, got)
		}
	}
	if !c.MSHRFull() {
		t.Fatal("MSHRFull should be true")
	}
	if got := c.Read(memdef.Addr(100 * memdef.BlockSize)); got != Blocked {
		t.Fatalf("got %v, want blocked", got)
	}
	// Draining one entry unblocks.
	c.Fill(memdef.Addr(0))
	if got := c.Read(memdef.Addr(100 * memdef.BlockSize)); got != MissNew {
		t.Fatalf("after drain got %v, want miss-new", got)
	}
}

func TestWriteNoFetch(t *testing.T) {
	c := New(smallConfig())
	addr := memdef.Addr(0x5000)
	out, wb := c.Write(addr)
	if out != MissNew || len(wb) != 0 {
		t.Fatalf("write miss = %v wb=%v", out, wb)
	}
	// The written sector is now a hit for reads (valid+dirty).
	if got := c.Read(addr); got != Hit {
		t.Fatalf("read after write = %v, want hit", got)
	}
	if c.DirtySectorCount() != 1 {
		t.Fatalf("dirty sectors = %d, want 1", c.DirtySectorCount())
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	cfg := smallConfig() // 4 sets, 4 ways
	c := New(cfg)
	sets := cfg.SizeBytes / memdef.BlockSize / cfg.Ways
	// Fill one set with dirty lines: blocks mapping to set 0.
	stride := memdef.Addr(sets * memdef.BlockSize)
	for i := 0; i < cfg.Ways; i++ {
		c.Write(memdef.Addr(i) * stride)
	}
	// Next allocation in set 0 evicts the LRU dirty line.
	out, wb := c.Write(memdef.Addr(cfg.Ways) * stride)
	if out != MissNew {
		t.Fatalf("out = %v", out)
	}
	if len(wb) != 1 {
		t.Fatalf("writebacks = %v, want 1", wb)
	}
	if wb[0].BlockAddr != 0 {
		t.Errorf("evicted block = %#x, want 0 (LRU)", uint64(wb[0].BlockAddr))
	}
	if wb[0].DirtySectors() != 1 {
		t.Errorf("dirty sectors in wb = %d, want 1", wb[0].DirtySectors())
	}
}

func TestLRUOrder(t *testing.T) {
	cfg := smallConfig()
	c := New(cfg)
	sets := cfg.SizeBytes / memdef.BlockSize / cfg.Ways
	stride := memdef.Addr(sets * memdef.BlockSize)
	for i := 0; i < cfg.Ways; i++ {
		c.Read(memdef.Addr(i) * stride)
		c.Fill(memdef.Addr(i) * stride)
	}
	// Touch block 0 so block 1 becomes LRU.
	if got := c.Read(0); got != Hit {
		t.Fatal("block 0 should hit")
	}
	c.Read(memdef.Addr(cfg.Ways) * stride)
	_, _ = c.Fill(memdef.Addr(cfg.Ways) * stride)
	// Block 1 must have been evicted; block 0 must survive.
	if got := c.Read(0); got != Hit {
		t.Error("block 0 was evicted despite being MRU")
	}
	if got := c.Read(1 * stride); got == Hit {
		t.Error("block 1 should have been evicted as LRU")
	}
}

func TestFillWithoutMSHRInstalls(t *testing.T) {
	c := New(smallConfig())
	addr := memdef.Addr(0x7000)
	wb, waiters := c.Fill(addr)
	if waiters != 0 || len(wb) != 0 {
		t.Fatalf("waiters=%d wb=%v", waiters, wb)
	}
	if got := c.Read(addr); got != Hit {
		t.Fatalf("prefetch-style fill not visible: %v", got)
	}
}

func TestCleanInvalidate(t *testing.T) {
	c := New(smallConfig())
	addr := memdef.Addr(0x100)
	c.Write(addr)
	c.CleanInvalidate(addr)
	if c.Probe(addr) {
		t.Fatal("sector still present after CleanInvalidate")
	}
	if c.DirtySectorCount() != 0 {
		t.Fatal("dirty bits not cleared")
	}
}

func TestFlushAll(t *testing.T) {
	c := New(smallConfig())
	c.Write(0x000)
	c.Write(0x480) // different block, different sector
	wbs := c.FlushAll()
	if len(wbs) != 2 {
		t.Fatalf("flush writebacks = %d, want 2", len(wbs))
	}
	if c.ValidSectorCount() != 0 {
		t.Fatal("cache not empty after flush")
	}
	if got := c.Read(0x000); got != MissNew {
		t.Fatalf("read after flush = %v", got)
	}
}

func TestFlushPanicsWithOutstandingMSHRs(t *testing.T) {
	c := New(smallConfig())
	c.Read(0x1000)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.FlushAll()
}

func TestProbeDoesNotTouchStats(t *testing.T) {
	c := New(smallConfig())
	c.Probe(0x1000)
	if c.Stats.Accesses() != 0 {
		t.Fatal("Probe should not count as access")
	}
}

// Reference model: a map of present/dirty sectors with unlimited
// associativity is too permissive, so instead we check invariants under
// random operation sequences.
func TestRandomizedInvariants(t *testing.T) {
	cfg := Config{Name: "rnd", SizeBytes: 1024, Ways: 2, MSHRs: 4, MaxMergesPerMSHR: 2}
	c := New(cfg)
	rng := rand.New(rand.NewSource(7))
	pending := make(map[memdef.Addr]bool) // sector addresses being fetched
	held := 0
	maxSectors := cfg.SizeBytes / memdef.SectorSize
	for i := 0; i < 20000; i++ {
		addr := memdef.Addr(rng.Intn(64)) * memdef.SectorSize
		switch rng.Intn(3) {
		case 0:
			out := c.Read(addr)
			switch out {
			case MissNew:
				if pending[addr] {
					t.Fatalf("MissNew for already-pending sector %#x", uint64(addr))
				}
				pending[addr] = true
			case MissMerged:
				if !pending[addr] {
					t.Fatalf("MissMerged without pending fetch %#x", uint64(addr))
				}
			case Hit:
				if pending[addr] {
					// A fill may have installed the sector via another
					// path (write), which is fine.
					_ = held
				}
			}
		case 1:
			c.Write(addr)
		case 2:
			if len(pending) > 0 {
				// Fill a random pending sector.
				for a := range pending {
					c.Fill(a)
					delete(pending, a)
					break
				}
			}
		}
		if got := c.ValidSectorCount(); got > maxSectors {
			t.Fatalf("valid sectors %d exceed capacity %d", got, maxSectors)
		}
		if c.MSHRsInUse() > cfg.MSHRs {
			t.Fatalf("MSHRs in use %d exceed %d", c.MSHRsInUse(), cfg.MSHRs)
		}
	}
}

func TestDirtyNeverExceedsValid(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{Name: "q", SizeBytes: 512, Ways: 2, MSHRs: 4, MaxMergesPerMSHR: 2})
		for _, op := range ops {
			addr := memdef.Addr(op%128) * memdef.SectorSize
			if op&0x8000 != 0 {
				c.Write(addr)
			} else {
				if c.Read(addr) == MissNew {
					c.Fill(addr)
				}
			}
			if c.DirtySectorCount() > c.ValidSectorCount() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{Hit: "hit", MissNew: "miss-new", MissMerged: "miss-merged", Blocked: "blocked"} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
}
