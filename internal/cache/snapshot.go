package cache

import (
	"fmt"

	"shmgpu/internal/flatmap"
	"shmgpu/internal/snapshot"
)

// Checkpoint/restore. The restore target must already be a cache built by
// New with the identical configuration — the snapshot carries the config
// for validation only, never to reconstruct geometry. wbScratch is not
// serialized: its contents are only valid between a Write/Fill call and
// the caller consuming the returned slice, and no snapshot is ever taken
// inside that window. Cold path only.

// SaveState writes the cache's mutable state.
func (c *Cache) SaveState(e *snapshot.Encoder) {
	e.String(c.cfg.Name)
	e.Int(c.cfg.SizeBytes)
	e.Int(c.cfg.Ways)
	e.Int(c.cfg.MSHRs)
	e.Int(c.cfg.MaxMergesPerMSHR)
	e.Int(len(c.lines))
	for i := range c.lines {
		ln := &c.lines[i]
		e.U64(ln.tag)
		e.U8(ln.valid)
		e.U8(ln.dirty)
		e.U64(ln.lru)
		e.Bool(ln.used)
	}
	flatmap.SaveMap(e, &c.mshrs, func(e *snapshot.Encoder, m *mshr) {
		e.U8(m.pending)
		e.Int(m.merges)
	})
	e.U64(c.lruClock)
	c.Stats.SaveState(e)
}

// LoadState restores state saved by SaveState into a same-configured
// cache, erroring on any configuration or geometry mismatch.
func (c *Cache) LoadState(d *snapshot.Decoder) error {
	name := d.String()
	size := d.Int()
	ways := d.Int()
	mshrs := d.Int()
	merges := d.Int()
	nLines := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if name != c.cfg.Name || size != c.cfg.SizeBytes || ways != c.cfg.Ways ||
		mshrs != c.cfg.MSHRs || merges != c.cfg.MaxMergesPerMSHR {
		return fmt.Errorf("cache %s: snapshot was taken with config {%s %d %d %d %d}, this cache has {%s %d %d %d %d}",
			c.cfg.Name, name, size, ways, mshrs, merges,
			c.cfg.Name, c.cfg.SizeBytes, c.cfg.Ways, c.cfg.MSHRs, c.cfg.MaxMergesPerMSHR)
	}
	if nLines != len(c.lines) {
		return fmt.Errorf("cache %s: snapshot has %d lines, this cache has %d", c.cfg.Name, nLines, len(c.lines))
	}
	for i := range c.lines {
		ln := &c.lines[i]
		ln.tag = d.U64()
		ln.valid = d.U8()
		ln.dirty = d.U8()
		ln.lru = d.U64()
		ln.used = d.Bool()
	}
	err := flatmap.LoadMap(d, &c.mshrs, func(d *snapshot.Decoder, m *mshr) {
		m.pending = d.U8()
		m.merges = d.Int()
	})
	if err != nil {
		return err
	}
	c.lruClock = d.U64()
	c.Stats.LoadState(d)
	return d.Err()
}
