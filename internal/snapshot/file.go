package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// FormatVersion is the on-disk snapshot format version. It is bumped on
// every incompatible change to any serialized layout; ReadFile rejects
// other versions with ErrVersion so a stale binary can never misparse a
// newer snapshot (or vice versa) into silently wrong simulator state.
// Version 2: hostmem tier gained prefetch/batch/sub-page state and the
// telemetry collector a prefetch batch-size histogram.
const FormatVersion = 2

// magic identifies a shmgpu snapshot file.
var magic = [8]byte{'S', 'H', 'M', 'S', 'N', 'A', 'P', 0}

// headerLen is magic(8) + version(4) + payloadLen(8) + checksum(8).
const headerLen = 28

var (
	// ErrVersion marks a snapshot written by a different format version.
	ErrVersion = errors.New("snapshot: format version mismatch")
	// ErrCorrupt marks a truncated or corrupted snapshot container
	// (bad magic, length mismatch, or checksum failure).
	ErrCorrupt = errors.New("snapshot: corrupt or truncated snapshot")
)

// Checksum returns the FNV-1a hash of the payload, the content checksum
// stored in the file header.
func Checksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// Pack wraps a payload in the versioned, checksummed container.
func Pack(payload []byte) []byte {
	out := make([]byte, headerLen, headerLen+len(payload))
	copy(out, magic[:])
	binary.LittleEndian.PutUint32(out[8:12], FormatVersion)
	binary.LittleEndian.PutUint64(out[12:20], uint64(len(payload)))
	binary.LittleEndian.PutUint64(out[20:28], Checksum(payload))
	return append(out, payload...)
}

// Unpack validates the container and returns the payload. Version skew
// reports ErrVersion; any other container damage (magic, length,
// checksum) reports ErrCorrupt. Both are wrapped, so errors.Is works.
func Unpack(data []byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(data), headerLen)
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:8])
	}
	v := binary.LittleEndian.Uint32(data[8:12])
	if v != FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, this binary supports %d", ErrVersion, v, FormatVersion)
	}
	want := binary.LittleEndian.Uint64(data[12:20])
	payload := data[headerLen:]
	if uint64(len(payload)) != want {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrCorrupt, len(payload), want)
	}
	if got, sum := Checksum(payload), binary.LittleEndian.Uint64(data[20:28]); got != sum {
		return nil, fmt.Errorf("%w: checksum %#x, header says %#x", ErrCorrupt, got, sum)
	}
	return payload, nil
}

// WriteFile writes the packed payload to path atomically: the container is
// written to a temp file in the same directory, synced, and renamed into
// place. A process killed mid-write leaves at most a temp file behind,
// never a partially written snapshot at path — and even a torn rename or
// truncated disk write is caught by the length and checksum checks on
// load.
func WriteFile(path string, payload []byte) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(Pack(payload)); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// ReadFile reads and validates a snapshot file, returning its payload.
func ReadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	payload, err := Unpack(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return payload, nil
}
