package snapshot

import (
	"fmt"
	"math"
)

// Decoder reads the fixed-width values written by Encoder, in order, with a
// sticky error: after the first failure every further read returns the zero
// value, so callers can decode a whole section and check Err once. Callers
// performing semantic validation (config identity, slot bounds) report
// their own errors or use Failf to poison the decoder.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over payload.
func NewDecoder(payload []byte) *Decoder {
	return &Decoder{buf: payload}
}

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread payload bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Failf poisons the decoder with a formatted error unless one is already
// set. Loaders use it for semantic failures (bad slot index, negative
// length) so one error path covers both truncation and corruption.
func (d *Decoder) Failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("snapshot: truncated payload reading %s at offset %d", what, d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2, "u16")
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// I32 reads an int32.
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// I16 reads an int16.
func (d *Decoder) I16() int16 { return int16(d.U16()) }

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Int()
	if n < 0 {
		d.Failf("negative string length %d at offset %d", n, d.off)
		return ""
	}
	b := d.take(n, "string")
	return string(b)
}

// Bytes reads a length-prefixed byte slice (a copy of the payload bytes).
func (d *Decoder) Bytes() []byte {
	n := d.Int()
	if n < 0 {
		d.Failf("negative bytes length %d at offset %d", n, d.off)
		return nil
	}
	b := d.take(n, "bytes")
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Len reads a length written by Encoder.Int and rejects negative or
// absurdly large values (larger than the remaining payload could possibly
// hold at one byte per element), so corrupt lengths fail cleanly instead
// of driving huge allocations.
func (d *Decoder) Len() int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > len(d.buf)-d.off+1 {
		d.Failf("implausible length %d at offset %d (%d bytes remain)", n, d.off, len(d.buf)-d.off)
		return 0
	}
	return n
}
