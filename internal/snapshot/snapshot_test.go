package snapshot

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U8(0xAB)
	e.U16(0xBEEF)
	e.U32(0xDEADBEEF)
	e.U64(^uint64(0))
	e.I64(-42)
	e.I32(-7)
	e.I16(-3)
	e.Int(-123456789)
	e.Bool(true)
	e.Bool(false)
	e.F64(math.Pi)
	e.String("hello, снимок")
	e.Bytes([]byte{1, 2, 3})
	e.Bytes(nil)

	d := NewDecoder(e.Data())
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if got := d.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != ^uint64(0) {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.I32(); got != -7 {
		t.Errorf("I32 = %d", got)
	}
	if got := d.I16(); got != -3 {
		t.Errorf("I16 = %d", got)
	}
	if got := d.Int(); got != -123456789 {
		t.Errorf("Int = %d", got)
	}
	if got := d.Bool(); !got {
		t.Errorf("Bool#1 = %v", got)
	}
	if got := d.Bool(); got {
		t.Errorf("Bool#2 = %v", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.String(); got != "hello, снимок" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.Bytes(); len(got) != 0 {
		t.Errorf("nil Bytes = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d", d.Remaining())
	}
}

func TestDecoderStickyTruncation(t *testing.T) {
	e := NewEncoder()
	e.U64(7)
	d := NewDecoder(e.Data())
	_ = d.U64()
	_ = d.U64() // past the end
	if d.Err() == nil {
		t.Fatal("expected truncation error")
	}
	first := d.Err()
	_ = d.U32()
	_ = d.String()
	if d.Err() != first {
		t.Fatal("error is not sticky")
	}
	if got := d.U64(); got != 0 {
		t.Fatalf("poisoned read = %d, want 0", got)
	}
}

func TestDecoderFailf(t *testing.T) {
	d := NewDecoder(nil)
	d.Failf("bad slot %d", 9)
	if d.Err() == nil || d.Err().Error() != "snapshot: bad slot 9" {
		t.Fatalf("Failf err = %v", d.Err())
	}
	d.Failf("second")
	if d.Err().Error() != "snapshot: bad slot 9" {
		t.Fatal("Failf overwrote the first error")
	}
}

func TestDecoderLenRejectsImplausible(t *testing.T) {
	e := NewEncoder()
	e.Int(1 << 40)
	d := NewDecoder(e.Data())
	if got := d.Len(); got != 0 || d.Err() == nil {
		t.Fatalf("Len = %d, err = %v; want 0 and an error", got, d.Err())
	}
	e2 := NewEncoder()
	e2.Int(-1)
	d2 := NewDecoder(e2.Data())
	if got := d2.Len(); got != 0 || d2.Err() == nil {
		t.Fatalf("negative Len = %d, err = %v", got, d2.Err())
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	payload := []byte("simulator state goes here")
	got, err := Unpack(Pack(payload))
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q", got)
	}
	// Empty payload is legal.
	if _, err := Unpack(Pack(nil)); err != nil {
		t.Fatalf("empty payload: %v", err)
	}
}

func TestUnpackRejectsDamage(t *testing.T) {
	packed := Pack([]byte("payload"))

	// Truncated: every prefix must fail with ErrCorrupt, never load.
	for n := 0; n < len(packed); n++ {
		if _, err := Unpack(packed[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}

	// Flipped payload byte: checksum failure.
	flipped := append([]byte(nil), packed...)
	flipped[len(flipped)-1] ^= 0xFF
	if _, err := Unpack(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt payload: err = %v, want ErrCorrupt", err)
	}

	// Bad magic.
	badMagic := append([]byte(nil), packed...)
	badMagic[0] = 'X'
	if _, err := Unpack(badMagic); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}
}

func TestUnpackRejectsVersionSkew(t *testing.T) {
	packed := Pack([]byte("payload"))
	skewed := append([]byte(nil), packed...)
	binary.LittleEndian.PutUint32(skewed[8:12], FormatVersion+1)
	_, err := Unpack(skewed)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: err = %v, want ErrVersion", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("version skew must not also read as corruption")
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	payload := []byte("on-disk state")
	if err := WriteFile(path, payload); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q", got)
	}
	// No temp files left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want just the snapshot", len(ents))
	}
}

// TestMidWriteKillNeverLoadable simulates a process killed mid-write (the
// watchdog-cancel scenario): any prefix of the container present at the
// target path must fail ReadFile cleanly rather than restore partial
// state.
func TestMidWriteKillNeverLoadable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	packed := Pack([]byte("state that must never load partially"))
	for n := 0; n < len(packed); n++ {
		if err := os.WriteFile(path, packed[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFile(path); err == nil {
			t.Fatalf("prefix of %d bytes loaded successfully", n)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.snap")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
