// Package snapshot implements the deterministic, versioned binary
// serialization format used to checkpoint and fork complete simulator
// state. The format is a flat little-endian byte stream with no
// self-description: every reader must consume exactly the fields the
// writer produced, in the same order, which is enforced end-to-end by the
// fork-vs-scratch byte-equality tests rather than by per-field tags.
//
// The file container (file.go) wraps a payload with a magic string, an
// explicit format version, the payload length, and an FNV-1a content
// checksum, and writes via atomic temp-file rename so a partially written
// snapshot is never loadable.
//
// Everything in this package is cold-path code: serialization happens at
// most once per fork, never per simulated cycle.
package snapshot

import "math"

// Encoder appends fixed-width little-endian values to a growing buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with a reasonable initial capacity.
func NewEncoder() *Encoder {
	return &Encoder{buf: make([]byte, 0, 1<<16)}
}

// Data returns the encoded payload.
func (e *Encoder) Data() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 writes one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 writes a little-endian uint16.
func (e *Encoder) U16(v uint16) {
	e.buf = append(e.buf, byte(v), byte(v>>8))
}

// U32 writes a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 writes a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 writes an int64 as its two's-complement uint64 image.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// I32 writes an int32 as its two's-complement uint32 image.
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// I16 writes an int16 as its two's-complement uint16 image.
func (e *Encoder) I16(v int16) { e.U16(uint16(v)) }

// Int writes an int as a 64-bit value.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool writes a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 writes a float64 as its IEEE-754 bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// Bytes writes a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.Int(len(b))
	e.buf = append(e.buf, b...)
}
