// Package testutil is the byte-compare harness shared by the
// equivalence test corpora (fast-forward, parallel shards,
// checkpoint/fork, UVM migration): it runs one instrumented cell and
// renders everything observable about it — the full Result fields, the
// marshaled stats registry, and the telemetry JSONL stream — into a
// directly diffable Artifacts value. Two runs are "byte-identical" in
// the repo's sense exactly when their Artifacts compare equal.
package testutil

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"shmgpu"
	"shmgpu/internal/telemetry"
)

// Artifacts is everything observable about one run: the rendered Result
// fields, the marshaled stats registry, and the JSONL telemetry stream.
type Artifacts struct {
	Result   string
	Snapshot []byte
	JSONL    []byte
}

// manifestTool is the fixed Manifest.Tool the corpora stamp their JSONL
// with; it predates the extraction of this package and stays unchanged
// so streams remain comparable across the corpora.
const manifestTool = "fastforward-test"

// QuickTelemetry is the collector configuration every corpus runs
// under: a sampled timeline plus captured lifecycle events, so the
// byte-compare covers counters, histograms, samples, and the trace.
func QuickTelemetry() shmgpu.TelemetryConfig {
	return shmgpu.TelemetryConfig{SampleInterval: 500, CaptureEvents: true}
}

// RenderResult renders the Result value fields (the Result carries the
// registry pointer, so the struct itself cannot be compared directly).
func RenderResult(res shmgpu.Result) string {
	return fmt.Sprintf(
		"cycles=%d insts=%d traffic=%+v l1=%+v l2=%+v ctr=%+v mac=%+v bmt=%+v ro=%+v stream=%+v bus=%.9f victim=%d/%d completed=%v",
		res.Cycles, res.Instructions, res.Traffic, res.L1, res.L2,
		res.Ctr, res.MAC, res.BMT, res.ROAccuracy, res.StreamAccuracy,
		res.BusUtilization, res.VictimHits, res.VictimPushes, res.Completed)
}

// Collect renders one finished run (result + collector) into its
// byte-comparable artifact set. cfg must be the configuration the run
// executed under (it stamps the JSONL manifest).
func Collect(t testing.TB, cfg shmgpu.Config, workload, scheme string, seed int64, res shmgpu.Result, col *shmgpu.Collector) Artifacts {
	t.Helper()
	snap, err := json.Marshal(res.Reg.Snapshot())
	if err != nil {
		t.Fatalf("marshaling snapshot: %v", err)
	}
	m := shmgpu.Manifest{
		Tool:          manifestTool,
		SchemaVersion: telemetry.SchemaVersion,
		Workload:      workload,
		Scheme:        scheme,
		SMs:           cfg.SMs,
		Partitions:    cfg.Partitions,
		Seed:          seed,
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, col, shmgpu.Summarize(res), m); err != nil {
		t.Fatalf("writing JSONL: %v", err)
	}
	return Artifacts{Result: RenderResult(res), Snapshot: snap, JSONL: buf.Bytes()}
}

// RunCellCfg executes one instrumented cell under an explicit
// configuration and returns its artifact set. The corpora that sweep
// UVM oversubscription (or any other config axis) enter here.
func RunCellCfg(t testing.TB, cfg shmgpu.Config, workload, scheme string, seed int64) Artifacts {
	t.Helper()
	res, col, err := shmgpu.RunWithTelemetrySeeded(cfg, workload, scheme, seed, QuickTelemetry())
	if err != nil {
		t.Fatalf("run %s/%s seed %d (shards=%d disableFF=%v): %v",
			workload, scheme, seed, cfg.ParallelShards, cfg.DisableFastForward, err)
	}
	return Collect(t, cfg, workload, scheme, seed, res, col)
}

// RunCell executes one quick-config cell with the given shard count
// (0 = sequential) and fast-forward mode — the shared artifact
// collector behind the fast-forward, parallel, and fork corpora.
func RunCell(t testing.TB, workload, scheme string, seed int64, shards int, disableFF bool) Artifacts {
	t.Helper()
	cfg := shmgpu.QuickConfig()
	cfg.DisableFastForward = disableFF
	cfg.ParallelShards = shards
	return RunCellCfg(t, cfg, workload, scheme, seed)
}

// AssertEqual fails the test with a field-by-field diff when the two
// artifact sets differ. aName/bName label the sides in the failure
// output ("fast-forward" vs "every-cycle", "forked" vs "scratch", ...).
func AssertEqual(t testing.TB, aName string, a Artifacts, bName string, b Artifacts) {
	t.Helper()
	if a.Result != b.Result {
		t.Errorf("Result diverges:\n%s: %s\n%s: %s", aName, a.Result, bName, b.Result)
	}
	if !bytes.Equal(a.Snapshot, b.Snapshot) {
		t.Errorf("stats snapshots diverge:\n%s: %s\n%s: %s", aName, a.Snapshot, bName, b.Snapshot)
	}
	if !bytes.Equal(a.JSONL, b.JSONL) {
		t.Errorf("telemetry JSONL diverges (%s: %d bytes, %s: %d bytes)", aName, len(a.JSONL), bName, len(b.JSONL))
	}
}
