// Package cryptoengine implements the functional cryptography used by the
// secure-memory designs: counter-mode (AES-CTR) encryption with
// split-counter seeds, the shared-counter seed variant for read-only
// regions (paper Fig. 3), stateful truncated MACs, per-chunk MAC
// composition for the dual-granularity MAC scheme, and the node hash for
// the Bonsai Merkle Tree.
//
// The engine operates on partition-local addresses, as all security
// metadata in this design is constructed from local addresses (PSSM).
// Encryption is real AES-128; MACs are HMAC-SHA-256 truncated to 64 bits,
// the paper's 8 B MAC size (§III-C shows ≥50 bits are needed for
// birthday-bound collision resistance over a 4 GB memory).
package cryptoengine

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"shmgpu/internal/memdef"
)

// MACSize is the MAC size in bytes (both per-block and per-chunk).
const MACSize = 8

// KeyTuple is the (K1, K2, K3) key tuple the command processor's key
// generator produces at GPU context initialization: K1 for memory
// encryption, K2 for memory integrity (MACs), K3 for the integrity tree.
type KeyTuple struct {
	K1 [16]byte
	K2 [16]byte
	K3 [16]byte
}

// DeriveKeys deterministically expands a context seed into a key tuple.
// Production hardware would use a DRBG seeded from a hardware entropy
// source; derivation from a seed keeps simulations reproducible while
// exercising identical code paths.
func DeriveKeys(contextSeed uint64) KeyTuple {
	var kt KeyTuple
	expand := func(label byte, dst *[16]byte) {
		h := sha256.New()
		var buf [9]byte
		binary.LittleEndian.PutUint64(buf[:8], contextSeed)
		buf[8] = label
		h.Write(buf[:])
		copy(dst[:], h.Sum(nil)[:16])
	}
	expand(1, &kt.K1)
	expand(2, &kt.K2)
	expand(3, &kt.K3)
	return kt
}

// Seed is the encryption seed fed to the AES engine for one 128 B block
// (paper Fig. 3). For not-read-only data it carries the split counters
// (major+minor); for read-only data the major counter is replaced by the
// on-chip shared counter and the minor counter is the zero padding value.
type Seed struct {
	// Local is the partition-local block address (spatial uniqueness).
	Local memdef.Addr
	// Partition disambiguates identical local addresses across partitions.
	Partition uint8
	// Major is the major counter (or the shared counter for read-only).
	Major uint64
	// Minor is the per-block minor counter (0 for read-only blocks).
	Minor uint16
}

// ReadOnlySeed builds the seed used for blocks inside read-only regions:
// shared counter as major, zero-padded minor.
func ReadOnlySeed(local memdef.Addr, partition uint8, shared uint64) Seed {
	return Seed{Local: memdef.BlockAddr(local), Partition: partition, Major: shared, Minor: 0}
}

// Engine holds the keyed primitives for one GPU security context.
type Engine struct {
	keys   KeyTuple
	aesK1  cipher.Block
	macKey []byte
	bmtKey []byte
}

// New builds an engine from a key tuple.
func New(keys KeyTuple) *Engine {
	blk, err := aes.NewCipher(keys.K1[:])
	if err != nil {
		// aes.NewCipher only fails on bad key length; K1 is fixed 16 B.
		panic(fmt.Sprintf("cryptoengine: %v", err))
	}
	return &Engine{
		keys:   keys,
		aesK1:  blk,
		macKey: append([]byte(nil), keys.K2[:]...),
		bmtKey: append([]byte(nil), keys.K3[:]...),
	}
}

// Keys returns the engine's key tuple.
func (e *Engine) Keys() KeyTuple { return e.keys }

// OTP fills pad with the one-time pad for one 128 B block under seed s.
// A 128 B cache line is broken into eight 16 B chunks; each chunk's pad is
// AES_K1(major ∥ minor ∥ local block address ∥ partition ∥ chunk id),
// matching the paper's seed layout where the chunk id (CID) provides
// spatial uniqueness within the line.
func (e *Engine) OTP(s Seed, pad *[memdef.BlockSize]byte) {
	var in [16]byte
	binary.LittleEndian.PutUint64(in[0:8], s.Major)
	binary.LittleEndian.PutUint16(in[8:10], s.Minor)
	// 34 bits of local block id is plenty for 4 GB/partition.
	blockID := uint32(uint64(memdef.BlockAddr(s.Local)) / memdef.BlockSize)
	binary.LittleEndian.PutUint32(in[10:14], blockID)
	in[14] = s.Partition
	for chunk := 0; chunk < memdef.BlockSize/16; chunk++ {
		in[15] = byte(chunk)
		e.aesK1.Encrypt(pad[chunk*16:(chunk+1)*16], in[:])
	}
}

// EncryptBlock counter-mode-encrypts a 128 B plaintext block into dst.
// dst and src may alias. Decryption is the same operation (XOR with OTP).
func (e *Engine) EncryptBlock(dst, src []byte, s Seed) {
	if len(dst) < memdef.BlockSize || len(src) < memdef.BlockSize {
		panic("cryptoengine: EncryptBlock needs full 128 B blocks")
	}
	var pad [memdef.BlockSize]byte
	e.OTP(s, &pad)
	for i := 0; i < memdef.BlockSize; i++ {
		dst[i] = src[i] ^ pad[i]
	}
}

// DecryptBlock is the inverse of EncryptBlock (identical XOR operation,
// named for call-site clarity).
func (e *Engine) DecryptBlock(dst, src []byte, s Seed) { e.EncryptBlock(dst, src, s) }

// BlockMAC computes the stateful 8 B MAC over one 128 B ciphertext block.
// Stateful MACs (Rogers et al.) include the block's encryption counters and
// address in the MAC input, so a swapped or stale ciphertext cannot carry
// its MAC along.
func (e *Engine) BlockMAC(ciphertext []byte, s Seed) uint64 {
	if len(ciphertext) < memdef.BlockSize {
		panic("cryptoengine: BlockMAC needs a full 128 B block")
	}
	mac := hmac.New(sha256.New, e.macKey)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(memdef.BlockAddr(s.Local)))
	binary.LittleEndian.PutUint64(hdr[8:16], s.Major)
	mac.Write(hdr[:])
	var minor [2]byte
	binary.LittleEndian.PutUint16(minor[:], s.Minor)
	mac.Write(minor[:])
	mac.Write([]byte{s.Partition})
	mac.Write(ciphertext[:memdef.BlockSize])
	return binary.LittleEndian.Uint64(mac.Sum(nil)[:MACSize])
}

// ChunkMAC composes the coarse-grain per-chunk MAC from the 32 per-block
// MACs of one 4 KB chunk (paper §IV-A: "per-chunk MAC, which is produced
// by hashing the per block MAC within this chunk").
func (e *Engine) ChunkMAC(localChunk memdef.Addr, partition uint8, blockMACs []uint64) uint64 {
	if len(blockMACs) != memdef.BlocksPerChunk {
		panic(fmt.Sprintf("cryptoengine: ChunkMAC needs %d block MACs, got %d", memdef.BlocksPerChunk, len(blockMACs)))
	}
	mac := hmac.New(sha256.New, e.macKey)
	var hdr [9]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(memdef.ChunkAddr(localChunk)))
	hdr[8] = partition
	mac.Write(hdr[:])
	var buf [8]byte
	for _, bm := range blockMACs {
		binary.LittleEndian.PutUint64(buf[:], bm)
		mac.Write(buf[:])
	}
	return binary.LittleEndian.Uint64(mac.Sum(nil)[:MACSize])
}

// NodeHash computes the 8 B BMT node hash over a child node's raw bytes,
// keyed with K3 and bound to the child's metadata address so subtree
// splicing is detected.
func (e *Engine) NodeHash(childAddr memdef.Addr, partition uint8, child []byte) uint64 {
	mac := hmac.New(sha256.New, e.bmtKey)
	var hdr [9]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(childAddr))
	hdr[8] = partition
	mac.Write(hdr[:])
	mac.Write(child)
	return binary.LittleEndian.Uint64(mac.Sum(nil)[:MACSize])
}
