package cryptoengine

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"shmgpu/internal/memdef"
)

func testEngine() *Engine { return New(DeriveKeys(0xC0FFEE)) }

func randomBlock(rng *rand.Rand) []byte {
	b := make([]byte, memdef.BlockSize)
	rng.Read(b)
	return b
}

func TestDeriveKeysDeterministicAndDistinct(t *testing.T) {
	a := DeriveKeys(1)
	b := DeriveKeys(1)
	c := DeriveKeys(2)
	if a != b {
		t.Fatal("same seed produced different keys")
	}
	if a == c {
		t.Fatal("different seeds produced identical key tuples")
	}
	if a.K1 == a.K2 || a.K2 == a.K3 || a.K1 == a.K3 {
		t.Fatal("key tuple components must differ")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := testEngine()
	rng := rand.New(rand.NewSource(1))
	f := func(major uint64, minor uint16, blockIdx uint32, part uint8) bool {
		s := Seed{Local: memdef.Addr(blockIdx) * memdef.BlockSize, Partition: part % 12, Major: major, Minor: minor}
		pt := randomBlock(rng)
		ct := make([]byte, memdef.BlockSize)
		e.EncryptBlock(ct, pt, s)
		if bytes.Equal(ct, pt) {
			return false // encryption must change the data
		}
		back := make([]byte, memdef.BlockSize)
		e.DecryptBlock(back, ct, s)
		return bytes.Equal(back, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOTPUniquenessAcrossSeedComponents(t *testing.T) {
	e := testEngine()
	base := Seed{Local: 0x1000, Partition: 3, Major: 7, Minor: 9}
	var p0 [memdef.BlockSize]byte
	e.OTP(base, &p0)

	variants := []Seed{
		{Local: 0x1080, Partition: 3, Major: 7, Minor: 9},  // different block
		{Local: 0x1000, Partition: 4, Major: 7, Minor: 9},  // different partition
		{Local: 0x1000, Partition: 3, Major: 8, Minor: 9},  // major bump
		{Local: 0x1000, Partition: 3, Major: 7, Minor: 10}, // minor bump
	}
	for i, s := range variants {
		var p [memdef.BlockSize]byte
		e.OTP(s, &p)
		if bytes.Equal(p[:], p0[:]) {
			t.Errorf("variant %d produced identical pad — counter reuse", i)
		}
	}
}

func TestOTPChunksDifferWithinBlock(t *testing.T) {
	// The 8 16-byte AES outputs within one block pad must all differ
	// (the CID gives spatial uniqueness inside the line).
	e := testEngine()
	var pad [memdef.BlockSize]byte
	e.OTP(Seed{Local: 0, Major: 1}, &pad)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if bytes.Equal(pad[i*16:(i+1)*16], pad[j*16:(j+1)*16]) {
				t.Fatalf("pad chunks %d and %d identical", i, j)
			}
		}
	}
}

func TestReadOnlySeed(t *testing.T) {
	s := ReadOnlySeed(0x12345, 5, 42)
	if s.Minor != 0 {
		t.Error("read-only seed must zero-pad the minor counter")
	}
	if s.Major != 42 {
		t.Error("read-only seed must carry the shared counter as major")
	}
	if s.Local != memdef.BlockAddr(0x12345) {
		t.Error("read-only seed must align to the block")
	}
}

func TestBlockMACDetectsTampering(t *testing.T) {
	e := testEngine()
	rng := rand.New(rand.NewSource(2))
	ct := randomBlock(rng)
	s := Seed{Local: 0x2000, Partition: 1, Major: 3, Minor: 4}
	m := e.BlockMAC(ct, s)

	// Single-bit flip anywhere must change the MAC.
	for _, bit := range []int{0, 7, 511, 1023} {
		mutated := append([]byte(nil), ct...)
		mutated[bit/8] ^= 1 << (bit % 8)
		if e.BlockMAC(mutated, s) == m {
			t.Errorf("bit flip at %d not detected", bit)
		}
	}
}

func TestBlockMACIsStateful(t *testing.T) {
	// The MAC must bind address and counters: the same ciphertext at a
	// different address or counter state must not verify (defeats
	// splicing and replay-with-MAC attacks).
	e := testEngine()
	rng := rand.New(rand.NewSource(3))
	ct := randomBlock(rng)
	s := Seed{Local: 0x3000, Partition: 2, Major: 10, Minor: 1}
	m := e.BlockMAC(ct, s)
	if e.BlockMAC(ct, Seed{Local: 0x3080, Partition: 2, Major: 10, Minor: 1}) == m {
		t.Error("MAC does not bind the address")
	}
	if e.BlockMAC(ct, Seed{Local: 0x3000, Partition: 3, Major: 10, Minor: 1}) == m {
		t.Error("MAC does not bind the partition")
	}
	if e.BlockMAC(ct, Seed{Local: 0x3000, Partition: 2, Major: 11, Minor: 1}) == m {
		t.Error("MAC does not bind the major counter")
	}
	if e.BlockMAC(ct, Seed{Local: 0x3000, Partition: 2, Major: 10, Minor: 2}) == m {
		t.Error("MAC does not bind the minor counter")
	}
}

func TestMACKeySeparation(t *testing.T) {
	// Different contexts (keys) must produce different MACs and pads.
	e1 := New(DeriveKeys(1))
	e2 := New(DeriveKeys(2))
	ct := make([]byte, memdef.BlockSize)
	s := Seed{Local: 0x100, Major: 1}
	if e1.BlockMAC(ct, s) == e2.BlockMAC(ct, s) {
		t.Error("MACs collide across contexts")
	}
	var p1, p2 [memdef.BlockSize]byte
	e1.OTP(s, &p1)
	e2.OTP(s, &p2)
	if bytes.Equal(p1[:], p2[:]) {
		t.Error("pads collide across contexts")
	}
}

func TestChunkMAC(t *testing.T) {
	e := testEngine()
	macs := make([]uint64, memdef.BlocksPerChunk)
	for i := range macs {
		macs[i] = uint64(i) * 0x9E3779B9
	}
	m := e.ChunkMAC(0x4000, 1, macs)

	// Changing any single block MAC changes the chunk MAC.
	for _, i := range []int{0, 15, 31} {
		mut := append([]uint64(nil), macs...)
		mut[i] ^= 1
		if e.ChunkMAC(0x4000, 1, mut) == m {
			t.Errorf("block MAC %d change not reflected in chunk MAC", i)
		}
	}
	// Chunk MAC binds the chunk address and partition.
	if e.ChunkMAC(0x5000, 1, macs) == m {
		t.Error("chunk MAC does not bind the chunk address")
	}
	if e.ChunkMAC(0x4000, 2, macs) == m {
		t.Error("chunk MAC does not bind the partition")
	}
}

func TestChunkMACWrongLengthPanics(t *testing.T) {
	e := testEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.ChunkMAC(0, 0, make([]uint64, 3))
}

func TestNodeHash(t *testing.T) {
	e := testEngine()
	child := make([]byte, memdef.BlockSize)
	h := e.NodeHash(0x8000, 0, child)
	child[0] ^= 1
	if e.NodeHash(0x8000, 0, child) == h {
		t.Error("node hash ignores child content")
	}
	child[0] ^= 1
	if e.NodeHash(0x8080, 0, child) == h {
		t.Error("node hash ignores child address")
	}
}

func TestEncryptBlockShortInputPanics(t *testing.T) {
	e := testEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.EncryptBlock(make([]byte, 10), make([]byte, 10), Seed{})
}

func TestBlockMACShortInputPanics(t *testing.T) {
	e := testEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.BlockMAC(make([]byte, 10), Seed{})
}

func TestCounterReuseProducesSamePad(t *testing.T) {
	// Documents WHY counters must never be reused: identical seeds give
	// identical pads, enabling known-plaintext attacks. The secure-memory
	// layers are responsible for never reusing a seed.
	e := testEngine()
	s := Seed{Local: 0x9000, Partition: 1, Major: 5, Minor: 7}
	var p1, p2 [memdef.BlockSize]byte
	e.OTP(s, &p1)
	e.OTP(s, &p2)
	if !bytes.Equal(p1[:], p2[:]) {
		t.Fatal("OTP must be deterministic for a fixed seed")
	}
}

func BenchmarkOTP(b *testing.B) {
	e := testEngine()
	var pad [memdef.BlockSize]byte
	for i := 0; i < b.N; i++ {
		e.OTP(Seed{Local: memdef.Addr(i) * memdef.BlockSize, Major: uint64(i)}, &pad)
	}
	b.SetBytes(memdef.BlockSize)
}

func BenchmarkBlockMAC(b *testing.B) {
	e := testEngine()
	ct := make([]byte, memdef.BlockSize)
	for i := 0; i < b.N; i++ {
		_ = e.BlockMAC(ct, Seed{Local: memdef.Addr(i) * memdef.BlockSize})
	}
	b.SetBytes(memdef.BlockSize)
}
