package stats

import "shmgpu/internal/snapshot"

// Checkpoint/restore for the counter types. All cold path.

// SaveState writes the per-class byte counters.
func (t *Traffic) SaveState(e *snapshot.Encoder) {
	for i := 0; i < NumTrafficClasses; i++ {
		e.U64(t.ReadBytes[i])
	}
	for i := 0; i < NumTrafficClasses; i++ {
		e.U64(t.WriteBytes[i])
	}
}

// LoadState restores counters saved by SaveState; check the decoder's Err
// after the containing section.
func (t *Traffic) LoadState(d *snapshot.Decoder) {
	for i := 0; i < NumTrafficClasses; i++ {
		t.ReadBytes[i] = d.U64()
	}
	for i := 0; i < NumTrafficClasses; i++ {
		t.WriteBytes[i] = d.U64()
	}
}

// SaveState writes the cache counters.
func (c *CacheStats) SaveState(e *snapshot.Encoder) {
	e.U64(c.Hits)
	e.U64(c.Misses)
	e.U64(c.MSHRMerges)
	e.U64(c.Evictions)
	e.U64(c.Writebacks)
	e.U64(c.SectorFills)
}

// LoadState restores counters saved by SaveState.
func (c *CacheStats) LoadState(d *snapshot.Decoder) {
	c.Hits = d.U64()
	c.Misses = d.U64()
	c.MSHRMerges = d.U64()
	c.Evictions = d.U64()
	c.Writebacks = d.U64()
	c.SectorFills = d.U64()
}

// SaveState writes the outcome breakdown.
func (p *PredictorStats) SaveState(e *snapshot.Encoder) {
	for i := range p.Counts {
		e.U64(p.Counts[i])
	}
}

// LoadState restores a breakdown saved by SaveState.
func (p *PredictorStats) LoadState(d *snapshot.Decoder) {
	for i := range p.Counts {
		p.Counts[i] = d.U64()
	}
}

// SaveState writes every counter in sorted-name order. Zero-valued
// counters are included: the key set itself is observable through
// Snapshot, so it must survive the round trip exactly.
func (r *Registry) SaveState(e *snapshot.Encoder) {
	snap := r.Snapshot()
	e.Int(len(snap))
	for _, cv := range snap {
		e.String(cv.Name)
		e.U64(cv.Value)
	}
}

// LoadState replaces r's counters with the saved set.
func (r *Registry) LoadState(d *snapshot.Decoder) error {
	n := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	r.counters = nil
	for i := 0; i < n; i++ {
		name := d.String()
		v := d.U64()
		if err := d.Err(); err != nil {
			return err
		}
		r.Add(name, v)
	}
	return nil
}
