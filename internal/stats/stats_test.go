package stats

import (
	"testing"
	"testing/quick"
)

func TestTrafficAccounting(t *testing.T) {
	var tr Traffic
	tr.AddRead(TrafficData, 128)
	tr.AddWrite(TrafficData, 32)
	tr.AddRead(TrafficCounter, 32)
	tr.AddRead(TrafficMAC, 32)
	tr.AddWrite(TrafficBMT, 32)
	tr.AddRead(TrafficMispredict, 64)

	if got := tr.DataBytes(); got != 160 {
		t.Errorf("DataBytes = %d, want 160", got)
	}
	if got := tr.MetadataBytes(); got != 160 {
		t.Errorf("MetadataBytes = %d, want 160", got)
	}
	if got := tr.TotalBytes(); got != 320 {
		t.Errorf("TotalBytes = %d, want 320", got)
	}
	if got := tr.OverheadRatio(); got != 1.0 {
		t.Errorf("OverheadRatio = %v, want 1.0", got)
	}
}

func TestTrafficOverheadZeroData(t *testing.T) {
	var tr Traffic
	tr.AddRead(TrafficMAC, 64)
	if got := tr.OverheadRatio(); got != 0 {
		t.Errorf("OverheadRatio with no data = %v, want 0", got)
	}
}

func TestTrafficMerge(t *testing.T) {
	var a, b Traffic
	a.AddRead(TrafficData, 100)
	b.AddRead(TrafficData, 50)
	b.AddWrite(TrafficMAC, 8)
	a.Merge(&b)
	if a.DataBytes() != 150 || a.Bytes(TrafficMAC) != 8 {
		t.Errorf("merge wrong: data=%d mac=%d", a.DataBytes(), a.Bytes(TrafficMAC))
	}
}

func TestTrafficClassString(t *testing.T) {
	want := map[TrafficClass]string{
		TrafficData: "data", TrafficCounter: "counter", TrafficMAC: "mac",
		TrafficBMT: "bmt", TrafficMispredict: "mispredict",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestCacheStats(t *testing.T) {
	var c CacheStats
	c.Hits = 90
	c.Misses = 10
	if got := c.MissRate(); got != 0.1 {
		t.Errorf("MissRate = %v, want 0.1", got)
	}
	if got := c.Accesses(); got != 100 {
		t.Errorf("Accesses = %d, want 100", got)
	}
	var empty CacheStats
	if empty.MissRate() != 0 {
		t.Error("empty MissRate should be 0")
	}
	var d CacheStats
	d.Hits = 10
	d.Writebacks = 2
	c.Merge(&d)
	if c.Hits != 100 || c.Writebacks != 2 {
		t.Errorf("merge wrong: %+v", c)
	}
}

func TestPredictorStats(t *testing.T) {
	var p PredictorStats
	for i := 0; i < 89; i++ {
		p.Record(OutcomeCorrect)
	}
	for i := 0; i < 10; i++ {
		p.Record(OutcomeMPInit)
	}
	p.Record(OutcomeMPAliasing)
	if p.Total() != 100 {
		t.Fatalf("Total = %d", p.Total())
	}
	if got := p.Accuracy(); got != 0.89 {
		t.Errorf("Accuracy = %v, want 0.89", got)
	}
	if got := p.Fraction(OutcomeMPInit); got != 0.10 {
		t.Errorf("Fraction(MP_Init) = %v, want 0.10", got)
	}
	var empty PredictorStats
	if empty.Accuracy() != 1 {
		t.Error("empty predictor accuracy should be 1")
	}
}

func TestPredictorOutcomeLabels(t *testing.T) {
	if OutcomeMPRuntimeNonRO.String() != "MP_Runtime_Non_Read_Only" {
		t.Errorf("got %q", OutcomeMPRuntimeNonRO.String())
	}
	if OutcomeCorrect.String() != "Correct-Prediction" {
		t.Errorf("got %q", OutcomeCorrect.String())
	}
}

func TestRegistry(t *testing.T) {
	var r Registry
	r.Inc("a")
	r.Add("b", 5)
	r.Inc("a")
	if r.Get("a") != 2 || r.Get("b") != 5 || r.Get("missing") != 0 {
		t.Errorf("registry values wrong: %s", r.String())
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	var r2 Registry
	r2.Add("a", 3)
	r2.Add("c", 1)
	r.Merge(&r2)
	if r.Get("a") != 5 || r.Get("c") != 1 {
		t.Errorf("merge wrong: %s", r.String())
	}
}

func TestTrafficFractionsSumProperty(t *testing.T) {
	// Property: metadata + data == total for arbitrary byte additions.
	f := func(reads, writes [5]uint16) bool {
		var tr Traffic
		for i := 0; i < NumTrafficClasses; i++ {
			tr.AddRead(TrafficClass(i), uint64(reads[i]))
			tr.AddWrite(TrafficClass(i), uint64(writes[i]))
		}
		return tr.DataBytes()+tr.MetadataBytes() == tr.TotalBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorMerge(t *testing.T) {
	var a, b PredictorStats
	a.Record(OutcomeCorrect)
	b.Record(OutcomeMPRuntimeRO)
	b.Record(OutcomeCorrect)
	a.Merge(&b)
	if a.Total() != 3 || a.Counts[OutcomeMPRuntimeRO] != 1 {
		t.Errorf("merge wrong: %+v", a)
	}
}

func TestRegistrySnapshotSortedAndComplete(t *testing.T) {
	var r Registry
	r.Add("zeta", 3)
	r.Add("alpha", 1)
	r.Inc("midway")
	r.Add("alpha", 1)
	snap := r.Snapshot()
	want := []CounterValue{{"alpha", 2}, {"midway", 1}, {"zeta", 3}}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), len(want))
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, snap[i], want[i])
		}
	}
	// Empty registry yields an empty (non-nil-safe-to-range) slice.
	var empty Registry
	if len(empty.Snapshot()) != 0 {
		t.Error("empty registry snapshot not empty")
	}
}
