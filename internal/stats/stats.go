// Package stats provides the counter registry and traffic accounting used by
// every component of the simulator: instruction/cycle counts, per-class DRAM
// byte counters (regular data vs. the different classes of security
// metadata), cache hit/miss counters, and predictor-accuracy breakdowns.
//
// All counters are plain uint64s behind small structs; the simulator is
// single-goroutine per run, so no synchronization is needed on the hot path.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"shmgpu/internal/invariant"
)

// TrafficClass labels a DRAM transfer with the purpose of the bytes moved,
// so the bandwidth-overhead breakdown of paper Fig. 14 can be reconstructed.
type TrafficClass uint8

const (
	// TrafficData is regular application data.
	TrafficData TrafficClass = iota
	// TrafficCounter is encryption-counter metadata.
	TrafficCounter
	// TrafficMAC is per-block or per-chunk MAC metadata.
	TrafficMAC
	// TrafficBMT is Bonsai Merkle Tree node metadata.
	TrafficBMT
	// TrafficMispredict is extra data/metadata re-fetch traffic caused by
	// detector mispredictions (Tables III/IV of the paper).
	TrafficMispredict
	numTrafficClasses
)

// NumTrafficClasses is the number of traffic classes.
const NumTrafficClasses = int(numTrafficClasses)

var trafficNames = [...]string{
	TrafficData:       "data",
	TrafficCounter:    "counter",
	TrafficMAC:        "mac",
	TrafficBMT:        "bmt",
	TrafficMispredict: "mispredict",
}

// String returns the class name used in reports.
func (c TrafficClass) String() string {
	if int(c) < len(trafficNames) {
		return trafficNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Traffic accumulates DRAM bytes moved per class and direction.
type Traffic struct {
	ReadBytes  [NumTrafficClasses]uint64
	WriteBytes [NumTrafficClasses]uint64
}

// AddRead records n bytes read from DRAM for class c.
func (t *Traffic) AddRead(c TrafficClass, n uint64) { t.ReadBytes[c] += n }

// AddWrite records n bytes written to DRAM for class c.
func (t *Traffic) AddWrite(c TrafficClass, n uint64) { t.WriteBytes[c] += n }

// Bytes returns total bytes (read+write) for class c.
func (t *Traffic) Bytes(c TrafficClass) uint64 { return t.ReadBytes[c] + t.WriteBytes[c] }

// DataBytes returns total regular-data bytes.
func (t *Traffic) DataBytes() uint64 { return t.Bytes(TrafficData) }

// MetadataBytes returns total security-metadata bytes, including
// misprediction overhead traffic.
func (t *Traffic) MetadataBytes() uint64 {
	var sum uint64
	for c := TrafficCounter; c < TrafficClass(NumTrafficClasses); c++ {
		sum += t.Bytes(c)
	}
	return sum
}

// TotalBytes returns all bytes moved.
func (t *Traffic) TotalBytes() uint64 { return t.DataBytes() + t.MetadataBytes() }

// OverheadRatio returns metadata bytes as a fraction of data bytes
// (the paper's "bandwidth overhead normalized to regular data bandwidth").
// Returns 0 when no data moved.
func (t *Traffic) OverheadRatio() float64 {
	d := t.DataBytes()
	if d == 0 {
		return 0
	}
	return float64(t.MetadataBytes()) / float64(d)
}

// Merge adds other into t.
func (t *Traffic) Merge(other *Traffic) {
	for i := 0; i < NumTrafficClasses; i++ {
		t.ReadBytes[i] += other.ReadBytes[i]
		t.WriteBytes[i] += other.WriteBytes[i]
	}
}

// CacheStats counts accesses to one cache.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	MSHRMerges uint64
	Evictions  uint64
	Writebacks uint64
	// SectorFills counts sectors fetched on misses.
	SectorFills uint64
}

// Accesses returns hits+misses.
func (c *CacheStats) Accesses() uint64 { return c.Hits + c.Misses }

// MissRate returns the miss ratio in [0,1]; 0 when no accesses.
func (c *CacheStats) MissRate() float64 {
	a := c.Accesses()
	if a == 0 {
		return 0
	}
	return float64(c.Misses) / float64(a)
}

// Merge adds other into c.
func (c *CacheStats) Merge(other *CacheStats) {
	c.Hits += other.Hits
	c.Misses += other.Misses
	c.MSHRMerges += other.MSHRMerges
	c.Evictions += other.Evictions
	c.Writebacks += other.Writebacks
	c.SectorFills += other.SectorFills
}

// PredictorOutcome classifies one prediction for the accuracy breakdowns of
// paper Figs. 10 and 11.
type PredictorOutcome uint8

const (
	// OutcomeCorrect is a correct prediction.
	OutcomeCorrect PredictorOutcome = iota
	// OutcomeMPInit is a misprediction caused by predictor initialization
	// (the default value had not been trained yet).
	OutcomeMPInit
	// OutcomeMPAliasing is a misprediction caused by distinct regions or
	// chunks sharing a predictor entry.
	OutcomeMPAliasing
	// OutcomeMPRuntimeRO is a misprediction caused by a runtime pattern
	// change in a read-only region (streaming predictor only).
	OutcomeMPRuntimeRO
	// OutcomeMPRuntimeNonRO is a misprediction caused by a runtime pattern
	// change in a non-read-only region (streaming predictor only).
	OutcomeMPRuntimeNonRO
	numOutcomes
)

// NumPredictorOutcomes is the number of outcome classes.
const NumPredictorOutcomes = int(numOutcomes)

var outcomeNames = [...]string{
	OutcomeCorrect:        "Correct-Prediction",
	OutcomeMPInit:         "MP_Init",
	OutcomeMPAliasing:     "MP_Aliasing",
	OutcomeMPRuntimeRO:    "MP_Runtime_Read_Only",
	OutcomeMPRuntimeNonRO: "MP_Runtime_Non_Read_Only",
}

// String returns the paper's label for the outcome class.
func (o PredictorOutcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// PredictorStats accumulates the prediction-outcome breakdown.
type PredictorStats struct {
	Counts [NumPredictorOutcomes]uint64
}

// Record adds one outcome.
func (p *PredictorStats) Record(o PredictorOutcome) { p.Counts[o]++ }

// Total returns the number of predictions recorded.
func (p *PredictorStats) Total() uint64 {
	var sum uint64
	for _, c := range p.Counts {
		sum += c
	}
	return sum
}

// Accuracy returns the fraction of correct predictions; 1 when empty.
func (p *PredictorStats) Accuracy() float64 {
	t := p.Total()
	if t == 0 {
		return 1
	}
	return float64(p.Counts[OutcomeCorrect]) / float64(t)
}

// Fraction returns the fraction of predictions with outcome o.
func (p *PredictorStats) Fraction(o PredictorOutcome) float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.Counts[o]) / float64(t)
}

// Merge adds other into p.
func (p *PredictorStats) Merge(other *PredictorStats) {
	for i := range p.Counts {
		p.Counts[i] += other.Counts[i]
	}
}

// Registry is a named grab-bag of scalar counters for ad-hoc instrumentation
// (detector events, MEE pipeline occupancy, etc.). The zero value is ready
// to use.
type Registry struct {
	counters map[string]uint64
}

// Add increments counter name by n, reporting an invariant violation on
// uint64 wraparound when the sanitizer is enabled (a wrapped counter
// silently corrupts every derived ratio).
func (r *Registry) Add(name string, n uint64) {
	if r.counters == nil {
		r.counters = make(map[string]uint64) //shm:alloc-ok lazy one-time table init
	}
	if invariant.Enabled() {
		if cur := r.counters[name]; cur > ^uint64(0)-n {
			invariant.Failf("counter-overflow", "registry", 0,
				"counter %s: %d + %d wraps uint64", name, cur, n)
		}
	}
	r.counters[name] += n //shm:alloc-ok the counter name set is small and fixed; the table stops growing after warm-up
}

// Inc increments counter name by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Get returns the value of counter name (0 if never touched).
func (r *Registry) Get(name string) uint64 { return r.counters[name] }

// Names returns all counter names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds all counters from other into r.
func (r *Registry) Merge(other *Registry) {
	for n, v := range other.counters {
		r.Add(n, v)
	}
}

// CounterValue is one named counter in a deterministic Registry snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Snapshot returns every counter sorted by name. All consumers that render
// or export the registry (reports, traces, metrics dumps) go through this
// so output is byte-stable across runs.
func (r *Registry) Snapshot() []CounterValue {
	out := make([]CounterValue, 0, len(r.counters))
	for _, n := range r.Names() {
		out = append(out, CounterValue{Name: n, Value: r.counters[n]})
	}
	return out
}

// String renders the registry for debugging.
func (r *Registry) String() string {
	var b strings.Builder
	for _, n := range r.Names() {
		fmt.Fprintf(&b, "%s=%d ", n, r.counters[n])
	}
	return strings.TrimSpace(b.String())
}
