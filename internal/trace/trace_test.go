package trace

import (
	"bytes"
	"errors"
	"testing"

	"shmgpu/internal/detectors"
	"shmgpu/internal/memdef"
)

func sampleEvents() []Event {
	var evs []Event
	// Partition 0: a clean stream over two chunks; partition 1: random.
	cycle := uint64(0)
	for c := 0; c < 2; c++ {
		for b := 0; b < memdef.BlocksPerChunk; b++ {
			evs = append(evs, Event{
				Cycle: cycle, Local: memdef.Addr(c*memdef.ChunkSize + b*memdef.BlockSize),
				Partition: 0, Space: memdef.SpaceGlobal,
			})
			cycle += 10
		}
	}
	// Partition 1: random accesses spread over several chunks (uniform
	// random workloads touch many chunks, which is how arm-ahead tracking
	// reaches them).
	for i := 0; i < 256; i++ {
		chunk := (i * 7) % 6
		blk := (i * 13) % memdef.BlocksPerChunk
		evs = append(evs, Event{
			Cycle: uint64(i * 50), Local: memdef.Addr(chunk*memdef.ChunkSize + blk*memdef.BlockSize),
			Partition: 1, Write: i%4 == 0, Space: memdef.SpaceGlobal,
		})
	}
	return evs
}

func TestRoundTripSerialization(t *testing.T) {
	r := NewRecorder()
	for _, e := range sampleEvents() {
		req := memdef.Request{Local: e.Local, Space: e.Space}
		if e.Write {
			req.Kind = memdef.Write
		}
		r.Observer(int(e.Partition))(e.Cycle, req)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleEvents()
	if len(back) != len(want) {
		t.Fatalf("events = %d, want %d", len(back), len(want))
	}
	for i := range back {
		if back[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], want[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file at all"))); !errors.Is(err, ErrFormat) {
		t.Fatalf("garbage accepted: %v", err)
	}
	// Truncated records.
	r := NewRecorder()
	r.Observer(0)(1, memdef.Request{})
	var buf bytes.Buffer
	r.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := Read(bytes.NewReader(trunc)); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated trace accepted: %v", err)
	}
	// Wrong version.
	full := buf.Bytes()
	full[8] = 99
	if _, err := Read(bytes.NewReader(full)); !errors.Is(err, ErrFormat) {
		t.Fatalf("wrong version accepted: %v", err)
	}
}

func TestReplayDetectsPatterns(t *testing.T) {
	cfg := detectors.DefaultStreamingConfig()
	cfg.MonitorLead = 1
	res := Replay(sampleEvents(), cfg, 2)
	if res.Events != len(sampleEvents()) {
		t.Fatalf("events = %d", res.Events)
	}
	if res.DetectedStream == 0 {
		t.Error("stream chunk not detected")
	}
	if res.DetectedRandom == 0 {
		t.Error("random chunk not detected")
	}
	if res.Accuracy.Total() == 0 {
		t.Error("no accuracy accounting")
	}
}

func TestReplayIgnoresOutOfRangePartitions(t *testing.T) {
	evs := []Event{{Cycle: 1, Partition: 9}}
	res := Replay(evs, detectors.DefaultStreamingConfig(), 2)
	if res.Events != 0 {
		t.Fatal("out-of-range partition replayed")
	}
}

func TestReplayParameterSweepChangesOutcome(t *testing.T) {
	// With 0 effective trackers... minimum is 1; instead contrast timeout
	// extremes: a tiny timeout cannot complete the random windows, a huge
	// one does not change stream detection.
	evs := sampleEvents()
	small := detectors.DefaultStreamingConfig()
	small.MonitorLead = 1
	small.TimeoutCycles = 10
	large := detectors.DefaultStreamingConfig()
	large.MonitorLead = 1
	large.TimeoutCycles = 100000
	a := Replay(evs, small, 2)
	b := Replay(evs, large, 2)
	if a.Timeouts <= b.Timeouts {
		t.Fatalf("timeout sweep had no effect: %d vs %d", a.Timeouts, b.Timeouts)
	}
}
