// Package trace records and replays the off-chip access streams the memory
// encryption engines observe (every L2 miss and write-back, per partition).
// A recorded trace supports offline detector studies: replaying one trace
// through differently-configured predictors and trackers answers
// design-space questions (tracker count, timeout, chunk size) in
// milliseconds instead of re-running the full timing simulation.
//
// The on-disk format is a compact binary stream: a 16-byte header
// ("SHMTRACE", version, record count) followed by fixed 24-byte records.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"shmgpu/internal/detectors"
	"shmgpu/internal/memdef"
	"shmgpu/internal/stats"
)

// Magic identifies a trace stream.
var Magic = [8]byte{'S', 'H', 'M', 'T', 'R', 'A', 'C', 'E'}

// Version is the current format version.
const Version uint32 = 1

// ErrFormat reports a malformed trace stream.
var ErrFormat = errors.New("trace: malformed stream")

// Event is one off-chip access observed by a partition's MEE.
type Event struct {
	// Cycle is the core-clock timestamp.
	Cycle uint64
	// Local is the partition-local sector address.
	Local memdef.Addr
	// Partition is the observing memory partition.
	Partition uint8
	// Write marks a write-back (vs an L2 miss read).
	Write bool
	// Space is the GPU memory space of the access.
	Space memdef.Space
}

const recordBytes = 24

func (e Event) encode(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:8], e.Cycle)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(e.Local))
	buf[16] = e.Partition
	if e.Write {
		buf[17] = 1
	} else {
		buf[17] = 0
	}
	buf[18] = uint8(e.Space)
	for i := 19; i < recordBytes; i++ {
		buf[i] = 0
	}
}

func decodeEvent(buf []byte) Event {
	return Event{
		Cycle:     binary.LittleEndian.Uint64(buf[0:8]),
		Local:     memdef.Addr(binary.LittleEndian.Uint64(buf[8:16])),
		Partition: buf[16],
		Write:     buf[17] == 1,
		Space:     memdef.Space(buf[18]),
	}
}

// Recorder accumulates events in memory. It implements the observer shape
// the MEE's SetTrace hook expects via Observer(partition).
type Recorder struct {
	events []Event
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Observer returns the per-partition callback to install with
// (*secmem.MEE).SetTrace.
func (r *Recorder) Observer(partition int) func(now uint64, req memdef.Request) {
	p := uint8(partition)
	return func(now uint64, req memdef.Request) {
		r.events = append(r.events, Event{
			Cycle:     now,
			Local:     req.Local,
			Partition: p,
			Write:     req.Kind == memdef.Write,
			Space:     req.Space,
		})
	}
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Events returns the recorded events (aliased, not copied).
func (r *Recorder) Events() []Event { return r.events }

// WriteTo serializes the trace. It implements io.WriterTo.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	hdr := make([]byte, 16)
	copy(hdr, Magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(r.events)))
	k, err := bw.Write(hdr)
	n += int64(k)
	if err != nil {
		return n, err
	}
	buf := make([]byte, recordBytes)
	for _, e := range r.events {
		e.encode(buf)
		k, err = bw.Write(buf)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a serialized trace.
func Read(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	var magic [8]byte
	copy(magic[:], hdr[:8])
	if magic != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrFormat, v, Version)
	}
	count := binary.LittleEndian.Uint32(hdr[12:16])
	events := make([]Event, 0, count)
	buf := make([]byte, recordBytes)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d: %v", ErrFormat, i, err)
		}
		events = append(events, decodeEvent(buf))
	}
	return events, nil
}

// ReplayResult summarizes one offline detector replay.
type ReplayResult struct {
	// Events is the number of accesses replayed.
	Events int
	// DetectedStream and DetectedRandom count completed monitoring
	// phases by verdict (empty phases excluded).
	DetectedStream, DetectedRandom int
	// Timeouts counts phases ended by timeout.
	Timeouts int
	// Accuracy is the streaming-prediction breakdown against the oracle
	// windows, as in Fig. 11.
	Accuracy stats.PredictorStats
}

// Replay runs a trace through per-partition streaming detectors with the
// given configuration and scores the resulting predictions, enabling
// offline parameter sweeps over a single recorded run.
func Replay(events []Event, cfg detectors.StreamingConfig, partitions int) ReplayResult {
	var res ReplayResult
	preds := make([]*detectors.StreamingPredictor, partitions)
	mats := make([]*detectors.MATFile, partitions)
	accs := make([]*detectors.StreamingAccuracy, partitions)
	for p := 0; p < partitions; p++ {
		preds[p] = detectors.NewStreamingPredictor(cfg)
		mats[p] = detectors.NewMATFile(cfg)
		accs[p] = detectors.NewStreamingAccuracy(preds[p], nil)
	}
	lastTick := make([]uint64, partitions)
	apply := func(p int, d detectors.Detection) {
		if d.Accesses == 0 {
			return
		}
		if d.TimedOut {
			res.Timeouts++
		}
		if d.Streaming {
			res.DetectedStream++
		} else {
			res.DetectedRandom++
		}
		preds[p].Train(d.Chunk, d.Streaming)
	}
	for _, e := range events {
		p := int(e.Partition)
		if p >= partitions {
			continue
		}
		res.Events++
		if e.Cycle/64 != lastTick[p] {
			lastTick[p] = e.Cycle / 64
			for _, d := range mats[p].Tick(e.Cycle) {
				apply(p, d)
			}
		}
		accs[p].Observe(e.Local, e.Write)
		if d, done := mats[p].Observe(e.Local, e.Write, e.Cycle); done {
			apply(p, d)
		}
	}
	for p := 0; p < partitions; p++ {
		for _, d := range mats[p].Flush() {
			apply(p, d)
		}
		ps := accs[p].Finalize()
		res.Accuracy.Merge(&ps)
	}
	return res
}
