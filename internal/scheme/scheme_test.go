package scheme

import "testing"

func TestAllSchemes(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("have %d schemes, want 10 (baseline + 9 of Table VIII)", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if s.Name == "" || s.Description == "" {
			t.Errorf("scheme %+v incomplete", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scheme %q", s.Name)
		}
		seen[s.Name] = true
	}
	if !seen["SHM"] || !seen["PSSM"] || !seen["Common_ctr"] || !seen["SHM_upper_bound"] {
		t.Error("missing a Table VIII design")
	}
}

func TestBaselineDisabled(t *testing.T) {
	if Baseline.Options.Enabled {
		t.Fatal("baseline must have the MEE disabled")
	}
	for _, s := range Evaluated() {
		if !s.Options.Enabled {
			t.Errorf("%s must have the MEE enabled", s.Name)
		}
	}
}

func TestOptionConsistency(t *testing.T) {
	// SHM implies both optimizations; PSSM neither.
	if !SHM.Options.ReadOnlyOpt || !SHM.Options.DualGranMAC {
		t.Error("SHM must enable both optimizations")
	}
	if PSSM.Options.ReadOnlyOpt || PSSM.Options.DualGranMAC || PSSM.Options.CommonCounters {
		t.Error("PSSM must not enable SHM optimizations")
	}
	if Naive.Options.LocalMetadata || Naive.Options.SectoredMetadata {
		t.Error("naive design must use physical-address, full-block metadata")
	}
	if !SHMUpperBound.Options.OracleDetectors {
		t.Error("upper bound must use oracle detectors")
	}
	if !SHMvL2.Options.VictimL2 {
		t.Error("SHM_vL2 must enable the victim cache")
	}
	if !SHMCctr.Options.CommonCounters {
		t.Error("SHM_cctr must enable common counters")
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("SHM")
	if err != nil || s.Name != "SHM" {
		t.Fatalf("ByName(SHM) = %v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSortedNames(t *testing.T) {
	names := SortedNames()
	if len(names) != 10 {
		t.Fatalf("len = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("not sorted: %v", names)
		}
	}
}
