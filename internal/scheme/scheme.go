// Package scheme defines the secure-memory designs evaluated in the paper
// (Table VIII) as named presets over secmem.Options, plus the insecure
// baseline every result is normalized against.
package scheme

import (
	"fmt"
	"sort"

	"shmgpu/internal/secmem"
)

// Scheme is one named secure-memory design.
type Scheme struct {
	// Name is the paper's label (Table VIII).
	Name string
	// Description says what the design represents.
	Description string
	// Options is the MEE configuration implementing it.
	Options secmem.Options
}

// The paper's designs. Baseline is the insecure GPU used for
// normalization; the rest match Table VIII.
var (
	// Baseline: GPU with sectored data caches, no secure memory.
	Baseline = Scheme{
		Name:        "Baseline",
		Description: "insecure GPU, no memory protection (normalization reference)",
		Options:     secmem.Options{},
	}
	// Naive: CPU-style secure memory; metadata from physical addresses,
	// full-block metadata fetches.
	Naive = Scheme{
		Name:        "Naive",
		Description: "secure memory with physical-address metadata, CPU-style full-block fetches",
		Options:     secmem.Options{Enabled: true},
	}
	// CommonCtr: common counters over the naive organization.
	CommonCtr = Scheme{
		Name:        "Common_ctr",
		Description: "common-counter compression over physical-address metadata",
		Options:     secmem.Options{Enabled: true, CommonCounters: true},
	}
	// PSSM: partitioned and sectored security metadata (local addresses).
	PSSM = Scheme{
		Name:        "PSSM",
		Description: "partition-local, sectored security metadata",
		Options:     secmem.Options{Enabled: true, LocalMetadata: true, SectoredMetadata: true},
	}
	// PSSMCtr: PSSM plus common counters.
	PSSMCtr = Scheme{
		Name:        "PSSM_cctr",
		Description: "PSSM metadata with common-counter compression",
		Options: secmem.Options{
			Enabled: true, LocalMetadata: true, SectoredMetadata: true, CommonCounters: true,
		},
	}
	// SHMReadOnly: the read-only optimization alone (per-block MACs).
	SHMReadOnly = Scheme{
		Name:        "SHM_readOnly",
		Description: "PSSM + shared counter for read-only regions (per-block MACs)",
		Options: secmem.Options{
			Enabled: true, LocalMetadata: true, SectoredMetadata: true, ReadOnlyOpt: true,
		},
	}
	// SHM: the paper's full design: read-only optimization plus
	// dual-granularity MACs.
	SHM = Scheme{
		Name:        "SHM",
		Description: "secure heterogeneous memory: read-only shared counter + dual-granularity MACs",
		Options: secmem.Options{
			Enabled: true, LocalMetadata: true, SectoredMetadata: true,
			ReadOnlyOpt: true, DualGranMAC: true,
		},
	}
	// SHMCctr: SHM combined with common counters.
	SHMCctr = Scheme{
		Name:        "SHM_cctr",
		Description: "SHM combined with common counters",
		Options: secmem.Options{
			Enabled: true, LocalMetadata: true, SectoredMetadata: true,
			ReadOnlyOpt: true, DualGranMAC: true, CommonCounters: true,
		},
	}
	// SHMvL2: SHM using the L2 as a metadata victim cache.
	SHMvL2 = Scheme{
		Name:        "SHM_vL2",
		Description: "SHM with L2 as victim cache for security metadata",
		Options: secmem.Options{
			Enabled: true, LocalMetadata: true, SectoredMetadata: true,
			ReadOnlyOpt: true, DualGranMAC: true, VictimL2: true,
		},
	}
	// SHMUpperBound: unlimited predictors preloaded by profiling.
	SHMUpperBound = Scheme{
		Name:        "SHM_upper_bound",
		Description: "SHM with unlimited, profiling-initialized predictors",
		Options: secmem.Options{
			Enabled: true, LocalMetadata: true, SectoredMetadata: true,
			ReadOnlyOpt: true, DualGranMAC: true, OracleDetectors: true,
		},
	}
)

// All returns every scheme including the baseline, in evaluation order.
func All() []Scheme {
	return []Scheme{
		Baseline, Naive, CommonCtr, PSSM, PSSMCtr,
		SHMReadOnly, SHM, SHMCctr, SHMvL2, SHMUpperBound,
	}
}

// Evaluated returns the secure designs (Table VIII), without the baseline.
func Evaluated() []Scheme { return All()[1:] }

// ByName looks a scheme up by its paper label.
func ByName(name string) (Scheme, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scheme{}, fmt.Errorf("scheme: unknown design %q (have %v)", name, NamesOf(All()))
}

// NamesOf lists scheme names.
func NamesOf(ss []Scheme) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// SortedNames returns all scheme names sorted alphabetically.
func SortedNames() []string {
	n := NamesOf(All())
	sort.Strings(n)
	return n
}
