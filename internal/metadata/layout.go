// Package metadata defines where security metadata lives in device memory
// and what it looks like: split-counter blocks, the per-block and per-chunk
// MAC regions (dual-granularity MACs), and the Bonsai Merkle Tree geometry
// over the counter region.
//
// The layout is pure address arithmetic over one protected address space.
// Under PSSM-style addressing every memory partition instantiates one
// Layout over its partition-local address space, so all metadata for a
// partition's data stays in that partition. Under the naive (physical
// address) scheme one Layout spans the whole physical space and metadata
// scatters across partitions — the redundancy PSSM eliminates.
package metadata

import (
	"fmt"

	"shmgpu/internal/memdef"
)

// Counter-organization constants (split counters, Yan/Rogers style,
// adapted to 128 B blocks as in the paper).
const (
	// CounterBlockSize is the size of one counter block in memory.
	CounterBlockSize = memdef.BlockSize
	// MajorBytes is the size of the major counter within a counter block.
	MajorBytes = 8
	// MinorsPerCounterBlock is the number of per-block minor counters in
	// one counter block. Each minor is 7 bits (stored one per byte in the
	// functional model for simplicity; the layout charges the packed size).
	MinorsPerCounterBlock = 64
	// MinorMax is the largest value a 7-bit minor counter can hold.
	MinorMax = 127
	// CounterCoverage is the data bytes covered by one counter block.
	CounterCoverage = MinorsPerCounterBlock * memdef.BlockSize // 8 KB
	// BMTArity is the integrity-tree fan-in: one 128 B node holds 16
	// 8 B child hashes.
	BMTArity = 16
	// HashSize is the BMT hash size in bytes.
	HashSize = 8
	// BlockMACBytes is the per-block MAC size.
	BlockMACBytes = 8
	// ChunkMACBytes is the per-chunk MAC size.
	ChunkMACBytes = 8
)

// Layout maps data addresses to metadata addresses within one protected
// address space of ProtectedBytes, laid out as:
//
//	[0, D)                      data
//	[D, D+D/64)                 counter blocks (128 B per 8 KB data)
//	[..., +D/16)                per-block MACs (8 B per 128 B block)
//	[..., +D/512)               per-chunk MACs (8 B per 4 KB chunk)
//	[...]                       BMT levels, leaves first; root on chip
type Layout struct {
	protected    uint64
	counterBase  uint64
	counterBytes uint64
	blkMACBase   uint64
	blkMACBytes  uint64
	chkMACBase   uint64
	chkMACBytes  uint64
	bmtBases     []uint64 // base address per level, level 0 = leaves
	bmtNodes     []uint64 // node count per level
	totalBytes   uint64
}

// NewLayout builds the layout for a protected space of protectedBytes,
// which must be a positive multiple of CounterCoverage (8 KB) so counter
// blocks tile it exactly.
func NewLayout(protectedBytes uint64) (*Layout, error) {
	if protectedBytes == 0 || protectedBytes%CounterCoverage != 0 {
		return nil, fmt.Errorf("metadata: protected size %d must be a positive multiple of %d", protectedBytes, CounterCoverage)
	}
	l := &Layout{protected: protectedBytes}
	l.counterBase = protectedBytes
	l.counterBytes = protectedBytes / MinorsPerCounterBlock // 128B per 8KB = /64
	l.blkMACBase = l.counterBase + l.counterBytes
	l.blkMACBytes = protectedBytes / memdef.BlockSize * BlockMACBytes
	l.chkMACBase = l.blkMACBase + l.blkMACBytes
	l.chkMACBytes = protectedBytes / memdef.ChunkSize * ChunkMACBytes

	// BMT: level 0 nodes each cover BMTArity counter blocks.
	next := l.chkMACBase + l.chkMACBytes
	n := l.counterBytes / CounterBlockSize // number of counter blocks
	for n > 1 {
		nodes := (n + BMTArity - 1) / BMTArity
		l.bmtBases = append(l.bmtBases, next)
		l.bmtNodes = append(l.bmtNodes, nodes)
		next += nodes * memdef.BlockSize
		n = nodes
	}
	l.totalBytes = next
	return l, nil
}

// MustLayout is NewLayout panicking on error, for configuration constants.
func MustLayout(protectedBytes uint64) *Layout {
	l, err := NewLayout(protectedBytes)
	if err != nil {
		panic(err)
	}
	return l
}

// ProtectedBytes returns the data capacity of the protected space.
func (l *Layout) ProtectedBytes() uint64 { return l.protected }

// TotalBytes returns data plus all metadata storage.
func (l *Layout) TotalBytes() uint64 { return l.totalBytes }

// MetadataBytes returns total metadata storage.
func (l *Layout) MetadataBytes() uint64 { return l.totalBytes - l.protected }

// StorageOverhead returns metadata bytes / data bytes.
func (l *Layout) StorageOverhead() float64 {
	return float64(l.MetadataBytes()) / float64(l.protected)
}

// NumCounterBlocks returns the number of counter blocks.
func (l *Layout) NumCounterBlocks() uint64 { return l.counterBytes / CounterBlockSize }

// CounterIndex returns the counter-block index and minor-counter slot for
// the data block containing addr.
func (l *Layout) CounterIndex(addr memdef.Addr) (counterBlock uint64, minorSlot int) {
	blk := memdef.BlockID(addr)
	return blk / MinorsPerCounterBlock, int(blk % MinorsPerCounterBlock)
}

// CounterBlockAddr returns the memory address of counter block i.
func (l *Layout) CounterBlockAddr(i uint64) memdef.Addr {
	return memdef.Addr(l.counterBase + i*CounterBlockSize)
}

// CounterAddrFor returns the address of the counter block covering addr and
// the minor slot of addr's data block within it.
func (l *Layout) CounterAddrFor(addr memdef.Addr) (memdef.Addr, int) {
	cb, slot := l.CounterIndex(addr)
	return l.CounterBlockAddr(cb), slot
}

// CounterSectorFor returns the 32 B sector that must be fetched to obtain
// the counters for addr under a sectored (PSSM) organization: PSSM
// re-organizes counter blocks so the major counter is replicated per
// sector, letting a single sector fetch serve any minor in it. Sector 0
// holds the major plus the first minors, matching that behaviour.
func (l *Layout) CounterSectorFor(addr memdef.Addr) memdef.Addr {
	base, slot := l.CounterAddrFor(addr)
	sector := slot * MinorsPerCounterBlock / memdef.BlockSize // 64 minors across 4 sectors → 16 per sector
	_ = sector
	// 64 minor slots spread over 4 sectors of the counter block.
	return base + memdef.Addr((slot/16)*memdef.SectorSize)
}

// BlockMACAddr returns the byte address of the 8 B per-block MAC for the
// data block containing addr.
func (l *Layout) BlockMACAddr(addr memdef.Addr) memdef.Addr {
	return memdef.Addr(l.blkMACBase + memdef.BlockID(addr)*BlockMACBytes)
}

// ChunkMACAddr returns the byte address of the 8 B per-chunk MAC for the
// 4 KB chunk containing addr.
func (l *Layout) ChunkMACAddr(addr memdef.Addr) memdef.Addr {
	return memdef.Addr(l.chkMACBase + memdef.ChunkID(addr)*ChunkMACBytes)
}

// InData reports whether addr falls inside the protected data range.
func (l *Layout) InData(addr memdef.Addr) bool { return uint64(addr) < l.protected }

// BMTLevels returns the number of stored BMT levels (the root above them
// lives on chip).
func (l *Layout) BMTLevels() int { return len(l.bmtBases) }

// BMTNodesAt returns the node count of a stored level.
func (l *Layout) BMTNodesAt(level int) uint64 { return l.bmtNodes[level] }

// BMTNodeAddr returns the address of node idx at a stored level.
func (l *Layout) BMTNodeAddr(level int, idx uint64) memdef.Addr {
	if level < 0 || level >= len(l.bmtBases) {
		panic(fmt.Sprintf("metadata: BMT level %d out of range [0,%d)", level, len(l.bmtBases)))
	}
	if idx >= l.bmtNodes[level] {
		panic(fmt.Sprintf("metadata: BMT node %d out of range at level %d (max %d)", idx, level, l.bmtNodes[level]))
	}
	return memdef.Addr(l.bmtBases[level] + idx*memdef.BlockSize)
}

// BMTPathForCounter returns the stored-node addresses visited when
// verifying counter block cb: its leaf-level node, then each ancestor up to
// (not including) the on-chip root. slotInParent[i] gives the child slot of
// step i's hash within step i's node.
func (l *Layout) BMTPathForCounter(cb uint64) (path []memdef.Addr, slots []int) {
	return l.BMTPathForCounterInto(cb, nil, nil)
}

// BMTPathForCounterInto is BMTPathForCounter appending into caller-provided
// buffers (truncated to length zero first), so per-access walks on the hot
// path can reuse scratch storage instead of allocating two slices per call.
func (l *Layout) BMTPathForCounterInto(cb uint64, pathBuf []memdef.Addr, slotBuf []int) (path []memdef.Addr, slots []int) {
	path, slots = pathBuf[:0], slotBuf[:0]
	if len(l.bmtBases) == 0 {
		return path, slots
	}
	idx := cb
	for level := 0; level < len(l.bmtBases); level++ {
		slot := int(idx % BMTArity)
		idx /= BMTArity
		path = append(path, l.BMTNodeAddr(level, idx)) //shm:alloc-ok fills caller scratch; capacity reaches the tree height after the first walk
		slots = append(slots, slot)                    //shm:alloc-ok fills caller scratch; capacity reaches the tree height after the first walk
	}
	return path, slots
}

// Describe renders the layout for docs and debugging.
func (l *Layout) Describe() string {
	return fmt.Sprintf(
		"protected=%d counters=[%#x,+%d] blkMAC=[%#x,+%d] chkMAC=[%#x,+%d] bmtLevels=%d total=%d (overhead %.2f%%)",
		l.protected, l.counterBase, l.counterBytes, l.blkMACBase, l.blkMACBytes,
		l.chkMACBase, l.chkMACBytes, len(l.bmtBases), l.totalBytes, 100*l.StorageOverhead())
}
