package metadata

import "fmt"

// CounterBlock is the in-memory state of one split-counter block: one major
// counter shared by MinorsPerCounterBlock data blocks plus one 7-bit minor
// counter per data block. When a minor overflows, the major is bumped, all
// minors reset, and every covered block must be re-encrypted under the new
// major (the classic split-counter overflow handling).
type CounterBlock struct {
	Major  uint64
	Minors [MinorsPerCounterBlock]uint8
}

// Seed returns the (major, minor) pair for slot.
func (cb *CounterBlock) Seed(slot int) (major uint64, minor uint16) {
	return cb.Major, uint16(cb.Minors[slot])
}

// Increment advances the minor counter for slot before a write. It reports
// whether the minor overflowed, in which case the major has been bumped and
// ALL minors reset to zero — the caller must re-encrypt every block covered
// by this counter block under the new major counter.
func (cb *CounterBlock) Increment(slot int) (overflowed bool) {
	if cb.Minors[slot] < MinorMax {
		cb.Minors[slot]++
		return false
	}
	cb.Major++
	for i := range cb.Minors {
		cb.Minors[i] = 0
	}
	// The written block starts at 1 so its seed differs from its siblings'.
	cb.Minors[slot] = 1
	return true
}

// PropagateFromShared initializes the counter block when its region leaves
// the read-only state (paper Fig. 8): the shared counter becomes the major
// counter, all minors take the padding value (0), and the minor for the
// block being written is advanced to 1.
func (cb *CounterBlock) PropagateFromShared(shared uint64, writtenSlot int) {
	cb.Major = shared
	for i := range cb.Minors {
		cb.Minors[i] = 0
	}
	cb.Minors[writtenSlot] = 1
}

// MaxMajor is a helper for the InputReadOnlyReset scan (paper Fig. 9): the
// command processor scans counter blocks in the reset range and returns the
// maximum major counter so the shared counter can be advanced past it.
func MaxMajor(blocks []CounterBlock) uint64 {
	var m uint64
	for i := range blocks {
		if blocks[i].Major > m {
			m = blocks[i].Major
		}
	}
	return m
}

// String renders a compact summary.
func (cb *CounterBlock) String() string {
	nonzero := 0
	for _, m := range cb.Minors {
		if m != 0 {
			nonzero++
		}
	}
	return fmt.Sprintf("ctr{major=%d, %d/%d minors nonzero}", cb.Major, nonzero, len(cb.Minors))
}
