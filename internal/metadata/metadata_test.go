package metadata

import (
	"testing"
	"testing/quick"

	"shmgpu/internal/memdef"
)

const testProtected = 1 << 20 // 1 MiB protected space

func testLayout(t *testing.T) *Layout {
	t.Helper()
	l, err := NewLayout(testProtected)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLayoutRejectsBadSizes(t *testing.T) {
	for _, sz := range []uint64{0, 100, CounterCoverage - 1, CounterCoverage + 1} {
		if _, err := NewLayout(sz); err == nil {
			t.Errorf("size %d accepted", sz)
		}
	}
}

func TestLayoutRegionSizes(t *testing.T) {
	l := testLayout(t)
	if got := l.NumCounterBlocks(); got != testProtected/CounterCoverage {
		t.Errorf("counter blocks = %d, want %d", got, testProtected/CounterCoverage)
	}
	// 8 B MAC per 128 B block = 1/16 of data.
	if got := uint64(l.BlockMACAddr(0)) + testProtected/16; got != uint64(l.ChunkMACAddr(0)) {
		t.Errorf("block MAC region size wrong: next base %#x, want %#x", uint64(l.ChunkMACAddr(0)), got)
	}
	if l.MetadataBytes() == 0 || l.TotalBytes() != testProtected+l.MetadataBytes() {
		t.Errorf("metadata accounting inconsistent: %s", l.Describe())
	}
	// Storage overhead: counters 1/64 + blkMAC 1/16 + chkMAC 1/512 + BMT.
	if ov := l.StorageOverhead(); ov < 0.079 || ov > 0.095 {
		t.Errorf("storage overhead = %.4f, want ~0.081-0.09", ov)
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	l := testLayout(t)
	// Walk every data block; all metadata addresses must land in disjoint
	// regions above the data.
	type span struct{ lo, hi uint64 }
	inSpan := func(a memdef.Addr, s span) bool { return uint64(a) >= s.lo && uint64(a) < s.hi }
	ctr := span{uint64(l.CounterBlockAddr(0)), uint64(l.CounterBlockAddr(0)) + l.counterBytes}
	bmac := span{l.blkMACBase, l.blkMACBase + l.blkMACBytes}
	cmac := span{l.chkMACBase, l.chkMACBase + l.chkMACBytes}
	for a := memdef.Addr(0); a < testProtected; a += memdef.BlockSize * 37 {
		ca, _ := l.CounterAddrFor(a)
		if !inSpan(ca, ctr) {
			t.Fatalf("counter addr %#x outside counter region", uint64(ca))
		}
		if !inSpan(l.BlockMACAddr(a), bmac) {
			t.Fatalf("block MAC addr outside region for %#x", uint64(a))
		}
		if !inSpan(l.ChunkMACAddr(a), cmac) {
			t.Fatalf("chunk MAC addr outside region for %#x", uint64(a))
		}
		if !l.InData(a) {
			t.Fatalf("data address %#x not recognized", uint64(a))
		}
	}
	if l.InData(memdef.Addr(testProtected)) {
		t.Error("metadata base misclassified as data")
	}
}

func TestCounterIndexing(t *testing.T) {
	l := testLayout(t)
	// Blocks 0..63 share counter block 0; block 64 starts counter block 1.
	cb, slot := l.CounterIndex(0)
	if cb != 0 || slot != 0 {
		t.Errorf("block 0 -> (%d,%d)", cb, slot)
	}
	cb, slot = l.CounterIndex(63 * memdef.BlockSize)
	if cb != 0 || slot != 63 {
		t.Errorf("block 63 -> (%d,%d)", cb, slot)
	}
	cb, slot = l.CounterIndex(64 * memdef.BlockSize)
	if cb != 1 || slot != 0 {
		t.Errorf("block 64 -> (%d,%d)", cb, slot)
	}
}

func TestCounterSectorSpread(t *testing.T) {
	l := testLayout(t)
	// The 64 minors of one counter block spread across its 4 sectors,
	// 16 per sector.
	base := memdef.Addr(0)
	seen := make(map[memdef.Addr]int)
	for b := 0; b < MinorsPerCounterBlock; b++ {
		sec := l.CounterSectorFor(base + memdef.Addr(b*memdef.BlockSize))
		seen[sec]++
	}
	if len(seen) != memdef.SectorsPerBlock {
		t.Fatalf("minors spread over %d sectors, want %d", len(seen), memdef.SectorsPerBlock)
	}
	for sec, n := range seen {
		if n != 16 {
			t.Errorf("sector %#x serves %d minors, want 16", uint64(sec), n)
		}
	}
}

func TestMACAddressesDistinctPerBlock(t *testing.T) {
	l := testLayout(t)
	seen := make(map[memdef.Addr]bool)
	for a := memdef.Addr(0); a < testProtected; a += memdef.BlockSize {
		m := l.BlockMACAddr(a)
		if seen[m] {
			t.Fatalf("MAC address %#x reused", uint64(m))
		}
		seen[m] = true
	}
}

func TestChunkMACSharedWithinChunk(t *testing.T) {
	l := testLayout(t)
	base := memdef.Addr(3 * memdef.ChunkSize)
	want := l.ChunkMACAddr(base)
	for b := 0; b < memdef.BlocksPerChunk; b++ {
		if got := l.ChunkMACAddr(base + memdef.Addr(b*memdef.BlockSize)); got != want {
			t.Fatalf("block %d of chunk has different chunk MAC addr", b)
		}
	}
	if l.ChunkMACAddr(base+memdef.ChunkSize) == want {
		t.Error("adjacent chunk shares a chunk MAC address")
	}
}

func TestBMTGeometry(t *testing.T) {
	l := testLayout(t)
	// 1 MiB data -> 128 counter blocks -> level0: 8 nodes, level1: 1 node
	// -> root on chip above level 1? level1 has 1 node so loop stops when
	// n==1: levels stored: 128->8 (level0), 8->1 (level1). Stored levels=2.
	if l.BMTLevels() != 2 {
		t.Fatalf("BMT levels = %d, want 2", l.BMTLevels())
	}
	if l.BMTNodesAt(0) != 8 || l.BMTNodesAt(1) != 1 {
		t.Fatalf("level sizes = %d,%d; want 8,1", l.BMTNodesAt(0), l.BMTNodesAt(1))
	}
}

func TestBMTPath(t *testing.T) {
	l := testLayout(t)
	path, slots := l.BMTPathForCounter(0)
	if len(path) != 2 || len(slots) != 2 {
		t.Fatalf("path len = %d", len(path))
	}
	if path[0] != l.BMTNodeAddr(0, 0) || slots[0] != 0 {
		t.Errorf("leaf step wrong: %#x slot %d", uint64(path[0]), slots[0])
	}
	// Counter block 17 -> leaf node 1 slot 1 -> level1 node 0 slot 1.
	path, slots = l.BMTPathForCounter(17)
	if path[0] != l.BMTNodeAddr(0, 1) || slots[0] != 1 {
		t.Errorf("cb17 leaf: %#x slot %d", uint64(path[0]), slots[0])
	}
	if path[1] != l.BMTNodeAddr(1, 0) || slots[1] != 1 {
		t.Errorf("cb17 level1: %#x slot %d", uint64(path[1]), slots[1])
	}
}

func TestBMTPathProperty(t *testing.T) {
	l := testLayout(t)
	f := func(raw uint32) bool {
		cb := uint64(raw) % l.NumCounterBlocks()
		path, slots := l.BMTPathForCounter(cb)
		if len(path) != l.BMTLevels() {
			return false
		}
		// Each address must be block-aligned and inside the BMT area.
		for i, a := range path {
			if uint64(a)%memdef.BlockSize != 0 {
				return false
			}
			if slots[i] < 0 || slots[i] >= BMTArity {
				return false
			}
			if uint64(a) < l.chkMACBase+l.chkMACBytes || uint64(a) >= l.totalBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBMTNodeAddrPanics(t *testing.T) {
	l := testLayout(t)
	for _, fn := range []func(){
		func() { l.BMTNodeAddr(-1, 0) },
		func() { l.BMTNodeAddr(99, 0) },
		func() { l.BMTNodeAddr(0, 1<<40) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCounterBlockIncrement(t *testing.T) {
	var cb CounterBlock
	if cb.Increment(5) {
		t.Fatal("first increment must not overflow")
	}
	maj, min := cb.Seed(5)
	if maj != 0 || min != 1 {
		t.Fatalf("seed = (%d,%d), want (0,1)", maj, min)
	}
	// Drive slot 5 to overflow.
	for i := 0; i < MinorMax-1; i++ {
		if cb.Increment(5) {
			t.Fatalf("unexpected overflow at i=%d", i)
		}
	}
	cb.Minors[9] = 55
	if !cb.Increment(5) {
		t.Fatal("expected overflow")
	}
	if cb.Major != 1 {
		t.Errorf("major = %d, want 1", cb.Major)
	}
	if cb.Minors[5] != 1 {
		t.Errorf("overflowing slot minor = %d, want 1", cb.Minors[5])
	}
	if cb.Minors[9] != 0 {
		t.Errorf("sibling minor not reset: %d", cb.Minors[9])
	}
}

func TestSeedNeverRepeatsAcrossIncrements(t *testing.T) {
	// Property: the (major, minor) pair for a slot never repeats across
	// increments — the foundation of counter-mode security.
	var cb CounterBlock
	seen := map[[2]uint64]bool{{0, 0}: true}
	for i := 0; i < 1000; i++ {
		cb.Increment(3)
		maj, min := cb.Seed(3)
		key := [2]uint64{maj, uint64(min)}
		if seen[key] {
			t.Fatalf("seed (%d,%d) reused at step %d", maj, min, i)
		}
		seen[key] = true
	}
}

func TestPropagateFromShared(t *testing.T) {
	var cb CounterBlock
	cb.Major = 99
	cb.Minors[0] = 7
	cb.PropagateFromShared(3, 2)
	if cb.Major != 3 {
		t.Errorf("major = %d, want shared value 3", cb.Major)
	}
	if cb.Minors[2] != 1 {
		t.Errorf("written slot minor = %d, want 1", cb.Minors[2])
	}
	for i, m := range cb.Minors {
		if i != 2 && m != 0 {
			t.Errorf("minor %d = %d, want padding 0", i, m)
		}
	}
}

func TestMaxMajor(t *testing.T) {
	blocks := []CounterBlock{{Major: 3}, {Major: 90}, {Major: 17}}
	if got := MaxMajor(blocks); got != 90 {
		t.Errorf("MaxMajor = %d, want 90", got)
	}
	if got := MaxMajor(nil); got != 0 {
		t.Errorf("MaxMajor(nil) = %d, want 0", got)
	}
}

func TestCounterBlockString(t *testing.T) {
	var cb CounterBlock
	cb.Increment(0)
	if cb.String() == "" {
		t.Error("empty String")
	}
}

func TestMustLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustLayout(123)
}

func TestLayout4GB(t *testing.T) {
	// The paper's full 4 GB protected range must lay out cleanly.
	l := MustLayout(4 << 30)
	if l.BMTLevels() < 4 {
		t.Errorf("4 GB BMT levels = %d, want >= 4", l.BMTLevels())
	}
	if ov := l.StorageOverhead(); ov > 0.10 {
		t.Errorf("4 GB storage overhead = %.4f, want < 10%%", ov)
	}
}
