// Package ringbuf provides a growable FIFO ring buffer for the simulator's
// per-cycle queues.
//
// The cycle core used to model its queues as plain slices consumed with
// `q = q[1:]`: correct, but every pop strands one element of the backing
// array, so a queue that stays non-empty forces append to reallocate over
// and over — a steady drip of garbage on a path executed every simulated
// cycle. Ring keeps a head index into a power-of-two backing array instead:
// Push and PopFront are O(1), and once the buffer has grown to a queue's
// high-water mark no further allocation ever happens.
//
// The zero value is an empty ring ready for use. Ring is not safe for
// concurrent use; the simulator core is single-threaded by construction
// (enforced by shmlint's nodeterminism analyzer).
package ringbuf

// Ring is a FIFO queue over a power-of-two circular backing array.
type Ring[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of elements
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Empty reports whether the ring holds no elements.
func (r *Ring[T]) Empty() bool { return r.n == 0 }

// Push appends v at the tail.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Front returns a pointer to the head element without removing it. The
// pointer is valid until the next Push, PopFront, or Clear. Front panics on
// an empty ring.
func (r *Ring[T]) Front() *T {
	if r.n == 0 {
		panic("ringbuf: Front on empty ring")
	}
	return &r.buf[r.head]
}

// PopFront removes and returns the head element. It panics on an empty
// ring.
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("ringbuf: PopFront on empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release references for GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// At returns a pointer to the i-th element from the head (0 = front). The
// pointer is valid until the next Push, PopFront, or Clear.
func (r *Ring[T]) At(i int) *T {
	if i < 0 || i >= r.n {
		panic("ringbuf: At out of range")
	}
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Clear drops all elements but keeps the backing array for reuse.
func (r *Ring[T]) Clear() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = zero
	}
	r.head = 0
	r.n = 0
}

// grow doubles the backing array (minimum 16 slots) and linearizes the
// queue so head restarts at index 0.
//
//shm:cold grow is the amortized doubling event, not per-access work
func (r *Ring[T]) grow() {
	newCap := 16
	if len(r.buf) > 0 {
		newCap = len(r.buf) * 2
	}
	nb := make([]T, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}
