package ringbuf

import (
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	var r Ring[int]
	if !r.Empty() || r.Len() != 0 {
		t.Fatalf("zero ring not empty")
	}
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	for i := 0; i < 100; i++ {
		if got := *r.At(i); got != i {
			t.Fatalf("At(%d) = %d", i, got)
		}
	}
	for i := 0; i < 100; i++ {
		if got := *r.Front(); got != i {
			t.Fatalf("Front = %d, want %d", got, i)
		}
		if got := r.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	if !r.Empty() {
		t.Fatalf("ring not empty after draining")
	}
}

// TestInterleavedWrap pushes and pops at offsets that force the head to
// wrap the backing array many times, and checks FIFO order throughout.
func TestInterleavedWrap(t *testing.T) {
	var r Ring[int]
	next, expect := 0, 0
	for round := 0; round < 500; round++ {
		for i := 0; i < 7; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 5; i++ {
			if got := r.PopFront(); got != expect {
				t.Fatalf("round %d: PopFront = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	for !r.Empty() {
		if got := r.PopFront(); got != expect {
			t.Fatalf("drain: PopFront = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d values, pushed %d", expect, next)
	}
}

func TestClearKeepsCapacity(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 64; i++ {
		r.Push(i)
	}
	r.Clear()
	if !r.Empty() {
		t.Fatalf("Clear left %d elements", r.Len())
	}
	// A full refill within prior capacity must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			r.Push(i)
		}
		for i := 0; i < 64; i++ {
			r.PopFront()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state push/pop allocated %.1f times per run, want 0", allocs)
	}
}

func TestFrontPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Front on empty ring did not panic")
		}
	}()
	var r Ring[int]
	r.Front()
}
