package ringbuf

import (
	"fmt"

	"shmgpu/internal/snapshot"
)

// Checkpoint/restore for rings. Capacity and head are preserved verbatim
// (elements are written in logical order and placed back at the same
// physical slots); PopFront zeroes released slots, so the unoccupied part
// of the backing array is zero-valued on both sides of a round trip. Cold
// path only.

// maxRingCap bounds restored capacities so a corrupt capacity field fails
// cleanly instead of driving a huge allocation.
const maxRingCap = 1 << 30

// Save writes r's state. saveEl encodes one element.
func Save[T any](e *snapshot.Encoder, r *Ring[T], saveEl func(*snapshot.Encoder, *T)) {
	e.Int(len(r.buf))
	e.Int(r.head)
	e.Int(r.n)
	for i := 0; i < r.n; i++ {
		saveEl(e, r.At(i))
	}
}

// Load restores a ring saved by Save, replacing r's contents. loadEl
// decodes one element in place.
func Load[T any](d *snapshot.Decoder, r *Ring[T], loadEl func(*snapshot.Decoder, *T)) error {
	capN := d.Int()
	head := d.Int()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if capN < 0 || capN > maxRingCap || (capN != 0 && capN&(capN-1) != 0) {
		return fmt.Errorf("ringbuf: bad capacity %d", capN)
	}
	if n < 0 || n > capN || head < 0 || head > capN || (head == capN && capN != 0) {
		return fmt.Errorf("ringbuf: bad head %d / length %d for capacity %d", head, n, capN)
	}
	if capN == 0 {
		*r = Ring[T]{}
		return nil
	}
	r.buf = make([]T, capN)
	r.head = head
	r.n = n
	for i := 0; i < n; i++ {
		loadEl(d, r.At(i))
	}
	return d.Err()
}
