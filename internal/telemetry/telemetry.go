// Package telemetry is the simulator-wide observability layer: typed probe
// events emitted from the choke points of the GPU core, the DRAM channels,
// the memory encryption engines and the detectors; an interval sampler that
// snapshots the aggregate counters into a timeline; log-bucketed latency and
// occupancy histograms with percentile accessors; and machine-readable
// exporters (JSONL event trace, Chrome trace-event JSON, Prometheus text).
//
// The layer is zero-overhead when disabled: every component holds a Probe
// field that is nil by default, and every emit site is guarded by a nil
// check, so an uninstrumented run performs no calls, no allocations, and no
// branches beyond that single comparison.
package telemetry

// EventKind identifies the typed probe events the simulator emits.
type EventKind uint8

const (
	// EvSMIssue is one issued warp instruction. Class: 0 compute, 1 load,
	// 2 store. Unit is the SM id.
	EvSMIssue EventKind = iota
	// EvSMStall is one SM cycle in which no warp could issue while
	// unfinished warps were resident (includes scheduling bubbles).
	EvSMStall
	// EvL2Hit is an L2 read hit. Part/Unit identify the bank.
	EvL2Hit
	// EvL2Miss is an L2 read miss (new or merged). Part/Unit identify the
	// bank.
	EvL2Miss
	// EvDRAMEnqueue is a sector request entering a DRAM channel queue.
	// Value is the queue depth after insertion.
	EvDRAMEnqueue
	// EvDRAMService is a sector request issued to a DRAM bank. Value is
	// the total service latency in cycles (arrival to data transfer done);
	// Class is the stats.TrafficClass of the bytes moved.
	EvDRAMService
	// EvMEEAccept is a request accepted by an MEE from its L2 banks.
	// Class: 0 read, 1 write.
	EvMEEAccept
	// EvMEEReadDone is an MEE read response released to the L2. Value is
	// the submit-to-response latency in cycles (queueing + counter fetch +
	// OTP + data fetch).
	EvMEEReadDone
	// EvMetaFetch is one security-metadata sector request issued by an
	// MEE. Class is the stats.TrafficClass (counter/MAC/BMT/mispredict);
	// Unit: 0 read, 1 write.
	EvMetaFetch
	// EvPredictRO is one read-only prediction consulted on the encryption
	// path. Class: 1 predicted read-only, 0 not.
	EvPredictRO
	// EvPredictStream is one streaming prediction consulted on the MAC
	// path. Class: 1 predicted streaming, 0 not.
	EvPredictStream
	// EvDetection is a completed MAT monitoring phase applied to the
	// predictor. Class bit 0: detected streaming; bit 1: timed out; bit 2:
	// saw a write. Value is the number of accesses observed.
	EvDetection
	// EvMonitorArm is a memory access tracker armed on a chunk.
	EvMonitorArm
	// EvMonitorSkip is an access to an unmonitored chunk while every
	// tracker was busy.
	EvMonitorSkip
	// EvPageFault is a crossbar admission attempt that hit a
	// host-resident page and started a migration (UVM host tier).
	EvPageFault
	// EvPageMigrateIn is a completed host-to-device page migration.
	// Value is the fault-to-resident latency in cycles.
	EvPageMigrateIn
	// EvPageEvict is a device page dropped to the host tier. Class: 0
	// clean, 1 dirty (writeback charged to the link).
	EvPageEvict
	// EvPageThrash is an eviction of a page admitted within the
	// configured thrash window (refault churn indicator).
	EvPageThrash
	// EvPagePrefetch is a migration batch issued ahead of demand by the
	// UVM prefetcher. Value is the batch size in pages (1 for a
	// non-adjacent strided prefetch).
	EvPagePrefetch

	numEventKinds
)

// NumEventKinds is the number of event kinds.
const NumEventKinds = int(numEventKinds)

var kindNames = [...]string{
	EvSMIssue:       "sm_issue",
	EvSMStall:       "sm_stall",
	EvL2Hit:         "l2_hit",
	EvL2Miss:        "l2_miss",
	EvDRAMEnqueue:   "dram_enqueue",
	EvDRAMService:   "dram_service",
	EvMEEAccept:     "mee_accept",
	EvMEEReadDone:   "mee_read_done",
	EvMetaFetch:     "meta_fetch",
	EvPredictRO:     "predict_readonly",
	EvPredictStream: "predict_streaming",
	EvDetection:     "detection",
	EvMonitorArm:    "monitor_arm",
	EvMonitorSkip:   "monitor_skip",
	EvPageFault:     "page_fault",
	EvPageMigrateIn: "page_migrate_in",
	EvPageEvict:     "page_evict",
	EvPageThrash:    "page_thrash",
	EvPagePrefetch:  "page_prefetch",
}

// String returns the export name of the event kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one typed probe event with a cycle timestamp. The payload fields
// are interpreted per kind (see the EventKind docs).
type Event struct {
	// Cycle is the simulated cycle the event occurred at.
	Cycle uint64
	// Kind selects the event type.
	Kind EventKind
	// Class is a kind-specific small discriminator (traffic class,
	// instruction class, prediction outcome bits).
	Class uint8
	// Part is the memory partition (-1 when not applicable).
	Part int16
	// Unit is a kind-specific sub-identifier (SM id, bank id, read/write).
	Unit int16
	// Value is a kind-specific magnitude (latency, queue depth, accesses).
	Value uint64
}

// Probe receives probe events. Components hold a Probe field that is nil by
// default; emit sites must guard with a nil check, which is the entire cost
// of the layer when telemetry is disabled.
type Probe interface {
	Emit(e Event)
}

// Config configures a Collector.
type Config struct {
	// SampleInterval is the timeline sampling period in cycles
	// (0 disables the timeline).
	SampleInterval uint64
	// CaptureEvents enables the raw event trace for the low-frequency
	// lifecycle kinds (MEE read completions, detections, tracker arms).
	// High-frequency kinds (SM issue/stall, L2 hits/misses, DRAM traffic)
	// are always aggregated into counters and histograms only.
	CaptureEvents bool
	// MaxEvents bounds the captured event trace; further events are
	// counted as dropped. 0 means DefaultMaxEvents.
	MaxEvents int
}

// DefaultMaxEvents is the event-trace capacity used when Config.MaxEvents
// is zero.
const DefaultMaxEvents = 1 << 18

// captureWorthy marks the kinds retained in the raw event trace. The
// per-cycle and per-sector kinds would dominate the trace and are fully
// described by the interval counters, so they stay aggregate-only.
var captureWorthy = [NumEventKinds]bool{
	EvMEEReadDone: true,
	EvDetection:   true,
	EvMonitorArm:  true,
	EvMonitorSkip: true,
}

// Collector aggregates probe events: per-kind counters, latency/occupancy
// histograms, a bounded raw event trace, and the interval timeline. It
// implements Probe. All methods are nil-receiver safe, so a nil *Collector
// is a valid disabled probe.
//
// A Collector belongs to one simulation run and is not safe for concurrent
// use (runs are single-goroutine).
type Collector struct {
	cfg    Config
	counts [NumEventKinds]uint64

	// DRAMQueueDepth observes channel queue depth at every enqueue.
	DRAMQueueDepth Histogram
	// DRAMServiceLatency observes per-sector DRAM service latency.
	DRAMServiceLatency Histogram
	// MEEReadLatency observes MEE submit-to-response read latency.
	MEEReadLatency Histogram
	// UVMMigrationLatency observes fault-to-resident page migration
	// latency (UVM host tier).
	UVMMigrationLatency Histogram
	// UVMPrefetchBatch observes the size in pages of every migration
	// batch the UVM prefetcher issues (coalesced PCIe transactions).
	UVMPrefetchBatch Histogram

	events  []Event
	dropped uint64

	timeline     Timeline
	nextSampleAt uint64
	endCycle     uint64
	finished     bool
}

// New builds a Collector.
func New(cfg Config) *Collector {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	c := &Collector{cfg: cfg}
	c.timeline.Interval = cfg.SampleInterval
	return c
}

// Config returns the collector configuration.
func (c *Collector) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// Emit implements Probe.
func (c *Collector) Emit(e Event) {
	if c == nil {
		return
	}
	c.counts[e.Kind]++
	switch e.Kind {
	case EvDRAMEnqueue:
		c.DRAMQueueDepth.Observe(e.Value)
	case EvDRAMService:
		c.DRAMServiceLatency.Observe(e.Value)
	case EvMEEReadDone:
		c.MEEReadLatency.Observe(e.Value)
	case EvPageMigrateIn:
		c.UVMMigrationLatency.Observe(e.Value)
	case EvPagePrefetch:
		c.UVMPrefetchBatch.Observe(e.Value)
	}
	if c.cfg.CaptureEvents && captureWorthy[e.Kind] {
		if len(c.events) < c.cfg.MaxEvents {
			c.events = append(c.events, e) //shm:alloc-ok amortized growth, capped at cfg.MaxEvents
		} else {
			c.dropped++
		}
	}
}

// AddEvents adds n occurrences of kind k to the aggregate counter without
// materializing individual events. The fast-forward cycle loop uses it to
// account, in bulk, the per-cycle stall events an every-cycle run would
// have emitted across a skipped idle gap. k must be a counter-only kind —
// no histogram observation, not capture-worthy — so that n Emit calls and
// one AddEvents(k, n) are exactly equivalent; EvSMStall qualifies.
func (c *Collector) AddEvents(k EventKind, n uint64) {
	if c == nil || n == 0 {
		return
	}
	c.counts[k] += n
}

// NextSampleAt returns the cycle at which the next timeline sample is due,
// or ^uint64(0) when sampling is disabled. The event-horizon fast-forward
// treats it as a component horizon so instrumented runs sample at exactly
// the cycles an every-cycle run would.
func (c *Collector) NextSampleAt() uint64 {
	if c == nil || c.cfg.SampleInterval == 0 {
		return ^uint64(0)
	}
	return c.nextSampleAt
}

// Count returns the number of events of kind k observed.
func (c *Collector) Count(k EventKind) uint64 {
	if c == nil {
		return 0
	}
	return c.counts[k]
}

// Counts returns the full per-kind counter array.
func (c *Collector) Counts() [NumEventKinds]uint64 {
	if c == nil {
		return [NumEventKinds]uint64{}
	}
	return c.counts
}

// Events returns the captured raw event trace (in emission order).
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	return c.events
}

// DroppedEvents returns the number of capture-worthy events discarded after
// the trace filled up.
func (c *Collector) DroppedEvents() uint64 {
	if c == nil {
		return 0
	}
	return c.dropped
}

// EndCycle returns the final simulated cycle recorded by FinishRun.
func (c *Collector) EndCycle() uint64 {
	if c == nil {
		return 0
	}
	return c.endCycle
}
