package telemetry

import (
	"math"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 10, 11}, {1<<11 - 1, 11},
		{math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// A value must never exceed its bucket's upper bound, and must exceed
	// the previous bucket's.
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1023, 1024, 1 << 40, math.MaxUint64} {
		i := bucketIndex(v)
		if v > BucketUpper(i) {
			t.Errorf("value %d above its bucket upper %d", v, BucketUpper(i))
		}
		if i > 0 && v <= BucketUpper(i-1) {
			t.Errorf("value %d not above previous bucket upper %d", v, BucketUpper(i-1))
		}
	}
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d", BucketUpper(0))
	}
	if BucketUpper(10) != 1023 {
		t.Errorf("BucketUpper(10) = %d", BucketUpper(10))
	}
	if BucketUpper(64) != math.MaxUint64 {
		t.Errorf("BucketUpper(64) = %d", BucketUpper(64))
	}
}

func TestHistogramCountsSumMax(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	for _, v := range []uint64{0, 1, 5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Sum() != 111 {
		t.Errorf("Sum = %d", h.Sum())
	}
	if h.Max() != 100 {
		t.Errorf("Max = %d", h.Max())
	}
	if got := h.Mean(); got != 111.0/5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 samples of value 10 (bucket upper 15), 10 of value 1000 (upper
	// 1023). p50 and p90 land in the low bucket, p95 and beyond in the high.
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if got := h.P50(); got != 15 {
		t.Errorf("P50 = %d, want 15", got)
	}
	if got := h.Quantile(0.90); got != 15 {
		t.Errorf("q90 = %d, want 15", got)
	}
	if got := h.P95(); got != 1023 {
		t.Errorf("P95 = %d, want 1023", got)
	}
	if got := h.P99(); got != 1023 {
		t.Errorf("P99 = %d, want 1023", got)
	}
	if got := h.Quantile(0); got != 15 {
		t.Errorf("q0 = %d, want 15 (first sample's bucket)", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Errorf("q1 = %d, want 1023", got)
	}
	// Out-of-range q clamps.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("quantile clamping broken")
	}
	// Empty histogram.
	var empty Histogram
	if empty.P50() != 0 {
		t.Errorf("empty P50 = %d", empty.P50())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	if h.Buckets() != nil {
		t.Fatal("empty histogram has buckets")
	}
	h.Observe(0)
	h.Observe(6) // bucket 3, upper 7
	bks := h.Buckets()
	if len(bks) != 4 {
		t.Fatalf("got %d buckets, want 4 (0..3 retained)", len(bks))
	}
	if bks[0] != (Bucket{Upper: 0, Count: 1}) {
		t.Errorf("bucket 0 = %+v", bks[0])
	}
	if bks[1].Count != 0 || bks[2].Count != 0 {
		t.Errorf("intermediate buckets not empty: %+v", bks)
	}
	if bks[3] != (Bucket{Upper: 7, Count: 1}) {
		t.Errorf("bucket 3 = %+v", bks[3])
	}
	// Cumulative over all buckets equals the count.
	var cum uint64
	for _, b := range bks {
		cum += b.Count
	}
	if cum != h.Count() {
		t.Errorf("cumulative %d != count %d", cum, h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(3)
	a.Observe(100)
	b.Observe(7)
	b.Observe(200)
	a.Merge(&b)
	if a.Count() != 4 || a.Sum() != 310 || a.Max() != 200 {
		t.Errorf("merged: count=%d sum=%d max=%d", a.Count(), a.Sum(), a.Max())
	}
}
