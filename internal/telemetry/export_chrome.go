package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"shmgpu/internal/stats"
)

// ChromeEvent is one trace event in the Chrome trace-event JSON format
// (loadable in chrome://tracing and Perfetto). Timestamps are in
// microseconds by convention; the collector exporters map one simulated
// cycle to one microsecond, so trace durations read directly as cycles,
// while wall-clock producers (the obs span tracer) use real microseconds.
type ChromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   uint64                 `json:"ts"`
	Dur  uint64                 `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Cat  string                 `json:"cat,omitempty"`
	S    string                 `json:"s,omitempty"`
	ID   string                 `json:"id,omitempty"`
	BP   string                 `json:"bp,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	// OtherData carries the run manifest; tracing UIs show it in the
	// metadata panel.
	OtherData Manifest `json:"otherData"`
}

// Chrome trace process ids: pid 0 is the aggregate GPU view (timeline
// counters); pid p+1 is memory partition p (lifecycle events).
const chromePidGPU = 0

// WriteChromeEvents wraps an already-built event list in the trace-event
// JSON envelope. Both the collector exporter below and the obs span tracer
// funnel through it, so every trace artifact the repository produces shares
// one envelope shape.
func WriteChromeEvents(w io.Writer, evs []ChromeEvent, m Manifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
		OtherData:       m,
	})
}

// WriteChromeTrace exports the collector's timeline and captured lifecycle
// events as Chrome trace-event JSON. The output is deterministic for a
// deterministic run (map args marshal with sorted keys).
func WriteChromeTrace(w io.Writer, c *Collector, sum RunSummary, m Manifest) error {
	var evs []ChromeEvent

	evs = append(evs, ChromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePidGPU,
		Args: map[string]interface{}{"name": fmt.Sprintf("gpu %s/%s", sum.Workload, sum.Scheme)},
	})

	// Interval counters from the timeline: per-class traffic, IPC, cache
	// miss rates, detector activity. Counter ("C") events plot as stacked
	// area tracks.
	tl := c.Timeline()
	interval := tl.Interval
	if interval == 0 {
		interval = 1
	}
	for _, d := range tl.Deltas() {
		traffic := map[string]interface{}{}
		for cl := stats.TrafficClass(0); cl < stats.TrafficClass(stats.NumTrafficClasses); cl++ {
			traffic[cl.String()] = d.Traffic.Bytes(cl)
		}
		evs = append(evs,
			ChromeEvent{Name: "dram traffic (bytes/interval)", Ph: "C", Ts: d.Cycle, Pid: chromePidGPU, Args: traffic},
			ChromeEvent{Name: "ipc", Ph: "C", Ts: d.Cycle, Pid: chromePidGPU,
				Args: map[string]interface{}{"ipc": float64(d.Instructions) / float64(interval)}},
			ChromeEvent{Name: "l2 misses (per interval)", Ph: "C", Ts: d.Cycle, Pid: chromePidGPU,
				Args: map[string]interface{}{"misses": d.L2.Misses}},
			ChromeEvent{Name: "dram pending (gauge)", Ph: "C", Ts: d.Cycle, Pid: chromePidGPU,
				Args: map[string]interface{}{"pending": d.DRAMPending}},
			ChromeEvent{Name: "detector activity (per interval)", Ph: "C", Ts: d.Cycle, Pid: chromePidGPU,
				Args: map[string]interface{}{
					"arms":       d.Events[EvMonitorArm],
					"detections": d.Events[EvDetection],
					"skips":      d.Events[EvMonitorSkip],
				}},
		)
	}

	// Lifecycle events from the captured trace.
	for _, e := range c.Events() {
		pid := int(e.Part) + 1
		if e.Part < 0 {
			pid = chromePidGPU
		}
		switch e.Kind {
		case EvMEEReadDone:
			start := e.Cycle
			if e.Value < start {
				start = e.Cycle - e.Value
			} else {
				start = 0
			}
			dur := e.Value
			if dur == 0 {
				dur = 1
			}
			evs = append(evs, ChromeEvent{
				Name: "mee-read", Ph: "X", Ts: start, Dur: dur,
				Pid: pid, Tid: int(e.Unit), Cat: "mee",
			})
		case EvDetection:
			name := "detect-random"
			if e.Class&1 != 0 {
				name = "detect-stream"
			}
			evs = append(evs, ChromeEvent{
				Name: name, Ph: "i", Ts: e.Cycle, Pid: pid, Tid: int(e.Unit),
				Cat: "detector", S: "t",
				Args: map[string]interface{}{
					"accesses":  e.Value,
					"timed_out": e.Class&2 != 0,
					"had_write": e.Class&4 != 0,
				},
			})
		}
	}

	return WriteChromeEvents(w, evs, m)
}
