package telemetry

import (
	"fmt"
	"io"
	"strings"

	"shmgpu/internal/stats"
)

// WritePrometheus exports the end-of-run metrics as a Prometheus text
// exposition dump: run counters, per-class traffic, cache stats, predictor
// breakdowns, the event registry, probe event counts, and the latency and
// occupancy histograms (with p50/p95/p99 gauges). The manifest rides along
// as comment lines. Output is deterministic: every map-keyed series is
// emitted in sorted order.
func WritePrometheus(w io.Writer, c *Collector, sum RunSummary, m Manifest) error {
	var b strings.Builder

	fmt.Fprintf(&b, "# shmgpu run metrics (schema v%d)\n", m.SchemaVersion)
	fmt.Fprintf(&b, "# manifest tool=%q workload=%q scheme=%q quick=%v sms=%d partitions=%d max_cycles=%d sample_interval=%d git_rev=%q started=%q wall_time=%q\n",
		m.Tool, m.Workload, m.Scheme, m.Quick, m.SMs, m.Partitions, m.MaxCycles, m.SampleInterval, m.GitRev, m.Started, m.WallTime)

	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	counter("shmgpu_cycles_total", "Simulated cycles.")
	fmt.Fprintf(&b, "shmgpu_cycles_total %d\n", sum.Cycles)
	counter("shmgpu_instructions_total", "Issued warp instructions.")
	fmt.Fprintf(&b, "shmgpu_instructions_total %d\n", sum.Instructions)
	gauge("shmgpu_ipc", "Instructions per cycle.")
	fmt.Fprintf(&b, "shmgpu_ipc %g\n", sum.IPC)
	gauge("shmgpu_bus_utilization", "Mean DRAM data-bus utilization [0,1].")
	fmt.Fprintf(&b, "shmgpu_bus_utilization %g\n", sum.BusUtilization)
	gauge("shmgpu_run_completed", "1 when all warps finished before the cycle budget.")
	fmt.Fprintf(&b, "shmgpu_run_completed %d\n", boolToInt(sum.Completed))

	counter("shmgpu_traffic_bytes_total", "DRAM bytes moved by traffic class and direction.")
	for cl := stats.TrafficClass(0); cl < stats.TrafficClass(stats.NumTrafficClasses); cl++ {
		fmt.Fprintf(&b, "shmgpu_traffic_bytes_total{class=%q,dir=\"read\"} %d\n", cl.String(), sum.Traffic.ReadBytes[cl])
		fmt.Fprintf(&b, "shmgpu_traffic_bytes_total{class=%q,dir=\"write\"} %d\n", cl.String(), sum.Traffic.WriteBytes[cl])
	}
	gauge("shmgpu_bandwidth_overhead_ratio", "Security-metadata bytes / regular data bytes (paper Fig. 14).")
	fmt.Fprintf(&b, "shmgpu_bandwidth_overhead_ratio %g\n", sum.Traffic.OverheadRatio())

	counter("shmgpu_cache_accesses_total", "Cache accesses (hits + misses).")
	counter("shmgpu_cache_misses_total", "Cache misses.")
	counter("shmgpu_cache_writebacks_total", "Cache write-backs.")
	for _, nc := range sum.Caches {
		fmt.Fprintf(&b, "shmgpu_cache_accesses_total{cache=%q} %d\n", nc.Name, nc.Stats.Accesses())
		fmt.Fprintf(&b, "shmgpu_cache_misses_total{cache=%q} %d\n", nc.Name, nc.Stats.Misses)
		fmt.Fprintf(&b, "shmgpu_cache_writebacks_total{cache=%q} %d\n", nc.Name, nc.Stats.Writebacks)
	}

	counter("shmgpu_predictor_outcomes_total", "Prediction outcomes by predictor and class (paper Figs. 10/11).")
	writePredictor(&b, "readonly", sum.RO)
	writePredictor(&b, "streaming", sum.Stream)

	counter("shmgpu_registry_total", "Ad-hoc MEE/detector event counters, sorted by name.")
	for _, cv := range sum.Counters {
		fmt.Fprintf(&b, "shmgpu_registry_total{name=%q} %d\n", cv.Name, cv.Value)
	}

	counter("shmgpu_probe_events_total", "Probe events by kind.")
	counts := c.Counts()
	for k := 0; k < NumEventKinds; k++ {
		fmt.Fprintf(&b, "shmgpu_probe_events_total{kind=%q} %d\n", EventKind(k).String(), counts[k])
	}
	if d := c.DroppedEvents(); d != 0 {
		counter("shmgpu_probe_events_dropped_total", "Capture-worthy events dropped after the trace filled.")
		fmt.Fprintf(&b, "shmgpu_probe_events_dropped_total %d\n", d)
	}

	if c != nil {
		writeHistogram(&b, "shmgpu_mee_read_latency_cycles", "MEE submit-to-response read latency in cycles.", &c.MEEReadLatency)
		writeHistogram(&b, "shmgpu_dram_service_latency_cycles", "DRAM sector service latency in cycles.", &c.DRAMServiceLatency)
		writeHistogram(&b, "shmgpu_dram_queue_depth", "DRAM channel queue depth at enqueue.", &c.DRAMQueueDepth)
		writeHistogram(&b, "shmgpu_uvm_migration_latency_cycles", "UVM fault-to-resident page migration latency in cycles.", &c.UVMMigrationLatency)
		writeHistogram(&b, "shmgpu_uvm_prefetch_batch_pages", "UVM prefetcher migration batch size in pages.", &c.UVMPrefetchBatch)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func writePredictor(b *strings.Builder, name string, ps stats.PredictorStats) {
	for o := stats.PredictorOutcome(0); o < stats.PredictorOutcome(stats.NumPredictorOutcomes); o++ {
		fmt.Fprintf(b, "shmgpu_predictor_outcomes_total{predictor=%q,outcome=%q} %d\n", name, o.String(), ps.Counts[o])
	}
}

// writeHistogram emits one log-bucketed histogram in Prometheus histogram
// form (cumulative le buckets) plus percentile gauges.
func writeHistogram(b *strings.Builder, name, help string, h *Histogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for _, bk := range h.Buckets() {
		cum += bk.Count
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, bk.Upper, cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(b, "%s_sum %d\n", name, h.Sum())
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
	for _, q := range []struct {
		label string
		v     uint64
	}{{"p50", h.P50()}, {"p95", h.P95()}, {"p99", h.P99()}} {
		qname := name + "_" + q.label
		fmt.Fprintf(b, "# HELP %s %s (%s upper bound)\n# TYPE %s gauge\n", qname, help, q.label, qname)
		fmt.Fprintf(b, "%s %d\n", qname, q.v)
	}
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}
