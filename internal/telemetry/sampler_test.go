package telemetry

import (
	"testing"

	"shmgpu/internal/stats"
)

// fakeSnap builds a snapshot function whose cumulative counters grow
// linearly with the number of calls.
func fakeSnap(calls *int) func() Snapshot {
	return func() Snapshot {
		*calls++
		var s Snapshot
		s.Instructions = uint64(*calls) * 100
		s.Traffic.AddRead(stats.TrafficData, uint64(*calls)*32)
		s.DRAMPending = *calls
		return s
	}
}

func TestSamplerIntervalMath(t *testing.T) {
	c := New(Config{SampleInterval: 1000})
	calls := 0
	snap := fakeSnap(&calls)
	for cy := uint64(0); cy < 3500; cy++ {
		c.MaybeSample(cy, snap)
	}
	c.FinishRun(3500, snap)
	tl := c.Timeline()
	// Samples at 0, 1000, 2000, 3000, plus the terminal one at 3500.
	want := []uint64{0, 1000, 2000, 3000, 3500}
	if len(tl.Samples) != len(want) {
		t.Fatalf("got %d samples, want %d: %+v", len(tl.Samples), len(want), tl.Samples)
	}
	for i, w := range want {
		if tl.Samples[i].Cycle != w {
			t.Errorf("sample %d at cycle %d, want %d", i, tl.Samples[i].Cycle, w)
		}
	}
	if calls != len(want) {
		t.Errorf("snapshot callback invoked %d times, want %d", calls, len(want))
	}
	if c.EndCycle() != 3500 {
		t.Errorf("EndCycle = %d", c.EndCycle())
	}
}

func TestSamplerShortRun(t *testing.T) {
	// A run shorter than one interval still yields two samples (start and
	// terminal), so Deltas produces one usable interval.
	c := New(Config{SampleInterval: 10_000})
	calls := 0
	snap := fakeSnap(&calls)
	for cy := uint64(0); cy < 42; cy++ {
		c.MaybeSample(cy, snap)
	}
	c.FinishRun(42, snap)
	tl := c.Timeline()
	if len(tl.Samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(tl.Samples))
	}
	d := tl.Deltas()
	if len(d) != 1 {
		t.Fatalf("got %d deltas, want 1", len(d))
	}
	if d[0].Cycle != 42 || d[0].Instructions != 100 {
		t.Errorf("delta = %+v", d[0])
	}
}

func TestSamplerFinishIdempotentAndCoincident(t *testing.T) {
	c := New(Config{SampleInterval: 100})
	calls := 0
	snap := fakeSnap(&calls)
	c.MaybeSample(0, snap)
	c.MaybeSample(100, snap)
	// Finish exactly on the last sample cycle: no duplicate sample.
	c.FinishRun(100, snap)
	c.FinishRun(200, snap) // idempotent: ignored
	tl := c.Timeline()
	if len(tl.Samples) != 2 {
		t.Fatalf("got %d samples, want 2 (no duplicate terminal)", len(tl.Samples))
	}
	if c.EndCycle() != 100 {
		t.Errorf("EndCycle = %d after second FinishRun, want 100", c.EndCycle())
	}
}

func TestSamplerDisabled(t *testing.T) {
	c := New(Config{})
	calls := 0
	snap := fakeSnap(&calls)
	for cy := uint64(0); cy < 1000; cy++ {
		c.MaybeSample(cy, snap)
	}
	c.FinishRun(1000, snap)
	if calls != 0 {
		t.Errorf("snapshot invoked %d times with sampling disabled", calls)
	}
	if len(c.Timeline().Samples) != 0 {
		t.Error("timeline populated with sampling disabled")
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Emit(Event{Kind: EvSMIssue})
	c.MaybeSample(0, func() Snapshot { t.Fatal("snapshot on nil collector"); return Snapshot{} })
	c.FinishRun(10, nil)
	if c.Count(EvSMIssue) != 0 || c.Events() != nil || c.DroppedEvents() != 0 {
		t.Error("nil collector returned non-zero state")
	}
	if len(c.Timeline().Samples) != 0 || c.EndCycle() != 0 {
		t.Error("nil collector timeline not empty")
	}
}

func TestDeltasDifferenceCumulativeCounters(t *testing.T) {
	c := New(Config{SampleInterval: 10})
	calls := 0
	snap := fakeSnap(&calls)
	c.MaybeSample(0, snap)
	c.Emit(Event{Kind: EvL2Miss})
	c.Emit(Event{Kind: EvL2Miss})
	c.MaybeSample(10, snap)
	c.Emit(Event{Kind: EvL2Miss})
	c.MaybeSample(20, snap)
	d := c.Timeline().Deltas()
	if len(d) != 2 {
		t.Fatalf("got %d deltas", len(d))
	}
	if d[0].Events[EvL2Miss] != 2 || d[1].Events[EvL2Miss] != 1 {
		t.Errorf("event deltas = %d, %d; want 2, 1", d[0].Events[EvL2Miss], d[1].Events[EvL2Miss])
	}
	if d[0].Instructions != 100 || d[1].Instructions != 100 {
		t.Errorf("instruction deltas = %d, %d", d[0].Instructions, d[1].Instructions)
	}
	// Gauges keep end-of-interval values, not differences.
	if d[0].DRAMPending != 2 || d[1].DRAMPending != 3 {
		t.Errorf("gauge deltas = %d, %d; want 2, 3", d[0].DRAMPending, d[1].DRAMPending)
	}
}

func TestEventCaptureFilterAndCap(t *testing.T) {
	c := New(Config{CaptureEvents: true, MaxEvents: 3})
	// High-frequency kinds are never captured.
	c.Emit(Event{Kind: EvSMIssue})
	c.Emit(Event{Kind: EvL2Hit})
	c.Emit(Event{Kind: EvDRAMEnqueue, Value: 5})
	if len(c.Events()) != 0 {
		t.Fatalf("high-frequency kinds captured: %+v", c.Events())
	}
	// Lifecycle kinds are captured up to the cap; overflow is counted.
	for i := 0; i < 5; i++ {
		c.Emit(Event{Cycle: uint64(i), Kind: EvDetection})
	}
	if len(c.Events()) != 3 {
		t.Errorf("captured %d events, want 3", len(c.Events()))
	}
	if c.DroppedEvents() != 2 {
		t.Errorf("dropped = %d, want 2", c.DroppedEvents())
	}
	// Counters still see everything.
	if c.Count(EvDetection) != 5 || c.Count(EvSMIssue) != 1 {
		t.Errorf("counts wrong: det=%d issue=%d", c.Count(EvDetection), c.Count(EvSMIssue))
	}
}

func TestCollectorRoutesHistograms(t *testing.T) {
	c := New(Config{})
	c.Emit(Event{Kind: EvDRAMEnqueue, Value: 7})
	c.Emit(Event{Kind: EvDRAMService, Value: 120})
	c.Emit(Event{Kind: EvMEEReadDone, Value: 900})
	if c.DRAMQueueDepth.Count() != 1 || c.DRAMQueueDepth.Max() != 7 {
		t.Error("queue-depth histogram not fed")
	}
	if c.DRAMServiceLatency.Count() != 1 || c.DRAMServiceLatency.Max() != 120 {
		t.Error("service-latency histogram not fed")
	}
	if c.MEEReadLatency.Count() != 1 || c.MEEReadLatency.Max() != 900 {
		t.Error("mee-latency histogram not fed")
	}
}
