package telemetry

import (
	"math"
	"math/bits"
)

// histBuckets is the number of logarithmic buckets: bucket 0 holds the
// value 0, and bucket i (i >= 1) holds values v with bits.Len64(v) == i,
// i.e. the range [2^(i-1), 2^i - 1]. 64-bit values need 65 buckets.
const histBuckets = 65

// Histogram is a log2-bucketed histogram of non-negative integer samples
// (latencies in cycles, queue occupancies). The zero value is ready to use.
// Observe is O(1) with no allocation, so it is safe on simulator hot paths
// behind the probe nil check.
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    uint64
	max    uint64
}

// bucketIndex returns the bucket for value v.
func bucketIndex(v uint64) int { return bits.Len64(v) }

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketIndex(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]): the
// inclusive upper bound of the bucket containing the ceil(q*n)-th smallest
// sample. The result is exact for values 0 and 1 and conservative (within
// a factor of 2) elsewhere, which is the usual log-bucket trade-off.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return h.max
}

// P50 returns the median upper bound.
func (h *Histogram) P50() uint64 { return h.Quantile(0.50) }

// P95 returns the 95th-percentile upper bound.
func (h *Histogram) P95() uint64 { return h.Quantile(0.95) }

// P99 returns the 99th-percentile upper bound.
func (h *Histogram) P99() uint64 { return h.Quantile(0.99) }

// Bucket is one non-empty histogram bucket for export.
type Bucket struct {
	// Upper is the inclusive upper bound of the bucket.
	Upper uint64
	// Count is the number of samples in the bucket.
	Count uint64
}

// Buckets returns the buckets up to and including the highest non-empty
// one (empty slice when no samples). Intermediate empty buckets are
// retained so cumulative counts are easy to build.
func (h *Histogram) Buckets() []Bucket {
	top := -1
	for i := histBuckets - 1; i >= 0; i-- {
		if h.counts[i] != 0 {
			top = i
			break
		}
	}
	if top < 0 {
		return nil
	}
	out := make([]Bucket, top+1)
	for i := 0; i <= top; i++ {
		out[i] = Bucket{Upper: BucketUpper(i), Count: h.counts[i]}
	}
	return out
}

// Merge adds other's samples into h (max is the pairwise max).
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}
