package telemetry

import (
	"encoding/json"
	"io"
)

// jsonlRecord wraps each JSONL line with a type tag so consumers can
// stream-filter without schema knowledge.
type jsonlRecord struct {
	Type string `json:"type"`
	// Exactly one of the following is set, matching Type.
	Manifest *Manifest   `json:"manifest,omitempty"`
	Sample   *Snapshot   `json:"sample,omitempty"`
	Event    *jsonlEvent `json:"event,omitempty"`
	Summary  *RunSummary `json:"summary,omitempty"`
}

// jsonlEvent is an Event with the kind rendered symbolically.
type jsonlEvent struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Class uint8  `json:"class"`
	Part  int16  `json:"part"`
	Unit  int16  `json:"unit"`
	Value uint64 `json:"value"`
}

// WriteJSONL exports the run as a JSON-lines stream: one manifest record,
// one sample record per timeline interval (per-interval deltas), one event
// record per captured lifecycle event, and a final summary record. Every
// line is a self-contained JSON object.
func WriteJSONL(w io.Writer, c *Collector, sum RunSummary, m Manifest) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(jsonlRecord{Type: "manifest", Manifest: &m}); err != nil {
		return err
	}
	for _, d := range c.Timeline().Deltas() {
		d := d
		if err := enc.Encode(jsonlRecord{Type: "sample", Sample: &d}); err != nil {
			return err
		}
	}
	for _, e := range c.Events() {
		je := jsonlEvent{
			Cycle: e.Cycle, Kind: e.Kind.String(), Class: e.Class,
			Part: e.Part, Unit: e.Unit, Value: e.Value,
		}
		if err := enc.Encode(jsonlRecord{Type: "event", Event: &je}); err != nil {
			return err
		}
	}
	return enc.Encode(jsonlRecord{Type: "summary", Summary: &sum})
}
