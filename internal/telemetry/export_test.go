package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"shmgpu/internal/stats"
)

var update = flag.Bool("update", false, "rewrite the exporter golden files")

// goldenCollector builds a small deterministic run: two sampling intervals,
// a few lifecycle events, and populated histograms.
func goldenCollector() (*Collector, RunSummary, Manifest) {
	c := New(Config{SampleInterval: 100, CaptureEvents: true})
	snapAt := func(instr, bytes uint64, pending int) func() Snapshot {
		return func() Snapshot {
			var s Snapshot
			s.Instructions = instr
			s.Traffic.AddRead(stats.TrafficData, bytes)
			s.Traffic.AddRead(stats.TrafficMAC, bytes/16)
			s.L2 = stats.CacheStats{Hits: instr / 10, Misses: instr / 20}
			s.DRAMPending = pending
			return s
		}
	}
	c.MaybeSample(0, snapAt(0, 0, 0))
	c.Emit(Event{Cycle: 10, Kind: EvSMIssue, Unit: 0})
	c.Emit(Event{Cycle: 20, Kind: EvDRAMEnqueue, Part: 1, Value: 4})
	c.Emit(Event{Cycle: 30, Kind: EvDRAMService, Part: 1, Unit: 3, Value: 70})
	c.Emit(Event{Cycle: 90, Kind: EvMEEReadDone, Part: 1, Unit: 0, Value: 60})
	c.Emit(Event{Cycle: 95, Kind: EvMonitorArm, Part: 2, Value: 7})
	c.MaybeSample(100, snapAt(800, 4096, 2))
	c.Emit(Event{Cycle: 150, Kind: EvDetection, Part: 2, Class: 1 | 4, Value: 32})
	c.Emit(Event{Cycle: 180, Kind: EvDetection, Part: 0, Class: 2, Value: 9})
	c.FinishRun(200, snapAt(1500, 8192, 0))

	sum := RunSummary{
		Workload:       "golden",
		Scheme:         "SHM",
		Cycles:         200,
		Instructions:   1500,
		IPC:            7.5,
		Completed:      true,
		BusUtilization: 0.25,
		Caches: []NamedCache{
			{Name: "l1", Stats: stats.CacheStats{Hits: 100, Misses: 50}},
			{Name: "l2", Stats: stats.CacheStats{Hits: 150, Misses: 75, Writebacks: 5}},
		},
	}
	sum.Traffic.AddRead(stats.TrafficData, 8192)
	sum.Traffic.AddRead(stats.TrafficMAC, 512)
	sum.RO.Record(stats.OutcomeCorrect)
	sum.Stream.Record(stats.OutcomeMPInit)
	var reg stats.Registry
	reg.Add("mat_monitored", 12)
	reg.Add("access_total", 400)
	sum.Counters = reg.Snapshot()

	m := Manifest{
		Tool: "test", SchemaVersion: SchemaVersion,
		Workload: "golden", Scheme: "SHM",
		SMs: 4, Partitions: 12, MaxCycles: 1000, SampleInterval: 100,
	}
	return c, sum, m
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file; run with -update after intentional format changes\ngot:\n%s", name, got)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	c, sum, m := goldenCollector()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c, sum, m); err != nil {
		t.Fatal(err)
	}
	// Must be valid JSON with the expected envelope regardless of golden.
	var parsed struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		OtherData   Manifest                 `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	if parsed.OtherData.Workload != "golden" {
		t.Errorf("manifest not embedded: %+v", parsed.OtherData)
	}
	checkGolden(t, "chrome_trace.golden.json", buf.Bytes())
}

func TestPrometheusGolden(t *testing.T) {
	c, sum, m := goldenCollector()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, c, sum, m); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.prom", buf.Bytes())
}

func TestPrometheusDeterministic(t *testing.T) {
	c, sum, m := goldenCollector()
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, c, sum, m); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, c, sum, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("prometheus output not byte-stable across writes")
	}
}

func TestJSONLValid(t *testing.T) {
	c, sum, m := goldenCollector()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, c, sum, m); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var types []string
	for sc.Scan() {
		var rec struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		types = append(types, rec.Type)
	}
	if len(types) < 4 {
		t.Fatalf("too few records: %v", types)
	}
	if types[0] != "manifest" || types[len(types)-1] != "summary" {
		t.Errorf("record order wrong: %v", types)
	}
	nEvents := 0
	for _, ty := range types {
		if ty == "event" {
			nEvents++
		}
	}
	// goldenCollector captures 4 lifecycle events (read-done, arm, 2
	// detections); high-frequency kinds must not appear.
	if nEvents != 4 {
		t.Errorf("got %d event records, want 4", nEvents)
	}
}

// Exporters must tolerate a nil collector (summary-only exports).
func TestExportersNilCollector(t *testing.T) {
	_, sum, m := goldenCollector()
	for name, fn := range map[string]func() error{
		"chrome": func() error { return WriteChromeTrace(&bytes.Buffer{}, nil, sum, m) },
		"prom":   func() error { return WritePrometheus(&bytes.Buffer{}, nil, sum, m) },
		"jsonl":  func() error { return WriteJSONL(&bytes.Buffer{}, nil, sum, m) },
	} {
		if err := fn(); err != nil {
			t.Errorf("%s exporter failed on nil collector: %v", name, err)
		}
	}
}
