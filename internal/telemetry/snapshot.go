package telemetry

import (
	"fmt"

	"shmgpu/internal/snapshot"
)

// Checkpoint/restore for the collector. A forked run must produce
// byte-identical telemetry artifacts (JSONL, timeline, histograms) to a
// from-scratch run, so the collector's position — sampled timeline,
// event trace, histogram contents, next-sample cycle — is part of the
// simulator state proper. The restore target must be a collector built by
// New with the identical (normalized) config. Cold path only.

func (h *Histogram) saveState(e *snapshot.Encoder) {
	for i := range h.counts {
		e.U64(h.counts[i])
	}
	e.U64(h.n)
	e.U64(h.sum)
	e.U64(h.max)
}

func (h *Histogram) loadState(d *snapshot.Decoder) {
	for i := range h.counts {
		h.counts[i] = d.U64()
	}
	h.n = d.U64()
	h.sum = d.U64()
	h.max = d.U64()
}

func saveEvent(e *snapshot.Encoder, ev *Event) {
	e.U64(ev.Cycle)
	e.U8(uint8(ev.Kind))
	e.U8(ev.Class)
	e.I16(ev.Part)
	e.I16(ev.Unit)
	e.U64(ev.Value)
}

func loadEvent(d *snapshot.Decoder, ev *Event) {
	ev.Cycle = d.U64()
	ev.Kind = EventKind(d.U8())
	ev.Class = d.U8()
	ev.Part = d.I16()
	ev.Unit = d.I16()
	ev.Value = d.U64()
}

func saveSample(e *snapshot.Encoder, s *Snapshot) {
	e.U64(s.Cycle)
	e.U64(s.Instructions)
	s.Traffic.SaveState(e)
	s.L1.SaveState(e)
	s.L2.SaveState(e)
	s.Ctr.SaveState(e)
	s.MAC.SaveState(e)
	s.BMT.SaveState(e)
	e.Int(s.DRAMPending)
	for i := range s.Events {
		e.U64(s.Events[i])
	}
}

func loadSample(d *snapshot.Decoder, s *Snapshot) {
	s.Cycle = d.U64()
	s.Instructions = d.U64()
	s.Traffic.LoadState(d)
	s.L1.LoadState(d)
	s.L2.LoadState(d)
	s.Ctr.LoadState(d)
	s.MAC.LoadState(d)
	s.BMT.LoadState(d)
	s.DRAMPending = d.Int()
	for i := range s.Events {
		s.Events[i] = d.U64()
	}
}

// SaveState writes the collector's full state.
func (c *Collector) SaveState(e *snapshot.Encoder) {
	e.U64(c.cfg.SampleInterval)
	e.Bool(c.cfg.CaptureEvents)
	e.Int(c.cfg.MaxEvents)
	for i := range c.counts {
		e.U64(c.counts[i])
	}
	c.DRAMQueueDepth.saveState(e)
	c.DRAMServiceLatency.saveState(e)
	c.MEEReadLatency.saveState(e)
	c.UVMMigrationLatency.saveState(e)
	c.UVMPrefetchBatch.saveState(e)
	e.Int(len(c.events))
	for i := range c.events {
		saveEvent(e, &c.events[i])
	}
	e.U64(c.dropped)
	e.U64(c.timeline.Interval)
	e.Int(len(c.timeline.Samples))
	for i := range c.timeline.Samples {
		saveSample(e, &c.timeline.Samples[i])
	}
	e.U64(c.nextSampleAt)
	e.U64(c.endCycle)
	e.Bool(c.finished)
}

// LoadState restores state saved by SaveState into a same-configured
// collector. (Config.MaxEvents is compared post-normalization: New maps
// 0 to DefaultMaxEvents on both sides.)
func (c *Collector) LoadState(d *snapshot.Decoder) error {
	interval := d.U64()
	capture := d.Bool()
	maxEvents := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if interval != c.cfg.SampleInterval || capture != c.cfg.CaptureEvents || maxEvents != c.cfg.MaxEvents {
		return fmt.Errorf("telemetry: snapshot collector config {%d %v %d} does not match target {%d %v %d}",
			interval, capture, maxEvents, c.cfg.SampleInterval, c.cfg.CaptureEvents, c.cfg.MaxEvents)
	}
	for i := range c.counts {
		c.counts[i] = d.U64()
	}
	c.DRAMQueueDepth.loadState(d)
	c.DRAMServiceLatency.loadState(d)
	c.MEEReadLatency.loadState(d)
	c.UVMMigrationLatency.loadState(d)
	c.UVMPrefetchBatch.loadState(d)
	nEvents := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	c.events = make([]Event, nEvents)
	for i := range c.events {
		loadEvent(d, &c.events[i])
	}
	c.dropped = d.U64()
	c.timeline.Interval = d.U64()
	nSamples := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	c.timeline.Samples = make([]Snapshot, nSamples)
	for i := range c.timeline.Samples {
		loadSample(d, &c.timeline.Samples[i])
	}
	c.nextSampleAt = d.U64()
	c.endCycle = d.U64()
	c.finished = d.Bool()
	return d.Err()
}
