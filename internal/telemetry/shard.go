package telemetry

// ShardProbe is a per-shard event buffer for parallel tick execution: it
// implements Probe with no locks by accumulating counters, histogram
// observations, and captured events locally, for deterministic merging
// into the run's Collector at fixed synchronization points. The sharded
// engine gives each memory partition (and each SM cluster) its own
// ShardProbe, so concurrent emits never share state; the engine then
// replays captures in a fixed lane/partition order and flushes counters
// at sample boundaries, making the merged Collector byte-identical to a
// sequential run's.
//
// Lanes order the captured events within one tick: the engine switches
// the active lane as it moves through the tick's phases (crossbar
// delivery, L2, MEE, DRAM), and the replay walks lanes in phase-major,
// shard-ascending order — exactly the emission order of the sequential
// loop, which interleaves shards phase by phase.
type ShardProbe struct {
	counts [NumEventKinds]uint64

	dramQueueDepth     Histogram
	dramServiceLatency Histogram
	meeReadLatency     Histogram

	capture bool
	lanes   [][]Event
	lane    int
	pending int
}

// NewShardProbe builds a shard buffer with the given number of capture
// lanes. capture mirrors the collector's Config.CaptureEvents; when
// false, capture-worthy events are counted but not buffered.
func NewShardProbe(lanes int, capture bool) *ShardProbe {
	return &ShardProbe{capture: capture, lanes: make([][]Event, lanes)}
}

// SetLane selects the capture lane subsequent emissions land in.
func (p *ShardProbe) SetLane(lane int) { p.lane = lane }

// HasCaptures reports whether any lane holds unreplayed events.
func (p *ShardProbe) HasCaptures() bool { return p.pending > 0 }

// Emit implements Probe. Unlike Collector.Emit it applies no MaxEvents
// bound — the cap is enforced during replay (AbsorbLane), where the
// global emission order is known; per-tick buffers stay small because
// the engine replays every tick.
func (p *ShardProbe) Emit(e Event) {
	p.counts[e.Kind]++
	switch e.Kind {
	case EvDRAMEnqueue:
		p.dramQueueDepth.Observe(e.Value)
	case EvDRAMService:
		p.dramServiceLatency.Observe(e.Value)
	case EvMEEReadDone:
		p.meeReadLatency.Observe(e.Value)
	}
	if p.capture && captureWorthy[e.Kind] {
		p.lanes[p.lane] = append(p.lanes[p.lane], e) //shm:alloc-ok amortized lane-buffer growth, drained and reused every tick
		p.pending++
	}
}

// AbsorbCounts folds the shard's counters and histogram observations into
// the collector and zeroes them. Counter addition and histogram merging
// are commutative, so absorption order across shards does not matter; the
// engine calls this at sample boundaries and at end of run, before the
// collector stamps counters into a timeline sample.
func (c *Collector) AbsorbCounts(p *ShardProbe) {
	if c == nil || p == nil {
		return
	}
	for k := range p.counts {
		c.counts[k] += p.counts[k]
	}
	p.counts = [NumEventKinds]uint64{}
	c.DRAMQueueDepth.Merge(&p.dramQueueDepth)
	c.DRAMServiceLatency.Merge(&p.dramServiceLatency)
	c.MEEReadLatency.Merge(&p.meeReadLatency)
	p.dramQueueDepth = Histogram{}
	p.dramServiceLatency = Histogram{}
	p.meeReadLatency = Histogram{}
}

// AbsorbLane replays one lane's captured events into the collector's
// trace in emission order, honoring the MaxEvents bound and the dropped
// counter exactly as direct emission would, then clears the lane (keeping
// its capacity). Counters are NOT touched — Emit already counted the
// events when they were buffered; AbsorbCounts moves those.
func (c *Collector) AbsorbLane(p *ShardProbe, lane int) {
	if c == nil || p == nil || lane >= len(p.lanes) {
		return
	}
	buf := p.lanes[lane]
	if len(buf) == 0 {
		return
	}
	for _, e := range buf {
		if len(c.events) < c.cfg.MaxEvents {
			c.events = append(c.events, e) //shm:alloc-ok amortized growth, capped at cfg.MaxEvents
		} else {
			c.dropped++
		}
	}
	p.pending -= len(buf)
	p.lanes[lane] = buf[:0]
}
