package telemetry

import (
	"os/exec"
	"strings"

	"shmgpu/internal/stats"
)

// SchemaVersion identifies the export format; bump on breaking changes to
// the trace/metrics layouts.
const SchemaVersion = 1

// Manifest identifies one run in every export: what was simulated, under
// which configuration, by which build. All fields are plain values so the
// manifest marshals deterministically.
type Manifest struct {
	Tool          string `json:"tool"`
	SchemaVersion int    `json:"schema_version"`
	Workload      string `json:"workload"`
	Scheme        string `json:"scheme"`
	// Quick reports whether the scaled-down configuration was used.
	Quick bool `json:"quick"`
	// SMs, Partitions and MaxCycles summarize the GPU configuration.
	SMs        int    `json:"sms"`
	Partitions int    `json:"partitions"`
	MaxCycles  uint64 `json:"max_cycles"`
	// SampleInterval is the timeline sampling period (0 = disabled).
	SampleInterval uint64 `json:"sample_interval"`
	// Seed is the workload seed the run's warp programs derived their
	// random streams from; together with (Workload, Scheme) it pins the
	// run's entire behaviour, so reruns with the same manifest reproduce
	// byte-identical counters and traces.
	Seed int64 `json:"seed"`
	// GitRev is the source revision the binary was built from ("" when
	// unknown).
	GitRev string `json:"git_rev,omitempty"`
	// Started is the wall-clock start time (RFC3339; "" in tests).
	Started string `json:"started,omitempty"`
	// WallTime is the elapsed wall-clock duration of the run ("" in
	// tests).
	WallTime string `json:"wall_time,omitempty"`
}

// GitRevision returns the short git revision of dir, or "" when git or the
// repository is unavailable. Used by the commands to stamp manifests; never
// fails the run.
func GitRevision(dir string) string {
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// NamedCache is one cache's end-of-run stats under a stable name.
type NamedCache struct {
	Name  string           `json:"name"`
	Stats stats.CacheStats `json:"stats"`
}

// RunSummary is the neutral end-of-run result the exporters consume. It
// mirrors the simulator's Result without importing it (the GPU packages
// import telemetry, not the other way around).
type RunSummary struct {
	Workload       string               `json:"workload"`
	Scheme         string               `json:"scheme"`
	Cycles         uint64               `json:"cycles"`
	Instructions   uint64               `json:"instructions"`
	IPC            float64              `json:"ipc"`
	Completed      bool                 `json:"completed"`
	BusUtilization float64              `json:"bus_utilization"`
	Traffic        stats.Traffic        `json:"traffic"`
	Caches         []NamedCache         `json:"caches"`
	RO             stats.PredictorStats `json:"readonly_predictor"`
	Stream         stats.PredictorStats `json:"streaming_predictor"`
	Counters       []stats.CounterValue `json:"counters"`
}
