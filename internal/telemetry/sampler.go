package telemetry

import "shmgpu/internal/stats"

// Snapshot is one timeline sample: the cumulative aggregate counters of the
// whole simulated system at a cycle. Per-interval activity is recovered by
// differencing consecutive snapshots (see Timeline.Deltas).
type Snapshot struct {
	// Cycle is the sample timestamp.
	Cycle uint64
	// Instructions is the cumulative issued-instruction count.
	Instructions uint64
	// Traffic is the cumulative DRAM traffic by class, all partitions.
	Traffic stats.Traffic
	// L1, L2 and the three metadata caches, aggregated across instances.
	L1, L2, Ctr, MAC, BMT stats.CacheStats
	// DRAMPending is the instantaneous queued+in-flight DRAM request count
	// (a gauge, not differenced).
	DRAMPending int
	// Events is the cumulative per-kind probe event counter array.
	Events [NumEventKinds]uint64
}

// Timeline is the interval-sampled history of one run. Samples hold
// cumulative counters at ascending cycles.
type Timeline struct {
	// Interval is the sampling period in cycles.
	Interval uint64
	// Samples are the cumulative snapshots, first at cycle 0, then every
	// Interval cycles, then one final sample at the end of the run.
	Samples []Snapshot
}

// MaybeSample takes a timeline sample when the sampling interval has
// elapsed. The snapshot callback is only invoked when a sample is due, so
// the per-cycle cost is one comparison. snap fills the simulator-owned
// fields; the collector stamps Cycle and Events.
func (c *Collector) MaybeSample(now uint64, snap func() Snapshot) {
	if c == nil || c.cfg.SampleInterval == 0 || now < c.nextSampleAt {
		return
	}
	s := snap()
	s.Cycle = now
	s.Events = c.counts
	c.timeline.Samples = append(c.timeline.Samples, s) //shm:alloc-ok one sample per SampleInterval, not per tick
	c.nextSampleAt = now + c.cfg.SampleInterval
}

// FinishRun records the final cycle and appends a terminal sample so runs
// shorter than one interval still produce a usable timeline. Idempotent.
func (c *Collector) FinishRun(now uint64, snap func() Snapshot) {
	if c == nil || c.finished {
		return
	}
	c.finished = true
	c.endCycle = now
	if c.cfg.SampleInterval == 0 {
		return
	}
	if n := len(c.timeline.Samples); n > 0 && c.timeline.Samples[n-1].Cycle >= now {
		return
	}
	s := snap()
	s.Cycle = now
	s.Events = c.counts
	c.timeline.Samples = append(c.timeline.Samples, s)
}

// Timeline returns the sampled timeline.
func (c *Collector) Timeline() Timeline {
	if c == nil {
		return Timeline{}
	}
	return c.timeline
}

// Deltas converts the cumulative samples into per-interval activity: entry
// i covers (Samples[i].Cycle, Samples[i+1].Cycle] and carries the counter
// differences, stamped with the interval-end cycle. Gauges (DRAMPending)
// keep their end-of-interval value. An empty or single-sample timeline
// yields no deltas.
func (t Timeline) Deltas() []Snapshot {
	if len(t.Samples) < 2 {
		return nil
	}
	out := make([]Snapshot, len(t.Samples)-1)
	for i := 1; i < len(t.Samples); i++ {
		prev, cur := t.Samples[i-1], t.Samples[i]
		d := Snapshot{
			Cycle:        cur.Cycle,
			Instructions: cur.Instructions - prev.Instructions,
			Traffic:      subTraffic(cur.Traffic, prev.Traffic),
			L1:           subCache(cur.L1, prev.L1),
			L2:           subCache(cur.L2, prev.L2),
			Ctr:          subCache(cur.Ctr, prev.Ctr),
			MAC:          subCache(cur.MAC, prev.MAC),
			BMT:          subCache(cur.BMT, prev.BMT),
			DRAMPending:  cur.DRAMPending,
		}
		for k := range d.Events {
			d.Events[k] = cur.Events[k] - prev.Events[k]
		}
		out[i-1] = d
	}
	return out
}

func subTraffic(a, b stats.Traffic) stats.Traffic {
	var out stats.Traffic
	for i := 0; i < stats.NumTrafficClasses; i++ {
		out.ReadBytes[i] = a.ReadBytes[i] - b.ReadBytes[i]
		out.WriteBytes[i] = a.WriteBytes[i] - b.WriteBytes[i]
	}
	return out
}

func subCache(a, b stats.CacheStats) stats.CacheStats {
	return stats.CacheStats{
		Hits:        a.Hits - b.Hits,
		Misses:      a.Misses - b.Misses,
		MSHRMerges:  a.MSHRMerges - b.MSHRMerges,
		Evictions:   a.Evictions - b.Evictions,
		Writebacks:  a.Writebacks - b.Writebacks,
		SectorFills: a.SectorFills - b.SectorFills,
	}
}
