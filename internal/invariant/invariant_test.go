package invariant

import (
	"strings"
	"testing"
)

// record installs a capturing handler for the duration of the test and
// returns the capture slice.
func record(t *testing.T) *[]*Violation {
	t.Helper()
	var got []*Violation
	prev := SetHandler(func(v *Violation) { got = append(got, v) })
	t.Cleanup(func() { SetHandler(prev) })
	return &got
}

func TestFailfReportsFullContext(t *testing.T) {
	got := record(t)
	Failf("request-conservation", "dram[3]", 12345, "leaked %d of %d requests", 2, 700)
	if len(*got) != 1 {
		t.Fatalf("got %d violations, want 1", len(*got))
	}
	v := (*got)[0]
	if v.Check != "request-conservation" || v.Component != "dram[3]" || v.Cycle != 12345 {
		t.Errorf("violation context = %+v", v)
	}
	msg := v.Error()
	for _, want := range []string{"request-conservation", "dram[3]", "cycle=12345", "leaked 2 of 700 requests"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestFailfReportsEvenWhenDisabled(t *testing.T) {
	got := record(t)
	prev := Enabled()
	SetEnabled(false)
	defer SetEnabled(prev)
	Failf("drain-convergence", "system", 9, "stuck")
	if len(*got) != 1 {
		t.Fatalf("Failf with checking disabled reported %d violations, want 1 (reporting is never gated)", len(*got))
	}
}

func TestDefaultHandlerPanicsWithViolation(t *testing.T) {
	defer func() {
		r := recover()
		v, ok := r.(*Violation)
		if !ok {
			t.Fatalf("recovered %T (%v), want *Violation", r, r)
		}
		if v.Check != "clock-monotonic" {
			t.Errorf("Check = %q", v.Check)
		}
	}()
	Failf("clock-monotonic", "dram[0]", 10, "now=9 < last=10")
}

func TestSetEnabledToggles(t *testing.T) {
	prev := Enabled()
	defer SetEnabled(prev)
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("SetEnabled(true) did not enable")
	}
	SetEnabled(false)
	if Enabled() {
		t.Fatal("SetEnabled(false) did not disable")
	}
}

func TestSetHandlerNilRestoresPanic(t *testing.T) {
	SetHandler(func(*Violation) {})
	SetHandler(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("default handler after SetHandler(nil) did not panic")
		}
	}()
	Failf("counter-overflow", "registry", 0, "wrap")
}
