//go:build shmcheck

package invariant

// defaultEnabled is true under the shmcheck build tag, so
// `go test -tags shmcheck ./...` runs the whole suite with the sanitizer
// armed without touching any call sites.
const defaultEnabled = true
