// Package invariant is the simulator's runtime sanitizer: cheap, centrally
// gated consistency checks at the cycle model's choke points (request
// conservation across the DRAM queues, clock monotonicity, MSHR and queue
// occupancy bounds, BMT node consistency, counter overflow), reporting
// violations with full context — check name, component, cycle, detail —
// instead of bare panics.
//
// # Gating and cost
//
// Expensive detection work must sit behind Enabled():
//
//	if invariant.Enabled() {
//		if leaked := ch.enqueued - ch.served(); leaked != 0 { ... }
//	}
//
// Enabled() is a single package-level bool load, so the sanitizer-off
// configuration adds one predictable branch per check site and nothing
// else; this is the same zero-overhead contract the telemetry probes keep.
// The default is off; it turns on under the `shmcheck` build tag, via the
// SHMGPU_CHECK environment variable, or programmatically with SetEnabled
// (shmsim exposes it as the -check flag).
//
// # Panic policy (the panic / invariant split)
//
// The simulator distinguishes two failure classes, and shmlint's analyzers
// plus this package make the split mechanical:
//
//   - panic() is reserved for programmer error detectable without
//     simulating: invalid configuration at construction time (Config
//     validation in New* functions), API misuse with a documented calling
//     contract (bmt.Tree.Update before Rebuild, short serialization
//     buffers), and impossible states in pure data structures.
//
//   - invariant.Failf reports cycle-model invariant violations: states that
//     can only arise mid-simulation from a modeling bug and that would
//     silently corrupt the paper's comparisons (a leaked request, a clock
//     running backwards, an occupancy bound exceeded). Failf always
//     reports, even when Enabled() is false — gating applies to the cost
//     of detecting a violation, never to the cost of reporting one that a
//     always-on guard already caught.
//
// By default a violation panics with a *Violation carrying the full
// context; tests install a recording handler via SetHandler.
package invariant

import (
	"fmt"
	"os"
)

// enabled gates the expensive detection checks. Initialized from the
// shmcheck build tag (see enabled_on.go / enabled_off.go) and the
// SHMGPU_CHECK environment variable; mutable via SetEnabled.
var enabled = defaultEnabled || os.Getenv("SHMGPU_CHECK") != ""

// Enabled reports whether expensive invariant checking is on. Check sites
// on hot paths must consult this before doing any detection work.
func Enabled() bool { return enabled }

// SetEnabled turns expensive invariant checking on or off at runtime.
// Toggle before a run starts; checks that accumulate state (request
// conservation counters) are only coherent when the setting is constant
// for a whole run.
func SetEnabled(v bool) { enabled = v }

// Violation is one detected invariant violation with its full context.
type Violation struct {
	// Check names the violated invariant ("request-conservation",
	// "clock-monotonic", "mshr-occupancy", "queue-occupancy",
	// "bmt-consistency", "counter-overflow", "drain-convergence",
	// "warp-residency").
	Check string
	// Component identifies the violating instance ("dram[3]", "cache l2",
	// "sm[12]", "bmt[p0]", "system").
	Component string
	// Cycle is the simulated cycle at detection time (0 when the component
	// has no clock, e.g. the cache state machine).
	Cycle uint64
	// Detail is the formatted, check-specific context (request ids,
	// occupancy numbers, counter names).
	Detail string
}

// Error implements error so violations can flow through error paths.
func (v *Violation) Error() string {
	return fmt.Sprintf("invariant violation [%s] component=%s cycle=%d: %s",
		v.Check, v.Component, v.Cycle, v.Detail)
}

// Handler consumes reported violations. The default handler panics with
// the *Violation; tests substitute a recorder.
type Handler func(*Violation)

var handler Handler = func(v *Violation) { panic(v) }

// SetHandler installs h as the violation handler and returns the previous
// one. A nil h restores the default panicking handler.
func SetHandler(h Handler) Handler {
	prev := handler
	if h == nil {
		h = func(v *Violation) { panic(v) }
	}
	handler = h
	return prev
}

// CollectInto arms the sanitizer and records every reported violation
// into dst instead of panicking, returning a restore function that
// reinstates the previous handler and enablement. It is the harness-side
// adapter that lets the differential-fuzzing oracles (internal/fuzz) and
// tests reuse the runtime checks as a recording oracle:
//
//	var got []invariant.Violation
//	restore := invariant.CollectInto(&got)
//	defer restore()
func CollectInto(dst *[]Violation) (restore func()) {
	prevEnabled := Enabled()
	SetEnabled(true)
	prevHandler := SetHandler(func(v *Violation) { *dst = append(*dst, *v) })
	return func() {
		SetHandler(prevHandler)
		SetEnabled(prevEnabled)
	}
}

// Failf reports a violation of check on component at cycle with formatted
// detail. It always reports regardless of Enabled(): gating is the check
// site's job (and only for detection work that costs more than a branch).
func Failf(check, component string, cycle uint64, format string, args ...any) {
	handler(&Violation{
		Check:     check,
		Component: component,
		Cycle:     cycle,
		Detail:    fmt.Sprintf(format, args...),
	})
}
