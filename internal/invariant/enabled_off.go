//go:build !shmcheck

package invariant

// defaultEnabled is false in normal builds: the sanitizer costs one branch
// per check site and performs no detection work.
const defaultEnabled = false
