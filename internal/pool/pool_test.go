package pool

import (
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryTaskExactlyOnce(t *testing.T) {
	for _, par := range []int{0, 1, 2, 4, 8} {
		p := New(par)
		hits := make([]atomic.Int32, 100)
		tasks := make([]func(), len(hits))
		for i := range tasks {
			i := i
			tasks[i] = func() { hits[i].Add(1) }
		}
		p.Run(tasks)
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("parallelism %d: task %d ran %d times", par, i, n)
			}
		}
		p.Close()
	}
}

func TestRunReusableAcrossBatches(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	for batch := 0; batch < 50; batch++ {
		n := 1 + batch%7 // batches both smaller and larger than parallelism
		tasks := make([]func(), n)
		for i := range tasks {
			tasks[i] = func() { total.Add(1) }
		}
		p.Run(tasks)
	}
	want := int64(0)
	for batch := 0; batch < 50; batch++ {
		want += int64(1 + batch%7)
	}
	if got := total.Load(); got != want {
		t.Fatalf("ran %d tasks across batches, want %d", got, want)
	}
}

func TestRunHappensBefore(t *testing.T) {
	// Results written by tasks must be readable by the coordinator after
	// Run returns without extra synchronization (plain slice writes).
	p := New(8)
	defer p.Close()
	out := make([]int, 64)
	tasks := make([]func(), len(out))
	for i := range tasks {
		i := i
		tasks[i] = func() { out[i] = i * i }
	}
	p.Run(tasks)
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	p := New(4)
	defer p.Close()
	p.Run(nil)
	p.Run([]func(){})
}

func TestParallelism(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {2, 2}, {8, 8}} {
		p := New(tc.in)
		if got := p.Parallelism(); got != tc.want {
			t.Errorf("New(%d).Parallelism() = %d, want %d", tc.in, got, tc.want)
		}
		p.Close()
	}
}

func TestRunSteadyStateAllocFree(t *testing.T) {
	p := New(4)
	defer p.Close()
	var sink atomic.Int64
	tasks := make([]func(), 16)
	for i := range tasks {
		tasks[i] = func() { sink.Add(1) }
	}
	p.Run(tasks) // warm up
	allocs := testing.AllocsPerRun(100, func() { p.Run(tasks) })
	if allocs != 0 {
		t.Fatalf("Run allocates %.1f per batch in steady state, want 0", allocs)
	}
}
