// Package pool provides the repository's one fixed worker-pool
// implementation, shared by the sweep-level prefetcher
// (experiments.Runner.Prefetch) and the intra-run shard engine
// (gpu.Config.ParallelShards). A Pool owns a fixed set of long-lived
// worker goroutines and executes batches of tasks with fork/join
// semantics: Run returns only after every task has completed, and the
// channel handoffs give the caller the happens-before edges it needs to
// read the tasks' results without further synchronization.
//
// The steady-state Run path performs no allocations — workers are
// spawned once at construction, the wake/join channels are buffered, and
// task dispatch is a single atomic counter — which is what lets the
// cycle-sharded tick loop sit inside testing.AllocsPerRun with a zero
// budget. Determinism is the caller's problem by construction: the pool
// promises only that every task runs exactly once between fork and join;
// engines built on it (the shard engine's two-phase barrier) must make
// their results independent of which worker runs which task.
package pool

import "sync/atomic"

// Pool is a fixed set of reusable worker goroutines. The zero value is
// not usable; construct with New. A Pool is not safe for concurrent Run
// calls — it serves one coordinator at a time, which is all the fork/join
// model needs.
type Pool struct {
	tasks []func()
	// tagged is the RunTagged batch; at most one of tasks/tagged is
	// non-nil during a batch.
	tagged []func(worker int)
	next   atomic.Int64
	// wake and join are buffered to the worker count so the coordinator
	// never blocks handing out a batch; quit ends the workers at Close.
	wake chan struct{}
	join chan struct{}
	quit chan struct{}
	// workers is the number of spawned goroutines: parallelism-1, because
	// the coordinator calling Run participates in draining the batch.
	workers int
}

// New builds a pool with the given total parallelism (the coordinator
// counts as one, so parallelism-1 goroutines are spawned; parallelism <= 1
// spawns none and Run degenerates to inline sequential execution).
func New(parallelism int) *Pool {
	workers := parallelism - 1
	if workers < 0 {
		workers = 0
	}
	p := &Pool{
		wake:    make(chan struct{}, workers),
		join:    make(chan struct{}, workers),
		quit:    make(chan struct{}),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		go p.worker(i + 1) //shm:parallel-ok — fixed pool worker; every batch joins before Run returns
	}
	return p
}

func (p *Pool) worker(id int) {
	for {
		select {
		case <-p.wake:
			p.drain(id)
			p.join <- struct{}{}
		case <-p.quit:
			return
		}
	}
}

// drain claims and executes tasks until the batch is exhausted. id is the
// draining worker's slot (0 = the coordinator) and is handed to tagged
// tasks.
func (p *Pool) drain(id int) {
	for {
		i := int(p.next.Add(1)) - 1 //shm:sync-ok single atomic cursor is the task-claim protocol of the fork/join barrier
		if p.tagged != nil {
			if i >= len(p.tagged) {
				return
			}
			p.tagged[i](id) //shm:fork-dispatch tagged tasks run under their own fork roots
			continue
		}
		if i >= len(p.tasks) {
			return
		}
		p.tasks[i]() //shm:fork-dispatch batch tasks run under their own //shm:fork-root entry points
	}
}

// Run executes every task in the batch and returns once all have
// completed. Tasks may run on any worker (including the caller); batches
// larger than the parallelism are drained work-stealing style through the
// shared atomic cursor.
func (p *Pool) Run(tasks []func()) {
	p.tasks = tasks
	p.next.Store(0) //shm:sync-ok resets the batch cursor before the fork
	for i := 0; i < p.workers; i++ {
		p.wake <- struct{}{} //shm:sync-ok fork barrier: one buffered wake per worker per batch
	}
	p.drain(0)
	for i := 0; i < p.workers; i++ {
		<-p.join //shm:sync-ok join barrier: one receive per worker per batch
	}
	p.tasks = nil
}

// RunTagged is Run for tasks that want the identity of the worker slot
// executing them (0 = the coordinator, 1..N-1 the pool goroutines). The
// sweep prefetcher threads the slot into cell spans so span traces show
// which worker ran which cell.
func (p *Pool) RunTagged(tasks []func(worker int)) {
	p.tagged = tasks
	p.next.Store(0)
	for i := 0; i < p.workers; i++ {
		p.wake <- struct{}{}
	}
	p.drain(0)
	for i := 0; i < p.workers; i++ {
		<-p.join
	}
	p.tagged = nil
}

// Parallelism returns the pool's total parallelism (workers + caller).
func (p *Pool) Parallelism() int { return p.workers + 1 }

// Close terminates the worker goroutines. The pool must be idle (no Run
// in flight); Run must not be called after Close.
func (p *Pool) Close() { close(p.quit) }
