package secmem

import (
	"fmt"

	"shmgpu/internal/cache"
	"shmgpu/internal/detectors"
	"shmgpu/internal/dram"
	"shmgpu/internal/flatmap"
	"shmgpu/internal/invariant"
	"shmgpu/internal/memdef"
	"shmgpu/internal/metadata"
	"shmgpu/internal/ringbuf"
	"shmgpu/internal/stats"
	"shmgpu/internal/telemetry"
)

// DRAMPort routes sector requests to a partition's DRAM channel. The GPU
// system implements it over its channel array; metadata constructed from
// physical addresses may target partitions other than the MEE's own.
type DRAMPort interface {
	// Enqueue submits a request to partition part's channel, returning
	// false when that channel's queue is full.
	Enqueue(part int, r dram.Req, now uint64) bool
}

// pendingKind classifies an outstanding DRAM request by purpose.
type pendingKind uint8

const (
	pkData pendingKind = iota
	pkCounter
	pkMAC
	pkBMT
	pkMisc // fire-and-forget traffic (mispredict recovery, scans)
)

type pendingEntry struct {
	kind pendingKind
	// key is the cache key address the completion fills (metadata space),
	// or unused for pkData/pkMisc.
	key memdef.Addr
	// txn is the transaction awaiting this data sector (pkData only).
	txn *txn
}

// txn tracks one in-flight read through the MEE: the response returns to
// the L2 once the ciphertext sector has arrived AND its OTP is ready.
type txn struct {
	req      memdef.Request
	haveData bool
	haveOTP  bool
	otpAt    uint64
	dataAt   uint64
	submitAt uint64
	enqueued bool // pushed on the ready heap
}

// inputEntry is one queued L2 request with its submission cycle (used for
// the telemetry latency accounting; the timing model itself is unchanged).
type inputEntry struct {
	req memdef.Request
	at  uint64
}

type readyTxn struct {
	at uint64
	t  *txn
}

// readyHeap is a min-heap on at. It mirrors container/heap's sift
// algorithms exactly (rather than using the package, whose interface boxes
// every pushed value): the pop order among equal-at entries is observable in
// response ordering, so the algorithm must not change.
type readyHeap []readyTxn

func (h *readyHeap) push(x readyTxn) {
	*h = append(*h, x) //shm:alloc-ok amortized heap growth, bounded by in-flight reads
	h.up(len(*h) - 1)
}

func (h *readyHeap) popMin() readyTxn {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	h.down(0, n)
	it := old[n]
	old[n] = readyTxn{}
	*h = old[:n]
	return it
}

func (h readyHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || h[i].at <= h[j].at {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h readyHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].at < h[j1].at {
			j = j2 // right child
		}
		if h[i].at <= h[j].at {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

type outgoing struct {
	part int
	req  dram.Req
}

// MEE is one partition's memory encryption engine.
type MEE struct {
	cfg    Config
	layout *metadata.Layout
	pmap   *memdef.PartitionMap
	port   DRAMPort

	ctrCache *cache.Cache
	macCache *cache.Cache
	bmtCache *cache.Cache

	roPred *detectors.ReadOnlyPredictor
	stPred *detectors.StreamingPredictor
	mats   *detectors.MATFile

	// oracle predictor state (OracleDetectors).
	roOracle map[uint64]bool // region -> read-only truth
	stOracle map[uint64]bool // chunk -> streaming truth

	// accuracy harnesses (TrackAccuracy).
	roAcc *detectors.ReadOnlyAccuracy
	stAcc *detectors.StreamingAccuracy

	victim VictimCache

	// common-counter divergence state: pages (counter-block coverage)
	// whose counters no longer hold the common value.
	diverged flatmap.Map[struct{}]

	// sharedCounter is the on-chip shared counter for read-only regions.
	sharedCounter uint64

	input    ringbuf.Ring[inputEntry]
	outgoing ringbuf.Ring[outgoing]
	// pending maps a DRAM token to its completion action; ctrWait queues
	// read transactions blocked on a counter-sector fetch, FIFO per sector
	// (wake order feeds aesSchedule and is observable in timing).
	pending flatmap.Map[pendingEntry]
	ctrWait flatmap.MultiMap[*txn]
	ready   readyHeap
	// responses is the per-Tick output buffer, reused across ticks; the
	// slice Tick returns is valid only until the next Tick.
	responses []memdef.Request
	// txnFree recycles txn objects (one per in-flight read) so the steady
	// state allocates none.
	txnFree   []*txn
	nextToken uint64
	aesFree   uint64
	lastTick  uint64

	// secBuf backs the slices counterSectors/macSectors/bmtSectors return;
	// each caller consumes its slice before the next call on the same index.
	secBuf [3][memdef.SectorsPerBlock]memdef.Addr
	// bmtPathBuf/bmtSlotBuf are the reusable BMT-walk scratch buffers.
	bmtPathBuf []memdef.Addr
	bmtSlotBuf []int

	// Reg collects ad-hoc event counters (transitions, mispredict classes,
	// victim hits, etc.).
	Reg stats.Registry

	// trace, when set, observes every data access the MEE processes
	// (debug/analysis hook; see SetTrace).
	trace func(now uint64, r memdef.Request)

	// probe, when non-nil, observes the request lifecycle (accept,
	// read-done latency), metadata fetches, predictions, and detections.
	probe telemetry.Probe
}

// SetTrace installs a per-access observer (nil to disable). Used by
// analysis tooling; not part of the timing model.
func (m *MEE) SetTrace(fn func(now uint64, r memdef.Request)) { m.trace = fn }

// SetProbe installs the telemetry probe (nil to disable), propagating it to
// the MAT file so tracker arms/skips are observed too.
func (m *MEE) SetProbe(p telemetry.Probe) {
	m.probe = p
	if m.mats != nil {
		m.mats.Probe = p
		m.mats.Part = int16(m.cfg.Partition)
	}
}

// NewMEE builds one partition's engine. port routes DRAM requests; layout
// is derived from cfg.ProtectedBytes.
func NewMEE(cfg Config, port DRAMPort) *MEE {
	layout, err := metadata.NewLayout(cfg.ProtectedBytes)
	if err != nil {
		panic(fmt.Sprintf("secmem: %v", err))
	}
	m := &MEE{
		cfg:    cfg,
		layout: layout,
		pmap:   memdef.NewPartitionMap(cfg.NumPartitions),
		port:   port,
	}
	if cfg.Enabled {
		m.ctrCache = cache.New(cfg.CtrCache)
		m.macCache = cache.New(cfg.MACCache)
		m.bmtCache = cache.New(cfg.BMTCache)
		m.roPred = detectors.NewReadOnlyPredictor(cfg.ReadOnly)
		m.stPred = detectors.NewStreamingPredictor(cfg.Streaming)
		m.mats = detectors.NewMATFile(cfg.Streaming)
		if cfg.OracleDetectors {
			m.roOracle = map[uint64]bool{}
			m.stOracle = map[uint64]bool{}
		}
		if cfg.TrackAccuracy {
			m.roAcc = detectors.NewReadOnlyAccuracy(m.roPred)
			m.stAcc = detectors.NewStreamingAccuracy(m.stPred, m.roPred)
		}
	}
	return m
}

// Config returns the MEE configuration.
func (m *MEE) Config() Config { return m.cfg }

// Layout exposes the metadata layout (tests, reporting).
func (m *MEE) Layout() *metadata.Layout { return m.layout }

// SetVictimCache installs the L2 victim-cache hook. Every metadata-cache
// eviction (clean or dirty) is pushed into the L2 while victim mode is
// active; dirty sectors are additionally written back to DRAM as usual.
func (m *MEE) SetVictimCache(v VictimCache) {
	m.victim = v
	if !m.cfg.Enabled || v == nil {
		return
	}
	push := func(blockAddr memdef.Addr, validMask uint8) {
		if !v.VictimActive() {
			return
		}
		for s := 0; s < memdef.SectorsPerBlock; s++ {
			if validMask&(1<<uint(s)) != 0 {
				v.PushVictim(blockAddr + memdef.Addr(s*memdef.SectorSize))
			}
		}
	}
	m.ctrCache.OnEvict = push
	m.macCache.OnEvict = push
	m.bmtCache.OnEvict = push
}

// CacheStats returns the three metadata caches' stats (nil-safe when the
// MEE is disabled).
func (m *MEE) CacheStats() (ctr, mac, bmt stats.CacheStats) {
	if !m.cfg.Enabled {
		return
	}
	return m.ctrCache.Stats, m.macCache.Stats, m.bmtCache.Stats
}

// SharedCounter returns the on-chip shared counter value.
func (m *MEE) SharedCounter() uint64 { return m.sharedCounter }

// MarkInputRange marks [lo, hi) of LOCAL addresses read-only (host→device
// copy during context initialization).
func (m *MEE) MarkInputRange(lo, hi memdef.Addr) {
	if !m.cfg.Enabled {
		return
	}
	m.roPred.MarkInputRange(lo, hi)
	if m.roOracle != nil {
		for r := uint64(lo) / m.cfg.ReadOnly.RegionBytes; r <= (uint64(hi)-1)/m.cfg.ReadOnly.RegionBytes; r++ {
			m.roOracle[r] = true
		}
	}
}

// OraclePreloadReadOnly installs profiling truth for the region range
// [lo, hi) of local addresses (SHM_upper_bound initialization).
func (m *MEE) OraclePreloadReadOnly(lo, hi memdef.Addr, ro bool) {
	if m.roOracle == nil || hi <= lo {
		return
	}
	for r := uint64(lo) / m.cfg.ReadOnly.RegionBytes; r <= (uint64(hi)-1)/m.cfg.ReadOnly.RegionBytes; r++ {
		if ro {
			m.roOracle[r] = true
		} else {
			delete(m.roOracle, r)
		}
	}
}

// OraclePreloadStreaming installs profiling truth for the chunk range
// [lo, hi) of local addresses (SHM_upper_bound initialization).
func (m *MEE) OraclePreloadStreaming(lo, hi memdef.Addr, streaming bool) {
	if m.stOracle == nil || hi <= lo {
		return
	}
	for c := uint64(lo) / m.cfg.Streaming.ChunkBytes; c <= (uint64(hi)-1)/m.cfg.Streaming.ChunkBytes; c++ {
		m.stOracle[c] = streaming
	}
}

// InputReadOnlyReset implements the paper's new API (§IV-B, Fig. 9) for a
// LOCAL address range: the command processor scans the per-block counters
// in the range for the maximum major counter, advances the shared counter
// past it, and re-marks the regions read-only. The scan's DRAM traffic is
// charged as counter reads.
func (m *MEE) InputReadOnlyReset(lo, hi memdef.Addr, now uint64) {
	if !m.cfg.Enabled || !m.cfg.ReadOnlyOpt || hi <= lo {
		return
	}
	// Scan the counter sectors covering [lo, hi). Consecutive counter
	// locations scan at high bandwidth (the paper notes the overhead is
	// negligible); we charge the reads as fire-and-forget traffic.
	first, _ := m.layout.CounterIndex(lo)
	last, _ := m.layout.CounterIndex(hi - 1)
	for cb := first; cb <= last; cb++ {
		base := m.layout.CounterBlockAddr(cb)
		for s := 0; s < memdef.SectorsPerBlock; s++ {
			m.sendMeta(pkMisc, base+memdef.Addr(s*memdef.SectorSize), memdef.Read, stats.TrafficCounter)
		}
	}
	// Advance the shared counter past any major counter in the range so
	// the reset cannot enable cross-kernel replay. The functional model
	// tracks real majors; the timing model bumps monotonically.
	m.sharedCounter++
	m.roPred.Reset(lo, hi)
	if m.roOracle != nil {
		for r := uint64(lo) / m.cfg.ReadOnly.RegionBytes; r <= (uint64(hi)-1)/m.cfg.ReadOnly.RegionBytes; r++ {
			m.roOracle[r] = true
		}
	}
	m.Reg.Inc("input_readonly_reset")
	_ = now
}

// HostOverwrite models a mid-context host→device copy WITHOUT the reset
// API: the touched regions lose their read-only status.
func (m *MEE) HostOverwrite(lo, hi memdef.Addr) {
	if !m.cfg.Enabled || hi <= lo {
		return
	}
	for a := memdef.RegionAddr(lo); a < hi; a += memdef.RegionSize {
		if m.roPred.OnWrite(a) {
			m.Reg.Inc("ro_transition_host")
		}
		if m.roOracle != nil {
			delete(m.roOracle, uint64(a)/m.cfg.ReadOnly.RegionBytes)
		}
	}
}

// MigrationOverwrite models a UVM page fault-in under full metadata
// rebuild: the migrated range is re-encrypted with fresh counters, so —
// exactly as with a host copy — the touched regions lose their
// read-only status and the profiling oracle forgets them. It returns
// the number of RO transitions instead of bumping the registry: the
// caller runs on the per-cycle tick path, where the registry's map
// insert is off-limits, and accumulates the count for end-of-run merge.
func (m *MEE) MigrationOverwrite(lo, hi memdef.Addr) uint64 {
	if !m.cfg.Enabled || hi <= lo {
		return 0
	}
	var transitions uint64
	for a := memdef.RegionAddr(lo); a < hi; a += memdef.RegionSize {
		if m.roPred.OnWrite(a) {
			transitions++
		}
		if m.roOracle != nil {
			delete(m.roOracle, uint64(a)/m.cfg.ReadOnly.RegionBytes)
		}
	}
	return transitions
}

// CanAccept reports whether SubmitRead/SubmitWrite would succeed.
func (m *MEE) CanAccept() bool { return m.input.Len() < m.cfg.InputQueue }

// SubmitRead accepts one L2 sector miss. Returns false when the input
// queue is full (back-pressure to the L2 bank).
func (m *MEE) SubmitRead(r memdef.Request, now uint64) bool {
	if !m.CanAccept() {
		return false
	}
	r.Kind = memdef.Read
	m.input.Push(inputEntry{req: r, at: now})
	if m.probe != nil {
		m.probe.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvMEEAccept, Part: int16(m.cfg.Partition), Class: 0})
	}
	return true
}

// SubmitWrite accepts one dirty L2 sector write-back.
func (m *MEE) SubmitWrite(r memdef.Request, now uint64) bool {
	if !m.CanAccept() {
		return false
	}
	r.Kind = memdef.Write
	m.input.Push(inputEntry{req: r, at: now})
	if m.probe != nil {
		m.probe.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvMEEAccept, Part: int16(m.cfg.Partition), Class: 1})
	}
	return true
}

// Idle reports whether the MEE holds no queued or in-flight work.
func (m *MEE) Idle() bool {
	return m.input.Len() == 0 && m.outgoing.Len() == 0 && m.pending.Len() == 0 &&
		len(m.ready) == 0 && len(m.responses) == 0
}

// Tick advances the MEE one cycle and returns completed read responses.
// The returned slice aliases an internal buffer and is valid only until the
// next Tick; callers must consume it immediately.
func (m *MEE) Tick(now uint64) []memdef.Request {
	if invariant.Enabled() && now < m.lastTick {
		invariant.Failf("clock-monotonic", fmt.Sprintf("mee[%d]", m.cfg.Partition), now,
			"Tick clock ran backwards: now=%d < last=%d", now, m.lastTick)
	}
	m.lastTick = now
	// 1. Drain the outgoing buffer into DRAM channels.
	for m.outgoing.Len() > 0 {
		o := m.outgoing.Front()
		if !m.port.Enqueue(o.part, o.req, now) {
			break
		}
		m.outgoing.PopFront()
	}
	// 2. Process input requests while there is outgoing headroom.
	issued := 0
	for m.input.Len() > 0 && issued < m.cfg.IssuePerCycle && m.outgoing.Len() < 32 {
		e := m.input.PopFront()
		if m.cfg.Enabled {
			m.process(e.req, e.at, now)
		} else {
			m.passthrough(e.req, e.at, now)
		}
		issued++
	}
	// 3. Expire MAT monitoring phases (coarse: every 64 cycles).
	if m.cfg.Enabled && !m.cfg.OracleDetectors && now%64 == 0 {
		for _, det := range m.mats.Tick(now) {
			m.applyDetection(det, now)
		}
	}
	// 4. Release ready responses. The txn is recycled here: once popped it
	// is referenced by no pending entry or wait list (completion removed
	// those before the heap push), so the pool reuse is safe.
	for len(m.ready) > 0 && m.ready[0].at <= now {
		rt := m.ready.popMin()
		m.responses = append(m.responses, rt.t.req) //shm:alloc-ok fills the reused responses scratch, amortized
		if m.probe != nil {
			m.probe.Emit(telemetry.Event{
				Cycle: rt.at, Kind: telemetry.EvMEEReadDone,
				Part: int16(m.cfg.Partition), Value: rt.at - rt.t.submitAt,
			})
		}
		m.releaseTxn(rt.t)
	}
	out := m.responses
	m.responses = m.responses[:0]
	return out
}

// getTxn takes a transaction object from the free pool (or allocates one);
// releaseTxn zeroes and returns it. One txn lives per in-flight read.
func (m *MEE) getTxn() *txn {
	if n := len(m.txnFree); n > 0 {
		t := m.txnFree[n-1]
		m.txnFree = m.txnFree[:n-1]
		return t
	}
	return &txn{} //shm:alloc-ok pool fallback: allocates once per in-flight high-water mark
}

func (m *MEE) releaseTxn(t *txn) {
	*t = txn{}
	m.txnFree = append(m.txnFree, t) //shm:alloc-ok amortized pool growth, bounded by in-flight reads
}

// passthrough is the insecure baseline: data requests go straight to DRAM.
func (m *MEE) passthrough(r memdef.Request, submitAt, now uint64) {
	if r.Kind == memdef.Write {
		m.send(m.cfg.Partition, dram.Req{Local: r.Local, Kind: memdef.Write, Class: stats.TrafficData}, pendingEntry{kind: pkMisc})
		return
	}
	t := m.getTxn()
	t.req = r
	t.haveOTP = true
	t.submitAt = submitAt
	m.send(m.cfg.Partition, dram.Req{Local: r.Local, Kind: memdef.Read, Class: stats.TrafficData}, pendingEntry{kind: pkData, txn: t})
	_ = now
}

// send buffers a DRAM request and registers its completion entry. Tokens
// embed the owning partition in the top bits so the system can route
// completions from any channel back to the issuing MEE (metadata built from
// physical addresses crosses partitions).
func (m *MEE) send(part int, r dram.Req, pe pendingEntry) {
	m.nextToken++
	r.Token = TokenFor(m.cfg.Partition, m.nextToken)
	*m.pending.Put(r.Token) = pe
	m.outgoing.Push(outgoing{part: part, req: r})
}

// TokenFor builds a DRAM token owned by the given MEE partition.
func TokenFor(partition int, seq uint64) uint64 {
	return uint64(partition+1)<<48 | (seq & (1<<48 - 1))
}

// TokenOwner recovers the owning MEE partition from a token (-1 if the
// token was not produced by TokenFor).
func TokenOwner(token uint64) int {
	return int(token>>48) - 1
}

// sendMeta routes a metadata sector request. Under LocalMetadata the sector
// stays in this partition; otherwise the metadata address is physical and
// is routed to its owning partition.
func (m *MEE) sendMeta(kind pendingKind, metaAddr memdef.Addr, rw memdef.AccessKind, class stats.TrafficClass) {
	part := m.cfg.Partition
	local := metaAddr
	if !m.cfg.LocalMetadata {
		part, local = m.pmap.ToLocal(metaAddr)
	}
	m.send(part, dram.Req{Local: local, Kind: rw, Class: class}, pendingEntry{kind: kind, key: metaAddr})
	if m.probe != nil {
		var unit int16
		if rw == memdef.Write {
			unit = 1
		}
		m.probe.Emit(telemetry.Event{
			Cycle: m.lastTick, Kind: telemetry.EvMetaFetch,
			Part: int16(m.cfg.Partition), Class: uint8(class), Unit: unit,
		})
	}
}

// isReadOnly decides the read-only status used by the encryption path:
// spaces that are read-only by nature (constant/texture/instruction), or
// regions the detector (or oracle) currently predicts read-only.
func (m *MEE) isReadOnly(r memdef.Request) bool {
	if !m.cfg.ReadOnlyOpt {
		return false
	}
	if r.Space.ReadOnlyByNature() {
		return true
	}
	if m.roOracle != nil {
		return m.roOracle[uint64(r.Local)/m.cfg.ReadOnly.RegionBytes]
	}
	return m.roPred.Predict(r.Local)
}

// isStreaming decides the MAC granularity for the chunk of r.
func (m *MEE) isStreaming(r memdef.Request) bool {
	if !m.cfg.DualGranMAC {
		return false
	}
	if m.stOracle != nil {
		s, ok := m.stOracle[uint64(r.Local)/m.cfg.Streaming.ChunkBytes]
		if !ok {
			return true // eager default, like the bit vector
		}
		return s
	}
	return m.stPred.Predict(r.Local)
}

// PredictStreaming reports the streaming classification this MEE would
// apply to a local chunk address: the oracle preload when present,
// otherwise the trained bit-vector predictor. False when the
// dual-granularity MAC mechanism (which owns the streaming detector) is
// disabled. The UVM stream-prefetch policy consumes this to decide
// which faulting pages are migrated ahead in bulk.
func (m *MEE) PredictStreaming(local memdef.Addr) bool {
	if !m.cfg.DualGranMAC {
		return false
	}
	if m.stOracle != nil {
		s, ok := m.stOracle[uint64(local)/m.cfg.Streaming.ChunkBytes]
		if !ok {
			return true // eager default, like the bit vector
		}
		return s
	}
	return m.stPred.Predict(local)
}

// metaAddrFor returns the base address used for metadata derivation: local
// under PSSM addressing, physical otherwise.
func (m *MEE) metaAddrFor(r memdef.Request) memdef.Addr {
	if m.cfg.LocalMetadata {
		return r.Local
	}
	return r.Phys
}

// sectorList fills one of the fixed scratch buffers with the sectors to
// fetch for a metadata miss: the primary sector alone under the sectored
// organization, the full block otherwise. The returned slice is valid until
// the next call with the same buffer index.
func (m *MEE) sectorList(buf int, sec memdef.Addr) []memdef.Addr {
	out := m.secBuf[buf][:0]
	if m.cfg.SectoredMetadata {
		return append(out, sec) //shm:alloc-ok fills the fixed secBuf scratch; capacity covers a full block
	}
	base := memdef.BlockAddr(sec)
	for i := 0; i < memdef.SectorsPerBlock; i++ {
		out = append(out, base+memdef.Addr(i*memdef.SectorSize)) //shm:alloc-ok fills the fixed secBuf scratch; capacity covers a full block
	}
	return out
}

// counterSectors returns the metadata sectors to fetch for a counter miss.
func (m *MEE) counterSectors(metaAddr memdef.Addr) []memdef.Addr {
	return m.sectorList(0, m.layout.CounterSectorFor(metaAddr))
}

func (m *MEE) macSectors(macByteAddr memdef.Addr) []memdef.Addr {
	return m.sectorList(1, memdef.SectorAddr(macByteAddr))
}

// aesSchedule books one OTP generation on the pipelined AES engine and
// returns its completion cycle.
func (m *MEE) aesSchedule(now uint64) uint64 {
	if m.aesFree < now {
		m.aesFree = now
	}
	start := m.aesFree
	m.aesFree++ // pipelined: one issue per cycle
	return start + m.cfg.AESLatency
}

// mdcRead performs a metadata-cache read with optional victim-L2 probe,
// issuing DRAM fetches on miss. avail=true means the sector is usable right
// now (hit, victim hit, or MSHR-exhaustion fallback); pending=true means a
// fill for sectors[0] will arrive later (callers may register waiters).
func (m *MEE) mdcRead(c *cache.Cache, kind pendingKind, sectors []memdef.Addr, class stats.TrafficClass) (avail, pending bool) {
	primary := sectors[0]
	switch c.Read(primary) {
	case cache.Hit:
		return true, false
	case cache.MissMerged:
		return false, true // fetch already in flight
	case cache.Blocked:
		// MSHRs exhausted: no fill will ever arrive for this lookup, so
		// report the sector as available to avoid stranding waiters. The
		// paper's 256-entry MSHRs make this rare; we count occurrences.
		m.Reg.Inc("mdc_blocked")
		return true, false
	}
	// MissNew: probe the victim L2 first.
	if m.victim != nil && m.victim.VictimActive() && m.victim.ProbeVictim(primary) {
		c.Fill(primary)
		m.Reg.Inc("victim_hit")
		return true, false
	}
	m.sendMeta(kind, primary, memdef.Read, class)
	// Non-sectored organizations drag the sibling sectors along.
	for _, s := range sectors[1:] {
		if c.Read(s) == cache.MissNew {
			m.sendMeta(kind, s, memdef.Read, class)
		}
	}
	return false, true
}

// mdcWrite performs a write-allocate metadata-cache update: on miss the
// sector is fetched (read-modify-write) and then dirtied. Evicted dirty
// sectors become DRAM writes; with victim mode active, evictions are also
// pushed into the L2.
func (m *MEE) mdcWrite(c *cache.Cache, kind pendingKind, sector memdef.Addr, class stats.TrafficClass) {
	if !c.Probe(sector) {
		// Write-allocate: fetch the sector first (unless already being
		// fetched), then dirty it on arrival — modeled by issuing the
		// fetch and dirtying immediately (state-only cache).
		switch c.Read(sector) {
		case cache.MissNew:
			if m.victim != nil && m.victim.VictimActive() && m.victim.ProbeVictim(sector) {
				m.Reg.Inc("victim_hit")
			} else {
				m.sendMeta(kind, sector, memdef.Read, class)
			}
		case cache.Blocked:
			m.Reg.Inc("mdc_blocked")
		}
		c.Fill(sector)
	}
	_, wbs := c.Write(sector)
	m.spillWritebacks(kind, wbs, class)
}

func (m *MEE) spillWritebacks(kind pendingKind, wbs []cache.Writeback, class stats.TrafficClass) {
	for _, wb := range wbs {
		for s := 0; s < memdef.SectorsPerBlock; s++ {
			if wb.SectorMask&(1<<uint(s)) == 0 {
				continue
			}
			addr := wb.BlockAddr + memdef.Addr(s*memdef.SectorSize)
			m.sendMeta(pkMisc, addr, memdef.Write, class)
			if m.victim != nil && m.victim.VictimActive() {
				m.victim.PushVictim(addr)
			}
		}
	}
}

// process handles one data request through the full secure-memory path.
// submitAt is the cycle the request entered the input queue (telemetry
// latency accounting only).
func (m *MEE) process(r memdef.Request, submitAt, now uint64) {
	meta := m.metaAddrFor(r)
	ro := m.isReadOnly(r)
	streaming := m.isStreaming(r)

	if m.probe != nil {
		if m.cfg.ReadOnlyOpt {
			m.probe.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvPredictRO,
				Part: int16(m.cfg.Partition), Class: boolClass(ro)})
		}
		if m.cfg.DualGranMAC {
			m.probe.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvPredictStream,
				Part: int16(m.cfg.Partition), Class: boolClass(streaming)})
		}
	}

	// Accuracy harness observes the prediction before any state updates.
	if m.roAcc != nil {
		m.roAcc.Observe(r.Local, r.Kind == memdef.Write)
	}
	if m.stAcc != nil {
		m.stAcc.Observe(r.Local, r.Kind == memdef.Write)
	}

	// Access characterization (paper Fig. 5): with oracle truth loaded,
	// classify every off-chip access as streaming / read-only.
	if m.stOracle != nil {
		m.Reg.Inc("access_total")
		if streaming {
			m.Reg.Inc("access_streaming")
		}
		if ro {
			m.Reg.Inc("access_readonly")
		}
	}

	// Streaming detector observes every off-chip access.
	if !m.cfg.OracleDetectors && m.cfg.DualGranMAC {
		if m.trace != nil {
			m.trace(now, r)
		}
		if det, done := m.mats.Observe(r.Local, r.Kind == memdef.Write, now); done {
			m.applyDetection(det, now)
		}
	}

	if r.Kind == memdef.Write {
		m.processWrite(r, meta, ro, streaming, now)
		return
	}
	m.processRead(r, meta, ro, streaming, submitAt, now)
}

// boolClass encodes a prediction outcome for probe events.
func boolClass(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}

func (m *MEE) processRead(r memdef.Request, meta memdef.Addr, ro, streaming bool, submitAt, now uint64) {
	t := m.getTxn()
	t.req = r
	t.submitAt = submitAt

	// Data fetch always goes to this partition's DRAM.
	m.send(m.cfg.Partition, dram.Req{Local: r.Local, Kind: memdef.Read, Class: stats.TrafficData},
		pendingEntry{kind: pkData, txn: t})

	// Counter path → OTP.
	switch {
	case ro:
		// Shared counter is on chip: OTP generation starts immediately,
		// no counter fetch, no BMT coverage.
		t.otpAt = m.aesSchedule(now)
		t.haveOTP = false
		m.scheduleOTPKnown(t)
	case m.cfg.CommonCounters && !m.divergedPage(meta):
		// Common value known on chip: the counter fetch is saved, but the
		// page's common/diverged status is itself integrity-tree-covered
		// state, so the freshness walk is still charged (with normal BMT
		// cache locality).
		t.otpAt = m.aesSchedule(now)
		m.scheduleOTPKnown(t)
		m.bmtWalk(meta)
	default:
		sectors := m.counterSectors(meta)
		avail, pending := m.mdcRead(m.ctrCache, pkCounter, sectors, stats.TrafficCounter)
		if avail {
			t.otpAt = m.aesSchedule(now)
			m.scheduleOTPKnown(t)
		} else if pending {
			// OTP waits for the counter sector; BMT verifies the fetched
			// counter off the critical path.
			m.ctrWait.Add(uint64(sectors[0]), t)
			m.bmtWalk(meta)
		}
	}

	// MAC fetch: off the critical path (data is forwarded speculatively;
	// a verification failure raises an exception later).
	m.macFetch(meta, streaming, memdef.Read)
}

func (m *MEE) processWrite(r memdef.Request, meta memdef.Addr, ro, streaming bool, now uint64) {
	// A write to a read-only-predicted region triggers the RO→not-RO
	// transition and counter propagation (Fig. 8).
	if m.cfg.ReadOnlyOpt && !r.Space.ReadOnlyByNature() {
		transition := false
		if m.roOracle != nil {
			region := uint64(r.Local) / m.cfg.ReadOnly.RegionBytes
			if m.roOracle[region] {
				delete(m.roOracle, region)
				transition = true
			}
		} else if m.roPred.OnWrite(r.Local) {
			transition = true
		}
		if transition {
			m.Reg.Inc("ro_transition")
			m.propagateSharedCounter(r.Local, meta)
			ro = false
		}
	}

	// Counter read-modify-write (skipped while the page still holds the
	// common value is wrong: a write diverges it).
	switch {
	case ro:
		// Writes never target RO state (cleared above); defensive only.
	case m.cfg.CommonCounters && !m.divergedPage(meta):
		m.divergePage(meta)
		// Counters are architecturally known (common value): install the
		// diverged counters as dirty without a fetch.
		m.mdcInstallDirty(m.ctrCache, m.layout.CounterSectorFor(meta), stats.TrafficCounter)
		m.bmtLeafUpdate(meta)
	default:
		m.mdcWrite(m.ctrCache, pkCounter, m.layout.CounterSectorFor(meta), stats.TrafficCounter)
		m.bmtLeafUpdate(meta)
	}

	// MAC update.
	if streaming {
		// Per-chunk MAC: update the chunk MAC (dirty); per-block MACs are
		// produced but marked not-dirty (no write traffic).
		m.mdcWrite(m.macCache, pkMAC, memdef.SectorAddr(m.layout.ChunkMACAddr(meta)), stats.TrafficMAC)
	} else {
		m.mdcWrite(m.macCache, pkMAC, memdef.SectorAddr(m.layout.BlockMACAddr(meta)), stats.TrafficMAC)
	}

	// Ciphertext write to DRAM (posted; encryption latency off critical
	// path, AES occupancy booked).
	m.aesSchedule(now)
	m.send(m.cfg.Partition, dram.Req{Local: r.Local, Kind: memdef.Write, Class: stats.TrafficData},
		pendingEntry{kind: pkMisc})
}

// mdcInstallDirty installs a sector as dirty without a backing fetch
// (contents architecturally known, e.g. diverging common counters).
func (m *MEE) mdcInstallDirty(c *cache.Cache, sector memdef.Addr, class stats.TrafficClass) {
	_, wbs := c.Write(sector)
	var kind pendingKind
	switch class {
	case stats.TrafficCounter:
		kind = pkCounter
	case stats.TrafficMAC:
		kind = pkMAC
	default:
		kind = pkBMT
	}
	m.spillWritebacks(kind, wbs, class)
}

// divergedPage reports whether the counter page (counter-block coverage,
// 8 KB) of meta has left the common-counter state.
func (m *MEE) divergedPage(meta memdef.Addr) bool {
	cb, _ := m.layout.CounterIndex(meta)
	return m.diverged.Has(cb)
}

func (m *MEE) divergePage(meta memdef.Addr) {
	cb, _ := m.layout.CounterIndex(meta)
	if !m.diverged.Has(cb) {
		m.diverged.Put(cb)
		m.Reg.Inc("cctr_diverged")
	}
}

// propagateSharedCounter performs the Fig. 8 burst: the region's counter
// blocks take the shared counter as their major counter (dirty counter-
// cache updates) and the BMT grows to cover them (leaf updates).
func (m *MEE) propagateSharedCounter(local, meta memdef.Addr) {
	regionMeta := memdef.RegionAddr(meta)
	for off := memdef.Addr(0); off < memdef.RegionSize; off += metadata.CounterCoverage {
		blockMeta := regionMeta + off
		base, _ := m.layout.CounterAddrFor(blockMeta)
		for s := 0; s < memdef.SectorsPerBlock; s++ {
			m.mdcInstallDirty(m.ctrCache, base+memdef.Addr(s*memdef.SectorSize), stats.TrafficCounter)
		}
		m.bmtLeafUpdate(blockMeta)
	}
	_ = local
}

// bmtWalk charges the read-path BMT traversal for a counter miss: walk up
// the stored levels until a BMT-cache hit (a cached node is trusted and
// terminates verification, per Rogers et al.).
func (m *MEE) bmtWalk(meta memdef.Addr) {
	if m.layout.BMTLevels() == 0 {
		return
	}
	cb, _ := m.layout.CounterIndex(meta)
	var path []memdef.Addr
	path, m.bmtSlotBuf = m.layout.BMTPathForCounterInto(cb, m.bmtPathBuf, m.bmtSlotBuf)
	m.bmtPathBuf = path
	for _, nodeAddr := range path {
		sector := memdef.SectorAddr(nodeAddr) // node hash lives in its first sector region; sector granularity
		hit, _ := m.mdcRead(m.bmtCache, pkBMT, m.bmtSectors(sector), stats.TrafficBMT)
		if hit {
			return
		}
	}
}

func (m *MEE) bmtSectors(sector memdef.Addr) []memdef.Addr {
	return m.sectorList(2, sector)
}

// bmtLeafUpdate charges the write-path BMT work for a counter update: the
// leaf node sector is dirtied in the BMT cache (write-allocate). Dirty BMT
// evictions cascade naturally through spillWritebacks.
func (m *MEE) bmtLeafUpdate(meta memdef.Addr) {
	if m.layout.BMTLevels() == 0 {
		return
	}
	cb, _ := m.layout.CounterIndex(meta)
	path, slots := m.layout.BMTPathForCounterInto(cb, m.bmtPathBuf, m.bmtSlotBuf)
	m.bmtPathBuf, m.bmtSlotBuf = path, slots
	leafSector := path[0] + memdef.Addr((slots[0]*metadata.HashSize/memdef.SectorSize)*memdef.SectorSize)
	m.mdcWrite(m.bmtCache, pkBMT, leafSector, stats.TrafficBMT)
}

// macFetch charges the integrity-verification fetch for a read or the
// pre-update fetch check for a write.
func (m *MEE) macFetch(meta memdef.Addr, streaming bool, kind memdef.AccessKind) {
	var addr memdef.Addr
	if streaming {
		addr = m.layout.ChunkMACAddr(meta)
	} else {
		addr = m.layout.BlockMACAddr(meta)
	}
	m.mdcRead(m.macCache, pkMAC, m.macSectors(addr), stats.TrafficMAC)
	_ = kind
}

// scheduleOTPKnown finalizes a txn whose OTP completion time is known.
func (m *MEE) scheduleOTPKnown(t *txn) {
	t.haveOTP = true
	m.maybeReady(t)
}

func (m *MEE) maybeReady(t *txn) {
	if t.enqueued || !t.haveOTP || !t.haveData {
		return
	}
	at := t.dataAt
	if t.otpAt > at {
		at = t.otpAt
	}
	// One cycle for the XOR/decrypt stage.
	m.ready.push(readyTxn{at: at + 1, t: t})
	t.enqueued = true
}

// NextEvent returns the earliest cycle strictly after now at which ticking
// the MEE is not a no-op: queued input or buffered DRAM requests retry next
// cycle, the ready heap's root releases at its timestamp, and armed MAT
// trackers expire at their deadline rounded up to the next 64-cycle
// detector tick (Tick only runs expiry at now%64 == 0, so that is the cycle
// an every-cycle run would observe the detection). ^uint64(0) means only
// another component's progress (a DRAM completion, new L2 input) can make
// the MEE actable.
func (m *MEE) NextEvent(now uint64) uint64 {
	if m.input.Len() > 0 || m.outgoing.Len() > 0 {
		return now + 1
	}
	next := ^uint64(0)
	if len(m.ready) > 0 {
		next = m.ready[0].at
	}
	if m.cfg.Enabled && !m.cfg.OracleDetectors {
		if d := m.mats.NextDeadline(); d != ^uint64(0) {
			if r := (d + 63) &^ 63; r < next {
				next = r
			}
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// applyDetection implements the Tables III/IV misprediction handling when a
// MAT monitoring phase completes, then trains the predictor.
//
//shm:cold detections close a monitoring phase; they are rare events, not per-access work
func (m *MEE) applyDetection(det detectors.Detection, now uint64) {
	if det.Accesses == 0 {
		// A monitor armed ahead of the stream that never saw an access
		// carries no information; do not train or recover.
		m.Reg.Inc("det_empty")
		return
	}
	if det.Streaming {
		m.Reg.Inc("det_stream")
	} else {
		m.Reg.Inc("det_random")
	}
	if m.probe != nil {
		var class uint8
		if det.Streaming {
			class |= 1
		}
		if det.TimedOut {
			class |= 2
		}
		if det.HadWrite {
			class |= 4
		}
		m.probe.Emit(telemetry.Event{
			Cycle: now, Kind: telemetry.EvDetection,
			Part: int16(m.cfg.Partition), Class: class, Value: uint64(det.Accesses),
		})
	}
	if det.TimedOut {
		m.Reg.Inc("det_timeout")
		m.Reg.Add("det_timeout_accesses", uint64(det.Accesses))
		m.Reg.Inc(fmt.Sprintf("det_timeout_bucket_%d", det.Accesses/8))
	}
	chunkBase := memdef.Addr(det.Chunk * m.cfg.Streaming.ChunkBytes)
	predictedStreaming := m.stPred.Predict(chunkBase)
	ro := m.cfg.ReadOnlyOpt && m.roPred.Predict(chunkBase)

	switch {
	case predictedStreaming == det.Streaming:
		// Correct prediction: zero additional bandwidth.
	case predictedStreaming && !det.Streaming:
		// Stream mispredicted; chunk is actually random.
		if det.HadWrite || !ro {
			// Re-fetch all data blocks in the chunk to (re)produce the
			// per-block MACs (read in a non-RO region, or any write).
			m.Reg.Inc("mp_refetch_chunk_data")
			for b := 0; b < memdef.BlocksPerChunk; b++ {
				for s := 0; s < memdef.SectorsPerBlock; s++ {
					a := chunkBase + memdef.Addr(b*memdef.BlockSize+s*memdef.SectorSize)
					m.send(m.cfg.Partition, dram.Req{Local: a, Kind: memdef.Read, Class: stats.TrafficMispredict},
						pendingEntry{kind: pkMisc})
				}
			}
		} else {
			// Read in an RO region: per-block MACs are up to date; only
			// re-fetch them for the accessed blocks.
			m.Reg.Inc("mp_refetch_blk_macs")
			macLo := m.layout.BlockMACAddr(chunkBase)
			macHi := m.layout.BlockMACAddr(chunkBase + memdef.ChunkSize - 1)
			for a := memdef.SectorAddr(macLo); a <= macHi; a += memdef.SectorSize {
				m.sendMeta(pkMisc, a, memdef.Read, stats.TrafficMispredict)
			}
		}
	case !predictedStreaming && det.Streaming:
		// Random mispredicted; chunk actually streams.
		if det.HadWrite {
			// Write stream: just produce and update the chunk MAC.
			m.mdcWrite(m.macCache, pkMAC, memdef.SectorAddr(m.layout.ChunkMACAddr(chunkBase)), stats.TrafficMAC)
			m.Reg.Inc("mp_update_chunk_mac")
		} else if !ro {
			// Read stream in a non-RO region: re-fetch the chunk MAC.
			m.Reg.Inc("mp_refetch_chunk_mac")
			m.sendMeta(pkMisc, memdef.SectorAddr(m.layout.ChunkMACAddr(chunkBase)), memdef.Read, stats.TrafficMispredict)
		}
		// RO read stream: per-block MACs were valid; zero overhead.
	}
	m.stPred.Train(det.Chunk, det.Streaming)
	_ = now
}

// OnDRAMComplete routes a finished DRAM request back into the MEE.
func (m *MEE) OnDRAMComplete(token uint64, now uint64) {
	pep := m.pending.Get(token)
	if pep == nil {
		return
	}
	pe := *pep
	m.pending.Delete(token)
	switch pe.kind {
	case pkData:
		pe.txn.haveData = true
		pe.txn.dataAt = now
		m.maybeReady(pe.txn)
	case pkCounter:
		m.ctrCache.Fill(pe.key)
		m.ctrWait.Drain(uint64(pe.key), func(t *txn) { //shm:alloc-ok drain callback capturing two words; fills happen once per counter miss, not per access
			t.otpAt = m.aesSchedule(now) //shm:shard-ok the MEE is partition-private; one shard owns each partition
			m.scheduleOTPKnown(t)        //shm:shard-ok the MEE is partition-private; one shard owns each partition
		})
	case pkMAC:
		m.macCache.Fill(pe.key)
	case pkBMT:
		m.bmtCache.Fill(pe.key)
	case pkMisc:
		// Fire-and-forget traffic: nothing to do.
	}
}

// FlushKernel drains detector state at a kernel boundary: active MAT phases
// finalize (with misprediction handling) exactly as on timeout.
func (m *MEE) FlushKernel(now uint64) {
	if !m.cfg.Enabled || m.cfg.OracleDetectors {
		return
	}
	for _, det := range m.mats.Flush() {
		m.applyDetection(det, now)
	}
}

// FlushMetadata writes back all dirty metadata cache state (kernel/context
// boundary). The MEE must be Idle (drained) first.
func (m *MEE) FlushMetadata() {
	if !m.cfg.Enabled {
		return
	}
	m.spillWritebacks(pkCounter, m.ctrCache.FlushAll(), stats.TrafficCounter)
	m.spillWritebacks(pkMAC, m.macCache.FlushAll(), stats.TrafficMAC)
	m.spillWritebacks(pkBMT, m.bmtCache.FlushAll(), stats.TrafficBMT)
}

// AccuracyResults finalizes and returns the Fig. 10/11 breakdowns. Call
// once at end of run; requires TrackAccuracy.
func (m *MEE) AccuracyResults() (ro, st stats.PredictorStats) {
	if m.roAcc != nil {
		ro = m.roAcc.Finalize()
	}
	if m.stAcc != nil {
		st = m.stAcc.Finalize()
	}
	return ro, st
}

// MATStats exposes tracker utilization (monitored chunks, skipped accesses).
func (m *MEE) MATStats() (monitored, skipped uint64) {
	if m.mats == nil {
		return 0, 0
	}
	return m.mats.Monitored, m.mats.Skipped
}
