package secmem

import (
	"testing"

	"shmgpu/internal/dram"
	"shmgpu/internal/memdef"
	"shmgpu/internal/stats"
)

// fakePort is a deterministic DRAM stand-in: every request completes after
// a fixed latency. It accumulates per-class traffic like a real channel.
type fakePort struct {
	latency uint64
	inj     []struct {
		token uint64
		at    uint64
	}
	Traffic stats.Traffic
	reject  bool
}

func (p *fakePort) Enqueue(part int, r dram.Req, now uint64) bool {
	if p.reject {
		return false
	}
	if r.Kind == memdef.Read {
		p.Traffic.AddRead(r.Class, memdef.SectorSize)
	} else {
		p.Traffic.AddWrite(r.Class, memdef.SectorSize)
	}
	p.inj = append(p.inj, struct {
		token uint64
		at    uint64
	}{r.Token, now + p.latency})
	return true
}

// deliver routes matured completions back to the MEE.
func (p *fakePort) deliver(m *MEE, now uint64) {
	rest := p.inj[:0]
	for _, c := range p.inj {
		if c.at <= now {
			m.OnDRAMComplete(c.token, now)
		} else {
			rest = append(rest, c)
		}
	}
	p.inj = rest
}

const testProtected = 1 << 20

func newMEE(t *testing.T, opts Options) (*MEE, *fakePort) {
	t.Helper()
	port := &fakePort{latency: 100}
	cfg := DefaultConfig(opts, 0, 12, testProtected)
	return NewMEE(cfg, port), port
}

// runUntilResponse ticks until the MEE returns n read responses.
func runUntilResponse(t *testing.T, m *MEE, p *fakePort, start uint64, n int) (responses []memdef.Request, end uint64) {
	t.Helper()
	cycle := start
	for len(responses) < n {
		responses = append(responses, m.Tick(cycle)...)
		p.deliver(m, cycle)
		cycle++
		if cycle > start+1_000_000 {
			t.Fatalf("no response after 1M cycles (%d/%d)", len(responses), n)
		}
	}
	return responses, cycle
}

func shmOpts() Options {
	return Options{
		Enabled: true, LocalMetadata: true, SectoredMetadata: true,
		ReadOnlyOpt: true, DualGranMAC: true,
	}
}

func pssmOpts() Options {
	return Options{Enabled: true, LocalMetadata: true, SectoredMetadata: true}
}

func naiveOpts() Options {
	return Options{Enabled: true}
}

func rd(local memdef.Addr) memdef.Request {
	return memdef.Request{Local: local, Phys: local, Partition: 0, Kind: memdef.Read, Space: memdef.SpaceGlobal}
}

func wr(local memdef.Addr) memdef.Request {
	r := rd(local)
	r.Kind = memdef.Write
	return r
}

func TestDisabledPassthrough(t *testing.T) {
	m, p := newMEE(t, Options{})
	if !m.SubmitRead(rd(0x1000), 0) {
		t.Fatal("submit failed")
	}
	resp, _ := runUntilResponse(t, m, p, 0, 1)
	if resp[0].Local != 0x1000 {
		t.Fatalf("wrong response %v", resp[0])
	}
	if p.Traffic.MetadataBytes() != 0 {
		t.Fatal("baseline generated metadata traffic")
	}
	if p.Traffic.DataBytes() != memdef.SectorSize {
		t.Fatalf("data bytes = %d", p.Traffic.DataBytes())
	}
}

func TestPSSMReadGeneratesMetadataTraffic(t *testing.T) {
	m, p := newMEE(t, pssmOpts())
	m.SubmitRead(rd(0x1000), 0)
	runUntilResponse(t, m, p, 0, 1)
	if p.Traffic.Bytes(stats.TrafficCounter) == 0 {
		t.Error("no counter traffic on cold read")
	}
	if p.Traffic.Bytes(stats.TrafficMAC) == 0 {
		t.Error("no MAC traffic on cold read")
	}
	if p.Traffic.Bytes(stats.TrafficBMT) == 0 {
		t.Error("no BMT traffic on cold counter miss")
	}
}

func TestMetadataCachingEliminatesRefetch(t *testing.T) {
	m, p := newMEE(t, pssmOpts())
	m.SubmitRead(rd(0x1000), 0)
	_, end := runUntilResponse(t, m, p, 0, 1)
	before := p.Traffic.MetadataBytes()
	// Adjacent sector in the same block: same counter sector, same MAC
	// sector, no BMT walk (counter hits).
	m.SubmitRead(rd(0x1020), end)
	runUntilResponse(t, m, p, end, 1)
	if got := p.Traffic.MetadataBytes(); got != before {
		t.Errorf("warm read generated %d metadata bytes", got-before)
	}
}

func TestReadLatencyIncludesAES(t *testing.T) {
	// With a counter-cache hit, response time ≈ data latency vs AES
	// latency (overlapped), so ~ max(100, 40)+1+processing.
	m, p := newMEE(t, pssmOpts())
	m.SubmitRead(rd(0x1000), 0)
	_, end := runUntilResponse(t, m, p, 0, 1)
	// Cold: counter fetch (100) then AES (40) > data (100): ≈141.
	if end < 135 || end > 160 {
		t.Errorf("cold read completed at %d, want ~141-150", end)
	}
	// Warm read: counter hit at submit → AES overlaps data fetch: ≈101.
	m.SubmitRead(rd(0x1020), end)
	_, end2 := runUntilResponse(t, m, p, end, 1)
	lat := end2 - end
	if lat < 95 || lat > 120 {
		t.Errorf("warm read latency = %d, want ~101-110", lat)
	}
}

func TestNaiveFetchesFullMetadataBlocks(t *testing.T) {
	mN, pN := newMEE(t, naiveOpts())
	mP, pP := newMEE(t, pssmOpts())
	mN.SubmitRead(rd(0x1000), 0)
	mP.SubmitRead(rd(0x1000), 0)
	runUntilResponse(t, mN, pN, 0, 1)
	runUntilResponse(t, mP, pP, 0, 1)
	if pN.Traffic.Bytes(stats.TrafficCounter) <= pP.Traffic.Bytes(stats.TrafficCounter) {
		t.Errorf("naive counter traffic %d not above sectored %d",
			pN.Traffic.Bytes(stats.TrafficCounter), pP.Traffic.Bytes(stats.TrafficCounter))
	}
}

func TestReadOnlySkipsCounterAndBMT(t *testing.T) {
	m, p := newMEE(t, shmOpts())
	m.MarkInputRange(0, memdef.RegionSize)
	m.SubmitRead(rd(0x1000), 0)
	runUntilResponse(t, m, p, 0, 1)
	if got := p.Traffic.Bytes(stats.TrafficCounter); got != 0 {
		t.Errorf("RO read fetched %d counter bytes", got)
	}
	if got := p.Traffic.Bytes(stats.TrafficBMT); got != 0 {
		t.Errorf("RO read walked the BMT: %d bytes", got)
	}
	// MAC is still required (integrity without freshness).
	if p.Traffic.Bytes(stats.TrafficMAC) == 0 {
		t.Error("RO read skipped the MAC")
	}
}

func TestConstantSpaceIsReadOnlyByNature(t *testing.T) {
	m, p := newMEE(t, shmOpts())
	r := rd(0x2000)
	r.Space = memdef.SpaceConstant
	m.SubmitRead(r, 0)
	runUntilResponse(t, m, p, 0, 1)
	if p.Traffic.Bytes(stats.TrafficCounter) != 0 || p.Traffic.Bytes(stats.TrafficBMT) != 0 {
		t.Error("constant-space read paid counter/BMT traffic")
	}
}

func TestROTransitionOnWrite(t *testing.T) {
	m, p := newMEE(t, shmOpts())
	m.MarkInputRange(0, memdef.RegionSize)
	// Write into the RO region: transition + counter propagation burst.
	m.SubmitWrite(wr(0x1000), 0)
	for c := uint64(0); c < 500; c++ {
		m.Tick(c)
		p.deliver(m, c)
	}
	if m.Reg.Get("ro_transition") != 1 {
		t.Fatalf("transitions = %d, want 1", m.Reg.Get("ro_transition"))
	}
	// Subsequent reads in the region now fetch counters.
	before := p.Traffic.Bytes(stats.TrafficCounter)
	m.SubmitRead(rd(0x3000), 600) // same 16 KB region, different counter sector? same region
	runUntilResponse(t, m, p, 600, 1)
	if p.Traffic.Bytes(stats.TrafficCounter) == before && m.ctrCache.Stats.Hits == 0 {
		t.Error("post-transition read neither fetched nor hit counters")
	}
	// And the write produced dirty counter state that must eventually
	// write back: force pressure later (not asserted here).
}

func TestDualGranMACReducesMACTraffic(t *testing.T) {
	// Stream 4 KB (one chunk, 128 sectors). With chunk MACs, the MAC
	// traffic should be one sector (covering 4 chunk MACs); with block
	// MACs it is 8 sectors (32 block MACs × 8 B = 256 B).
	stream := func(opts Options) *fakePort {
		m, p := newMEE(t, opts)
		m.MarkInputRange(0, 1<<20)
		cycle := uint64(0)
		for b := 0; b < memdef.BlocksPerChunk; b++ {
			for s := 0; s < memdef.SectorsPerBlock; s++ {
				a := memdef.Addr(b*memdef.BlockSize + s*memdef.SectorSize)
				for !m.SubmitRead(rd(a), cycle) {
					m.Tick(cycle)
					p.deliver(m, cycle)
					cycle++
				}
			}
		}
		for i := 0; i < 2000; i++ {
			m.Tick(cycle)
			p.deliver(m, cycle)
			cycle++
		}
		return p
	}
	withChunk := stream(shmOpts())
	noChunk := stream(Options{Enabled: true, LocalMetadata: true, SectoredMetadata: true, ReadOnlyOpt: true})
	if withChunk.Traffic.Bytes(stats.TrafficMAC) >= noChunk.Traffic.Bytes(stats.TrafficMAC) {
		t.Errorf("chunk MAC traffic %d not below block MAC traffic %d",
			withChunk.Traffic.Bytes(stats.TrafficMAC), noChunk.Traffic.Bytes(stats.TrafficMAC))
	}
}

func TestCommonCountersSkipFetchUntilDiverged(t *testing.T) {
	opts := pssmOpts()
	opts.CommonCounters = true
	m, p := newMEE(t, opts)
	m.SubmitRead(rd(0x1000), 0)
	_, end := runUntilResponse(t, m, p, 0, 1)
	if got := p.Traffic.Bytes(stats.TrafficCounter); got != 0 {
		t.Errorf("common-counter read fetched %d counter bytes", got)
	}
	// A write diverges the page.
	m.SubmitWrite(wr(0x1000), end)
	for c := end; c < end+300; c++ {
		m.Tick(c)
		p.deliver(m, c)
	}
	if m.Reg.Get("cctr_diverged") != 1 {
		t.Fatalf("diverged pages = %d, want 1", m.Reg.Get("cctr_diverged"))
	}
}

func TestMispredictRandomChunkChargesRecovery(t *testing.T) {
	// Access a chunk randomly (few blocks, many accesses) in a non-RO
	// region: predicted streaming (init), detected random → the paper's
	// Table III says re-fetch all data blocks in the chunk.
	m, p := newMEE(t, shmOpts())
	cycle := uint64(0)
	// Arm monitoring of the target chunk (monitor-ahead allocates the
	// tracker MonitorLead chunks above the observed access), then access
	// the armed chunk sparsely: a random pattern in a non-RO region.
	lead := m.Config().Streaming.MonitorLead
	armed := memdef.Addr(lead * memdef.ChunkSize)
	m.SubmitRead(rd(0), cycle)
	for i := 0; i < 40; i++ {
		a := armed + memdef.Addr((i%2)*memdef.BlockSize)
		for !m.SubmitRead(rd(a), cycle) {
			m.Tick(cycle)
			p.deliver(m, cycle)
			cycle++
		}
		m.Tick(cycle)
		p.deliver(m, cycle)
		cycle++
	}
	// Run past the MAT timeout so the partial-coverage phase finalizes.
	for i := 0; i < 16000; i++ {
		m.Tick(cycle)
		p.deliver(m, cycle)
		cycle++
	}
	if m.Reg.Get("mp_refetch_chunk_data") == 0 {
		t.Fatal("random-chunk misprediction did not trigger data re-fetch")
	}
	if p.Traffic.Bytes(stats.TrafficMispredict) == 0 {
		t.Fatal("no mispredict traffic charged")
	}
}

func TestOracleDetectorsAvoidMispredicts(t *testing.T) {
	opts := shmOpts()
	opts.OracleDetectors = true
	m, p := newMEE(t, opts)
	m.OraclePreloadStreaming(0, 1<<20, false) // truth: random
	cycle := uint64(0)
	for i := 0; i < 40; i++ {
		a := memdef.Addr((i % 2) * memdef.BlockSize)
		for !m.SubmitRead(rd(a), cycle) {
			m.Tick(cycle)
			p.deliver(m, cycle)
			cycle++
		}
		m.Tick(cycle)
		p.deliver(m, cycle)
		cycle++
	}
	for i := 0; i < 2000; i++ {
		m.Tick(cycle)
		p.deliver(m, cycle)
		cycle++
	}
	if got := p.Traffic.Bytes(stats.TrafficMispredict); got != 0 {
		t.Errorf("oracle design charged %d mispredict bytes", got)
	}
}

func TestInputReadOnlyReset(t *testing.T) {
	m, p := newMEE(t, shmOpts())
	m.MarkInputRange(0, memdef.RegionSize)
	// Kill the RO state with a write.
	m.SubmitWrite(wr(0x100), 0)
	cycle := uint64(0)
	for ; cycle < 500; cycle++ {
		m.Tick(cycle)
		p.deliver(m, cycle)
	}
	shared := m.SharedCounter()
	m.InputReadOnlyReset(0, memdef.RegionSize, cycle)
	if m.SharedCounter() <= shared {
		t.Error("shared counter not advanced by reset")
	}
	if m.Reg.Get("input_readonly_reset") != 1 {
		t.Error("reset not recorded")
	}
	// Scan traffic charged as counter reads.
	for ; cycle < 1200; cycle++ {
		m.Tick(cycle)
		p.deliver(m, cycle)
	}
	// Region is RO again: a read skips counters.
	before := p.Traffic.Bytes(stats.TrafficCounter)
	m.SubmitRead(rd(0x200), cycle)
	runUntilResponse(t, m, p, cycle, 1)
	if p.Traffic.Bytes(stats.TrafficCounter) != before {
		t.Error("read after reset still fetches counters")
	}
}

func TestHostOverwriteClearsRO(t *testing.T) {
	m, _ := newMEE(t, shmOpts())
	m.MarkInputRange(0, memdef.RegionSize)
	m.HostOverwrite(0, memdef.RegionSize)
	r := rd(0x100)
	if m.isReadOnly(r) {
		t.Fatal("region still RO after host overwrite")
	}
}

func TestInputQueueBackpressure(t *testing.T) {
	m, _ := newMEE(t, pssmOpts())
	n := 0
	for m.SubmitRead(rd(memdef.Addr(n*memdef.SectorSize)), 0) {
		n++
		if n > 10000 {
			t.Fatal("input queue never fills")
		}
	}
	if n != m.Config().InputQueue {
		t.Errorf("accepted %d, want %d", n, m.Config().InputQueue)
	}
}

func TestVictimCacheHook(t *testing.T) {
	opts := shmOpts()
	opts.VictimL2 = true
	m, p := newMEE(t, opts)
	v := &fakeVictim{active: true, present: map[memdef.Addr]bool{}}
	m.SetVictimCache(v)
	// Preload the victim with the MAC sector the first read will want.
	macSec := memdef.SectorAddr(m.Layout().ChunkMACAddr(0x1000))
	v.present[macSec] = true
	m.SubmitRead(rd(0x1000), 0)
	runUntilResponse(t, m, p, 0, 1)
	if m.Reg.Get("victim_hit") == 0 {
		t.Error("victim cache never hit")
	}
	if p.Traffic.Bytes(stats.TrafficMAC) != 0 {
		t.Error("MAC fetched from DRAM despite victim hit")
	}
}

type fakeVictim struct {
	active  bool
	present map[memdef.Addr]bool
	pushes  int
}

func (v *fakeVictim) PushVictim(addr memdef.Addr) { v.present[addr] = true; v.pushes++ }
func (v *fakeVictim) ProbeVictim(addr memdef.Addr) bool {
	if v.present[addr] {
		delete(v.present, addr)
		return true
	}
	return false
}
func (v *fakeVictim) VictimActive() bool { return v.active }

func TestAccuracyHarnessWiring(t *testing.T) {
	opts := shmOpts()
	opts.TrackAccuracy = true
	m, p := newMEE(t, opts)
	m.MarkInputRange(0, memdef.RegionSize)
	m.SubmitRead(rd(0x100), 0)
	runUntilResponse(t, m, p, 0, 1)
	ro, st := m.AccuracyResults()
	if ro.Total() != 1 {
		t.Errorf("ro predictions = %d, want 1", ro.Total())
	}
	if st.Total() != 1 {
		t.Errorf("st predictions = %d, want 1", st.Total())
	}
}

func TestIdle(t *testing.T) {
	m, p := newMEE(t, pssmOpts())
	if !m.Idle() {
		t.Fatal("fresh MEE not idle")
	}
	m.SubmitRead(rd(0), 0)
	if m.Idle() {
		t.Fatal("MEE idle with queued work")
	}
	_, end := runUntilResponse(t, m, p, 0, 1)
	for c := end; c < end+500; c++ {
		m.Tick(c)
		p.deliver(m, c)
	}
	if !m.Idle() {
		t.Fatal("MEE not idle after drain")
	}
}

func TestFlushKernelFinalizesMATs(t *testing.T) {
	m, p := newMEE(t, shmOpts())
	// Arm the monitored chunk, then give it a few accesses: tracker
	// active with an incomplete window.
	lead := m.Config().Streaming.MonitorLead
	armed := memdef.Addr(lead * memdef.ChunkSize)
	m.SubmitRead(rd(0), 0)
	for i := 0; i < 5; i++ {
		m.SubmitRead(rd(armed+memdef.Addr(i*memdef.BlockSize)), 0)
	}
	cycle := uint64(0)
	for ; cycle < 500; cycle++ {
		m.Tick(cycle)
		p.deliver(m, cycle)
	}
	m.FlushKernel(cycle)
	// Partial coverage → detected random → predictor trained to random.
	if m.stPred.Predict(armed) {
		t.Error("flush did not train predictor from partial window")
	}
}

// routedPort records which partition each request was sent to.
type routedPort struct {
	fakePort
	parts map[int]int
}

func (p *routedPort) Enqueue(part int, r dram.Req, now uint64) bool {
	if p.parts == nil {
		p.parts = map[int]int{}
	}
	p.parts[part]++
	return p.fakePort.Enqueue(part, r, now)
}

func TestNaiveMetadataCrossesPartitions(t *testing.T) {
	// Under physical-address metadata (naive), counter/MAC/BMT addresses
	// scatter across partitions; this MEE (partition 0) must route some
	// metadata requests to other partitions' channels.
	port := &routedPort{fakePort: fakePort{latency: 50}}
	cfg := DefaultConfig(naiveOpts(), 0, 12, testProtected)
	m := NewMEE(cfg, port)
	cycle := uint64(0)
	for i := 0; i < 32; i++ {
		a := memdef.Addr(i * 4096)
		for !m.SubmitRead(memdef.Request{Local: a, Phys: a, Kind: memdef.Read, Space: memdef.SpaceGlobal}, cycle) {
			m.Tick(cycle)
			port.deliver(m, cycle)
			cycle++
		}
	}
	for i := 0; i < 3000; i++ {
		m.Tick(cycle)
		port.deliver(m, cycle)
		cycle++
	}
	others := 0
	for p, n := range port.parts {
		if p != 0 {
			others += n
		}
	}
	if others == 0 {
		t.Fatal("naive metadata never left the home partition")
	}
}

func TestPSSMMetadataStaysLocal(t *testing.T) {
	port := &routedPort{fakePort: fakePort{latency: 50}}
	cfg := DefaultConfig(pssmOpts(), 3, 12, testProtected)
	m := NewMEE(cfg, port)
	cycle := uint64(0)
	for i := 0; i < 32; i++ {
		a := memdef.Addr(i * 4096)
		for !m.SubmitRead(memdef.Request{Local: a, Phys: a, Partition: 3, Kind: memdef.Read, Space: memdef.SpaceGlobal}, cycle) {
			m.Tick(cycle)
			port.deliver(m, cycle)
			cycle++
		}
	}
	for i := 0; i < 3000; i++ {
		m.Tick(cycle)
		port.deliver(m, cycle)
		cycle++
	}
	for p := range port.parts {
		if p != 3 {
			t.Fatalf("PSSM metadata routed to partition %d", p)
		}
	}
}

func TestTokenRoundTrip(t *testing.T) {
	for _, part := range []int{0, 3, 11} {
		tok := TokenFor(part, 12345)
		if got := TokenOwner(tok); got != part {
			t.Errorf("TokenOwner(TokenFor(%d)) = %d", part, got)
		}
	}
	if TokenOwner(0) != -1 {
		t.Error("zero token should have no owner")
	}
}
