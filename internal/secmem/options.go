// Package secmem implements the Memory Encryption Engine (MEE) timing model
// that sits between one memory partition's L2 banks and its DRAM channel.
// It charges cycles and DRAM bandwidth for every security-metadata access
// the evaluated designs perform: encryption counters (split counters,
// common counters, or the on-chip shared counter for read-only regions),
// per-block and per-chunk MACs (dual-granularity), and Bonsai Merkle Tree
// walks — plus the misprediction-recovery traffic of paper Tables III/IV
// and the L2-victim-cache mode of §IV-D.
//
// The MEE is a pure timing model: no bytes are encrypted here. The
// functional semantics live in the securemem package, which shares the same
// layout, detector, and crypto code so the two cannot drift apart.
package secmem

import (
	"fmt"

	"shmgpu/internal/cache"
	"shmgpu/internal/detectors"
	"shmgpu/internal/memdef"
)

// Options selects a secure-memory design (paper Table VIII).
type Options struct {
	// Enabled turns the MEE on. False is the insecure baseline: requests
	// pass straight through to DRAM.
	Enabled bool
	// LocalMetadata constructs metadata from partition-local addresses
	// (PSSM). False uses physical addresses (the Naive and Common_ctr
	// designs), which scatters metadata across partitions and duplicates
	// it in every partition's metadata caches.
	LocalMetadata bool
	// SectoredMetadata fetches 32 B metadata sectors (PSSM). False
	// fetches full 128 B metadata blocks per miss, CPU-style.
	SectoredMetadata bool
	// CommonCounters enables the common-counter compression: pages whose
	// counters still hold the context-wide common value need no counter
	// fetch; the first write diverges the page.
	CommonCounters bool
	// ReadOnlyOpt enables the shared-counter path: read-only regions use
	// the on-chip shared counter (no counter fetch) and are excluded from
	// the BMT (no freshness walk).
	ReadOnlyOpt bool
	// DualGranMAC enables per-chunk MACs for streaming-predicted chunks.
	DualGranMAC bool
	// OracleDetectors replaces both predictors with unlimited-capacity
	// oracles preloaded from profiling (SHM_upper_bound).
	OracleDetectors bool
	// VictimL2 allows using the partition's L2 as a victim cache for
	// evicted metadata sectors when the sampled L2 miss rate is high.
	VictimL2 bool
	// TrackAccuracy enables the Fig. 10/11 prediction-accuracy harness.
	TrackAccuracy bool
}

// Config configures one partition's MEE.
type Config struct {
	Options
	// Partition is this MEE's partition index.
	Partition int
	// NumPartitions is the total partition count (for physical-address
	// metadata routing).
	NumPartitions int
	// ProtectedBytes is the protected space the metadata layout covers:
	// the per-partition local capacity under LocalMetadata, or the whole
	// device memory otherwise.
	ProtectedBytes uint64
	// CtrCache, MACCache, BMTCache configure the metadata caches
	// (paper Table VI: 2 KB, 128 B blocks, 4-way, 256 MSHRs each).
	CtrCache, MACCache, BMTCache cache.Config
	// ReadOnly and Streaming configure the two detectors.
	ReadOnly  detectors.ReadOnlyConfig
	Streaming detectors.StreamingConfig
	// AESLatency is the OTP generation latency in cycles.
	AESLatency uint64
	// HashLatency is the MAC/hash engine latency in cycles.
	HashLatency uint64
	// InputQueue bounds requests accepted from the L2 banks.
	InputQueue int
	// IssuePerCycle bounds requests processed per cycle.
	IssuePerCycle int
}

// DefaultConfig returns the paper's MEE configuration (Table VI) for one
// partition of a system with numPartitions partitions protecting
// protectedBytes per the addressing mode of opts.
func DefaultConfig(opts Options, partition, numPartitions int, protectedBytes uint64) Config {
	mdc := func(name string) cache.Config {
		return cache.Config{
			Name:             fmt.Sprintf("%s-p%d", name, partition),
			SizeBytes:        2048,
			Ways:             4,
			MSHRs:            256,
			MaxMergesPerMSHR: 16,
		}
	}
	return Config{
		Options:        opts,
		Partition:      partition,
		NumPartitions:  numPartitions,
		ProtectedBytes: protectedBytes,
		CtrCache:       mdc("ctr"),
		MACCache:       mdc("mac"),
		BMTCache:       mdc("bmt"),
		ReadOnly:       detectors.DefaultReadOnlyConfig(),
		Streaming:      detectors.DefaultStreamingConfig(),
		AESLatency:     40,
		HashLatency:    40,
		InputQueue:     64,
		IssuePerCycle:  2,
	}
}

// VictimCache is the hook the GPU layer provides for the L2-as-victim-cache
// mode: evicted metadata sectors are pushed into the partition's L2, and
// metadata misses probe it before going to DRAM.
type VictimCache interface {
	// PushVictim installs a metadata sector into the L2.
	PushVictim(addr memdef.Addr)
	// ProbeVictim looks up (and consumes) a metadata sector; it reports
	// whether the sector was present.
	ProbeVictim(addr memdef.Addr) bool
	// VictimActive reports whether victim mode is currently enabled by
	// the L2 miss-rate sampler.
	VictimActive() bool
}
