package secmem

import (
	"fmt"
	"sort"

	"shmgpu/internal/dram"
	"shmgpu/internal/flatmap"
	"shmgpu/internal/memdef"
	"shmgpu/internal/ringbuf"
	"shmgpu/internal/snapshot"
)

// Checkpoint/restore for the MEE. The restore target must be built by
// NewMEE with the identical config; structural parameters are validated
// by the embedded cache/predictor loaders plus the feature flags here.
//
// The pooled transactions need special handling: live *txn pointers are
// shared between the pending table, the counter-wait lists, and the ready
// heap, so the serializer assigns each distinct transaction a canonical
// identifier (first-encounter order over a deterministic walk: pending
// table slot order, then the wait-list node arena in index order, then
// the ready heap array), writes one transaction table, and encodes every
// reference as an identifier. The free pool (txnFree) is not serialized —
// releaseTxn fully zeroes recycled transactions, so an empty pool after
// restore is behaviorally identical.
//
// Scratch that is never live at a cycle boundary is skipped: secBuf,
// bmtPathBuf/bmtSlotBuf, and the responses buffer's backing array
// (responses is drained by the caller within the same tick; its length is
// serialized anyway and asserted empty on restore via Idle-compatible
// content). Cold path only.

func saveOracle(e *snapshot.Encoder, m map[uint64]bool) {
	keys := make([]uint64, 0, len(m))
	for k := range m { //shmlint:allow maprange — keys are sorted before use
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.Int(len(keys))
	for _, k := range keys {
		e.U64(k)
		e.Bool(m[k])
	}
}

func loadOracle(d *snapshot.Decoder, m map[uint64]bool) error {
	n := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	for k := range m { //shmlint:allow maprange — clearing; order-insensitive
		delete(m, k)
	}
	for i := 0; i < n; i++ {
		k := d.U64()
		v := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		m[k] = v
	}
	return nil
}

// collectTxns walks every structure holding *txn references in canonical
// order and returns the distinct transactions in first-encounter order
// plus the pointer→identifier index.
func (m *MEE) collectTxns() ([]*txn, map[*txn]int) {
	var order []*txn
	ids := make(map[*txn]int)
	visit := func(t *txn) {
		if t == nil {
			return
		}
		if _, ok := ids[t]; !ok {
			ids[t] = len(order)
			order = append(order, t)
		}
	}
	m.pending.Range(func(_ uint64, pe *pendingEntry) bool {
		visit(pe.txn)
		return true
	})
	flatmap.VisitMultiMapNodes(&m.ctrWait, func(v **txn) { visit(*v) })
	for i := range m.ready {
		visit(m.ready[i].t)
	}
	return order, ids
}

// SaveState writes the MEE's mutable state.
func (m *MEE) SaveState(e *snapshot.Encoder) {
	e.Bool(m.cfg.Enabled)
	e.Bool(m.cfg.OracleDetectors)
	e.Bool(m.cfg.TrackAccuracy)
	if m.cfg.Enabled {
		m.ctrCache.SaveState(e)
		m.macCache.SaveState(e)
		m.bmtCache.SaveState(e)
		m.roPred.SaveState(e)
		m.stPred.SaveState(e)
		m.mats.SaveState(e)
		if m.cfg.OracleDetectors {
			saveOracle(e, m.roOracle)
			saveOracle(e, m.stOracle)
		}
		if m.cfg.TrackAccuracy {
			m.roAcc.SaveState(e)
			m.stAcc.SaveState(e)
		}
	}
	flatmap.SaveMap(e, &m.diverged, func(*snapshot.Encoder, *struct{}) {})
	e.U64(m.sharedCounter)
	ringbuf.Save(e, &m.input, func(e *snapshot.Encoder, en *inputEntry) {
		en.req.SaveState(e)
		e.U64(en.at)
	})
	ringbuf.Save(e, &m.outgoing, func(e *snapshot.Encoder, o *outgoing) {
		e.Int(o.part)
		dram.SaveReq(e, &o.req)
	})

	order, ids := m.collectTxns()
	id := func(t *txn) int {
		if t == nil {
			return -1
		}
		return ids[t]
	}
	e.Int(len(order))
	for _, t := range order {
		t.req.SaveState(e)
		e.Bool(t.haveData)
		e.Bool(t.haveOTP)
		e.U64(t.otpAt)
		e.U64(t.dataAt)
		e.U64(t.submitAt)
		e.Bool(t.enqueued)
	}
	flatmap.SaveMap(e, &m.pending, func(e *snapshot.Encoder, pe *pendingEntry) {
		e.U8(uint8(pe.kind))
		e.U64(uint64(pe.key))
		e.Int(id(pe.txn))
	})
	flatmap.SaveMultiMap(e, &m.ctrWait, func(e *snapshot.Encoder, v **txn) {
		e.Int(id(*v))
	})
	e.Int(len(m.ready))
	for i := range m.ready {
		e.U64(m.ready[i].at)
		e.Int(id(m.ready[i].t))
	}
	e.Int(len(m.responses))
	for i := range m.responses {
		m.responses[i].SaveState(e)
	}
	e.U64(m.nextToken)
	e.U64(m.aesFree)
	e.U64(m.lastTick)
	m.Reg.SaveState(e)
}

// LoadState restores state saved by SaveState into a same-configured MEE.
func (m *MEE) LoadState(d *snapshot.Decoder) error {
	enabled := d.Bool()
	oracle := d.Bool()
	accuracy := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if enabled != m.cfg.Enabled || oracle != m.cfg.OracleDetectors || accuracy != m.cfg.TrackAccuracy {
		return fmt.Errorf("secmem[%d]: snapshot MEE features {enabled=%v oracle=%v accuracy=%v} do not match target {%v %v %v}",
			m.cfg.Partition, enabled, oracle, accuracy, m.cfg.Enabled, m.cfg.OracleDetectors, m.cfg.TrackAccuracy)
	}
	if m.cfg.Enabled {
		for _, step := range []func(*snapshot.Decoder) error{
			m.ctrCache.LoadState, m.macCache.LoadState, m.bmtCache.LoadState,
			m.roPred.LoadState, m.stPred.LoadState, m.mats.LoadState,
		} {
			if err := step(d); err != nil {
				return err
			}
		}
		if m.cfg.OracleDetectors {
			if err := loadOracle(d, m.roOracle); err != nil {
				return err
			}
			if err := loadOracle(d, m.stOracle); err != nil {
				return err
			}
		}
		if m.cfg.TrackAccuracy {
			if err := m.roAcc.LoadState(d); err != nil {
				return err
			}
			if err := m.stAcc.LoadState(d); err != nil {
				return err
			}
		}
	}
	err := flatmap.LoadMap(d, &m.diverged, func(*snapshot.Decoder, *struct{}) {})
	if err != nil {
		return err
	}
	m.sharedCounter = d.U64()
	err = ringbuf.Load(d, &m.input, func(d *snapshot.Decoder, en *inputEntry) {
		en.req.LoadState(d)
		en.at = d.U64()
	})
	if err != nil {
		return err
	}
	err = ringbuf.Load(d, &m.outgoing, func(d *snapshot.Decoder, o *outgoing) {
		o.part = d.Int()
		dram.LoadReq(d, &o.req)
	})
	if err != nil {
		return err
	}

	nTxns := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	table := make([]*txn, nTxns)
	for i := range table {
		t := &txn{}
		t.req.LoadState(d)
		t.haveData = d.Bool()
		t.haveOTP = d.Bool()
		t.otpAt = d.U64()
		t.dataAt = d.U64()
		t.submitAt = d.U64()
		t.enqueued = d.Bool()
		table[i] = t
	}
	if err := d.Err(); err != nil {
		return err
	}
	byID := func(id int) (*txn, error) {
		if id == -1 {
			return nil, nil
		}
		if id < 0 || id >= nTxns {
			return nil, fmt.Errorf("secmem[%d]: transaction id %d out of range (%d transactions)", m.cfg.Partition, id, nTxns)
		}
		return table[id], nil
	}
	var refErr error
	err = flatmap.LoadMap(d, &m.pending, func(d *snapshot.Decoder, pe *pendingEntry) {
		pe.kind = pendingKind(d.U8())
		pe.key = memdef.Addr(d.U64())
		t, err := byID(d.Int())
		if err != nil && refErr == nil {
			refErr = err
		}
		pe.txn = t
	})
	if err != nil {
		return err
	}
	err = flatmap.LoadMultiMap(d, &m.ctrWait, func(d *snapshot.Decoder, v **txn) {
		t, err := byID(d.Int())
		if err != nil && refErr == nil {
			refErr = err
		}
		*v = t
	})
	if err != nil {
		return err
	}
	nReady := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	m.ready = m.ready[:0]
	for i := 0; i < nReady; i++ {
		at := d.U64()
		t, err := byID(d.Int())
		if err != nil && refErr == nil {
			refErr = err
		}
		m.ready = append(m.ready, readyTxn{at: at, t: t})
	}
	if refErr != nil {
		return refErr
	}
	nResp := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	m.responses = m.responses[:0]
	for i := 0; i < nResp; i++ {
		var r memdef.Request
		r.LoadState(d)
		m.responses = append(m.responses, r)
	}
	m.nextToken = d.U64()
	m.aesFree = d.U64()
	m.lastTick = d.U64()
	m.txnFree = m.txnFree[:0]
	if err := m.Reg.LoadState(d); err != nil {
		return err
	}
	return d.Err()
}
