package experiments

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"shmgpu/internal/gpu"
	"shmgpu/internal/obs"
	"shmgpu/internal/scheme"
	"shmgpu/internal/secmem"
	"shmgpu/internal/telemetry"
)

// fixedManifest is a wall-clock-free manifest so exports are byte-comparable
// across runs.
func fixedManifest() telemetry.Manifest {
	return telemetry.Manifest{Tool: "obs-test", SchemaVersion: 1, Workload: "atax", Scheme: "SHM"}
}

// TestOpsPlaneDoesNotPerturbExports runs the same cell with and without the
// live ops plane attached and requires byte-identical committed artifacts:
// the counter registry, the JSONL telemetry export, and the Prometheus
// export. This is the no-perturbation acceptance criterion end to end.
func TestOpsPlaneDoesNotPerturbExports(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	tcfg := telemetry.Config{SampleInterval: 5000, CaptureEvents: true}

	export := func(orun *obs.Run) (plainRes gpu.Result, jsonl, prom []byte) {
		res, col, err := RunObservedSeeded(QuickConfig(), "atax", 0, scheme.SHM, tcfg, orun)
		if err != nil {
			t.Fatal(err)
		}
		sum := TelemetrySummary(res)
		var jb, pb bytes.Buffer
		if err := telemetry.WriteJSONL(&jb, col, sum, fixedManifest()); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WritePrometheus(&pb, col, sum, fixedManifest()); err != nil {
			t.Fatal(err)
		}
		return res, jb.Bytes(), pb.Bytes()
	}

	plainRes, plainJSONL, plainProm := export(nil)

	p, err := obs.Start(obs.Options{Tool: "obs-test", TotalCells: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	obsRes, obsJSONL, obsProm := export(p.BeginRun("atax/SHM"))

	if plainRes.Cycles != obsRes.Cycles || plainRes.Instructions != obsRes.Instructions {
		t.Errorf("observed run diverged: %s vs %s", plainRes.String(), obsRes.String())
	}
	if !bytes.Equal(plainJSONL, obsJSONL) {
		t.Error("JSONL export differs with ops plane attached")
	}
	if !bytes.Equal(plainProm, obsProm) {
		t.Error("Prometheus export differs with ops plane attached")
	}
}

// wedgeWorkload is an injected stall: every warp's first instruction fetch
// blocks until release is closed, so the simulation wedges inside a tick and
// the heartbeat goes quiet.
type wedgeWorkload struct {
	release chan struct{}
}

func (w *wedgeWorkload) Name() string                { return "wedge" }
func (w *wedgeWorkload) Kernels() int                { return 1 }
func (w *wedgeWorkload) Setup(k int) gpu.KernelSetup { return gpu.KernelSetup{} }
func (w *wedgeWorkload) NewWarp(_, _, _ int) gpu.WarpProgram {
	return &wedgeWarp{w}
}

type wedgeWarp struct{ w *wedgeWorkload }

func (p *wedgeWarp) Next() (int, gpu.MemInst, bool) {
	<-p.w.release
	return 0, gpu.MemInst{}, true
}

// TestWatchdogCancelsStalledCell injects a wedged simulation under a
// cancel-armed watchdog and requires the sweep-side contract: the call
// returns (the sweep completes) with a placeholder Result marked Cancelled,
// the cell is reported stalled, and the diagnostic bundle is on disk.
func TestWatchdogCancelsStalledCell(t *testing.T) {
	dir := t.TempDir()
	p, err := obs.Start(obs.Options{
		Tool:             "obs-test",
		TotalCells:       1,
		WatchdogDeadline: 80 * time.Millisecond,
		WatchdogPoll:     10 * time.Millisecond,
		WatchdogDir:      dir,
		WatchdogCancel:   true,
		CancelGrace:      50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	wl := &wedgeWorkload{release: make(chan struct{})}
	t.Cleanup(func() { close(wl.release) }) // unwedge the abandoned goroutine

	r := NewRunner(QuickConfig(), []string{"atax"})
	r.SetOps(p)
	sys := gpu.NewSystem(QuickConfig(), secmem.Options{})
	orun := p.BeginRun("wedge/cell")
	sys.SetObserver(orun, 0)
	sys.SetCancel(orun.CancelFlag())

	done := make(chan gpu.Result, 1)
	go func() { done <- r.runSystem(sys, wl, "wedge", orun) }()
	var res gpu.Result
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sweep hung on the wedged cell; watchdog abandon path broken")
	}
	orun.Done(0, false)

	if !res.Cancelled {
		t.Errorf("stalled cell result not marked Cancelled: %+v", res)
	}
	if stalled := p.Stalled(); len(stalled) != 1 || stalled[0] != "wedge/cell" {
		t.Errorf("stalled cells = %v, want [wedge/cell]", stalled)
	}
	bundle := filepath.Join(dir, "stall-wedge_cell")
	for _, f := range []string{"goroutines.txt", "spans.json", "progress.json"} {
		data, err := os.ReadFile(filepath.Join(bundle, f))
		if err != nil {
			t.Errorf("bundle file %s: %v", f, err)
		} else if len(data) == 0 {
			t.Errorf("bundle file %s is empty", f)
		}
	}
}

// TestMetricsEndpointMatchesBatchExport is the scrape-at-end ≡ committed-
// counters criterion: once the metrics renderer is installed, a live
// /metrics scrape must serve byte-for-byte what the batch exporter writes.
func TestMetricsEndpointMatchesBatchExport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	p, err := obs.Start(obs.Options{Tool: "obs-test", TotalCells: 1, OpsListen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	addr := p.OpsAddr()

	scrape := func() []byte {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics = %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// Mid-run (before any cell commits), the endpoint serves the minimal
	// liveness payload — still valid Prometheus exposition.
	if pre := scrape(); !bytes.Contains(pre, []byte("shmgpu_ops_up 1")) {
		t.Errorf("pre-run /metrics = %q", pre)
	}

	tcfg := telemetry.Config{SampleInterval: 5000}
	res, col, err := RunObservedSeeded(QuickConfig(), "atax", 0, scheme.SHM, tcfg, p.BeginRun("atax/SHM"))
	if err != nil {
		t.Fatal(err)
	}
	sum := TelemetrySummary(res)
	m := fixedManifest()
	p.SetMetrics(func(w io.Writer) error { return telemetry.WritePrometheus(w, col, sum, m) })

	var want bytes.Buffer
	if err := telemetry.WritePrometheus(&want, col, sum, m); err != nil {
		t.Fatal(err)
	}
	if got := scrape(); !bytes.Equal(got, want.Bytes()) {
		t.Errorf("live /metrics scrape differs from batch export (%d vs %d bytes)",
			len(got), want.Len())
	}
}
