package experiments

import (
	"testing"

	"shmgpu/internal/scheme"
)

// TestRunForkedFamilyPrimesCache: a fork family's sequential fast-forward
// variant must land in the runner's figure cache and match the result a
// from-scratch Run would produce — the contract that lets figure sweeps
// share a fork family's warmup.
func TestRunForkedFamilyPrimesCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := quickRunner()
	scratch := NewRunner(QuickConfig(), []string{"bfs"}).Run("bfs", scheme.SHM)

	specs := []ForkSpec{{}, {Shards: 2}}
	results, err := r.RunForkedFamily("bfs", scheme.SHM, scratch.Cycles/4, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	for i := range specs {
		if results[i].Cycles != scratch.Cycles || results[i].Instructions != scratch.Instructions {
			t.Errorf("spec %d: forked run (%d cycles, %d insts) diverges from scratch (%d cycles, %d insts)",
				i, results[i].Cycles, results[i].Instructions, scratch.Cycles, scratch.Instructions)
		}
	}

	r.mu.Lock()
	cached, ok := r.cache[key("bfs", scheme.SHM, false)]
	r.mu.Unlock()
	if !ok {
		t.Fatal("zero ForkSpec variant did not prime the figure cache")
	}
	if cached.Cycles != scratch.Cycles {
		t.Errorf("cached result has %d cycles, scratch %d", cached.Cycles, scratch.Cycles)
	}
}
