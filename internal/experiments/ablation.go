package experiments

import (
	"fmt"

	"shmgpu/internal/gpu"
	"shmgpu/internal/report"
	"shmgpu/internal/scheme"
	"shmgpu/internal/secmem"
	"shmgpu/internal/workload"
)

// Ablation studies sweep the design parameters DESIGN.md calls out:
// the number of memory access trackers, the streaming-detector monitoring
// lead and timeout, and the metadata-cache capacity. Each study reports
// the SHM design's average normalized IPC over the configured workloads,
// isolating how sensitive the paper's results are to that choice.

// ablate runs SHM (and its baseline) under a tuned MEE configuration and
// returns the average normalized IPC over the runner's workloads.
func (r *Runner) ablate(tune func(*secmem.Config)) float64 {
	cfg := r.cfg
	cfg.MEETune = tune
	var sum float64
	for _, wl := range r.workloads {
		bench, err := workload.ByName(wl)
		if err != nil {
			panic(err)
		}
		base := r.Run(wl, scheme.Baseline) // cached, shared across points
		res := gpu.NewSystem(cfg, scheme.SHM.Options).Run(bench)
		if base.IPC() > 0 {
			sum += res.IPC() / base.IPC()
		}
	}
	return sum / float64(len(r.workloads))
}

// AblationTrackers sweeps the per-partition memory-access-tracker count
// (paper default: 8).
func (r *Runner) AblationTrackers() *report.Table {
	t := report.NewTable("Ablation: memory access trackers per partition",
		"trackers", "avg normalized IPC")
	for _, n := range []int{2, 4, 8, 16} {
		n := n
		avg := r.ablate(func(c *secmem.Config) { c.Streaming.Trackers = n })
		t.AddRow(fmt.Sprintf("%d", n), avg)
	}
	return t
}

// AblationMonitorLead sweeps the monitor-ahead distance of the streaming
// detector (default: 4 chunks).
func (r *Runner) AblationMonitorLead() *report.Table {
	t := report.NewTable("Ablation: streaming-detector monitor lead",
		"lead (chunks)", "avg normalized IPC")
	for _, lead := range []uint64{1, 2, 4, 8} {
		lead := lead
		avg := r.ablate(func(c *secmem.Config) { c.Streaming.MonitorLead = lead })
		t.AddRow(fmt.Sprintf("%d", lead), avg)
	}
	return t
}

// AblationTimeout sweeps the monitoring-phase idle timeout (paper: 6000).
func (r *Runner) AblationTimeout() *report.Table {
	t := report.NewTable("Ablation: monitoring-phase timeout",
		"timeout (cycles)", "avg normalized IPC")
	for _, to := range []uint64{1500, 3000, 6000, 12000} {
		to := to
		avg := r.ablate(func(c *secmem.Config) { c.Streaming.TimeoutCycles = to })
		t.AddRow(fmt.Sprintf("%d", to), avg)
	}
	return t
}

// AblationMDCSize sweeps the per-partition metadata-cache capacity
// (paper: 2 KB each for counter, MAC, and BMT caches).
func (r *Runner) AblationMDCSize() *report.Table {
	t := report.NewTable("Ablation: metadata cache size (each of ctr/MAC/BMT)",
		"size (bytes)", "avg normalized IPC")
	for _, size := range []int{1024, 2048, 4096, 8192} {
		size := size
		avg := r.ablate(func(c *secmem.Config) {
			c.CtrCache.SizeBytes = size
			c.MACCache.SizeBytes = size
			c.BMTCache.SizeBytes = size
		})
		t.AddRow(fmt.Sprintf("%d", size), avg)
	}
	return t
}
