package experiments

import (
	"fmt"

	"shmgpu/internal/gpu"
	"shmgpu/internal/scheme"
	"shmgpu/internal/snapshot"
	"shmgpu/internal/telemetry"
	"shmgpu/internal/workload"
)

// Fork-based sweeps: warm one parent run to a cycle boundary, capture its
// complete state once, and fork one child per execution variant from the
// snapshot instead of re-simulating the warmup for every cell. Children
// may vary exactly the knobs the equivalence corpora prove byte-neutral —
// the sharded tick engine and event-horizon fast-forward — so every
// forked child is byte-identical to the same variant run from scratch
// (the fork-equivalence fuzz oracle and TestForkMatchesScratch pin this).

// ForkSpec selects one child's execution strategy.
type ForkSpec struct {
	// Shards is the child's ParallelShards (0 = sequential).
	Shards int
	// DisableFastForward forces the child to tick every cycle.
	DisableFastForward bool
}

func applyFork(cfg gpu.Config, spec ForkSpec) gpu.Config {
	cfg.ParallelShards = spec.Shards
	cfg.DisableFastForward = spec.DisableFastForward
	return cfg
}

// RunForkedSeeded runs (workload, scheme) under every spec, amortizing the
// first warmCycle cycles across the specs through one warmed parent. Each
// child gets its own fresh collector (config tcfg), exactly as if the run
// had been instrumented from scratch. When the whole workload finishes
// before warmCycle there is nothing to fork; every spec falls back to an
// ordinary from-scratch run, which is byte-identical by definition.
func RunForkedSeeded(cfg gpu.Config, wl string, seed int64, sch scheme.Scheme, warmCycle uint64, tcfg telemetry.Config, specs []ForkSpec) ([]gpu.Result, []*telemetry.Collector, error) {
	results := make([]gpu.Result, len(specs))
	cols := make([]*telemetry.Collector, len(specs))
	if len(specs) == 0 {
		return results, cols, nil
	}
	blob, _, err := warmSnapshot(cfg, wl, seed, sch, warmCycle, tcfg)
	if err != nil {
		return nil, nil, err
	}
	if blob == nil {
		for i, spec := range specs {
			res, col, err := RunInstrumentedSeeded(applyFork(cfg, spec), wl, seed, sch, tcfg)
			if err != nil {
				return nil, nil, err
			}
			results[i], cols[i] = res, col
		}
		return results, cols, nil
	}
	for i, spec := range specs {
		res, col, err := resumeFromSnapshot(applyFork(cfg, spec), wl, seed, sch, tcfg, blob)
		if err != nil {
			return nil, nil, err
		}
		results[i], cols[i] = res, col
	}
	return results, cols, nil
}

// warmSnapshot runs the parent to warmCycle and serializes it. A nil blob
// with nil error means the workload completed before the boundary (res
// then holds the finished parent's result).
func warmSnapshot(cfg gpu.Config, wl string, seed int64, sch scheme.Scheme, warmCycle uint64, tcfg telemetry.Config) ([]byte, gpu.Result, error) {
	bench, err := workload.ByNameSeeded(wl, seed)
	if err != nil {
		return nil, gpu.Result{}, err
	}
	sys := gpu.NewSystem(cfg, sch.Options)
	col := telemetry.New(tcfg)
	sys.AttachTelemetry(col)
	res, done := sys.RunUntil(bench, warmCycle)
	if done {
		res.Scheme = sch.Name
		return nil, res, nil
	}
	enc := snapshot.NewEncoder()
	err = sys.SaveState(enc, bench)
	sys.Shutdown()
	if err != nil {
		return nil, gpu.Result{}, err
	}
	return enc.Data(), gpu.Result{}, nil
}

// resumeFromSnapshot restores blob into a fresh system under cfg and runs
// it to completion.
func resumeFromSnapshot(cfg gpu.Config, wl string, seed int64, sch scheme.Scheme, tcfg telemetry.Config, blob []byte) (gpu.Result, *telemetry.Collector, error) {
	bench, err := workload.ByNameSeeded(wl, seed)
	if err != nil {
		return gpu.Result{}, nil, err
	}
	sys := gpu.NewSystem(cfg, sch.Options)
	col := telemetry.New(tcfg)
	sys.AttachTelemetry(col)
	if err := sys.LoadState(snapshot.NewDecoder(blob), bench); err != nil {
		return gpu.Result{}, nil, err
	}
	res := sys.Resume(bench)
	res.Scheme = sch.Name
	return res, col, nil
}

// RunForkedFamily is the Runner-level fork sweep: cells sharing a warmup
// prefix — same (workload, scheme), differing only in execution-strategy
// knobs — are produced from one warmed parent instead of one full run
// each. Every result is byte-identical to a from-scratch run, so the
// sequential fast-forward variant (the zero ForkSpec) also primes the
// runner's figure cache for that cell.
func (r *Runner) RunForkedFamily(wl string, sch scheme.Scheme, warmCycle uint64, specs []ForkSpec) ([]gpu.Result, error) {
	results, _, err := RunForkedSeeded(r.cfg, wl, 0, sch, warmCycle, r.tcfg, specs)
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		if spec != (ForkSpec{}) {
			continue
		}
		k := key(wl, sch, false)
		r.mu.Lock()
		if _, ok := r.cache[k]; !ok {
			r.cache[k] = results[i]
		}
		r.mu.Unlock()
	}
	return results, nil
}

// WriteSnapshotSeeded warms (workload, scheme) to warmCycle and writes the
// captured state to path (checksummed, version-stamped, atomically
// renamed into place — a killed writer never leaves a loadable file). It
// reports whether a snapshot was written: a workload that completes
// before warmCycle leaves nothing to capture, and a run cancelled by a
// watchdog refuses to snapshot.
func WriteSnapshotSeeded(cfg gpu.Config, wl string, seed int64, sch scheme.Scheme, warmCycle uint64, tcfg telemetry.Config, path string) (bool, error) {
	if warmCycle == 0 {
		return false, fmt.Errorf("experiments: snapshot cycle must be positive")
	}
	blob, _, err := warmSnapshot(cfg, wl, seed, sch, warmCycle, tcfg)
	if err != nil || blob == nil {
		return false, err
	}
	if err := snapshot.WriteFile(path, blob); err != nil {
		return false, err
	}
	return true, nil
}

// RestoreRunSeeded loads a snapshot written by WriteSnapshotSeeded and
// resumes it to completion under cfg. The workload, scheme, seed, and
// collector configuration must match the capturing run (the snapshot's
// fingerprint and the collector's own config check reject mismatches);
// cfg may vary only the execution-strategy knobs.
func RestoreRunSeeded(cfg gpu.Config, wl string, seed int64, sch scheme.Scheme, tcfg telemetry.Config, path string) (gpu.Result, *telemetry.Collector, error) {
	blob, err := snapshot.ReadFile(path)
	if err != nil {
		return gpu.Result{}, nil, err
	}
	return resumeFromSnapshot(cfg, wl, seed, sch, tcfg, blob)
}
