package experiments

import (
	"shmgpu/internal/gpu"
	"shmgpu/internal/obs"
	"shmgpu/internal/scheme"
	"shmgpu/internal/telemetry"
	"shmgpu/internal/workload"
)

// TelemetrySummary converts a simulation result into the neutral RunSummary
// the telemetry exporters consume. The telemetry package cannot import gpu
// (the probe-bearing packages import telemetry), so the conversion lives
// here, above both.
func TelemetrySummary(res gpu.Result) telemetry.RunSummary {
	return telemetry.RunSummary{
		Workload:       res.Workload,
		Scheme:         res.Scheme,
		Cycles:         res.Cycles,
		Instructions:   res.Instructions,
		IPC:            res.IPC(),
		Completed:      res.Completed,
		BusUtilization: res.BusUtilization,
		Traffic:        res.Traffic,
		Caches: []telemetry.NamedCache{
			{Name: "l1", Stats: res.L1},
			{Name: "l2", Stats: res.L2},
			{Name: "ctr_mdc", Stats: res.Ctr},
			{Name: "mac_mdc", Stats: res.MAC},
			{Name: "bmt_mdc", Stats: res.BMT},
		},
		RO:       res.ROAccuracy,
		Stream:   res.StreamAccuracy,
		Counters: res.Reg.Snapshot(),
	}
}

// RunInstrumented simulates one workload under one scheme with a telemetry
// collector attached, returning both the result and the filled collector.
// Instrumented runs are never cached: the collector belongs to exactly one
// run.
func RunInstrumented(cfg gpu.Config, wl string, sch scheme.Scheme, tcfg telemetry.Config) (gpu.Result, *telemetry.Collector, error) {
	return RunInstrumentedSeeded(cfg, wl, 0, sch, tcfg)
}

// RunInstrumentedSeeded is RunInstrumented with an explicit workload seed
// (0 keeps the benchmark's built-in seed).
func RunInstrumentedSeeded(cfg gpu.Config, wl string, seed int64, sch scheme.Scheme, tcfg telemetry.Config) (gpu.Result, *telemetry.Collector, error) {
	return RunObservedSeeded(cfg, wl, seed, sch, tcfg, nil)
}

// RunObservedSeeded is RunInstrumentedSeeded with a live-observability run
// handle attached (nil = no live plane): the simulator feeds the run's
// heartbeat and phase spans and honours its cancel flag. The observation
// path is passive, so results are byte-identical with orun nil or not.
func RunObservedSeeded(cfg gpu.Config, wl string, seed int64, sch scheme.Scheme, tcfg telemetry.Config, orun *obs.Run) (gpu.Result, *telemetry.Collector, error) {
	bench, err := workload.ByNameSeeded(wl, seed)
	if err != nil {
		return gpu.Result{}, nil, err
	}
	col := telemetry.New(tcfg)
	sys := gpu.NewSystem(cfg, sch.Options)
	sys.AttachTelemetry(col)
	if orun != nil {
		sys.SetObserver(orun, 0)
		sys.SetCancel(orun.CancelFlag())
	}
	res := sys.Run(bench)
	res.Scheme = sch.Name
	if orun != nil {
		orun.Done(res.Cycles, res.Completed)
	}
	return res, col, nil
}
