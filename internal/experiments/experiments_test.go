package experiments

import (
	"strings"
	"testing"

	"shmgpu/internal/scheme"
)

// The experiment tests run a trimmed configuration: two contrasting
// workloads (a streaming read-only one and a random write-heavy one) on
// the quick GPU config. Full-scale sweeps live in the benchmark harness.
func quickRunner() *Runner {
	return NewRunner(QuickConfig(), []string{"fdtd2d", "bfs"})
}

func TestFig12ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := quickRunner()
	table := r.Fig12()
	s := table.String()
	if !strings.Contains(s, "fdtd2d") || !strings.Contains(s, "SHM") {
		t.Fatalf("table incomplete:\n%s", s)
	}
	// The paper's ordering must hold: Naive <= PSSM <= SHM (normalized
	// IPC increases as optimizations stack).
	naive := r.normalizedIPC("fdtd2d", scheme.Naive)
	pssm := r.normalizedIPC("fdtd2d", scheme.PSSM)
	shm := r.normalizedIPC("fdtd2d", scheme.SHM)
	if !(naive < pssm) {
		t.Errorf("fdtd2d: naive %.3f not below pssm %.3f", naive, pssm)
	}
	if shm < pssm*0.98 {
		t.Errorf("fdtd2d: shm %.3f materially below pssm %.3f", shm, pssm)
	}
	if shm < 0.85 {
		t.Errorf("fdtd2d SHM normalized IPC %.3f, want near 1", shm)
	}
}

func TestFig14BandwidthOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := quickRunner()
	_ = r.Fig14()
	naive := r.Run("fdtd2d", scheme.Naive).BandwidthOverhead()
	pssm := r.Run("fdtd2d", scheme.PSSM).BandwidthOverhead()
	shm := r.Run("fdtd2d", scheme.SHM).BandwidthOverhead()
	if !(shm < pssm && pssm < naive) {
		t.Errorf("overhead ordering violated: naive=%.3f pssm=%.3f shm=%.3f", naive, pssm, shm)
	}
}

func TestFig5Characterization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := quickRunner()
	s := r.Fig5().String()
	if !strings.Contains(s, "fdtd2d") {
		t.Fatalf("missing workload:\n%s", s)
	}
}

func TestAccuracyFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := quickRunner()
	f10 := r.Fig10().String()
	f11 := r.Fig11().String()
	if !strings.Contains(f10, "MP_Init") || !strings.Contains(f11, "MP_Runtime_RO") {
		t.Fatalf("breakdown columns missing:\n%s\n%s", f10, f11)
	}
}

func TestFig15EnergyAboveOne(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := quickRunner()
	_ = r.Fig15()
	// Secure designs must not consume less energy than the baseline.
	base := activityOf(r.Run("bfs", scheme.Baseline))
	naive := activityOf(r.Run("bfs", scheme.Naive))
	if naive.DRAMBytes <= base.DRAMBytes {
		t.Error("naive design moved fewer DRAM bytes than baseline")
	}
}

func TestTableIXStatic(t *testing.T) {
	s := TableIX().String()
	if !strings.Contains(s, "5460") {
		t.Fatalf("Table IX total missing:\n%s", s)
	}
}

func TestRunCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := NewRunner(QuickConfig(), []string{"atax"})
	a := r.Run("atax", scheme.Baseline)
	b := r.Run("atax", scheme.Baseline)
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Fatal("cache returned different results")
	}
}

func TestDefaultWorkloadsAreMemoryIntensive(t *testing.T) {
	r := NewRunner(QuickConfig(), nil)
	if len(r.Workloads()) != 15 {
		t.Fatalf("default workloads = %d, want 15", len(r.Workloads()))
	}
}

func TestAblationTables(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := NewRunner(QuickConfig(), []string{"fdtd2d"})
	tb := r.AblationTrackers()
	if len(tb.Rows) != 4 {
		t.Fatalf("tracker ablation rows = %d", len(tb.Rows))
	}
	tb2 := r.AblationMDCSize()
	if len(tb2.Rows) != 4 {
		t.Fatalf("MDC ablation rows = %d", len(tb2.Rows))
	}
}
