// Package experiments regenerates every table and figure of the paper's
// evaluation section: workload characterization (Fig. 5), predictor
// accuracy breakdowns (Figs. 10, 11), overall performance (Fig. 12),
// optimization breakdown (Fig. 13), bandwidth overheads (Fig. 14), energy
// (Fig. 15), the L2 victim-cache study (Fig. 16), and the static tables
// (VII hardware utilization check, IX hardware overhead).
//
// A Runner caches simulation results keyed by (workload, scheme) so
// figures sharing runs (12, 13, 14, 15 all reuse the same sweeps) pay for
// each simulation once. Runs are independent and deterministic, so the
// prefetch pass executes them on a worker pool.
package experiments

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"shmgpu/internal/detectors"
	"shmgpu/internal/energy"
	"shmgpu/internal/gpu"
	"shmgpu/internal/obs"
	"shmgpu/internal/pool"
	"shmgpu/internal/report"
	"shmgpu/internal/scheme"
	"shmgpu/internal/stats"
	"shmgpu/internal/telemetry"
	"shmgpu/internal/workload"
)

// Runner executes and caches simulation runs.
type Runner struct {
	cfg       gpu.Config
	workloads []string

	// workers bounds the Prefetch pool; 0 selects runtime.NumCPU().
	workers int

	// When sink is non-nil every uncached run is instrumented with a
	// telemetry collector (config tcfg) handed to sink on completion.
	tcfg telemetry.Config
	sink func(gpu.Result, *telemetry.Collector)

	// ops, when non-nil, is the live observability plane: every uncached
	// run gets a cell span, a progress heartbeat, and — when the plane's
	// watchdog is armed to cancel — an abandon path that lets the sweep
	// complete with a stalled cell reported instead of hanging.
	ops *obs.Plane

	mu    sync.Mutex
	cache map[string]gpu.Result
}

// SetWorkers bounds the Prefetch worker pool (paperbench -workers).
// 0 restores the default, runtime.NumCPU(). Note that sweep-level workers
// multiply with Config.ParallelShards — each prefetched run ticks on its
// own shard pool — so a machine-sized -workers with shards enabled
// oversubscribes; prefer one or the other at full width.
func (r *Runner) SetWorkers(n int) { r.workers = n }

// SetTelemetrySink instruments every subsequent uncached run with a fresh
// collector and passes it to sink together with the result. Prefetch runs
// jobs on a worker pool, so sink must be safe for concurrent use (writing to
// distinct per-run files is sufficient). A nil sink disables instrumentation.
func (r *Runner) SetTelemetrySink(tcfg telemetry.Config, sink func(gpu.Result, *telemetry.Collector)) {
	r.tcfg = tcfg
	r.sink = sink
}

// SetOps attaches a live observability plane (nil detaches). Attach before
// the first run; the plane outlives the runner and is closed by its owner.
func (r *Runner) SetOps(p *obs.Plane) { r.ops = p }

// NewRunner builds a runner over the given GPU configuration and workload
// list (empty list = the paper's 15 memory-intensive workloads).
func NewRunner(cfg gpu.Config, workloads []string) *Runner {
	if len(workloads) == 0 {
		workloads = workload.MemoryIntensive()
	}
	return &Runner{cfg: cfg, workloads: workloads, cache: map[string]gpu.Result{}}
}

// QuickConfig returns a scaled-down GPU configuration for fast smoke runs
// (CI, -short tests): fewer SMs and a tighter cycle budget. Shapes remain,
// absolute averages get noisier.
func QuickConfig() gpu.Config {
	cfg := gpu.DefaultConfig()
	cfg.SMs = 10
	cfg.WarpsPerSM = 16
	cfg.MaxCycles = 120_000
	return cfg
}

// Workloads returns the runner's workload list.
func (r *Runner) Workloads() []string { return append([]string(nil), r.workloads...) }

func key(wl string, sch scheme.Scheme, accuracy bool) string {
	if accuracy {
		return wl + "/" + sch.Name + "/acc"
	}
	return wl + "/" + sch.Name
}

// Run simulates one workload under one scheme (cached).
func (r *Runner) Run(wl string, sch scheme.Scheme) gpu.Result {
	return r.run(wl, sch, false)
}

// RunWithAccuracy simulates with the Fig. 10/11 accuracy harness enabled.
func (r *Runner) RunWithAccuracy(wl string, sch scheme.Scheme) gpu.Result {
	return r.run(wl, sch, true)
}

func (r *Runner) run(wl string, sch scheme.Scheme, accuracy bool) gpu.Result {
	return r.runOn(-1, wl, sch, accuracy)
}

// runOn is run with the identity of the pool worker executing it (-1 when
// not on a pool), threaded into the cell span.
func (r *Runner) runOn(worker int, wl string, sch scheme.Scheme, accuracy bool) gpu.Result {
	k := key(wl, sch, accuracy)
	r.mu.Lock()
	if res, ok := r.cache[k]; ok {
		r.mu.Unlock()
		return res
	}
	r.mu.Unlock()

	bench, err := workload.ByName(wl)
	if err != nil {
		panic(err)
	}
	opts := sch.Options
	opts.TrackAccuracy = accuracy
	sys := gpu.NewSystem(r.cfg, opts)
	var col *telemetry.Collector
	if r.sink != nil {
		col = telemetry.New(r.tcfg)
		sys.AttachTelemetry(col)
	}
	orun := r.ops.BeginRun(k)
	if orun != nil {
		if worker >= 0 {
			orun.Span().Annotate("worker", strconv.Itoa(worker))
		}
		sys.SetObserver(orun, 0)
		sys.SetCancel(orun.CancelFlag())
	}
	res := r.runSystem(sys, bench, wl, orun)
	res.Scheme = sch.Name
	if orun != nil {
		orun.Done(res.Cycles, res.Completed)
	}
	if r.sink != nil && !res.Cancelled {
		r.sink(res, col)
	}

	r.mu.Lock()
	r.cache[k] = res
	r.mu.Unlock()
	return res
}

// runSystem executes one simulation, honouring the plane's abandon path:
// when the stall watchdog is armed to cancel, the simulation runs on its
// own goroutine and the watchdog's abandon signal (plus a grace period for
// the tick loop to notice the cancel flag) unblocks the sweep with a
// placeholder Result marked Cancelled. A run that never reaches another
// tick boundary leaks its goroutine — that is exactly the wedged state the
// diagnostic bundle documents.
func (r *Runner) runSystem(sys *gpu.System, bench gpu.Workload, wl string, orun *obs.Run) gpu.Result {
	if orun == nil || !r.ops.CanCancel() {
		return sys.Run(bench)
	}
	ch := make(chan gpu.Result, 1)
	go func() { ch <- sys.Run(bench) }() //shm:parallel-ok — joined via ch or deliberately abandoned on watchdog cancel
	select {
	case res := <-ch:
		return res
	case <-orun.Abandoned():
		select {
		case res := <-ch:
			return res
		case <-time.After(r.ops.CancelGrace()):
			return gpu.Result{Workload: wl, Cancelled: true}
		}
	}
}

// job describes one simulation to prefetch.
type job struct {
	wl       string
	sch      scheme.Scheme
	accuracy bool
}

// Prefetch runs the given (workload × scheme) cross product on the shared
// fixed worker pool (internal/pool — the same implementation the sharded
// tick engine uses), filling the cache. Worker count comes from
// SetWorkers, defaulting to runtime.NumCPU().
func (r *Runner) Prefetch(schemes []scheme.Scheme, accuracy bool) {
	var jobs []job
	for _, wl := range r.workloads {
		for _, sch := range schemes {
			jobs = append(jobs, job{wl, sch, accuracy})
		}
	}
	if len(jobs) == 0 {
		return
	}
	workers := r.workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	tasks := make([]func(worker int), len(jobs))
	for i := range jobs {
		j := jobs[i]
		tasks[i] = func(worker int) { r.runOn(worker, j.wl, j.sch, j.accuracy) }
	}
	p := pool.New(workers)
	defer p.Close()
	p.RunTagged(tasks)
}

// normalizedIPC returns scheme IPC / baseline IPC for a workload.
func (r *Runner) normalizedIPC(wl string, sch scheme.Scheme) float64 {
	base := r.Run(wl, scheme.Baseline)
	run := r.Run(wl, sch)
	if base.IPC() == 0 {
		return 0
	}
	return run.IPC() / base.IPC()
}

// Fig5 reproduces the access-characterization figure: the fraction of
// off-chip accesses (L2 misses and write-backs) that target streaming data
// and read-only data, per workload. Measured on the oracle-truth design so
// every access is classified against ground truth.
func (r *Runner) Fig5() *report.Table {
	t := report.NewTable("Figure 5: streaming and read-only access ratios",
		"benchmark", "streaming", "read-only")
	for _, wl := range r.workloads {
		res := r.Run(wl, scheme.SHMUpperBound)
		total := float64(res.Reg.Get("access_total"))
		if total == 0 {
			total = 1
		}
		t.AddRow(wl,
			report.Percent(float64(res.Reg.Get("access_streaming"))/total),
			report.Percent(float64(res.Reg.Get("access_readonly"))/total))
	}
	return t
}

// Fig10 reproduces the read-only prediction breakdown.
func (r *Runner) Fig10() *report.Table {
	t := report.NewTable("Figure 10: read-only prediction breakdown",
		"benchmark", "correct", "MP_Init", "MP_Aliasing", "accuracy")
	var accs []float64
	for _, wl := range r.workloads {
		res := r.RunWithAccuracy(wl, scheme.SHM)
		ps := res.ROAccuracy
		accs = append(accs, ps.Accuracy())
		t.AddRow(wl,
			report.Percent(ps.Fraction(stats.OutcomeCorrect)),
			report.Percent(ps.Fraction(stats.OutcomeMPInit)),
			report.Percent(ps.Fraction(stats.OutcomeMPAliasing)),
			report.Percent(ps.Accuracy()))
	}
	t.AddRow("average", "", "", "", report.Percent(report.Mean(accs)))
	return t
}

// Fig11 reproduces the streaming prediction breakdown.
func (r *Runner) Fig11() *report.Table {
	t := report.NewTable("Figure 11: streaming prediction breakdown",
		"benchmark", "correct", "MP_Init", "MP_Runtime_RO", "MP_Runtime_NonRO", "MP_Aliasing", "accuracy")
	var accs []float64
	for _, wl := range r.workloads {
		res := r.RunWithAccuracy(wl, scheme.SHM)
		ps := res.StreamAccuracy
		accs = append(accs, ps.Accuracy())
		t.AddRow(wl,
			report.Percent(ps.Fraction(stats.OutcomeCorrect)),
			report.Percent(ps.Fraction(stats.OutcomeMPInit)),
			report.Percent(ps.Fraction(stats.OutcomeMPRuntimeRO)),
			report.Percent(ps.Fraction(stats.OutcomeMPRuntimeNonRO)),
			report.Percent(ps.Fraction(stats.OutcomeMPAliasing)),
			report.Percent(ps.Accuracy()))
	}
	t.AddRow("average", "", "", "", "", "", report.Percent(report.Mean(accs)))
	return t
}

// fig12Schemes are the designs compared in the overall-performance figure.
func fig12Schemes() []scheme.Scheme {
	return []scheme.Scheme{
		scheme.Naive, scheme.CommonCtr, scheme.PSSM, scheme.SHM, scheme.SHMUpperBound,
	}
}

// Fig12 reproduces the normalized-IPC comparison.
func (r *Runner) Fig12() *report.Table {
	schemes := fig12Schemes()
	cols := []string{"benchmark"}
	for _, s := range schemes {
		cols = append(cols, s.Name)
	}
	t := report.NewTable("Figure 12: normalized IPC of secure GPU memory designs", cols...)
	sums := make([]float64, len(schemes))
	for _, wl := range r.workloads {
		row := []interface{}{wl}
		for i, s := range schemes {
			n := r.normalizedIPC(wl, s)
			sums[i] += n
			row = append(row, n)
		}
		t.AddRow(row...)
	}
	avg := []interface{}{"average"}
	for i := range schemes {
		avg = append(avg, sums[i]/float64(len(r.workloads)))
	}
	t.AddRow(avg...)
	return t
}

// Fig13 reproduces the optimization breakdown.
func (r *Runner) Fig13() *report.Table {
	schemes := []scheme.Scheme{
		scheme.PSSM, scheme.PSSMCtr, scheme.SHMReadOnly, scheme.SHM, scheme.SHMCctr,
	}
	cols := []string{"benchmark"}
	for _, s := range schemes {
		cols = append(cols, s.Name)
	}
	t := report.NewTable("Figure 13: performance impact of individual optimizations", cols...)
	sums := make([]float64, len(schemes))
	for _, wl := range r.workloads {
		row := []interface{}{wl}
		for i, s := range schemes {
			n := r.normalizedIPC(wl, s)
			sums[i] += n
			row = append(row, n)
		}
		t.AddRow(row...)
	}
	avg := []interface{}{"average"}
	for i := range schemes {
		avg = append(avg, sums[i]/float64(len(r.workloads)))
	}
	t.AddRow(avg...)
	return t
}

// Fig14 reproduces the bandwidth-overhead comparison.
func (r *Runner) Fig14() *report.Table {
	schemes := []scheme.Scheme{scheme.Naive, scheme.PSSM, scheme.SHMReadOnly, scheme.SHM}
	cols := []string{"benchmark"}
	for _, s := range schemes {
		cols = append(cols, s.Name)
	}
	t := report.NewTable("Figure 14: security-metadata bandwidth overhead (vs regular data)", cols...)
	sums := make([]float64, len(schemes))
	for _, wl := range r.workloads {
		row := []interface{}{wl}
		for i, s := range schemes {
			ov := r.Run(wl, s).BandwidthOverhead()
			sums[i] += ov
			row = append(row, report.Percent(ov))
		}
		t.AddRow(row...)
	}
	avg := []interface{}{"average"}
	for i := range schemes {
		avg = append(avg, report.Percent(sums[i]/float64(len(r.workloads))))
	}
	t.AddRow(avg...)
	return t
}

// activityOf converts a run into the energy model's input.
func activityOf(res gpu.Result) energy.Activity {
	return energy.Activity{
		Instructions: res.Instructions,
		Cycles:       res.Cycles,
		DRAMBytes:    res.Traffic.TotalBytes(),
		L2Accesses:   res.L2.Accesses(),
		L1Accesses:   res.L1.Accesses(),
		MDCAccesses:  res.Ctr.Accesses() + res.MAC.Accesses() + res.BMT.Accesses(),
	}
}

// Fig15 reproduces the normalized energy-per-instruction comparison.
func (r *Runner) Fig15() *report.Table {
	schemes := []scheme.Scheme{scheme.Naive, scheme.CommonCtr, scheme.PSSM, scheme.SHM}
	cols := []string{"benchmark"}
	for _, s := range schemes {
		cols = append(cols, s.Name)
	}
	t := report.NewTable("Figure 15: normalized energy per instruction", cols...)
	model := energy.Default()
	sums := make([]float64, len(schemes))
	for _, wl := range r.workloads {
		base := activityOf(r.Run(wl, scheme.Baseline))
		row := []interface{}{wl}
		for i, s := range schemes {
			n := model.Normalized(activityOf(r.Run(wl, s)), base)
			sums[i] += n
			row = append(row, n)
		}
		t.AddRow(row...)
	}
	avg := []interface{}{"average"}
	for i := range schemes {
		avg = append(avg, sums[i]/float64(len(r.workloads)))
	}
	t.AddRow(avg...)
	return t
}

// Fig16 reproduces the L2-victim-cache study.
func (r *Runner) Fig16() *report.Table {
	t := report.NewTable("Figure 16: normalized IPC with L2 as metadata victim cache",
		"benchmark", "SHM", "SHM_vL2", "gain", "victim hits")
	var sums [2]float64
	for _, wl := range r.workloads {
		shm := r.normalizedIPC(wl, scheme.SHM)
		vl2 := r.normalizedIPC(wl, scheme.SHMvL2)
		sums[0] += shm
		sums[1] += vl2
		res := r.Run(wl, scheme.SHMvL2)
		t.AddRow(wl, shm, vl2, report.Percent(vl2-shm), res.VictimHits)
	}
	n := float64(len(r.workloads))
	t.AddRow("average", sums[0]/n, sums[1]/n, report.Percent((sums[1]-sums[0])/n), "")
	return t
}

// oversubRatios are the sweep points of the oversubscription study, in
// decreasing device-frame capacity (fraction of the workload footprint
// resident on-device; below 1.0 the host tier demand-migrates the rest).
var oversubRatios = []float64{0.75, 0.5, 0.25}

// oversubWorkloads picks the sweep's benchmark subset: a fixed mix of
// streaming-dominated and irregular workloads, restricted to the runner's
// workload list so -workloads still narrows the sweep. The full 15-workload
// cross product would triple the sweep for no additional shape — the subset
// covers the two degradation regimes (the streaming cliff, where LRU
// refaults every streamed page each pass, and the graceful curve of
// reuse-heavy access).
func oversubWorkloads(all []string) []string {
	preferred := map[string]bool{"atax": true, "bfs": true, "mvt": true, "streamcluster": true}
	var out []string
	for _, wl := range all {
		if preferred[wl] {
			out = append(out, wl)
		}
	}
	if len(out) == 0 {
		out = all
	}
	return out
}

// oversubPrefetchVariants are the migration-ahead policies the sweep runs
// on top of the SHM design, each as its own table row. Demand-only SHM
// stays in the scheme rows; these isolate what the prefetcher buys at the
// same ratio.
var oversubPrefetchVariants = []struct {
	name   string // row label in the table
	policy string // gpu.Config.UVMPrefetch value
}{
	{"SHM+stride", "stride"},
	{"SHM+stream", "stream"},
}

// FigOversub reproduces the heterogeneous-memory extension study: IPC under
// the host-backed tier at decreasing resident ratios, for the baseline and
// every Fig. 12 design, normalized to the insecure tier-off run of the same
// workload. The "resident" column (tier off, everything device-resident) is
// each row's departure point; the ratio columns add demand paging over the
// modeled PCIe link. Cells that saturate the cycle budget while thrashing
// still report throughput (instructions over the budget), which is exactly
// the degradation the sweep is after.
//
// Each ratio contributes two columns: normalized IPC (r=…) and the demand
// fault count (f=…), so the migration-ahead rows (SHM+stride, SHM+stream —
// the SHM design with the tier's prefetcher enabled) show both effects at
// once: fewer faults and the IPC they buy back. Their "resident" cell
// reuses the SHM tier-off run — at ratio >= 1 every prefetch policy is
// provably idle, so the runs are byte-identical.
//
// Ratio cells run on per-ratio sub-runners (the cache key is only
// workload/scheme, so each ratio and each prefetch policy needs its own
// cache); the tier-off cells come from the parent runner and are shared
// with the other figures. The sub-runners are deliberately unobserved —
// their cell names would collide with the parent's in the ops plane and
// the per-run telemetry dumps.
func (r *Runner) FigOversub() *report.Table {
	schemes := append([]scheme.Scheme{scheme.Baseline}, fig12Schemes()...)
	wls := oversubWorkloads(r.workloads)

	subs := make([]*Runner, len(oversubRatios))
	for i, ratio := range oversubRatios {
		cfg := r.cfg
		cfg.HostTier = true
		cfg.OversubRatio = ratio
		subs[i] = NewRunner(cfg, wls)
	}
	// psubs[variant][ratio]: the SHM-only migration-ahead sweeps.
	psubs := make([][]*Runner, len(oversubPrefetchVariants))
	for pi, pv := range oversubPrefetchVariants {
		psubs[pi] = make([]*Runner, len(oversubRatios))
		for i, ratio := range oversubRatios {
			cfg := r.cfg
			cfg.HostTier = true
			cfg.OversubRatio = ratio
			cfg.UVMPrefetch = pv.policy
			psubs[pi][i] = NewRunner(cfg, wls)
		}
	}

	// One pool over every cell the table needs — the parent's tier-off
	// cells (restricted to the sweep subset; shared with the other figures
	// through the parent cache), all three ratio sweeps, and the prefetch
	// variants (SHM only).
	var tasks []func(worker int)
	for _, wl := range wls {
		for _, sch := range schemes {
			wl, sch := wl, sch
			tasks = append(tasks, func(worker int) { r.runOn(worker, wl, sch, false) })
			for _, sub := range subs {
				sub := sub
				tasks = append(tasks, func(worker int) { sub.runOn(worker, wl, sch, false) })
			}
		}
		for pi := range oversubPrefetchVariants {
			for _, sub := range psubs[pi] {
				wl, sub := wl, sub
				tasks = append(tasks, func(worker int) { sub.runOn(worker, wl, scheme.SHM, false) })
			}
		}
	}
	workers := r.workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	p := pool.New(workers)
	p.RunTagged(tasks)
	p.Close()

	cols := []string{"benchmark", "scheme", "resident"}
	for _, ratio := range oversubRatios {
		cols = append(cols, fmt.Sprintf("r=%.2f", ratio), fmt.Sprintf("f=%.2f", ratio))
	}
	t := report.NewTable("Oversubscription sweep: normalized IPC and demand faults with the host-backed tier", cols...)

	nRows := len(schemes) + len(oversubPrefetchVariants)
	sums := make([][]float64, nRows)   // [row][1+ratio] normalized IPC
	fsums := make([]([]uint64), nRows) // [row][ratio] faults
	for i := range sums {
		sums[i] = make([]float64, 1+len(oversubRatios))
		fsums[i] = make([]uint64, len(oversubRatios))
	}
	rowNames := make([]string, nRows)
	for _, wl := range wls {
		base := r.Run(wl, scheme.Baseline)
		norm := func(res gpu.Result) float64 {
			if base.IPC() == 0 {
				return 0
			}
			return res.IPC() / base.IPC()
		}
		addRow := func(idx int, name string, resident float64, cell func(ri int) gpu.Result) {
			rowNames[idx] = name
			sums[idx][0] += resident
			row := []interface{}{wl, name, resident}
			for ri := range oversubRatios {
				res := cell(ri)
				n := norm(res)
				faults := res.Reg.Get("uvm_faults")
				sums[idx][1+ri] += n
				fsums[idx][ri] += faults
				row = append(row, n, faults)
			}
			t.AddRow(row...)
		}
		for si, sch := range schemes {
			sch := sch
			addRow(si, sch.Name, norm(r.Run(wl, sch)), func(ri int) gpu.Result { return subs[ri].Run(wl, sch) })
			if sch == scheme.SHM {
				for pi, pv := range oversubPrefetchVariants {
					pi := pi
					addRow(len(schemes)+pi, pv.name, norm(r.Run(wl, scheme.SHM)),
						func(ri int) gpu.Result { return psubs[pi][ri].Run(wl, scheme.SHM) })
				}
			}
		}
	}
	for idx, name := range rowNames {
		avg := []interface{}{"average", name, sums[idx][0] / float64(len(wls))}
		for ri := range oversubRatios {
			avg = append(avg, sums[idx][1+ri]/float64(len(wls)), fsums[idx][ri]/uint64(len(wls)))
		}
		t.AddRow(avg...)
	}
	return t
}

// TableVII checks the measured baseline bandwidth utilization against the
// paper's per-benchmark bands.
func (r *Runner) TableVII() *report.Table {
	t := report.NewTable("Table VII: baseline DRAM bandwidth utilization",
		"benchmark", "measured", "paper band")
	bands := map[string]string{
		"atax": "23%", "backprop": "27-50%", "bfs": "15-50%", "b+tree": "12-15%",
		"cfd": "27-75%", "fdtd2d": "90-93%", "kmeans": "67-81%", "mvt": "22%",
		"histo": "55%", "lbm": "95%", "mri-gridding": "30-47%", "sad": "17%",
		"stencil": "11-42%", "srad": "20-22%", "srad_v2": "72-78%", "streamcluster": "78%",
	}
	for _, wl := range r.workloads {
		res := r.Run(wl, scheme.Baseline)
		t.AddRow(wl, report.Percent(res.BusUtilization), bands[wl])
	}
	return t
}

// TableIX reports the detector hardware overhead.
func TableIX() *report.Table {
	h := detectors.PaperHardwareOverhead()
	t := report.NewTable("Table IX: hardware overhead", "component", "value")
	t.AddRow("read-only predictor entries", h.ReadOnlyBitsPerPartition)
	t.AddRow("streaming predictor entries", h.StreamingBitsPerPartition)
	t.AddRow("bits per access tracker", h.TrackerBits)
	t.AddRow("trackers per partition", h.Trackers)
	t.AddRow("partitions", h.Partitions)
	t.AddRow("total bytes", h.TotalBytes())
	t.AddRow("total (paper: 5460 B / 5.33 KB)", fmt.Sprintf("%.2f KB", float64(h.TotalBytes())/1024))
	return t
}

// Summary returns the headline numbers of the reproduction: average
// performance overheads per design (the paper's abstract numbers).
func (r *Runner) Summary() *report.Table {
	t := report.NewTable("Headline averages (memory-intensive workloads)",
		"design", "avg normalized IPC", "avg overhead", "paper overhead")
	paper := map[string]string{
		scheme.Naive.Name:         "53.9%",
		scheme.CommonCtr.Name:     "49.4%",
		scheme.PSSM.Name:          "18.6%",
		scheme.SHM.Name:           "8.09%",
		scheme.SHMUpperBound.Name: "6.76%",
	}
	for _, s := range fig12Schemes() {
		var sum float64
		for _, wl := range r.workloads {
			sum += r.normalizedIPC(wl, s)
		}
		avg := sum / float64(len(r.workloads))
		t.AddRow(s.Name, avg, report.Percent(1-avg), paper[s.Name])
	}
	return t
}
