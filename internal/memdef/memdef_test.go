package memdef

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if BlockSize%SectorSize != 0 {
		t.Fatalf("BlockSize %d not a multiple of SectorSize %d", BlockSize, SectorSize)
	}
	if SectorsPerBlock != 4 {
		t.Errorf("SectorsPerBlock = %d, want 4", SectorsPerBlock)
	}
	if BlocksPerChunk != 32 {
		t.Errorf("BlocksPerChunk = %d, want 32", BlocksPerChunk)
	}
	if BlocksPerRegion != 128 {
		t.Errorf("BlocksPerRegion = %d, want 128", BlocksPerRegion)
	}
	if ChunkSize*2048 != 8<<20 {
		t.Errorf("streaming predictor coverage per index wrap is %d, want 8 MiB", ChunkSize*2048)
	}
}

func TestAlignmentHelpers(t *testing.T) {
	a := Addr(0x12345)
	if BlockAddr(a)%BlockSize != 0 {
		t.Errorf("BlockAddr not aligned: %#x", uint64(BlockAddr(a)))
	}
	if SectorAddr(a)%SectorSize != 0 {
		t.Errorf("SectorAddr not aligned: %#x", uint64(SectorAddr(a)))
	}
	if ChunkAddr(a)%ChunkSize != 0 {
		t.Errorf("ChunkAddr not aligned: %#x", uint64(ChunkAddr(a)))
	}
	if RegionAddr(a)%RegionSize != 0 {
		t.Errorf("RegionAddr not aligned: %#x", uint64(RegionAddr(a)))
	}
	if got := SectorInBlock(Addr(BlockSize + 3*SectorSize + 5)); got != 3 {
		t.Errorf("SectorInBlock = %d, want 3", got)
	}
	if got := BlockInChunk(Addr(ChunkSize + 7*BlockSize)); got != 7 {
		t.Errorf("BlockInChunk = %d, want 7", got)
	}
}

func TestSpaceReadOnlyByNature(t *testing.T) {
	cases := []struct {
		s  Space
		ro bool
	}{
		{SpaceGlobal, false},
		{SpaceLocal, false},
		{SpaceConstant, true},
		{SpaceTexture, true},
		{SpaceInstruction, true},
	}
	for _, c := range cases {
		if got := c.s.ReadOnlyByNature(); got != c.ro {
			t.Errorf("%v.ReadOnlyByNature() = %v, want %v", c.s, got, c.ro)
		}
	}
}

func TestSpaceString(t *testing.T) {
	if SpaceConstant.String() != "constant" {
		t.Errorf("got %q", SpaceConstant.String())
	}
	if Space(200).String() == "" {
		t.Error("unknown space should still render")
	}
}

func TestPartitionMapRoundTrip(t *testing.T) {
	m := NewPartitionMap(12)
	f := func(raw uint64) bool {
		phys := Addr(raw % (4 << 30)) // 4 GB device memory
		p, local := m.ToLocal(phys)
		if p < 0 || p >= 12 {
			return false
		}
		return m.ToPhysical(p, local) == phys
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionMapPreservesStrideOffset(t *testing.T) {
	m := NewPartitionMap(12)
	for _, phys := range []Addr{0, 1, 255, 256, 4095, 1 << 20} {
		_, local := m.ToLocal(phys)
		if uint64(local)%PartitionStride != uint64(phys)%PartitionStride {
			t.Errorf("offset not preserved for %#x: local=%#x", uint64(phys), uint64(local))
		}
	}
}

func TestPartitionMapBalance(t *testing.T) {
	m := NewPartitionMap(12)
	counts := make([]int, 12)
	// Sequential streaming over 12 MB must spread near-uniformly.
	for a := Addr(0); a < 12<<20; a += PartitionStride {
		p, _ := m.ToLocal(a)
		counts[p]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	want := total / 12
	for p, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("partition %d has %d accesses, want ~%d", p, c, want)
		}
	}
}

func TestPartitionMapPowerOfTwoStride(t *testing.T) {
	// A 4 KB stride (power of two) must not camp on a single partition
	// thanks to the XOR fold.
	m := NewPartitionMap(12)
	counts := make([]int, 12)
	for i := 0; i < 12000; i++ {
		p, _ := m.ToLocal(Addr(i * 4096))
		counts[p]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Errorf("partition %d never hit under 4 KB stride", p)
		}
		if c > 12000/2 {
			t.Errorf("partition %d absorbed %d of 12000 accesses", p, c)
		}
	}
}

func TestPartitionMapLocalDensity(t *testing.T) {
	// Every partition-local block address must be reachable: walk physical
	// space and record local rows per partition; they must be contiguous.
	m := NewPartitionMap(4)
	seen := make(map[int]map[uint64]bool)
	for p := 0; p < 4; p++ {
		seen[p] = make(map[uint64]bool)
	}
	const rows = 64
	for a := Addr(0); a < rows*4*PartitionStride; a += PartitionStride {
		p, local := m.ToLocal(a)
		seen[p][uint64(local)/PartitionStride] = true
	}
	for p := 0; p < 4; p++ {
		for r := uint64(0); r < rows; r++ {
			if !seen[p][r] {
				t.Fatalf("partition %d local row %d unreachable", p, r)
			}
		}
	}
}

func TestNewPartitionMapPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero partitions")
		}
	}()
	NewPartitionMap(0)
}

func TestRequestString(t *testing.T) {
	r := Request{Phys: 0x1000, Local: 0x100, Partition: 3, Kind: Write, Space: SpaceGlobal, SM: 7}
	s := r.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestAccessKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Errorf("kind strings wrong: %q %q", Read.String(), Write.String())
	}
}

func TestLocalCapacity(t *testing.T) {
	m := NewPartitionMap(12)
	if got := m.LocalCapacity(12 << 20); got != 1<<20 {
		t.Errorf("LocalCapacity = %d, want %d", got, 1<<20)
	}
}

func TestPartitionMapRandomizedInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 7, 12, 16} {
		m := NewPartitionMap(n)
		for i := 0; i < 2000; i++ {
			phys := Addr(rng.Uint64() % (4 << 30))
			p, local := m.ToLocal(phys)
			if back := m.ToPhysical(p, local); back != phys {
				t.Fatalf("n=%d phys=%#x -> (%d,%#x) -> %#x", n, uint64(phys), p, uint64(local), uint64(back))
			}
		}
	}
}

func TestLocalRangeCoversPhysicalRange(t *testing.T) {
	m := NewPartitionMap(12)
	cases := [][2]Addr{
		{0, 1 << 20},
		{4096, 3 * 4096},
		{1 << 20, 1<<20 + 16384},
		{123456, 987654},
	}
	for _, c := range cases {
		lo, hi := m.LocalRange(c[0], c[1])
		// Every physical address in the range must map to a local address
		// inside [lo, hi) in its partition.
		for a := c[0]; a < c[1]; a += PartitionStride {
			_, local := m.ToLocal(a)
			if local < lo || local >= hi {
				t.Fatalf("phys %#x local %#x outside [%#x,%#x)", uint64(a), uint64(local), uint64(lo), uint64(hi))
			}
		}
	}
	if lo, hi := m.LocalRange(100, 100); lo != 0 || hi != 0 {
		t.Error("empty range should return zeros")
	}
}

func TestLocalRangeTightness(t *testing.T) {
	// The local band must not be grossly larger than physSize/partitions.
	m := NewPartitionMap(12)
	lo, hi := m.LocalRange(0, 12<<20)
	span := uint64(hi - lo)
	want := uint64(12<<20) / 12
	if span > want+2*PartitionStride {
		t.Errorf("local span %d exceeds %d", span, want)
	}
}
