// Package memdef defines the address types, memory-geometry constants, and
// the physical-to-partition address mapping shared by every layer of the
// simulator and the functional secure-memory library.
//
// The geometry follows the paper's baseline GPU (Table V) and metadata
// organization (Table VI): 128 B cache blocks divided into 32 B sectors,
// 4 KB streaming-detection chunks, 16 KB read-only-detection regions, and
// 12 GDDR memory partitions addressed through partition-local offsets
// ("local addresses") in the style of PSSM.
package memdef

import "fmt"

// Addr is a byte address. Physical addresses and partition-local addresses
// share this type; functions are explicit about which one they take.
type Addr uint64

// Geometry constants used throughout the system.
const (
	// BlockSize is the cache-line / memory-block size in bytes. MACs and
	// encryption counters are maintained at this granularity.
	BlockSize = 128
	// SectorSize is the sector size for sectored caches and the DRAM
	// access granularity.
	SectorSize = 32
	// SectorsPerBlock is the number of sectors in one cache block.
	SectorsPerBlock = BlockSize / SectorSize
	// ChunkSize is the granularity of streaming-access detection and of
	// the coarse-grain (per-chunk) MAC: 4 KB.
	ChunkSize = 4096
	// BlocksPerChunk is the number of 128 B blocks per 4 KB chunk.
	BlocksPerChunk = ChunkSize / BlockSize
	// RegionSize is the granularity of read-only detection: 16 KB.
	RegionSize = 16384
	// BlocksPerRegion is the number of 128 B blocks per 16 KB region.
	BlocksPerRegion = RegionSize / BlockSize
	// PartitionStride is the address-interleaving granularity across
	// memory partitions (256 B, i.e. two blocks, as in GPGPU-Sim's
	// default GDDR mapping).
	PartitionStride = 256
)

// Space identifies the GPU memory space an access targets (paper Table I).
type Space uint8

const (
	// SpaceGlobal is off-chip global memory (C+I+F).
	SpaceGlobal Space = iota
	// SpaceLocal is off-chip local memory (C+I+F).
	SpaceLocal
	// SpaceConstant is off-chip constant memory (C+I; read-only during
	// kernel execution).
	SpaceConstant
	// SpaceTexture is off-chip texture memory (C+I, optionally +F).
	SpaceTexture
	// SpaceInstruction is the application code region (C+I; read-only).
	SpaceInstruction
	numSpaces
)

// NumSpaces is the number of distinct memory spaces.
const NumSpaces = int(numSpaces)

var spaceNames = [...]string{
	SpaceGlobal:      "global",
	SpaceLocal:       "local",
	SpaceConstant:    "constant",
	SpaceTexture:     "texture",
	SpaceInstruction: "instruction",
}

// String returns the space name used in reports.
func (s Space) String() string {
	if int(s) < len(spaceNames) {
		return spaceNames[s]
	}
	return fmt.Sprintf("space(%d)", uint8(s))
}

// ReadOnlyByNature reports whether the space is read-only during kernel
// execution by construction of the programming model (paper Table I):
// constant memory, texture memory and instruction memory. Such spaces need
// confidentiality and integrity but not freshness.
func (s Space) ReadOnlyByNature() bool {
	switch s {
	case SpaceConstant, SpaceTexture, SpaceInstruction:
		return true
	}
	return false
}

// BlockAddr returns the address of the 128 B block containing a.
func BlockAddr(a Addr) Addr { return a &^ (BlockSize - 1) }

// SectorAddr returns the address of the 32 B sector containing a.
func SectorAddr(a Addr) Addr { return a &^ (SectorSize - 1) }

// ChunkAddr returns the address of the 4 KB chunk containing a.
func ChunkAddr(a Addr) Addr { return a &^ (ChunkSize - 1) }

// RegionAddr returns the address of the 16 KB region containing a.
func RegionAddr(a Addr) Addr { return a &^ (RegionSize - 1) }

// BlockID returns the block index of address a.
func BlockID(a Addr) uint64 { return uint64(a) / BlockSize }

// ChunkID returns the chunk index of address a.
func ChunkID(a Addr) uint64 { return uint64(a) / ChunkSize }

// RegionID returns the region index of address a.
func RegionID(a Addr) uint64 { return uint64(a) / RegionSize }

// SectorInBlock returns the sector index (0..3) of address a within its block.
func SectorInBlock(a Addr) int { return int(a%BlockSize) / SectorSize }

// BlockInChunk returns the block index (0..31) of address a within its chunk.
func BlockInChunk(a Addr) int { return int(a%ChunkSize) / BlockSize }

// AccessKind distinguishes reads from writes at the memory-system level.
type AccessKind uint8

const (
	// Read is an L2 miss fill from DRAM.
	Read AccessKind = iota
	// Write is a dirty L2 write-back to DRAM.
	Write
)

// String returns "read" or "write".
func (k AccessKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// PartitionMap maps physical addresses to (partition, local address) pairs
// and back. The mapping interleaves PartitionStride-sized slices of the
// physical address space across partitions, XOR-folding higher address bits
// into the partition index to spread pathological strides, as real GDDR
// address mappings do. The mapping is exactly invertible, which the
// metadata layout relies on.
type PartitionMap struct {
	numPartitions int
}

// NewPartitionMap returns a mapping across n partitions. n must be > 0.
func NewPartitionMap(n int) *PartitionMap {
	if n <= 0 {
		panic("memdef: partition count must be positive")
	}
	return &PartitionMap{numPartitions: n}
}

// NumPartitions returns the number of partitions.
func (m *PartitionMap) NumPartitions() int { return m.numPartitions }

// ToLocal maps a physical address to its partition index and partition-local
// address. The local address preserves the offset within the 256 B stride,
// so block/sector/chunk geometry is preserved under the mapping as long as
// PartitionStride is a multiple of ChunkSize... it is not, so note:
// chunk and region IDs used by the detectors are computed from LOCAL
// addresses, exactly as the paper specifies ("using local addresses").
func (m *PartitionMap) ToLocal(phys Addr) (partition int, local Addr) {
	stride := uint64(phys) / PartitionStride
	offset := uint64(phys) % PartitionStride
	n := uint64(m.numPartitions)
	row := stride / n
	// Mix the row bits into the partition selector so power-of-two strides
	// do not camp on a subset of partitions. The mix depends only on the
	// row, which the local address preserves, keeping the map invertible.
	part := (stride + mixRow(row)) % n
	return int(part), Addr(row*PartitionStride + offset)
}

// mixRow is a splitmix64-style finalizer over the local row index.
func mixRow(row uint64) uint64 {
	z := row + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ToPhysical inverts ToLocal.
func (m *PartitionMap) ToPhysical(partition int, local Addr) Addr {
	n := uint64(m.numPartitions)
	row := uint64(local) / PartitionStride
	offset := uint64(local) % PartitionStride
	// Recover stride = row*n + r with (r + mixRow(row)) % n == partition.
	r := (uint64(partition) + n - mixRow(row)%n) % n
	stride := row*n + r
	return Addr(stride*PartitionStride + offset)
}

// LocalCapacity returns the size of the local address space of one partition
// for a device memory of total bytes.
func (m *PartitionMap) LocalCapacity(total uint64) uint64 {
	return total / uint64(m.numPartitions)
}

// LocalRange returns the partition-local address range that the physical
// range [lo, hi) occupies in EVERY partition. Because the mapping
// interleaves fixed-size strides round-robin (with a permuted partition
// choice per row), a contiguous physical range covers the same contiguous
// band of local rows in each partition; the returned range is that band,
// conservatively rounded outward to stride boundaries. Used to mark
// read-only input buffers in each partition's predictor and to scope
// InputReadOnlyReset scans.
func (m *PartitionMap) LocalRange(lo, hi Addr) (localLo, localHi Addr) {
	if hi <= lo {
		return 0, 0
	}
	n := uint64(m.numPartitions)
	rowLo := uint64(lo) / PartitionStride / n
	rowHi := (uint64(hi)-1)/PartitionStride/n + 1
	return Addr(rowLo * PartitionStride), Addr(rowHi * PartitionStride)
}

// Request is one off-chip memory access as seen by a memory partition:
// an L2 sector miss (Read) or a dirty sector write-back (Write).
type Request struct {
	// Phys is the physical sector address (SectorSize-aligned).
	Phys Addr
	// Local is the partition-local sector address.
	Local Addr
	// Partition is the memory partition index.
	Partition int
	// Kind is Read or Write.
	Kind AccessKind
	// Space is the GPU memory space of the data.
	Space Space
	// SM is the issuing streaming multiprocessor (for response routing);
	// negative for internally generated traffic.
	SM int
	// Warp is the issuing warp within the SM.
	Warp int
	// ID is a unique request identifier assigned by the issuer.
	ID uint64
}

// String renders a compact description for logs and test failures.
func (r Request) String() string {
	return fmt.Sprintf("%s %s p%d local=0x%x phys=0x%x sm=%d", r.Kind, r.Space, r.Partition, uint64(r.Local), uint64(r.Phys), r.SM)
}
