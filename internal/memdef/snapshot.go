package memdef

import "shmgpu/internal/snapshot"

// Checkpoint/restore for requests, shared by every component that queues
// them (crossbar rings, L2 waiter lists, MEE pipelines). Cold path only.

// SaveState writes the request.
func (r *Request) SaveState(e *snapshot.Encoder) {
	e.U64(uint64(r.Phys))
	e.U64(uint64(r.Local))
	e.Int(r.Partition)
	e.U8(uint8(r.Kind))
	e.U8(uint8(r.Space))
	e.Int(r.SM)
	e.Int(r.Warp)
	e.U64(r.ID)
}

// LoadState restores a request written by SaveState.
func (r *Request) LoadState(d *snapshot.Decoder) {
	r.Phys = Addr(d.U64())
	r.Local = Addr(d.U64())
	r.Partition = d.Int()
	r.Kind = AccessKind(d.U8())
	r.Space = Space(d.U8())
	r.SM = d.Int()
	r.Warp = d.Int()
	r.ID = d.U64()
}
