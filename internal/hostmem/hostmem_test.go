package hostmem

import (
	"testing"

	"shmgpu/internal/snapshot"
)

// tier builds a 4-page working set with a 2-frame budget and fast,
// deterministic timing: transfer 4 cycles (64 B page / 16 B-per-cycle),
// latency 10, metadata 6 — one fault is ready 20 cycles after an idle
// link accepts it.
func tier(t *testing.T, cfg Config) *Tier {
	t.Helper()
	if cfg.PageBytes == 0 {
		cfg.PageBytes = 64
	}
	if cfg.Frames == 0 {
		cfg.Frames = 2
	}
	if cfg.PCIeLatency == 0 {
		cfg.PCIeLatency = 10
	}
	if cfg.PCIeBytesPerCycle == 0 {
		cfg.PCIeBytesPerCycle = 16
	}
	if cfg.MetaCycles == 0 {
		cfg.MetaCycles = 6
	}
	if cfg.ThrashWindow == 0 {
		cfg.ThrashWindow = 100
	}
	tr, err := New(cfg, 4*cfg.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// settle ticks until the migration ring drains.
func settle(t *testing.T, tr *Tier, now uint64) uint64 {
	t.Helper()
	for i := 0; tr.InflightMigrations() > 0; i++ {
		if i > 1_000_000 {
			t.Fatal("migration ring never drained")
		}
		now++
		tr.Tick(now)
	}
	return now
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{PageBytes: 48}).Validate(); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	if err := (Config{Frames: -1}).Validate(); err == nil {
		t.Error("negative frame budget accepted")
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := ParseIntegrity("none"); err == nil {
		t.Error("unknown integrity mode accepted")
	}
	for s, want := range map[string]Policy{"": PolicyLRU, "lru": PolicyLRU, "fifo": PolicyFIFO} {
		if p, err := ParsePolicy(s); err != nil || p != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", s, p, err, want)
		}
	}
	for s, want := range map[string]Integrity{"": IntegrityRebuild, "rebuild": IntegrityRebuild, "hostside": IntegrityHostSide} {
		if m, err := ParseIntegrity(s); err != nil || m != want {
			t.Errorf("ParseIntegrity(%q) = %v, %v; want %v", s, m, err, want)
		}
	}
}

// TestExactlyFullBoundary: a frame budget exactly covering the working
// set prepopulates everything; no access ever faults and the tier stays
// stat-silent (the migration-equivalence property at ratio 1.0).
func TestExactlyFullBoundary(t *testing.T) {
	tr := tier(t, Config{Frames: 4})
	if tr.Resident() != 4 {
		t.Fatalf("Resident = %d, want 4 (prepopulated)", tr.Resident())
	}
	for cycle := uint64(0); cycle < 50; cycle++ {
		tr.Tick(cycle)
		addr := (cycle % 4) * 64
		if got := tr.Access(addr, cycle%2 == 0, cycle); got != Admit {
			t.Fatalf("Access(%d) at cycle %d = %v, want Admit", addr, cycle, got)
		}
	}
	if tr.Stats() != (Stats{}) {
		t.Errorf("stats = %+v, want all-zero at ratio 1.0", tr.Stats())
	}
	if ne := tr.NextEvent(0); ne != ^uint64(0) {
		t.Errorf("NextEvent = %d, want idle sentinel", ne)
	}
}

// TestFaultOnFirstTouch pins the fault protocol on one overflow page:
// warm pages admit immediately, the first touch of a non-resident page
// faults, retries stall while the migration is in flight, and the access
// admits on exactly the cycle after NextEvent says the page is ready.
func TestFaultOnFirstTouch(t *testing.T) {
	tr := tier(t, Config{Frames: 3})
	// Pages 0-2 are the warm initial placement.
	for p := uint64(0); p < 3; p++ {
		if got := tr.Access(p*64, false, 0); got != Admit {
			t.Fatalf("warm page %d: %v, want Admit", p, got)
		}
	}
	// Page 3 overflows: frames are full, so the fault evicts LRU page 0
	// (oldest placement stamp) and starts the migration.
	if got := tr.Access(3*64, false, 5); got != Fault {
		t.Fatalf("first touch of page 3 = %v, want Fault", got)
	}
	st := tr.Stats()
	if st.Faults != 1 || st.Evictions != 1 || st.WritebacksClean != 1 || st.WritebacksDirty != 0 {
		t.Fatalf("stats after fault = %+v; want 1 fault, 1 clean eviction", st)
	}
	if tr.IsResident(3) {
		t.Fatal("page 3 resident before migration completed")
	}
	// ready = start(5) + transfer(4) + latency(10) + meta(6) = 25.
	if ne := tr.NextEvent(6); ne != 25 {
		t.Fatalf("NextEvent = %d, want 25", ne)
	}
	// Retries while migrating stall and count replays.
	for now := uint64(6); now < 25; now++ {
		tr.Tick(now)
		if got := tr.Access(3*64, false, now); got != Stall {
			t.Fatalf("retry at %d = %v, want Stall", now, got)
		}
	}
	if tr.Stats().Replays != 19 {
		t.Fatalf("Replays = %d, want 19", tr.Stats().Replays)
	}
	tr.Tick(25)
	if got := tr.Access(3*64, false, 25); got != Admit {
		t.Fatalf("post-migration access = %v, want Admit", got)
	}
	st = tr.Stats()
	if st.MigrationsIn != 1 || st.BytesIn != 64 || st.MetaCycles != 6 {
		t.Errorf("completion stats = %+v", st)
	}
}

// TestEvictionThenRefault (thrash): with a 2-frame budget and a 3-page
// loop, pages cycle through eviction and refault; evictions within the
// thrash window are counted, and the same page faults repeatedly.
func TestEvictionThenRefault(t *testing.T) {
	tr := tier(t, Config{Frames: 2})
	now := uint64(0)
	touch := func(page uint64) {
		t.Helper()
		for {
			now++
			tr.Tick(now)
			if tr.Access(page*64, false, now) == Admit {
				return
			}
		}
	}
	// 0 and 1 are warm; looping 0→1→2 with LRU evicts the page needed
	// two steps later, every step, once the set exceeds the budget.
	for i := 0; i < 9; i++ {
		touch(uint64(i % 3))
	}
	st := tr.Stats()
	if st.Faults < 3 {
		t.Errorf("Faults = %d; a 3-page loop over 2 frames must refault", st.Faults)
	}
	if st.Faults != st.MigrationsIn {
		t.Errorf("Faults = %d, MigrationsIn = %d; loop settles every migration", st.Faults, st.MigrationsIn)
	}
	if st.Thrash == 0 {
		t.Errorf("Thrash = 0; refaults land well inside the %d-cycle window", tr.cfg.ThrashWindow)
	}
	if st.Evictions != st.Faults {
		t.Errorf("Evictions = %d, Faults = %d; every fault over a full budget evicts", st.Evictions, st.Faults)
	}
}

// TestDirtyVersusCleanWriteback: evicting a written page charges a
// writeback transfer on the link; evicting a clean page is free.
func TestDirtyVersusCleanWriteback(t *testing.T) {
	tr := tier(t, Config{Frames: 2})
	var evicted []struct {
		page  int
		dirty bool
	}
	tr.OnEvict = func(page int, dirty, thrash bool) {
		evicted = append(evicted, struct {
			page  int
			dirty bool
		}{page, dirty})
	}
	// Dirty page 0, keep page 1 clean; then fault pages 2 and 3 so both
	// warm pages evict in LRU order (0 first — its write stamp is older
	// than page 1's read stamp).
	if tr.Access(0, true, 1) != Admit {
		t.Fatal("write to warm page 0 rejected")
	}
	if tr.Access(64, false, 2) != Admit {
		t.Fatal("read of warm page 1 rejected")
	}
	if tr.Access(2*64, false, 3) != Fault {
		t.Fatal("page 2 did not fault")
	}
	if tr.Access(3*64, false, 4) != Fault {
		t.Fatal("page 3 did not fault")
	}
	st := tr.Stats()
	if st.WritebacksDirty != 1 || st.WritebacksClean != 1 {
		t.Fatalf("writebacks = %+v; want one dirty (page 0), one clean (page 1)", st)
	}
	if st.BytesOut != 64 {
		t.Errorf("BytesOut = %d; only the dirty victim transfers back", st.BytesOut)
	}
	if len(evicted) != 2 || evicted[0].page != 0 || !evicted[0].dirty || evicted[1].page != 1 || evicted[1].dirty {
		t.Errorf("eviction order/dirtiness = %+v; want dirty page 0 then clean page 1", evicted)
	}
	// The dirty writeback serializes ahead of the fault transfer:
	// page 2 ready = wb(4) + transfer(4) + latency(10) + meta(6) = cycle 23
	// one transfer later than a clean eviction would allow.
	now := settle(t, tr, 4)
	if st := tr.Stats(); st.MigrationsIn != 2 {
		t.Fatalf("MigrationsIn = %d after settle at %d", st.MigrationsIn, now)
	}
	// Refault page 0: its dirty bit must have been cleared on eviction,
	// so the next eviction of it (never rewritten) is clean.
	if tr.Access(0, false, now) != Fault {
		t.Fatal("evicted page 0 did not refault")
	}
}

// TestMetadataCallbacks pins the teardown/re-establishment hooks in both
// directions: OnEvict fires as coverage is torn down device-side,
// OnFaultIn fires with the fault-to-ready latency as it is rebuilt.
func TestMetadataCallbacks(t *testing.T) {
	tr := tier(t, Config{Frames: 2})
	var faultIns []uint64
	var evicts []int
	tr.OnFaultIn = func(page int, latency uint64) { faultIns = append(faultIns, latency) }
	tr.OnEvict = func(page int, dirty, thrash bool) { evicts = append(evicts, page) }
	if tr.Access(2*64, false, 0) != Fault {
		t.Fatal("page 2 did not fault")
	}
	if len(evicts) != 1 || evicts[0] != 0 {
		t.Fatalf("evicts = %v; teardown must fire for victim page 0 at fault time", evicts)
	}
	if len(faultIns) != 0 {
		t.Fatal("OnFaultIn fired before the migration completed")
	}
	settle(t, tr, 0)
	// latency = transfer(4) + latency(10) + meta(6) = 20.
	if len(faultIns) != 1 || faultIns[0] != 20 {
		t.Fatalf("faultIns = %v; want one completion with latency 20", faultIns)
	}
}

// TestLRUVersusFIFOVictim: after a warm placement {0,1} where page 0 is
// re-touched later, LRU evicts page 1 (stale) but FIFO still evicts
// page 0 (admitted first).
func TestLRUVersusFIFOVictim(t *testing.T) {
	for _, tc := range []struct {
		policy Policy
		victim int
	}{
		{PolicyLRU, 1},
		{PolicyFIFO, 0},
	} {
		tr := tier(t, Config{Frames: 2, Policy: tc.policy})
		var victim int = -1
		tr.OnEvict = func(page int, dirty, thrash bool) { victim = page }
		// Re-touch page 0 so its LRU stamp is newest; FIFO ignores this.
		if tr.Access(0, false, 1) != Admit {
			t.Fatal("warm page 0 rejected")
		}
		if tr.Access(2*64, false, 2) != Fault {
			t.Fatal("page 2 did not fault")
		}
		if victim != tc.victim {
			t.Errorf("%v evicted page %d, want %d", tc.policy, victim, tc.victim)
		}
	}
}

// TestRingFullStalls: with a single-slot migration ring, a second fault
// must stall (not queue) until the first completes; with every frame
// reserved by in-flight migrations and nothing resident to evict, faults
// also stall rather than overcommit.
func TestRingFullStalls(t *testing.T) {
	cfg := Config{Frames: 2, MaxInflight: 1}
	tr := tier(t, cfg)
	if tr.Access(2*64, false, 0) != Fault {
		t.Fatal("page 2 did not fault")
	}
	if got := tr.Access(3*64, false, 1); got != Stall {
		t.Errorf("second fault with full ring = %v, want Stall", got)
	}
	now := settle(t, tr, 1)
	if got := tr.Access(3*64, false, now); got != Fault {
		t.Errorf("fault after ring drained = %v, want Fault", got)
	}

	// All frames reserved in flight: 1-frame tier, one migration running
	// → no resident victim, the competing fault must stall.
	one, err := New(Config{PageBytes: 64, Frames: 1, PCIeLatency: 10, PCIeBytesPerCycle: 16, MetaCycles: 6, ThrashWindow: 100, MaxInflight: 4}, 4*64)
	if err != nil {
		t.Fatal(err)
	}
	// Evict the single warm page by faulting another, then fault a third
	// while the ring holds the only frame's future occupant.
	if one.Access(1*64, false, 0) != Fault {
		t.Fatal("page 1 did not fault")
	}
	if got := one.Access(2*64, false, 1); got != Stall {
		t.Errorf("fault with all frames reserved = %v, want Stall", got)
	}
}

// TestSnapshotRoundTrip serializes a tier mid-migration (non-empty ring,
// busy link, mixed dirty bits) and restores it into a fresh tier: state,
// stats, and subsequent behaviour must match exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	cfg := Config{PageBytes: 64, Frames: 2, PCIeLatency: 10, PCIeBytesPerCycle: 16, MetaCycles: 6, ThrashWindow: 100}
	tr := tier(t, cfg)
	if tr.Access(0, true, 1) != Admit { // dirty warm page
		t.Fatal("write rejected")
	}
	if tr.Access(2*64, false, 3) != Fault { // in-flight migration
		t.Fatal("page 2 did not fault")
	}
	if tr.InflightMigrations() != 1 {
		t.Fatal("expected one in-flight migration at save time")
	}

	var e snapshot.Encoder
	tr.SaveState(&e)

	fresh := tier(t, cfg)
	d := snapshot.NewDecoder(e.Data())
	fresh.LoadState(d)
	if err := d.Err(); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if fresh.Stats() != tr.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", fresh.Stats(), tr.Stats())
	}
	if fresh.InflightMigrations() != 1 || fresh.Resident() != tr.Resident() {
		t.Fatal("ring/residency not restored")
	}
	// Both tiers must finish the migration on the same cycle and then
	// behave identically.
	for now := uint64(4); now < 40; now++ {
		tr.Tick(now)
		fresh.Tick(now)
		a, b := tr.Access(2*64, false, now), fresh.Access(2*64, false, now)
		if a != b {
			t.Fatalf("behaviour diverges at cycle %d: %v vs %v", now, a, b)
		}
	}
	if fresh.Stats() != tr.Stats() {
		t.Fatalf("post-restore stats diverge: %+v vs %+v", fresh.Stats(), tr.Stats())
	}

	// A tier built under different geometry must refuse the snapshot.
	other := tier(t, Config{PageBytes: 128, Frames: 2, PCIeLatency: 10, PCIeBytesPerCycle: 16, MetaCycles: 6, ThrashWindow: 100})
	d2 := snapshot.NewDecoder(e.Data())
	other.LoadState(d2)
	if d2.Err() == nil {
		t.Error("loading a 64 B-page snapshot into a 128 B-page tier succeeded")
	}
}
