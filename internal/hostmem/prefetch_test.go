package hostmem

import (
	"testing"

	"shmgpu/internal/snapshot"
)

// ptier builds a tier over pages pages with the same fast deterministic
// timing as tier(): 64 B pages, transfer 4 cycles, latency 10, metadata 6.
func ptier(t *testing.T, cfg Config, pages int) *Tier {
	t.Helper()
	if cfg.PageBytes == 0 {
		cfg.PageBytes = 64
	}
	if cfg.PCIeLatency == 0 {
		cfg.PCIeLatency = 10
	}
	if cfg.PCIeBytesPerCycle == 0 {
		cfg.PCIeBytesPerCycle = 16
	}
	if cfg.MetaCycles == 0 {
		cfg.MetaCycles = 6
	}
	if cfg.ThrashWindow == 0 {
		cfg.ThrashWindow = 100
	}
	tr, err := New(cfg, uint64(pages)*cfg.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParsePrefetch(t *testing.T) {
	for s, want := range map[string]Prefetch{"": PrefetchNone, "none": PrefetchNone, "stride": PrefetchStride, "stream": PrefetchStream} {
		if p, err := ParsePrefetch(s); err != nil || p != want {
			t.Errorf("ParsePrefetch(%q) = %v, %v; want %v", s, p, err, want)
		}
	}
	if _, err := ParsePrefetch("oracle"); err == nil {
		t.Error("unknown prefetch policy accepted")
	}
	for p, want := range map[Prefetch]string{PrefetchNone: "none", PrefetchStride: "stride", PrefetchStream: "stream"} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
	if err := (Config{SubPageBytes: 48}).Validate(); err == nil {
		t.Error("non-power-of-two sub-page size accepted")
	}
	if err := (Config{PageBytes: 64, SubPageBytes: 128}).Validate(); err == nil {
		t.Error("sub-page larger than the page accepted")
	}
	if err := (Config{PageBytes: 64 << 10, SubPageBytes: 64}).Validate(); err == nil {
		t.Error("more than 64 sub-pages per page accepted")
	}
}

// TestStrideStreamFormation pins the confirmation protocol: the first
// fault of a sequence prefetches nothing, the second only primes the
// stride, and the third — two matching deltas — confirms the stream and
// extends the demand fault into one coalesced batch whose link latency
// and metadata cost are paid once.
func TestStrideStreamFormation(t *testing.T) {
	tr := ptier(t, Config{Frames: 4, Prefetch: PrefetchStride, PrefetchDegree: 4, BatchPages: 4}, 32)
	if tr.Access(8*64, false, 0) != Fault {
		t.Fatal("page 8 did not fault")
	}
	if st := tr.Stats(); st.Prefetches != 0 {
		t.Fatalf("Prefetches = %d after a first fault, want 0", st.Prefetches)
	}
	now := settle(t, tr, 0)
	if tr.Access(9*64, false, now) != Fault {
		t.Fatal("page 9 did not fault")
	}
	if st := tr.Stats(); st.Prefetches != 0 {
		t.Fatalf("Prefetches = %d after the priming fault, want 0", st.Prefetches)
	}
	now = settle(t, tr, now)
	if tr.Access(10*64, false, now) != Fault {
		t.Fatal("page 10 did not fault")
	}
	st := tr.Stats()
	// Batch = demand page 10 + prefetched 11, 12, 13 (degree 4, but the
	// batch is capped at BatchPages total pages).
	if st.Prefetches != 3 || st.Batches != 1 {
		t.Fatalf("Prefetches = %d, Batches = %d; want 3 prefetched pages in 1 batch", st.Prefetches, st.Batches)
	}
	// Batches complete incrementally: the leading demand page lands after
	// its own transfer slice plus latency and metadata (now + 4 + 10 + 6),
	// not after the whole 4-page transfer (the tail lands at now + 32).
	if ne := tr.NextEvent(now); ne != now+20 {
		t.Fatalf("NextEvent = %d, want %d (demand page leads the batch)", ne, now+20)
	}
	// Metadata re-establishment is charged per batch, not per page: three
	// migrations so far (two singles, one 4-page batch) = 3 × 6 cycles.
	if st.MetaCycles != 18 {
		t.Fatalf("MetaCycles = %d, want 18 (three batches)", st.MetaCycles)
	}
	now = settle(t, tr, now)
	if st := tr.Stats(); st.MigrationsIn != 6 {
		t.Fatalf("MigrationsIn = %d, want 6 (3 demand + 3 prefetched)", st.MigrationsIn)
	}
	for p := 11; p <= 13; p++ {
		if !tr.IsResident(p) {
			t.Fatalf("prefetched page %d not resident after settle", p)
		}
	}
	// Touching a prefetched page after arrival counts it useful, once.
	if tr.Access(11*64, false, now+1) != Admit {
		t.Fatal("prefetched page 11 did not admit")
	}
	if tr.Access(11*64, false, now+2) != Admit {
		t.Fatal("second touch of page 11 did not admit")
	}
	if st := tr.Stats(); st.PrefUseful != 1 {
		t.Fatalf("PrefUseful = %d, want 1", st.PrefUseful)
	}
}

// TestStrideStreamTeardown: eight unrelated faults LRU-replace the whole
// stride table, so a previously confirmed stream is forgotten and its
// continuation prefetches nothing until it re-confirms.
func TestStrideStreamTeardown(t *testing.T) {
	tr := ptier(t, Config{Frames: 64, Prefetch: PrefetchStride, PrefetchDegree: 2, BatchPages: 8}, 1024)
	now := uint64(0)
	fault := func(page int) {
		t.Helper()
		if tr.Access(uint64(page)*64, false, now) != Fault {
			t.Fatalf("page %d did not fault", page)
		}
		now = settle(t, tr, now)
	}
	fault(100)
	fault(101)
	fault(102) // confirmed: prefetches 103, 104
	if st := tr.Stats(); st.Prefetches != 2 {
		t.Fatalf("Prefetches = %d after confirmation, want 2", st.Prefetches)
	}
	// Far-apart faults (spacing > streamMaxStride) fill the seven empty
	// slots, then replace the stream's slot.
	for p := 200; p <= 900; p += 100 {
		fault(p)
	}
	for i := range tr.streams {
		if tr.streams[i].conf >= streamMinConfidence {
			t.Fatalf("stream slot %d still confirmed after table churn: %+v", i, tr.streams[i])
		}
	}
	// The old stream's continuation (first host page past the prefetched
	// run) no longer prefetches.
	fault(105)
	if st := tr.Stats(); st.Prefetches != 2 {
		t.Errorf("Prefetches = %d after teardown, want 2 (no new prefetch)", st.Prefetches)
	}
}

// TestPrefetchLateAccounting: a page demanded while its prefetch is still
// in flight counts late (not useful), stalls like any migrating page, and
// leaves the accuracy accounting for good.
func TestPrefetchLateAccounting(t *testing.T) {
	tr := ptier(t, Config{Frames: 4, Prefetch: PrefetchStride, PrefetchDegree: 4, BatchPages: 4}, 32)
	now := uint64(0)
	for _, p := range []int{8, 9} {
		if tr.Access(uint64(p)*64, false, now) != Fault {
			t.Fatalf("page %d did not fault", p)
		}
		now = settle(t, tr, now)
	}
	if tr.Access(10*64, false, now) != Fault {
		t.Fatal("page 10 did not fault")
	}
	// Page 11 is in the in-flight batch: demanding it now is a late
	// prefetch.
	if got := tr.Access(11*64, false, now+1); got != Stall {
		t.Fatalf("demand of in-flight prefetched page = %v, want Stall", got)
	}
	if st := tr.Stats(); st.PrefLate != 1 {
		t.Fatalf("PrefLate = %d, want 1", st.PrefLate)
	}
	now = settle(t, tr, now)
	if tr.Access(11*64, false, now) != Admit {
		t.Fatal("page 11 did not admit after arrival")
	}
	if st := tr.Stats(); st.PrefUseful != 0 || st.PrefLate != 1 {
		t.Errorf("accounting = useful %d late %d; a late prefetch must not also count useful", st.PrefUseful, st.PrefLate)
	}
}

// TestPrefetchUselessAccounting: a prefetched page evicted without ever
// being touched counts useless exactly once, and eager/prefetch marks are
// cleared so the frame's next tenant starts clean.
func TestPrefetchUselessAccounting(t *testing.T) {
	tr := ptier(t, Config{Frames: 4, Prefetch: PrefetchStride, PrefetchDegree: 1, BatchPages: 8}, 32)
	now := uint64(0)
	var victims []int
	tr.OnEvict = func(page int, dirty, thrash bool) { victims = append(victims, page) }
	for _, p := range []int{8, 9, 10} {
		if tr.Access(uint64(p)*64, false, now) != Fault {
			t.Fatalf("page %d did not fault", p)
		}
		now = settle(t, tr, now)
	}
	if st := tr.Stats(); st.Prefetches != 1 {
		t.Fatalf("Prefetches = %d, want 1 (page 11)", st.Prefetches)
	}
	// Touch the demand pages so the untouched prefetched page 11 is the
	// LRU victim.
	for _, p := range []int{8, 9, 10} {
		now++
		if tr.Access(uint64(p)*64, false, now) != Admit {
			t.Fatalf("page %d not resident", p)
		}
	}
	if tr.Access(20*64, false, now+1) != Fault {
		t.Fatal("page 20 did not fault")
	}
	last := victims[len(victims)-1]
	if last != 11 {
		t.Fatalf("victim = %d, want untouched prefetched page 11", last)
	}
	st := tr.Stats()
	if st.PrefUseless != 1 || st.PrefUseful != 0 {
		t.Errorf("accounting = useless %d useful %d; want exactly one useless", st.PrefUseless, st.PrefUseful)
	}
}

// TestBatchCoalescingBoundaries: a batch stops at the BatchPages cap, at
// an already-resident page, and at the working-set end.
func TestBatchCoalescingBoundaries(t *testing.T) {
	tr := ptier(t, Config{Frames: 8, Prefetch: PrefetchStride, PrefetchDegree: 8, BatchPages: 8}, 32)
	now := uint64(0)
	fault := func(page int) {
		t.Helper()
		if tr.Access(uint64(page)*64, false, now) != Fault {
			t.Fatalf("page %d did not fault", page)
		}
		now = settle(t, tr, now)
	}
	// Plant a resident page in the prefetch path, then clear the stride
	// table so the planting fault does not perturb stream detection.
	fault(14)
	tr.streams = [streamTableSize]faultStream{}

	fault(10)
	fault(11)
	fault(12) // confirmed: coalesces 13, then stops at resident page 14
	st := tr.Stats()
	if st.Prefetches != 1 {
		t.Fatalf("Prefetches = %d, want 1 (batch stops at resident page 14)", st.Prefetches)
	}
	if st.Batches != 1 {
		t.Fatalf("Batches = %d, want 1", st.Batches)
	}

	// Working-set end: a stream confirmed on the last page has nowhere to
	// fetch ahead.
	tr.streams = [streamTableSize]faultStream{}
	fault(29)
	fault(30)
	fault(31)
	if st := tr.Stats(); st.Prefetches != 1 || st.Batches != 1 {
		t.Errorf("Prefetches = %d, Batches = %d after end-of-set stream; want unchanged (1, 1)", st.Prefetches, st.Batches)
	}

	// BatchPages cap: degree 8 but cap 3 coalesces demand + 2.
	capped := ptier(t, Config{Frames: 8, Prefetch: PrefetchStride, PrefetchDegree: 8, BatchPages: 3}, 64)
	now = 0
	for _, p := range []int{20, 21, 22} {
		if capped.Access(uint64(p)*64, false, now) != Fault {
			t.Fatalf("page %d did not fault", p)
		}
		now = settle(t, capped, now)
	}
	if st := capped.Stats(); st.Prefetches != 2 {
		t.Errorf("Prefetches = %d with BatchPages 3, want 2 (demand + 2)", st.Prefetches)
	}
}

// TestNonUnitStridePrefetch: a confirmed stride > 1 prefetches along the
// stride as separate single-page link transactions (non-adjacent pages
// cannot coalesce), skipping occupied candidates.
func TestNonUnitStridePrefetch(t *testing.T) {
	tr := ptier(t, Config{Frames: 8, Prefetch: PrefetchStride, PrefetchDegree: 2, BatchPages: 8}, 64)
	now := uint64(0)
	fault := func(page int) {
		t.Helper()
		if tr.Access(uint64(page)*64, false, now) != Fault {
			t.Fatalf("page %d did not fault", page)
		}
	}
	fault(12)
	now = settle(t, tr, now)
	fault(15)
	now = settle(t, tr, now)
	fault(18) // stride 3 confirmed: prefetch 21 and 24 as own transactions
	st := tr.Stats()
	if st.Prefetches != 2 || st.Batches != 0 {
		t.Fatalf("Prefetches = %d, Batches = %d; want 2 single-page prefetches, no batch", st.Prefetches, st.Batches)
	}
	if tr.InflightMigrations() != 3 {
		t.Fatalf("InflightMigrations = %d, want 3 (demand + 2 prefetches)", tr.InflightMigrations())
	}
	now = settle(t, tr, now)
	for _, p := range []int{18, 21, 24} {
		if !tr.IsResident(p) {
			t.Errorf("page %d not resident after settle", p)
		}
	}

	// Occupied candidates are skipped, later ones still fetch.
	tr2 := ptier(t, Config{Frames: 8, Prefetch: PrefetchStride, PrefetchDegree: 2, BatchPages: 8}, 64)
	now = 0
	if tr2.Access(21*64, false, now) != Fault {
		t.Fatal("page 21 did not fault")
	}
	now = settle(t, tr2, now)
	tr2.streams = [streamTableSize]faultStream{}
	for _, p := range []int{12, 15} {
		if tr2.Access(uint64(p)*64, false, now) != Fault {
			t.Fatalf("page %d did not fault", p)
		}
		now = settle(t, tr2, now)
	}
	if tr2.Access(18*64, false, now) != Fault {
		t.Fatal("page 18 did not fault")
	}
	if st := tr2.Stats(); st.Prefetches != 1 {
		t.Errorf("Prefetches = %d, want 1 (resident candidate 21 skipped, 24 fetched)", st.Prefetches)
	}
}

// TestEagerEvictionOrder (stream policy): pages fetched under a streaming
// classification are stamped below every normal page and drain first, in
// fetch order, without re-touches promoting them.
func TestEagerEvictionOrder(t *testing.T) {
	classify := func(page int) bool { return page >= 8 && page < 16 }
	tr := ptier(t, Config{Frames: 4, Prefetch: PrefetchStream, PrefetchDegree: 2, BatchPages: 4}, 32)
	tr.Classify = classify
	var victims []int
	tr.OnEvict = func(page int, dirty, thrash bool) { victims = append(victims, page) }

	if tr.Access(8*64, false, 0) != Fault {
		t.Fatal("page 8 did not fault")
	}
	st := tr.Stats()
	if st.Prefetches != 2 || st.Batches != 1 {
		t.Fatalf("Prefetches = %d, Batches = %d; a streaming fault bulk-fetches immediately", st.Prefetches, st.Batches)
	}
	now := settle(t, tr, 0)
	// Resident: page 3 (normal, from initial placement) + eager 8, 9, 10.
	// Re-touch the eager pages: must not promote them past page 3's stamp
	// in eviction priority — eager pages drain first regardless.
	for _, p := range []int{8, 9, 10} {
		now++
		if tr.Access(uint64(p)*64, false, now) != Admit {
			t.Fatalf("streamed page %d not resident", p)
		}
	}
	if st := tr.Stats(); st.PrefUseful != 2 {
		t.Fatalf("PrefUseful = %d, want 2 (pages 9 and 10)", st.PrefUseful)
	}
	victims = victims[:0]
	// A non-streaming fault must evict the eager pages in fetch order
	// (8, then 9) before touching the re-touched LRU order.
	if tr.Access(20*64, false, now+1) != Fault {
		t.Fatal("page 20 did not fault")
	}
	now = settle(t, tr, now+1)
	if tr.Access(21*64, false, now+1) != Fault {
		t.Fatal("page 21 did not fault")
	}
	if len(victims) != 2 || victims[0] != 8 || victims[1] != 9 {
		t.Fatalf("victims = %v, want eager pages [8 9] in fetch order", victims)
	}
	if tr.eager[8] || tr.eager[9] {
		t.Error("eager mark not cleared on eviction")
	}
}

// TestStreamPolicyWithoutClassifier: the stream policy with no Classify
// hook bound degrades to demand-only.
func TestStreamPolicyWithoutClassifier(t *testing.T) {
	tr := ptier(t, Config{Frames: 4, Prefetch: PrefetchStream, PrefetchDegree: 4, BatchPages: 4}, 32)
	if tr.Access(8*64, false, 0) != Fault {
		t.Fatal("page 8 did not fault")
	}
	if st := tr.Stats(); st.Prefetches != 0 || st.Batches != 0 {
		t.Errorf("stats = %+v; no Classify hook must mean no prefetching", tr.Stats())
	}
}

// TestSubPageDirtyWriteback: with sub-page dirty tracking only the
// written sub-pages transfer back on eviction, and the mask resets for
// the frame's next tenant.
func TestSubPageDirtyWriteback(t *testing.T) {
	cfg := Config{PageBytes: 256, SubPageBytes: 64, Frames: 2}
	tr := ptier(t, cfg, 4)
	// Dirty sub-pages 0 and 2 of page 0; keep page 1 clean.
	if tr.Access(0, true, 1) != Admit {
		t.Fatal("write to page 0 rejected")
	}
	if tr.Access(130, true, 2) != Admit {
		t.Fatal("write to page 0 offset 130 rejected")
	}
	if tr.Access(256, false, 3) != Admit {
		t.Fatal("read of page 1 rejected")
	}
	if tr.Access(2*256, false, 4) != Fault { // evicts page 0 (LRU)
		t.Fatal("page 2 did not fault")
	}
	st := tr.Stats()
	if st.WritebacksDirty != 1 {
		t.Fatalf("WritebacksDirty = %d, want 1", st.WritebacksDirty)
	}
	if st.BytesOut != 128 {
		t.Fatalf("BytesOut = %d, want 128 (two dirty 64 B sub-pages, not the whole 256 B page)", st.BytesOut)
	}
	if tr.subdirty[0] != 0 {
		t.Error("sub-page dirty mask not cleared on eviction")
	}

	// Whole-page granularity for comparison: the same writes cost a full
	// page of writeback.
	whole := ptier(t, Config{PageBytes: 256, Frames: 2}, 4)
	whole.Access(0, true, 1)
	whole.Access(130, true, 2)
	whole.Access(256, false, 3)
	if whole.Access(2*256, false, 4) != Fault {
		t.Fatal("page 2 did not fault on the whole-page tier")
	}
	if st := whole.Stats(); st.BytesOut != 256 {
		t.Errorf("whole-page BytesOut = %d, want 256", st.BytesOut)
	}
}

// TestSnapshotRoundTripWithPrefetch serializes a tier with a multi-page
// prefetch batch in flight, a live stride table, and per-page prefetch
// accounting, restores it into a fresh tier, and requires byte-identical
// stats and behaviour from both — including the stream continuing to
// prefetch after restore.
func TestSnapshotRoundTripWithPrefetch(t *testing.T) {
	cfg := Config{PageBytes: 64, Frames: 4, Prefetch: PrefetchStride, PrefetchDegree: 4, BatchPages: 4,
		PCIeLatency: 10, PCIeBytesPerCycle: 16, MetaCycles: 6, ThrashWindow: 100}
	tr := ptier(t, cfg, 32)
	now := uint64(0)
	for _, p := range []int{8, 9} {
		if tr.Access(uint64(p)*64, false, now) != Fault {
			t.Fatalf("page %d did not fault", p)
		}
		now = settle(t, tr, now)
	}
	if tr.Access(10*64, false, now) != Fault {
		t.Fatal("page 10 did not fault")
	}
	if tr.InflightMigrations() != 1 || tr.Stats().Prefetches != 3 {
		t.Fatal("expected a 4-page prefetch batch in flight at save time")
	}

	var e snapshot.Encoder
	tr.SaveState(&e)

	fresh := ptier(t, cfg, 32)
	d := snapshot.NewDecoder(e.Data())
	fresh.LoadState(d)
	if err := d.Err(); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if fresh.Stats() != tr.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", fresh.Stats(), tr.Stats())
	}
	// Drive both tiers through the batch completion, the accuracy
	// accounting, and a stream continuation fault; every observable must
	// match cycle for cycle.
	for step := now; step < now+60; step++ {
		tr.Tick(step)
		fresh.Tick(step)
		for _, p := range []int{10, 11, 14} {
			a, b := tr.Access(uint64(p)*64, false, step), fresh.Access(uint64(p)*64, false, step)
			if a != b {
				t.Fatalf("page %d diverges at cycle %d: %v vs %v", p, step, a, b)
			}
		}
	}
	if fresh.Stats() != tr.Stats() {
		t.Fatalf("post-restore stats diverge: %+v vs %+v", fresh.Stats(), tr.Stats())
	}

	// A tier with different sub-page geometry must refuse the snapshot.
	sub := cfg
	sub.SubPageBytes = 32
	other := ptier(t, sub, 32)
	d2 := snapshot.NewDecoder(e.Data())
	other.LoadState(d2)
	if d2.Err() == nil {
		t.Error("loading a whole-page snapshot into a sub-page tier succeeded")
	}
}
