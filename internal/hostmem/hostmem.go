// Package hostmem models a host-backed memory tier behind a
// page-granularity demand-migration boundary (UVM-style). The GPU side
// owns a fixed number of device page frames; accesses to non-resident
// pages fault, start a PCIe-modeled migration, and are retried by the
// requester until the page arrives (AMD XNACK retry-on-fault). When the
// working set exceeds the frame budget a victim page is evicted per the
// configured policy, with dirty pages paying a writeback transfer.
//
// On top of demand paging the tier runs an optional migration-ahead
// engine. A demand fault can trigger prefetches: PrefetchStride detects
// per-fault-stream strides in a small table and fetches ahead along the
// stride; PrefetchStream asks the embedding layer (via Classify) whether
// the faulting page is classified streaming by the paper's detector and,
// if so, bulk-fetches the next sequential pages and marks the whole run
// for eager eviction — streamed-through pages are spent and go first.
// Adjacent prefetched pages coalesce with the demand page into one
// batched PCIe transaction: the link transfers the batch back to back,
// and the one-way latency plus the metadata re-establishment cost are
// paid once per batch instead of once per page. With no prefetch policy
// the fault path is byte-for-byte the demand-only protocol, and at a
// frame budget covering the working set no faults ever occur, so no
// fault streams form and the prefetcher is provably idle.
//
// The tier is deliberately engine-agnostic: it knows nothing about SMs,
// crossbars, or the MEE. The embedding layer drives it through three
// calls — Access on every admission attempt, Tick once per cycle, and
// NextEvent for the fast-forward horizon — and observes migrations via
// the OnFaultIn/OnEvict/OnPrefetch callbacks (metadata
// teardown/re-establishment and telemetry live there) plus the Classify
// hook feeding the stream policy. All state is preallocated at
// construction; the per-cycle path performs no heap allocation.
package hostmem

import (
	"fmt"
	"math/bits"

	"shmgpu/internal/snapshot"
)

// Policy selects the eviction victim among resident pages.
type Policy uint8

const (
	// PolicyLRU evicts the resident page with the oldest access stamp.
	PolicyLRU Policy = iota
	// PolicyFIFO evicts the resident page with the oldest admission.
	PolicyFIFO
)

// ParsePolicy maps a config string to a Policy. The empty string means
// the default (LRU).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "lru":
		return PolicyLRU, nil
	case "fifo":
		return PolicyFIFO, nil
	}
	return PolicyLRU, fmt.Errorf("hostmem: unknown migration policy %q", s)
}

func (p Policy) String() string {
	if p == PolicyFIFO {
		return "fifo"
	}
	return "lru"
}

// Integrity selects how security metadata is re-established when a page
// faults in from the host tier.
type Integrity uint8

const (
	// IntegrityRebuild tears down device-side counter/MAC/BMT coverage
	// on eviction and fully rebuilds it on fault-in (the expensive,
	// device-trust-only mode).
	IntegrityRebuild Integrity = iota
	// IntegrityHostSide keeps integrity metadata valid while the page
	// lives host-side, so fault-in only re-keys the page (cheap mode;
	// trusts the host-side MEE to maintain coverage).
	IntegrityHostSide
)

// ParseIntegrity maps a config string to an Integrity mode. The empty
// string means the default (full rebuild).
func ParseIntegrity(s string) (Integrity, error) {
	switch s {
	case "", "rebuild":
		return IntegrityRebuild, nil
	case "hostside":
		return IntegrityHostSide, nil
	}
	return IntegrityRebuild, fmt.Errorf("hostmem: unknown host integrity mode %q", s)
}

func (i Integrity) String() string {
	if i == IntegrityHostSide {
		return "hostside"
	}
	return "rebuild"
}

// Prefetch selects the migration-ahead policy.
type Prefetch uint8

const (
	// PrefetchNone keeps the tier purely demand-driven.
	PrefetchNone Prefetch = iota
	// PrefetchStride detects sequential strides across the demand-fault
	// stream and migrates ahead along a confirmed stride.
	PrefetchStride
	// PrefetchStream consults the embedding layer's streaming
	// classification (the paper's detector, via Classify): faults on
	// streaming-classified pages bulk-fetch the next sequential pages
	// and mark the run for eager eviction.
	PrefetchStream
)

// ParsePrefetch maps a config string to a Prefetch policy. The empty
// string means the default (none).
func ParsePrefetch(s string) (Prefetch, error) {
	switch s {
	case "", "none":
		return PrefetchNone, nil
	case "stride":
		return PrefetchStride, nil
	case "stream":
		return PrefetchStream, nil
	}
	return PrefetchNone, fmt.Errorf("hostmem: unknown prefetch policy %q", s)
}

func (p Prefetch) String() string {
	switch p {
	case PrefetchStride:
		return "stride"
	case PrefetchStream:
		return "stream"
	}
	return "none"
}

// Default timing parameters. PCIe numbers approximate a Gen3 x16 link
// relative to the simulator's GPU core clock: ~600 cycles one-way
// latency and 16 B/cycle of migration bandwidth.
const (
	DefaultPageBytes         = 64 << 10
	DefaultPCIeLatency       = 600
	DefaultPCIeBytesPerCycle = 16
	DefaultMaxInflight       = 16
	DefaultThrashWindow      = 4096
	// Metadata re-establishment cost per fault-in: a full BMT/counter
	// rebuild walks the page's counter and MAC blocks; host-side
	// integrity only re-keys.
	DefaultRebuildCycles  = 256
	DefaultHostSideCycles = 32
	// Migration-ahead defaults: how many pages a confirmed stream
	// fetches ahead, and how many adjacent pages coalesce into one
	// batched PCIe transaction.
	DefaultPrefetchDegree = 8
	DefaultBatchPages     = 8
	// LargePageBytes is the 2 MiB large-page migration granularity;
	// DefaultSubPageBytes is the sub-page dirty-tracking granularity
	// that keeps large-page writeback traffic proportional to the bytes
	// actually written.
	LargePageBytes      = 2 << 20
	DefaultSubPageBytes = 64 << 10
)

// Fault-stream stride detection: a small LRU table of recent demand
// fault streams. A stream forms when the same stride is observed twice
// in a row (streamMinConfidence); strides beyond streamMaxStride pages
// are treated as unrelated faults.
const (
	streamTableSize     = 8
	streamMaxStride     = 64
	streamMinConfidence = 2
)

// Config parameterizes a Tier. Zero values take the package defaults,
// except Frames which must be set explicitly (the embedding layer
// derives it from the oversubscription ratio).
type Config struct {
	PageBytes         uint64
	Frames            int // device page frames available to this tier
	Policy            Policy
	Integrity         Integrity
	PCIeLatency       uint64 // one-way link latency, cycles
	PCIeBytesPerCycle uint64 // migration bandwidth
	MetaCycles        uint64 // per-batch metadata cost; 0 = by Integrity
	MaxInflight       int    // migration ring capacity (batches)
	ThrashWindow      uint64 // eviction younger than this counts as thrash

	// Prefetch selects the migration-ahead policy; PrefetchDegree is
	// how many pages one trigger fetches ahead (0 = default when a
	// policy is set). BatchPages caps how many adjacent pages coalesce
	// into one PCIe transaction (0 = default when a policy is set, 1
	// otherwise; batching only forms around prefetches, so demand-only
	// tiers always transfer single pages). Batches complete page by
	// page as the transfer streams in, so the leading demand page never
	// waits on its prefetch tail.
	Prefetch       Prefetch
	PrefetchDegree int
	BatchPages     int

	// SubPageBytes enables sub-page dirty tracking: writebacks transfer
	// only the sub-pages actually written instead of the whole page.
	// 0 keeps whole-page dirty granularity. Must be a power of two
	// dividing PageBytes, with at most 64 sub-pages per page.
	SubPageBytes uint64
}

func (c *Config) applyDefaults() {
	if c.PageBytes == 0 {
		c.PageBytes = DefaultPageBytes
	}
	if c.PCIeLatency == 0 {
		c.PCIeLatency = DefaultPCIeLatency
	}
	if c.PCIeBytesPerCycle == 0 {
		c.PCIeBytesPerCycle = DefaultPCIeBytesPerCycle
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.ThrashWindow == 0 {
		c.ThrashWindow = DefaultThrashWindow
	}
	if c.MetaCycles == 0 {
		if c.Integrity == IntegrityHostSide {
			c.MetaCycles = DefaultHostSideCycles
		} else {
			c.MetaCycles = DefaultRebuildCycles
		}
	}
	if c.PrefetchDegree <= 0 && c.Prefetch != PrefetchNone {
		c.PrefetchDegree = DefaultPrefetchDegree
	}
	if c.BatchPages <= 0 {
		if c.Prefetch != PrefetchNone {
			c.BatchPages = DefaultBatchPages
		} else {
			c.BatchPages = 1
		}
	}
}

// Validate rejects configurations the tier cannot run.
func (c Config) Validate() error {
	if c.PageBytes != 0 && c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("hostmem: PageBytes %d is not a power of two", c.PageBytes)
	}
	if c.Frames < 0 {
		return fmt.Errorf("hostmem: negative Frames %d", c.Frames)
	}
	if c.SubPageBytes != 0 {
		if c.SubPageBytes&(c.SubPageBytes-1) != 0 {
			return fmt.Errorf("hostmem: SubPageBytes %d is not a power of two", c.SubPageBytes)
		}
		page := c.PageBytes
		if page == 0 {
			page = DefaultPageBytes
		}
		if c.SubPageBytes > page {
			return fmt.Errorf("hostmem: SubPageBytes %d exceeds page size %d", c.SubPageBytes, page)
		}
		if page/c.SubPageBytes > 64 {
			return fmt.Errorf("hostmem: %d sub-pages per page, max 64", page/c.SubPageBytes)
		}
	}
	return nil
}

// Stats counts tier activity since construction (or load).
type Stats struct {
	Faults          uint64 // demand migrations started
	Replays         uint64 // retried accesses to a faulted/busy page
	MigrationsIn    uint64 // pages migrated in (demand + prefetch)
	Evictions       uint64
	WritebacksDirty uint64
	WritebacksClean uint64
	Thrash          uint64 // evictions within ThrashWindow of admission
	BytesIn         uint64
	BytesOut        uint64
	MetaCycles      uint64 // cumulative metadata re-establishment cycles
	Prefetches      uint64 // pages migrated ahead of demand
	PrefUseful      uint64 // prefetched pages touched after arrival
	PrefLate        uint64 // prefetched pages demanded while in flight
	PrefUseless     uint64 // prefetched pages evicted untouched
	Batches         uint64 // multi-page coalesced PCIe transactions
}

// AccessResult classifies one admission attempt.
type AccessResult uint8

const (
	// Admit: page resident (or untracked); the access proceeds.
	Admit AccessResult = iota
	// Fault: page was host-resident; a migration just started. The
	// access must be retried (pause-and-replay).
	Fault
	// Stall: page is migrating, or the migration ring is full. The
	// access must be retried.
	Stall
)

type pageState uint8

const (
	pageHost pageState = iota
	pageMigrating
	pageResident
)

// Prefetch accounting state per page (accuracy/coverage counters).
type prefState uint8

const (
	pfNone     prefState = iota
	pfInflight           // prefetch issued, migration in flight
	pfArrived            // prefetched page resident, not yet touched
)

// migration is one in-flight PCIe transaction: a contiguous run of pages
// starting at page. The link transfers the run back to back and the
// one-way latency plus MetaCycles are paid once for the whole batch.
type migration struct {
	page    int
	pages   int
	eager   bool   // stream-classified: evict eagerly once resident
	faultAt uint64 // cycle the trigger fault was taken
	ready   uint64 // cycle the whole batch becomes resident
}

// Normal LRU/FIFO stamps live above eagerStampBase; eager (streamed)
// pages are stamped from a counter starting at 1, so the victim heap
// drains spent streaming pages in fetch order before touching the LRU
// order of everything else.
const eagerStampBase = uint64(1) << 63

// faultStream is one entry of the stride-detection table.
type faultStream struct {
	last   int32
	stride int32
	conf   uint8
	used   uint64 // streamSeq at last update; 0 = empty slot
}

// Tier tracks page residency for one contiguous working set starting at
// address 0 (the simulator places all workload buffers there). Pages at
// or beyond the working set are untracked and always admit.
type Tier struct {
	cfg        Config
	numPages   int
	subPerPage int // sub-pages per page (1 = whole-page dirty tracking)

	state    []pageState
	dirty    []bool   // any sub-page dirty
	subdirty []uint64 // per-page sub-page dirty mask (nil when subPerPage == 1)
	stamp    []uint64 // LRU: last-access seq; FIFO: admission seq
	admitAt  []uint64 // admission cycle, for thrash detection
	eager    []bool   // stream-classified: stamped low, never promoted
	pstate   []prefState

	// Victim min-heap over resident pages keyed by hkey. Keys go stale
	// when an LRU touch bumps a stamp (the touch itself stays O(1));
	// pop re-keys stale roots lazily, so eviction is amortized O(log n)
	// and still returns the exact min-stamp victim: stamps only grow
	// after a page is pushed, so every node's true stamp bounds its
	// heap key from above and a clean root is a global minimum.
	heap    []int32
	hkey    []uint64
	heapLen int

	seq       uint64 // monotonic access sequence (cycle-tie-free LRU)
	eagerSeq  uint64 // stamp source for eager pages, below eagerStampBase
	streamSeq uint64 // LRU clock for the stride table
	streams   [streamTableSize]faultStream

	ring      []migration
	ringHead  int
	ringLen   int
	inflight  int    // pages across all in-flight batches
	busyUntil uint64 // PCIe link serialization point
	resident  int

	stats Stats

	// OnFaultIn fires per page when a migration completes (page now
	// resident); latency is fault-to-ready in cycles. OnEvict fires
	// when a victim is dropped to the host tier; thrash marks an
	// eviction within ThrashWindow of the victim's admission.
	// OnPrefetch fires once per migration batch that carries prefetched
	// pages, with the batch's first page and total size. Classify, used
	// by PrefetchStream, reports whether a page is currently classified
	// streaming. All may be nil. Bound once before the run; never
	// called concurrently.
	OnFaultIn  func(page int, latency uint64)
	OnEvict    func(page int, dirty, thrash bool)
	OnPrefetch func(page, pages int)
	Classify   func(page int) bool
}

// New builds a tier covering workingSetBytes. Frames ≥ the page count
// means the working set fits: every page is prepopulated resident and
// the tier never faults, so behaviour is byte-identical to no tier at
// all (the migration-equivalence property) — and since prefetches only
// trigger on faults, every prefetch policy is equally invisible.
func New(cfg Config, workingSetBytes uint64) (*Tier, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workingSetBytes == 0 {
		workingSetBytes = cfg.PageBytes
	}
	numPages := int((workingSetBytes + cfg.PageBytes - 1) / cfg.PageBytes)
	if numPages < 1 {
		numPages = 1
	}
	if cfg.Frames < 1 {
		cfg.Frames = 1
	}
	if cfg.Frames > numPages {
		cfg.Frames = numPages
	}
	subPerPage := 1
	if cfg.SubPageBytes != 0 && cfg.SubPageBytes < cfg.PageBytes {
		subPerPage = int(cfg.PageBytes / cfg.SubPageBytes)
	}
	t := &Tier{
		cfg:        cfg,
		numPages:   numPages,
		subPerPage: subPerPage,
		state:      make([]pageState, numPages),
		dirty:      make([]bool, numPages),
		stamp:      make([]uint64, numPages),
		admitAt:    make([]uint64, numPages),
		eager:      make([]bool, numPages),
		pstate:     make([]prefState, numPages),
		heap:       make([]int32, numPages),
		hkey:       make([]uint64, numPages),
		ring:       make([]migration, cfg.MaxInflight),
		seq:        eagerStampBase,
		eagerSeq:   1,
	}
	if subPerPage > 1 {
		t.subdirty = make([]uint64, numPages)
	}
	// Initial placement: the host→device setup copy fills the frame
	// budget in page order before the run starts, so only the overflow
	// demand-migrates. Placement is free (no stats): when the working
	// set fits (Frames == numPages) the tier never faults and is
	// indistinguishable from tier-off (the migration-equivalence
	// property).
	for p := 0; p < cfg.Frames; p++ {
		t.state[p] = pageResident
		t.stamp[p] = t.seq
		t.seq++
		t.heapPush(p)
	}
	t.resident = cfg.Frames
	return t, nil
}

// NumPages reports the tracked page count.
func (t *Tier) NumPages() int { return t.numPages }

// Resident reports how many tracked pages are device-resident.
func (t *Tier) Resident() int { return t.resident }

// Frames reports the effective device frame budget.
func (t *Tier) Frames() int { return t.cfg.Frames }

// PageBytes reports the effective page size.
func (t *Tier) PageBytes() uint64 { return t.cfg.PageBytes }

// Stats returns a copy of the activity counters.
func (t *Tier) Stats() Stats { return t.stats }

// InflightMigrations reports how many migration batches are in flight.
func (t *Tier) InflightMigrations() int { return t.ringLen }

// PageOf maps an address to its page index (may be ≥ NumPages for
// addresses outside the tracked working set).
func (t *Tier) PageOf(addr uint64) int { return int(addr / t.cfg.PageBytes) }

// PageRange returns the [lo, hi) address span of a tracked page.
func (t *Tier) PageRange(page int) (lo, hi uint64) {
	lo = uint64(page) * t.cfg.PageBytes
	return lo, lo + t.cfg.PageBytes
}

// IsResident reports whether a page is device-resident (untracked pages
// count as resident).
func (t *Tier) IsResident(page int) bool {
	if page < 0 || page >= t.numPages {
		return true
	}
	return t.state[page] == pageResident
}

// heapPush adds a newly resident page to the victim heap, keyed by its
// current stamp.
func (t *Tier) heapPush(page int) {
	t.hkey[page] = t.stamp[page]
	i := t.heapLen
	t.heap[i] = int32(page)
	t.heapLen++
	for i > 0 {
		parent := (i - 1) / 2
		if t.hkey[t.heap[parent]] <= t.hkey[t.heap[i]] {
			break
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

// heapSiftDown restores the heap property below slot i.
func (t *Tier) heapSiftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < t.heapLen && t.hkey[t.heap[l]] < t.hkey[t.heap[min]] {
			min = l
		}
		if r < t.heapLen && t.hkey[t.heap[r]] < t.hkey[t.heap[min]] {
			min = r
		}
		if min == i {
			return
		}
		t.heap[min], t.heap[i] = t.heap[i], t.heap[min]
		i = min
	}
}

// heapPop removes and returns the resident page with the smallest
// current stamp, or -1 when the heap is empty. Stale roots (pages whose
// stamp grew since they were keyed) are re-keyed and re-sifted before a
// winner is declared.
func (t *Tier) heapPop() int {
	for t.heapLen > 0 {
		root := int(t.heap[0])
		if t.hkey[root] != t.stamp[root] {
			t.hkey[root] = t.stamp[root]
			t.heapSiftDown(0)
			continue
		}
		t.heapLen--
		t.heap[0] = t.heap[t.heapLen]
		t.heapSiftDown(0)
		return root
	}
	return -1
}

// Access attempts to admit one memory access at cycle now. Admit means
// the access proceeds; Fault/Stall mean the requester must hold the
// access at the head of its queue and retry next cycle. A demand fault
// is also the prefetcher's trigger point: confirmed streams extend the
// fault into a batched migration of the pages ahead.
func (t *Tier) Access(addr uint64, write bool, now uint64) AccessResult {
	page := int(addr / t.cfg.PageBytes)
	if page >= t.numPages {
		return Admit
	}
	switch t.state[page] {
	case pageResident:
		// Eager (streamed) pages keep their low stamp: re-touches on
		// the way through must not promote them past the LRU order of
		// the pages that will be reused.
		if t.cfg.Policy == PolicyLRU && !t.eager[page] {
			t.stamp[page] = t.seq
			t.seq++
		}
		if t.pstate[page] == pfArrived {
			t.pstate[page] = pfNone
			t.stats.PrefUseful++
		}
		if write {
			t.dirty[page] = true
			if t.subPerPage > 1 {
				t.subdirty[page] |= 1 << ((addr % t.cfg.PageBytes) / t.cfg.SubPageBytes)
			}
		}
		return Admit
	case pageMigrating:
		t.stats.Replays++
		if t.pstate[page] == pfInflight {
			// Demanded before arrival: the prefetch was late. It still
			// converts to an ordinary (partially hidden) fault, so it
			// leaves the accuracy accounting here.
			t.pstate[page] = pfNone
			t.stats.PrefLate++
		}
		return Stall
	}
	// Host-resident: take the fault if a migration slot is free.
	if t.ringLen == t.cfg.MaxInflight {
		t.stats.Replays++
		return Stall
	}
	if t.resident+t.inflight >= t.cfg.Frames && !t.evictOne(now) {
		// Every frame is reserved by an in-flight migration.
		t.stats.Replays++
		return Stall
	}
	t.stats.Faults++
	t.stats.BytesIn += t.cfg.PageBytes
	t.state[page] = pageMigrating
	// The demand page's frame reservation counts from this point, so the
	// prefetch candidates evaluated below see it and cannot overcommit
	// the frame budget.
	t.inflight++

	// Migration-ahead: decide how far past the demand page to fetch.
	stride, degree, eager := t.prefetchPlan(page)

	// Coalesce sequential prefetches into the demand batch (one PCIe
	// transaction; latency and metadata paid once). The batch completes
	// incrementally — the demand page leads the transfer and becomes
	// resident after its own slice, never waiting on its prefetch tail.
	m := migration{page: page, pages: 1, eager: eager, faultAt: now}
	if stride == 1 {
		for next := page + 1; degree > 0 && m.pages < t.cfg.BatchPages; next++ {
			if !t.prefetchPage(next, now) {
				break
			}
			m.pages++
			degree--
		}
	}
	t.appendMigration(m, now)

	// Non-unit strides are not adjacent, so each prefetched page is its
	// own link transaction (still pipelined behind the demand batch).
	if stride != 0 && stride != 1 {
		for i := 1; i <= degree && t.ringLen < t.cfg.MaxInflight; i++ {
			q := page + i*stride
			if !t.prefetchPage(q, now) {
				continue
			}
			t.appendMigration(migration{page: q, pages: 1, eager: eager, faultAt: now}, now)
		}
	}
	return Fault
}

// prefetchPlan maps a demand fault to a (stride, degree, eager) fetch
// plan. Degree 0 means no prefetching.
func (t *Tier) prefetchPlan(page int) (stride, degree int, eager bool) {
	switch t.cfg.Prefetch {
	case PrefetchStride:
		if s, ok := t.strideObserve(page); ok {
			return s, t.cfg.PrefetchDegree, false
		}
	case PrefetchStream:
		if t.Classify != nil && t.Classify(page) {
			return 1, t.cfg.PrefetchDegree, true
		}
	}
	return 0, 0, false
}

// strideObserve feeds one demand fault to the stride table and reports
// the confirmed stride, if any. Streams are confirmed after
// streamMinConfidence consecutive matching deltas and torn down by LRU
// replacement once their faults stop matching.
func (t *Tier) strideObserve(page int) (int, bool) {
	t.streamSeq++
	// Continuation of a tracked stream?
	for i := range t.streams {
		s := &t.streams[i]
		if s.used == 0 || s.stride == 0 {
			continue
		}
		if int(s.last)+int(s.stride) == page {
			s.last = int32(page)
			s.used = t.streamSeq
			if s.conf < streamMinConfidence {
				s.conf++
			}
			return int(s.stride), s.conf >= streamMinConfidence
		}
	}
	// Near an existing stream head: adopt the new delta as its stride.
	for i := range t.streams {
		s := &t.streams[i]
		if s.used == 0 {
			continue
		}
		d := page - int(s.last)
		if d != 0 && d >= -streamMaxStride && d <= streamMaxStride {
			s.stride = int32(d)
			s.conf = 1
			s.last = int32(page)
			s.used = t.streamSeq
			return 0, false
		}
	}
	// Unrelated fault: replace the least-recently-used slot.
	victim := 0
	for i := 1; i < len(t.streams); i++ {
		if t.streams[i].used < t.streams[victim].used {
			victim = i
		}
	}
	t.streams[victim] = faultStream{last: int32(page), used: t.streamSeq}
	return 0, false
}

// prefetchPage reserves a frame for one prefetch candidate and marks it
// migrating. False means the candidate is out of range, already
// resident/migrating, or no frame could be freed.
func (t *Tier) prefetchPage(page int, now uint64) bool {
	if page < 0 || page >= t.numPages || t.state[page] != pageHost {
		return false
	}
	if t.resident+t.inflight >= t.cfg.Frames && !t.evictOne(now) {
		return false
	}
	t.state[page] = pageMigrating
	t.pstate[page] = pfInflight
	t.inflight++
	t.stats.Prefetches++
	t.stats.BytesIn += t.cfg.PageBytes
	return true
}

// appendMigration serializes one batch on the link and queues it on the
// ring. Evictions (and their writebacks) for every page of the batch
// have already been charged, so ready cycles stay monotone along the
// ring. The demand-path cost model with batching off is unchanged:
// ready = start + transfer + PCIeLatency + MetaCycles.
func (t *Tier) appendMigration(m migration, now uint64) {
	transfer := uint64(m.pages) * t.perPageTransfer()
	start := now
	if t.busyUntil > start {
		start = t.busyUntil
	}
	t.busyUntil = start + transfer
	m.ready = start + transfer + t.cfg.PCIeLatency + t.cfg.MetaCycles
	t.stats.MetaCycles += t.cfg.MetaCycles
	if m.pages > 1 {
		t.stats.Batches++
	}
	t.ring[(t.ringHead+t.ringLen)%len(t.ring)] = m
	t.ringLen++
	if t.OnPrefetch != nil && (m.pages > 1 || t.pstate[m.page] == pfInflight) {
		t.OnPrefetch(m.page, m.pages)
	}
}

// evictOne drops the policy victim to the host tier, charging a dirty
// writeback to the shared link when needed. Eager (streamed) pages
// drain first by construction of their stamps. Returns false when no
// resident victim exists.
func (t *Tier) evictOne(now uint64) bool {
	victim := t.heapPop()
	if victim < 0 {
		return false
	}
	if t.pstate[victim] == pfArrived {
		t.pstate[victim] = pfNone
		t.stats.PrefUseless++
	}
	t.eager[victim] = false
	wasDirty := t.dirty[victim]
	t.state[victim] = pageHost
	t.dirty[victim] = false
	t.resident--
	t.stats.Evictions++
	if wasDirty {
		t.stats.WritebacksDirty++
		wbBytes := t.cfg.PageBytes
		if t.subPerPage > 1 {
			// Sub-page dirty tracking: only the written sub-pages
			// transfer back, so large-page writebacks don't inflate.
			wbBytes = uint64(bits.OnesCount64(t.subdirty[victim])) * t.cfg.SubPageBytes
			t.subdirty[victim] = 0
		}
		t.stats.BytesOut += wbBytes
		transfer := wbBytes / t.cfg.PCIeBytesPerCycle
		if transfer == 0 {
			transfer = 1
		}
		if t.busyUntil < now {
			t.busyUntil = now
		}
		t.busyUntil += transfer
	} else {
		t.stats.WritebacksClean++
	}
	thrash := now-t.admitAt[victim] < t.cfg.ThrashWindow
	if thrash {
		t.stats.Thrash++
	}
	if t.OnEvict != nil {
		t.OnEvict(victim, wasDirty, thrash)
	}
	return true
}

// perPageTransfer is the link occupancy of one page, in cycles.
func (t *Tier) perPageTransfer() uint64 {
	p := t.cfg.PageBytes / t.cfg.PCIeBytesPerCycle
	if p == 0 {
		p = 1
	}
	return p
}

// Tick completes migrations whose transfer has finished. Batches
// complete incrementally, page by page as the transfer streams in: with
// k pages still pending, the next page lands at ready − (k−1) ×
// per-page transfer (the last page lands exactly at ready). The demand
// page leads its batch, so it is never delayed by its prefetch tail,
// and a single-page (demand-only) migration behaves exactly as before.
// Ready cycles are monotonic along the ring (the link is serialized),
// so consuming from the head preserves completion order.
func (t *Tier) Tick(now uint64) {
	perPage := t.perPageTransfer()
	for t.ringLen > 0 {
		m := &t.ring[t.ringHead]
		landed := m.ready - uint64(m.pages-1)*perPage
		if landed > now {
			return
		}
		page := m.page
		t.state[page] = pageResident
		t.resident++
		t.inflight--
		if m.eager {
			t.stamp[page] = t.eagerSeq
			t.eagerSeq++
			t.eager[page] = true
		} else {
			t.stamp[page] = t.seq
			t.seq++
		}
		t.heapPush(page)
		t.admitAt[page] = now
		if t.pstate[page] == pfInflight {
			t.pstate[page] = pfArrived
		}
		t.stats.MigrationsIn++
		if t.OnFaultIn != nil {
			t.OnFaultIn(page, landed-m.faultAt)
		}
		m.page++
		m.pages--
		if m.pages == 0 {
			t.ringHead = (t.ringHead + 1) % len(t.ring)
			t.ringLen--
		}
	}
}

// NextEvent reports the earliest future cycle at which the tier can act
// (the head batch's next page landing), or ^uint64(0) when idle.
// Callers fold this into the fast-forward horizon; prefetch completions
// are ordinary ring entries, so they are nextEvent sources like any
// demand fault.
func (t *Tier) NextEvent(now uint64) uint64 {
	if t.ringLen == 0 {
		return ^uint64(0)
	}
	m := t.ring[t.ringHead]
	r := m.ready - uint64(m.pages-1)*t.perPageTransfer()
	if r <= now {
		return now + 1
	}
	return r
}

// SaveState serializes all mutable tier state, including in-flight
// prefetch batches, the stride table, and the per-page prefetch
// accounting. Geometry (page size, frame count, sub-page granularity)
// is derived from config and covered by the snapshot fingerprint, so
// only a consistency header is written. The victim heap is not
// serialized: eviction order depends only on the stamps, so LoadState
// rebuilds it.
func (t *Tier) SaveState(e *snapshot.Encoder) {
	e.U64(t.cfg.PageBytes)
	e.Int(t.cfg.Frames)
	e.Int(t.numPages)
	e.U64(t.cfg.SubPageBytes)
	e.U64(t.seq)
	e.U64(t.eagerSeq)
	e.U64(t.streamSeq)
	e.U64(t.busyUntil)
	e.Int(t.resident)
	e.Int(t.inflight)
	st := make([]byte, t.numPages)
	for i, s := range t.state {
		st[i] = byte(s)
	}
	e.Bytes(st)
	db := make([]byte, t.numPages)
	for i, d := range t.dirty {
		if d {
			db[i] = 1
		}
	}
	e.Bytes(db)
	pb := make([]byte, t.numPages)
	for i, p := range t.pstate {
		pb[i] = byte(p)
	}
	e.Bytes(pb)
	eb := make([]byte, t.numPages)
	for i, g := range t.eager {
		if g {
			eb[i] = 1
		}
	}
	e.Bytes(eb)
	if t.subPerPage > 1 {
		for _, v := range t.subdirty {
			e.U64(v)
		}
	}
	for _, v := range t.stamp {
		e.U64(v)
	}
	for _, v := range t.admitAt {
		e.U64(v)
	}
	for i := range t.streams {
		s := t.streams[i]
		e.Int(int(s.last))
		e.Int(int(s.stride))
		e.Int(int(s.conf))
		e.U64(s.used)
	}
	e.Int(t.ringLen)
	for i := 0; i < t.ringLen; i++ {
		m := t.ring[(t.ringHead+i)%len(t.ring)]
		e.Int(m.page)
		e.Int(m.pages)
		if m.eager {
			e.Int(1)
		} else {
			e.Int(0)
		}
		e.U64(m.faultAt)
		e.U64(m.ready)
	}
	e.U64(t.stats.Faults)
	e.U64(t.stats.Replays)
	e.U64(t.stats.MigrationsIn)
	e.U64(t.stats.Evictions)
	e.U64(t.stats.WritebacksDirty)
	e.U64(t.stats.WritebacksClean)
	e.U64(t.stats.Thrash)
	e.U64(t.stats.BytesIn)
	e.U64(t.stats.BytesOut)
	e.U64(t.stats.MetaCycles)
	e.U64(t.stats.Prefetches)
	e.U64(t.stats.PrefUseful)
	e.U64(t.stats.PrefLate)
	e.U64(t.stats.PrefUseless)
	e.U64(t.stats.Batches)
}

// LoadState restores state saved by SaveState into a tier built from
// the same configuration.
func (t *Tier) LoadState(d *snapshot.Decoder) {
	if pb := d.U64(); pb != t.cfg.PageBytes {
		d.Failf("hostmem: snapshot page size %d, config %d", pb, t.cfg.PageBytes)
		return
	}
	if fr := d.Int(); fr != t.cfg.Frames {
		d.Failf("hostmem: snapshot frames %d, config %d", fr, t.cfg.Frames)
		return
	}
	if np := d.Int(); np != t.numPages {
		d.Failf("hostmem: snapshot pages %d, config %d", np, t.numPages)
		return
	}
	if sp := d.U64(); sp != t.cfg.SubPageBytes {
		d.Failf("hostmem: snapshot sub-page size %d, config %d", sp, t.cfg.SubPageBytes)
		return
	}
	t.seq = d.U64()
	t.eagerSeq = d.U64()
	t.streamSeq = d.U64()
	t.busyUntil = d.U64()
	t.resident = d.Int()
	t.inflight = d.Int()
	st := d.Bytes()
	if d.Err() != nil {
		return
	}
	if len(st) != t.numPages {
		d.Failf("hostmem: state length %d, want %d", len(st), t.numPages)
		return
	}
	for i, b := range st {
		t.state[i] = pageState(b)
	}
	db := d.Bytes()
	if d.Err() != nil {
		return
	}
	if len(db) != t.numPages {
		d.Failf("hostmem: dirty length %d, want %d", len(db), t.numPages)
		return
	}
	for i, b := range db {
		t.dirty[i] = b != 0
	}
	pb := d.Bytes()
	if d.Err() != nil {
		return
	}
	if len(pb) != t.numPages {
		d.Failf("hostmem: prefetch-state length %d, want %d", len(pb), t.numPages)
		return
	}
	for i, b := range pb {
		t.pstate[i] = prefState(b)
	}
	eb := d.Bytes()
	if d.Err() != nil {
		return
	}
	if len(eb) != t.numPages {
		d.Failf("hostmem: eager length %d, want %d", len(eb), t.numPages)
		return
	}
	for i, b := range eb {
		t.eager[i] = b != 0
	}
	if t.subPerPage > 1 {
		for i := range t.subdirty {
			t.subdirty[i] = d.U64()
		}
	}
	for i := range t.stamp {
		t.stamp[i] = d.U64()
	}
	for i := range t.admitAt {
		t.admitAt[i] = d.U64()
	}
	for i := range t.streams {
		t.streams[i] = faultStream{
			last:   int32(d.Int()),
			stride: int32(d.Int()),
			conf:   uint8(d.Int()),
			used:   d.U64(),
		}
	}
	n := d.Int()
	if d.Err() != nil {
		return
	}
	if n < 0 || n > len(t.ring) {
		d.Failf("hostmem: ring length %d, cap %d", n, len(t.ring))
		return
	}
	t.ringHead = 0
	t.ringLen = n
	for i := 0; i < n; i++ {
		m := migration{page: d.Int(), pages: d.Int()}
		m.eager = d.Int() != 0
		m.faultAt = d.U64()
		m.ready = d.U64()
		t.ring[i] = m
	}
	t.stats = Stats{
		Faults:          d.U64(),
		Replays:         d.U64(),
		MigrationsIn:    d.U64(),
		Evictions:       d.U64(),
		WritebacksDirty: d.U64(),
		WritebacksClean: d.U64(),
		Thrash:          d.U64(),
		BytesIn:         d.U64(),
		BytesOut:        d.U64(),
		MetaCycles:      d.U64(),
		Prefetches:      d.U64(),
		PrefUseful:      d.U64(),
		PrefLate:        d.U64(),
		PrefUseless:     d.U64(),
		Batches:         d.U64(),
	}
	// Rebuild the victim heap from the restored stamps: eviction order
	// depends only on the stamp values, not on heap layout history.
	t.heapLen = 0
	for p := 0; p < t.numPages; p++ {
		if t.state[p] == pageResident {
			t.heapPush(p)
		}
	}
}
