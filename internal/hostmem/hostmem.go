// Package hostmem models a host-backed memory tier behind a
// page-granularity demand-migration boundary (UVM-style). The GPU side
// owns a fixed number of device page frames; accesses to non-resident
// pages fault, start a PCIe-modeled migration, and are retried by the
// requester until the page arrives (AMD XNACK retry-on-fault). When the
// working set exceeds the frame budget a victim page is evicted per the
// configured policy, with dirty pages paying a writeback transfer.
//
// The tier is deliberately engine-agnostic: it knows nothing about SMs,
// crossbars, or the MEE. The embedding layer drives it through three
// calls — Access on every admission attempt, Tick once per cycle, and
// NextEvent for the fast-forward horizon — and observes migrations via
// the OnFaultIn/OnEvict callbacks (metadata teardown/re-establishment
// and telemetry live there). All state is preallocated at construction;
// the per-cycle path performs no heap allocation.
package hostmem

import (
	"fmt"

	"shmgpu/internal/snapshot"
)

// Policy selects the eviction victim among resident pages.
type Policy uint8

const (
	// PolicyLRU evicts the resident page with the oldest access stamp.
	PolicyLRU Policy = iota
	// PolicyFIFO evicts the resident page with the oldest admission.
	PolicyFIFO
)

// ParsePolicy maps a config string to a Policy. The empty string means
// the default (LRU).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "lru":
		return PolicyLRU, nil
	case "fifo":
		return PolicyFIFO, nil
	}
	return PolicyLRU, fmt.Errorf("hostmem: unknown migration policy %q", s)
}

func (p Policy) String() string {
	if p == PolicyFIFO {
		return "fifo"
	}
	return "lru"
}

// Integrity selects how security metadata is re-established when a page
// faults in from the host tier.
type Integrity uint8

const (
	// IntegrityRebuild tears down device-side counter/MAC/BMT coverage
	// on eviction and fully rebuilds it on fault-in (the expensive,
	// device-trust-only mode).
	IntegrityRebuild Integrity = iota
	// IntegrityHostSide keeps integrity metadata valid while the page
	// lives host-side, so fault-in only re-keys the page (cheap mode;
	// trusts the host-side MEE to maintain coverage).
	IntegrityHostSide
)

// ParseIntegrity maps a config string to an Integrity mode. The empty
// string means the default (full rebuild).
func ParseIntegrity(s string) (Integrity, error) {
	switch s {
	case "", "rebuild":
		return IntegrityRebuild, nil
	case "hostside":
		return IntegrityHostSide, nil
	}
	return IntegrityRebuild, fmt.Errorf("hostmem: unknown host integrity mode %q", s)
}

func (i Integrity) String() string {
	if i == IntegrityHostSide {
		return "hostside"
	}
	return "rebuild"
}

// Default timing parameters. PCIe numbers approximate a Gen3 x16 link
// relative to the simulator's GPU core clock: ~600 cycles one-way
// latency and 16 B/cycle of migration bandwidth.
const (
	DefaultPageBytes         = 64 << 10
	DefaultPCIeLatency       = 600
	DefaultPCIeBytesPerCycle = 16
	DefaultMaxInflight       = 16
	DefaultThrashWindow      = 4096
	// Metadata re-establishment cost per fault-in: a full BMT/counter
	// rebuild walks the page's counter and MAC blocks; host-side
	// integrity only re-keys.
	DefaultRebuildCycles  = 256
	DefaultHostSideCycles = 32
)

// Config parameterizes a Tier. Zero values take the package defaults,
// except Frames which must be set explicitly (the embedding layer
// derives it from the oversubscription ratio).
type Config struct {
	PageBytes         uint64
	Frames            int // device page frames available to this tier
	Policy            Policy
	Integrity         Integrity
	PCIeLatency       uint64 // one-way link latency, cycles
	PCIeBytesPerCycle uint64 // migration bandwidth
	MetaCycles        uint64 // per-fault metadata cost; 0 = by Integrity
	MaxInflight       int    // migration ring capacity
	ThrashWindow      uint64 // eviction younger than this counts as thrash
}

func (c *Config) applyDefaults() {
	if c.PageBytes == 0 {
		c.PageBytes = DefaultPageBytes
	}
	if c.PCIeLatency == 0 {
		c.PCIeLatency = DefaultPCIeLatency
	}
	if c.PCIeBytesPerCycle == 0 {
		c.PCIeBytesPerCycle = DefaultPCIeBytesPerCycle
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.ThrashWindow == 0 {
		c.ThrashWindow = DefaultThrashWindow
	}
	if c.MetaCycles == 0 {
		if c.Integrity == IntegrityHostSide {
			c.MetaCycles = DefaultHostSideCycles
		} else {
			c.MetaCycles = DefaultRebuildCycles
		}
	}
}

// Validate rejects configurations the tier cannot run.
func (c Config) Validate() error {
	if c.PageBytes != 0 && c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("hostmem: PageBytes %d is not a power of two", c.PageBytes)
	}
	if c.Frames < 0 {
		return fmt.Errorf("hostmem: negative Frames %d", c.Frames)
	}
	return nil
}

// Stats counts tier activity since construction (or load).
type Stats struct {
	Faults          uint64 // migrations started
	Replays         uint64 // retried accesses to a faulted/busy page
	MigrationsIn    uint64 // migrations completed
	Evictions       uint64
	WritebacksDirty uint64
	WritebacksClean uint64
	Thrash          uint64 // evictions within ThrashWindow of admission
	BytesIn         uint64
	BytesOut        uint64
	MetaCycles      uint64 // cumulative metadata re-establishment cycles
}

// AccessResult classifies one admission attempt.
type AccessResult uint8

const (
	// Admit: page resident (or untracked); the access proceeds.
	Admit AccessResult = iota
	// Fault: page was host-resident; a migration just started. The
	// access must be retried (pause-and-replay).
	Fault
	// Stall: page is migrating, or the migration ring is full. The
	// access must be retried.
	Stall
)

type pageState uint8

const (
	pageHost pageState = iota
	pageMigrating
	pageResident
)

type migration struct {
	page    int
	faultAt uint64 // cycle the fault was taken
	ready   uint64 // cycle the page becomes resident
}

// Tier tracks page residency for one contiguous working set starting at
// address 0 (the simulator places all workload buffers there). Pages at
// or beyond the working set are untracked and always admit.
type Tier struct {
	cfg      Config
	numPages int

	state   []pageState
	dirty   []bool
	stamp   []uint64 // LRU: last-access seq; FIFO: admission seq
	admitAt []uint64 // admission cycle, for thrash detection

	seq       uint64 // monotonic access sequence (cycle-tie-free LRU)
	ring      []migration
	ringHead  int
	ringLen   int
	busyUntil uint64 // PCIe link serialization point
	resident  int

	stats Stats

	// OnFaultIn fires when a migration completes (page now resident);
	// latency is fault-to-ready in cycles. OnEvict fires when a victim
	// is dropped to the host tier; thrash marks an eviction within
	// ThrashWindow of the victim's admission. Both may be nil. Bound
	// once before the run; never called concurrently.
	OnFaultIn func(page int, latency uint64)
	OnEvict   func(page int, dirty, thrash bool)
}

// New builds a tier covering workingSetBytes. Frames ≥ the page count
// means the working set fits: every page is prepopulated resident and
// the tier never faults, so behaviour is byte-identical to no tier at
// all (the migration-equivalence property).
func New(cfg Config, workingSetBytes uint64) (*Tier, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workingSetBytes == 0 {
		workingSetBytes = cfg.PageBytes
	}
	numPages := int((workingSetBytes + cfg.PageBytes - 1) / cfg.PageBytes)
	if numPages < 1 {
		numPages = 1
	}
	if cfg.Frames < 1 {
		cfg.Frames = 1
	}
	if cfg.Frames > numPages {
		cfg.Frames = numPages
	}
	t := &Tier{
		cfg:      cfg,
		numPages: numPages,
		state:    make([]pageState, numPages),
		dirty:    make([]bool, numPages),
		stamp:    make([]uint64, numPages),
		admitAt:  make([]uint64, numPages),
		ring:     make([]migration, cfg.MaxInflight),
	}
	// Initial placement: the host→device setup copy fills the frame
	// budget in page order before the run starts, so only the overflow
	// demand-migrates. Placement is free (no stats): when the working
	// set fits (Frames == numPages) the tier never faults and is
	// indistinguishable from tier-off (the migration-equivalence
	// property).
	for p := 0; p < cfg.Frames; p++ {
		t.state[p] = pageResident
		t.stamp[p] = t.seq
		t.seq++
	}
	t.resident = cfg.Frames
	return t, nil
}

// NumPages reports the tracked page count.
func (t *Tier) NumPages() int { return t.numPages }

// Resident reports how many tracked pages are device-resident.
func (t *Tier) Resident() int { return t.resident }

// Frames reports the effective device frame budget.
func (t *Tier) Frames() int { return t.cfg.Frames }

// PageBytes reports the effective page size.
func (t *Tier) PageBytes() uint64 { return t.cfg.PageBytes }

// Stats returns a copy of the activity counters.
func (t *Tier) Stats() Stats { return t.stats }

// InflightMigrations reports how many migrations are in flight.
func (t *Tier) InflightMigrations() int { return t.ringLen }

// PageOf maps an address to its page index (may be ≥ NumPages for
// addresses outside the tracked working set).
func (t *Tier) PageOf(addr uint64) int { return int(addr / t.cfg.PageBytes) }

// PageRange returns the [lo, hi) address span of a tracked page.
func (t *Tier) PageRange(page int) (lo, hi uint64) {
	lo = uint64(page) * t.cfg.PageBytes
	return lo, lo + t.cfg.PageBytes
}

// IsResident reports whether a page is device-resident (untracked pages
// count as resident).
func (t *Tier) IsResident(page int) bool {
	if page < 0 || page >= t.numPages {
		return true
	}
	return t.state[page] == pageResident
}

// Access attempts to admit one memory access at cycle now. Admit means
// the access proceeds; Fault/Stall mean the requester must hold the
// access at the head of its queue and retry next cycle.
func (t *Tier) Access(addr uint64, write bool, now uint64) AccessResult {
	page := int(addr / t.cfg.PageBytes)
	if page >= t.numPages {
		return Admit
	}
	switch t.state[page] {
	case pageResident:
		if t.cfg.Policy == PolicyLRU {
			t.stamp[page] = t.seq
			t.seq++
		}
		if write {
			t.dirty[page] = true
		}
		return Admit
	case pageMigrating:
		t.stats.Replays++
		return Stall
	}
	// Host-resident: take the fault if a migration slot is free.
	if t.ringLen == t.cfg.MaxInflight {
		t.stats.Replays++
		return Stall
	}
	if t.resident+t.ringLen >= t.cfg.Frames && !t.evictOne(now) {
		// Every frame is reserved by an in-flight migration.
		t.stats.Replays++
		return Stall
	}
	// Transfers serialize on the link; latency and the metadata
	// re-establishment pipeline across back-to-back migrations.
	transfer := t.cfg.PageBytes / t.cfg.PCIeBytesPerCycle
	if transfer == 0 {
		transfer = 1
	}
	start := now
	if t.busyUntil > start {
		start = t.busyUntil
	}
	t.busyUntil = start + transfer
	ready := start + transfer + t.cfg.PCIeLatency + t.cfg.MetaCycles
	t.state[page] = pageMigrating
	t.stats.Faults++
	t.stats.BytesIn += t.cfg.PageBytes
	t.stats.MetaCycles += t.cfg.MetaCycles
	t.ring[(t.ringHead+t.ringLen)%len(t.ring)] = migration{page: page, faultAt: now, ready: ready}
	t.ringLen++
	return Fault
}

// evictOne drops the policy victim to the host tier, charging a dirty
// writeback to the shared link when needed. Returns false when no
// resident victim exists.
func (t *Tier) evictOne(now uint64) bool {
	victim := -1
	var best uint64
	for p := 0; p < t.numPages; p++ {
		if t.state[p] != pageResident {
			continue
		}
		if victim < 0 || t.stamp[p] < best {
			victim = p
			best = t.stamp[p]
		}
	}
	if victim < 0 {
		return false
	}
	wasDirty := t.dirty[victim]
	t.state[victim] = pageHost
	t.dirty[victim] = false
	t.resident--
	t.stats.Evictions++
	if wasDirty {
		t.stats.WritebacksDirty++
		t.stats.BytesOut += t.cfg.PageBytes
		transfer := t.cfg.PageBytes / t.cfg.PCIeBytesPerCycle
		if transfer == 0 {
			transfer = 1
		}
		if t.busyUntil < now {
			t.busyUntil = now
		}
		t.busyUntil += transfer
	} else {
		t.stats.WritebacksClean++
	}
	thrash := now-t.admitAt[victim] < t.cfg.ThrashWindow
	if thrash {
		t.stats.Thrash++
	}
	if t.OnEvict != nil {
		t.OnEvict(victim, wasDirty, thrash)
	}
	return true
}

// Tick completes migrations whose transfer has finished. Ready cycles
// are monotonic along the ring (the link is serialized), so popping
// from the head preserves completion order.
func (t *Tier) Tick(now uint64) {
	for t.ringLen > 0 {
		m := t.ring[t.ringHead]
		if m.ready > now {
			return
		}
		t.ringHead = (t.ringHead + 1) % len(t.ring)
		t.ringLen--
		t.state[m.page] = pageResident
		t.resident++
		t.stamp[m.page] = t.seq
		t.seq++
		t.admitAt[m.page] = now
		t.stats.MigrationsIn++
		if t.OnFaultIn != nil {
			t.OnFaultIn(m.page, m.ready-m.faultAt)
		}
	}
}

// NextEvent reports the earliest future cycle at which the tier can act
// (the head migration's completion), or ^uint64(0) when idle. Callers
// fold this into the fast-forward horizon.
func (t *Tier) NextEvent(now uint64) uint64 {
	if t.ringLen == 0 {
		return ^uint64(0)
	}
	r := t.ring[t.ringHead].ready
	if r <= now {
		return now + 1
	}
	return r
}

// SaveState serializes all mutable tier state. Geometry (page size,
// frame count) is derived from config and covered by the snapshot
// fingerprint, so only a consistency header is written.
func (t *Tier) SaveState(e *snapshot.Encoder) {
	e.U64(t.cfg.PageBytes)
	e.Int(t.cfg.Frames)
	e.Int(t.numPages)
	e.U64(t.seq)
	e.U64(t.busyUntil)
	e.Int(t.resident)
	st := make([]byte, t.numPages)
	for i, s := range t.state {
		st[i] = byte(s)
	}
	e.Bytes(st)
	db := make([]byte, t.numPages)
	for i, d := range t.dirty {
		if d {
			db[i] = 1
		}
	}
	e.Bytes(db)
	for _, v := range t.stamp {
		e.U64(v)
	}
	for _, v := range t.admitAt {
		e.U64(v)
	}
	e.Int(t.ringLen)
	for i := 0; i < t.ringLen; i++ {
		m := t.ring[(t.ringHead+i)%len(t.ring)]
		e.Int(m.page)
		e.U64(m.faultAt)
		e.U64(m.ready)
	}
	e.U64(t.stats.Faults)
	e.U64(t.stats.Replays)
	e.U64(t.stats.MigrationsIn)
	e.U64(t.stats.Evictions)
	e.U64(t.stats.WritebacksDirty)
	e.U64(t.stats.WritebacksClean)
	e.U64(t.stats.Thrash)
	e.U64(t.stats.BytesIn)
	e.U64(t.stats.BytesOut)
	e.U64(t.stats.MetaCycles)
}

// LoadState restores state saved by SaveState into a tier built from
// the same configuration.
func (t *Tier) LoadState(d *snapshot.Decoder) {
	if pb := d.U64(); pb != t.cfg.PageBytes {
		d.Failf("hostmem: snapshot page size %d, config %d", pb, t.cfg.PageBytes)
		return
	}
	if fr := d.Int(); fr != t.cfg.Frames {
		d.Failf("hostmem: snapshot frames %d, config %d", fr, t.cfg.Frames)
		return
	}
	if np := d.Int(); np != t.numPages {
		d.Failf("hostmem: snapshot pages %d, config %d", np, t.numPages)
		return
	}
	t.seq = d.U64()
	t.busyUntil = d.U64()
	t.resident = d.Int()
	st := d.Bytes()
	if d.Err() != nil {
		return
	}
	if len(st) != t.numPages {
		d.Failf("hostmem: state length %d, want %d", len(st), t.numPages)
		return
	}
	for i, b := range st {
		t.state[i] = pageState(b)
	}
	db := d.Bytes()
	if d.Err() != nil {
		return
	}
	if len(db) != t.numPages {
		d.Failf("hostmem: dirty length %d, want %d", len(db), t.numPages)
		return
	}
	for i, b := range db {
		t.dirty[i] = b != 0
	}
	for i := range t.stamp {
		t.stamp[i] = d.U64()
	}
	for i := range t.admitAt {
		t.admitAt[i] = d.U64()
	}
	n := d.Int()
	if d.Err() != nil {
		return
	}
	if n < 0 || n > len(t.ring) {
		d.Failf("hostmem: ring length %d, cap %d", n, len(t.ring))
		return
	}
	t.ringHead = 0
	t.ringLen = n
	for i := 0; i < n; i++ {
		t.ring[i] = migration{page: d.Int(), faultAt: d.U64(), ready: d.U64()}
	}
	t.stats = Stats{
		Faults:          d.U64(),
		Replays:         d.U64(),
		MigrationsIn:    d.U64(),
		Evictions:       d.U64(),
		WritebacksDirty: d.U64(),
		WritebacksClean: d.U64(),
		Thrash:          d.U64(),
		BytesIn:         d.U64(),
		BytesOut:        d.U64(),
		MetaCycles:      d.U64(),
	}
}
