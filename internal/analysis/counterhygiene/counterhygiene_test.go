package counterhygiene_test

import (
	"testing"

	"shmgpu/internal/analysis/analysistest"
	"shmgpu/internal/analysis/counterhygiene"
)

func TestCounterhygiene(t *testing.T) {
	tests := []struct {
		name string
		pkgs []string
	}{
		{name: "naming rules", pkgs: []string{"metrics"}},
		{name: "cross-package ownership", pkgs: []string{"owner_a", "owner_b"}},
		{name: "registry-defining package exempt", pkgs: []string{"stats"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", counterhygiene.Analyzer, tt.pkgs...)
		})
	}
}
