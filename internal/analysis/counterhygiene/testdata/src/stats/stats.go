// Package stats is a fixture mirror of the real stats.Registry API surface
// (the analyzer matches the type by package name + type name).
package stats

// Registry is a named counter bag.
type Registry struct {
	counters map[string]uint64
}

// Add increments counter name by n.
func (r *Registry) Add(name string, n uint64) {
	if r.counters == nil {
		r.counters = make(map[string]uint64)
	}
	r.counters[name] += n
}

// Inc increments counter name by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }
