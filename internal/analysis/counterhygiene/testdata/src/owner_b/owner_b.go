// Package owner_b also writes shared_counter, violating single-package
// ownership; its private counter is fine.
package owner_b

import "stats"

var reg stats.Registry

func record() {
	reg.Inc("shared_counter") // want `counter "shared_counter" is written by package owner_b but also by owner_a`
	reg.Inc("owner_b_private")
}
