// Package metrics exercises the per-package counterhygiene rules: names
// must be statically known and lowercase_snake.
package metrics

import (
	"fmt"

	"stats"
)

const wellKnown = "requests_total"

var reg stats.Registry

func goodWrites(i int) {
	reg.Inc("cache_hits")
	reg.Add("blocks_served", 4)
	reg.Inc(wellKnown)
	reg.Inc(fmt.Sprintf("det_timeout_bucket_%d", i))
}

func badCharset() {
	reg.Inc("CacheHits")                 // want `counter name "CacheHits" is not lowercase_snake`
	reg.Add("hit-rate", 1)               // want `counter name "hit-rate" is not lowercase_snake`
	reg.Inc(fmt.Sprintf("Bucket_%d", 3)) // want `counter name "Bucket_0" is not lowercase_snake`
}

func dynamicName(name string) {
	reg.Inc(name) // want `counter name must be a constant string or Sprintf of one`
}
