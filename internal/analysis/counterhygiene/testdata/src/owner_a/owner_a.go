// Package owner_a owns the shared_counter name (lexicographically first
// writer); its writes are accepted.
package owner_a

import "stats"

var reg stats.Registry

func record() {
	reg.Inc("shared_counter")
	reg.Inc("owner_a_private")
}
