// Package counterhygiene enforces the stats.Registry naming and ownership
// contract. Registry counters flow verbatim into the Prometheus export
// (shmgpu_registry_total{name="..."}) and into byte-stable trace output, so
// a counter name must (a) be statically known at the write site, (b) use
// the lowercase_snake charset Prometheus label values standardize on, and
// (c) be written by exactly one owning package — two packages incrementing
// the same name silently merge unrelated quantities at export time.
//
// Rules (a) and (b) are per-package and run under both `go vet -vettool`
// and standalone mode. Rule (c) needs the whole tree at once and therefore
// runs only in standalone mode (shmlint ./...), via the Finish hook.
package counterhygiene

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"sort"

	"shmgpu/internal/analysis"
)

// Analyzer is the counterhygiene check.
var Analyzer = &analysis.Analyzer{
	Name: "counterhygiene",
	Doc: "enforce stats.Registry counter naming (lowercase_snake, static) " +
		"and single-package ownership",
	Run:    run,
	Finish: finish,
}

// Write records one Registry.Add/Inc call site.
type Write struct {
	Name string // resolved counter name (format verbs normalized)
	Pos  token.Pos
	Pkg  string
}

// Result is the per-package output consumed by Finish.
type Result struct {
	Writes []Write
}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// verbRE matches fmt verbs in a Sprintf-constructed counter name so the
// charset check can normalize them (e.g. det_timeout_bucket_%d → ..._0).
var verbRE = regexp.MustCompile(`%[-+ #0-9.]*[a-zA-Z]`)

func run(pass *analysis.Pass) (any, error) {
	res := &Result{}
	pass.Inspect(func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if pass.IsTestFile(n.Pos()) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Add" && sel.Sel.Name != "Inc") || len(call.Args) < 1 {
			return true
		}
		recv := pass.TypesInfo.TypeOf(sel.X)
		if recv == nil || !analysis.NamedType(recv, "stats", "Registry") {
			return true
		}
		// The package defining Registry forwards names through its own API
		// (Inc and Merge call Add with a variable); those are not counter
		// write sites.
		if pass.Pkg.Name() == "stats" {
			return true
		}
		name, static := counterName(pass, call.Args[0])
		if !static {
			pass.Reportf(call.Args[0].Pos(),
				"counter name must be a constant string or Sprintf of one: "+
					"dynamic names defeat the ownership and export contracts")
			return true
		}
		if !nameRE.MatchString(name) {
			pass.Reportf(call.Args[0].Pos(),
				"counter name %q is not lowercase_snake ([a-z][a-z0-9_]*): "+
					"it is exported verbatim as a Prometheus label value", name)
			return true
		}
		res.Writes = append(res.Writes, Write{Name: name, Pos: call.Pos(), Pkg: pass.Pkg.Path()})
		return true
	})
	if len(res.Writes) == 0 {
		return nil, nil
	}
	return res, nil
}

// counterName resolves the statically known value of a counter-name
// expression: any constant string (literal or named const), or an
// fmt.Sprintf call whose format string is constant (verbs normalized to
// "0" for the charset check).
func counterName(pass *analysis.Pass, e ast.Expr) (string, bool) {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sprintf" {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "fmt" {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return verbRE.ReplaceAllString(constant.StringVal(tv.Value), "0"), true
}

// finish applies the single-owner rule across the whole tree: every counter
// name must be written from exactly one package.
func finish(f *analysis.Finishing) {
	type site struct {
		pkg string
		pos token.Pos
	}
	byName := map[string][]site{}
	for _, res := range f.Results {
		r, ok := res.(*Result)
		if !ok {
			continue
		}
		for _, w := range r.Writes {
			byName[w.Name] = append(byName[w.Name], site{pkg: w.Pkg, pos: w.Pos})
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName { //shmlint:allow maprange — keys are sorted before use
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := byName[name]
		pkgs := map[string]token.Pos{}
		var order []string
		for _, s := range sites {
			if _, seen := pkgs[s.pkg]; !seen {
				pkgs[s.pkg] = s.pos
				order = append(order, s.pkg)
			}
		}
		if len(order) < 2 {
			continue
		}
		sort.Strings(order)
		owner := order[0]
		for _, pkg := range order[1:] {
			f.Reportf(pkgs[pkg],
				"counter %q is written by package %s but also by %s: "+
					"each counter must have exactly one owning package",
				name, pkg, owner)
		}
	}
}
