package waiver

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const src = `package p

// doc for f.
//
//shm:tick-root
func f() {
	x := 1 //shm:alloc-ok grows to steady capacity
	_ = x
	y := 2 //shmlint:allow maprange,unitcheck — justified
	_ = y
	z := 3 //shm:sync-ok //shm:alloc-ok two markers one line
	_ = z
}

func g() { //shm:fork-root
}

type s struct {
	// a is per-shard.
	//
	//shm:sharded
	a []int
	b []int //shm:shard-bounds
	c []int
}
`

func parse(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func decls(f *ast.File) (fn, gn *ast.FuncDecl, st *ast.StructType) {
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Name.Name == "f" {
				fn = d
			} else {
				gn = d
			}
		case *ast.GenDecl:
			st = d.Specs[0].(*ast.TypeSpec).Type.(*ast.StructType)
		}
	}
	return
}

func stmtPos(fn *ast.FuncDecl, i int) token.Pos { return fn.Body.List[i].Pos() }

func TestLineMarkers(t *testing.T) {
	fset, f := parse(t)
	sh := New(fset, []*ast.File{f})
	fn, _, _ := decls(f)

	if !sh.Line("alloc-ok", stmtPos(fn, 0)) {
		t.Error("alloc-ok marker on statement line not found")
	}
	if sh.Line("sync-ok", stmtPos(fn, 0)) {
		t.Error("sync-ok reported on a line that only has alloc-ok")
	}
	if sh.Line("alloc-ok", stmtPos(fn, 1)) {
		t.Error("marker leaked to the following line")
	}
	if !sh.Line("sync-ok", stmtPos(fn, 4)) || !sh.Line("alloc-ok", stmtPos(fn, 4)) {
		t.Error("two markers on one line: both must be found")
	}
}

func TestAllow(t *testing.T) {
	fset, f := parse(t)
	sh := New(fset, []*ast.File{f})
	fn, _, _ := decls(f)

	pos := stmtPos(fn, 2)
	if !sh.Allow("maprange", pos) || !sh.Allow("unitcheck", pos) {
		t.Error("comma-separated allow list: both checks must be allowed")
	}
	if sh.Allow("nodeterminism", pos) {
		t.Error("allow reported for a check not on the list")
	}
	if sh.Allow("maprange", stmtPos(fn, 0)) {
		t.Error("allow reported on a line without an allow comment")
	}
}

func TestFuncMarkers(t *testing.T) {
	fset, f := parse(t)
	sh := New(fset, []*ast.File{f})
	fn, gn, _ := decls(f)

	if !sh.Func("tick-root", fn) {
		t.Error("doc-comment tick-root marker not found")
	}
	if sh.Func("fork-root", fn) {
		t.Error("fork-root reported on f, which only has tick-root")
	}
	if !sh.Func("fork-root", gn) {
		t.Error("same-line fork-root marker on g not found")
	}
}

func TestFieldMarkers(t *testing.T) {
	fset, f := parse(t)
	sh := New(fset, []*ast.File{f})
	_, _, st := decls(f)

	if !sh.Field("sharded", st.Fields.List[0]) {
		t.Error("doc-comment sharded marker on field a not found")
	}
	if !sh.Field("shard-bounds", st.Fields.List[1]) {
		t.Error("trailing-comment shard-bounds marker on field b not found")
	}
	if sh.Field("sharded", st.Fields.List[2]) {
		t.Error("unannotated field c reported as sharded")
	}
}

func TestOutOfRangePos(t *testing.T) {
	fset, f := parse(t)
	sh := New(fset, []*ast.File{f})
	if sh.Line("alloc-ok", token.NoPos) || sh.Allow("maprange", token.NoPos) {
		t.Error("NoPos must never match an annotation")
	}
}
