// Package waiver is the one parser for the repository's source-comment
// waiver and marker annotations. Two spellings exist, with deliberately
// different weight:
//
//   - `//shmlint:allow <check>[,<check>...] — <justification>` silences a
//     specific analyzer check on the same source line. It is the ordinary
//     lint escape hatch.
//
//   - `//shm:<name> [justification]` is a structural marker consumed by the
//     flow-sensitive analyzers: entry-point roots (`//shm:tick-root`,
//     `//shm:fork-root`), field classifications (`//shm:sharded`,
//     `//shm:shard-bounds`), path pruning (`//shm:cold`), vetted-goroutine
//     waivers (`//shm:parallel-ok`), and per-site waivers
//     (`//shm:alloc-ok`, `//shm:sync-ok`, `//shm:shard-ok`). The distinct
//     prefix keeps load-bearing contract annotations greppable separately
//     from ordinary allows.
//
// Both spellings attach to source positions the same way: a line annotation
// applies to the nodes starting on its line, and declaration annotations
// (functions, struct fields) may also sit in the declaration's doc comment.
// Every analyzer resolves annotations through a Sheet so the syntax is
// defined exactly once.
package waiver

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// shmRE matches one `//shm:<name>` marker; names are lowercase with dashes.
var shmRE = regexp.MustCompile(`//shm:([a-z][a-z0-9-]*)`)

// allowRE matches the `//shmlint:allow a,b` form.
var allowRE = regexp.MustCompile(`//shmlint:allow\s+([a-z0-9_,-]+)`)

// Sheet indexes the waiver comments of a set of files sharing one FileSet.
// Indexes are built lazily per file and cached; a Sheet is not safe for
// concurrent use (analyzer passes are single-goroutine).
type Sheet struct {
	fset  *token.FileSet
	files []*ast.File
	idx   map[*ast.File]*fileIndex
}

type fileIndex struct {
	shm   map[int][]string // line -> //shm: names on that line
	allow map[int][]string // line -> //shmlint:allow names on that line
}

// New builds a Sheet over files (all positioned in fset).
func New(fset *token.FileSet, files []*ast.File) *Sheet {
	return &Sheet{fset: fset, files: files, idx: map[*ast.File]*fileIndex{}}
}

// fileFor locates the file containing pos.
func (s *Sheet) fileFor(pos token.Pos) *ast.File {
	for _, f := range s.files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

func (s *Sheet) indexFor(f *ast.File) *fileIndex {
	if ix, ok := s.idx[f]; ok {
		return ix
	}
	ix := &fileIndex{shm: map[int][]string{}, allow: map[int][]string{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			ln := s.fset.Position(c.Pos()).Line
			for _, m := range shmRE.FindAllStringSubmatch(c.Text, -1) {
				ix.shm[ln] = append(ix.shm[ln], m[1])
			}
			if m := allowRE.FindStringSubmatch(c.Text); m != nil {
				for _, name := range strings.Split(m[1], ",") {
					ix.allow[ln] = append(ix.allow[ln], strings.TrimSpace(name))
				}
			}
		}
	}
	s.idx[f] = ix
	return ix
}

// Line reports whether the line containing pos carries `//shm:<name>`.
func (s *Sheet) Line(name string, pos token.Pos) bool {
	f := s.fileFor(pos)
	if f == nil {
		return false
	}
	for _, n := range s.indexFor(f).shm[s.fset.Position(pos).Line] {
		if n == name {
			return true
		}
	}
	return false
}

// Allow reports whether the line containing pos carries
// `//shmlint:allow <check>` for the named check.
func (s *Sheet) Allow(check string, pos token.Pos) bool {
	f := s.fileFor(pos)
	if f == nil {
		return false
	}
	for _, n := range s.indexFor(f).allow[s.fset.Position(pos).Line] {
		if n == check {
			return true
		}
	}
	return false
}

// commentsHave reports whether any comment in cg carries `//shm:<name>`.
func commentsHave(name string, cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		for _, m := range shmRE.FindAllStringSubmatch(c.Text, -1) {
			if m[1] == name {
				return true
			}
		}
	}
	return false
}

// Func reports whether a function declaration carries `//shm:<name>`,
// either in its doc comment or on its opening line. fn is a *ast.FuncDecl
// or *ast.FuncLit (literals have no doc; only the line form applies).
func (s *Sheet) Func(name string, fn ast.Node) bool {
	if d, ok := fn.(*ast.FuncDecl); ok && commentsHave(name, d.Doc) {
		return true
	}
	return s.Line(name, fn.Pos())
}

// Field reports whether a struct field declaration carries `//shm:<name>`
// in its doc comment, trailing line comment, or anywhere on its line.
func (s *Sheet) Field(name string, f *ast.Field) bool {
	if commentsHave(name, f.Doc) || commentsHave(name, f.Comment) {
		return true
	}
	return s.Line(name, f.Pos())
}
