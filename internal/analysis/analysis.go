// Package analysis is a minimal, dependency-free reimplementation of the
// go/analysis analyzer model (golang.org/x/tools/go/analysis) sufficient to
// host this repository's lint suite. It exists because the simulator's
// correctness rules — determinism, counter hygiene, probe guarding, unit
// discipline — are mechanical properties of the source tree that belong in
// a vet-style gate, and the canonical framework is an external module this
// repository does not vendor.
//
// The model is the familiar one: an Analyzer owns a Run function invoked
// once per package with a Pass carrying the parsed files, type information,
// and a Report sink. Two extensions cover this repo's needs:
//
//   - Run may return a per-package result (any JSON-able value), and an
//     Analyzer may declare a Finish hook. In a whole-tree standalone run
//     (shmlint ./...), Finish is called once after every package's Run with
//     all results, enabling cross-package checks such as counter-ownership.
//     Under `go vet -vettool` the driver is invoked per package and Finish
//     never runs; per-package checks still apply.
//
//   - Source lines can silence a specific check with a trailing
//     `//shmlint:allow <check>` comment; the annotation is an explicit,
//     greppable justification marker. Pass.Allowed consults it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"shmgpu/internal/analysis/waiver"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's identifier: lower-case, no spaces. It doubles
	// as the vettool flag name and the //shmlint:allow annotation key.
	Name string
	// Doc is the one-paragraph description shown by `shmlint help`.
	Doc string
	// Run analyzes one package and reports findings via pass.Report. The
	// returned value is collected for Finish in whole-tree runs; analyzers
	// without cross-package state return nil.
	Run func(pass *Pass) (any, error)
	// Finish, if non-nil, runs once after all packages in a standalone
	// whole-tree invocation, receiving every package's Run result keyed by
	// import path. It is skipped under go vet (per-package invocation).
	Finish func(f *Finishing)
}

// Pass carries one package's analysis inputs to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// waivers lazily indexes the package's waiver comments.
	waivers *waiver.Sheet
}

// Finishing carries all per-package results to an Analyzer's Finish hook.
type Finishing struct {
	// Results maps package import path to the value its Run returned.
	// Packages whose Run returned nil are omitted.
	Results map[string]any
	// Fset is the file set shared by every analyzed package, so positions
	// recorded inside results resolve correctly.
	Fset *token.FileSet
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Reportf formats and reports a diagnostic at pos.
func (f *Finishing) Reportf(pos token.Pos, format string, args ...any) {
	f.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Waivers returns the package's lazily built waiver sheet, the single
// parser for `//shmlint:allow` and `//shm:*` annotations.
func (p *Pass) Waivers() *waiver.Sheet {
	if p.waivers == nil {
		p.waivers = waiver.New(p.Fset, p.Files)
	}
	return p.waivers
}

// Allowed reports whether the line containing pos carries a
// `//shmlint:allow <check>` annotation for the named check. The annotation
// must appear in a comment on the same source line as the flagged node.
func (p *Pass) Allowed(check string, pos token.Pos) bool {
	return p.Waivers().Allow(check, pos)
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// NamedType reports whether t (after unwrapping pointers) is the named type
// pkgName.typeName, matching by package *name* rather than full import path
// so test fixtures with short paths behave like the real tree.
func NamedType(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// Inspect walks every file in the pass in source order, calling fn for each
// node; fn returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
