// Package nodeterminism forbids nondeterminism sources inside the
// simulator's cycle-accurate core. A timing simulator must produce
// bit-identical results for identical (workload, scheme, seed) inputs; the
// easiest way to lose that property is an innocent-looking call to
// time.Now, a read of the global math/rand source, iteration over a map
// whose order leaks into model state, or a goroutine racing the tick loop.
//
// The check applies only to the restricted core packages (see Restricted);
// harness, CLI, and reporting code may use wall-clock time freely. A line
// may opt out with `//shmlint:allow maprange` (etc.) when the construct is
// provably order-insensitive — the annotation doubles as the written
// justification.
//
// Goroutines have their own, stricter annotation: `//shm:parallel-ok` on the
// spawning line marks a vetted fork/join worker (the fixed pool behind the
// shard engine and the sweep prefetcher) whose batches join before model
// state is read, so goroutine scheduling cannot leak into results. Ad-hoc
// `go` statements in the core stay flagged; the distinct spelling keeps
// parallel-engine waivers greppable separately from ordinary lint allows.
package nodeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"shmgpu/internal/analysis"
)

// Analyzer is the nodeterminism check.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc: "forbid wall-clock time, global randomness, map-order dependence, " +
		"and goroutines in the cycle-accurate simulator core",
	Run: run,
}

// Restricted lists the import-path segments that mark a package as part of
// the deterministic core.
var Restricted = []string{
	"internal/gpu",
	"internal/dram",
	"internal/cache",
	"internal/secmem",
	"internal/bmt",
	"internal/detectors",
	"internal/pool",
}

// restrictedPath reports whether pkgPath falls in the deterministic core.
func restrictedPath(pkgPath string) bool {
	for _, seg := range Restricted {
		if pkgPath == seg ||
			strings.HasSuffix(pkgPath, "/"+seg) ||
			strings.Contains(pkgPath, "/"+seg+"/") ||
			strings.HasPrefix(pkgPath, seg+"/") {
			return true
		}
	}
	return false
}

// globalRandAllowed are math/rand package-level functions that construct
// explicitly seeded state rather than touching the global source.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !restrictedPath(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Inspect(func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if pass.IsTestFile(n.Pos()) {
			return false
		}
		switch node := n.(type) {
		case *ast.GoStmt:
			// The fork/join-worker waiver, parsed by the shared waiver
			// sheet; it must sit on the same line as the go statement.
			if pass.Waivers().Line("parallel-ok", node.Pos()) {
				return true
			}
			pass.Reportf(node.Pos(),
				"goroutine spawned in deterministic core package %s; the simulator is single-threaded per run "+
					"(a vetted fork/join pool worker may be waived with //shm:parallel-ok on the spawning line)",
				pass.Pkg.Path())
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(node.X)
			if t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap && !pass.Allowed("maprange", node.Pos()) {
					pass.Reportf(node.Pos(),
						"range over map in deterministic core: iteration order is random; "+
							"sort the keys or annotate with //shmlint:allow maprange if order-insensitive")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, node)
		}
		return true
	})
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Methods (e.g. (*rand.Rand).Intn on an explicitly seeded source) are
	// fine; only package-level functions are screened.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
			pass.Reportf(call.Pos(),
				"call to time.%s in deterministic core: model time must come from the cycle argument",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !globalRandAllowed[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to global-source rand.%s in deterministic core: draw from a *rand.Rand seeded from the run manifest",
				fn.Name())
		}
	}
}
