package nodeterminism_test

import (
	"testing"

	"shmgpu/internal/analysis/analysistest"
	"shmgpu/internal/analysis/nodeterminism"
)

func TestNodeterminism(t *testing.T) {
	tests := []struct {
		name string
		pkgs []string
	}{
		{name: "restricted core package", pkgs: []string{"core/internal/gpu"}},
		{name: "unrestricted harness package", pkgs: []string{"harness"}},
		{name: "both together", pkgs: []string{"core/internal/gpu", "harness"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", nodeterminism.Analyzer, tt.pkgs...)
		})
	}
}
