// Package gpu is a fixture standing in for a deterministic-core package
// (its import path ends in internal/gpu, putting it in the restricted set).
package gpu

import (
	"math/rand"
	"time"
)

func clock() int64 {
	t := time.Now() // want `call to time\.Now in deterministic core`
	return t.Unix()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `call to time\.Since in deterministic core`
}

func globalDraw() int {
	return rand.Intn(8) // want `call to global-source rand\.Intn in deterministic core`
}

// seededDraw is the accepted pattern: an explicit source from a run seed.
func seededDraw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(8)
}

func sumMap(m map[int]int) int {
	total := 0
	for _, v := range m { // want `range over map in deterministic core`
		total += v
	}
	return total
}

// sumMapAllowed is the accepted pattern: the annotation states the loop is
// order-insensitive.
func sumMapAllowed(m map[int]int) int {
	total := 0
	for _, v := range m { //shmlint:allow maprange — commutative sum
		total += v
	}
	return total
}

// sumSlice ranges over a slice, which is ordered and always fine.
func sumSlice(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

func spawn(done chan struct{}) {
	go func() { // want `goroutine spawned in deterministic core`
		close(done)
	}()
}

// spawnWorkers is the accepted pattern: fixed fork/join pool workers whose
// batches always join before model state is read, waived line-by-line with
// the written justification.
func spawnWorkers(work func()) {
	for i := 0; i < 4; i++ {
		go work() //shm:parallel-ok — fixed pool worker; every batch joins before Run returns
	}
}
