// Package harness is a fixture for a non-core package: wall-clock time,
// global randomness, goroutines, and map iteration are all legitimate here,
// so none of these lines may be flagged.
package harness

import (
	"math/rand"
	"time"
)

func wallClock() time.Time { return time.Now() }

func jitter() int { return rand.Intn(100) }

func keys(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func background(done chan struct{}) {
	go close(done)
}
