package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src (one package) and returns the CFG of the named function
// plus the parsed file.
func build(t *testing.T, src, fn string) (*Graph, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return New(fd.Body), f
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil
}

// callStmt finds the ExprStmt calling the named function.
func callStmt(t *testing.T, f *ast.File, callee string) ast.Stmt {
	t.Helper()
	var found ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := es.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == callee {
				found = es
				return false
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("call to %s not found", callee)
	}
	return found
}

func TestIfElseJoins(t *testing.T) {
	src := `package p
func f(c bool) {
	if c {
		a()
	} else {
		b()
	}
	j()
}
func a(); func b(); func j()
`
	g, f := build(t, src, "f")
	ba := g.BlockOf(callStmt(t, f, "a"))
	bb := g.BlockOf(callStmt(t, f, "b"))
	bj := g.BlockOf(callStmt(t, f, "j"))
	if ba == bb || ba == bj {
		t.Fatal("then, else, and join statements must be in distinct blocks")
	}
	reach := g.Reachable()
	if !reach[ba] || !reach[bb] || !reach[bj] {
		t.Fatal("all three blocks must be reachable")
	}
	// Both branch ends must flow into the join block.
	into := 0
	for _, bl := range g.Blocks {
		for _, s := range bl.Succs {
			if s == bj {
				into++
			}
		}
	}
	if into < 2 {
		t.Fatalf("join block has %d predecessors, want >= 2", into)
	}
}

func TestReturnMakesDeadCode(t *testing.T) {
	src := `package p
func f() {
	a()
	return
	b()
}
func a(); func b()
`
	g, f := build(t, src, "f")
	reach := g.Reachable()
	if !reach[g.BlockOf(callStmt(t, f, "a"))] {
		t.Fatal("statement before return must be reachable")
	}
	if reach[g.BlockOf(callStmt(t, f, "b"))] {
		t.Fatal("statement after return must be unreachable")
	}
}

func TestLoopBreakContinue(t *testing.T) {
	src := `package p
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 1 {
			continue
		}
		if i == 2 {
			break
		}
		body()
	}
	after()
}
func body(); func after()
`
	g, f := build(t, src, "f")
	reach := g.Reachable()
	if !reach[g.BlockOf(callStmt(t, f, "body"))] {
		t.Fatal("loop body must be reachable")
	}
	if !reach[g.BlockOf(callStmt(t, f, "after"))] {
		t.Fatal("code after the loop must be reachable")
	}
}

func TestRangeLoop(t *testing.T) {
	src := `package p
func f(xs []int) {
	for range xs {
		body()
	}
	after()
}
func body(); func after()
`
	g, f := build(t, src, "f")
	reach := g.Reachable()
	if !reach[g.BlockOf(callStmt(t, f, "body"))] || !reach[g.BlockOf(callStmt(t, f, "after"))] {
		t.Fatal("range body and continuation must both be reachable")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	src := `package p
func f(x int) {
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
	j()
}
func a(); func b(); func c(); func j()
`
	g, f := build(t, src, "f")
	ba := g.BlockOf(callStmt(t, f, "a"))
	bb := g.BlockOf(callStmt(t, f, "b"))
	// The fallthrough clause must flow into the next clause's body.
	linked := false
	for _, s := range ba.Succs {
		if s == bb {
			linked = true
		}
	}
	if !linked {
		t.Fatal("fallthrough clause must have the next case body as a successor")
	}
	reach := g.Reachable()
	for _, name := range []string{"a", "b", "c", "j"} {
		if !reach[g.BlockOf(callStmt(t, f, name))] {
			t.Fatalf("case body %s must be reachable", name)
		}
	}
}

func TestLabeledBreak(t *testing.T) {
	src := `package p
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 3 {
				break outer
			}
			inner()
		}
	}
	after()
}
func inner(); func after()
`
	g, f := build(t, src, "f")
	reach := g.Reachable()
	if !reach[g.BlockOf(callStmt(t, f, "inner"))] || !reach[g.BlockOf(callStmt(t, f, "after"))] {
		t.Fatal("inner body and post-loop code must be reachable with a labeled break")
	}
}

// noReturn treats panic and any call to a function literally named "fail"
// as no-return.
func noReturn(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic" || fun.Name == "fail"
	}
	return false
}

func TestPanicOnlyDirect(t *testing.T) {
	src := `package p
func f(bad bool) {
	if bad {
		a()
		panic("x")
	}
	j()
}
func a(); func j()
`
	g, f := build(t, src, "f")
	po := g.PanicOnly(noReturn)
	if !po[g.BlockOf(callStmt(t, f, "a"))] {
		t.Fatal("statement in a panic-terminated branch must be panic-only")
	}
	if po[g.BlockOf(callStmt(t, f, "j"))] {
		t.Fatal("the join continuation must not be panic-only")
	}
}

func TestPanicOnlyTransitive(t *testing.T) {
	src := `package p
func f(x int) {
	if x > 0 {
		pre()
		if x > 1 {
			panic("a")
		} else {
			fail()
		}
	}
	j()
}
func pre(); func j(); func fail()
`
	g, f := build(t, src, "f")
	po := g.PanicOnly(noReturn)
	if !po[g.BlockOf(callStmt(t, f, "pre"))] {
		t.Fatal("block whose every successor panics must be panic-only")
	}
	if po[g.BlockOf(callStmt(t, f, "j"))] {
		t.Fatal("continuation must not be panic-only")
	}
}

func TestPanicInNestedFuncLitDoesNotTerminate(t *testing.T) {
	src := `package p
func f() {
	g := func() { panic("inner") }
	g()
	j()
}
func j()
`
	g, f := build(t, src, "f")
	po := g.PanicOnly(noReturn)
	if po[g.BlockOf(callStmt(t, f, "j"))] {
		t.Fatal("a panic inside a nested function literal must not make the outer block panic-only")
	}
}

func TestSelectBlocks(t *testing.T) {
	src := `package p
func f(a, b chan int) {
	select {
	case <-a:
		x()
	case <-b:
		y()
	}
	j()
}
func x(); func y(); func j()
`
	g, f := build(t, src, "f")
	reach := g.Reachable()
	for _, name := range []string{"x", "y", "j"} {
		if !reach[g.BlockOf(callStmt(t, f, name))] {
			t.Fatalf("select clause %s must be reachable", name)
		}
	}
	if g.BlockOf(callStmt(t, f, "x")) == g.BlockOf(callStmt(t, f, "y")) {
		t.Fatal("select clauses must be distinct blocks")
	}
}

func TestGoto(t *testing.T) {
	src := `package p
func f(c bool) {
	if c {
		goto done
	}
	mid()
done:
	end()
}
func mid(); func end()
`
	g, f := build(t, src, "f")
	reach := g.Reachable()
	if !reach[g.BlockOf(callStmt(t, f, "mid"))] || !reach[g.BlockOf(callStmt(t, f, "end"))] {
		t.Fatal("both paths around a forward goto must be reachable")
	}
}
