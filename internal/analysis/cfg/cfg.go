// Package cfg builds intraprocedural control-flow graphs from Go ASTs, in
// the spirit of golang.org/x/tools/go/cfg but dependency-free, for the
// flow-sensitive analyzers in this repository's lint suite.
//
// A Graph is a list of basic blocks; each block holds the statements and
// control expressions (if/for/switch conditions) that execute in it, in
// order, plus successor edges. Construction is purely syntactic: it handles
// if/else, for (including range), switch and type switch (with
// fallthrough), select, labeled statements, break/continue/goto with and
// without labels, and return. Defer and go statements are recorded as
// ordinary nodes (they transfer no intraprocedural control).
//
// Two derived facts drive the analyzers:
//
//   - Reachable marks blocks reachable from the entry, so diagnostics are
//     never raised on dead code.
//
//   - PanicOnly marks blocks from which every path terminates in a call to
//     a no-return function (panic, os.Exit, invariant.Failf, ...) before
//     the function can return. The hot-path analyzers skip those blocks:
//     an allocation that only feeds a panic message is failure-path cost,
//     not steady-state cost.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the statements and control expressions executed in this
	// block, in order. Control expressions (conditions, switch tags, range
	// operands) appear as ast.Expr entries.
	Nodes []ast.Node
	// Succs are the successor blocks.
	Succs []*Block
}

// Graph is the CFG of one function body.
type Graph struct {
	// Blocks holds every block; Blocks[0] is the entry.
	Blocks []*Block
	// blockOf maps each statement to the block it starts in.
	blockOf map[ast.Stmt]*Block
}

// Entry returns the entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// BlockOf returns the block in which stmt executes, or nil for statements
// outside the graph (e.g. inside a nested function literal).
func (g *Graph) BlockOf(stmt ast.Stmt) *Block { return g.blockOf[stmt] }

// builder tracks construction state.
type builder struct {
	g *Graph
	// cur is the block under construction; nil after a terminator.
	cur *Block
	// breakTo/continueTo are the innermost unlabeled targets.
	breakTo, continueTo *Block
	// labels maps a label name to its break/continue targets and, for
	// goto, the labeled statement's own block.
	labels map[string]*labelInfo
	// pendingLabeled is the labeled statement whose child is about to be
	// built, so `L: for ...` binds break/continue targets to L.
	pendingLabeled *ast.LabeledStmt
}

type labelInfo struct {
	breakTo    *Block
	continueTo *Block
	target     *Block   // block the labeled statement starts
	pending    []*Block // gotos seen before the label (forward goto)
}

// New builds the CFG of a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{blockOf: map[ast.Stmt]*Block{}}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	return g
}

func (b *builder) newBlock() *Block {
	bl := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, bl)
	return bl
}

// add records a node in the current block (starting a fresh unreachable
// block if the previous one was terminated, so trailing dead statements
// still belong to some block).
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	if s, ok := n.(ast.Stmt); ok {
		if _, seen := b.g.blockOf[s]; !seen {
			b.g.blockOf[s] = b.cur
		}
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// edge links from -> to (nil from means the path was terminated).
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) labelFor(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.add(s)
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s)
		b.add(s.Cond)
		cond := b.cur
		b.cur = b.newBlock()
		b.edge(cond, b.cur)
		b.stmt(s.Body)
		thenEnd := b.cur
		var elseEnd *Block
		if s.Else != nil {
			b.cur = b.newBlock()
			b.edge(cond, b.cur)
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		done := b.newBlock()
		if s.Else == nil {
			b.edge(cond, done)
		}
		b.edge(thenEnd, done)
		b.edge(elseEnd, done)
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(s)
		if s.Cond != nil {
			b.add(s.Cond)
		}
		done := b.newBlock()
		if s.Cond != nil {
			b.edge(head, done)
		}
		body := b.newBlock()
		b.edge(head, body)
		post := b.newBlock()

		outerBreak, outerCont := b.breakTo, b.continueTo
		b.breakTo, b.continueTo = done, post
		if li := b.pendingLabel(s); li != nil {
			li.breakTo, li.continueTo = done, post
		}
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, post)
		b.breakTo, b.continueTo = outerBreak, outerCont

		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = done

	case *ast.RangeStmt:
		b.add(s)
		b.add(s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		done := b.newBlock()
		b.edge(head, done)
		body := b.newBlock()
		b.edge(head, body)

		outerBreak, outerCont := b.breakTo, b.continueTo
		b.breakTo, b.continueTo = done, head
		if li := b.pendingLabel(s); li != nil {
			li.breakTo, li.continueTo = done, head
		}
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.breakTo, b.continueTo = outerBreak, outerCont
		b.cur = done

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var bodyList []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init = sw.Init
			bodyList = sw.Body.List
		case *ast.TypeSwitchStmt:
			init = sw.Init
			bodyList = sw.Body.List
		}
		if init != nil {
			b.stmt(init)
		}
		b.add(s)
		if sw, ok := s.(*ast.SwitchStmt); ok && sw.Tag != nil {
			b.add(sw.Tag)
		}
		if sw, ok := s.(*ast.TypeSwitchStmt); ok {
			b.add(sw.Assign)
		}
		head := b.cur
		done := b.newBlock()

		outerBreak := b.breakTo
		b.breakTo = done
		if li := b.pendingLabel(s); li != nil {
			li.breakTo = done
		}
		// Build case bodies; fallthrough links a clause end to the next
		// clause's body.
		var caseBodies []*Block
		var caseEnds []*Block
		hasDefault := false
		for _, cc := range bodyList {
			clause := cc.(*ast.CaseClause)
			if clause.List == nil {
				hasDefault = true
			}
			cb := b.newBlock()
			b.edge(head, cb)
			caseBodies = append(caseBodies, cb)
			b.cur = cb
			for _, e := range clause.List {
				b.add(e)
			}
			b.stmtList(clause.Body)
			caseEnds = append(caseEnds, b.cur)
		}
		for i, end := range caseEnds {
			if end == nil {
				continue
			}
			// A clause ending in fallthrough flows to the next clause body
			// instead of done.
			if fallsThrough(bodyList[i].(*ast.CaseClause)) && i+1 < len(caseBodies) {
				b.edge(end, caseBodies[i+1])
			} else {
				b.edge(end, done)
			}
		}
		if !hasDefault {
			b.edge(head, done)
		}
		b.breakTo = outerBreak
		b.cur = done

	case *ast.SelectStmt:
		b.add(s)
		head := b.cur
		done := b.newBlock()
		outerBreak := b.breakTo
		b.breakTo = done
		if li := b.pendingLabel(s); li != nil {
			li.breakTo = done
		}
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(head, cb)
			b.cur = cb
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.edge(b.cur, done)
		}
		b.breakTo = outerBreak
		b.cur = done

	case *ast.LabeledStmt:
		li := b.labelFor(s.Label.Name)
		target := b.newBlock()
		b.edge(b.cur, target)
		for _, from := range li.pending {
			b.edge(from, target)
		}
		li.pending = nil
		li.target = target
		b.cur = target
		b.pendingLabeled = s
		b.stmt(s.Stmt)
		b.pendingLabeled = nil

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				b.edge(b.cur, b.labelFor(s.Label.Name).breakTo)
			} else {
				b.edge(b.cur, b.breakTo)
			}
			b.cur = nil
		case token.CONTINUE:
			if s.Label != nil {
				b.edge(b.cur, b.labelFor(s.Label.Name).continueTo)
			} else {
				b.edge(b.cur, b.continueTo)
			}
			b.cur = nil
		case token.GOTO:
			li := b.labelFor(s.Label.Name)
			if li.target != nil {
				b.edge(b.cur, li.target)
			} else {
				li.pending = append(li.pending, b.cur)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the switch builder via fallsThrough; the statement
			// itself is just recorded.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	default:
		// Plain statements: declarations, assignments, expressions, send,
		// inc/dec, defer, go.
		b.add(s)
	}
}

// fallsThrough reports whether a case clause ends in a fallthrough.
func fallsThrough(cc *ast.CaseClause) bool {
	if len(cc.Body) == 0 {
		return false
	}
	br, ok := cc.Body[len(cc.Body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// pendingLabel returns the label info attached to stmt when it is the
// direct child of a labeled statement (so `L: for ...` lets `break L` and
// `continue L` resolve), clearing the pending marker.
func (b *builder) pendingLabel(stmt ast.Stmt) *labelInfo {
	if b.pendingLabeled != nil && b.pendingLabeled.Stmt == stmt {
		li := b.labelFor(b.pendingLabeled.Label.Name)
		return li
	}
	return nil
}

// Reachable returns the set of blocks reachable from the entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(bl *Block) {
		if bl == nil || seen[bl] {
			return
		}
		seen[bl] = true
		for _, s := range bl.Succs {
			walk(s)
		}
	}
	if len(g.Blocks) > 0 {
		walk(g.Blocks[0])
	}
	return seen
}

// PanicOnly returns the set of blocks from which every path reaches a
// no-return call (as judged by isNoReturn) before the function can return.
// A block is panic-only if it contains a no-return call itself, or if it
// has successors and all of them are panic-only. Blocks that can fall off
// the end of the function (no successors, no no-return call) can return.
func (g *Graph) PanicOnly(isNoReturn func(*ast.CallExpr) bool) map[*Block]bool {
	direct := map[*Block]bool{}
	for _, bl := range g.Blocks {
		for _, n := range bl.Nodes {
			// Compound statements appear in the block that starts them, but
			// their bodies live in other blocks; descending into them here
			// would attribute a branch's panic to the branching block.
			switch n.(type) {
			case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
				*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt, *ast.BlockStmt:
				continue
			}
			stop := false
			ast.Inspect(n, func(m ast.Node) bool {
				if stop {
					return false
				}
				switch m := m.(type) {
				case *ast.FuncLit:
					return false // nested function bodies don't terminate us
				case *ast.CallExpr:
					if isNoReturn(m) {
						stop = true
						return false
					}
				}
				return true
			})
			if stop {
				direct[bl] = true
				break
			}
		}
	}
	panicOnly := map[*Block]bool{}
	for bl := range direct {
		panicOnly[bl] = true
	}
	for changed := true; changed; {
		changed = false
		for _, bl := range g.Blocks {
			if panicOnly[bl] || len(bl.Succs) == 0 {
				continue
			}
			all := true
			for _, s := range bl.Succs {
				if !panicOnly[s] {
					all = false
					break
				}
			}
			if all {
				panicOnly[bl] = true
				changed = true
			}
		}
	}
	return panicOnly
}
