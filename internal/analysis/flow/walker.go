package flow

import (
	"go/ast"
	"go/token"
	"go/types"

	"shmgpu/internal/analysis/cfg"
)

// allocPkgs are stdlib packages whose exported functions allocate on
// essentially every call (formatting, string building, sorting adapters).
// A hot-path call into one of them is flagged as an allocation site even
// though the allocation happens outside the module.
var allocPkgs = map[string]bool{
	"fmt": true, "strings": true, "strconv": true,
	"errors": true, "sort": true, "bytes": true, "log": true,
}

// posRange is a half-open source region used for //shm:cold and
// sanitizer-branch pruning.
type posRange struct{ lo, hi token.Pos }

// funcWalker summarizes one function body.
type funcWalker struct {
	c *collector
	f *Func

	declared map[types.Object]bool // objects declared in this function
	env      map[types.Object]Bases
	cold     []posRange
	callFuns map[ast.Expr]bool      // expressions used as a call's Fun
	goCalls  map[*ast.CallExpr]bool // calls spawned by go statements
	lits     []*ast.FuncLit         // direct literals, source order
}

func (w *funcWalker) info() *types.Info { return w.c.pf.Info }

func (w *funcWalker) run() {
	w.declared = map[types.Object]bool{}
	w.env = map[types.Object]Bases{}
	w.callFuns = map[ast.Expr]bool{}
	w.goCalls = map[*ast.CallExpr]bool{}
	w.f.Eff.WritesParam = make([]bool, len(w.f.ParamObjs))

	w.assignLitKeys()
	w.collectDeclared()
	w.collectCold()
	w.solveEnv()
	w.scanBlocks()
	w.collectWritesAndFlows()
	w.summarizeLits()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// assignLitKeys gives every direct function literal its stable key in
// source order (nested literals get theirs when their own walker runs).
func (w *funcWalker) assignLitKeys() {
	ast.Inspect(w.f.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
			w.c.litKeys[lit] = FuncKey(string(w.f.Key) + "$" + itoa(len(w.lits)))
			return false
		}
		return true
	})
}

// summarizeLits recursively summarizes the direct literals.
func (w *funcWalker) summarizeLits() {
	for i, lit := range w.lits {
		w.c.summarize(w.c.litKeys[lit], w.f.Display+"$"+itoa(i+1), lit, lit.Body, nil)
	}
}

// collectDeclared records every object declared inside the function
// (receiver, parameters, locals); identifiers resolving to variables
// outside this set — and not package-level — are captures.
func (w *funcWalker) collectDeclared() {
	if w.f.RecvObj != nil {
		w.declared[w.f.RecvObj] = true
	}
	for _, p := range w.f.ParamObjs {
		w.declared[p] = true
	}
	// Inspect the whole declaration, not just the body: named result
	// parameters are declared in the signature, and writing them is a
	// local return value, not a capture.
	ast.Inspect(w.f.Decl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.info().Defs[id]; obj != nil {
				w.declared[obj] = true
			}
		}
		return true
	})
}

// collectCold gathers //shm:cold statement ranges and sanitizer-only
// branches (`if invariant.Enabled() { ... }` bodies): paths whose cost is
// amortized or debug-only, excluded from steady-state accounting. Nested
// literals own their cold ranges.
func (w *funcWalker) collectCold() {
	ast.Inspect(w.f.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		// //shm:cold marks amortized/debug paths; //shm:fork-dispatch marks
		// a worker pool's dynamic task invocation — the queued tasks are
		// analyzed from their own //shm:fork-root entry points, so following
		// the dispatch edge would conflate every pool user's closures.
		if w.c.pf.Sheet.Line("cold", stmt.Pos()) || w.c.pf.Sheet.Line("fork-dispatch", stmt.Pos()) {
			w.cold = append(w.cold, posRange{stmt.Pos(), stmt.End()})
		}
		if ifs, ok := stmt.(*ast.IfStmt); ok && w.isSanitizerCond(ifs.Cond) {
			w.cold = append(w.cold, posRange{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
}

// isSanitizerCond reports whether cond is (or contains) a call to
// invariant.Enabled, the runtime sanitizer gate.
func (w *funcWalker) isSanitizerCond(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := w.info().Uses[sel.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Name() == "invariant" && fn.Name() == "Enabled" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func (w *funcWalker) inCold(pos token.Pos) bool {
	for _, r := range w.cold {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

// scanBlocks walks the CFG and classifies every call, allocation, and
// synchronization site with its pruning state.
func (w *funcWalker) scanBlocks() {
	g := cfg.New(w.f.Body)
	reach := g.Reachable()
	panicOnly := g.PanicOnly(func(call *ast.CallExpr) bool {
		return IsNoReturn(w.info(), call)
	})
	for _, bl := range g.Blocks {
		hot := reach[bl] && !panicOnly[bl]
		for _, n := range bl.Nodes {
			// Compound statements whose children live in their own blocks
			// are skipped, but the statement node itself marks sync points.
			switch s := n.(type) {
			case *ast.SelectStmt:
				w.sync(s.Pos(), "select", !hot)
				continue
			case *ast.RangeStmt:
				if t := w.info().TypeOf(s.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						w.sync(s.Pos(), "range over channel", !hot)
					}
				}
				continue
			}
			if isCompound(n) {
				continue
			}
			w.scanNode(n, !hot)
		}
	}
}

// isCompound reports statements whose children are distributed across
// other CFG blocks (so inspecting them here would double-count).
func isCompound(n ast.Node) bool {
	switch n.(type) {
	case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
		*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt, *ast.BlockStmt:
		return true
	}
	return false
}

// scanNode classifies sites in one CFG node, skipping nested literals.
func (w *funcWalker) scanNode(n ast.Node, pruned bool) {
	// Direct sync statements.
	switch s := n.(type) {
	case *ast.SendStmt:
		w.sync(s.Arrow, "channel send", pruned)
	case *ast.GoStmt:
		// The spawn is a sync site; the spawned call is NOT a call edge
		// (the work happens on another goroutine, outside this path).
		w.sync(s.Pos(), "goroutine spawn", pruned)
		w.goCalls[s.Call] = true
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			w.alloc(m.Pos(), "function literal (closure) is heap-allocated when it captures", pruned)
			return false
		case *ast.CallExpr:
			w.call(m, pruned)
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := w.info().TypeOf(ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							w.alloc(ix.Pos(), "map assignment may grow the table", pruned)
						}
					}
				}
			}
		case *ast.CompositeLit:
			if t := w.info().TypeOf(m); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					w.alloc(m.Pos(), "slice literal", pruned)
				case *types.Map:
					w.alloc(m.Pos(), "map literal", pruned)
				}
			}
		case *ast.UnaryExpr:
			switch m.Op {
			case token.AND:
				if _, ok := ast.Unparen(m.X).(*ast.CompositeLit); ok {
					w.alloc(m.Pos(), "&composite literal escapes to the heap", pruned)
				}
			case token.ARROW:
				w.sync(m.Pos(), "channel receive", pruned)
			}
		case *ast.BinaryExpr:
			if m.Op == token.ADD && !w.isConst(m) {
				if t := w.info().TypeOf(m); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						w.alloc(m.Pos(), "string concatenation", pruned)
					}
				}
			}
		case *ast.SelectorExpr:
			if sel := w.info().Selections[m]; sel != nil &&
				sel.Kind() == types.MethodVal && !w.callFuns[m] {
				w.alloc(m.Pos(), "bound method value allocates its receiver binding", pruned)
			}
		}
		return true
	})
}

func (w *funcWalker) isConst(e ast.Expr) bool {
	tv, ok := w.info().Types[e]
	return ok && tv.Value != nil
}

func (w *funcWalker) alloc(pos token.Pos, what string, pruned bool) {
	w.f.Allocs = append(w.f.Allocs, Site{
		Pos: pos, What: what,
		Waived: w.c.pf.Sheet.Line("alloc-ok", pos),
		Pruned: pruned || w.inCold(pos),
	})
}

func (w *funcWalker) sync(pos token.Pos, what string, pruned bool) {
	w.f.Syncs = append(w.f.Syncs, Site{
		Pos: pos, What: what,
		Waived: w.c.pf.Sheet.Line("sync-ok", pos),
		Pruned: pruned || w.inCold(pos),
	})
}

// call classifies one call expression: conversions (possible allocations),
// builtins (append/make/new/close), sync-package calls, static calls,
// interface calls, and calls through func values.
func (w *funcWalker) call(call *ast.CallExpr, pruned bool) {
	w.callFuns[call.Fun] = true
	info := w.info()
	pruned = pruned || w.inCold(call.Pos())

	// Type conversions are not calls; string/byte-slice conversions copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && !w.isConst(call.Args[0]) {
			dst := tv.Type.Underlying()
			src := info.TypeOf(call.Args[0])
			if src != nil {
				db, dOK := dst.(*types.Basic)
				_, sSlice := src.Underlying().(*types.Slice)
				sb, sbOK := src.Underlying().(*types.Basic)
				if dOK && db.Info()&types.IsString != 0 && sSlice {
					w.alloc(call.Pos(), "[]byte/[]rune-to-string conversion copies", pruned)
				}
				if _, dSlice := dst.(*types.Slice); dSlice && sbOK && sb.Info()&types.IsString != 0 {
					w.alloc(call.Pos(), "string-to-slice conversion copies", pruned)
				}
			}
		}
		return
	}

	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				w.alloc(call.Pos(), "append may grow its backing array", pruned)
			case "make":
				w.alloc(call.Pos(), "make", pruned)
			case "new":
				w.alloc(call.Pos(), "new", pruned)
			case "close":
				w.sync(call.Pos(), "channel close", pruned)
			}
			return
		}
	}

	c := Call{Pos: call.Pos(), Pruned: pruned}

	// Interface boxing at the call boundary: a concrete non-pointer value
	// passed where a parameter is interface-typed allocates.
	w.checkBoxing(call, pruned)

	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			c.Kind = CallStatic
			c.Static = FuncKeyOf(obj)
		case *types.Var:
			c.Kind = CallDyn
			c.DynKeys = w.dynKeys(fun)
		default:
			return
		}
	case *ast.SelectorExpr:
		sel := info.Selections[fun]
		if sel == nil {
			// Qualified identifier: pkg.Func or pkg.Var.
			switch obj := info.Uses[fun.Sel].(type) {
			case *types.Func:
				w.classifyPkgCall(obj, call, pruned)
				c.Kind = CallStatic
				c.Static = FuncKeyOf(obj)
			case *types.Var:
				c.Kind = CallDyn
				c.DynKeys = []string{ObjKey(obj)}
			default:
				return
			}
		} else {
			switch sel.Kind() {
			case types.MethodVal:
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					return
				}
				w.classifySyncMethod(fn, call, pruned)
				if types.IsInterface(sel.Recv()) {
					c.Kind = CallIface
					c.Method = fn.Name()
				} else {
					c.Kind = CallStatic
					c.Static = FuncKeyOf(fn)
				}
				c.RecvBases = w.basesOf(fun.X)
			case types.FieldVal:
				c.Kind = CallDyn
				c.DynKeys = w.dynKeys(fun)
			default:
				return
			}
		}
	case *ast.FuncLit:
		// Immediately-invoked literal.
		c.Kind = CallStatic
		c.Static = w.c.litKeys[fun]
	case *ast.IndexExpr:
		// Generic instantiation f[T](...) or indexing a func collection.
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Func); ok {
				c.Kind = CallStatic
				c.Static = FuncKeyOf(obj)
				break
			}
		}
		c.Kind = CallDyn
		c.DynKeys = w.dynKeys(fun)
	default:
		return
	}

	if w.goCalls[call] {
		return // spawned on another goroutine: no intraprocedural edge
	}
	for _, a := range call.Args {
		c.ArgBases = append(c.ArgBases, w.basesOf(a))
	}
	w.f.Calls = append(w.f.Calls, c)
}

// funcSources resolves the function values an expression may evaluate to:
// literals, named functions, bound methods — or, transitively, the flow
// keys of variables/fields/parameters the value is read from. w supplies
// parameter context and may be nil at package scope.
func (c *collector) funcSources(w *funcWalker, e ast.Expr) []Source {
	info := c.pf.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if k, ok := c.litKeys[e]; ok {
			return []Source{{Func: k}}
		}
	case *ast.Ident:
		switch obj := info.Uses[e].(type) {
		case *types.Func:
			return []Source{{Func: FuncKeyOf(obj)}}
		case *types.Var:
			srcs := []Source{{Key: ObjKey(obj)}}
			if w != nil {
				for i, p := range w.f.ParamObjs {
					if p == obj {
						srcs = append(srcs, Source{Key: paramKey(w.f.Key, i)})
					}
				}
			}
			return srcs
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal:
				if fn, ok := sel.Obj().(*types.Func); ok {
					return []Source{{Func: FuncKeyOf(fn)}}
				}
			case types.FieldVal:
				return []Source{{Key: ObjKey(sel.Obj())}}
			}
			return nil
		}
		switch obj := info.Uses[e.Sel].(type) {
		case *types.Func:
			return []Source{{Func: FuncKeyOf(obj)}}
		case *types.Var:
			return []Source{{Key: ObjKey(obj)}}
		}
	case *ast.IndexExpr:
		return c.funcSources(w, e.X)
	case *ast.CallExpr:
		// append(dst, f1, f2) carries dst's functions plus the appended ones;
		// conversions pass through.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				var out []Source
				for _, a := range e.Args {
					out = append(out, c.funcSources(w, a)...)
				}
				return out
			}
		}
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.funcSources(w, e.Args[0])
		}
	}
	return nil
}

// classifyPkgCall flags package-level calls into sync/atomic and the
// known-allocating stdlib packages.
func (w *funcWalker) classifyPkgCall(fn *types.Func, call *ast.CallExpr, pruned bool) {
	if fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "sync", "sync/atomic":
		w.sync(call.Pos(), "call to "+fn.Pkg().Name()+"."+fn.Name(), pruned)
	case "time":
		if fn.Name() == "Sleep" {
			w.sync(call.Pos(), "call to time.Sleep", pruned)
		}
	default:
		if allocPkgs[fn.Pkg().Path()] {
			w.alloc(call.Pos(), "call into allocating package "+fn.Pkg().Name(), pruned)
		}
	}
}

// classifySyncMethod flags method calls on sync/atomic receivers
// (mutexes, wait groups, atomic boxes).
func (w *funcWalker) classifySyncMethod(fn *types.Func, call *ast.CallExpr, pruned bool) {
	if fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "sync", "sync/atomic":
		recv := "sync"
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if name, ok := recvTypeName(sig.Recv().Type()); ok {
				recv = fn.Pkg().Name() + "." + name
			}
		}
		w.sync(call.Pos(), recv+"."+fn.Name(), pruned)
	}
}

// checkBoxing flags concrete non-pointer values passed to interface-typed
// parameters (the classic hidden hot-path allocation).
func (w *funcWalker) checkBoxing(call *ast.CallExpr, pruned bool) {
	sig, ok := w.info().TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if pi >= sig.Params().Len() {
			if !sig.Variadic() {
				break
			}
			pi = sig.Params().Len() - 1
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == sig.Params().Len()-1 {
			if sl, ok := pt.(*types.Slice); ok && !call.Ellipsis.IsValid() {
				pt = sl.Elem()
			}
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := w.info().TypeOf(arg)
		if at == nil || w.isConst(arg) {
			continue
		}
		if types.IsInterface(at) {
			continue // already boxed
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointer-to-interface conversion does not allocate
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		w.alloc(arg.Pos(), "value boxed into interface argument", pruned)
	}
}

// dynKeys names the flow keys a func-valued call expression may read from.
func (w *funcWalker) dynKeys(e ast.Expr) []string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := w.info().Uses[e].(*types.Var); ok {
			keys := []string{ObjKey(obj)}
			for i, p := range w.f.ParamObjs {
				if p == obj {
					keys = append(keys, paramKey(w.f.Key, i))
				}
			}
			return keys
		}
	case *ast.SelectorExpr:
		if sel := w.info().Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			return []string{ObjKey(sel.Obj())}
		}
		if obj, ok := w.info().Uses[e.Sel].(*types.Var); ok {
			return []string{ObjKey(obj)}
		}
	case *ast.IndexExpr:
		return w.dynKeys(e.X)
	}
	return nil
}

// typeHasRefs reports whether writes through a value of type t can be
// observed outside a copy: pointers, slices, maps, channels, funcs,
// interfaces — or aggregates containing any of those.
func typeHasRefs(t types.Type) bool {
	return typeHasRefs1(t, 0)
}

func typeHasRefs1(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return true // be conservative on exotic/recursive shapes
	}
	switch t := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if typeHasRefs1(t.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return typeHasRefs1(t.Elem(), depth+1)
	}
	return true
}

// solveEnv runs the flow-insensitive base-set fixpoint over assignments:
// each local variable accumulates the storage roots its value may alias.
func (w *funcWalker) solveEnv() {
	if w.f.RecvObj != nil && typeHasRefs(w.f.RecvObj.Type()) {
		w.env[w.f.RecvObj] = BaseRecv
	}
	for i, p := range w.f.ParamObjs {
		if typeHasRefs(p.Type()) {
			w.env[p] = BaseParam(i)
		}
	}
	for changed := true; changed; {
		changed = false
		merge := func(id *ast.Ident, b Bases) {
			obj := w.info().Defs[id]
			if obj == nil {
				obj = w.info().Uses[id]
			}
			if obj == nil || !w.declared[obj] {
				return
			}
			if t := obj.Type(); t != nil && !typeHasRefs(t) {
				return // value copies of pure-value types break aliasing
			}
			if w.env[obj]|b != w.env[obj] {
				w.env[obj] |= b
				changed = true
			}
		}
		ast.Inspect(w.f.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					b := w.basesOf(n.Rhs[0])
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							merge(id, b)
						}
					}
				} else {
					for i, lhs := range n.Lhs {
						if i >= len(n.Rhs) {
							break
						}
						if id, ok := lhs.(*ast.Ident); ok {
							merge(id, w.basesOf(n.Rhs[i]))
						}
					}
				}
			case *ast.RangeStmt:
				b := w.basesOf(n.X)
				if id, ok := n.Key.(*ast.Ident); ok {
					merge(id, b)
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					merge(id, b)
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						merge(name, w.basesOf(n.Values[i]))
					}
				}
			}
			return true
		})
	}
}

// basesOf computes the storage roots an expression's value may alias.
func (w *funcWalker) basesOf(e ast.Expr) Bases {
	if e == nil {
		return 0
	}
	if t := w.info().TypeOf(e); t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() != types.Invalid {
			return 0 // basic values are copies; strings are immutable
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.info().Uses[e]
		if obj == nil {
			obj = w.info().Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return 0
		}
		if isGlobalVar(v) {
			return BaseGlobal
		}
		if !w.declared[obj] {
			return BaseCapture
		}
		return w.env[obj]
	case *ast.SelectorExpr:
		if sel := w.info().Selections[e]; sel != nil {
			if sel.Kind() == types.FieldVal {
				return w.basesOf(e.X)
			}
			return 0 // method value: calling it is modeled via flows
		}
		// Qualified identifier pkg.Var.
		if v, ok := w.info().Uses[e.Sel].(*types.Var); ok && isGlobalVar(v) {
			return BaseGlobal
		}
		return 0
	case *ast.IndexExpr:
		return w.basesOf(e.X)
	case *ast.SliceExpr:
		return w.basesOf(e.X)
	case *ast.StarExpr:
		return w.basesOf(e.X)
	case *ast.ParenExpr:
		return w.basesOf(e.X)
	case *ast.UnaryExpr:
		return w.basesOf(e.X)
	case *ast.TypeAssertExpr:
		return w.basesOf(e.X)
	case *ast.CompositeLit:
		var b Bases
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			b |= w.basesOf(el)
		}
		return b
	case *ast.CallExpr:
		// A call's result may alias anything reachable from its receiver or
		// arguments (interior pointers: ring.At, queue.Front, ...).
		if tv, ok := w.info().Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return w.basesOf(e.Args[0])
			}
			return 0
		}
		var b Bases
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if s := w.info().Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				b |= w.basesOf(sel.X)
			}
		}
		for _, a := range e.Args {
			b |= w.basesOf(a)
		}
		return b
	}
	return 0
}

// isGlobalVar reports whether v is a package-level variable.
func isGlobalVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// collectWritesAndFlows records write effects (for shardsafety's effect
// composition) and func-value flows in one pass.
func (w *funcWalker) collectWritesAndFlows() {
	info := w.info()
	ast.Inspect(w.f.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if n.Tok != token.DEFINE {
					w.writeTo(lhs, n.Pos())
				}
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				}
				if rhs != nil {
					w.registerFlow(lhs, rhs)
				}
			}
		case *ast.IncDecStmt:
			w.writeTo(n.X, n.Pos())
		case *ast.RangeStmt:
			if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
				if w.isFuncish(id) {
					for _, src := range w.c.funcSources(w, n.X) {
						if obj := firstObj(info, id); obj != nil {
							w.c.addFlow(ObjKey(obj), src)
						}
					}
				}
			}
		case *ast.CallExpr:
			w.registerArgFlows(n)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if fieldObj, ok := info.Uses[key].(*types.Var); ok && w.exprIsFuncish(kv.Value) {
					for _, src := range w.c.funcSources(w, kv.Value) {
						w.c.addFlow(ObjKey(fieldObj), src)
					}
				}
			}
		}
		return true
	})
}

func firstObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// isFuncish / exprIsFuncish report whether a value can carry function
// values (func type, or slice/array/map of funcs) — the only types worth
// tracking in the flow map.
func (w *funcWalker) isFuncish(e ast.Expr) bool { return w.exprIsFuncish(e) }

func (w *funcWalker) exprIsFuncish(e ast.Expr) bool {
	return typeIsFuncish(w.info().TypeOf(e))
}

func typeIsFuncish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t := t.Underlying().(type) {
	case *types.Signature:
		return true
	case *types.Slice:
		return typeIsFuncish(t.Elem())
	case *types.Array:
		return typeIsFuncish(t.Elem())
	case *types.Map:
		return typeIsFuncish(t.Elem())
	}
	return false
}

// registerFlow records func values flowing into the destination named by
// lhs (variable, field, or element of a field/variable).
func (w *funcWalker) registerFlow(lhs, rhs ast.Expr) {
	if !w.exprIsFuncish(lhs) && !w.exprIsFuncish(rhs) {
		return
	}
	srcs := w.c.funcSources(w, rhs)
	if len(srcs) == 0 {
		return
	}
	for _, key := range w.destKeys(lhs) {
		for _, src := range srcs {
			w.c.addFlow(key, src)
		}
	}
}

// destKeys names the flow destinations of an assignable expression.
func (w *funcWalker) destKeys(e ast.Expr) []string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		if obj := firstObj(w.info(), e); obj != nil {
			return []string{ObjKey(obj)}
		}
	case *ast.SelectorExpr:
		if sel := w.info().Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			return []string{ObjKey(sel.Obj())}
		}
		if v, ok := w.info().Uses[e.Sel].(*types.Var); ok {
			return []string{ObjKey(v)}
		}
	case *ast.IndexExpr:
		return w.destKeys(e.X)
	case *ast.StarExpr:
		return w.destKeys(e.X)
	}
	return nil
}

// registerArgFlows records func values passed as arguments to statically
// known callees, keyed by the callee parameter.
func (w *funcWalker) registerArgFlows(call *ast.CallExpr) {
	info := w.info()
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	var callee FuncKey
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			callee = FuncKeyOf(fn)
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				callee = FuncKeyOf(fn)
			}
		} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			callee = FuncKeyOf(fn)
		}
	}
	if callee == "" {
		return
	}
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	for i, arg := range call.Args {
		if !w.exprIsFuncish(arg) {
			continue
		}
		srcs := w.c.funcSources(w, arg)
		if len(srcs) == 0 {
			continue
		}
		pi := i
		if sig != nil && sig.Params() != nil && pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		for _, src := range srcs {
			w.c.addFlow(paramKey(callee, pi), src)
		}
	}
}

// writeTo records the effect of writing through lhs.
func (w *funcWalker) writeTo(lhs ast.Expr, pos token.Pos) {
	info := w.info()
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		obj := info.Uses[e]
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		if isGlobalVar(v) {
			w.recordWrite(BaseGlobal, pos, types.ExprString(lhs))
		} else if !w.declared[obj] {
			w.recordWrite(BaseCapture, pos, types.ExprString(lhs))
		}
		// Rebinding a local has no heap effect (env pass tracks aliasing).
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			w.recordWrite(w.basesOf(e.X), pos, types.ExprString(lhs))
		} else if v, ok := info.Uses[e.Sel].(*types.Var); ok && isGlobalVar(v) {
			w.recordWrite(BaseGlobal, pos, types.ExprString(lhs))
		}
	case *ast.IndexExpr:
		w.recordWrite(w.basesOf(e.X), pos, types.ExprString(lhs))
	case *ast.StarExpr:
		w.recordWrite(w.basesOf(e.X), pos, types.ExprString(lhs))
	}
}

// recordWrite translates a write through the given bases into effects.
func (w *funcWalker) recordWrite(b Bases, pos token.Pos, what string) {
	if b&BaseRecv != 0 {
		w.f.Eff.WritesRecv = true
	}
	for i := range w.f.ParamObjs {
		if b.HasParam(i) {
			w.f.Eff.WritesParam[i] = true
		}
	}
	waived := w.c.pf.Sheet.Line("shard-ok", pos)
	if b&BaseGlobal != 0 {
		w.f.Eff.GlobalWrites = append(w.f.Eff.GlobalWrites,
			Site{Pos: pos, What: what, Waived: waived})
	}
	if b&BaseCapture != 0 {
		w.f.Eff.CaptureWrites = append(w.f.Eff.CaptureWrites,
			Site{Pos: pos, What: what, Waived: waived})
	}
}
