package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"shmgpu/internal/analysis"
)

// checkPkg type-checks one import-free source file and wraps it in a Pass.
func checkPkg(t *testing.T, src string) *analysis.Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type check: %v", err)
	}
	return &analysis.Pass{
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(analysis.Diagnostic) {},
	}
}

// graphOf collects one package and builds a single-package graph.
func graphOf(t *testing.T, src string) *Graph {
	t.Helper()
	pf := Collect(checkPkg(t, src))
	return BuildGraph(map[string]any{"p": pf})
}

func TestReachThroughFuncValuedField(t *testing.T) {
	src := `package p

type S struct {
	fn func()
}

//shm:tick-root
func (s *S) tick() {
	s.fn()
}

func (s *S) wire() {
	s.fn = s.work
}

func (s *S) work() {
	other()
}

func other() {}
func unrelated() {}
`
	g := graphOf(t, src)
	r := g.Reach(g.Roots(func(f *Func) bool { return f.TickRoot }))
	if !r.In("p.(S).work") {
		t.Fatal("method stored into a func field must be reachable through the field call")
	}
	if !r.In("p.other") {
		t.Fatal("callee of the flowed method must be reachable")
	}
	if r.In("p.unrelated") {
		t.Fatal("unreferenced function must not be reachable")
	}
	wit := g.Witness(r, "p.other")
	if !strings.Contains(wit, "tick") || !strings.Contains(wit, "work") {
		t.Fatalf("witness %q should trace tick → work → other", wit)
	}
}

func TestReachThroughTaskSliceAndParam(t *testing.T) {
	src := `package p

type E struct {
	tasks []func()
}

func (e *E) build() {
	e.tasks = append(e.tasks, func() { leaf() })
}

//shm:tick-root
func (e *E) tick() {
	run(e.tasks)
}

func run(tasks []func()) {
	for _, t := range tasks {
		t()
	}
}

func leaf() {}
`
	g := graphOf(t, src)
	r := g.Reach(g.Roots(func(f *Func) bool { return f.TickRoot }))
	if !r.In("p.leaf") {
		t.Fatal("closure appended to a task slice and invoked through a parameter must be reachable")
	}
}

func TestInterfaceCallResolvesByMethodName(t *testing.T) {
	src := `package p

type Ticker interface{ Tick() }

type A struct{}
func (A) Tick() { fromA() }

type B struct{}
func (B) Tick() { fromB() }

//shm:tick-root
func drive(t Ticker) {
	t.Tick()
}

func fromA() {}
func fromB() {}
`
	g := graphOf(t, src)
	r := g.Reach(g.Roots(func(f *Func) bool { return f.TickRoot }))
	if !r.In("p.fromA") || !r.In("p.fromB") {
		t.Fatal("interface call must reach every concrete method with the name (CHA)")
	}
}

func TestPanicOnlyAndColdPruning(t *testing.T) {
	src := `package p

//shm:tick-root
func tick(bad bool) {
	if bad {
		deadEnd()
		panic("boom")
	}
	s := make([]int, 4)
	_ = s
	amortized() //shm:cold
}

func deadEnd()   {}
func amortized() { heavy() }
func heavy()     {}

//shm:cold
func coldFn() { alsoCold() }
func alsoCold() {}

//shm:tick-root
func tick2() { coldFn() }
`
	g := graphOf(t, src)
	r := g.Reach(g.Roots(func(f *Func) bool { return f.TickRoot }))
	if r.In("p.deadEnd") {
		t.Fatal("calls in panic-only blocks must not create reach edges")
	}
	if r.In("p.amortized") || r.In("p.heavy") {
		t.Fatal("calls on //shm:cold lines must not create reach edges")
	}
	if r.In("p.coldFn") || r.In("p.alsoCold") {
		t.Fatal("//shm:cold functions must not be entered")
	}
	// The make() in the hot block must be an unpruned alloc site.
	f := g.Funcs["p.tick"]
	var hotMakes int
	for _, s := range f.Allocs {
		if s.What == "make" && !s.Pruned {
			hotMakes++
		}
	}
	if hotMakes != 1 {
		t.Fatalf("want exactly 1 hot make site, got %d", hotMakes)
	}
}

func TestEffectComposition(t *testing.T) {
	src := `package p

type Box struct{ n int }

type S struct {
	box *Box
}

func bump(b *Box) { b.n++ }

func (s *S) viaRecv() { s.box.n = 1 }

func (s *S) viaCall() { bump(s.box) }

func passThrough(b *Box) { bump(b) }
`
	g := graphOf(t, src)
	g.PropagateEffects()
	if !g.Funcs["p.bump"].Eff.WritesParam[0] {
		t.Fatal("bump writes through its parameter")
	}
	if !g.Funcs["p.(S).viaRecv"].Eff.WritesRecv {
		t.Fatal("direct field write must set WritesRecv")
	}
	if !g.Funcs["p.(S).viaCall"].Eff.WritesRecv {
		t.Fatal("passing a receiver-derived pointer to a writer must set WritesRecv")
	}
	if !g.Funcs["p.passThrough"].Eff.WritesParam[0] {
		t.Fatal("parameter write must compose through a call chain")
	}
}

func TestGlobalAndCaptureWrites(t *testing.T) {
	src := `package p

var counter int

func bad() { counter++ }

func closureCapture() func() {
	x := 0
	return func() { x++ }
}

func cleanLocal() {
	y := 0
	y++
	_ = y
}
`
	g := graphOf(t, src)
	if n := len(g.Funcs["p.bad"].Eff.GlobalWrites); n != 1 {
		t.Fatalf("want 1 global write in bad, got %d", n)
	}
	if n := len(g.Funcs["p.closureCapture$1"].Eff.CaptureWrites); n != 1 {
		t.Fatalf("want 1 capture write in the closure, got %d", n)
	}
	cl := g.Funcs["p.cleanLocal"]
	if len(cl.Eff.GlobalWrites) != 0 || len(cl.Eff.CaptureWrites) != 0 || cl.Eff.WritesRecv {
		t.Fatal("purely local mutation must have no outward effects")
	}
}

func TestSyncAndAllocSites(t *testing.T) {
	src := `package p

func syncy(ch chan int) {
	ch <- 1
	<-ch
	close(ch)
	go leaf()
}

func alloczilla(xs []int, s1, s2 string) string {
	xs = append(xs, 1)
	m := map[int]int{}
	m[1] = 2
	p := &struct{ x int }{x: 1}
	_ = p
	_ = xs
	return s1 + s2
}

func leaf() {}
`
	g := graphOf(t, src)
	syncs := g.Funcs["p.syncy"].Syncs
	var kinds []string
	for _, s := range syncs {
		kinds = append(kinds, s.What)
	}
	joined := strings.Join(kinds, ";")
	for _, want := range []string{"channel send", "channel receive", "channel close", "goroutine spawn"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("sync sites %q missing %q", joined, want)
		}
	}
	// The go-spawned call must not create a reach edge.
	for _, c := range g.Funcs["p.syncy"].Calls {
		if c.Kind == CallStatic && c.Static == "p.leaf" {
			t.Fatal("go-spawned call must not be a call edge")
		}
	}
	var allocs []string
	for _, s := range g.Funcs["p.alloczilla"].Allocs {
		allocs = append(allocs, s.What)
	}
	aj := strings.Join(allocs, ";")
	for _, want := range []string{"append", "map literal", "&composite literal", "string concatenation"} {
		if !strings.Contains(aj, want) {
			t.Fatalf("alloc sites %q missing %q", aj, want)
		}
	}
}
