package flow

import (
	"sort"
	"strings"
)

// Graph is the whole-tree call graph stitched from per-package summaries
// at Finish time.
type Graph struct {
	// Funcs indexes every summarized function by key.
	Funcs map[FuncKey]*Func
	// PkgOf maps each function to its owning package summary.
	PkgOf map[FuncKey]*PkgFuncs
	// Methods indexes concrete methods by bare name, the class-hierarchy
	// approximation used to resolve interface calls.
	Methods map[string][]FuncKey
	// Flows merges every package's func-value flows.
	Flows map[string][]Source
	// Sharded/Bounds merge the annotated field keys.
	Sharded map[string]bool
	Bounds  map[string]bool

	resolved map[string][]FuncKey // memoized dyn-key resolution
}

// BuildGraph stitches per-package Collect results (a Finishing.Results
// map whose values are *PkgFuncs) into one graph.
func BuildGraph(results map[string]any) *Graph {
	g := &Graph{
		Funcs:    map[FuncKey]*Func{},
		PkgOf:    map[FuncKey]*PkgFuncs{},
		Methods:  map[string][]FuncKey{},
		Flows:    map[string][]Source{},
		Sharded:  map[string]bool{},
		Bounds:   map[string]bool{},
		resolved: map[string][]FuncKey{},
	}
	paths := make([]string, 0, len(results))
	for p := range results {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		pf, ok := results[p].(*PkgFuncs)
		if !ok || pf == nil {
			continue
		}
		for _, f := range pf.Funcs {
			g.Funcs[f.Key] = f
			g.PkgOf[f.Key] = pf
			if f.RecvObj != nil {
				name := methodName(f.Key)
				g.Methods[name] = append(g.Methods[name], f.Key)
			}
		}
		for k, srcs := range pf.Flows {
			g.Flows[k] = append(g.Flows[k], srcs...)
		}
		for k := range pf.Sharded {
			g.Sharded[k] = true
		}
		for k := range pf.Bounds {
			g.Bounds[k] = true
		}
	}
	for name := range g.Methods {
		sortKeys(g.Methods[name])
	}
	return g
}

// methodName extracts the bare method name from "pkg.(Recv).Name".
func methodName(k FuncKey) string {
	s := string(k)
	if i := strings.LastIndex(s, ")."); i >= 0 {
		return s[i+2:]
	}
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[i+1:]
	}
	return s
}

func sortKeys(ks []FuncKey) {
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
}

// ResolveDyn returns the functions a flow key may hold, following
// key-to-key flows transitively. Results are memoized, deduplicated, and
// sorted for deterministic traversal.
func (g *Graph) ResolveDyn(key string) []FuncKey {
	if r, ok := g.resolved[key]; ok {
		return r
	}
	g.resolved[key] = nil // cycle guard
	seen := map[FuncKey]bool{}
	var out []FuncKey
	for _, src := range g.Flows[key] {
		if src.Func != "" {
			if !seen[src.Func] {
				seen[src.Func] = true
				out = append(out, src.Func)
			}
			continue
		}
		for _, k := range g.ResolveDyn(src.Key) {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sortKeys(out)
	g.resolved[key] = out
	return out
}

// Callees resolves one call site to candidate function keys. Keys without
// a summary (stdlib, body-less declarations) are included for static
// calls; callers filter against g.Funcs.
func (g *Graph) Callees(c *Call) []FuncKey {
	switch c.Kind {
	case CallStatic:
		if c.Static == "" {
			return nil
		}
		return []FuncKey{c.Static}
	case CallIface:
		return g.Methods[c.Method]
	case CallDyn:
		seen := map[FuncKey]bool{}
		var out []FuncKey
		for _, k := range c.DynKeys {
			for _, fk := range g.ResolveDyn(k) {
				if !seen[fk] {
					seen[fk] = true
					out = append(out, fk)
				}
			}
		}
		sortKeys(out)
		return out
	}
	return nil
}

// Roots returns (sorted) the keys of functions matching pred.
func (g *Graph) Roots(pred func(*Func) bool) []FuncKey {
	var out []FuncKey
	for k, f := range g.Funcs {
		if pred(f) {
			out = append(out, k)
		}
	}
	sortKeys(out)
	return out
}

// Reach records which functions are reachable from a root set and, for
// witness paths, each function's BFS parent.
type Reach struct {
	// Parent maps a reached function to the caller it was first reached
	// from; roots map to "".
	Parent map[FuncKey]FuncKey
	// Order lists reached functions in BFS order.
	Order []FuncKey
}

// In reports whether key was reached.
func (r *Reach) In(key FuncKey) bool {
	_, ok := r.Parent[key]
	return ok
}

// Reach walks the call graph from roots, skipping pruned call sites and
// never descending into //shm:cold functions (amortized paths own their
// cost elsewhere).
func (g *Graph) Reach(roots []FuncKey) *Reach {
	r := &Reach{Parent: map[FuncKey]FuncKey{}}
	queue := make([]FuncKey, 0, len(roots))
	for _, root := range roots {
		if _, ok := g.Funcs[root]; !ok {
			continue
		}
		if _, seen := r.Parent[root]; seen {
			continue
		}
		r.Parent[root] = ""
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		r.Order = append(r.Order, cur)
		f := g.Funcs[cur]
		for i := range f.Calls {
			c := &f.Calls[i]
			if c.Pruned {
				continue
			}
			for _, callee := range g.Callees(c) {
				cf, ok := g.Funcs[callee]
				if !ok || cf.Cold {
					continue
				}
				if _, seen := r.Parent[callee]; seen {
					continue
				}
				r.Parent[callee] = cur
				queue = append(queue, callee)
			}
		}
	}
	return r
}

// Witness renders the call chain from a root to key, e.g.
// "runKernel → tickOnce → issueTick". Long chains elide the middle.
func (g *Graph) Witness(r *Reach, key FuncKey) string {
	var chain []string
	for k := key; k != ""; k = r.Parent[k] {
		f := g.Funcs[k]
		if f == nil {
			chain = append(chain, string(k))
		} else {
			chain = append(chain, f.Display)
		}
		if _, ok := r.Parent[k]; !ok {
			break
		}
	}
	// chain is leaf-to-root; reverse it.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	if len(chain) > 6 {
		chain = append(append([]string{}, chain[:2]...),
			append([]string{"…"}, chain[len(chain)-3:]...)...)
	}
	return strings.Join(chain, " → ")
}

// PropagateEffects runs the interprocedural write-effect fixpoint:
// a callee that writes its receiver or a parameter induces the
// corresponding effect in callers whose receiver/argument base sets feed
// it; global and capture writes surface in the caller when the caller's
// own storage roots are what the callee mutates.
func (g *Graph) PropagateEffects() {
	keys := make([]FuncKey, 0, len(g.Funcs))
	for k := range g.Funcs {
		keys = append(keys, k)
	}
	sortKeys(keys)
	viaSeen := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			f := g.Funcs[k]
			for i := range f.Calls {
				c := &f.Calls[i]
				if c.Pruned {
					continue
				}
				for _, calleeKey := range g.Callees(c) {
					ce, ok := g.Funcs[calleeKey]
					if !ok {
						continue
					}
					if ce.Eff.WritesRecv {
						if g.apply(f, ce, c.RecvBases, c, viaSeen) {
							changed = true
						}
					}
					for j, wp := range ce.Eff.WritesParam {
						if !wp {
							continue
						}
						if j < len(c.ArgBases) {
							if g.apply(f, ce, c.ArgBases[j], c, viaSeen) {
								changed = true
							}
						}
						// Variadic spill: remaining args feed the last param.
						if j == len(ce.Eff.WritesParam)-1 {
							for a := j + 1; a < len(c.ArgBases); a++ {
								if g.apply(f, ce, c.ArgBases[a], c, viaSeen) {
									changed = true
								}
							}
						}
					}
				}
			}
		}
	}
}

// apply translates a callee-side write through the caller's base set.
func (g *Graph) apply(f, callee *Func, b Bases, c *Call, viaSeen map[string]bool) bool {
	changed := false
	if b&BaseRecv != 0 && !f.Eff.WritesRecv {
		f.Eff.WritesRecv = true
		changed = true
	}
	for i := range f.ParamObjs {
		if b.HasParam(i) && i < len(f.Eff.WritesParam) && !f.Eff.WritesParam[i] {
			f.Eff.WritesParam[i] = true
			changed = true
		}
	}
	if b&BaseGlobal != 0 {
		id := string(f.Key) + "|g|" + string(callee.Key) + "|" + itoa(int(c.Pos))
		if !viaSeen[id] {
			viaSeen[id] = true
			f.Eff.GlobalWrites = append(f.Eff.GlobalWrites, Site{
				Pos: c.Pos, What: "via call to " + callee.Display,
				Waived: g.PkgOf[f.Key].Sheet.Line("shard-ok", c.Pos),
			})
			changed = true
		}
	}
	if b&BaseCapture != 0 {
		id := string(f.Key) + "|c|" + string(callee.Key) + "|" + itoa(int(c.Pos))
		if !viaSeen[id] {
			viaSeen[id] = true
			f.Eff.CaptureWrites = append(f.Eff.CaptureWrites, Site{
				Pos: c.Pos, What: "via call to " + callee.Display,
				Waived: g.PkgOf[f.Key].Sheet.Line("shard-ok", c.Pos),
			})
			changed = true
		}
	}
	return changed
}
