// Package flow is the dataflow core behind the flow-sensitive analyzers
// (hotalloc, syncfree, shardsafety). It layers three facilities on top of
// the per-package AST/type information the analysis framework provides:
//
//  1. Function summaries (Collect): every function and function literal in
//     a package is summarized as its call sites (static, interface, and
//     function-value calls), heap-allocation sites, synchronization sites,
//     and write effects — with per-site pruning for paths that cannot be
//     steady-state cost (CFG-unreachable code, panic-only blocks, runtime
//     sanitizer branches, and `//shm:cold` amortized paths).
//
//  2. Function-value flow: an SSA-lite, flow-insensitive points-to map for
//     func-typed values. Assignments of named functions, bound methods,
//     and literals into variables, struct fields, and call parameters are
//     recorded as flows keyed by the destination object; calls through a
//     variable/field/parameter resolve to every function that flowed into
//     the key. This is what connects the tick loop to the crossbar
//     accept/respond method values and the shard engine's prebuilt task
//     closures.
//
//  3. A whole-tree call graph (BuildGraph, in graph.go): summaries from
//     every package are stitched together; interface calls resolve by
//     class-hierarchy approximation (every module method with the same
//     name), reachability walks from annotated roots with witness paths,
//     and a fixpoint propagates receiver/parameter write effects through
//     the graph for shardsafety's region checks.
//
// The summaries deliberately over-approximate (a call through an interface
// may reach more methods than it dynamically can; a value copied out of
// shared state keeps the source's base set): soundness for the analyzers
// means never missing a reachable site, at the cost of waivable noise.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"shmgpu/internal/analysis"
	"shmgpu/internal/analysis/waiver"
)

// FuncKey names a function or method uniquely across packages:
// "pkg/path.Name", "pkg/path.(Recv).Name", or "outerkey$N" for the N-th
// function literal inside another function.
type FuncKey string

// Bases is a bit set describing which storage roots a value may alias:
// the enclosing function's receiver, its parameters, package-level
// variables, or variables captured from an enclosing function. The zero
// value means "locally allocated only".
type Bases uint32

const (
	// BaseRecv marks values derived from the receiver.
	BaseRecv Bases = 1 << iota
	// BaseGlobal marks values derived from package-level variables.
	BaseGlobal
	// BaseCapture marks values derived from enclosing-function variables.
	BaseCapture

	baseParam0 = 4 // params occupy bits [baseParam0, 32)
	maxParams  = 32 - baseParam0
)

// BaseParam returns the bit for parameter i (capped, conservatively
// merging very-high-arity parameters onto the last representable bit).
func BaseParam(i int) Bases {
	if i >= maxParams {
		i = maxParams - 1
	}
	return 1 << (baseParam0 + i)
}

// HasParam reports whether the set contains parameter i's bit.
func (b Bases) HasParam(i int) bool { return b&BaseParam(i) != 0 }

// CallKind discriminates how a call site's callee is named.
type CallKind int

const (
	// CallStatic is a direct call to a known function or concrete method.
	CallStatic CallKind = iota
	// CallIface is a call through an interface method; it resolves by
	// method name against every concrete method in the module.
	CallIface
	// CallDyn is a call through a func-typed value; it resolves through
	// the function-value flow keys.
	CallDyn
)

// Call is one call site in a function.
type Call struct {
	Pos  token.Pos
	Kind CallKind
	// Static is the callee for CallStatic.
	Static FuncKey
	// Method is the method name for CallIface.
	Method string
	// DynKeys are the flow keys the callee value may come from (CallDyn).
	DynKeys []string
	// Pruned marks calls off the steady-state path (dead/panic-only code,
	// sanitizer branches, //shm:cold paths): no graph edge is created.
	Pruned bool
	// RecvBases/ArgBases describe which of the caller's storage roots feed
	// the callee's receiver and arguments (for effect composition).
	RecvBases Bases
	ArgBases  []Bases
}

// Site is one allocation or synchronization site.
type Site struct {
	Pos token.Pos
	// What is the human-readable description ("append may grow its
	// backing array", "channel send", ...).
	What string
	// Waived marks sites carrying the analyzer's line waiver
	// (//shm:alloc-ok or //shm:sync-ok).
	Waived bool
	// Pruned marks sites off the steady-state path (see Call.Pruned).
	Pruned bool
}

// Effects summarizes a function's writes.
type Effects struct {
	// WritesRecv and WritesParam report writes through the receiver or a
	// (reference-typed) parameter — directly or, after the graph fixpoint,
	// via calls.
	WritesRecv  bool
	WritesParam []bool
	// GlobalWrites and CaptureWrites are writes to package-level state and
	// enclosing-function state (Waived honors //shm:shard-ok).
	GlobalWrites  []Site
	CaptureWrites []Site
}

// Func is one summarized function or function literal.
type Func struct {
	Key     FuncKey
	Display string // short human name, e.g. "(*System).tickOnce"
	PkgPath string
	Pos     token.Pos
	// Decl is the *ast.FuncDecl or *ast.FuncLit; Body may be nil for
	// body-less declarations.
	Decl ast.Node
	Body *ast.BlockStmt
	// TickRoot/ForkRoot/Cold mirror the //shm:tick-root, //shm:fork-root
	// and //shm:cold declaration markers.
	TickRoot, ForkRoot, Cold bool
	Calls                    []Call
	Allocs                   []Site
	Syncs                    []Site
	Eff                      Effects

	// RecvObj/ParamObjs are the declared receiver/parameter objects (for
	// shardsafety's root region analysis).
	RecvObj   types.Object
	ParamObjs []types.Object
}

// PkgFuncs is one package's flow summary: the per-analyzer Run result that
// BuildGraph stitches at Finish time.
type PkgFuncs struct {
	Path  string
	Fset  *token.FileSet
	Info  *types.Info
	Pkg   *types.Package
	Sheet *waiver.Sheet
	Funcs []*Func
	// Flows maps a destination key (field/variable/parameter) to the
	// function values that flow into it.
	Flows map[string][]Source
	// Sharded/Bounds hold the object keys of //shm:sharded and
	// //shm:shard-bounds struct fields declared in this package.
	Sharded map[string]bool
	Bounds  map[string]bool
}

// Source is one origin of a func-typed value: a concrete function, or
// another flow key (transitive).
type Source struct {
	Func FuncKey
	Key  string
}

// ObjKey names a variable/field object stably within one analysis run
// (the loader shares a FileSet, so positions are unique and stable).
func ObjKey(o types.Object) string {
	pkg := ""
	if o.Pkg() != nil {
		pkg = o.Pkg().Path()
	}
	return pkg + "@" + strconv.Itoa(int(o.Pos()))
}

// paramKey names callee parameter i as a flow destination.
func paramKey(callee FuncKey, i int) string {
	return "param:" + string(callee) + "#" + strconv.Itoa(i)
}

// FuncKeyOf builds the FuncKey for a resolved *types.Func.
func FuncKeyOf(fn *types.Func) FuncKey {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if name, ok := recvTypeName(sig.Recv().Type()); ok {
			return FuncKey(pkg + ".(" + name + ")." + fn.Name())
		}
	}
	return FuncKey(pkg + "." + fn.Name())
}

// recvTypeName unwraps a receiver type to its named type's name.
func recvTypeName(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name(), true
	case interface{ Obj() *types.TypeName }: // *types.Alias and friends
		return t.Obj().Name(), true
	}
	return "", false
}

// IsNoReturn reports whether a call can never return: panic, os.Exit,
// runtime.Goexit, log.Fatal*, and the simulator's invariant.Failf (which
// reports and panics). Matching is by package name so analysistest
// fixtures with short import paths behave like the real tree.
func IsNoReturn(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, ok := info.Uses[fun].(*types.Builtin); ok {
				return true
			}
			// In fixtures panic may appear unresolved; the builtin name is
			// reserved enough to trust.
			if info.Uses[fun] == nil {
				return true
			}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Name() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			switch fn.Name() {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		case "invariant":
			return fn.Name() == "Failf"
		}
	}
	return false
}

// Collect builds the flow summary for one package. Test files are skipped
// (the standalone loader never parses them; under vet they are excluded to
// keep both drivers consistent).
func Collect(pass *analysis.Pass) *PkgFuncs {
	pf := &PkgFuncs{
		Path:    pass.Pkg.Path(),
		Fset:    pass.Fset,
		Info:    pass.TypesInfo,
		Pkg:     pass.Pkg,
		Sheet:   pass.Waivers(),
		Flows:   map[string][]Source{},
		Sharded: map[string]bool{},
		Bounds:  map[string]bool{},
	}
	c := &collector{pf: pf, pass: pass, litKeys: map[*ast.FuncLit]FuncKey{}}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		c.file(file)
	}
	return pf
}

type collector struct {
	pf   *PkgFuncs
	pass *analysis.Pass
	// litKeys assigns every function literal its stable key
	// ("outerkey$N" in source order within the enclosing function).
	litKeys map[*ast.FuncLit]FuncKey
}

func (c *collector) file(file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			c.genDecl(d)
		case *ast.FuncDecl:
			c.funcDecl(d)
		}
	}
}

// genDecl records sharded/bounds field annotations and package-level
// func-value flows (var x = someFunc).
func (c *collector) genDecl(d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch spec := spec.(type) {
		case *ast.TypeSpec:
			st, ok := spec.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					obj := c.pf.Info.Defs[name]
					if obj == nil {
						continue
					}
					if c.pf.Sheet.Field("sharded", f) {
						c.pf.Sharded[ObjKey(obj)] = true
					}
					if c.pf.Sheet.Field("shard-bounds", f) {
						c.pf.Bounds[ObjKey(obj)] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range spec.Names {
				if i >= len(spec.Values) {
					break
				}
				obj := c.pf.Info.Defs[name]
				if obj == nil || !typeIsFuncish(obj.Type()) {
					continue
				}
				for _, src := range c.funcSources(nil, spec.Values[i]) {
					c.addFlow(ObjKey(obj), src)
				}
			}
		}
	}
}

func (c *collector) addFlow(key string, src Source) {
	c.pf.Flows[key] = append(c.pf.Flows[key], src)
}

// funcDecl summarizes one top-level function and its nested literals.
func (c *collector) funcDecl(d *ast.FuncDecl) {
	fn, _ := c.pf.Info.Defs[d.Name].(*types.Func)
	if fn == nil {
		return
	}
	key := FuncKeyOf(fn)
	display := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name, ok := recvTypeName(sig.Recv().Type()); ok {
			prefix := name
			if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
				prefix = "*" + name
			}
			display = "(" + prefix + ")." + fn.Name()
		}
	}
	c.summarize(key, display, d, d.Body, fn)
}

// summarize builds the Func record for a declared function or literal and
// recursively registers nested literals with derived keys.
func (c *collector) summarize(key FuncKey, display string, decl ast.Node, body *ast.BlockStmt, fn *types.Func) {
	f := &Func{
		Key:     key,
		Display: display,
		PkgPath: c.pf.Path,
		Pos:     decl.Pos(),
		Decl:    decl,
		Body:    body,
	}
	sheet := c.pf.Sheet
	f.TickRoot = sheet.Func("tick-root", decl)
	f.ForkRoot = sheet.Func("fork-root", decl)
	f.Cold = sheet.Func("cold", decl)
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			if sig.Recv() != nil {
				f.RecvObj = sig.Recv()
			}
			for i := 0; i < sig.Params().Len(); i++ {
				f.ParamObjs = append(f.ParamObjs, sig.Params().At(i))
			}
		}
	} else if lit, ok := decl.(*ast.FuncLit); ok {
		// Literal parameters come from the AST (their objects are in Defs).
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := c.pf.Info.Defs[name]; obj != nil {
					f.ParamObjs = append(f.ParamObjs, obj)
				}
			}
		}
	}
	if !f.Cold && isSnapshotCode(f) {
		f.Cold = true
	}
	c.pf.Funcs = append(c.pf.Funcs, f)
	if body == nil {
		return
	}

	w := &funcWalker{c: c, f: f}
	w.run()
}

// snapshotPkgPath is the checkpoint/restore serializer package. Everything
// in it, and every function that takes one of its Encoder/Decoder streams,
// runs once per snapshot — never on the per-cycle tick path — so the flow
// analyzers treat such functions as implicitly //shm:cold instead of
// demanding annotations on every SaveState/LoadState method in the tree.
const snapshotPkgPath = "shmgpu/internal/snapshot"

func isSnapshotCode(f *Func) bool {
	if f.PkgPath == snapshotPkgPath {
		return true
	}
	for _, obj := range f.ParamObjs {
		ptr, ok := obj.Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != snapshotPkgPath {
			continue
		}
		if name := named.Obj().Name(); name == "Encoder" || name == "Decoder" {
			return true
		}
	}
	return false
}
