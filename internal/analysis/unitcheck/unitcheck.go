// Package unitcheck flags arithmetic that mixes quantities of different
// units. The simulator's scalars are all uint64, so nothing stops
// `latencyCycles + rowBytes` from compiling; the tree's defense is a naming
// convention — identifiers carry their unit as a suffix (Cycles, Bytes,
// Blocks) — and this check makes the convention load-bearing.
//
// A binary arithmetic expression whose two operands carry *different* unit
// suffixes is reported. Wrapping an operand in any call (a conversion or a
// named converter like bytesToBlocks(x)) neutralizes its unit, which is the
// idiomatic way to state the conversion explicitly. One-sided expressions
// (unit op unitless) are allowed: scaling by plain factors is ubiquitous.
// `//shmlint:allow unitmix` silences a deliberate mixed expression.
package unitcheck

import (
	"go/ast"
	"go/token"
	"strings"

	"shmgpu/internal/analysis"
)

// Analyzer is the unitcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "unitcheck",
	Doc: "flag arithmetic mixing Cycles/Bytes/Blocks-suffixed quantities " +
		"without an explicit conversion",
	Run: run,
}

var arithmetic = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true,
	token.QUO: true, token.REM: true,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if pass.IsTestFile(n.Pos()) {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok || !arithmetic[b.Op] {
			return true
		}
		ux, uy := unitOf(b.X), unitOf(b.Y)
		if ux == "" || uy == "" || ux == uy {
			return true
		}
		if pass.Allowed("unitmix", b.Pos()) {
			return true
		}
		pass.Reportf(b.Pos(),
			"arithmetic mixes units: %s (%s) %s %s (%s); convert one side explicitly "+
				"or annotate with //shmlint:allow unitmix",
			exprName(b.X), ux, b.Op, exprName(b.Y), uy)
		return true
	})
	return nil, nil
}

var unitSuffixes = []string{"Cycles", "Bytes", "Blocks"}

// unitOf returns the unit suffix an operand carries, or "" for unitless
// operands. Calls (conversions) and literals are unitless by design.
func unitOf(e ast.Expr) string {
	name := exprName(e)
	if name == "" {
		return ""
	}
	for _, u := range unitSuffixes {
		if strings.HasSuffix(name, u) || strings.EqualFold(name, u) {
			return u
		}
	}
	return ""
}

// exprName extracts the terminal identifier of an operand, looking through
// parentheses; non-name operands yield "".
func exprName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.ParenExpr:
		return exprName(v.X)
	}
	return ""
}
