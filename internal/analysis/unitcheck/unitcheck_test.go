package unitcheck_test

import (
	"testing"

	"shmgpu/internal/analysis/analysistest"
	"shmgpu/internal/analysis/unitcheck"
)

func TestUnitcheck(t *testing.T) {
	tests := []struct {
		name string
		pkgs []string
	}{
		{name: "mixed and converted arithmetic", pkgs: []string{"units"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", unitcheck.Analyzer, tt.pkgs...)
		})
	}
}
