// Package units exercises the unit-suffix arithmetic rules.
package units

const sectorBytes = 32

type cfg struct {
	rowBytes   uint64
	casCycles  uint64
	rowCycles  uint64
	numBlocks  uint64
	burstBytes uint64
}

func latency(c cfg) uint64 {
	return c.casCycles + c.rowCycles // same unit: fine
}

func scale(c cfg) uint64 {
	return c.rowBytes * 4 // unit op unitless literal: fine
}

func mixed(c cfg, waitCycles uint64) uint64 {
	return waitCycles + c.rowBytes // want `arithmetic mixes units: waitCycles \(Cycles\) \+ rowBytes \(Bytes\)`
}

func mixedBlocks(c cfg) uint64 {
	return c.numBlocks * c.burstBytes // want `arithmetic mixes units: numBlocks \(Blocks\) \* burstBytes \(Bytes\)`
}

// converted states the unit change explicitly: any call (a conversion or a
// named converter) neutralizes the operand's unit.
func converted(c cfg) uint64 {
	return bytesToBlocks(c.rowBytes) + c.numBlocks
}

func convertedCast(c cfg, waitCycles uint64) uint64 {
	return waitCycles + uint64(c.rowBytes)
}

func bytesToBlocks(b uint64) uint64 { return b / 128 }

// annotated opts out of the check with a written justification.
func annotated(c cfg, waitCycles uint64) uint64 {
	return waitCycles + c.rowBytes //shmlint:allow unitmix — fixture justification
}
