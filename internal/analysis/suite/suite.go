// Package suite enumerates the repository's lint analyzers in the order
// they run. cmd/shmlint and any future drivers consume this list, so adding
// an analyzer here is all it takes to put it in the gate.
package suite

import (
	"shmgpu/internal/analysis"
	"shmgpu/internal/analysis/counterhygiene"
	"shmgpu/internal/analysis/hotalloc"
	"shmgpu/internal/analysis/nodeterminism"
	"shmgpu/internal/analysis/probeguard"
	"shmgpu/internal/analysis/shardsafety"
	"shmgpu/internal/analysis/syncfree"
	"shmgpu/internal/analysis/unitcheck"
)

// All returns every analyzer in the shmlint suite. The flow-sensitive
// analyzers (hotalloc, syncfree, shardsafety) report only from their
// Finish hooks, so they surface findings in standalone whole-tree runs
// and stay silent under the per-package vet protocol.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterminism.Analyzer,
		counterhygiene.Analyzer,
		probeguard.Analyzer,
		unitcheck.Analyzer,
		hotalloc.Analyzer,
		syncfree.Analyzer,
		shardsafety.Analyzer,
	}
}
