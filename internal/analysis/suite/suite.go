// Package suite enumerates the repository's lint analyzers in the order
// they run. cmd/shmlint and any future drivers consume this list, so adding
// an analyzer here is all it takes to put it in the gate.
package suite

import (
	"shmgpu/internal/analysis"
	"shmgpu/internal/analysis/counterhygiene"
	"shmgpu/internal/analysis/nodeterminism"
	"shmgpu/internal/analysis/probeguard"
	"shmgpu/internal/analysis/unitcheck"
)

// All returns every analyzer in the shmlint suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterminism.Analyzer,
		counterhygiene.Analyzer,
		probeguard.Analyzer,
		unitcheck.Analyzer,
	}
}
