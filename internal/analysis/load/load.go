// Package load type-checks Go packages straight from source, with no
// dependency on go/packages or precompiled export data. It is the package
// loader behind shmlint's standalone whole-tree mode and the analysistest
// fixture runner.
//
// Resolution order for an import path: the enclosing module (prefix match
// on the module path), any extra roots (analysistest fixture trees), then
// GOROOT/src. Dependencies are type-checked declarations-only
// (IgnoreFuncBodies), which keeps whole-tree loading fast; only packages
// the caller explicitly Loads get full bodies and populated type info.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully loaded (bodies + type info) package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker errors; loading tolerates them so a
	// lint run can still report on the parts that type-checked.
	TypeErrors []error
	// Generated marks files (by full path) carrying the conventional
	// "// Code generated ... DO NOT EDIT." header; drivers suppress
	// diagnostics in them since fixes belong in the generator.
	Generated map[string]bool
}

// Loader resolves and type-checks packages from source.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	// ExtraRoots are additional source roots searched before GOROOT
	// (analysistest fixture trees, each laid out as <root>/<importpath>/).
	ExtraRoots []string

	ctx  build.Context
	deps map[string]*types.Package
}

// New builds a loader for the module rooted at moduleDir.
func New(modulePath, moduleDir string, extraRoots ...string) *Loader {
	ctx := build.Default
	// Cgo files cannot be type-checked from source; the tree is pure Go.
	ctx.CgoEnabled = false
	return &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		ExtraRoots: extraRoots,
		ctx:        ctx,
		deps:       map[string]*types.Package{},
	}
}

// resolveDir maps an import path to its source directory.
func (l *Loader) resolveDir(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	for _, root := range l.ExtraRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if p, err := l.ctx.ImportDir(dir, 0); err == nil && len(p.GoFiles) > 0 {
			return dir, nil
		}
	}
	dir := filepath.Join(l.ctx.GOROOT, "src", filepath.FromSlash(path))
	if _, err := l.ctx.ImportDir(dir, 0); err != nil {
		return "", fmt.Errorf("load: cannot resolve import %q: %v", path, err)
	}
	return dir, nil
}

// parseDir parses the build-selected non-test Go files of dir.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importDecl type-checks path declarations-only, memoized.
func (l *Loader) importDecl(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: parse %s: %v", path, err)
	}
	cfg := types.Config{
		Importer:         importerFunc(l.importDecl),
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Error:            func(error) {}, // decl-only stdlib parses may warn; tolerate
	}
	pkg, err := cfg.Check(path, l.Fset, files, nil)
	if err != nil && pkg == nil {
		return nil, fmt.Errorf("load: check %s: %v", path, err)
	}
	l.deps[path] = pkg
	return pkg, nil
}

// Load fully type-checks the package at importPath: function bodies are
// checked and the returned Info covers Types, Defs, Uses, and Selections.
func (l *Loader) Load(importPath string) (*Package, error) {
	dir, err := l.resolveDir(importPath)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: parse %s: %v", importPath, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", importPath)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var terrs []error
	cfg := types.Config{
		Importer: importerFunc(l.importDecl),
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	pkg, err := cfg.Check(importPath, l.Fset, files, info)
	if err != nil && pkg == nil {
		return nil, fmt.Errorf("load: check %s: %v", importPath, err)
	}
	generated := map[string]bool{}
	for _, f := range files {
		if ast.IsGenerated(f) {
			generated[l.Fset.Position(f.Pos()).Filename] = true
		}
	}
	return &Package{
		Path:       importPath,
		Dir:        dir,
		Files:      files,
		Types:      pkg,
		Info:       info,
		TypeErrors: terrs,
		Generated:  generated,
	}, nil
}

// Walk returns the import paths of every package under the module root,
// skipping testdata, hidden, and vendor directories. The result is sorted.
func (l *Loader) Walk() ([]string, error) {
	var paths []string
	err := walkDirs(l.ModuleDir, func(dir string) error {
		bp, err := l.ctx.ImportDir(dir, 0)
		if err != nil {
			return nil // no buildable Go files here; keep walking
		}
		if len(bp.GoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
