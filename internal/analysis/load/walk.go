package load

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// walkDirs calls fn for every directory under root, pruning testdata,
// vendor, and hidden directories.
func walkDirs(root string, fn func(dir string) error) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		return fn(path)
	})
}

// ModuleInfo reads the module path from dir's go.mod. It is a minimal
// parser: the first line starting with "module " wins.
func ModuleInfo(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", os.ErrNotExist
}
