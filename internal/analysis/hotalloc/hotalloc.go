// Package hotalloc flags heap allocations on the simulator's per-cycle
// hot path. The tick loop executes millions of times per run; a single
// append that grows, a closure that captures, or a value boxed into an
// interface argument inside it turns into GC pressure that distorts the
// very timing the simulator measures. The discipline this analyzer
// enforces is the one the engine documents: steady-state ticks run
// allocation-free, with growth amortized behind explicit cold paths.
//
// The analysis is flow-sensitive and interprocedural: the flow package
// builds per-function summaries with CFG-based pruning, then a whole-tree
// call graph is walked from the annotated entry points — //shm:tick-root
// on the per-cycle drivers and //shm:fork-root on the shard tasks the
// worker pool invokes through stored closures. Interface calls resolve to
// every concrete method with the same name, and calls through func-typed
// fields and parameters follow the recorded value flows, so the crossbar
// accept/respond hooks and the shard engine's prebuilt task closures stay
// on the graph.
//
// Not every allocation on the path is a bug. Three pruning rules remove
// paths that are not steady-state cost: CFG blocks from which every path
// panics (failure messages may allocate), branches gated on
// invariant.Enabled() (the runtime sanitizer is debug tooling), and
// statements or whole functions marked //shm:cold (amortized growth,
// capture-mode telemetry). Individual vetted sites carry
// `//shm:alloc-ok <why>` on the flagged line.
//
// hotalloc needs the whole tree: findings are reported from the Finish
// hook, so they appear in standalone `shmlint ./...` runs and not under
// `go vet -vettool` (which invokes the driver per package).
package hotalloc

import (
	"shmgpu/internal/analysis"
	"shmgpu/internal/analysis/flow"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag heap allocations reachable from the per-cycle tick and shard " +
		"entry points (//shm:tick-root, //shm:fork-root)",
	Run:    run,
	Finish: finish,
}

func run(pass *analysis.Pass) (any, error) {
	return flow.Collect(pass), nil
}

func finish(f *analysis.Finishing) {
	g := flow.BuildGraph(f.Results)
	roots := g.Roots(func(fn *flow.Func) bool { return fn.TickRoot || fn.ForkRoot })
	if len(roots) == 0 {
		// Integrity guard: a tree with no roots silently checks nothing,
		// which is indistinguishable from a clean run. Make it loud.
		f.Reportf(0, "no //shm:tick-root or //shm:fork-root annotations found "+
			"in the tree; hotalloc has nothing to anchor on — annotate the "+
			"per-cycle entry points (tick loop, shard tasks)")
		return
	}
	reach := g.Reach(roots)
	for _, key := range reach.Order {
		fn := g.Funcs[key]
		for _, site := range fn.Allocs {
			if site.Pruned || site.Waived {
				continue
			}
			f.Reportf(site.Pos,
				"hot-path allocation: %s (path: %s); steady-state ticks must not allocate — "+
					"move the site behind a //shm:cold path or annotate //shm:alloc-ok with a justification",
				site.What, g.Witness(reach, key))
		}
	}
}
