package hotalloc_test

import (
	"testing"

	"shmgpu/internal/analysis/analysistest"
	"shmgpu/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	tests := []struct {
		name string
		pkgs []string
	}{
		{name: "flagged categories and pruning", pkgs: []string{"hot"}},
		{name: "accepted allocation-free tick", pkgs: []string{"hotok"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", hotalloc.Analyzer, tt.pkgs...)
		})
	}
}
