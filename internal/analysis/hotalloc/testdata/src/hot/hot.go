// Package hot exercises every hotalloc finding category plus each pruning
// rule: dead/panic-only code, sanitizer branches, //shm:cold paths, and
// //shm:alloc-ok line waivers.
package hot

import (
	"invariant"
	"strconv"
)

type S struct {
	buf  []int
	fn   func()
	name string
}

func sink(v any) {}

//shm:tick-root
func (s *S) tick() {
	s.buf = append(s.buf, 1) // want `hot-path allocation: append may grow its backing array`
	m := make(map[int]int)   // want `hot-path allocation: make`
	m[len(s.buf)] = 1        // want `hot-path allocation: map assignment may grow the table`
	s.helper()
	s.fn()
	n := len(s.buf)
	sink(n)                 // want `hot-path allocation: value boxed into interface argument`
	id := strconv.Itoa(n)   // want `hot-path allocation: call into allocating package strconv`
	cb := func() { _ = id } // want `hot-path allocation: function literal`
	cb()

	// Sanitizer-gated branch: debug cost, not steady-state cost.
	if invariant.Enabled() {
		dbg := make([]int, 8)
		_ = dbg
	}
	// Panic-only block: the concatenation feeds a failure message.
	if s.name == "" {
		panic("unnamed engine: " + id)
	}
	// Amortized growth behind an explicit cold line.
	if n > 100 { //shm:cold
		s.grow()
	}
	s.buf = append(s.buf, 2) //shm:alloc-ok ring warm-up, amortized over the run
}

func (s *S) helper() {
	p := &S{} // want `hot-path allocation: &composite literal escapes to the heap`
	_ = p
}

// wire is off the hot path; the flow into s.fn still links tick to flowed.
func (s *S) wire() {
	s.fn = s.flowed
}

func (s *S) flowed() {
	q := new(int) // want `hot-path allocation: new`
	_ = q
}

func (s *S) grow() {
	s.buf = append(s.buf, make([]int, 64)...)
}

// idle is unreachable from any root: its allocation is not steady-state.
func idle() {
	_ = make([]int, 1)
}
