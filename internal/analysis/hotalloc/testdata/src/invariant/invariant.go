// Package invariant mimics the simulator's runtime sanitizer gate for
// fixture purposes: hotalloc prunes branches guarded on Enabled() and
// treats Failf as no-return.
package invariant

var on bool

// Enabled reports whether the sanitizer is active.
func Enabled() bool { return on }

// Failf reports a violated invariant and never returns.
func Failf(format string, args ...any) {
	panic(format)
}
