// Package hotok is the accepted fixture: a tick loop that mutates
// preallocated state in place, with growth confined to a //shm:cold
// function. hotalloc must stay silent.
package hotok

type Engine struct {
	slots []int
	heads []int
}

//shm:tick-root
func (e *Engine) tick() {
	for i := range e.slots {
		e.slots[i]++
	}
	e.advance(3)
}

func (e *Engine) advance(n int) {
	e.heads[0] += n
}

// grow is the amortized path; its append is owned by the cold mark.
//
//shm:cold
func (e *Engine) grow() {
	e.slots = append(e.slots, 0)
}

// setup runs once at construction, unreachable from the tick root.
func setup() *Engine {
	return &Engine{slots: make([]int, 8), heads: make([]int, 4)}
}
