package shardsafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"shmgpu/internal/analysis"
	"shmgpu/internal/analysis/flow"
)

// region is the shard-isolation lattice, ordered by restrictiveness:
// joining two regions takes the max.
type region int

const (
	regLocal     region = iota // task-allocated: writes are free
	regShardPriv               // element of a sharded collection owned by this task
	regShardColl               // a //shm:sharded collection as a whole
	regFrozen                  // shared state, read-only during the forked phase
)

func maxRegion(a, b region) region {
	if a > b {
		return a
	}
	return b
}

// checker walks one fork root's body, classifying expressions into
// regions and task-scopedness, and reports writes that escape the
// task's shard.
type checker struct {
	f  *analysis.Finishing
	g  *flow.Graph
	fn *flow.Func
	pf *flow.PkgFuncs

	// region/scoped track local variables: the region of the value a
	// variable holds, and whether an integer variable is derived from the
	// task's shard parameter (and so acceptable as a shard index).
	region map[types.Object]region
	scoped map[types.Object]bool
	// scopedExpr holds guard-refined expression spellings ("en.sm")
	// that are task-scoped inside the guarded branch.
	scopedExpr map[string]bool
	// callAt indexes the flow-collected call records by position so call
	// sites resolve through the same (CHA + func-value flow) machinery.
	callAt map[token.Pos]*flow.Call

	seen map[string]bool // report dedup: pos|message
}

func checkRoot(f *analysis.Finishing, g *flow.Graph, fn *flow.Func, pf *flow.PkgFuncs) {
	if fn == nil || fn.Body == nil || pf == nil {
		return
	}
	c := &checker{
		f: f, g: g, fn: fn, pf: pf,
		region:     map[types.Object]region{},
		scoped:     map[types.Object]bool{},
		scopedExpr: map[string]bool{},
		callAt:     map[token.Pos]*flow.Call{},
		seen:       map[string]bool{},
	}
	if fn.RecvObj != nil {
		c.region[fn.RecvObj] = regFrozen
	}
	for _, p := range fn.ParamObjs {
		if p == nil {
			continue
		}
		if isBasicType(p.Type()) {
			// The shard number(s): the task's identity, and the seed of
			// every task-scoped index.
			c.scoped[p] = true
		} else {
			c.region[p] = regFrozen
		}
	}
	for i := range fn.Calls {
		c.callAt[fn.Calls[i].Pos] = &fn.Calls[i]
	}
	c.stmts(fn.Body.List)
}

func (c *checker) report(pos token.Pos, msg string) {
	if c.pf.Sheet != nil && (c.pf.Sheet.Line("shard-ok", pos) || c.pf.Sheet.Allow("shardsafety", pos)) {
		return
	}
	id := itoa(int(pos)) + "|" + msg
	if c.seen[id] {
		return
	}
	c.seen[id] = true
	c.f.Reportf(pos, "%s", msg)
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if o := c.pf.Info.Uses[id]; o != nil {
		return o
	}
	return c.pf.Info.Defs[id]
}

func isBasicType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Basic)
	return ok
}

func isGlobal(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ---- statement walk ----

func (c *checker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IncDecStmt:
		c.checkCallsIn(s.X)
		if id, ok := unparen(s.X).(*ast.Ident); ok {
			if v, okv := c.objOf(id).(*types.Var); okv && isGlobal(v) {
				c.report(s.Pos(), "forked-phase write to package-level state: "+id.Name+
					"; shard tasks may write only shard-private state")
			}
			return // local counter: p++ keeps its scopedness
		}
		c.checkWrite(s.X, s.Pos())
	case *ast.ExprStmt:
		c.checkCallsIn(s.X)
	case *ast.IfStmt:
		c.ifStmt(s)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.checkCallsIn(s.Cond)
		}
		if s.Post != nil {
			c.stmt(s.Post)
		}
		c.stmts(s.Body.List)
	case *ast.RangeStmt:
		c.rangeStmt(s)
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Tag != nil {
			c.checkCallsIn(s.Tag)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cl.Body)
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkCallsIn(r)
		}
	case *ast.DeferStmt:
		c.checkCall(s.Call)
	case *ast.GoStmt:
		c.checkCall(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						c.checkCallsIn(vs.Values[i])
						c.bindIdent(name, c.regionOf(vs.Values[i]), c.containsScoped(vs.Values[i]), true)
					}
				}
			}
		}
	}
	// SendStmt/SelectStmt are syncfree's findings, not shard writes.
}

func (c *checker) assign(s *ast.AssignStmt) {
	for _, e := range s.Rhs {
		c.checkCallsIn(e)
	}
	for _, e := range s.Lhs {
		c.checkCallsIn(e) // calls inside index expressions
	}
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Op-assign (+=, |=, ...): a read-modify-write of the target.
		for _, lhs := range s.Lhs {
			if _, ok := unparen(lhs).(*ast.Ident); ok {
				continue // local rebind keeps its classification
			}
			c.checkWrite(lhs, lhs.Pos())
		}
		return
	}
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		// Multi-value: x, y := f()  /  v, ok := m[k]
		r := c.regionOf(s.Rhs[0])
		sc := c.containsScoped(s.Rhs[0])
		for _, lhs := range s.Lhs {
			c.bindOrCheck(lhs, r, sc, s.Tok)
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		c.bindOrCheck(lhs, c.regionOf(s.Rhs[i]), c.containsScoped(s.Rhs[i]), s.Tok)
	}
}

func (c *checker) bindOrCheck(lhs ast.Expr, r region, scoped bool, tok token.Token) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		c.checkWrite(lhs, lhs.Pos())
		return
	}
	if v, okv := c.objOf(id).(*types.Var); okv && isGlobal(v) {
		c.report(lhs.Pos(), "forked-phase write to package-level state: "+id.Name+
			"; shard tasks may write only shard-private state")
		return
	}
	c.bindIdent(id, r, scoped, tok == token.DEFINE)
}

func (c *checker) bindIdent(id *ast.Ident, r region, scoped bool, define bool) {
	if id.Name == "_" {
		return
	}
	obj := c.objOf(id)
	if obj == nil {
		return
	}
	if isBasicType(obj.Type()) {
		r = regLocal // value copy: cannot alias shared storage
	}
	if define {
		c.region[obj] = r
		c.scoped[obj] = scoped
		return
	}
	// Plain reassignment: join regions (toward frozen), meet scopedness.
	c.region[obj] = maxRegion(c.region[obj], r)
	c.scoped[obj] = c.scoped[obj] && scoped
}

func (c *checker) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		c.stmt(s.Init)
	}
	c.checkCallsIn(s.Cond)
	refined := c.rangeGuard(s.Cond)
	for _, k := range refined {
		c.scopedExpr[k] = true
	}
	c.stmts(s.Body.List)
	for _, k := range refined {
		delete(c.scopedExpr, k)
	}
	if s.Else != nil {
		c.stmt(s.Else)
	}
	c.panicGuard(s)
}

// rangeGuard recognizes `X >= lo && X < hi` (and the <=/> spellings)
// where lo/hi are task-scoped-derived bounds: inside the branch the
// spelling of X is a task-scoped index. This is the shape the real
// smTask uses to claim cross-shard ring entries that belong to it.
func (c *checker) rangeGuard(cond ast.Expr) []string {
	b, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.LAND {
		return nil
	}
	x1, lo, ok1 := lowerBound(b.X)
	x2, hi, ok2 := upperBound(b.Y)
	if !ok1 || !ok2 {
		return nil
	}
	s1, s2 := types.ExprString(unparen(x1)), types.ExprString(unparen(x2))
	if s1 != s2 || !c.containsScoped(lo) || !c.containsScoped(hi) {
		return nil
	}
	return []string{s1}
}

// lowerBound matches X >= L, X > L, L <= X, L < X; returns (X, L).
func lowerBound(e ast.Expr) (x, l ast.Expr, ok bool) {
	b, isB := unparen(e).(*ast.BinaryExpr)
	if !isB {
		return nil, nil, false
	}
	switch b.Op {
	case token.GEQ, token.GTR:
		return b.X, b.Y, true
	case token.LEQ, token.LSS:
		return b.Y, b.X, true
	}
	return nil, nil, false
}

// upperBound matches X < H, X <= H, H > X, H >= X; returns (X, H).
func upperBound(e ast.Expr) (x, h ast.Expr, ok bool) {
	b, isB := unparen(e).(*ast.BinaryExpr)
	if !isB {
		return nil, nil, false
	}
	switch b.Op {
	case token.LSS, token.LEQ:
		return b.X, b.Y, true
	case token.GTR, token.GEQ:
		return b.Y, b.X, true
	}
	return nil, nil, false
}

// panicGuard recognizes `if a != b { panic(...) }`: past the guard the
// two operands are equal, so either inherits the other's scopedness.
// This is the cross-partition ownership check in the real partTask.
func (c *checker) panicGuard(s *ast.IfStmt) {
	b, ok := unparen(s.Cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.NEQ || s.Else != nil {
		return
	}
	if !bodyPanics(c.pf.Info, s.Body) {
		return
	}
	xID, xOK := unparen(b.X).(*ast.Ident)
	yID, yOK := unparen(b.Y).(*ast.Ident)
	if xOK && c.containsScoped(b.Y) {
		if o := c.objOf(xID); o != nil {
			c.scoped[o] = true
		}
	}
	if yOK && c.containsScoped(b.X) {
		if o := c.objOf(yID); o != nil {
			c.scoped[o] = true
		}
	}
}

// bodyPanics reports whether the guard body consists solely of
// expression statements ending in a no-return call.
func bodyPanics(info *types.Info, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, s := range body.List {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		if _, ok := unparen(es.X).(*ast.CallExpr); !ok {
			return false
		}
	}
	last := body.List[len(body.List)-1].(*ast.ExprStmt)
	call := unparen(last.X).(*ast.CallExpr)
	return flow.IsNoReturn(info, call)
}

func (c *checker) rangeStmt(s *ast.RangeStmt) {
	c.checkCallsIn(s.X)
	rX := c.regionOf(s.X)
	elemR := rX
	if rX == regShardColl {
		// Ranging over a sharded collection visits every shard's slot:
		// none of them is this task's to write.
		elemR = regFrozen
	}
	bind := func(e ast.Expr, r region) {
		if e == nil {
			return
		}
		if id, ok := unparen(e).(*ast.Ident); ok && s.Tok == token.DEFINE {
			c.bindIdent(id, r, false, true)
			return
		}
		c.bindOrCheck(e, r, false, s.Tok)
	}
	bind(s.Key, regLocal)
	bind(s.Value, elemR)
	c.stmts(s.Body.List)
}

// ---- writes ----

func (c *checker) checkWrite(lhs ast.Expr, pos token.Pos) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := c.objOf(lhs).(*types.Var); ok && isGlobal(v) {
			c.report(pos, "forked-phase write to package-level state: "+lhs.Name+
				"; shard tasks may write only shard-private state")
		}
	case *ast.SelectorExpr:
		sel := c.pf.Info.Selections[lhs]
		if sel == nil || sel.Kind() != types.FieldVal {
			return
		}
		switch c.regionOf(lhs.X) {
		case regFrozen:
			what := types.ExprString(lhs)
			if c.g.Sharded[flow.ObjKey(sel.Obj())] {
				c.report(pos, "forked-phase write replaces //shm:sharded collection "+what+
					"; write elements at task-scoped indices instead")
				return
			}
			c.report(pos, "forked-phase write to frozen shared state: "+what+
				"; shard tasks may write only shard-private state (//shm:shard-ok waives a vetted site)")
		case regShardColl:
			c.report(pos, "forked-phase write to frozen shared state: "+types.ExprString(lhs)+
				"; shard tasks may write only shard-private state (//shm:shard-ok waives a vetted site)")
		}
	case *ast.IndexExpr:
		switch c.regionOf(lhs.X) {
		case regShardColl:
			if !c.containsScoped(lhs.Index) {
				c.report(pos, "forked-phase write to //shm:sharded collection "+types.ExprString(lhs.X)+
					" at an index not provably task-scoped; derive the index from the task's shard parameter")
			}
		case regFrozen:
			c.report(pos, "forked-phase write to frozen shared state: "+types.ExprString(lhs)+
				"; shard tasks may write only shard-private state (//shm:shard-ok waives a vetted site)")
		}
	case *ast.StarExpr:
		switch c.regionOf(lhs.X) {
		case regFrozen, regShardColl:
			c.report(pos, "forked-phase write to frozen shared state: "+types.ExprString(lhs)+
				"; shard tasks may write only shard-private state (//shm:shard-ok waives a vetted site)")
		}
	}
}

// ---- calls ----

// checkCallsIn visits every call under e (skipping closure bodies, which
// are summarized and screened as their own graph nodes).
func (c *checker) checkCallsIn(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

// checkCall screens one call site: any callee the flow graph can name
// whose post-fixpoint effects write a receiver or argument that lives in
// a frozen region is a shard-isolation violation.
func (c *checker) checkCall(call *ast.CallExpr) {
	fc := c.callAt[call.Pos()]
	if fc == nil {
		return // builtin or conversion: no callee to consult
	}
	var recvExpr ast.Expr
	if s, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel := c.pf.Info.Selections[s]; sel != nil && sel.Kind() == types.MethodVal {
			recvExpr = s.X
		}
	}
	for _, key := range c.g.Callees(fc) {
		callee := c.g.Funcs[key]
		if callee == nil {
			continue
		}
		if callee.Eff.WritesRecv && recvExpr != nil {
			if r := c.regionOf(recvExpr); r == regFrozen || r == regShardColl {
				c.report(call.Pos(), "forked-phase call mutates frozen shared state: "+
					callee.Display+" writes its receiver ("+types.ExprString(recvExpr)+")")
			}
		}
		for i, wp := range callee.Eff.WritesParam {
			if !wp || i >= len(call.Args) {
				continue
			}
			if r := c.regionOf(call.Args[i]); r == regFrozen || r == regShardColl {
				c.report(call.Pos(), "forked-phase call mutates frozen shared state: "+
					callee.Display+" writes its argument ("+types.ExprString(call.Args[i])+")")
			}
		}
	}
}

// ---- classification ----

// regionOf classifies the storage an expression's value occupies.
func (c *checker) regionOf(e ast.Expr) region {
	switch e := e.(type) {
	case *ast.Ident:
		obj := c.objOf(e)
		if obj == nil {
			return regLocal
		}
		if v, ok := obj.(*types.Var); ok && isGlobal(v) {
			return regFrozen
		}
		if r, ok := c.region[obj]; ok {
			return r
		}
		return regLocal
	case *ast.SelectorExpr:
		sel := c.pf.Info.Selections[e]
		if sel == nil {
			// Qualified identifier: another package's state is frozen.
			if v, ok := c.objOf(e.Sel).(*types.Var); ok && isGlobal(v) {
				return regFrozen
			}
			return regLocal
		}
		if sel.Kind() != types.FieldVal {
			return regLocal // method value
		}
		switch c.regionOf(e.X) {
		case regFrozen, regShardColl:
			if c.g.Sharded[flow.ObjKey(sel.Obj())] {
				return regShardColl
			}
			return regFrozen
		case regShardPriv:
			return regShardPriv
		}
		return regLocal
	case *ast.IndexExpr:
		r := c.regionOf(e.X)
		if r == regShardColl {
			if c.containsScoped(e.Index) {
				return regShardPriv
			}
			return regFrozen
		}
		return r
	case *ast.SliceExpr:
		return c.regionOf(e.X)
	case *ast.StarExpr:
		return c.regionOf(e.X)
	case *ast.ParenExpr:
		return c.regionOf(e.X)
	case *ast.TypeAssertExpr:
		return c.regionOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.regionOf(e.X)
		}
		return regLocal
	case *ast.CallExpr:
		if tv, ok := c.pf.Info.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return c.regionOf(e.Args[0]) // conversion
			}
			return regLocal
		}
		// A call result may be an interior pointer into whatever the
		// receiver/arguments occupy (ring.At, queue.Front): join them.
		r := regLocal
		if s, ok := unparen(e.Fun).(*ast.SelectorExpr); ok {
			if sel := c.pf.Info.Selections[s]; sel != nil && sel.Kind() == types.MethodVal {
				r = maxRegion(r, c.regionOf(s.X))
			}
		}
		for _, a := range e.Args {
			r = maxRegion(r, c.regionOf(a))
		}
		return r
	}
	return regLocal
}

// containsScoped reports whether the expression mentions a task-scoped
// variable or a guard-refined spelling: such indices select this task's
// own shard slots.
func (c *checker) containsScoped(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if o := c.objOf(n); o != nil && c.scoped[o] {
				found = true
			}
		case *ast.SelectorExpr:
			if c.scopedExpr[types.ExprString(n)] {
				found = true
				return false
			}
		case *ast.FuncLit:
			return false
		}
		return !found
	})
	return found
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
