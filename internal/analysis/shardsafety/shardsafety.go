// Package shardsafety statically proves the forked-phase discipline of
// the parallel tick engine: while the 2*S shard tasks run concurrently on
// the worker pool, each task may write only shard-private state — its own
// outboxes, probe lanes, and horizon slots — and must never mutate the
// frozen shared state (queues, rings, config) it computes against. The
// determinism argument of the sharded engine rests exactly on this
// property; this analyzer turns it from a code-review obligation into a
// machine-checked contract.
//
// # The model
//
// Entry points carry //shm:fork-root. Inside a root, every expression is
// classified into a region lattice:
//
//	Local      — allocated in the task; writes are free.
//	ShardPriv  — an element of a //shm:sharded collection selected by a
//	             task-scoped index; writes are the task's right.
//	ShardColl  — a //shm:sharded collection as a whole; replacing it
//	             would race with every other shard.
//	Frozen     — everything else reachable from the engine/system:
//	             shared, read-only during the forked phase.
//
// Task-scoped indices seed from the root's int parameters (the shard
// number k) and grow by three flow-sensitive refinements modeled on the
// real tasks:
//
//	for p := e.partLo[k]; p < e.partHi[k]; p++  — a loop bounded by
//	    //shm:shard-bounds fields indexed by a scoped var scopes p;
//	if x >= lo && x < hi { ... }                — inside the branch, x is
//	    scoped when lo/hi hold shard-bounds values;
//	if owner != p { panic(...) }                — after a panic guard,
//	    owner inherits p's scopedness.
//
// Writes to Frozen or ShardColl targets, sharded-collection writes with
// unscoped indices, and calls whose callee (transitively, via the flow
// graph's effect fixpoint) writes a receiver or argument living in a
// frozen region are findings. Functions reachable from a fork root are
// additionally screened for writes to package-level state and to
// enclosing-scope captures — the per-partition outbox closures are
// exactly such captures and carry `//shm:shard-ok <why>` waivers, which
// double as the written justification.
//
// Unlike hotalloc/syncfree, //shm:cold does NOT prune this analyzer:
// shard isolation is a correctness property, not a cost model.
// Like them, findings come from the Finish hook (standalone whole-tree
// runs only).
package shardsafety

import (
	"shmgpu/internal/analysis"
	"shmgpu/internal/analysis/flow"
)

// Analyzer is the shardsafety check.
var Analyzer = &analysis.Analyzer{
	Name: "shardsafety",
	Doc: "prove //shm:fork-root shard tasks write only shard-private state " +
		"(//shm:sharded elements at task-scoped indices), never frozen shared state",
	Run:    run,
	Finish: finish,
}

func run(pass *analysis.Pass) (any, error) {
	return flow.Collect(pass), nil
}

func finish(f *analysis.Finishing) {
	g := flow.BuildGraph(f.Results)
	roots := g.Roots(func(fn *flow.Func) bool { return fn.ForkRoot })
	if len(roots) == 0 {
		return // no parallel engine in this tree: nothing to prove
	}
	g.PropagateEffects()
	reach := g.Reach(roots)

	rootSet := map[flow.FuncKey]bool{}
	for _, r := range roots {
		rootSet[r] = true
	}

	// Fork-reachable helpers: package-level and capture writes are shared
	// state by definition, wherever they hide. Roots are excluded here —
	// the region walk below owns them (and reports with more context).
	for _, key := range reach.Order {
		if rootSet[key] {
			continue
		}
		fn := g.Funcs[key]
		for _, s := range fn.Eff.GlobalWrites {
			if s.Waived {
				continue
			}
			f.Reportf(s.Pos,
				"forked-phase write to package-level state: %s (path: %s); "+
					"shard tasks may write only shard-private state",
				s.What, g.Witness(reach, key))
		}
		for _, s := range fn.Eff.CaptureWrites {
			if s.Waived {
				continue
			}
			f.Reportf(s.Pos,
				"forked-phase write to enclosing-scope state: %s (path: %s); "+
					"per-shard buffers may be waived with //shm:shard-ok",
				s.What, g.Witness(reach, key))
		}
	}

	// Roots: the full region discipline.
	for _, key := range roots {
		checkRoot(f, g, g.Funcs[key], g.PkgOf[key])
	}
}
