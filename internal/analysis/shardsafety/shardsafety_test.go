package shardsafety_test

import (
	"testing"

	"shmgpu/internal/analysis/analysistest"
	"shmgpu/internal/analysis/shardsafety"
)

func TestShardsafety(t *testing.T) {
	tests := []struct {
		name string
		pkgs []string
	}{
		{name: "flagged isolation violations", pkgs: []string{"shard"}},
		{name: "accepted real-engine shapes", pkgs: []string{"shardok"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", shardsafety.Analyzer, tt.pkgs...)
		})
	}
}
