// Package shard is the flagged fixture for shardsafety: a fork task that
// writes frozen shared state directly, through unscoped sharded indices,
// through mutating calls, and through reachable helpers and closures.
package shard

type mee struct{ n int }

func (m *mee) submit() { m.n++ }

type bank struct{ q []int }

func (b *bank) tick(m *mee) {
	b.q = b.q[:0]
	m.submit()
}

type entry struct {
	at uint64
	sm int
}

type Sys struct {
	queues [][]entry //shm:sharded
	l2     [][]*bank //shm:sharded
	mees   []*mee    //shm:sharded
	global []int
	ring   []entry
	shared *mee
}

type E struct {
	sys      *Sys
	lo, hi   []int    //shm:shard-bounds
	horizons []uint64 //shm:sharded
	outbox   [][]int  //shm:sharded
	scratch  []int
	fn       func()
}

var hits []int

//shm:fork-root
func (e *E) task(k int) {
	s := e.sys
	for p := e.lo[k]; p < e.hi[k]; p++ {
		q := s.queues[p]
		for i := range q {
			q[i].at++ // ok: element of the task's own shard
		}
		s.queues[p] = q[:0] // ok: sharded element at a task-scoped index
		m := s.mees[p]
		for _, b := range s.l2[p] {
			b.tick(m) // ok: receiver and argument are shard-private
		}
	}
	e.horizons[k] = 1   // ok: task-scoped horizon slot
	s.global[0] = 1     // want `forked-phase write to frozen shared state`
	s.ring = nil        // want `forked-phase write to frozen shared state`
	e.scratch[k] = 2    // want `forked-phase write to frozen shared state`
	s.ring[0] = entry{} //shm:shard-ok replay slot is exclusively ours during this phase
	j := 3
	e.horizons[j] = 4 // want `index not provably task-scoped`
	e.outbox = nil    // want `replaces //shm:sharded collection`
}

//shm:fork-root
func (e *E) task2(k int) {
	s := e.sys
	s.shared.submit() // want `writes its receiver`
	b := s.l2[k][0]
	b.tick(s.shared) // want `writes its argument`
	e.emit(k)
	e.fn()
}

func (e *E) emit(k int) {
	hits = append(hits, k) // want `forked-phase write to package-level state`
}

func (e *E) wire() {
	p := 0
	e.fn = func() {
		e.outbox[p] = append(e.outbox[p], 1) // want `forked-phase write to enclosing-scope state`
	}
}
