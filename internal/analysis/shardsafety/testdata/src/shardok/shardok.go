// Package shardok is the accepted fixture for shardsafety: the shapes of
// the real parallel engine's shard tasks — bounds-seeded loops over
// sharded collections, the range guard that claims this task's ring
// entries, the ownership panic guard, and arithmetic horizon slots.
// shardsafety must stay silent.
package shardok

type entry struct {
	at uint64
	sm int
}

type ring struct{ es []entry }

func (r *ring) At(i int) *entry { return &r.es[i] }
func (r *ring) Len() int        { return len(r.es) }

type sm struct{ fills int }

func (m *sm) onFill(at uint64) { m.fills++ }

type chanDone struct{ token int }

type channel struct{ done []chanDone }

func (c *channel) Tick() []chanDone { return c.done }

type mee struct{ pending int }

func (m *mee) OnDone(d chanDone) { m.pending-- }

func ownerOf(d chanDone) int { return d.token }

type Sys struct {
	sms      []*sm      //shm:sharded
	mees     []*mee     //shm:sharded
	channels []*channel //shm:sharded
	toSM     ring
	matured  int
}

type E struct {
	sys            *Sys
	smLo, smHi     []int    //shm:shard-bounds
	partLo, partHi []int    //shm:shard-bounds
	horizons       []uint64 //shm:sharded
	shards         int
	now            uint64
}

//shm:fork-root
func (e *E) smTask(k int) {
	s := e.sys
	lo, hi := e.smLo[k], e.smHi[k]
	next := e.now + 1
	for i := lo; i < hi; i++ {
		s.sms[i].onFill(e.now) // ok: bounds-seeded loop over the sharded collection
	}
	for j := 0; j < s.matured; j++ {
		en := s.toSM.At(j)
		if en.sm >= lo && en.sm < hi {
			s.sms[en.sm].onFill(en.at) // ok: range guard makes en.sm task-scoped
		}
	}
	e.horizons[e.shards+k] = next // ok: arithmetic over the shard parameter
}

//shm:fork-root
func (e *E) partTask(k int) {
	s := e.sys
	for p := e.partLo[k]; p < e.partHi[k]; p++ {
		for _, done := range s.channels[p].Tick() {
			owner := ownerOf(done)
			if owner != p {
				panic("cross-partition completion")
			}
			s.mees[owner].OnDone(done) // ok: ownership guard makes owner task-scoped
		}
	}
	e.horizons[k] = 0 // ok: the task's own horizon slot
}
