package syncfree_test

import (
	"testing"

	"shmgpu/internal/analysis/analysistest"
	"shmgpu/internal/analysis/syncfree"
)

func TestSyncfree(t *testing.T) {
	tests := []struct {
		name string
		pkgs []string
	}{
		{name: "flagged categories and waivers", pkgs: []string{"syncy"}},
		{name: "accepted barrier-only tick", pkgs: []string{"syncok"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", syncfree.Analyzer, tt.pkgs...)
		})
	}
}
