// Package syncok is the accepted fixture: a lock-free tick plus the
// fork/join barrier whose channel pair is waived with //shm:sync-ok.
// syncfree must stay silent.
package syncok

type pool struct {
	wake chan int
	join chan int
}

type E struct {
	pool  *pool
	state []int
}

//shm:tick-root
func (e *E) tick() {
	e.compute()
	e.pool.wake <- 1 //shm:sync-ok fork barrier: one wake per forked batch
	<-e.pool.join    //shm:sync-ok join barrier: one join per forked batch
}

func (e *E) compute() {
	for i := range e.state {
		e.state[i] += i
	}
}
