// Package syncy exercises every syncfree finding category: sync/atomic
// calls, channel operations, select, and goroutine spawns on the hot
// path, plus the //shm:sync-ok waiver.
package syncy

import (
	"sync"
	"sync/atomic"
)

type S struct {
	mu sync.Mutex
	n  atomic.Int64
	ch chan int
}

//shm:tick-root
func (s *S) tick() {
	s.mu.Lock()   // want `hot-path synchronization: sync.Mutex.Lock`
	s.mu.Unlock() // want `hot-path synchronization: sync.Mutex.Unlock`
	s.n.Add(1)    // want `hot-path synchronization: atomic.Int64.Add`
	s.ch <- 1     // want `hot-path synchronization: channel send`
	<-s.ch        // want `hot-path synchronization: channel receive`
	go idle()     // want `hot-path synchronization: goroutine spawn`
	select {      // want `hot-path synchronization: select`
	case v := <-s.ch: // want `hot-path synchronization: channel receive`
		_ = v
	default:
	}
	s.n.Store(9) //shm:sync-ok ops heartbeat: one release-store per tick
	s.helper()
}

func (s *S) helper() {
	close(s.ch) // want `hot-path synchronization: channel close`
}

func idle() {}

// offPath is unreachable from the root: its lock is not flagged.
func offPath(s *S) {
	s.mu.Lock()
	s.mu.Unlock()
}
