// Package syncfree flags synchronization operations on the simulator's
// per-cycle hot path. The deterministic core is single-threaded within a
// tick by construction — cross-shard communication happens at the
// fork/join barrier, not through locks — so a mutex, atomic, or channel
// operation reachable from the tick loop is either dead weight (cost per
// cycle with nothing to protect) or, worse, evidence of hidden
// cross-thread sharing that the determinism argument does not cover.
//
// The walk shares hotalloc's machinery: flow summaries with CFG pruning,
// a whole-tree call graph from //shm:tick-root and //shm:fork-root entry
// points, interface resolution by method name, and func-value flows.
// Flagged operations are mutex/atomic/Cond/WaitGroup/Once calls (anything
// in sync and sync/atomic), channel sends, receives, closes, ranges and
// selects, goroutine spawns, and time.Sleep.
//
// The exceptions are the point of the analyzer, not a weakness: the
// worker pool's wake/join channel pair IS the fork/join barrier, and the
// ops heartbeat publishes one atomic snapshot per tick by design. Those
// sites carry `//shm:sync-ok <why>` so the waiver is the documentation,
// and anything else that shows up is a finding. Panic-only blocks,
// invariant.Enabled() branches, and //shm:cold paths are pruned exactly
// as in hotalloc — but note //shm:cold does not waive correctness checks,
// only cost accounting; syncfree findings on cold paths are still
// reported via the cold function's own roots if it has any.
//
// Like hotalloc, findings come from the Finish hook: standalone
// whole-tree runs report; per-package `go vet -vettool` runs do not.
package syncfree

import (
	"shmgpu/internal/analysis"
	"shmgpu/internal/analysis/flow"
)

// Analyzer is the syncfree check.
var Analyzer = &analysis.Analyzer{
	Name: "syncfree",
	Doc: "flag mutex/atomic/channel operations reachable from the per-cycle " +
		"tick and shard entry points; the core synchronizes only at the fork/join barrier",
	Run:    run,
	Finish: finish,
}

func run(pass *analysis.Pass) (any, error) {
	return flow.Collect(pass), nil
}

func finish(f *analysis.Finishing) {
	g := flow.BuildGraph(f.Results)
	roots := g.Roots(func(fn *flow.Func) bool { return fn.TickRoot || fn.ForkRoot })
	if len(roots) == 0 {
		return // hotalloc owns the missing-root integrity diagnostic
	}
	reach := g.Reach(roots)
	for _, key := range reach.Order {
		fn := g.Funcs[key]
		for _, site := range fn.Syncs {
			if site.Pruned || site.Waived {
				continue
			}
			f.Reportf(site.Pos,
				"hot-path synchronization: %s (path: %s); the core synchronizes only at the "+
					"fork/join barrier — annotate //shm:sync-ok with a justification for vetted sites",
				site.What, g.Witness(reach, key))
		}
	}
}
