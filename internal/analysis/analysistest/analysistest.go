// Package analysistest runs an analyzer against source fixtures and checks
// its diagnostics against `// want "regexp"` expectations embedded in the
// fixture files, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/, and a want comment on a
// source line asserts that the analyzer reports a diagnostic on that line
// whose message matches the regexp. Multiple quoted regexps on one comment
// expect multiple diagnostics. Lines without want comments must produce no
// diagnostics.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"shmgpu/internal/analysis"
	"shmgpu/internal/analysis/load"
)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

type finding struct {
	file string
	line int
	msg  string
}

// Run loads every fixture package, applies the analyzer to each, invokes
// its Finish hook (if any) with the collected results, and compares all
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := load.New("", "", filepath.Join(testdata, "src"))

	var wants []*want
	var got []finding
	results := map[string]any{}

	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s does not type-check: %v", path, terr)
		}
		wants = append(wants, collectWants(t, loader.Fset, pkg)...)

		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      loader.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				p := loader.Fset.Position(d.Pos)
				got = append(got, finding{file: filepath.Base(p.Filename), line: p.Line, msg: d.Message})
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s failed on %s: %v", a.Name, path, err)
		}
		if res != nil {
			results[path] = res
		}
	}

	if a.Finish != nil {
		a.Finish(&analysis.Finishing{
			Results: results,
			Fset:    loader.Fset,
			Report: func(d analysis.Diagnostic) {
				p := loader.Fset.Position(d.Pos)
				got = append(got, finding{file: filepath.Base(p.Filename), line: p.Line, msg: d.Message})
			},
		})
	}

	for _, g := range got {
		if w := match(wants, g); w != nil {
			w.hit = true
			continue
		}
		t.Errorf("%s:%d: unexpected diagnostic: %s", g.file, g.line, g.msg)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func match(wants []*want, g finding) *want {
	for _, w := range wants {
		if !w.hit && w.file == g.file && w.line == g.line && w.re.MatchString(g.msg) {
			return w
		}
	}
	return nil
}

var wantRE = regexp.MustCompile(`// want (.*)`)

func collectWants(t *testing.T, fset *token.FileSet, pkg *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the sequence of Go string literals ("..." or `...`)
// from the tail of a want comment.
func splitQuoted(s string) []string {
	var lits []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		switch s[0] {
		case '"':
			i := 1
			for i < len(s) && s[i] != '"' {
				if s[i] == '\\' {
					i++
				}
				i++
			}
			if i >= len(s) {
				return lits
			}
			lits = append(lits, s[:i+1])
			s = s[i+1:]
		case '`':
			i := strings.IndexByte(s[1:], '`')
			if i < 0 {
				return lits
			}
			lits = append(lits, s[:i+2])
			s = s[i+2:]
		default:
			return lits
		}
	}
	return lits
}
