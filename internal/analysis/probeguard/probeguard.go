// Package probeguard preserves the observability layers' zero-overhead
// contract: probes are nil by default, and every emit call on a probe
// interface — Emit on a telemetry.Probe, Observe on an obs.Probe — must be
// dominated by a nil check, so an unobserved run never constructs an Event
// or takes an interface call.
//
// Two guard idioms are recognized, matching the tree's conventions:
//
//	if s.probe != nil { s.probe.Emit(...) }          // wrapping if
//
//	if s.probe == nil || ... { return }              // early return
//	...
//	s.probe.Emit(...)
//
// The early-return form must appear at the top level of the enclosing
// function body, before the emit call. Anything else — including an emit
// reached through an unguarded else-branch — is reported.
package probeguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"shmgpu/internal/analysis"
)

// Analyzer is the probeguard check.
var Analyzer = &analysis.Analyzer{
	Name: "probeguard",
	Doc:  "require a dominating nil check on every telemetry.Probe Emit and obs.Probe Observe site",
	Run:  run,
}

// contracts lists the nil-guarded emit methods: the named interface (by
// package and type name) and the method whose call sites must be dominated
// by a nil check.
var contracts = []struct {
	pkg, typ, method string
}{
	{"telemetry", "Probe", "Emit"},
	{"obs", "Probe", "Observe"},
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if call, ok := n.(*ast.CallExpr); ok {
				checkEmit(pass, call, stack)
			}
			return true
		})
	}
	return nil, nil
}

func checkEmit(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return
	}
	matched := false
	for _, c := range contracts {
		if sel.Sel.Name == c.method && analysis.NamedType(recv, c.pkg, c.typ) {
			matched = true
			break
		}
	}
	if !matched {
		return
	}
	if _, isIface := recv.Underlying().(*types.Interface); !isIface {
		return // a concrete collector type named Probe is not the contract
	}
	recvText := types.ExprString(sel.X)
	if guardedByIf(recvText, stack) || guardedByEarlyReturn(recvText, call.Pos(), stack) {
		return
	}
	if pass.Allowed("probeguard", call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(),
		"probe %s without a dominating nil check: guard with `if %s != nil` "+
			"or an early `if %s == nil { return }` (probes are nil unless observability is on)",
		sel.Sel.Name, recvText, recvText)
}

// guardedByIf reports whether the call sits in the then-branch of an if
// whose condition includes `recv != nil`.
func guardedByIf(recvText string, stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		ifStmt, ok := stack[i-1].(*ast.IfStmt)
		if !ok {
			continue
		}
		if stack[i] == ast.Node(ifStmt.Body) && condChecksNil(ifStmt.Cond, recvText, token.NEQ) {
			return true
		}
	}
	return false
}

// guardedByEarlyReturn reports whether the enclosing function's body
// contains, before pos, a top-level `if recv == nil ... { return }`.
func guardedByEarlyReturn(recvText string, pos token.Pos, stack []ast.Node) bool {
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	for _, stmt := range body.List {
		if stmt.Pos() >= pos {
			break
		}
		ifStmt, ok := stmt.(*ast.IfStmt)
		if !ok || ifStmt.Else != nil || len(ifStmt.Body.List) == 0 {
			continue
		}
		if _, ret := ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.ReturnStmt); !ret {
			continue
		}
		if condChecksNil(ifStmt.Cond, recvText, token.EQL) {
			return true
		}
	}
	return false
}

// condChecksNil reports whether cond contains `recvText <op> nil` (either
// operand order), possibly nested in && / || chains.
func condChecksNil(cond ast.Expr, recvText string, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != op {
			return true
		}
		if (isNil(b.Y) && types.ExprString(b.X) == recvText) ||
			(isNil(b.X) && types.ExprString(b.Y) == recvText) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
