package probeguard_test

import (
	"testing"

	"shmgpu/internal/analysis/analysistest"
	"shmgpu/internal/analysis/probeguard"
)

func TestProbeguard(t *testing.T) {
	tests := []struct {
		name string
		pkgs []string
	}{
		{name: "guard idioms", pkgs: []string{"sim"}},
		{name: "telemetry package itself is exempt", pkgs: []string{"telemetry"}},
		{name: "obs package itself is exempt", pkgs: []string{"obs"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", probeguard.Analyzer, tt.pkgs...)
		})
	}
}
