// Package sim exercises the probeguard idioms: wrapped, early-return,
// unguarded, and else-branch Emit sites.
package sim

import "telemetry"

type unit struct {
	probe telemetry.Probe
	done  bool
}

// wrapped is the canonical guarded idiom.
func (u *unit) wrapped(now uint64) {
	if u.probe != nil {
		u.probe.Emit(telemetry.Event{Cycle: now})
	}
}

// compound keeps the guard inside a larger condition.
func (u *unit) compound(now uint64) {
	if now > 0 && u.probe != nil {
		u.probe.Emit(telemetry.Event{Cycle: now})
	}
}

// earlyReturn is the second accepted idiom.
func (u *unit) earlyReturn(now uint64) {
	if u.probe == nil || u.done {
		return
	}
	u.probe.Emit(telemetry.Event{Cycle: now})
}

// unguarded constructs an Event and takes an interface call even when
// telemetry is off — the exact overhead the contract forbids.
func (u *unit) unguarded(now uint64) {
	u.probe.Emit(telemetry.Event{Cycle: now}) // want `probe Emit without a dominating nil check`
}

// wrongBranch guards the then-branch but emits from the else-branch.
func (u *unit) wrongBranch(now uint64) {
	if u.probe != nil {
		u.probe.Emit(telemetry.Event{Cycle: now})
	} else {
		u.probe.Emit(telemetry.Event{Cycle: now}) // want `probe Emit without a dominating nil check`
	}
}

// wrongGuard nil-checks a different probe than the one emitting.
func (u *unit) wrongGuard(other *unit, now uint64) {
	if u.probe != nil {
		other.probe.Emit(telemetry.Event{Cycle: now}) // want `probe Emit without a dominating nil check`
	}
}

// annotated opts out explicitly (e.g. a site proven non-nil by construction).
func (u *unit) annotated(now uint64) {
	u.probe.Emit(telemetry.Event{Cycle: now}) //shmlint:allow probeguard — probe set in constructor
}
