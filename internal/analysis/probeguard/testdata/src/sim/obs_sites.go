// obs_sites exercises the same guard idioms for the live-observability
// probe: Observe on an obs.Probe needs the same dominating nil check Emit
// on a telemetry.Probe does.
package sim

import "obs"

type system struct {
	obsProbe obs.Probe
	nextAt   uint64
}

// wrappedObserve is the canonical guarded idiom.
func (s *system) wrappedObserve(now uint64) {
	if s.obsProbe != nil {
		s.obsProbe.Observe(obs.Event{Cycle: now})
	}
}

// compoundObserve keeps the guard inside the interval comparison, the real
// hot-path shape.
func (s *system) compoundObserve(now uint64) {
	if s.obsProbe != nil && now >= s.nextAt {
		s.obsProbe.Observe(obs.Event{Cycle: now})
	}
}

// earlyReturnObserve is the second accepted idiom.
func (s *system) earlyReturnObserve(now uint64) {
	if s.obsProbe == nil {
		return
	}
	s.obsProbe.Observe(obs.Event{Cycle: now})
}

// unguardedObserve constructs an Event and takes an interface call even
// when the ops plane is detached — the overhead the contract forbids.
func (s *system) unguardedObserve(now uint64) {
	s.obsProbe.Observe(obs.Event{Cycle: now}) // want `probe Observe without a dominating nil check`
}

// wrongBranchObserve guards the then-branch but observes from the else.
func (s *system) wrongBranchObserve(now uint64) {
	if s.obsProbe != nil {
		s.obsProbe.Observe(obs.Event{Cycle: now})
	} else {
		s.obsProbe.Observe(obs.Event{Cycle: now}) // want `probe Observe without a dominating nil check`
	}
}

// annotatedObserve opts out explicitly.
func (s *system) annotatedObserve(now uint64) {
	s.obsProbe.Observe(obs.Event{Cycle: now}) //shmlint:allow probeguard — probe set in constructor
}
