// Package obs is a fixture mirror of the live-observability probe
// contract: Probe is an interface whose fields are nil unless the ops
// plane is attached.
package obs

// Event is one observability event.
type Event struct {
	Kind  uint8
	Cycle uint64
}

// Probe observes events.
type Probe interface {
	Observe(e Event)
}
