// Package telemetry is a fixture mirror of the real probe contract: Probe
// is an interface whose fields are nil unless instrumentation is on.
package telemetry

// Event is one telemetry record.
type Event struct {
	Cycle uint64
	Kind  uint8
}

// Probe observes events.
type Probe interface {
	Emit(e Event)
}
