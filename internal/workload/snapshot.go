package workload

import (
	"fmt"
	"hash/fnv"

	"shmgpu/internal/memdef"
	"shmgpu/internal/snapshot"
)

// Checkpoint/restore for benchmarks and their warp programs. Restore
// protocol (driven by gpu.System): the target Bench is freshly built from
// the same spec; System calls NewWarp for every warp in deterministic
// order and immediately loads each program's state, then loads the Bench
// state last — which overwrites the frontier that those NewWarp calls
// populated with the captured one. Cold path only.

// specFingerprint hashes the full spec (including the seed and every
// buffer) plus the grid, so a snapshot can only be restored into a
// benchmark that generates the identical instruction streams.
func (b *Bench) specFingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|grid=%dx%d", b.spec, b.sms, b.warps)
	return h.Sum64()
}

// SaveState implements gpu.StatefulWorkload: the spec fingerprint plus
// the mutable pacing state (everything else in Bench is immutable layout
// derived from the spec).
func (b *Bench) SaveState(e *snapshot.Encoder) {
	e.U64(b.specFingerprint())
	e.Int(b.frontierKernel)
	e.Bool(b.frontier != nil)
	if b.frontier == nil {
		return
	}
	f := b.frontier
	e.Int(len(f.lanes))
	for i := range f.lanes {
		l := &f.lanes[i]
		e.Int(len(l.counts))
		for _, c := range l.counts {
			e.Int(c)
		}
		e.Int(l.min)
		e.Int(l.warps)
	}
	e.Int(f.frozen)
	e.Bool(f.synced)
}

// LoadState implements gpu.StatefulWorkload.
func (b *Bench) LoadState(d *snapshot.Decoder) error {
	fp := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if fp != b.specFingerprint() {
		return fmt.Errorf("workload %s: snapshot was taken with a different spec/seed/grid (fingerprint %#x, this benchmark %#x)",
			b.spec.BenchName, fp, b.specFingerprint())
	}
	b.frontierKernel = d.Int()
	if !d.Bool() {
		b.frontier = nil
		return d.Err()
	}
	nLanes := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	f := &frontierState{lanes: make([]frontierLane, nLanes)}
	for i := range f.lanes {
		l := &f.lanes[i]
		nCounts := d.Len()
		if err := d.Err(); err != nil {
			return err
		}
		l.counts = make([]int, nCounts)
		for j := range l.counts {
			l.counts[j] = d.Int()
		}
		l.min = d.Int()
		l.warps = d.Int()
		if l.min < 0 || l.min >= len(l.counts) && len(l.counts) > 0 {
			return fmt.Errorf("workload %s: frontier lane %d min %d out of range", b.spec.BenchName, i, l.min)
		}
	}
	f.frozen = d.Int()
	f.synced = d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	b.frontier = f
	return nil
}

// SaveState implements gpu.StatefulWarpProgram: the issue position, the
// per-buffer cursors, and the RNG draw count. secBuf is scratch (only
// valid between a generator call and the SM consuming the sectors, never
// at a cycle boundary) and bench/warpIdx/lane/total are rebuilt by
// NewWarp.
func (p *program) SaveState(e *snapshot.Encoder) {
	e.Int(p.issued)
	e.Int(len(p.cursors))
	for _, c := range p.cursors {
		e.U64(uint64(c))
	}
	e.U64(p.rngSrc.n)
}

// LoadState implements gpu.StatefulWarpProgram on a program freshly
// created by NewWarp: it overwrites the cursors and fast-forwards the
// deterministic RNG to the captured draw count.
func (p *program) LoadState(d *snapshot.Decoder) error {
	p.issued = d.Int()
	n := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(p.cursors) {
		return fmt.Errorf("workload: warp %d snapshot has %d cursors, program has %d", p.warpIdx, n, len(p.cursors))
	}
	for i := range p.cursors {
		p.cursors[i] = memdef.Addr(d.U64())
	}
	draws := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if p.rngSrc.n > draws {
		return fmt.Errorf("workload: warp %d RNG already at draw %d, snapshot wants %d (program not fresh)",
			p.warpIdx, p.rngSrc.n, draws)
	}
	p.rngSrc.skipTo(draws)
	return nil
}
