package workload

import (
	"fmt"
	"sort"

	"shmgpu/internal/memdef"
)

// The sixteen benchmark models of paper Table VII. Each Spec is tuned to
// the benchmark's published characteristics:
//
//   - bandwidth utilization band (Table VII) via ComputePerMem,
//   - streaming vs. random off-chip access ratio (Fig. 5) via patterns,
//   - read-only access ratio (Fig. 5) via buffer read-only flags,
//   - constant/texture usage (Table VII) via memory spaces,
//   - write intensity and multi-kernel structure from the benchmark's
//     documented algorithm (Rodinia / Parboil / Polybench sources).
//
// Footprints are scaled down uniformly from the real inputs so simulations
// complete quickly; the secure-memory designs only react to the access
// stream's structure, which is preserved.

const (
	kb = 1 << 10
	mb = 1 << 20
)

// Registry returns the benchmark constructors keyed by name.
func Registry() map[string]func() *Bench {
	return map[string]func() *Bench{
		"atax":          Atax,
		"backprop":      Backprop,
		"bfs":           BFS,
		"b+tree":        BTree,
		"cfd":           CFD,
		"fdtd2d":        FDTD2D,
		"kmeans":        Kmeans,
		"mvt":           MVT,
		"histo":         Histo,
		"lbm":           LBM,
		"mri-gridding":  MRIGridding,
		"sad":           SAD,
		"stencil":       StencilBench,
		"srad":          SRAD,
		"srad_v2":       SRADv2,
		"streamcluster": StreamCluster,
	}
}

// Names returns the benchmark names in the paper's (alphabetical-ish)
// Table VII order.
func Names() []string {
	names := make([]string, 0, 16)
	for n := range Registry() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName builds one benchmark by name, with its built-in seed.
func ByName(name string) (*Bench, error) {
	return ByNameSeeded(name, 0)
}

// ByNameSeeded builds one benchmark by name with an explicit seed for its
// warp programs' random streams. Seed 0 keeps the benchmark's built-in
// seed (the published Table VII characterization); any other value rebases
// the streams, and callers must record it in the run manifest.
func ByNameSeeded(name string, seed int64) (*Bench, error) {
	ctor, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	b := ctor()
	if seed != 0 {
		b.Reseed(seed)
	}
	return b, nil
}

// MemoryIntensive returns the 15 memory-intensive workloads used for the
// overall-performance averages (Figs. 12-16); b+tree is the compute-bound
// one excluded from the 15-benchmark averages.
func MemoryIntensive() []string {
	var out []string
	for _, n := range Names() {
		if n == "b+tree" {
			continue
		}
		out = append(out, n)
	}
	return out
}

// Atax: matrix-vector product then transpose product (Polybench). Large
// read-only matrix streamed twice; vectors gathered; tiny write stream.
// Low bandwidth utilization (23%), high read-only and streaming ratios.
func Atax() *Bench {
	return MustNew(Spec{
		BenchName: "atax",
		Buffers: []Buffer{
			{Name: "A", Bytes: 8 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.78, HostCopied: true},
			{Name: "x", Bytes: 64 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.12, HostCopied: true},
			{Name: "y", Bytes: 256 * kb, Space: memdef.SpaceGlobal, Pattern: Stream, WriteFrac: 0.85, Weight: 0.10},
		},
		ComputePerMem:   46,
		KernelCount:     2,
		MemInstsPerWarp: 220,
		Seed:            101,
	})
}

// Backprop: neural-network training (Rodinia). Weight matrices streamed
// (read-only in the forward kernel, updated in backward), activations RW.
func Backprop() *Bench {
	return MustNew(Spec{
		BenchName: "backprop",
		Buffers: []Buffer{
			{Name: "weights", Bytes: 6 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, WriteFrac: 0.20, Weight: 0.55, HostCopied: true},
			{Name: "input", Bytes: 4 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.30, HostCopied: true},
			{Name: "deltas", Bytes: 1 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, WriteFrac: 0.5, Weight: 0.10},
			{Name: "params", Bytes: 64 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.05, HostCopied: true},
		},
		ComputePerMem:   26,
		KernelCount:     2,
		MemInstsPerWarp: 260,
		Seed:            102,
	})
}

// BFS: breadth-first search (Rodinia). Graph structure read-only but
// randomly accessed; frontier/cost arrays randomly written. The paper's
// problem case: random + write-intensive.
func BFS() *Bench {
	return MustNew(Spec{
		BenchName: "bfs",
		Buffers: []Buffer{
			{Name: "nodes", Bytes: 4 * mb, Space: memdef.SpaceGlobal, Pattern: Random, ReadOnly: true, Weight: 0.35, HostCopied: true},
			{Name: "edges", Bytes: 8 * mb, Space: memdef.SpaceGlobal, Pattern: Random, ReadOnly: true, Weight: 0.30, HostCopied: true},
			{Name: "cost", Bytes: 2 * mb, Space: memdef.SpaceGlobal, Pattern: Random, WriteFrac: 0.55, Weight: 0.25},
			{Name: "frontier", Bytes: 1 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, WriteFrac: 0.5, Weight: 0.08},
			{Name: "params", Bytes: 16 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.02, HostCopied: true},
		},
		ComputePerMem:   34,
		KernelCount:     3,
		MemInstsPerWarp: 190,
		Seed:            103,
	})
}

// BTree: B+tree lookups (Rodinia). Read-only tree, random traversal, very
// low bandwidth (12-15%): the compute-bound outlier.
func BTree() *Bench {
	return MustNew(Spec{
		BenchName: "b+tree",
		Buffers: []Buffer{
			{Name: "tree", Bytes: 6 * mb, Space: memdef.SpaceGlobal, Pattern: Random, ReadOnly: true, Weight: 0.70, HostCopied: true},
			{Name: "keys", Bytes: 1 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.20, HostCopied: true},
			{Name: "results", Bytes: 512 * kb, Space: memdef.SpaceGlobal, Pattern: Stream, WriteFrac: 0.9, Weight: 0.08},
			{Name: "order", Bytes: 16 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.02, HostCopied: true},
		},
		ComputePerMem:   95,
		KernelCount:     1,
		MemInstsPerWarp: 150,
		Seed:            104,
	})
}

// CFD: unstructured-grid Euler solver (Rodinia). Streams over element
// data with read-only geometry; moderate-to-high utilization (27-75%).
func CFD() *Bench {
	return MustNew(Spec{
		BenchName: "cfd",
		Buffers: []Buffer{
			{Name: "variables", Bytes: 8 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, WriteFrac: 0.30, Weight: 0.45},
			{Name: "areas", Bytes: 4 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.25, HostCopied: true},
			{Name: "neighbors", Bytes: 6 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.25, HostCopied: true},
			{Name: "constants", Bytes: 16 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.05, HostCopied: true},
		},
		ComputePerMem:   13,
		KernelCount:     2,
		MemInstsPerWarp: 300,
		Seed:            105,
	})
}

// FDTD2D: 2-D finite-difference time domain (Polybench). Near-perfect
// streaming (99.35%) and read-only ratio (99.87%), 90-93% bandwidth
// utilization: SHM's showcase.
func FDTD2D() *Bench {
	return MustNew(Spec{
		BenchName: "fdtd2d",
		Buffers: []Buffer{
			{Name: "ex", Bytes: 8 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.32, HostCopied: true},
			{Name: "ey", Bytes: 8 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.32, HostCopied: true},
			{Name: "hz", Bytes: 8 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.30, HostCopied: true},
			{Name: "out", Bytes: 2 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, WriteFrac: 0.92, Weight: 0.05},
			{Name: "coef", Bytes: 16 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.01, HostCopied: true},
		},
		ComputePerMem:   8,
		KernelCount:     2,
		RewriteInputs:   true,
		UseResetAPI:     true,
		MemInstsPerWarp: 300,
		Seed:            106,
	})
}

// Kmeans: k-means clustering (Rodinia). Feature matrix bound as texture
// (27.75% of L2 misses), streamed+gathered read-only; membership written.
// High utilization (67-81%).
func Kmeans() *Bench {
	return MustNew(Spec{
		BenchName: "kmeans",
		Buffers: []Buffer{
			{Name: "features-tex", Bytes: 10 * mb, Space: memdef.SpaceTexture, Pattern: Gather, ReadOnly: true, Weight: 0.30, HostCopied: true},
			{Name: "features", Bytes: 10 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.50, HostCopied: true},
			{Name: "centroids", Bytes: 64 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.08, HostCopied: true},
			{Name: "membership", Bytes: 1 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, WriteFrac: 0.8, Weight: 0.12},
		},
		ComputePerMem:   11,
		KernelCount:     2,
		MemInstsPerWarp: 340,
		Seed:            107,
	})
}

// MVT: matrix-vector product and transpose (Polybench), like atax: big
// read-only matrix, low utilization (22%).
func MVT() *Bench {
	return MustNew(Spec{
		BenchName: "mvt",
		Buffers: []Buffer{
			{Name: "A", Bytes: 8 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.80, HostCopied: true},
			{Name: "x1x2", Bytes: 128 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.10, HostCopied: true},
			{Name: "y", Bytes: 256 * kb, Space: memdef.SpaceGlobal, Pattern: Stream, WriteFrac: 0.8, Weight: 0.10},
		},
		ComputePerMem:   48,
		KernelCount:     2,
		MemInstsPerWarp: 220,
		Seed:            108,
	})
}

// Histo: histogramming (Parboil). Input streamed read-only; bins written
// randomly (scatter). 55% utilization.
func Histo() *Bench {
	return MustNew(Spec{
		BenchName: "histo",
		Buffers: []Buffer{
			{Name: "input", Bytes: 12 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.62, HostCopied: true},
			{Name: "bins", Bytes: 2 * mb, Space: memdef.SpaceGlobal, Pattern: Random, WriteFrac: 0.65, Weight: 0.35},
			{Name: "params", Bytes: 16 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.03, HostCopied: true},
		},
		ComputePerMem:   16,
		KernelCount:     1,
		MemInstsPerWarp: 320,
		Seed:            109,
	})
}

// LBM: Lattice-Boltzmann (Parboil). Two big grids: stream-read source,
// stream-write destination (~50% writes). 95% utilization, very high L2
// miss rate: the victim-cache beneficiary.
func LBM() *Bench {
	return MustNew(Spec{
		BenchName: "lbm",
		Buffers: []Buffer{
			{Name: "src", Bytes: 12 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.50, HostCopied: true},
			{Name: "dst", Bytes: 12 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, WriteFrac: 0.96, Weight: 0.48},
			{Name: "params", Bytes: 16 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.02, HostCopied: true},
		},
		ComputePerMem:   7,
		KernelCount:     2,
		RewriteInputs:   true,
		MemInstsPerWarp: 420,
		Seed:            110,
	})
}

// MRIGridding: MRI gridding (Parboil). Scattered sample reads and grid
// writes: random and write-intensive, 30-47% utilization. The other SHM
// problem case.
func MRIGridding() *Bench {
	return MustNew(Spec{
		BenchName: "mri-gridding",
		Buffers: []Buffer{
			{Name: "samples", Bytes: 6 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.40, HostCopied: true},
			{Name: "grid", Bytes: 8 * mb, Space: memdef.SpaceGlobal, Pattern: Random, WriteFrac: 0.70, Weight: 0.55},
			{Name: "kernel-table", Bytes: 64 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.05, HostCopied: true},
		},
		ComputePerMem:   22,
		KernelCount:     1,
		MemInstsPerWarp: 260,
		Seed:            111,
	})
}

// SAD: sum of absolute differences (Parboil). Reference frame bound as
// texture; current frame streamed; results written. 17% utilization but
// poor L2 locality: second victim-cache beneficiary.
func SAD() *Bench {
	return MustNew(Spec{
		BenchName: "sad",
		Buffers: []Buffer{
			{Name: "ref-tex", Bytes: 6 * mb, Space: memdef.SpaceTexture, Pattern: Gather, ReadOnly: true, Weight: 0.40, HostCopied: true},
			{Name: "cur", Bytes: 6 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.35, HostCopied: true},
			{Name: "sad-out", Bytes: 4 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, WriteFrac: 0.9, Weight: 0.23},
			{Name: "params", Bytes: 16 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.02, HostCopied: true},
		},
		ComputePerMem:   60,
		KernelCount:     1,
		MemInstsPerWarp: 200,
		Seed:            112,
	})
}

// StencilBench: 3-D Jacobi stencil (Parboil). Streaming with neighbor
// touches; 11-42% utilization.
func StencilBench() *Bench {
	return MustNew(Spec{
		BenchName: "stencil",
		Buffers: []Buffer{
			{Name: "in", Bytes: 8 * mb, Space: memdef.SpaceGlobal, Pattern: Stencil, ReadOnly: true, Weight: 0.70, HostCopied: true},
			{Name: "out", Bytes: 8 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, WriteFrac: 0.92, Weight: 0.28},
			{Name: "coef", Bytes: 16 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.02, HostCopied: true},
		},
		ComputePerMem:   30,
		KernelCount:     2,
		RewriteInputs:   true,
		MemInstsPerWarp: 240,
		Seed:            113,
	})
}

// SRAD: speckle-reducing anisotropic diffusion (Rodinia), v1: moderate
// utilization (20-22%), image streamed RW.
func SRAD() *Bench {
	return MustNew(Spec{
		BenchName: "srad",
		Buffers: []Buffer{
			{Name: "image", Bytes: 6 * mb, Space: memdef.SpaceGlobal, Pattern: Stencil, WriteFrac: 0.25, Weight: 0.60},
			{Name: "coeffs", Bytes: 6 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.35, HostCopied: true},
			{Name: "params", Bytes: 16 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.05, HostCopied: true},
		},
		ComputePerMem:   42,
		KernelCount:     2,
		MemInstsPerWarp: 220,
		Seed:            114,
	})
}

// SRADv2: the high-utilization variant (72-78%).
func SRADv2() *Bench {
	return MustNew(Spec{
		BenchName: "srad_v2",
		Buffers: []Buffer{
			{Name: "image", Bytes: 10 * mb, Space: memdef.SpaceGlobal, Pattern: Stencil, WriteFrac: 0.25, Weight: 0.55},
			{Name: "north-south", Bytes: 8 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.40, HostCopied: true},
			{Name: "params", Bytes: 16 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.05, HostCopied: true},
		},
		ComputePerMem:   11,
		KernelCount:     2,
		MemInstsPerWarp: 340,
		Seed:            115,
	})
}

// StreamCluster: online clustering (Rodinia). Point coordinates streamed
// read-only repeatedly (multi-pass); 78% utilization.
func StreamCluster() *Bench {
	return MustNew(Spec{
		BenchName: "streamcluster",
		Buffers: []Buffer{
			{Name: "points", Bytes: 10 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 0.80, HostCopied: true},
			{Name: "centers", Bytes: 512 * kb, Space: memdef.SpaceGlobal, Pattern: Random, WriteFrac: 0.30, Weight: 0.15},
			{Name: "weights", Bytes: 16 * kb, Space: memdef.SpaceConstant, Pattern: Gather, ReadOnly: true, Weight: 0.05, HostCopied: true},
		},
		ComputePerMem:   10,
		KernelCount:     2,
		MemInstsPerWarp: 360,
		Seed:            116,
	})
}
