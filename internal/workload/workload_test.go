package workload

import (
	"testing"

	"shmgpu/internal/gpu"
	"shmgpu/internal/memdef"
)

func TestAllBenchmarksConstruct(t *testing.T) {
	for name, ctor := range Registry() {
		b := ctor()
		if b.Name() != name {
			t.Errorf("%s: Name() = %q", name, b.Name())
		}
		if b.Kernels() < 1 {
			t.Errorf("%s: no kernels", name)
		}
		if b.Footprint() == 0 {
			t.Errorf("%s: zero footprint", name)
		}
		if b.Footprint() > 64<<20 {
			t.Errorf("%s: footprint %d too large for fast simulation", name, b.Footprint())
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("have %d benchmarks, want 16 (Table VII)", len(names))
	}
	mi := MemoryIntensive()
	if len(mi) != 15 {
		t.Fatalf("memory-intensive set has %d, want 15", len(mi))
	}
	for _, n := range mi {
		if n == "b+tree" {
			t.Error("b+tree must be excluded from the memory-intensive set")
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("fdtd2d"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{BenchName: "", Buffers: []Buffer{{Name: "b", Bytes: 1, Weight: 1}}, MemInstsPerWarp: 1},
		{BenchName: "x", MemInstsPerWarp: 1},
		{BenchName: "x", Buffers: []Buffer{{Name: "b", Bytes: 0, Weight: 1}}, MemInstsPerWarp: 1},
		{BenchName: "x", Buffers: []Buffer{{Name: "b", Bytes: 1, Weight: 0}}, MemInstsPerWarp: 1},
		{BenchName: "x", Buffers: []Buffer{{Name: "b", Bytes: 1, Weight: 1}}, MemInstsPerWarp: 0},
	}
	for i, s := range bad {
		if _, err := New(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestBuffersRegionAlignedAndDisjoint(t *testing.T) {
	for name, ctor := range Registry() {
		b := ctor()
		var prevEnd memdef.Addr
		for i, pb := range b.buffers {
			if uint64(pb.base)%memdef.RegionSize != 0 {
				t.Errorf("%s buffer %d base %#x not region-aligned", name, i, uint64(pb.base))
			}
			if pb.base < prevEnd {
				t.Errorf("%s buffer %d overlaps previous", name, i)
			}
			prevEnd = pb.base + memdef.Addr(pb.Bytes)
		}
	}
}

func TestWarpDeterminism(t *testing.T) {
	b1 := FDTD2D()
	b2 := FDTD2D()
	b1.SetGrid(4, 8)
	b2.SetGrid(4, 8)
	p1 := b1.NewWarp(0, 2, 3)
	p2 := b2.NewWarp(0, 2, 3)
	for i := 0; i < 200; i++ {
		c1, m1, d1 := p1.Next()
		c2, m2, d2 := p2.Next()
		if c1 != c2 || d1 != d2 || len(m1.Sectors) != len(m2.Sectors) {
			t.Fatalf("divergence at %d", i)
		}
		for j := range m1.Sectors {
			if m1.Sectors[j] != m2.Sectors[j] {
				t.Fatalf("address divergence at %d.%d", i, j)
			}
		}
		if d1 {
			break
		}
	}
}

func TestWarpsTerminate(t *testing.T) {
	for name, ctor := range Registry() {
		b := ctor()
		b.SetGrid(2, 2)
		p := b.NewWarp(0, 0, 0)
		steps := 0
		for {
			_, _, done := p.Next()
			if done {
				break
			}
			steps++
			if steps > b.Spec().MemInstsPerWarp+1 {
				t.Fatalf("%s: warp did not terminate", name)
			}
		}
	}
}

func TestAddressesStayInBuffers(t *testing.T) {
	for name, ctor := range Registry() {
		b := ctor()
		b.SetGrid(4, 8)
		p := b.NewWarp(0, 1, 1)
		for {
			_, mem, done := p.Next()
			if done {
				break
			}
			for _, a := range mem.Sectors {
				in := false
				for _, pb := range b.buffers {
					if a >= pb.base && a < pb.base+memdef.Addr(pb.Bytes) {
						in = true
						// The space of the instruction must match the
						// buffer it targets.
						if mem.Space != pb.Space {
							t.Fatalf("%s: inst space %v for buffer %q space %v", name, mem.Space, pb.Name, pb.Space)
						}
						break
					}
				}
				if !in {
					t.Fatalf("%s: address %#x outside all buffers", name, uint64(a))
				}
			}
		}
	}
}

func TestReadOnlyBuffersNeverWritten(t *testing.T) {
	for name, ctor := range Registry() {
		b := ctor()
		b.SetGrid(4, 4)
		for w := 0; w < 4; w++ {
			p := b.NewWarp(0, 0, w)
			for {
				_, mem, done := p.Next()
				if done {
					break
				}
				if !mem.Write {
					continue
				}
				for _, a := range mem.Sectors {
					for _, pb := range b.buffers {
						if a >= pb.base && a < pb.base+memdef.Addr(pb.Bytes) && pb.ReadOnly {
							t.Fatalf("%s: write to read-only buffer %q", name, pb.Name)
						}
					}
				}
			}
		}
	}
}

func TestSetupTruths(t *testing.T) {
	b := FDTD2D()
	setup := b.Setup(0)
	if len(setup.CopyRanges) == 0 {
		t.Fatal("no host copies at context init")
	}
	if len(setup.ReadOnlyTruth) == 0 {
		t.Fatal("no read-only ground truth")
	}
	if len(setup.StreamTruths) != len(b.buffers) {
		t.Fatalf("stream truths = %d, want %d", len(setup.StreamTruths), len(b.buffers))
	}
	if !setup.UseResetAPI {
		t.Error("fdtd2d should use the reset API")
	}
	// Later kernels re-copy inputs only when RewriteInputs.
	s1 := b.Setup(1)
	if len(s1.CopyRanges) == 0 {
		t.Error("fdtd2d rewrites inputs; kernel 1 should have copies")
	}
	atax := Atax()
	if got := atax.Setup(1); len(got.CopyRanges) != 0 {
		t.Error("atax does not rewrite inputs; kernel 1 should have no copies")
	}
}

func TestStreamCoverageIsComplete(t *testing.T) {
	// All warps together must touch every block of a streamed buffer
	// (ground truth behind the streaming detector's accuracy).
	spec := Spec{
		BenchName: "cover",
		Buffers: []Buffer{
			{Name: "buf", Bytes: 1 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 1},
		},
		ComputePerMem:   1,
		MemInstsPerWarp: 4096,
		Seed:            1,
	}
	b := MustNew(spec)
	b.SetGrid(4, 8)
	touched := map[memdef.Addr]bool{}
	for sm := 0; sm < 4; sm++ {
		for w := 0; w < 8; w++ {
			p := b.NewWarp(0, sm, w)
			for {
				_, mem, done := p.Next()
				if done {
					break
				}
				for _, a := range mem.Sectors {
					touched[memdef.BlockAddr(a)] = true
				}
			}
		}
	}
	blocks := int(spec.Buffers[0].Bytes / memdef.BlockSize)
	if len(touched) < blocks {
		t.Fatalf("stream covered %d/%d blocks", len(touched), blocks)
	}
}

func TestBenchImplementsInterfaces(t *testing.T) {
	var _ gpu.Workload = (*Bench)(nil)
	var _ gpu.GridAware = (*Bench)(nil)
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{Stream: "stream", Random: "random", Stencil: "stencil", Gather: "gather"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
	if !Stream.Streaming() || !Stencil.Streaming() || Random.Streaming() || Gather.Streaming() {
		t.Error("Streaming() classification wrong")
	}
}

func TestScheduleMatchesWeights(t *testing.T) {
	// The deterministic buffer schedule must realize each buffer's weight
	// within ~2% over its period.
	b := FDTD2D()
	counts := make(map[int]int)
	for _, bi := range b.schedule {
		counts[bi]++
	}
	var totalW float64
	for _, pb := range b.buffers {
		totalW += pb.Weight
	}
	period := float64(len(b.schedule))
	for i, pb := range b.buffers {
		want := pb.Weight / totalW
		got := float64(counts[i]) / period
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("buffer %q schedule share %.3f, want %.3f", pb.Name, got, want)
		}
	}
}

func TestWriteSlotsMatchWriteFrac(t *testing.T) {
	b := LBM() // dst buffer has WriteFrac 0.96
	var dstIdx = -1
	for i, pb := range b.buffers {
		if pb.Name == "dst" {
			dstIdx = i
		}
	}
	if dstIdx < 0 {
		t.Fatal("dst buffer missing")
	}
	occ, writes := 0, 0
	for s, bi := range b.schedule {
		if bi == dstIdx {
			occ++
			if b.writeSlot[s] {
				writes++
			}
		}
	}
	got := float64(writes) / float64(occ)
	if got < 0.90 || got > 1.0 {
		t.Errorf("dst write fraction in schedule = %.3f, want ~0.96", got)
	}
}

func TestFrontierStateOrdering(t *testing.T) {
	f := newFrontierState(10, 2)
	f.register(0)
	f.register(1)
	f.syncTick()
	if f.Min() != 0 {
		t.Fatalf("initial min = %d", f.Min())
	}
	f.advance(0, 0) // lane 0's warp to step 1
	f.syncTick()
	if f.Min() != 0 {
		t.Fatalf("min moved early: %d", f.Min())
	}
	f.advance(1, 0) // lane 1's warp to step 1
	f.syncTick()
	if f.Min() != 1 {
		t.Fatalf("min = %d, want 1", f.Min())
	}
}

func TestFrontierMinIsFrozenUntilSync(t *testing.T) {
	// Advances after a syncTick must not be visible to Min() until the
	// next syncTick: warps pace against a per-tick snapshot, which is what
	// makes pacing independent of same-tick execution order.
	f := newFrontierState(10, 1)
	f.register(0)
	f.syncTick()
	f.advance(0, 0)
	if f.Min() != 0 {
		t.Fatalf("mid-tick advance leaked into Min: %d", f.Min())
	}
	f.syncTick()
	if f.Min() != 1 {
		t.Fatalf("min after sync = %d, want 1", f.Min())
	}
}

func TestFrontierPacingBoundsSpread(t *testing.T) {
	// Drive two warps; the fast one must stall once it is FrontierWindow
	// ahead of the slow one.
	spec := Spec{
		BenchName: "pace",
		Buffers: []Buffer{
			{Name: "b", Bytes: 1 * mb, Space: memdef.SpaceGlobal, Pattern: Stream, ReadOnly: true, Weight: 1},
		},
		ComputePerMem:   1,
		MemInstsPerWarp: 100,
		FrontierWindow:  2,
		Seed:            1,
	}
	b := MustNew(spec)
	b.SetGrid(1, 2)
	fast := b.NewWarp(0, 0, 0)
	_ = b.NewWarp(0, 0, 1) // slow warp never advances
	stalls, real := 0, 0
	for i := 0; i < 20; i++ {
		_, mem, done := fast.Next()
		if done {
			break
		}
		if mem.Stall {
			stalls++
		} else {
			real++
		}
	}
	if real > spec.FrontierWindow+1 {
		t.Errorf("fast warp issued %d real instructions past a stuck peer (window %d)", real, spec.FrontierWindow)
	}
	if stalls == 0 {
		t.Error("no stall bubbles emitted")
	}
}
