// Package workload provides the benchmark models driving the simulator:
// a generic, declarative kernel model (buffers with sizes, memory spaces,
// access patterns, read-only status, and write fractions) plus the sixteen
// benchmark instances of the paper's Table VII (Rodinia, Parboil and
// Polybench workloads), parameterized to match their published
// characteristics: bandwidth utilization bands, streaming and read-only
// access ratios (Fig. 5), constant/texture memory usage, write intensity,
// and multi-kernel structure.
//
// The real benchmarks are CUDA/OpenCL programs that cannot execute here;
// these models replay each benchmark's documented off-chip access behaviour
// (the only input the secure-memory designs react to), generated
// deterministically from a seed.
package workload

import (
	"fmt"
	"math/rand"

	"shmgpu/internal/gpu"
	"shmgpu/internal/memdef"
)

// Pattern is a buffer's dominant access pattern.
type Pattern uint8

const (
	// Stream sweeps every block of the buffer in a coherent coalesced
	// frontier (warp i handles blocks i, i+N, ...), possibly multi-pass.
	Stream Pattern = iota
	// Random touches uniformly random sectors with poor coalescing.
	Random
	// Stencil streams with neighbor-row touches (coverage stays complete,
	// so it detects as streaming).
	Stencil
	// Gather reads random blocks of a small buffer with high reuse
	// (texture/constant-style lookups).
	Gather
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Stream:
		return "stream"
	case Random:
		return "random"
	case Stencil:
		return "stencil"
	default:
		return "gather"
	}
}

// Streaming reports whether the pattern's ground truth is "streaming" for
// the dual-granularity MAC decision.
func (p Pattern) Streaming() bool { return p == Stream || p == Stencil }

// ParsePattern maps a pattern name back to its Pattern; the empty string
// selects Stream. It is the inverse of String, used by declarative
// workload descriptions (the fuzz corpus's replayable JSON cases).
func ParsePattern(name string) (Pattern, error) {
	switch name {
	case "", "stream":
		return Stream, nil
	case "random":
		return Random, nil
	case "stencil":
		return Stencil, nil
	case "gather":
		return Gather, nil
	}
	return Stream, fmt.Errorf("workload: unknown access pattern %q", name)
}

// Buffer declares one device allocation of a benchmark.
type Buffer struct {
	// Name identifies the buffer ("matrix A", "edge list", ...).
	Name string
	// Bytes is the allocation size (rounded up to a 16 KB region).
	Bytes uint64
	// Space is the GPU memory space backing the buffer.
	Space memdef.Space
	// Pattern is the dominant access pattern.
	Pattern Pattern
	// ReadOnly marks buffers the kernels never write.
	ReadOnly bool
	// WriteFrac is the write fraction of accesses to this buffer
	// (ignored when ReadOnly).
	WriteFrac float64
	// Weight is the buffer's share of the kernel's memory instructions.
	Weight float64
	// HostCopied marks buffers populated by host→device copies (the
	// command processor marks them read-only at context init).
	HostCopied bool
}

// Spec declares one benchmark.
type Spec struct {
	// BenchName is the benchmark's name (Table VII row).
	BenchName string
	// Buffers lists the device allocations.
	Buffers []Buffer
	// ComputePerMem is the compute instructions issued per memory
	// instruction; it tunes the bandwidth utilization (Table VII).
	ComputePerMem int
	// KernelCount is the number of kernel launches.
	KernelCount int
	// RewriteInputs re-copies host-copied buffers before later kernels.
	RewriteInputs bool
	// UseResetAPI uses InputReadOnlyReset for those re-copies.
	UseResetAPI bool
	// MemInstsPerWarp is each warp's memory-instruction budget per kernel.
	MemInstsPerWarp int
	// FrontierWindow bounds how many memory-instruction steps a warp may
	// run ahead of the slowest warp, modeling the in-order tile dispatch
	// of real grids (resident threadblocks process consecutive tiles, so
	// the active data frontier stays narrow). 0 selects the default (3).
	FrontierWindow int
	// Seed makes generation deterministic.
	Seed int64
}

// placedBuffer is a buffer with its assigned physical range.
type placedBuffer struct {
	Buffer
	base memdef.Addr
}

func (b placedBuffer) rangeOf() gpu.AddrRange {
	return gpu.AddrRange{Lo: b.base, Hi: b.base + memdef.Addr(b.Bytes)}
}

// Bench is a runnable benchmark: a Spec with buffers laid out in physical
// memory. It implements gpu.Workload and gpu.GridAware.
type Bench struct {
	spec       Spec
	buffers    []placedBuffer
	footprint  uint64
	sms, warps int
	// schedule is the deterministic per-instruction buffer sequence shared
	// by every warp — real kernels execute the same code in every warp, so
	// the buffer touched by the i-th memory instruction is the same across
	// the grid. This keeps warps' streaming cursors aligned (a coherent
	// frontier), which is what the paper's streaming detector relies on.
	schedule []int
	// writeSlot[i] deterministically marks which occurrences of each
	// buffer in the schedule are writes (again uniform across warps).
	writeSlot []bool
	// frontier is the shared per-kernel pacing state; see frontierState.
	frontier       *frontierState
	frontierKernel int
}

// frontierState keeps per-SM histograms ("lanes") of registered warps'
// progress through their memory-instruction streams. The slowest step
// across lanes is frozen once per tick (syncTick) and every warp paces
// against that frozen value, so the pacing decision is identical whether
// the SMs tick sequentially or sharded across goroutines: a warp's lane
// is only ever advanced from its own SM's tick, and reads go through the
// tick-start snapshot. (The previous design advanced one shared histogram
// mid-tick, making later SMs observe earlier SMs' same-tick progress —
// an order dependence the parallel engine cannot reproduce.)
type frontierState struct {
	lanes  []frontierLane
	frozen int
	// synced flips on the first syncTick. Inside a simulation the system
	// syncs every tick, so Min always reads the frozen snapshot; warps
	// driven standalone (unit tests, corpus generators) never sync and get
	// the live minimum instead — without the fallback a lone warp would
	// pace against a permanently stale frontier and stall forever.
	synced bool
}

// frontierLane is one SM's progress histogram, padded so lanes written
// concurrently by different shard workers do not share cache lines.
type frontierLane struct {
	counts []int
	min    int
	warps  int
	_      [64 - 24 - 8 - 8]byte
}

func newFrontierState(steps, lanes int) *frontierState {
	f := &frontierState{lanes: make([]frontierLane, lanes)}
	for i := range f.lanes {
		f.lanes[i].counts = make([]int, steps+1)
	}
	return f
}

// register adds a warp at step 0 of the given lane (its SM).
func (f *frontierState) register(lane int) {
	f.lanes[lane].counts[0]++
	f.lanes[lane].warps++
}

// advance moves one of lane's warps from step to step+1.
func (f *frontierState) advance(lane, step int) {
	l := &f.lanes[lane]
	l.counts[step]--
	l.counts[step+1]++
	for l.min < len(l.counts)-1 && l.counts[l.min] == 0 {
		l.min++
	}
}

// syncTick freezes the cross-lane minimum for the coming tick.
func (f *frontierState) syncTick() {
	f.synced = true
	f.frozen = f.liveMin()
}

// liveMin computes the slowest registered warp's step right now.
func (f *frontierState) liveMin() int {
	min := -1
	for i := range f.lanes {
		if f.lanes[i].warps == 0 {
			continue
		}
		if min < 0 || f.lanes[i].min < min {
			min = f.lanes[i].min
		}
	}
	if min < 0 {
		min = 0
	}
	return min
}

// Min returns the slowest registered warp's step: the frozen tick-start
// snapshot once syncTick has ever run, the live value before then.
func (f *frontierState) Min() int {
	if f.synced {
		return f.frozen
	}
	return f.liveMin()
}

// New lays out the spec's buffers (region-aligned, consecutive) and returns
// the runnable benchmark.
func New(spec Spec) (*Bench, error) {
	if spec.BenchName == "" {
		return nil, fmt.Errorf("workload: missing benchmark name")
	}
	if len(spec.Buffers) == 0 {
		return nil, fmt.Errorf("workload %s: no buffers", spec.BenchName)
	}
	if spec.KernelCount <= 0 {
		spec.KernelCount = 1
	}
	if spec.MemInstsPerWarp <= 0 {
		return nil, fmt.Errorf("workload %s: MemInstsPerWarp must be positive", spec.BenchName)
	}
	b := &Bench{spec: spec, sms: 30, warps: 24}
	next := memdef.Addr(0)
	var totalWeight float64
	for _, buf := range spec.Buffers {
		if buf.Bytes == 0 || buf.Weight <= 0 {
			return nil, fmt.Errorf("workload %s: buffer %q needs positive size and weight", spec.BenchName, buf.Name)
		}
		size := (buf.Bytes + memdef.RegionSize - 1) &^ (memdef.RegionSize - 1)
		pb := placedBuffer{Buffer: buf, base: next}
		pb.Bytes = size
		b.buffers = append(b.buffers, pb)
		next += memdef.Addr(size)
		totalWeight += buf.Weight
	}
	b.footprint = uint64(next)
	b.buildSchedule(totalWeight)
	return b, nil
}

// buildSchedule lays out a Bresenham-interleaved buffer sequence of fixed
// period and the per-occurrence write slots.
func (b *Bench) buildSchedule(totalWeight float64) {
	const period = 512
	acc := make([]float64, len(b.buffers))
	occur := make([]int, len(b.buffers))
	written := make([]float64, len(b.buffers))
	b.schedule = make([]int, period)
	b.writeSlot = make([]bool, period)
	for s := 0; s < period; s++ {
		best := 0
		for i := range b.buffers {
			acc[i] += b.buffers[i].Weight / totalWeight
			if acc[i] > acc[best] {
				best = i
			}
		}
		acc[best]--
		b.schedule[s] = best
		pb := &b.buffers[best]
		if !pb.ReadOnly && pb.WriteFrac > 0 {
			occur[best]++
			if written[best]+1 <= float64(occur[best])*pb.WriteFrac {
				b.writeSlot[s] = true
				written[best]++
			}
		}
	}
}

// MustNew is New panicking on error (benchmark definitions are static).
func MustNew(spec Spec) *Bench {
	b, err := New(spec)
	if err != nil {
		panic(err)
	}
	return b
}

// Name implements gpu.Workload.
func (b *Bench) Name() string { return b.spec.BenchName }

// Seed returns the seed every warp program's random stream derives from.
func (b *Bench) Seed() int64 { return b.spec.Seed }

// Reseed overrides the benchmark's built-in seed, rebasing every warp
// program's random stream. Call before the run starts; the run manifest
// must record the value so the run is reproducible.
func (b *Bench) Reseed(seed int64) { b.spec.Seed = seed }

// Kernels implements gpu.Workload.
func (b *Bench) Kernels() int { return b.spec.KernelCount }

// Footprint returns the total allocated bytes.
func (b *Bench) Footprint() uint64 { return b.footprint }

// Spec returns the benchmark's declaration.
func (b *Bench) Spec() Spec { return b.spec }

// SetGrid implements gpu.GridAware.
func (b *Bench) SetGrid(sms, warpsPerSM int) { b.sms, b.warps = sms, warpsPerSM }

// Setup implements gpu.Workload.
func (b *Bench) Setup(k int) gpu.KernelSetup {
	var setup gpu.KernelSetup
	for _, pb := range b.buffers {
		r := pb.rangeOf()
		if pb.HostCopied && (k == 0 || b.spec.RewriteInputs) {
			setup.CopyRanges = append(setup.CopyRanges, r)
		}
		if pb.ReadOnly {
			setup.ReadOnlyTruth = append(setup.ReadOnlyTruth, r)
		}
		setup.StreamTruths = append(setup.StreamTruths, gpu.StreamTruth{
			Range: r, Streaming: pb.Pattern.Streaming(),
		})
	}
	setup.UseResetAPI = b.spec.UseResetAPI
	return setup
}

// SyncTick implements gpu.TickSynced: the system calls it once at the top
// of every tick to freeze the pacing frontier the coming tick's warps
// read. Required for order-independence under the sharded parallel
// engine; the sequential loop calls it too so both modes share one
// pacing semantics (and stay byte-identical).
func (b *Bench) SyncTick() {
	if b.frontier != nil {
		b.frontier.syncTick()
	}
}

// NewWarp implements gpu.Workload.
func (b *Bench) NewWarp(kernel, sm, warp int) gpu.WarpProgram {
	idx := sm*b.warps + warp
	total := b.sms * b.warps
	if b.frontier == nil || b.frontierKernel != kernel {
		b.frontier = newFrontierState(b.spec.MemInstsPerWarp, b.sms)
		b.frontierKernel = kernel
	}
	b.frontier.register(sm)
	seed := b.spec.Seed*1_000_003 + int64(kernel)*131_071 + int64(idx)
	src := newCountingSource(seed)
	p := &program{
		bench:   b,
		rng:     rand.New(src),
		rngSrc:  src,
		warpIdx: idx,
		lane:    sm,
		total:   total,
		cursors: make([]memdef.Addr, len(b.buffers)),
		// Stencil is the widest generator: a full stream stride plus two
		// neighbor-row sectors.
		secBuf: make([]memdef.Addr, 0, streamStride/memdef.SectorSize+2),
	}
	for i := range p.cursors {
		p.cursors[i] = memdef.Addr(idx) * memdef.PartitionStride
	}
	return p
}
