package workload

import (
	"math/rand"

	"shmgpu/internal/gpu"
	"shmgpu/internal/memdef"
)

// program generates one warp's instruction stream for a Bench.
type program struct {
	bench *Bench
	rng   *rand.Rand
	// rngSrc is the counting source behind rng; the draw count is the
	// serializable RNG position (see countingSource).
	rngSrc  *countingSource
	warpIdx int
	// lane is the warp's SM index: the frontier lane it advances. Only the
	// owning SM's tick calls Next, so lane writes are single-writer even
	// when SMs tick on different shard workers.
	lane    int
	total   int
	cursors []memdef.Addr // per-buffer streaming cursor (buffer-relative)
	issued  int
	// secBuf is the reusable sector scratch the generators fill. issueMem
	// consumes MemInst.Sectors before the SM calls advance() again, so one
	// buffer per program is never aliased across two live instructions.
	secBuf []memdef.Addr
}

// Next implements gpu.WarpProgram.
func (p *program) Next() (int, gpu.MemInst, bool) {
	if p.issued >= p.bench.spec.MemInstsPerWarp {
		return 0, gpu.MemInst{}, true
	}
	// Frontier pacing: stay within the window of the slowest warp (as of
	// the tick-start frontier snapshot), modeling in-order tile dispatch.
	window := p.bench.spec.FrontierWindow
	if window <= 0 {
		window = 1
	}
	if p.issued > p.bench.frontier.Min()+window {
		return 0, gpu.MemInst{Stall: true}, false
	}
	slot := p.issued % len(p.bench.schedule)
	p.issued++
	p.bench.frontier.advance(p.lane, p.issued-1)

	// Buffer choice and write position come from the shared deterministic
	// schedule: every warp runs the same kernel code, so the i-th memory
	// instruction targets the same buffer (and is a write at the same
	// program points) in every warp.
	bi := p.bench.schedule[slot]
	pb := &p.bench.buffers[bi]

	var inst gpu.MemInst
	inst.Space = pb.Space
	write := !pb.ReadOnly && p.bench.writeSlot[slot]
	inst.Write = write

	switch pb.Pattern {
	case Stream:
		inst.Sectors = p.streamSectors(bi, pb)
	case Stencil:
		inst.Sectors = p.stencilSectors(bi, pb)
	case Random:
		inst.Sectors = p.randomSectors(pb, 4)
	case Gather:
		inst.Sectors = p.gatherSectors(pb)
	}

	// Compute instructions between memory operations, with ±1 jitter to
	// decorrelate warps.
	compute := p.bench.spec.ComputePerMem
	if compute > 1 {
		compute += p.rng.Intn(3) - 1
	}
	return compute, inst, false
}

// streamStride is the bytes one streaming memory instruction covers: a full
// 256 B partition stride (two coalesced 128 B blocks). This models the
// thread coarsening real streaming kernels use (each thread handles several
// elements), which keeps each warp's sweep rate high enough for a coherent
// frontier.
const streamStride = memdef.PartitionStride

// streamSectors advances the warp's stride-cyclic cursor through the buffer
// (warp i handles strides i, i+total, ...), wrapping for multi-pass
// streams, and touches the full 256 B stride (8 coalesced sectors).
func (p *program) streamSectors(bi int, pb *placedBuffer) []memdef.Addr {
	cur := p.cursors[bi]
	if uint64(cur) >= pb.Bytes {
		// Wrap to this warp's first stride for another pass.
		cur = memdef.Addr(p.warpIdx) * streamStride
		if uint64(cur) >= pb.Bytes {
			cur = 0
		}
	}
	p.cursors[bi] = cur + memdef.Addr(p.total)*streamStride
	base := pb.base + cur
	out := p.secBuf[:0]
	for i := 0; i < streamStride/memdef.SectorSize; i++ {
		out = append(out, base+memdef.Addr(i*memdef.SectorSize)) //shm:alloc-ok fills the preallocated secBuf scratch; capacity covers the widest generator
	}
	return out
}

// stencilSectors streams like streamSectors but adds two neighbor-row
// sectors (above and below); neighbors stay inside the buffer.
func (p *program) stencilSectors(bi int, pb *placedBuffer) []memdef.Addr {
	out := p.streamSectors(bi, pb)
	const rowBytes = 4096 // logical stencil row
	base := out[0]
	rel := uint64(base - pb.base)
	if rel >= rowBytes {
		out = append(out, base-rowBytes) //shm:alloc-ok secBuf capacity covers the stream stride plus both neighbor rows
	}
	if rel+rowBytes < pb.Bytes {
		out = append(out, base+rowBytes) //shm:alloc-ok secBuf capacity covers the stream stride plus both neighbor rows
	}
	return out
}

// randomSectors returns n poorly-coalesced uniformly random sectors.
func (p *program) randomSectors(pb *placedBuffer, n int) []memdef.Addr {
	out := p.secBuf[:0]
	blocks := pb.Bytes / memdef.BlockSize
	for i := 0; i < n; i++ {
		blk := memdef.Addr(uint64(p.rng.Int63n(int64(blocks)))) * memdef.BlockSize
		sec := memdef.Addr(p.rng.Intn(memdef.SectorsPerBlock)) * memdef.SectorSize
		out = append(out, pb.base+blk+sec) //shm:alloc-ok fills the preallocated secBuf scratch; capacity covers the widest generator
	}
	return out
}

// gatherSectors models texture/constant-style lookups: a couple of random
// sectors with strong locality (80% of lookups hit the hot front eighth of
// the buffer), giving the high reuse real texture caches see.
func (p *program) gatherSectors(pb *placedBuffer) []memdef.Addr {
	out := p.secBuf[:0]
	blocks := pb.Bytes / memdef.BlockSize
	hot := blocks / 8
	if hot == 0 {
		hot = 1
	}
	for i := 0; i < 2; i++ {
		var blk uint64
		if p.rng.Float64() < 0.8 {
			blk = uint64(p.rng.Int63n(int64(hot)))
		} else {
			blk = uint64(p.rng.Int63n(int64(blocks)))
		}
		sec := memdef.Addr(p.rng.Intn(memdef.SectorsPerBlock)) * memdef.SectorSize
		out = append(out, pb.base+memdef.Addr(blk*memdef.BlockSize)+sec) //shm:alloc-ok fills the preallocated secBuf scratch; capacity covers the widest generator
	}
	return out
}
