package workload

import "math/rand"

// countingSource wraps a rand.Source64 and counts the values drawn from
// it. The count is the only piece of RNG state the checkpoint needs: a
// restored program recreates the source from the same deterministic seed
// and fast-forwards it by replaying n draws, landing on exactly the
// position the snapshot captured. (math/rand exposes no way to read or
// set a source's internal position, so without the counter the RNG
// position was uncapturable — the state-capture bug this type fixes at
// the source.)
//
// Every top-level rand.Rand call the generators use (Intn, Int63n,
// Float64) draws exactly one value from the underlying source per call to
// Int63/Uint64 here, so replay is exact.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.n = 0
	c.src.Seed(seed)
}

// skipTo replays draws until the source has produced n values. Calling it
// on a source that has already produced more than n draws is a
// programming error caught by the caller's position check.
func (c *countingSource) skipTo(n uint64) {
	for c.n < n {
		c.n++
		c.src.Uint64()
	}
}
