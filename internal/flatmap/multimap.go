package flatmap

// MultiMap is a uint64→[]V table that preserves FIFO order within each key
// and recycles its list storage. It replaces the core's map[K][]V waiter
// lists (L1 miss waiters, L2 bank waiters, MEE counter-fetch waiters),
// where the old pattern — append to a fresh slice, delete the key on wake —
// allocated a new backing array for almost every miss.
//
// Values are held in a single node arena chained by index; drained chains
// return their nodes to a free list, so steady-state Add/Drain cycles are
// allocation-free. FIFO order within a key is load-bearing for the
// simulator: waiters must wake in arrival order or downstream LRU state
// (and therefore results) would diverge from the every-cycle reference.
type MultiMap[V any] struct {
	m     Map[listRef]
	nodes []mmNode[V]
	free  int32 // head of the free-node chain, -1 if empty
	vals  int   // total queued values across all keys
	init  bool
}

type mmNode[V any] struct {
	v    V
	next int32
}

type listRef struct {
	head, tail int32
}

// Add appends v to the FIFO list stored under k.
func (mm *MultiMap[V]) Add(k uint64, v V) {
	if !mm.init {
		mm.free = -1
		mm.init = true
	}
	idx := mm.free
	if idx >= 0 {
		mm.free = mm.nodes[idx].next
		mm.nodes[idx] = mmNode[V]{v: v, next: -1}
	} else {
		idx = int32(len(mm.nodes))
		mm.nodes = append(mm.nodes, mmNode[V]{v: v, next: -1}) //shm:alloc-ok amortized node-pool growth; the free list recycles nodes
	}
	ref := mm.m.Put(k)
	if ref.head == 0 && ref.tail == 0 {
		// Fresh entry: Put zeroes the value; mark chain ends explicitly.
		ref.head, ref.tail = idx+1, idx+1 // store index+1 so zero means "empty"
	} else {
		mm.nodes[ref.tail-1].next = idx
		ref.tail = idx + 1
	}
	mm.vals++
}

// Drain removes the list stored under k, calling fn for each value in FIFO
// (insertion) order, and recycles the nodes. It reports whether k had any
// waiters.
func (mm *MultiMap[V]) Drain(k uint64, fn func(v V)) bool {
	ref := mm.m.Get(k)
	if ref == nil {
		return false
	}
	head := ref.head - 1
	mm.m.Delete(k)
	var zero V
	for i := head; i >= 0; {
		n := &mm.nodes[i]
		v := n.v
		next := n.next
		n.v = zero // release references for GC
		n.next = mm.free
		mm.free = i
		mm.vals--
		fn(v)
		i = next
	}
	return true
}

// Keys returns the number of distinct keys with queued values.
func (mm *MultiMap[V]) Keys() int { return mm.m.Len() }

// Vals returns the total number of queued values.
func (mm *MultiMap[V]) Vals() int { return mm.vals }

// Empty reports whether no values are queued.
func (mm *MultiMap[V]) Empty() bool { return mm.vals == 0 }

// Reset drops all entries but keeps node storage and table capacity.
func (mm *MultiMap[V]) Reset() {
	mm.m.Reset()
	var zero V
	for i := range mm.nodes {
		mm.nodes[i].v = zero
		mm.nodes[i].next = int32(i) - 1
	}
	if len(mm.nodes) > 0 {
		mm.free = int32(len(mm.nodes)) - 1
	} else {
		mm.free = -1
	}
	mm.init = true
	mm.vals = 0
}

// Range calls fn once per key in deterministic slot order with that key's
// value count. Intended for cold diagnostics paths only.
func (mm *MultiMap[V]) Range(fn func(k uint64, count int) bool) {
	mm.m.Range(func(k uint64, ref *listRef) bool {
		count := 0
		for i := ref.head - 1; i >= 0; i = mm.nodes[i].next {
			count++
		}
		return fn(k, count)
	})
}
