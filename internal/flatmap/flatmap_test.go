package flatmap

import (
	"math/rand"
	"testing"
)

// TestAgainstBuiltinMap drives Map with a random op sequence and mirrors
// every operation in a built-in map, checking full agreement after each op.
func TestAgainstBuiltinMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m Map[int]
	ref := map[uint64]int{}
	keys := func() []uint64 {
		out := make([]uint64, 0, len(ref))
		for k := range ref {
			out = append(out, k)
		}
		return out
	}
	for op := 0; op < 20000; op++ {
		k := uint64(rng.Intn(512)) * 0x1000 // address-shaped keys: low bits zero
		switch rng.Intn(3) {
		case 0:
			*m.Put(k) = op
			ref[k] = op
		case 1:
			if got, want := m.Delete(k), func() bool { _, ok := ref[k]; return ok }(); got != want {
				t.Fatalf("op %d: Delete(%#x) = %v, want %v", op, k, got, want)
			}
			delete(ref, k)
		case 2:
			v := m.Get(k)
			rv, ok := ref[k]
			if (v != nil) != ok {
				t.Fatalf("op %d: Get(%#x) presence = %v, want %v", op, k, v != nil, ok)
			}
			if ok && *v != rv {
				t.Fatalf("op %d: Get(%#x) = %d, want %d", op, k, *v, rv)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, m.Len(), len(ref))
		}
		_ = keys
	}
	// Every surviving key must be retrievable (probe chains intact after
	// the backward-shift deletions above).
	for _, k := range keys() {
		if v := m.Get(k); v == nil || *v != ref[k] {
			t.Fatalf("final: Get(%#x) broken", k)
		}
	}
}

func TestSteadyStateChurnDoesNotAllocate(t *testing.T) {
	m := NewMap[int](64)
	// Warm to high-water occupancy, then churn below it.
	for i := uint64(0); i < 64; i++ {
		*m.Put(i * 64) = int(i)
	}
	for i := uint64(0); i < 64; i++ {
		m.Delete(i * 64)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 64; i++ {
			*m.Put(i * 64) = int(i)
		}
		for i := uint64(0); i < 64; i++ {
			m.Delete(i * 64)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state put/delete churn allocated %.1f times per run, want 0", allocs)
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	var m Map[string]
	for i := uint64(0); i < 100; i++ {
		*m.Put(i) = "x"
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Reset left %d entries", m.Len())
	}
	if m.Get(5) != nil {
		t.Fatalf("Reset left key 5 retrievable")
	}
	*m.Put(7) = "y"
	if v := m.Get(7); v == nil || *v != "y" {
		t.Fatalf("map unusable after Reset")
	}
}

func TestRangeIsDeterministic(t *testing.T) {
	build := func() []uint64 {
		var m Map[int]
		for i := uint64(0); i < 200; i++ {
			*m.Put(i * 0x40) = int(i)
		}
		for i := uint64(0); i < 200; i += 3 {
			m.Delete(i * 0x40)
		}
		var order []uint64
		m.Range(func(k uint64, _ *int) bool {
			order = append(order, k)
			return true
		})
		return order
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration order diverged at %d: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestMultiMapFIFOAndReuse(t *testing.T) {
	var mm MultiMap[int]
	for round := 0; round < 3; round++ {
		mm.Add(10, 1)
		mm.Add(20, 100)
		mm.Add(10, 2)
		mm.Add(10, 3)
		if mm.Vals() != 4 || mm.Keys() != 2 {
			t.Fatalf("round %d: Vals=%d Keys=%d", round, mm.Vals(), mm.Keys())
		}
		var got []int
		if !mm.Drain(10, func(v int) { got = append(got, v) }) {
			t.Fatalf("round %d: Drain(10) found nothing", round)
		}
		if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Fatalf("round %d: Drain order = %v, want [1 2 3]", round, got)
		}
		if mm.Drain(10, func(int) {}) {
			t.Fatalf("round %d: second Drain(10) found stale entries", round)
		}
		got = got[:0]
		mm.Drain(20, func(v int) { got = append(got, v) })
		if len(got) != 1 || got[0] != 100 {
			t.Fatalf("round %d: Drain(20) = %v", round, got)
		}
		if !mm.Empty() {
			t.Fatalf("round %d: not empty after draining", round)
		}
	}
	// Steady-state churn within warmed capacity must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		mm.Add(1, 1)
		mm.Add(1, 2)
		mm.Add(2, 3)
		mm.Drain(1, func(int) {})
		mm.Drain(2, func(int) {})
	})
	if allocs != 0 {
		t.Errorf("steady-state multimap churn allocated %.1f times per run, want 0", allocs)
	}
}

func TestMultiMapReset(t *testing.T) {
	var mm MultiMap[int]
	mm.Add(1, 1)
	mm.Add(2, 2)
	mm.Reset()
	if !mm.Empty() || mm.Keys() != 0 {
		t.Fatalf("Reset left entries")
	}
	mm.Add(1, 42)
	var got []int
	mm.Drain(1, func(v int) { got = append(got, v) })
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("multimap unusable after Reset: %v", got)
	}
}
