// Package flatmap provides open-addressed hash tables keyed by uint64 for
// the simulator's hot per-cycle lookups (MSHR tables, in-flight DRAM
// transactions, miss-waiter lists).
//
// The built-in Go map allocates on insert (bucket chains, key/value
// storage) and cannot reuse its memory across a delete/insert cycle, so
// structures like cache.mshrs — which churn through entries every few
// simulated cycles — generated garbage proportional to simulated time.
// Map stores keys and values in flat parallel arrays with linear probing
// and backward-shift deletion: once the table has grown to its high-water
// occupancy, insert and delete never allocate again.
//
// Determinism: iteration (Range) walks the backing array in slot order.
// That order is a pure function of the insert/delete history, so identical
// runs iterate identically — unlike the built-in map, whose order is
// deliberately randomized. Order-sensitive callers must still sort or
// reduce (the core only uses Range in cold error paths).
//
// The zero value of each type is an empty table ready for use. Not safe
// for concurrent use.
package flatmap

// offset64 and prime64 are the FNV-1a parameters; splitmix-style mixing
// below gives good dispersion for the address- and token-shaped keys the
// simulator uses (low entropy in the low bits).
const fibMix = 0x9e3779b97f4a7c15

// Map is an open-addressed uint64→V hash table with linear probing.
type Map[V any] struct {
	keys []uint64
	vals []V
	used []bool
	n    int
}

// NewMap returns a map pre-sized so that sizeHint entries fit without
// growth. A zero Map is also valid and grows on first insert.
func NewMap[V any](sizeHint int) Map[V] {
	var m Map[V]
	if sizeHint > 0 {
		m.rehash(tableSize(sizeHint))
	}
	return m
}

// tableSize returns the smallest power of two holding n entries below the
// 3/4 load-factor ceiling.
func tableSize(n int) int {
	size := 16
	for size*3/4 < n {
		size *= 2
	}
	return size
}

func (m *Map[V]) slot(k uint64) int {
	h := k * fibMix
	h ^= h >> 29
	return int(h & uint64(len(m.keys)-1))
}

// Len returns the number of entries.
func (m *Map[V]) Len() int { return m.n }

// Get returns a pointer to the value stored under k, or nil if absent. The
// pointer is valid until the next Put, Delete, or Reset.
func (m *Map[V]) Get(k uint64) *V {
	if m.n == 0 {
		return nil
	}
	mask := len(m.keys) - 1
	for i := m.slot(k); ; i = (i + 1) & mask {
		if !m.used[i] {
			return nil
		}
		if m.keys[i] == k {
			return &m.vals[i]
		}
	}
}

// Has reports whether k is present.
func (m *Map[V]) Has(k uint64) bool { return m.Get(k) != nil }

// Put inserts k with a zero value if absent and returns a pointer to the
// stored value (existing or new). The pointer is valid until the next Put,
// Delete, or Reset.
func (m *Map[V]) Put(k uint64) *V {
	if len(m.keys) == 0 || (m.n+1)*4 > len(m.keys)*3 {
		m.grow()
	}
	mask := len(m.keys) - 1
	for i := m.slot(k); ; i = (i + 1) & mask {
		if !m.used[i] {
			m.used[i] = true
			m.keys[i] = k
			var zero V
			m.vals[i] = zero
			m.n++
			return &m.vals[i]
		}
		if m.keys[i] == k {
			return &m.vals[i]
		}
	}
}

// Delete removes k, reporting whether it was present. Deletion uses
// backward shifting (no tombstones), so probe chains stay short and the
// table never degrades under churn.
func (m *Map[V]) Delete(k uint64) bool {
	if m.n == 0 {
		return false
	}
	mask := len(m.keys) - 1
	i := m.slot(k)
	for {
		if !m.used[i] {
			return false
		}
		if m.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	// Backward-shift: pull each following cluster member into the hole if
	// doing so shortens (or keeps) its probe distance.
	var zero V
	j := i
	for {
		j = (j + 1) & mask
		if !m.used[j] {
			break
		}
		ideal := m.slot(m.keys[j])
		// keys[j] may move into the hole at i only if its ideal slot does
		// not lie strictly inside (i, j] on the probe circle.
		if ((j - ideal) & mask) >= ((j - i) & mask) {
			m.keys[i] = m.keys[j]
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	m.used[i] = false
	m.keys[i] = 0
	m.vals[i] = zero
	m.n--
	return true
}

// Range calls fn for each entry in backing-array slot order (deterministic
// for a deterministic insert/delete history) until fn returns false.
func (m *Map[V]) Range(fn func(k uint64, v *V) bool) {
	for i := range m.keys {
		if m.used[i] {
			if !fn(m.keys[i], &m.vals[i]) {
				return
			}
		}
	}
}

// Reset removes all entries but keeps the table storage for reuse.
func (m *Map[V]) Reset() {
	if m.n == 0 {
		return
	}
	var zero V
	for i := range m.keys {
		if m.used[i] {
			m.used[i] = false
			m.keys[i] = 0
			m.vals[i] = zero
		}
	}
	m.n = 0
}

func (m *Map[V]) grow() {
	size := 16
	if len(m.keys) > 0 {
		size = len(m.keys) * 2
	}
	m.rehash(size)
}

//shm:cold rehash is the amortized doubling event, not per-access work
func (m *Map[V]) rehash(size int) {
	oldKeys, oldVals, oldUsed := m.keys, m.vals, m.used
	m.keys = make([]uint64, size)
	m.vals = make([]V, size)
	m.used = make([]bool, size)
	m.n = 0
	for i := range oldKeys {
		if oldUsed[i] {
			*m.Put(oldKeys[i]) = oldVals[i]
		}
	}
}
