package flatmap

import (
	"fmt"

	"shmgpu/internal/snapshot"
)

// This file serializes the physical table layout — capacity plus
// (slot, key, value) triples for used slots — rather than a canonical
// key-sorted form. The slot layout is a pure function of the insert/delete
// history, and Range walks it directly, so restoring anything but the
// exact layout would let a restored run diverge from a from-scratch run
// the first time iteration order (or a subsequent backward-shift delete)
// becomes observable. All of this is cold checkpoint/restore code.

// maxTableCap bounds restored table capacities so a corrupt capacity field
// fails cleanly instead of driving a huge allocation.
const maxTableCap = 1 << 30

// SaveMap writes m's physical slot layout. saveVal encodes one value.
func SaveMap[V any](e *snapshot.Encoder, m *Map[V], saveVal func(*snapshot.Encoder, *V)) {
	e.Int(len(m.keys))
	e.Int(m.n)
	for i := range m.keys {
		if !m.used[i] {
			continue
		}
		e.Int(i)
		e.U64(m.keys[i])
		saveVal(e, &m.vals[i])
	}
}

// LoadMap restores a map saved by SaveMap, replacing m's contents.
// loadVal decodes one value in place.
func LoadMap[V any](d *snapshot.Decoder, m *Map[V], loadVal func(*snapshot.Decoder, *V)) error {
	capN := d.Int()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if capN < 0 || capN > maxTableCap || (capN != 0 && capN&(capN-1) != 0) {
		return fmt.Errorf("flatmap: bad table capacity %d", capN)
	}
	if n < 0 || n > capN {
		return fmt.Errorf("flatmap: bad entry count %d for capacity %d", n, capN)
	}
	if capN == 0 {
		*m = Map[V]{}
		return nil
	}
	m.keys = make([]uint64, capN)
	m.vals = make([]V, capN)
	m.used = make([]bool, capN)
	m.n = n
	for j := 0; j < n; j++ {
		slot := d.Int()
		key := d.U64()
		if err := d.Err(); err != nil {
			return err
		}
		if slot < 0 || slot >= capN || m.used[slot] {
			return fmt.Errorf("flatmap: bad slot index %d for capacity %d", slot, capN)
		}
		m.used[slot] = true
		m.keys[slot] = key
		loadVal(d, &m.vals[slot])
	}
	return d.Err()
}

// VisitMultiMapNodes calls fn for every node in mm's arena in index order
// — a deterministic walk (the arena layout is a pure function of the
// Add/Drain history) that includes free-chain nodes, whose values are
// zero. Serializers use it to assign canonical identifiers to
// pointer-typed values before encoding them.
func VisitMultiMapNodes[V any](mm *MultiMap[V], fn func(v *V)) {
	for i := range mm.nodes {
		fn(&mm.nodes[i].v)
	}
}

// SaveMultiMap writes mm's full physical state: the key table, the node
// arena (free-chain nodes are zero-valued — Drain and Reset zero released
// values), the free-list head, and the bookkeeping counters.
func SaveMultiMap[V any](e *snapshot.Encoder, mm *MultiMap[V], saveVal func(*snapshot.Encoder, *V)) {
	SaveMap(e, &mm.m, func(e *snapshot.Encoder, r *listRef) {
		e.I32(r.head)
		e.I32(r.tail)
	})
	e.Int(len(mm.nodes))
	for i := range mm.nodes {
		saveVal(e, &mm.nodes[i].v)
		e.I32(mm.nodes[i].next)
	}
	e.I32(mm.free)
	e.Int(mm.vals)
	e.Bool(mm.init)
}

// LoadMultiMap restores a multimap saved by SaveMultiMap, replacing mm's
// contents.
func LoadMultiMap[V any](d *snapshot.Decoder, mm *MultiMap[V], loadVal func(*snapshot.Decoder, *V)) error {
	err := LoadMap(d, &mm.m, func(d *snapshot.Decoder, r *listRef) {
		r.head = d.I32()
		r.tail = d.I32()
	})
	if err != nil {
		return err
	}
	nNodes := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	mm.nodes = make([]mmNode[V], nNodes)
	for i := range mm.nodes {
		loadVal(d, &mm.nodes[i].v)
		mm.nodes[i].next = d.I32()
	}
	mm.free = d.I32()
	mm.vals = d.Int()
	mm.init = d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	// A never-initialized multimap is all zeros (free == 0 with an empty
	// arena), so the free-head bound only applies once nodes exist.
	if mm.free < -1 || (len(mm.nodes) > 0 && int(mm.free) >= len(mm.nodes)) ||
		(len(mm.nodes) == 0 && mm.free > 0) || mm.vals < 0 {
		return fmt.Errorf("flatmap: bad multimap free head %d or count %d (%d nodes)", mm.free, mm.vals, len(mm.nodes))
	}
	return nil
}
