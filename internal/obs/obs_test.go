package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"shmgpu/internal/telemetry"
)

func TestSpanTreeLanesAndCycles(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Begin(Span{}, "sweep", "s")
	c1 := tr.BeginLane(root, "cell", "a")
	c2 := tr.BeginLane(root, "cell", "b")
	ph := tr.BeginCycle(c1, "phase", "kernel-0", 100)
	ph.EndCycle(200)
	c1.EndCycle(200)
	c3 := tr.BeginLane(root, "cell", "c")
	c3.End()
	c2.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["a"].Lane == byName["b"].Lane {
		t.Errorf("concurrent cells share lane %d", byName["a"].Lane)
	}
	if got, want := byName["kernel-0"].Lane, byName["a"].Lane; got != want {
		t.Errorf("phase lane = %d, want parent's %d", got, want)
	}
	// c1 ended before c3 began, so c3 reuses its freed lane.
	if got, want := byName["c"].Lane, byName["a"].Lane; got != want {
		t.Errorf("after cell a ended, cell c got lane %d, want reused %d", got, want)
	}
	if ph := byName["kernel-0"]; ph.StartCycle != 100 || ph.EndCycle != 200 {
		t.Errorf("phase cycles = [%d, %d], want [100, 200]", ph.StartCycle, ph.EndCycle)
	}
	for _, sp := range spans {
		if sp.Open {
			t.Errorf("span %q still open", sp.Name)
		}
	}

	tree := tr.Tree()
	if len(tree) != 1 || tree[0].Span.Name != "s" {
		t.Fatalf("tree roots = %v, want single sweep root", tree)
	}
	if len(tree[0].Children) != 3 {
		t.Fatalf("sweep has %d children, want 3 cells", len(tree[0].Children))
	}
	if len(tree[0].Children[0].Children) != 1 {
		t.Errorf("cell a has %d children, want the phase span", len(tree[0].Children[0].Children))
	}
}

func TestSpanLogStreams(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	s := tr.Begin(Span{}, "sweep", "s")
	s.Annotate("k", "v")
	s.End()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d span-log lines, want 2 (begin+end)", len(lines))
	}
	var begin, end spanLogLine
	if err := json.Unmarshal([]byte(lines[0]), &begin); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &end); err != nil {
		t.Fatal(err)
	}
	if begin.Ev != "begin" || end.Ev != "end" {
		t.Errorf("events = %q, %q; want begin, end", begin.Ev, end.Ev)
	}
	if !begin.Span.Open || end.Span.Open {
		t.Errorf("open flags = %v, %v; want true, false", begin.Span.Open, end.Span.Open)
	}
	if end.Span.Attrs["k"] != "v" {
		t.Errorf("end record lost annotation: %v", end.Span.Attrs)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestSpanLogErrSticky(t *testing.T) {
	tr := NewTracer(failWriter{})
	tr.Begin(Span{}, "sweep", "s").End()
	if tr.Err() == nil {
		t.Fatal("want sink error surfaced via Err")
	}
}

func TestZeroValuesAreNoOps(t *testing.T) {
	var s Span
	s.Annotate("k", "v")
	s.End()
	s.EndCycle(5)
	if s.Valid() || s.ID() != -1 {
		t.Errorf("zero span Valid=%v ID=%d", s.Valid(), s.ID())
	}

	var tr *Tracer
	if sp := tr.Begin(Span{}, "a", "b"); sp.Valid() {
		t.Error("nil tracer returned a valid span")
	}
	if tr.Snapshot() != nil || tr.Err() != nil {
		t.Error("nil tracer snapshot/err not nil")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, telemetry.Manifest{}); err != nil {
		t.Fatal(err)
	}

	var p *Plane
	if p.BeginRun("x") != nil {
		t.Error("nil plane BeginRun != nil")
	}
	if p.Close() != nil || p.OpsAddr() != "" || p.CanCancel() || p.Stalled() != nil {
		t.Error("nil plane methods not inert")
	}
	p.SetMetrics(nil)
	if rec := p.Progress(); rec.Done != 0 {
		t.Error("nil plane progress not zero")
	}

	var r *Run
	r.Observe(Event{Kind: EvProgress, Cycle: 1})
	r.Done(1, true)
	if r.Name() != "" || r.Span().Valid() || r.CancelFlag() != nil || r.Heartbeat() != nil {
		t.Error("nil run methods not inert")
	}
	if r.Abandoned() != nil {
		t.Error("nil run Abandoned() should be a nil (forever-blocking) channel")
	}

	var c *Cancel
	c.Cancel()
	if c.Cancelled() {
		t.Error("nil cancel reports cancelled")
	}
	var h *Heartbeat
	h.Store(5)
	if h.Load() != 0 {
		t.Error("nil heartbeat loaded non-zero")
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Begin(Span{}, "sweep", "paperbench")
	cell := tr.BeginLane(root, "cell", "fdtd2d/SHM")
	ph := tr.BeginCycle(cell, "phase", "kernel-0", 10)
	ph.EndCycle(50)
	cell.EndCycle(50)
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, telemetry.Manifest{Tool: "test"}); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []telemetry.ChromeEvent `json:"traceEvents"`
		OtherData   telemetry.Manifest      `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.OtherData.Tool != "test" {
		t.Errorf("manifest tool = %q", trace.OtherData.Tool)
	}
	var xNames []string
	flows := 0
	meta := 0
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "X":
			xNames = append(xNames, ev.Name)
			if ev.Dur == 0 {
				t.Errorf("X event %q has zero duration", ev.Name)
			}
		case "s", "f":
			flows++
		case "M":
			meta++
		}
	}
	if len(xNames) != 3 {
		t.Errorf("got %d X events (%v), want 3", len(xNames), xNames)
	}
	// The cell sits on its own lane, so a flow arrow links sweep -> cell.
	if flows != 2 {
		t.Errorf("got %d flow events, want an s/f pair", flows)
	}
	if meta < 3 { // process_name + >= 2 thread_name tracks
		t.Errorf("got %d metadata events, want process + per-track names", meta)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, "tool", LevelInfo)
	log.Errorf("e %d", 1)
	log.Infof("i")
	log.Debugf("d")
	got := buf.String()
	if got != "tool: e 1\ntool: i\n" {
		t.Errorf("LevelInfo output = %q", got)
	}

	buf.Reset()
	NewLogger(&buf, "tool", LevelQuiet).Infof("i")
	NewLogger(&buf, "tool", LevelQuiet).Errorf("e")
	if buf.String() != "tool: e\n" {
		t.Errorf("LevelQuiet output = %q", buf.String())
	}

	buf.Reset()
	NewLogger(&buf, "tool", LevelDebug).Debugf("d")
	if buf.String() != "tool: d\n" {
		t.Errorf("LevelDebug output = %q", buf.String())
	}

	var nilLog *Logger
	nilLog.Errorf("no panic")
	if nilLog.Level() != LevelQuiet {
		t.Error("nil logger level")
	}

	if LevelFromFlags(true, true) != LevelQuiet {
		t.Error("-q should win over -v")
	}
	if LevelFromFlags(false, true) != LevelDebug || LevelFromFlags(false, false) != LevelInfo {
		t.Error("LevelFromFlags mapping")
	}
}

func TestPlaneProgressLifecycle(t *testing.T) {
	var buf bytes.Buffer
	p, err := Start(Options{Tool: "test", TotalCells: 2, ProgressOut: &buf, ProgressEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	r := p.BeginRun("wl/SHM")
	r.Observe(Event{Kind: EvProgress, Cycle: 500})

	rec := p.Progress()
	if rec.Done != 0 || rec.Total != 2 || len(rec.Active) != 1 || rec.Active[0] != "wl/SHM" {
		t.Errorf("mid-run record = %+v", rec)
	}

	r.Observe(Event{Kind: EvPhaseBegin, Phase: PhaseKernel, Index: 0, Cycle: 500})
	r.Observe(Event{Kind: EvPhaseEnd, Phase: PhaseKernel, Index: 0, Cycle: 900})
	r.Done(1000, true)
	r.Done(1000, true) // idempotent

	rec = p.Progress()
	if rec.Done != 1 || len(rec.Active) != 0 {
		t.Errorf("post-done record = %+v", rec)
	}
	if rec.CellEWMASec <= 0 || rec.ETASec <= 0 {
		t.Errorf("EWMA/ETA not populated: %+v", rec)
	}

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var last Record
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if !last.Final || last.Done != 1 {
		t.Errorf("final record = %+v", last)
	}

	// Phase spans appeared under the cell span.
	var cell *SpanNode
	for _, root := range p.Tracer().Tree() {
		for _, ch := range root.Children {
			if ch.Span.Name == "wl/SHM" {
				cell = ch
			}
		}
	}
	if cell == nil {
		t.Fatal("cell span missing from tree")
	}
	if len(cell.Children) != 1 || cell.Children[0].Span.Name != "kernel-0" {
		t.Errorf("cell children = %+v", cell.Children)
	}
	if cell.Span.Attrs["completed"] != "true" || cell.Span.Attrs["cycles"] != "1000" {
		t.Errorf("cell attrs = %v", cell.Span.Attrs)
	}
}

func TestWatchdogFiresDumpsAndCancels(t *testing.T) {
	dir := t.TempDir()
	p, err := Start(Options{
		Tool:             "test",
		WatchdogDeadline: 60 * time.Millisecond,
		WatchdogPoll:     10 * time.Millisecond,
		WatchdogDir:      dir,
		WatchdogCancel:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	r := p.BeginRun("wl/SHM")
	r.Observe(Event{Kind: EvProgress, Cycle: 42})

	select {
	case <-r.Abandoned():
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not abandon the stalled run")
	}
	if !r.CancelFlag().Cancelled() {
		t.Error("cancel flag not set")
	}
	stalled := p.Stalled()
	if len(stalled) != 1 || stalled[0] != "wl/SHM" {
		t.Errorf("stalled = %v", stalled)
	}
	if rec := p.Progress(); rec.Stalled != 1 {
		t.Errorf("progress stalled = %d, want 1", rec.Stalled)
	}

	bundle := filepath.Join(dir, "stall-wl_SHM")
	for _, f := range []string{"goroutines.txt", "spans.json", "progress.json"} {
		data, err := os.ReadFile(filepath.Join(bundle, f))
		if err != nil {
			t.Fatalf("bundle file %s: %v", f, err)
		}
		if len(data) == 0 {
			t.Errorf("bundle file %s is empty", f)
		}
	}
	var tree []*SpanNode
	data, _ := os.ReadFile(filepath.Join(bundle, "spans.json"))
	if err := json.Unmarshal(data, &tree); err != nil {
		t.Fatalf("spans.json: %v", err)
	}
	found := false
	var walk func(ns []*SpanNode)
	walk = func(ns []*SpanNode) {
		for _, n := range ns {
			if n.Span.Name == "wl/SHM" && n.Span.Kind == "cell" {
				found = true
			}
			walk(n.Children)
		}
	}
	walk(tree)
	if !found {
		t.Error("stalled cell span missing from bundle span tree")
	}

	// The simulated run notices the flag and finishes as cancelled.
	r.Done(42, false)
	if got := p.Progress().Done; got != 1 {
		t.Errorf("done = %d after cancelled cell", got)
	}
}

func TestWatchdogSparesLiveRuns(t *testing.T) {
	p, err := Start(Options{
		Tool:             "test",
		WatchdogDeadline: 80 * time.Millisecond,
		WatchdogPoll:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	r := p.BeginRun("live")
	stop := make(chan struct{})
	go func() {
		cycle := uint64(0)
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				cycle += 100
				r.Observe(Event{Kind: EvProgress, Cycle: cycle})
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	if len(p.Stalled()) != 0 {
		t.Errorf("live run declared stalled: %v", p.Stalled())
	}
	r.Done(1000, true)
}

func TestOpsEndpoint(t *testing.T) {
	p, err := Start(Options{Tool: "test", TotalCells: 1, OpsListen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := p.OpsAddr()
	if addr == "" {
		t.Fatal("no ops address")
	}
	get := func(path string) (int, string, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, _ := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	var health struct {
		Status string `json:"status"`
		Tool   string `json:"tool"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil || health.Status != "ok" || health.Tool != "test" {
		t.Errorf("/healthz body = %q (err %v)", body, err)
	}

	// Before any cell completes, /metrics serves the minimal liveness
	// payload with the Prometheus content type.
	code, body, ctype := get("/metrics")
	if code != http.StatusOK || body != minimalMetrics {
		t.Errorf("/metrics pre-run = %d %q", code, body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}

	// After a run completes, /metrics serves exactly the renderer's bytes.
	r := p.BeginRun("wl/SHM")
	r.Done(100, true)
	want := "# HELP x y\nx 1\n"
	p.SetMetrics(func(w io.Writer) error {
		_, err := io.WriteString(w, want)
		return err
	})
	if _, body, _ = get("/metrics"); body != want {
		t.Errorf("/metrics = %q, want the installed renderer's exact bytes", body)
	}

	code, body, _ = get("/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress = %d", code)
	}
	var prog struct {
		Progress Record      `json:"progress"`
		Spans    []*SpanNode `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress body: %v", err)
	}
	if prog.Progress.Done != 1 || len(prog.Spans) == 0 {
		t.Errorf("/progress = %+v", prog)
	}

	if code, _, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("ops endpoint still serving after Close")
	}
}

func TestFlagsStart(t *testing.T) {
	var f Flags
	if f.Enabled() {
		t.Fatal("zero Flags enabled")
	}
	p, shutdown, err := f.Start("test", 0, io.Discard, nil)
	if err != nil || p != nil {
		t.Fatalf("disabled Start = %v plane, err %v", p, err)
	}
	if err := shutdown(telemetry.Manifest{}); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	f = Flags{
		ProgressOut: filepath.Join(dir, "progress.jsonl"),
		SpanTrace:   filepath.Join(dir, "spans.trace.json"),
		SpanLog:     filepath.Join(dir, "spans.jsonl"),
	}
	p, shutdown, err = f.Start("test", 3, io.Discard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("enabled Start returned nil plane")
	}
	r := p.BeginRun("cell")
	r.Done(10, true)
	if err := shutdown(telemetry.Manifest{Tool: "test"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"progress.jsonl", "spans.trace.json", "spans.jsonl"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	var trace struct {
		TraceEvents []telemetry.ChromeEvent `json:"traceEvents"`
	}
	data, _ := os.ReadFile(filepath.Join(dir, "spans.trace.json"))
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("span trace: %v", err)
	}
}
