package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"shmgpu/internal/telemetry"
)

// SpanRecord is the stored form of one span: dual timestamps (wall-clock
// microseconds since the tracer started, simulated cycles when known), the
// parent link that makes the trace hierarchical, and the lane the span
// renders on in the Chrome trace (one lane per concurrently-running cell).
type SpanRecord struct {
	ID     int    `json:"id"`
	Parent int    `json:"parent"` // -1 for roots
	Kind   string `json:"kind"`   // sweep, cell, phase, ...
	Name   string `json:"name"`
	Lane   int    `json:"lane"`
	// StartUS/EndUS are wall-clock microseconds since the tracer started
	// (monotonic; EndUS is meaningful only once Open is false).
	StartUS int64 `json:"start_us"`
	EndUS   int64 `json:"end_us"`
	// StartCycle/EndCycle are the simulated-clock timestamps, when the
	// producer knows them (0 otherwise).
	StartCycle uint64            `json:"start_cycle,omitempty"`
	EndCycle   uint64            `json:"end_cycle,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Open       bool              `json:"open"`

	// ownLane marks spans that allocated their lane (freed at End).
	ownLane bool
}

// SpanNode is one node of the nested span tree snapshot (the /progress
// endpoint's payload and the watchdog bundle's spans.json).
type SpanNode struct {
	Span     SpanRecord  `json:"span"`
	Children []*SpanNode `json:"children,omitempty"`
}

// Tracer records hierarchical spans. It is safe for concurrent use (sweep
// workers begin and end cell spans concurrently); individual spans must
// each be driven by one goroutine at a time. A nil *Tracer is a valid
// disabled tracer: Begin returns a no-op Span and every method is a no-op.
type Tracer struct {
	mu    sync.Mutex
	spans []SpanRecord
	lanes []bool // busy lanes

	// clock returns monotonic microseconds since the tracer started;
	// replaceable in tests.
	clock func() int64

	// sink, when set, receives one JSON line per span begin and end.
	sink    io.Writer
	sinkErr error
}

// NewTracer builds a tracer. spanLog, when non-nil, receives the streaming
// span log: one JSON line per span begin and per span end, in wall-clock
// order, so a consumer can follow a live sweep without waiting for the
// final trace.
func NewTracer(spanLog io.Writer) *Tracer {
	start := time.Now()
	return &Tracer{
		clock: func() int64 { return time.Since(start).Microseconds() },
		sink:  spanLog,
	}
}

// Span is a handle to one open span. The zero value is a valid no-op span,
// which is what emit sites hold when tracing is off.
type Span struct {
	t  *Tracer
	id int
}

// Valid reports whether the span is backed by a tracer.
func (s Span) Valid() bool { return s.t != nil }

// ID returns the span's id within its tracer (-1 for the zero span).
func (s Span) ID() int {
	if s.t == nil {
		return -1
	}
	return s.id
}

// Begin opens a span under parent (pass the zero Span for a root), on the
// parent's lane.
func (t *Tracer) Begin(parent Span, kind, name string) Span {
	return t.begin(parent, kind, name, 0, false)
}

// BeginCycle is Begin with a known sim-clock start timestamp.
func (t *Tracer) BeginCycle(parent Span, kind, name string, cycle uint64) Span {
	return t.begin(parent, kind, name, cycle, false)
}

// BeginLane is Begin on a freshly-allocated lane (released when the span
// ends). Sweep cells use it so concurrently-running cells render on
// separate tracks instead of nesting spuriously by time containment.
func (t *Tracer) BeginLane(parent Span, kind, name string) Span {
	return t.begin(parent, kind, name, 0, true)
}

func (t *Tracer) begin(parent Span, kind, name string, cycle uint64, ownLane bool) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	rec := SpanRecord{
		ID:         len(t.spans),
		Parent:     -1,
		Kind:       kind,
		Name:       name,
		StartUS:    t.clock(),
		StartCycle: cycle,
		Open:       true,
		ownLane:    ownLane,
	}
	if parent.t == t && parent.id < len(t.spans) {
		rec.Parent = parent.id
		rec.Lane = t.spans[parent.id].Lane
	} else {
		ownLane = true
		rec.ownLane = true
	}
	if ownLane {
		rec.Lane = t.allocLaneLocked()
	}
	t.spans = append(t.spans, rec)
	t.streamLocked("begin", rec)
	t.mu.Unlock()
	return Span{t: t, id: rec.ID}
}

// allocLaneLocked returns the lowest free lane, growing the lane set when
// every existing lane is busy.
func (t *Tracer) allocLaneLocked() int {
	for i, busy := range t.lanes {
		if !busy {
			t.lanes[i] = true
			return i
		}
	}
	t.lanes = append(t.lanes, true)
	return len(t.lanes) - 1
}

// Annotate attaches a key/value attribute to the span (shown in the Chrome
// trace args and the span log's end record).
func (s Span) Annotate(key, value string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.id]
	if rec.Attrs == nil {
		rec.Attrs = make(map[string]string)
	}
	rec.Attrs[key] = value
	s.t.mu.Unlock()
}

// End closes the span.
func (s Span) End() { s.end(0) }

// EndCycle closes the span with a known sim-clock end timestamp.
func (s Span) EndCycle(cycle uint64) { s.end(cycle) }

func (s Span) end(cycle uint64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.id]
	if rec.Open {
		rec.Open = false
		rec.EndUS = s.t.clock()
		if cycle != 0 {
			rec.EndCycle = cycle
		}
		if rec.ownLane && rec.Lane < len(s.t.lanes) {
			s.t.lanes[rec.Lane] = false
		}
		s.t.streamLocked("end", *rec)
	}
	s.t.mu.Unlock()
}

// spanLogLine is one streaming span-log record.
type spanLogLine struct {
	Ev   string     `json:"ev"` // "begin" or "end"
	Span SpanRecord `json:"span"`
}

func (t *Tracer) streamLocked(ev string, rec SpanRecord) {
	if t.sink == nil || t.sinkErr != nil {
		return
	}
	data, err := json.Marshal(spanLogLine{Ev: ev, Span: rec})
	if err != nil {
		t.sinkErr = err
		return
	}
	data = append(data, '\n')
	if _, err := t.sink.Write(data); err != nil {
		t.sinkErr = err
	}
}

// Err returns the first streaming-sink write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Snapshot returns a copy of every span recorded so far (open spans
// included), in begin order.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

// Tree returns the nested span forest (usually one sweep root) built from
// the current snapshot.
func (t *Tracer) Tree() []*SpanNode {
	spans := t.Snapshot()
	nodes := make([]*SpanNode, len(spans))
	for i := range spans {
		nodes[i] = &SpanNode{Span: spans[i]}
	}
	var roots []*SpanNode
	for i := range spans {
		if p := spans[i].Parent; p >= 0 && p < len(nodes) {
			nodes[p].Children = append(nodes[p].Children, nodes[i])
		} else {
			roots = append(roots, nodes[i])
		}
	}
	return roots
}

// WriteChromeTrace exports the spans as Chrome trace-event JSON through the
// telemetry layer's shared envelope writer: one complete ("X") event per
// span on its lane's track, plus flow arrows linking cross-lane parents to
// children, so Perfetto shows the sweep→cell→phase causality. Open spans
// export with their current duration.
func (t *Tracer) WriteChromeTrace(w io.Writer, m telemetry.Manifest) error {
	if t == nil {
		return telemetry.WriteChromeEvents(w, nil, m)
	}
	t.mu.Lock()
	now := t.clock()
	spans := make([]SpanRecord, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	var evs []telemetry.ChromeEvent
	evs = append(evs, telemetry.ChromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePidSpans,
		Args: map[string]interface{}{"name": "obs spans"},
	})
	lanes := map[int]bool{}
	for _, sp := range spans {
		lanes[sp.Lane] = true
	}
	laneIDs := make([]int, 0, len(lanes))
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Ints(laneIDs)
	for _, l := range laneIDs {
		evs = append(evs, telemetry.ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePidSpans, Tid: l,
			Args: map[string]interface{}{"name": fmt.Sprintf("track %d", l)},
		})
	}

	for _, sp := range spans {
		end := sp.EndUS
		if sp.Open {
			end = now
		}
		dur := uint64(1)
		if end > sp.StartUS {
			dur = uint64(end - sp.StartUS)
		}
		args := map[string]interface{}{
			"id":     sp.ID,
			"parent": sp.Parent,
			"open":   sp.Open,
		}
		if sp.StartCycle != 0 || sp.EndCycle != 0 {
			args["start_cycle"] = sp.StartCycle
			args["end_cycle"] = sp.EndCycle
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		evs = append(evs, telemetry.ChromeEvent{
			Name: sp.Name, Ph: "X", Ts: uint64(sp.StartUS), Dur: dur,
			Pid: chromePidSpans, Tid: sp.Lane, Cat: sp.Kind, Args: args,
		})
		// Cross-lane parent links render as flow arrows (s -> f pairs).
		if sp.Parent >= 0 && sp.Parent < len(spans) && spans[sp.Parent].Lane != sp.Lane {
			id := fmt.Sprintf("span-%d", sp.ID)
			evs = append(evs,
				telemetry.ChromeEvent{
					Name: "spawn", Ph: "s", Ts: uint64(sp.StartUS), ID: id,
					Pid: chromePidSpans, Tid: spans[sp.Parent].Lane, Cat: "flow",
				},
				telemetry.ChromeEvent{
					Name: "spawn", Ph: "f", BP: "e", Ts: uint64(sp.StartUS), ID: id,
					Pid: chromePidSpans, Tid: sp.Lane, Cat: "flow",
				},
			)
		}
	}
	return telemetry.WriteChromeEvents(w, evs, m)
}

// chromePidSpans is the span tracer's Chrome trace process id. Span traces
// are separate files from collector traces, so the id only needs to be
// stable, not disjoint.
const chromePidSpans = 0
