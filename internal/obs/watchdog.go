package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"
)

// watchdog polls registered runs' heartbeats on its own goroutine and
// declares a run stalled when its cycle stops advancing for the deadline.
// A stalled run gets a diagnostic bundle (goroutine stacks, span tree,
// progress and metrics snapshots) and — when cancellation is armed — its
// Cancel flag set and abandon channel closed, so the sweep completes with
// the cell reported stalled instead of hanging.
type watchdog struct {
	p        *Plane
	deadline time.Duration
	poll     time.Duration
	dir      string
	cancel   bool

	mu      sync.Mutex
	watched map[*Run]*watchState
	stalled []string

	stop chan struct{}
	done chan struct{}
}

type watchState struct {
	lastCycle  uint64
	lastChange time.Time
	fired      bool
}

func newWatchdog(p *Plane, opts Options) *watchdog {
	poll := opts.WatchdogPoll
	if poll <= 0 {
		poll = opts.WatchdogDeadline / 4
	}
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	w := &watchdog{
		p:        p,
		deadline: opts.WatchdogDeadline,
		poll:     poll,
		dir:      opts.WatchdogDir,
		cancel:   opts.WatchdogCancel,
		watched:  make(map[*Run]*watchState),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *watchdog) watch(r *Run) {
	if w == nil || r == nil {
		return
	}
	w.mu.Lock()
	w.watched[r] = &watchState{lastCycle: r.hb.Load(), lastChange: time.Now()}
	w.mu.Unlock()
}

func (w *watchdog) unwatch(r *Run) {
	if w == nil || r == nil {
		return
	}
	w.mu.Lock()
	delete(w.watched, r)
	w.mu.Unlock()
}

func (w *watchdog) stalledRuns() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.stalled...)
}

func (w *watchdog) close() {
	if w == nil {
		return
	}
	close(w.stop)
	<-w.done
}

func (w *watchdog) loop() {
	defer close(w.done)
	t := time.NewTicker(w.poll)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.scan(time.Now())
		case <-w.stop:
			return
		}
	}
}

// scan advances every watched run's state and fires on the stalled ones.
// Firing happens outside the lock: the bundle write reads the tracer and
// progress aggregator, which take their own locks.
func (w *watchdog) scan(now time.Time) {
	var fire []*Run
	w.mu.Lock()
	for r, st := range w.watched {
		cur := r.hb.Load()
		if cur != st.lastCycle {
			st.lastCycle = cur
			st.lastChange = now
			continue
		}
		if !st.fired && now.Sub(st.lastChange) >= w.deadline {
			st.fired = true
			fire = append(fire, r)
		}
	}
	w.mu.Unlock()
	for _, r := range fire {
		w.fire(r, now)
	}
}

// stallInfo is the bundle's progress.json payload.
type stallInfo struct {
	Run       string  `json:"run"`
	LastCycle uint64  `json:"last_cycle"`
	StuckSec  float64 `json:"stuck_sec"`
	Cancelled bool    `json:"cancelled"`
	Progress  Record  `json:"progress"`
}

func (w *watchdog) fire(r *Run, now time.Time) {
	w.mu.Lock()
	w.stalled = append(w.stalled, r.name)
	w.mu.Unlock()
	w.p.prog.markStalled()
	suffix := ""
	if w.cancel {
		suffix = ", cancelling"
	}
	w.p.opts.Log.Errorf("watchdog: run %s made no cycle progress for %v (last cycle %d)%s",
		r.name, w.deadline, r.hb.Load(), suffix)

	if w.dir != "" {
		w.writeBundle(r, now)
	}
	if w.cancel {
		r.cancel.Cancel()
		r.abandonNow()
	}
	r.span.Annotate("stalled", "true")
}

// writeBundle dumps the diagnostic bundle for one stalled run into
// <dir>/stall-<run>/. Bundle failures are logged, never fatal — the
// watchdog must not take down the sweep it is guarding.
func (w *watchdog) writeBundle(r *Run, now time.Time) {
	dir := filepath.Join(w.dir, "stall-"+sanitizeName(r.name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		w.p.opts.Log.Errorf("watchdog: %v", err)
		return
	}
	logErr := func(err error) {
		if err != nil {
			w.p.opts.Log.Errorf("watchdog: writing bundle: %v", err)
		}
	}

	// All goroutine stacks: the stalled cell's tick loop is in here, which
	// is usually enough to see where it wedged.
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	logErr(os.WriteFile(filepath.Join(dir, "goroutines.txt"), buf[:n], 0o644))

	// The span tree, open spans included: which cell, which phase, since
	// which cycle.
	if tree, err := json.MarshalIndent(w.p.tracer.Tree(), "", "  "); err == nil {
		logErr(os.WriteFile(filepath.Join(dir, "spans.json"), append(tree, '\n'), 0o644))
	} else {
		logErr(err)
	}

	info := stallInfo{
		Run:       r.name,
		LastCycle: r.hb.Load(),
		StuckSec:  w.deadline.Seconds(),
		Cancelled: w.cancel,
		Progress:  w.p.prog.record(false),
	}
	if data, err := json.MarshalIndent(info, "", "  "); err == nil {
		logErr(os.WriteFile(filepath.Join(dir, "progress.json"), append(data, '\n'), 0o644))
	} else {
		logErr(err)
	}

	// The last committed telemetry sample, when a runner installed one.
	if fn := w.p.metrics(); fn != nil {
		f, err := os.Create(filepath.Join(dir, "metrics.prom"))
		if err != nil {
			logErr(err)
			return
		}
		logErr(fn(f))
		logErr(f.Close())
	}
	_ = now
}

func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}
