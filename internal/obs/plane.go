package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"shmgpu/internal/telemetry"
)

// Options configures a Plane. The zero value of every field is a sensible
// off/default state, so tools only set what their flags enable.
type Options struct {
	// Tool names the producing command in progress records and /healthz.
	Tool string
	// TotalCells, when known, enables done/total and ETA reporting.
	TotalCells int
	// ProgressOut, when non-nil, receives one JSON progress Record every
	// ProgressEvery (default 2s) plus a final record at Close.
	ProgressOut   io.Writer
	ProgressEvery time.Duration
	// SpanLog, when non-nil, receives the streaming span log (one JSON
	// line per span begin/end).
	SpanLog io.Writer
	// OpsListen, when non-empty, starts the embedded HTTP ops server on
	// this address (host:port; ":0" picks a free port — see Plane.OpsAddr).
	OpsListen string
	// WatchdogDeadline, when positive, arms the stall watchdog: a run
	// whose heartbeat cycle does not advance for this long is declared
	// stalled and a diagnostic bundle is written under WatchdogDir.
	WatchdogDeadline time.Duration
	// WatchdogPoll is the watchdog's polling period (default deadline/4,
	// clamped to at least 10ms).
	WatchdogPoll time.Duration
	// WatchdogDir receives one stall-<run>/ bundle directory per stalled
	// run (goroutine stacks, span tree, progress and metrics snapshots).
	WatchdogDir string
	// WatchdogCancel makes the watchdog also cancel the stalled run (via
	// its Cancel flag and abandon channel) so the sweep completes with the
	// cell reported stalled instead of hanging.
	WatchdogCancel bool
	// CancelGrace is how long RunSim waits for a cancelled run to notice
	// the flag before abandoning its goroutine (default 250ms).
	CancelGrace time.Duration
	// Log receives the plane's own status lines (watchdog firings, ops
	// server address).
	Log *Logger
}

// Plane is one campaign's live observability plane: the span tracer, the
// progress aggregator and reporter, the stall watchdog, and the ops HTTP
// server. A nil *Plane is a valid disabled plane — every method no-ops and
// BeginRun returns a nil *Run — so tools hold a single pointer regardless
// of which flags are set.
type Plane struct {
	opts   Options
	tracer *Tracer
	sweep  Span
	prog   *progress
	wd     *watchdog
	ops    *opsServer

	metricsMu sync.Mutex
	metricsFn func(io.Writer) error

	reporterStop chan struct{}
	reporterDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// Start builds and starts a plane. The returned error is non-nil only when
// the ops listener cannot bind; every other pillar cannot fail to start.
func Start(opts Options) (*Plane, error) {
	if opts.ProgressEvery <= 0 {
		opts.ProgressEvery = 2 * time.Second
	}
	if opts.CancelGrace <= 0 {
		opts.CancelGrace = 250 * time.Millisecond
	}
	p := &Plane{opts: opts}
	p.tracer = NewTracer(opts.SpanLog)
	label := opts.Tool
	if label == "" {
		label = "sweep"
	}
	p.sweep = p.tracer.Begin(Span{}, "sweep", label)
	p.prog = newProgress(opts.Tool, opts.TotalCells)
	if opts.WatchdogDeadline > 0 {
		p.wd = newWatchdog(p, opts)
	}
	if opts.OpsListen != "" {
		ops, err := startOps(p, opts.OpsListen)
		if err != nil {
			p.wd.close()
			return nil, err
		}
		p.ops = ops
		opts.Log.Infof("ops endpoint listening on http://%s", ops.addr())
	}
	if opts.ProgressOut != nil {
		p.reporterStop = make(chan struct{})
		p.reporterDone = make(chan struct{})
		go p.reportLoop()
	}
	return p, nil
}

// reportLoop emits periodic progress records until Close.
func (p *Plane) reportLoop() {
	defer close(p.reporterDone)
	t := time.NewTicker(p.opts.ProgressEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			writeRecord(p.opts.ProgressOut, p.prog.record(false))
		case <-p.reporterStop:
			return
		}
	}
}

// Tracer returns the plane's span tracer (nil for a nil plane).
func (p *Plane) Tracer() *Tracer {
	if p == nil {
		return nil
	}
	return p.tracer
}

// SweepSpan returns the root sweep span (a no-op span for a nil plane).
func (p *Plane) SweepSpan() Span {
	if p == nil {
		return Span{}
	}
	return p.sweep
}

// OpsAddr returns the ops server's bound address ("" when not listening).
func (p *Plane) OpsAddr() string {
	if p == nil || p.ops == nil {
		return ""
	}
	return p.ops.addr()
}

// CanCancel reports whether the watchdog is armed to cancel stalled runs.
func (p *Plane) CanCancel() bool {
	return p != nil && p.wd != nil && p.opts.WatchdogCancel
}

// CancelGrace returns the configured grace period for cancelled runs.
func (p *Plane) CancelGrace() time.Duration {
	if p == nil {
		return 0
	}
	return p.opts.CancelGrace
}

// SetMetrics installs the /metrics renderer: a function writing the latest
// completed run's Prometheus snapshot (the exact bytes the batch exporter
// commits, so a final scrape byte-matches the committed dump). Runners call
// it after every completed cell; before the first cell /metrics serves a
// minimal liveness payload.
func (p *Plane) SetMetrics(fn func(io.Writer) error) {
	if p == nil {
		return
	}
	p.metricsMu.Lock()
	p.metricsFn = fn
	p.metricsMu.Unlock()
}

func (p *Plane) metrics() func(io.Writer) error {
	if p == nil {
		return nil
	}
	p.metricsMu.Lock()
	defer p.metricsMu.Unlock()
	return p.metricsFn
}

// Progress returns the current progress record (zero Record for a nil
// plane). Shared by the reporter, the /progress endpoint and tests; the
// throughput window resets at each call, whoever polls.
func (p *Plane) Progress() Record {
	if p == nil {
		return Record{}
	}
	return p.prog.record(false)
}

// Stalled returns the names of runs the watchdog declared stalled.
func (p *Plane) Stalled() []string {
	if p == nil || p.wd == nil {
		return nil
	}
	return p.wd.stalledRuns()
}

// WriteChromeTrace exports the span tree as Chrome trace-event JSON.
func (p *Plane) WriteChromeTrace(w io.Writer, m telemetry.Manifest) error {
	if p == nil {
		return nil
	}
	return p.tracer.WriteChromeTrace(w, m)
}

// Close ends the sweep span, emits the final progress record, and stops
// the watchdog, reporter and ops server. Idempotent; returns the span
// log's first write error, if any.
func (p *Plane) Close() error {
	if p == nil {
		return nil
	}
	p.closeOnce.Do(func() {
		p.sweep.End()
		if p.reporterStop != nil {
			close(p.reporterStop)
			<-p.reporterDone
		}
		writeRecord(p.opts.ProgressOut, p.prog.record(true))
		p.wd.close()
		if p.ops != nil {
			p.ops.close()
		}
		p.closeErr = p.tracer.Err()
	})
	return p.closeErr
}

// Run is one simulation cell's observability handle. It implements Probe —
// the simulator's emit sites feed it heartbeats and phase transitions — and
// carries the cancel flag and abandon channel the watchdog uses to kill a
// stalled cell. All methods are nil-receiver safe.
type Run struct {
	p    *Plane
	name string
	span Span
	// phase is the currently-open phase span. Phases never overlap within
	// one run, but on the watchdog's abandon path Done runs on the sweep
	// goroutine while the abandoned simulation goroutine may still be
	// emitting phase events — hence the mutex. It is off the steady-state
	// path: EvProgress never touches phase.
	phaseMu sync.Mutex
	phase   Span

	hb      Heartbeat
	cancel  Cancel
	abandon chan struct{}
	abOnce  sync.Once

	startWall time.Time
	doneOnce  sync.Once
}

// BeginRun opens a cell span and registers the run with the progress
// aggregator and watchdog. Call Done when the cell finishes.
func (p *Plane) BeginRun(name string) *Run {
	if p == nil {
		return nil
	}
	r := &Run{
		p:         p,
		name:      name,
		abandon:   make(chan struct{}),
		startWall: time.Now(),
	}
	r.span = p.tracer.BeginLane(p.sweep, "cell", name)
	p.prog.register(r)
	p.wd.watch(r)
	return r
}

// Name returns the run's cell name.
func (r *Run) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Span returns the run's cell span.
func (r *Run) Span() Span {
	if r == nil {
		return Span{}
	}
	return r.span
}

// Observe implements Probe. EvProgress is the steady-state path: one
// atomic store, no allocations. Phase events open and close child spans
// (kernel-boundary frequency, allocation there is fine).
func (r *Run) Observe(e Event) {
	if r == nil {
		return
	}
	switch e.Kind {
	case EvProgress:
		r.hb.Store(e.Cycle)
	case EvPhaseBegin:
		name := e.Phase.String()
		if e.Phase != PhaseSetup {
			name = fmt.Sprintf("%s-%d", name, e.Index)
		}
		ph := r.p.tracer.BeginCycle(r.span, "phase", name, e.Cycle)
		r.phaseMu.Lock()
		r.phase = ph
		r.phaseMu.Unlock()
	case EvPhaseEnd:
		r.phaseMu.Lock()
		ph := r.phase
		r.phase = Span{}
		r.phaseMu.Unlock()
		ph.EndCycle(e.Cycle)
	}
}

// CancelFlag returns the run's cooperative cancellation flag (to hand to
// gpu.System.SetCancel).
func (r *Run) CancelFlag() *Cancel {
	if r == nil {
		return nil
	}
	return &r.cancel
}

// Heartbeat returns the run's heartbeat cell (for producers that publish
// progress without going through Observe, e.g. the fuzz campaign's oracle
// stage counter).
func (r *Run) Heartbeat() *Heartbeat {
	if r == nil {
		return nil
	}
	return &r.hb
}

// Abandoned returns a channel closed when the watchdog gives up on the
// run. For a nil run it returns nil, which blocks forever in a select —
// exactly the disabled behaviour.
func (r *Run) Abandoned() <-chan struct{} {
	if r == nil {
		return nil
	}
	return r.abandon
}

func (r *Run) abandonNow() {
	if r == nil {
		return
	}
	r.abOnce.Do(func() { close(r.abandon) })
}

// Done closes the run: ends any open phase span and the cell span (stamped
// with the final cycle and completion state), updates the progress EWMA,
// and unregisters from the watchdog. Idempotent.
func (r *Run) Done(cycles uint64, completed bool) {
	if r == nil {
		return
	}
	r.doneOnce.Do(func() {
		r.phaseMu.Lock()
		ph := r.phase
		r.phase = Span{}
		r.phaseMu.Unlock()
		ph.EndCycle(cycles)
		r.span.Annotate("cycles", strconv.FormatUint(cycles, 10))
		r.span.Annotate("completed", strconv.FormatBool(completed))
		r.span.EndCycle(cycles)
		r.p.wd.unwatch(r)
		r.p.prog.finish(r, cycles, time.Since(r.startWall))
	})
}
