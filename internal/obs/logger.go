package obs

import (
	"fmt"
	"io"
	"sync"
)

// Level selects how much a Logger prints.
type Level int8

const (
	// LevelQuiet prints errors only (-q).
	LevelQuiet Level = iota
	// LevelInfo additionally prints status lines (the default).
	LevelInfo
	// LevelDebug additionally prints diagnostic detail (-v).
	LevelDebug
)

// LevelFromFlags maps the tools' shared -q/-v pair to a level; -q wins
// when both are set.
func LevelFromFlags(quiet, verbose bool) Level {
	switch {
	case quiet:
		return LevelQuiet
	case verbose:
		return LevelDebug
	default:
		return LevelInfo
	}
}

// Logger is the commands' shared leveled stderr logger. Messages keep the
// tools' historical "<tool>: message" shape so scripts matching on them
// keep working; only the verbosity gating is new. A nil *Logger discards
// everything. Safe for concurrent use (prefetch workers log through it).
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	level  Level
}

// NewLogger builds a logger writing "<prefix>: " - prefixed lines to w.
func NewLogger(w io.Writer, prefix string, level Level) *Logger {
	return &Logger{w: w, prefix: prefix, level: level}
}

// Level returns the logger's level (LevelQuiet for a nil logger).
func (l *Logger) Level() Level {
	if l == nil {
		return LevelQuiet
	}
	return l.level
}

// Errorf prints regardless of level: errors are part of the tools'
// exit-code contract and are never suppressed.
func (l *Logger) Errorf(format string, args ...any) { l.printf(LevelQuiet, format, args...) }

// Infof prints status lines (suppressed by -q).
func (l *Logger) Infof(format string, args ...any) { l.printf(LevelInfo, format, args...) }

// Debugf prints diagnostic detail (enabled by -v).
func (l *Logger) Debugf(format string, args ...any) { l.printf(LevelDebug, format, args...) }

func (l *Logger) printf(min Level, format string, args ...any) {
	if l == nil || l.w == nil || l.level < min {
		return
	}
	l.mu.Lock()
	fmt.Fprintf(l.w, l.prefix+": "+format+"\n", args...)
	l.mu.Unlock()
}
