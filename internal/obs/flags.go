package obs

import (
	"flag"
	"io"
	"os"
	"time"

	"shmgpu/internal/telemetry"
)

// Flags is the shared ops-plane flag bundle. Every long-running command
// (paperbench, shmfuzz, shmsim) registers the same names with the same
// semantics, so muscle memory and CI scripts transfer between tools.
type Flags struct {
	Progress       bool
	ProgressOut    string
	ProgressEvery  time.Duration
	OpsListen      string
	SpanTrace      string
	SpanLog        string
	Watchdog       time.Duration
	WatchdogDir    string
	WatchdogCancel bool
}

// Register installs the ops-plane flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.Progress, "progress", false, "stream JSON progress records to stderr")
	fs.StringVar(&f.ProgressOut, "progress-out", "", "write JSON progress records to this file instead of stderr")
	fs.DurationVar(&f.ProgressEvery, "progress-every", 2*time.Second, "period between progress records")
	fs.StringVar(&f.OpsListen, "ops-listen", "", "serve the live ops endpoint (/healthz, /metrics, /progress, /debug/pprof) on this address; :0 picks a free port")
	fs.StringVar(&f.SpanTrace, "span-trace", "", "write the hierarchical span trace as Chrome trace-event JSON to this file at exit (open in Perfetto)")
	fs.StringVar(&f.SpanLog, "span-log", "", "stream the span log (one JSON line per span begin/end) to this file")
	fs.DurationVar(&f.Watchdog, "watchdog", 0, "stall deadline: declare a cell stalled when its cycle heartbeat stops advancing for this long (0 = off)")
	fs.StringVar(&f.WatchdogDir, "watchdog-dir", "", "directory receiving one stall-<cell>/ diagnostic bundle per stalled cell")
	fs.BoolVar(&f.WatchdogCancel, "watchdog-cancel", false, "cancel stalled cells instead of waiting on them (the sweep completes with stalled cells reported via a distinct exit code)")
}

// Enabled reports whether any ops-plane flag was set.
func (f *Flags) Enabled() bool {
	return f.Progress || f.ProgressOut != "" || f.OpsListen != "" ||
		f.SpanTrace != "" || f.SpanLog != "" || f.Watchdog > 0
}

// Start opens the configured outputs and starts the plane; with no flag set
// it returns a nil plane (every obs call no-ops) and a no-op shutdown. The
// returned shutdown closes the plane, writes the Chrome span trace (the
// manifest stamps the trace header), and closes the opened files; call it
// exactly once and treat its error as an output error.
func (f *Flags) Start(tool string, total int, stderr io.Writer, log *Logger) (*Plane, func(m telemetry.Manifest) error, error) {
	if !f.Enabled() {
		return nil, func(telemetry.Manifest) error { return nil }, nil
	}
	var files []*os.File
	openOut := func(path string) (*os.File, error) {
		fh, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		files = append(files, fh)
		return fh, nil
	}
	closeAll := func() error {
		var first error
		for _, fh := range files {
			if err := fh.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	opts := Options{
		Tool:             tool,
		TotalCells:       total,
		ProgressEvery:    f.ProgressEvery,
		OpsListen:        f.OpsListen,
		WatchdogDeadline: f.Watchdog,
		WatchdogDir:      f.WatchdogDir,
		WatchdogCancel:   f.WatchdogCancel,
		Log:              log,
	}
	if f.ProgressOut != "" {
		w, err := openOut(f.ProgressOut)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		opts.ProgressOut = w
	} else if f.Progress {
		opts.ProgressOut = stderr
	}
	if f.SpanLog != "" {
		w, err := openOut(f.SpanLog)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		opts.SpanLog = w
	}
	p, err := Start(opts)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	shutdown := func(m telemetry.Manifest) error {
		err := p.Close()
		if f.SpanTrace != "" {
			fh, terr := os.Create(f.SpanTrace)
			if terr != nil {
				if err == nil {
					err = terr
				}
			} else {
				if werr := p.WriteChromeTrace(fh, m); werr != nil && err == nil {
					err = werr
				}
				if cerr := fh.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
		if cerr := closeAll(); cerr != nil && err == nil {
			err = cerr
		}
		return err
	}
	return p, shutdown, nil
}
