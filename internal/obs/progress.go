package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Heartbeat is the per-run progress cell the simulator's EvProgress events
// feed: a single atomic cycle counter, written from the simulation
// goroutine (alloc-free) and read by the reporter and the watchdog on their
// own goroutines.
type Heartbeat struct {
	v atomic.Uint64
}

// Store publishes the run's current cycle.
func (h *Heartbeat) Store(cycle uint64) {
	if h == nil {
		return
	}
	h.v.Store(cycle)
}

// Load returns the last published cycle.
func (h *Heartbeat) Load() uint64 {
	if h == nil {
		return 0
	}
	return h.v.Load()
}

// Record is one streaming progress line: cells done/total, live throughput
// and the EWMA-based completion estimate. Emitted as JSON, one object per
// line, to the -progress destination.
type Record struct {
	Type    string   `json:"type"` // always "progress"
	Tool    string   `json:"tool,omitempty"`
	Done    int      `json:"done"`
	Total   int      `json:"total,omitempty"`
	Active  []string `json:"active,omitempty"`
	Stalled int      `json:"stalled,omitempty"`
	// ElapsedSec is wall-clock seconds since the plane started.
	ElapsedSec float64 `json:"elapsed_sec"`
	// CyclesPerSec is the simulated-cycle throughput over the last
	// reporting interval, summed across active runs.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// CellEWMASec is the exponentially-weighted moving average of per-cell
	// wall time (alpha 0.3); ETASec divides the remaining cells by it,
	// scaled by the current concurrency.
	CellEWMASec float64 `json:"cell_ewma_sec,omitempty"`
	ETASec      float64 `json:"eta_sec,omitempty"`
	// Final marks the last record of a sweep.
	Final bool `json:"final,omitempty"`
}

// ewmaAlpha weights the most recent cell completion in the per-cell
// wall-time average.
const ewmaAlpha = 0.3

// progress aggregates run completions and live heartbeats for one plane.
type progress struct {
	mu      sync.Mutex
	tool    string
	total   int
	done    int
	stalled int
	start   time.Time

	ewmaSec float64
	ewmaOK  bool

	// doneCycles accumulates completed runs' final cycle counts; the live
	// sum adds active heartbeats on top.
	doneCycles uint64
	active     map[*Run]struct{}

	lastSum  uint64
	lastPoll time.Time
}

func newProgress(tool string, total int) *progress {
	now := time.Now()
	return &progress{
		tool:     tool,
		total:    total,
		start:    now,
		lastPoll: now,
		active:   make(map[*Run]struct{}),
	}
}

func (p *progress) register(r *Run) {
	p.mu.Lock()
	p.active[r] = struct{}{}
	p.mu.Unlock()
}

func (p *progress) finish(r *Run, cycles uint64, wall time.Duration) {
	p.mu.Lock()
	delete(p.active, r)
	p.done++
	p.doneCycles += cycles
	sec := wall.Seconds()
	if p.ewmaOK {
		p.ewmaSec = ewmaAlpha*sec + (1-ewmaAlpha)*p.ewmaSec
	} else {
		p.ewmaSec = sec
		p.ewmaOK = true
	}
	p.mu.Unlock()
}

func (p *progress) markStalled() {
	p.mu.Lock()
	p.stalled++
	p.mu.Unlock()
}

// record computes one progress Record from the current state.
func (p *progress) record(final bool) Record {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()

	sum := p.doneCycles
	names := make([]string, 0, len(p.active))
	for r := range p.active {
		sum += r.hb.Load()
		names = append(names, r.name)
	}
	sort.Strings(names)

	rec := Record{
		Type:       "progress",
		Tool:       p.tool,
		Done:       p.done,
		Total:      p.total,
		Active:     names,
		Stalled:    p.stalled,
		ElapsedSec: now.Sub(p.start).Seconds(),
		Final:      final,
	}
	if dt := now.Sub(p.lastPoll).Seconds(); dt > 0 && sum >= p.lastSum {
		rec.CyclesPerSec = float64(sum-p.lastSum) / dt
	}
	p.lastSum = sum
	p.lastPoll = now
	if p.ewmaOK {
		rec.CellEWMASec = p.ewmaSec
		if p.total > 0 {
			remaining := p.total - p.done
			if remaining < 0 {
				remaining = 0
			}
			conc := len(p.active)
			if conc < 1 {
				conc = 1
			}
			rec.ETASec = float64(remaining) * p.ewmaSec / float64(conc)
		}
	}
	return rec
}

// writeRecord emits one JSON progress line to w; errors are swallowed (a
// broken progress pipe must never fail the sweep).
func writeRecord(w io.Writer, rec Record) {
	if w == nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	w.Write(append(data, '\n'))
}
