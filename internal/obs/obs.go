// Package obs is the live observability plane layered over the batch
// telemetry substrate (internal/telemetry): hierarchical span tracing with
// dual sim-clock/wall-clock timestamps, streaming machine-readable progress
// records, a stall watchdog that captures diagnostic bundles, and an
// optional embedded HTTP ops endpoint (/metrics, /healthz, /progress,
// pprof).
//
// The plane follows the telemetry layer's zero-overhead contract: the
// simulator holds an obs.Probe that is nil by default, every emit site is
// nil-guarded (enforced by the probeguard analyzer), and the steady-state
// observation path — a heartbeat store per progress interval — performs no
// allocations, so the cycle core stays 0 allocs/cycle with spans active.
// Everything wall-clock-dependent (the watchdog, the reporter, the HTTP
// server) lives on plane-owned goroutines, never on the simulation
// goroutine, which keeps runs byte-identical with the plane on or off.
package obs

import "sync/atomic"

// Phase identifies a section of one simulation run, in run order.
type Phase uint8

const (
	// PhaseSetup is the host-side work before a kernel launch (input
	// copies, metadata resets).
	PhaseSetup Phase = iota
	// PhaseKernel is the cycle loop of one kernel.
	PhaseKernel
	// PhaseDrain is the kernel-boundary flush: dirty L2 data and security
	// metadata draining through the MEEs.
	PhaseDrain

	numPhases
)

var phaseNames = [numPhases]string{
	PhaseSetup:  "setup",
	PhaseKernel: "kernel",
	PhaseDrain:  "drain",
}

// String returns the export name of the phase.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// EventKind identifies the observation events the simulator emits.
type EventKind uint8

const (
	// EvProgress is a periodic heartbeat from the cycle loop. Cycle is the
	// current simulated cycle. Emitted at most once per observer interval,
	// off the same boundary discipline as the telemetry sampler, so the
	// steady-state cost is one comparison and one atomic store.
	EvProgress EventKind = iota
	// EvPhaseBegin marks entry into a run phase. Index is the kernel index
	// (0 for drains following kernel Index).
	EvPhaseBegin
	// EvPhaseEnd marks exit from a run phase.
	EvPhaseEnd
)

// Event is one observation event with a sim-clock timestamp.
type Event struct {
	// Kind selects the event type.
	Kind EventKind
	// Phase is the run phase for EvPhaseBegin/EvPhaseEnd.
	Phase Phase
	// Index is the kernel index the phase belongs to.
	Index int
	// Cycle is the simulated cycle the event occurred at.
	Cycle uint64
}

// Probe receives observation events. The simulator holds a Probe field that
// is nil by default; emit sites must guard with a nil check (the probeguard
// analyzer enforces this), so an unobserved run performs no calls and no
// allocations beyond that single comparison.
type Probe interface {
	Observe(e Event)
}

// Cancel is a cooperative cancellation flag shared between a watchdog (or
// any other controller) and one simulation run. The run polls Cancelled at
// tick granularity; setting the flag makes the run abandon its cycle loop
// and return a Result marked Cancelled. All methods are nil-receiver safe.
type Cancel struct {
	flag atomic.Bool
}

// Cancel requests the run to stop at the next tick boundary.
func (c *Cancel) Cancel() {
	if c == nil {
		return
	}
	c.flag.Store(true)
}

// Cancelled reports whether cancellation was requested.
func (c *Cancel) Cancelled() bool {
	return c != nil && c.flag.Load()
}
