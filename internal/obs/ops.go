package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// opsServer is the embedded HTTP ops endpoint: /healthz (liveness JSON),
// /metrics (the latest completed run's Prometheus snapshot, byte-identical
// to the batch exporter's output), /progress (the live span tree plus the
// current progress record), and net/http/pprof under /debug/pprof/.
type opsServer struct {
	p     *Plane
	lis   net.Listener
	srv   *http.Server
	start time.Time
	done  chan struct{}
}

// minimalMetrics is what /metrics serves before the first cell completes:
// a well-formed, non-empty Prometheus payload so scrapers stay green from
// process start.
const minimalMetrics = "# HELP shmgpu_ops_up Live ops endpoint is serving; run metrics appear after the first completed cell.\n" +
	"# TYPE shmgpu_ops_up gauge\n" +
	"shmgpu_ops_up 1\n"

func startOps(p *Plane, addr string) (*opsServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: ops listener: %w", err)
	}
	o := &opsServer{p: p, lis: lis, start: time.Now(), done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", o.handleHealthz)
	mux.HandleFunc("/metrics", o.handleMetrics)
	mux.HandleFunc("/progress", o.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	o.srv = &http.Server{Handler: mux}
	go func() {
		defer close(o.done)
		o.srv.Serve(lis)
	}()
	return o, nil
}

func (o *opsServer) addr() string { return o.lis.Addr().String() }

func (o *opsServer) close() {
	o.srv.Close()
	<-o.done
}

func (o *opsServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rec := o.p.Progress()
	out := struct {
		Status    string  `json:"status"`
		Tool      string  `json:"tool,omitempty"`
		UptimeSec float64 `json:"uptime_sec"`
		Done      int     `json:"done"`
		Total     int     `json:"total,omitempty"`
		Active    int     `json:"active"`
		Stalled   int     `json:"stalled"`
	}{
		Status:    "ok",
		Tool:      o.p.opts.Tool,
		UptimeSec: time.Since(o.start).Seconds(),
		Done:      rec.Done,
		Total:     rec.Total,
		Active:    len(rec.Active),
		Stalled:   rec.Stalled,
	}
	writeJSON(w, out)
}

// handleMetrics serves exactly the bytes the installed renderer produces —
// the same WritePrometheus path the batch exporter commits to disk — so a
// scrape after the last cell byte-matches the committed dump. Before any
// cell completes it serves the minimal liveness payload.
func (o *opsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fn := o.p.metrics()
	if fn == nil {
		fmt.Fprint(w, minimalMetrics)
		return
	}
	if err := fn(w); err != nil {
		// Headers are gone; all we can do is note the truncation.
		fmt.Fprintf(w, "# metrics render error: %v\n", err)
	}
}

func (o *opsServer) handleProgress(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		Progress Record      `json:"progress"`
		Stalled  []string    `json:"stalled_runs,omitempty"`
		Spans    []*SpanNode `json:"spans"`
	}{
		Progress: o.p.Progress(),
		Stalled:  o.p.Stalled(),
		Spans:    o.p.tracer.Tree(),
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
