// Package dram models one GDDR memory partition's DRAM channel: a bounded
// request queue, banks with open-row state, FR-FCFS-lite scheduling, and a
// shared data bus whose throughput is the partition's share of the GPU's
// aggregate bandwidth (336 GB/s across 12 partitions in the paper's
// baseline, Table V).
//
// All times are in GPU core cycles (1506 MHz). Bandwidth is modeled with a
// fixed-point bus reservation: each 32 B sector transfer occupies the data
// bus for SectorBytes/BytesPerCycle cycles, so sustained throughput
// converges to the configured bytes-per-cycle figure regardless of request
// mix, while row hits/misses shape latency.
package dram

import (
	"fmt"

	"shmgpu/internal/invariant"
	"shmgpu/internal/memdef"
	"shmgpu/internal/stats"
	"shmgpu/internal/telemetry"
)

// Config describes one DRAM channel (one memory partition).
type Config struct {
	// Banks is the number of DRAM banks in the partition.
	Banks int
	// RowBytes is the open-row (page) size per bank.
	RowBytes int
	// CASCycles is the column access latency for a row hit.
	CASCycles uint64
	// RowCycles is the additional precharge+activate latency on a row miss.
	RowCycles uint64
	// BytesPerCycleFP is the data-bus throughput in bytes per core cycle,
	// in 1/256 fixed point (e.g. 18.59 B/cy ≈ 4759).
	BytesPerCycleFP uint64
	// QueueDepth is the request queue capacity.
	QueueDepth int
}

// DefaultConfig returns the paper's baseline partition channel:
// 336 GB/s / 12 partitions at 1506 MHz core clock = 18.59 B/cycle.
func DefaultConfig() Config {
	return Config{
		Banks:           16,
		RowBytes:        2048,
		CASCycles:       40,
		RowCycles:       80,
		BytesPerCycleFP: 4759, // 18.59 B/cycle * 256
		QueueDepth:      64,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("dram: banks %d must be a positive power of two", c.Banks)
	}
	if c.RowBytes <= 0 || c.RowBytes%memdef.PartitionStride != 0 {
		return fmt.Errorf("dram: row bytes %d must be a positive multiple of the partition stride", c.RowBytes)
	}
	if c.BytesPerCycleFP == 0 {
		return fmt.Errorf("dram: bus throughput must be positive")
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("dram: queue depth must be positive")
	}
	return nil
}

// Req is one 32 B sector request to the channel.
type Req struct {
	// Local is the partition-local sector address.
	Local memdef.Addr
	// Kind is Read or Write.
	Kind memdef.AccessKind
	// Class labels the bytes for bandwidth accounting.
	Class stats.TrafficClass
	// Token is an opaque caller identifier returned on completion.
	Token uint64
}

type pendingReq struct {
	Req
	arrival uint64
	bank    int
	row     uint64
}

type completion struct {
	req   Req
	cycle uint64
}

// completionHeap is a binary min-heap on completion cycle. The sift
// routines mirror container/heap's up/down exactly (same comparisons, same
// swaps) so the pop order of equal-cycle completions is unchanged from the
// previous container/heap implementation — that tie order reaches the MEE
// and is observable in results. Specializing removes the interface{} boxing
// that allocated on every push.
type completionHeap []completion

func (h completionHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || h[j].cycle >= h[i].cycle {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h completionHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].cycle < h[j1].cycle {
			j = j2 // right child
		}
		if h[j].cycle >= h[i].cycle {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

func (h *completionHeap) push(c completion) {
	*h = append(*h, c) //shm:alloc-ok amortized heap growth, bounded by in-flight completions
	h.up(len(*h) - 1)
}

func (h *completionHeap) pop() completion {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old.down(0, n)
	c := old[n]
	*h = old[:n]
	return c
}

type bank struct {
	openRow  uint64
	hasRow   bool
	freeAt   uint64
	rowHits  uint64
	rowMisss uint64
}

// Channel is one memory partition's DRAM channel.
type Channel struct {
	cfg       Config
	queue     []pendingReq
	banks     []bank
	busFreeFP uint64 // fixed-point cycle (×256) when the data bus frees
	completed completionHeap
	// doneBuf backs the slice returned by Tick; see the validity note there.
	doneBuf []Req

	// Traffic accounts every byte moved, by class and direction.
	Traffic stats.Traffic
	// ReadsServed and WritesServed count completed sector requests.
	ReadsServed, WritesServed uint64
	// BusyCycles approximates cycles in which the bus was transferring.
	busyFP uint64

	// probe, when non-nil, observes enqueues (queue depth) and issues
	// (service latency). part identifies this channel in probe events.
	probe telemetry.Probe
	part  int16

	// enqueued counts accepted requests for the request-conservation
	// invariant; lastTick enforces clock monotonicity. Both are maintained
	// only while invariant checking is enabled.
	enqueued uint64
	lastTick uint64
}

// SetProbe installs the telemetry probe (nil to disable) and the channel's
// partition id used in emitted events.
func (ch *Channel) SetProbe(p telemetry.Probe, part int) {
	ch.probe = p
	ch.part = int16(part)
}

// NewChannel builds a channel, panicking on invalid configuration.
func NewChannel(cfg Config) *Channel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Channel{
		cfg:   cfg,
		banks: make([]bank, cfg.Banks),
	}
}

// Config returns the channel configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// CanAccept reports whether Enqueue would succeed.
func (ch *Channel) CanAccept() bool { return len(ch.queue) < ch.cfg.QueueDepth }

// QueueLen returns the number of queued (not yet issued) requests.
func (ch *Channel) QueueLen() int { return len(ch.queue) }

// Pending returns queued plus in-flight (issued, not yet completed) requests.
func (ch *Channel) Pending() int { return len(ch.queue) + len(ch.completed) }

// Enqueue adds a sector request at cycle now. It returns false when the
// queue is full (the caller must retry; this is the back-pressure that
// creates bandwidth contention upstream).
func (ch *Channel) Enqueue(r Req, now uint64) bool {
	if !ch.CanAccept() {
		return false
	}
	slice := uint64(r.Local) / memdef.PartitionStride
	b := int(slice % uint64(ch.cfg.Banks))
	slicesPerRow := uint64(ch.cfg.RowBytes / memdef.PartitionStride)
	row := (slice / uint64(ch.cfg.Banks)) / slicesPerRow
	ch.queue = append(ch.queue, pendingReq{Req: r, arrival: now, bank: b, row: row}) //shm:alloc-ok amortized growth, capacity bounded by cfg.QueueDepth
	if invariant.Enabled() {
		ch.enqueued++
		if len(ch.queue) > ch.cfg.QueueDepth {
			invariant.Failf("queue-occupancy", fmt.Sprintf("dram[%d]", ch.part), now,
				"queue holds %d requests, capacity %d (local %#x token %d)",
				len(ch.queue), ch.cfg.QueueDepth, uint64(r.Local), r.Token)
		}
	}
	if ch.probe != nil {
		ch.probe.Emit(telemetry.Event{
			Cycle: now, Kind: telemetry.EvDRAMEnqueue, Part: ch.part,
			Class: uint8(r.Class), Value: uint64(len(ch.queue)),
		})
	}
	return true
}

// Tick advances the channel to cycle now: issues eligible requests (FR-FCFS:
// oldest row hit first, else oldest) and returns requests whose data
// transfer completed at or before now. Call with a monotonically
// non-decreasing now. The returned slice aliases a per-channel scratch
// buffer and is valid only until the next Tick (the caller consumes it
// within the same simulated cycle).
func (ch *Channel) Tick(now uint64) []Req {
	if invariant.Enabled() {
		if now < ch.lastTick {
			invariant.Failf("clock-monotonic", fmt.Sprintf("dram[%d]", ch.part), now,
				"Tick clock ran backwards: now=%d < last=%d", now, ch.lastTick)
		}
		ch.lastTick = now
	}
	// Issue as long as a request can start this cycle. Several issues per
	// cycle are allowed; the bus reservation serializes actual transfers.
	for len(ch.queue) > 0 {
		idx := ch.pickNext(now)
		if idx < 0 {
			break // every queued request's bank is busy
		}
		p := ch.queue[idx]
		bk := &ch.banks[p.bank]
		// Column accesses to an open row are pipelined: they add CAS
		// latency but do not occupy the bank. A row miss additionally
		// occupies the bank for the precharge+activate time.
		var rowLat uint64
		if bk.hasRow && bk.openRow == p.row {
			rowLat = ch.cfg.CASCycles
			bk.rowHits++
		} else {
			rowLat = ch.cfg.CASCycles + ch.cfg.RowCycles
			bk.freeAt = now + ch.cfg.RowCycles
			bk.rowMisss++
		}
		bk.openRow = p.row
		bk.hasRow = true

		transferFP := uint64(memdef.SectorSize) * 256 * 256 / ch.cfg.BytesPerCycleFP
		readyFP := (now + rowLat) * 256
		startFP := readyFP
		if ch.busFreeFP > startFP {
			startFP = ch.busFreeFP
		}
		ch.busFreeFP = startFP + transferFP
		ch.busyFP += transferFP
		doneCycle := (startFP + transferFP + 255) / 256

		ch.completed.push(completion{req: p.Req, cycle: doneCycle})
		ch.queue = append(ch.queue[:idx], ch.queue[idx+1:]...) //shm:alloc-ok removal compacts in place; the result never exceeds the existing backing array
		if ch.probe != nil {
			ch.probe.Emit(telemetry.Event{
				Cycle: now, Kind: telemetry.EvDRAMService, Part: ch.part,
				Class: uint8(p.Class), Unit: int16(p.bank), Value: doneCycle - p.arrival,
			})
		}

		if p.Kind == memdef.Read {
			ch.Traffic.AddRead(p.Class, memdef.SectorSize)
		} else {
			ch.Traffic.AddWrite(p.Class, memdef.SectorSize)
		}
	}

	done := ch.doneBuf[:0]
	for len(ch.completed) > 0 && ch.completed[0].cycle <= now {
		c := ch.completed.pop()
		if c.req.Kind == memdef.Read {
			ch.ReadsServed++
		} else {
			ch.WritesServed++
		}
		done = append(done, c.req) //shm:alloc-ok fills the reused doneBuf scratch, amortized
	}
	ch.doneBuf = done
	return done
}

// NextEvent returns the earliest cycle after now at which the channel can
// make progress on its own — a busy bank freeing (unblocking a queued
// request) or an in-flight transfer completing — or ^uint64(0) when it is
// fully drained. Tick issues every request whose bank is free and pops
// every matured completion, so after a Tick at now both candidate times are
// strictly in the future.
func (ch *Channel) NextEvent(now uint64) uint64 {
	next := ^uint64(0)
	for i := range ch.queue {
		if fa := ch.banks[ch.queue[i].bank].freeAt; fa < next {
			next = fa
		}
	}
	if len(ch.completed) > 0 && ch.completed[0].cycle < next {
		next = ch.completed[0].cycle
	}
	if next <= now {
		return now + 1
	}
	return next
}

// pickNext implements FR-FCFS-lite over requests whose bank is free at
// cycle now: the oldest row hit wins; otherwise the oldest such request.
// It returns -1 when every queued request targets a busy bank.
func (ch *Channel) pickNext(now uint64) int {
	bestHit, bestAny := -1, -1
	for i := range ch.queue {
		p := &ch.queue[i]
		bk := &ch.banks[p.bank]
		if bk.freeAt > now {
			continue
		}
		if bk.hasRow && bk.openRow == p.row {
			if bestHit < 0 || p.arrival < ch.queue[bestHit].arrival {
				bestHit = i
			}
		}
		if bestAny < 0 || p.arrival < ch.queue[bestAny].arrival {
			bestAny = i
		}
	}
	if bestHit >= 0 {
		return bestHit
	}
	return bestAny
}

// Drained reports whether no requests are queued or in flight.
func (ch *Channel) Drained() bool { return len(ch.queue) == 0 && len(ch.completed) == 0 }

// CheckConserved verifies the request-conservation invariant at a drain
// point: every request accepted by Enqueue must have been returned by Tick.
// Callers gate on invariant.Enabled() (the counters only accumulate while
// checking is on, so the check is only coherent when enabled for the whole
// run).
func (ch *Channel) CheckConserved(component string, now uint64) {
	served := ch.ReadsServed + ch.WritesServed
	if ch.enqueued != served || !ch.Drained() {
		invariant.Failf("request-conservation", component, now,
			"%d enqueued, %d served, %d queued, %d in flight",
			ch.enqueued, served, len(ch.queue), len(ch.completed))
	}
}

// RowHitRate returns the fraction of issued requests that hit an open row.
func (ch *Channel) RowHitRate() float64 {
	var hits, total uint64
	for i := range ch.banks {
		hits += ch.banks[i].rowHits
		total += ch.banks[i].rowHits + ch.banks[i].rowMisss
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// BusUtilization returns the fraction of cycles [0,now] the data bus was
// transferring.
func (ch *Channel) BusUtilization(now uint64) float64 {
	if now == 0 {
		return 0
	}
	return float64(ch.busyFP) / float64(now*256)
}
