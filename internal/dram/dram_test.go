package dram

import (
	"testing"

	"shmgpu/internal/memdef"
	"shmgpu/internal/stats"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.QueueDepth = 8
	return cfg
}

// drain runs the channel until empty, returning completions keyed by token
// with their completion cycle. It returns the final cycle.
func drain(t *testing.T, ch *Channel, start uint64) (map[uint64]uint64, uint64) {
	t.Helper()
	done := make(map[uint64]uint64)
	cycle := start
	for i := 0; !ch.Drained(); i++ {
		if i > 1_000_000 {
			t.Fatal("channel did not drain")
		}
		for _, r := range ch.Tick(cycle) {
			done[r.Token] = cycle
		}
		cycle++
	}
	return done, cycle
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Banks: 0, RowBytes: 2048, BytesPerCycleFP: 100, QueueDepth: 4},
		{Banks: 3, RowBytes: 2048, BytesPerCycleFP: 100, QueueDepth: 4},
		{Banks: 16, RowBytes: 100, BytesPerCycleFP: 100, QueueDepth: 4},
		{Banks: 16, RowBytes: 2048, BytesPerCycleFP: 0, QueueDepth: 4},
		{Banks: 16, RowBytes: 2048, BytesPerCycleFP: 100, QueueDepth: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSingleReadLatency(t *testing.T) {
	ch := NewChannel(testConfig())
	if !ch.Enqueue(Req{Local: 0, Kind: memdef.Read, Class: stats.TrafficData, Token: 1}, 0) {
		t.Fatal("enqueue failed")
	}
	done, _ := drain(t, ch, 0)
	lat := done[1]
	// Row miss: CAS 40 + row 80 + ~2 transfer.
	if lat < 120 || lat > 125 {
		t.Errorf("cold read latency = %d, want ~122", lat)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	ch := NewChannel(testConfig())
	ch.Enqueue(Req{Local: 0, Kind: memdef.Read, Token: 1}, 0)
	done1, next := drain(t, ch, 0)
	// Same row, different sector: row hit.
	ch.Enqueue(Req{Local: 32, Kind: memdef.Read, Token: 2}, next)
	done2, _ := drain(t, ch, next)
	lat1 := done1[1]
	lat2 := done2[2] - next
	if lat2 >= lat1 {
		t.Errorf("row hit latency %d not faster than cold %d", lat2, lat1)
	}
	if ch.RowHitRate() != 0.5 {
		t.Errorf("row hit rate = %v, want 0.5", ch.RowHitRate())
	}
}

func TestQueueBackpressure(t *testing.T) {
	ch := NewChannel(testConfig()) // depth 8
	for i := 0; i < 8; i++ {
		if !ch.Enqueue(Req{Local: memdef.Addr(i * 1 << 20), Kind: memdef.Read, Token: uint64(i)}, 0) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if ch.CanAccept() {
		t.Fatal("queue should be full")
	}
	if ch.Enqueue(Req{Local: 0, Kind: memdef.Read, Token: 99}, 0) {
		t.Fatal("enqueue above capacity accepted")
	}
}

func TestSustainedBandwidth(t *testing.T) {
	// Stream many sequential sectors; sustained throughput must approach
	// the configured 18.59 B/cycle.
	cfg := DefaultConfig()
	cfg.QueueDepth = 64
	ch := NewChannel(cfg)
	const n = 4000
	issued := 0
	completedLast := uint64(0)
	completions := 0
	cycle := uint64(0)
	for completions < n {
		for issued < n && ch.CanAccept() {
			ch.Enqueue(Req{Local: memdef.Addr(issued * memdef.SectorSize), Kind: memdef.Read, Token: uint64(issued)}, cycle)
			issued++
		}
		for range ch.Tick(cycle) {
			completions++
			completedLast = cycle
		}
		cycle++
		if cycle > 1_000_000 {
			t.Fatal("stream did not finish")
		}
	}
	gotBPC := float64(n*memdef.SectorSize) / float64(completedLast)
	if gotBPC < 16.5 || gotBPC > 18.7 {
		t.Errorf("sustained bandwidth = %.2f B/cycle, want ~18.6", gotBPC)
	}
	if util := ch.BusUtilization(completedLast); util < 0.95 || util > 1.01 {
		t.Errorf("bus utilization = %.3f, want ~1.0 under saturation", util)
	}
}

func TestTrafficAccounting(t *testing.T) {
	ch := NewChannel(testConfig())
	ch.Enqueue(Req{Local: 0, Kind: memdef.Read, Class: stats.TrafficData, Token: 1}, 0)
	ch.Enqueue(Req{Local: 4096, Kind: memdef.Write, Class: stats.TrafficMAC, Token: 2}, 0)
	drain(t, ch, 0)
	if got := ch.Traffic.ReadBytes[stats.TrafficData]; got != memdef.SectorSize {
		t.Errorf("data read bytes = %d", got)
	}
	if got := ch.Traffic.WriteBytes[stats.TrafficMAC]; got != memdef.SectorSize {
		t.Errorf("mac write bytes = %d", got)
	}
	if ch.ReadsServed != 1 || ch.WritesServed != 1 {
		t.Errorf("served counts = %d/%d", ch.ReadsServed, ch.WritesServed)
	}
}

func TestBankParallelism(t *testing.T) {
	// Two requests to different banks should overlap their row latencies:
	// total time well under 2x a single cold access.
	ch := NewChannel(testConfig())
	ch.Enqueue(Req{Local: 0, Kind: memdef.Read, Token: 1}, 0)
	ch.Enqueue(Req{Local: memdef.PartitionStride, Kind: memdef.Read, Token: 2}, 0) // next bank
	done, _ := drain(t, ch, 0)
	last := done[1]
	if done[2] > last {
		last = done[2]
	}
	if last > 140 {
		t.Errorf("two-bank pair finished at %d, want overlap (<140)", last)
	}
}

func TestSameBankSerialization(t *testing.T) {
	// Requests to the same bank, different rows, serialize on the bank.
	cfg := testConfig()
	ch := NewChannel(cfg)
	rowStride := memdef.Addr(cfg.RowBytes * cfg.Banks)
	ch.Enqueue(Req{Local: 0, Kind: memdef.Read, Token: 1}, 0)
	ch.Enqueue(Req{Local: rowStride, Kind: memdef.Read, Token: 2}, 0)
	done, _ := drain(t, ch, 0)
	if done[2] < done[1]+cfg.CASCycles {
		t.Errorf("same-bank conflict not serialized: %d then %d", done[1], done[2])
	}
}

func TestFCFSWithinBank(t *testing.T) {
	ch := NewChannel(testConfig())
	// Same bank, same row: must complete in order.
	ch.Enqueue(Req{Local: 0, Kind: memdef.Read, Token: 1}, 0)
	ch.Enqueue(Req{Local: 32, Kind: memdef.Read, Token: 2}, 0)
	ch.Enqueue(Req{Local: 64, Kind: memdef.Read, Token: 3}, 0)
	done, _ := drain(t, ch, 0)
	if !(done[1] <= done[2] && done[2] <= done[3]) {
		t.Errorf("out of order: %v", done)
	}
}

func TestDrainedAndPending(t *testing.T) {
	ch := NewChannel(testConfig())
	if !ch.Drained() {
		t.Fatal("new channel should be drained")
	}
	ch.Enqueue(Req{Local: 0, Kind: memdef.Read, Token: 1}, 0)
	if ch.Drained() || ch.Pending() != 1 {
		t.Fatal("pending request not reflected")
	}
	drain(t, ch, 0)
	if !ch.Drained() {
		t.Fatal("channel should drain")
	}
}

func TestWriteConsumesBandwidth(t *testing.T) {
	// Writes occupy the bus like reads: saturating with writes must take
	// about as long as with reads.
	cfg := DefaultConfig()
	ch := NewChannel(cfg)
	const n = 1000
	issued, completions := 0, 0
	cycle := uint64(0)
	for completions < n {
		for issued < n && ch.CanAccept() {
			ch.Enqueue(Req{Local: memdef.Addr(issued * memdef.SectorSize), Kind: memdef.Write, Token: uint64(issued)}, cycle)
			issued++
		}
		completions += len(ch.Tick(cycle))
		cycle++
	}
	gotBPC := float64(n*memdef.SectorSize) / float64(cycle)
	if gotBPC < 15 {
		t.Errorf("write bandwidth = %.2f B/cycle, too low", gotBPC)
	}
}
