package dram

import (
	"fmt"

	"shmgpu/internal/memdef"
	"shmgpu/internal/snapshot"
	"shmgpu/internal/stats"
)

// Checkpoint/restore. The restore target must be a channel built by
// NewChannel with the identical configuration. The completion heap's
// backing array is serialized verbatim (not re-pushed): the heap's
// internal layout determines the pop order of equal-cycle completions,
// which is observable downstream at the MEE. doneBuf is scratch — only
// valid between Tick and the caller consuming the returned slice — and is
// never live at a cycle boundary, so it is not serialized. Cold path only.

// SaveReq writes one request (shared with the secmem serializer).
func SaveReq(e *snapshot.Encoder, r *Req) {
	e.U64(uint64(r.Local))
	e.U8(uint8(r.Kind))
	e.U8(uint8(r.Class))
	e.U64(r.Token)
}

// LoadReq restores a request written by SaveReq.
func LoadReq(d *snapshot.Decoder, r *Req) {
	r.Local = memdef.Addr(d.U64())
	r.Kind = memdef.AccessKind(d.U8())
	r.Class = stats.TrafficClass(d.U8())
	r.Token = d.U64()
}

// SaveState writes the channel's mutable state.
func (ch *Channel) SaveState(e *snapshot.Encoder) {
	e.Int(ch.cfg.QueueDepth)
	e.Int(len(ch.banks))
	e.Int(len(ch.queue))
	for i := range ch.queue {
		p := &ch.queue[i]
		SaveReq(e, &p.Req)
		e.U64(p.arrival)
		e.Int(p.bank)
		e.U64(p.row)
	}
	for i := range ch.banks {
		b := &ch.banks[i]
		e.U64(b.openRow)
		e.Bool(b.hasRow)
		e.U64(b.freeAt)
		e.U64(b.rowHits)
		e.U64(b.rowMisss)
	}
	e.U64(ch.busFreeFP)
	e.Int(len(ch.completed))
	for i := range ch.completed {
		SaveReq(e, &ch.completed[i].req)
		e.U64(ch.completed[i].cycle)
	}
	ch.Traffic.SaveState(e)
	e.U64(ch.ReadsServed)
	e.U64(ch.WritesServed)
	e.U64(ch.busyFP)
	e.U64(ch.enqueued)
	e.U64(ch.lastTick)
}

// LoadState restores state saved by SaveState into a same-configured
// channel.
func (ch *Channel) LoadState(d *snapshot.Decoder) error {
	depth := d.Int()
	nBanks := d.Int()
	nQueue := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if depth != ch.cfg.QueueDepth || nBanks != len(ch.banks) {
		return fmt.Errorf("dram: snapshot has depth %d / %d banks, this channel has %d / %d",
			depth, nBanks, ch.cfg.QueueDepth, len(ch.banks))
	}
	if nQueue < 0 || nQueue > depth {
		return fmt.Errorf("dram: snapshot queue length %d exceeds depth %d", nQueue, depth)
	}
	ch.queue = ch.queue[:0]
	for i := 0; i < nQueue; i++ {
		var p pendingReq
		LoadReq(d, &p.Req)
		p.arrival = d.U64()
		p.bank = d.Int()
		p.row = d.U64()
		if err := d.Err(); err != nil {
			return err
		}
		if p.bank < 0 || p.bank >= nBanks {
			return fmt.Errorf("dram: queued request targets bank %d of %d", p.bank, nBanks)
		}
		ch.queue = append(ch.queue, p)
	}
	for i := range ch.banks {
		b := &ch.banks[i]
		b.openRow = d.U64()
		b.hasRow = d.Bool()
		b.freeAt = d.U64()
		b.rowHits = d.U64()
		b.rowMisss = d.U64()
	}
	ch.busFreeFP = d.U64()
	nDone := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	ch.completed = ch.completed[:0]
	for i := 0; i < nDone; i++ {
		var c completion
		LoadReq(d, &c.req)
		c.cycle = d.U64()
		ch.completed = append(ch.completed, c)
	}
	ch.Traffic.LoadState(d)
	ch.ReadsServed = d.U64()
	ch.WritesServed = d.U64()
	ch.busyFP = d.U64()
	ch.enqueued = d.U64()
	ch.lastTick = d.U64()
	return d.Err()
}
